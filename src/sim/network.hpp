// Simulated unreliable network (paper Sec. 4.1's model, plus an
// adversarial-WAN layer): every message is independently lost with
// probability ε; delivery latency defaults to uniform in [latency_min,
// latency_max] (which the analysis requires to stay below the gossip
// period P) but an installed LatencyModel replaces that draw — e.g. the
// LogNormal WAN profiles built by make_lognormal_latency /
// make_zoned_latency. Deterministic duplication and reordering injectors
// can clone a message or stretch its latency, and any number of link
// filters can be layered to model concurrent partitions; a filter sees
// (from, to), so one-directional (asymmetric) and time-varying (flapping)
// partitions are ordinary filters.
//
// Draw streams (docs/DETERMINISM.md §1): every per-message decision hashes
// off the same labeled seed, (network seed, sender, sender's send count) —
// below, "msg_seed". The legacy loss + uniform-latency pair consumes
// Rng(msg_seed) exactly as it always has; each injector derives its own
// stream from it and only when enabled:
//   * latency model:  Rng(fnv1a(msg_seed, kLatencyDrawLabel))
//   * duplication:    Rng(fnv1a(msg_seed, kDuplicateDrawLabel))
//   * reordering:     Rng(fnv1a(msg_seed, kReorderDrawLabel))
// So runs with the injectors off are byte-identical to runs on builds that
// predate them, and toggling one injector never shifts another's draws.
//
// The send path is built to stay allocation-free per message: receive
// handlers are a fixed (context, function-pointer) dispatch table instead
// of std::functions, the per-sender half of the labeled draw hash is
// memoized, the delivery callback fits the scheduler's inline callback
// storage, and send_multi() fans one shared payload out to many
// destinations without re-running per-message setup.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace pmc {

using ProcessId = std::uint32_t;
constexpr ProcessId kNoProcess = 0xffffffffU;

/// Kind tag carried by every message so receivers dispatch with a switch
/// instead of a dynamic_cast chain. Values 1..13 deliberately mirror
/// wire::MessageTag so the codec can reuse the same discriminator
/// (static_asserted in wire/messages.cpp). Treecast (14) is sim-only: it
/// has no wire encoding, and encode_message rejects it.
enum class MsgKind : std::uint8_t {
  Other = 0,  ///< untagged payloads (tests, ad-hoc messages)
  Gossip = 1,
  MembershipDigest = 2,
  MembershipUpdate = 3,
  JoinRequest = 4,
  ViewTransfer = 5,
  Leave = 6,
  FloodGossip = 7,
  GenuineGossip = 8,
  SuspectQuery = 9,
  SuspectReply = 10,
  EventDigest = 11,
  EventRequest = 12,
  EventPayload = 13,
  Treecast = 14,
};

/// Base class for simulated message payloads. Payloads are immutable and
/// shared between in-flight copies (a gossip to F destinations enqueues F
/// references, not F copies). Subclasses stamp their kind in their default
/// constructor; receivers trust the tag and static_cast down.
struct MessageBase {
  constexpr explicit MessageBase(MsgKind k = MsgKind::Other) noexcept
      : kind(k) {}
  virtual ~MessageBase() = default;

  const MsgKind kind;
};
using MessagePtr = std::shared_ptr<const MessageBase>;

struct NetworkConfig {
  double loss_probability = 0.0;  ///< ε — independent per message
  SimTime latency_min = sim_us(100);
  SimTime latency_max = sim_us(900);
};

struct NetworkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;       ///< dropped by ε
  std::uint64_t filtered = 0;   ///< dropped by a link filter (partition)
  std::uint64_t dead_target = 0;  ///< target crashed or unregistered
  /// Injector activity (zero whenever the injectors are off, so digests of
  /// calm runs are unchanged). A duplicated copy that arrives also counts
  /// as delivered; a reordered message counts once here and once on
  /// whichever of delivered/dead_target it lands on.
  std::uint64_t duplicated = 0;
  std::uint64_t reordered = 0;

  friend bool operator==(const NetworkCounters&, const NetworkCounters&) =
      default;
};

class Network {
 public:
  /// Devirtualized receive dispatch: one raw function pointer plus an
  /// opaque context, so delivering a message is a single indirect call
  /// with no std::function indirection or allocation. Process attaches a
  /// captureless-lambda thunk over `this`.
  using DispatchFn = void (*)(void* ctx, ProcessId from, const MessagePtr&);
  /// Boxed std::function handlers remain available for tests and ad-hoc
  /// wiring (the capturing lambda is heap-boxed once at attach time, not
  /// per message).
  using Handler = std::function<void(ProcessId from, const MessagePtr&)>;
  using LinkFilter = std::function<bool(ProcessId from, ProcessId to)>;

  Network(Scheduler& sched, NetworkConfig config, Rng rng);

  /// Pre-sizes the handler table and the per-sender draw-state table for
  /// `max_processes` pids. Purely an optimization — the tables still grow
  /// on demand — but a harness that knows its population up front (e.g. a
  /// sharded runtime's K * 2 * capacity) avoids every mid-run resize and
  /// rehash this way.
  void reserve(std::size_t max_processes);

  /// Declares that this network hosts the pid range [pid_base, pid_base +
  /// count): the dense handler and sender tables are indexed relative to
  /// pid_base, so a shard hosting pids [s * 2C, (s+1) * 2C) allocates 2C
  /// slots instead of (s+1) * 2C. Draw labels still hash the *global* pid —
  /// rebasing changes where state lives, never which stream a sender uses.
  /// Must be called before any attach/send (the tables must be empty);
  /// pids below pid_base are routable but take the sparse/dead-target
  /// slow paths.
  void reserve_range(ProcessId pid_base, std::size_t count);

  /// Registers the receive dispatch for `id`; overrides any previous one.
  void attach(ProcessId id, void* ctx, DispatchFn fn);
  /// As above, for a capturing std::function (boxed once; tests use this).
  void attach(ProcessId id, Handler handler);
  /// Removes the handler (in-flight messages to `id` are counted dead).
  void detach(ProcessId id);
  bool attached(ProcessId id) const noexcept;

  /// Sends `msg` from `from` to `to`; loss and latency are applied here.
  void send(ProcessId from, ProcessId to, MessagePtr msg);

  /// Fans `msg` out to every pid in `to`, drawing loss and latency per
  /// destination from exactly the same labeled streams N individual send()
  /// calls would use (tests/network_test.cpp asserts the equivalence), but
  /// sharing the payload and the per-sender setup, and running the
  /// transcoder at most once for the whole fan-out. Requires the installed
  /// transcoder (if any) to be pure — true for the wire codec round trip,
  /// which depends only on the message bytes.
  void send_multi(ProcessId from, std::span<const ProcessId> to,
                  const MessagePtr& msg);

  /// Changes ε mid-run (scenario loss bursts). Messages already in flight
  /// are unaffected; only subsequent send() calls draw against the new ε.
  void set_loss(double eps);

  /// When set, ε is asked per message instead of read from the config:
  /// model(from, to) must return a probability in [0, 1]. A sharded
  /// runtime installs a model that maps the sender's pid range to its
  /// shard's current ε, so one shard's loss burst never leaks into
  /// another. Pass nullptr to fall back to the scalar set_loss ε.
  using LossModel = std::function<double(ProcessId from, ProcessId to)>;
  void set_loss_model(LossModel model) { loss_model_ = std::move(model); }

  /// When set, replaces the uniform [latency_min, latency_max] draw: the
  /// model returns the delivery latency for (from, to), drawing whatever it
  /// needs from `rng` — a per-message stream labeled
  /// (msg_seed, kLatencyDrawLabel), so installing a model never perturbs
  /// the loss draw and removing it restores the legacy latencies exactly.
  /// Must return a non-negative latency. Pass nullptr to restore uniform.
  using LatencyModel = std::function<SimTime(ProcessId from, ProcessId to,
                                             Rng& rng)>;
  void set_latency_model(LatencyModel model) {
    latency_model_ = std::move(model);
  }
  bool has_latency_model() const noexcept {
    return latency_model_ != nullptr;
  }

  /// Duplication injector: each message that passes loss is cloned with
  /// probability `prob`; the clone draws its own latency (from the
  /// duplicate's labeled stream), so copies may arrive in either order.
  /// 0 disables (default) and leaves every draw stream untouched.
  void set_duplication(double prob);
  double duplication() const noexcept { return duplicate_probability_; }

  /// Reordering injector: with probability `prob` a message's latency is
  /// stretched by an extra uniform delay in [0, window], letting later
  /// sends overtake it. 0 disables (default); draws come from the
  /// reorder-labeled stream only when enabled.
  void set_reorder(double prob, SimTime window);

  /// When set, messages with filter(from, to) == false are dropped
  /// (simulates partitions). The filter sees the direction, so asymmetric
  /// (one-way) partitions are expressed directly; a filter may also read a
  /// scheduler clock to flap. Pass nullptr to clear.
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Layered link filters for concurrent partitions: a message passes only
  /// if *every* installed filter (and the legacy set_link_filter slot)
  /// accepts it. Returns a token for remove_link_filter (partition heal).
  using FilterToken = std::uint64_t;
  FilterToken add_link_filter(LinkFilter filter);
  /// Removes a layered filter; a no-op for unknown/already-removed tokens.
  void remove_link_filter(FilterToken token);
  std::size_t link_filter_count() const noexcept { return filters_.size(); }

  /// When set, every message passes through this hook before delivery —
  /// e.g. a serialize-then-parse round trip through the wire codec, so
  /// tests exercise the exact bytes a deployment would put on a socket.
  /// Returning nullptr drops the message (counted as filtered). Must be a
  /// pure function of the message (send_multi runs it once per fan-out).
  using Transcoder = std::function<MessagePtr(const MessagePtr&)>;
  void set_transcoder(Transcoder transcoder) {
    transcoder_ = std::move(transcoder);
  }

  const NetworkCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = NetworkCounters{}; }

  Scheduler& scheduler() noexcept { return sched_; }
  const NetworkConfig& config() const noexcept { return config_; }

 private:
  struct HandlerSlot {
    DispatchFn fn = nullptr;
    void* ctx = nullptr;
  };
  /// Per-sender draw state: the send count, and the memoized sender half
  /// of the labeled draw hash (it depends only on (draw_seed_, sender), so
  /// hashing it again for every message would be pure waste).
  struct SenderState {
    std::uint64_t prefix = 0;
    std::uint64_t seq = 0;
  };

  /// True when (from, to) passes the legacy filter and every layered one.
  bool passes_filters(ProcessId from, ProcessId to) const;
  /// The labeled per-message draw seed for `from`'s next send (advances
  /// the sender's sequence).
  std::uint64_t next_draw_seed(ProcessId from);
  /// Applies the loss/latency draws (and the injectors) and schedules
  /// delivery.
  void deliver_after_draw(ProcessId from, ProcessId to, MessagePtr msg);
  /// One latency draw: the installed model on its labeled sub-stream, else
  /// the legacy uniform draw from `legacy` (the Rng(msg_seed) stream).
  SimTime draw_latency(ProcessId from, ProcessId to, std::uint64_t msg_seed,
                       Rng& legacy);
  void schedule_delivery(ProcessId from, ProcessId to, SimTime latency,
                         MessagePtr msg);
  void ensure_sender_states(std::size_t count);

  Scheduler& sched_;
  NetworkConfig config_;
  /// Loss/latency draws are not pulled from one shared stream: the draw for
  /// a message is derived from (draw_seed_, sender, sender's send count),
  /// so one process sending more never perturbs the draws another
  /// process's messages see. Co-hosted groups (topic shards) depend on
  /// this for isolation; within one group it also makes per-link behavior
  /// independent of global send interleaving.
  std::uint64_t draw_seed_;
  /// First pid of the dense tables; handlers_/senders_ index (pid - base).
  ProcessId pid_base_ = 0;
  std::vector<SenderState> senders_;  // indexed by pid - pid_base_
  std::unordered_map<ProcessId, std::uint64_t> sparse_send_seq_;
  std::vector<HandlerSlot> handlers_;  // indexed by ProcessId
  /// Backing storage for std::function handlers attached through the
  /// compat overload (keyed by pid; freed on detach/re-attach).
  std::unordered_map<ProcessId, std::unique_ptr<Handler>> boxed_handlers_;
  LinkFilter filter_;
  std::vector<std::pair<FilterToken, LinkFilter>> filters_;
  FilterToken next_filter_token_ = 1;
  Transcoder transcoder_;
  LossModel loss_model_;
  LatencyModel latency_model_;
  double duplicate_probability_ = 0.0;
  double reorder_probability_ = 0.0;
  SimTime reorder_window_ = 0;
  NetworkCounters counters_;
};

/// A LogNormal latency distribution: exp(ln(median) + sigma * N(0,1)),
/// clamped to [floor, cap]. `median` is the 50th percentile (the LogNormal
/// is specified by its median, not its mean, so the knob reads directly
/// off a WAN RTT chart); sigma is the log-space spread — 0.5 gives a p99
/// of ~3.2x the median, the heavy tail WAN paths actually show.
struct LogNormalParams {
  SimTime median = sim_ms(1);
  double sigma = 0.5;
};

/// LatencyModel drawing every link from one LogNormal profile.
Network::LatencyModel make_lognormal_latency(LogNormalParams params,
                                             SimTime floor, SimTime cap);

/// Per-zone WAN model: links within a zone (zone_of(from) == zone_of(to))
/// draw from `local`, links crossing zones from `wan`. `zone_of` must be a
/// pure function of the pid (e.g. an address-prefix bucket).
Network::LatencyModel make_zoned_latency(
    std::function<std::uint32_t(ProcessId)> zone_of, LogNormalParams local,
    LogNormalParams wan, SimTime floor, SimTime cap);

}  // namespace pmc

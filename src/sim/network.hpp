// Simulated unreliable network (paper Sec. 4.1's model): every message is
// independently lost with probability ε; delivery latency is uniform in
// [latency_min, latency_max], which the analysis requires to stay below the
// gossip period P. Loss can change mid-run (scenario loss bursts) and any
// number of link filters can be layered to model concurrent partitions.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/rng.hpp"
#include "sim/scheduler.hpp"

namespace pmc {

using ProcessId = std::uint32_t;
constexpr ProcessId kNoProcess = 0xffffffffU;

/// Kind tag carried by every message so receivers dispatch with a switch
/// instead of a dynamic_cast chain. Values 1..13 deliberately mirror
/// wire::MessageTag so the codec can reuse the same discriminator
/// (static_asserted in wire/messages.cpp). Treecast (14) is sim-only: it
/// has no wire encoding, and encode_message rejects it.
enum class MsgKind : std::uint8_t {
  Other = 0,  ///< untagged payloads (tests, ad-hoc messages)
  Gossip = 1,
  MembershipDigest = 2,
  MembershipUpdate = 3,
  JoinRequest = 4,
  ViewTransfer = 5,
  Leave = 6,
  FloodGossip = 7,
  GenuineGossip = 8,
  SuspectQuery = 9,
  SuspectReply = 10,
  EventDigest = 11,
  EventRequest = 12,
  EventPayload = 13,
  Treecast = 14,
};

/// Base class for simulated message payloads. Payloads are immutable and
/// shared between in-flight copies (a gossip to F destinations enqueues F
/// references, not F copies). Subclasses stamp their kind in their default
/// constructor; receivers trust the tag and static_cast down.
struct MessageBase {
  constexpr explicit MessageBase(MsgKind k = MsgKind::Other) noexcept
      : kind(k) {}
  virtual ~MessageBase() = default;

  const MsgKind kind;
};
using MessagePtr = std::shared_ptr<const MessageBase>;

struct NetworkConfig {
  double loss_probability = 0.0;  ///< ε — independent per message
  SimTime latency_min = sim_us(100);
  SimTime latency_max = sim_us(900);
};

struct NetworkCounters {
  std::uint64_t sent = 0;
  std::uint64_t delivered = 0;
  std::uint64_t lost = 0;       ///< dropped by ε
  std::uint64_t filtered = 0;   ///< dropped by a link filter (partition)
  std::uint64_t dead_target = 0;  ///< target crashed or unregistered

  friend bool operator==(const NetworkCounters&, const NetworkCounters&) =
      default;
};

class Network {
 public:
  using Handler = std::function<void(ProcessId from, const MessagePtr&)>;
  using LinkFilter = std::function<bool(ProcessId from, ProcessId to)>;

  Network(Scheduler& sched, NetworkConfig config, Rng rng);

  /// Registers the receive handler for `id`; overrides any previous one.
  void attach(ProcessId id, Handler handler);
  /// Removes the handler (in-flight messages to `id` are counted dead).
  void detach(ProcessId id);
  bool attached(ProcessId id) const noexcept;

  /// Sends `msg` from `from` to `to`; loss and latency are applied here.
  void send(ProcessId from, ProcessId to, MessagePtr msg);

  /// Changes ε mid-run (scenario loss bursts). Messages already in flight
  /// are unaffected; only subsequent send() calls draw against the new ε.
  void set_loss(double eps);

  /// When set, ε is asked per message instead of read from the config:
  /// model(from, to) must return a probability in [0, 1]. A sharded
  /// runtime installs a model that maps the sender's pid range to its
  /// shard's current ε, so one shard's loss burst never leaks into
  /// another. Pass nullptr to fall back to the scalar set_loss ε.
  using LossModel = std::function<double(ProcessId from, ProcessId to)>;
  void set_loss_model(LossModel model) { loss_model_ = std::move(model); }

  /// When set, messages with filter(from, to) == false are dropped
  /// (simulates partitions). Pass nullptr to clear.
  void set_link_filter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Layered link filters for concurrent partitions: a message passes only
  /// if *every* installed filter (and the legacy set_link_filter slot)
  /// accepts it. Returns a token for remove_link_filter (partition heal).
  using FilterToken = std::uint64_t;
  FilterToken add_link_filter(LinkFilter filter);
  /// Removes a layered filter; a no-op for unknown/already-removed tokens.
  void remove_link_filter(FilterToken token);
  std::size_t link_filter_count() const noexcept { return filters_.size(); }

  /// When set, every message passes through this hook before delivery —
  /// e.g. a serialize-then-parse round trip through the wire codec, so
  /// tests exercise the exact bytes a deployment would put on a socket.
  /// Returning nullptr drops the message (counted as filtered).
  using Transcoder = std::function<MessagePtr(const MessagePtr&)>;
  void set_transcoder(Transcoder transcoder) {
    transcoder_ = std::move(transcoder);
  }

  const NetworkCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = NetworkCounters{}; }

  Scheduler& scheduler() noexcept { return sched_; }
  const NetworkConfig& config() const noexcept { return config_; }

 private:
  Scheduler& sched_;
  NetworkConfig config_;
  /// Loss/latency draws are not pulled from one shared stream: the draw for
  /// a message is derived from (draw_seed_, sender, sender's send count),
  /// so one process sending more never perturbs the draws another
  /// process's messages see. Co-hosted groups (topic shards) depend on
  /// this for isolation; within one group it also makes per-link behavior
  /// independent of global send interleaving.
  std::uint64_t draw_seed_;
  std::vector<std::uint64_t> send_seq_;  // per-sender send counts
  std::unordered_map<ProcessId, std::uint64_t> sparse_send_seq_;
  std::vector<Handler> handlers_;        // indexed by ProcessId
  LinkFilter filter_;
  std::vector<std::pair<FilterToken, LinkFilter>> filters_;
  FilterToken next_filter_token_ = 1;
  Transcoder transcoder_;
  LossModel loss_model_;
  NetworkCounters counters_;
};

}  // namespace pmc

// Fixed-size worker pool for embarrassingly parallel job batches.
//
// ShardedSim's epoch loop needs exactly one primitive: "run fn(s) for every
// shard s, on up to T threads, and do not return until all of them
// finished". WorkerPool provides that and nothing more — each lane owns a
// fixed contiguous stripe of the index range, so a given job index lands
// on the same lane batch after batch (ShardedSim calls run() once per
// epoch: sticky stripes keep each shard's allocations and cache lines on
// one thread instead of migrating every epoch, which is worth far more
// than work stealing for thousands of near-uniform shards). run() is a
// full barrier: every write a job made happens-before run() returning
// (the pool's mutex/condition-variable handshake publishes it).
//
// Determinism contract: the pool never decides *what* runs, only *where*.
// Callers must hand it jobs that share no mutable state (ShardedSim's
// shards each own their Runtime, Network, Interns, and RNG streams), in
// which case the result is bitwise independent of the thread count and of
// which worker ran which job. A pool constructed with threads == 1 spawns
// no workers at all: run() executes the jobs inline on the caller, in
// index order — the serial reference every multi-threaded run must match.
//
// Exceptions: a job that throws poisons the batch; run() rethrows the
// first exception on the calling thread after the batch drains (remaining
// jobs still run — shards must stay in lockstep even when one fails).
#pragma once

#include <condition_variable>
#include <cstddef>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pmc {

class WorkerPool {
 public:
  using JobFn = std::function<void(std::size_t)>;

  /// A pool of `threads` execution lanes: the calling thread plus
  /// threads - 1 spawned workers (threads == 1 spawns nothing).
  explicit WorkerPool(std::size_t threads);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  /// Execution lanes, counting the caller.
  std::size_t thread_count() const noexcept { return workers_.size() + 1; }

  /// Runs fn(0) .. fn(jobs - 1), distributing indices over the lanes;
  /// blocks until every job completed. Serial (single-lane) pools run the
  /// jobs inline in index order.
  void run(std::size_t jobs, const JobFn& fn);

  /// Lane count for a request: `requested` as given, 0 = one lane per
  /// hardware core; never more lanes than jobs (extra threads would only
  /// idle at the barrier).
  static std::size_t resolve_threads(std::size_t requested,
                                     std::size_t jobs);

 private:
  void worker_loop(std::size_t lane);
  /// Runs `lane`'s contiguous stripe of [0, jobs): stripes differ in size
  /// by at most one and cover the range exactly.
  void drain(std::size_t lane, const JobFn& fn, std::size_t jobs);

  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable start_cv_;  // batch_ advanced or stop_
  std::condition_variable done_cv_;   // running_ reached zero
  std::uint64_t batch_ = 0;           // generation workers wait on
  const JobFn* fn_ = nullptr;         // valid for the current batch only
  std::size_t jobs_ = 0;
  std::size_t running_ = 0;  // workers still inside the current batch
  bool stop_ = false;
  std::exception_ptr error_;  // first job exception of the batch
};

}  // namespace pmc

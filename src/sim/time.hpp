// Simulated time. Microsecond resolution keeps gossip periods (milliseconds,
// paper Fig. 3 "every P milliseconds") and sub-period network latencies
// exactly representable as integers, avoiding floating-point time drift.
#pragma once

#include <cstdint>

namespace pmc {

using SimTime = std::int64_t;  // microseconds since simulation start

constexpr SimTime sim_us(std::int64_t us) { return us; }
constexpr SimTime sim_ms(std::int64_t ms) { return ms * 1000; }
constexpr SimTime sim_sec(std::int64_t s) { return s * 1000 * 1000; }

}  // namespace pmc

#include "sim/worker_pool.hpp"

#include <algorithm>

namespace pmc {

WorkerPool::WorkerPool(std::size_t threads) {
  if (threads < 1) threads = 1;
  workers_.reserve(threads - 1);
  for (std::size_t i = 0; i + 1 < threads; ++i) {
    // Worker i owns lane i; the caller drains the last lane.
    workers_.emplace_back([this, i] { worker_loop(i); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

std::size_t WorkerPool::resolve_threads(std::size_t requested,
                                        std::size_t jobs) {
  std::size_t t = requested;
  if (t == 0) {
    t = std::thread::hardware_concurrency();
    if (t == 0) t = 1;
  }
  return std::max<std::size_t>(1, std::min(t, std::max<std::size_t>(jobs, 1)));
}

void WorkerPool::drain(std::size_t lane, const JobFn& fn,
                       std::size_t jobs) {
  // Lane stripes are a fixed function of (lane, lanes, jobs): the first
  // `jobs % lanes` lanes take one extra job. ShardedSim calls run() with
  // the same job count every epoch, so a given shard sticks to one thread
  // for the whole simulation — its event allocations are freed by the
  // thread that made them and its hot state stays in one core's cache.
  const std::size_t lanes = workers_.size() + 1;
  const std::size_t per = jobs / lanes;
  const std::size_t extra = jobs % lanes;
  const std::size_t begin = lane * per + std::min(lane, extra);
  const std::size_t end = begin + per + (lane < extra ? 1 : 0);
  // A throwing job must not starve the rest of the stripe (the batch
  // always drains); the first exception resurfaces once the stripe is
  // done and the caller's capture path takes it from there.
  std::exception_ptr err;
  for (std::size_t i = begin; i < end; ++i) {
    try {
      fn(i);
    } catch (...) {
      if (!err) err = std::current_exception();
    }
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::run(std::size_t jobs, const JobFn& fn) {
  if (jobs == 0) return;
  if (workers_.empty()) {
    // Serial pool: lane 0's stripe is the whole range, executed inline in
    // index order — the reference order, with the same drain-then-rethrow
    // contract as the threaded path.
    drain(0, fn, jobs);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    fn_ = &fn;
    jobs_ = jobs;
    running_ = workers_.size();
    error_ = nullptr;
    ++batch_;
  }
  start_cv_.notify_all();

  // The caller is a lane too (the last one); its exceptions go through the
  // same capture path so one rethrow covers every lane.
  try {
    drain(workers_.size(), fn, jobs);
  } catch (...) {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_) error_ = std::current_exception();
  }

  std::exception_ptr err;
  {
    std::unique_lock<std::mutex> lock(mu_);
    done_cv_.wait(lock, [this] { return running_ == 0; });
    fn_ = nullptr;
    err = error_;
    error_ = nullptr;
  }
  if (err) std::rethrow_exception(err);
}

void WorkerPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  for (;;) {
    const JobFn* fn = nullptr;
    std::size_t jobs = 0;
    {
      std::unique_lock<std::mutex> lock(mu_);
      start_cv_.wait(lock, [&] { return stop_ || batch_ != seen; });
      if (stop_) return;
      seen = batch_;
      fn = fn_;
      jobs = jobs_;
    }
    try {
      drain(lane, *fn, jobs);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_) error_ = std::current_exception();
    }
    bool last = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      last = (--running_ == 0);
    }
    if (last) done_cv_.notify_all();
  }
}

}  // namespace pmc

#include "sim/network.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/contract.hpp"
#include "common/hash.hpp"

namespace pmc {

namespace {
/// Pids below this use the dense per-sender table; a sentinel-like sender
/// falls back to the sparse map instead of forcing a huge resize.
constexpr ProcessId kDenseSenderLimit = ProcessId{1} << 26;

// Injector stream labels (see the header comment): each per-message
// injector draw runs on Rng(fnv1a(msg_seed, label)), derived only when the
// injector is on, so calm runs consume exactly the legacy draws.
constexpr std::uint64_t kLatencyDrawLabel = 0x1a7e9c1d;
constexpr std::uint64_t kDuplicateDrawLabel = 0xd0b1e77a;
constexpr std::uint64_t kReorderDrawLabel = 0x5e0cde55;
}  // namespace

Network::Network(Scheduler& sched, NetworkConfig config, Rng rng)
    : sched_(sched), config_(config), draw_seed_(rng.next_u64()) {
  PMC_EXPECTS(config_.loss_probability >= 0.0 &&
              config_.loss_probability <= 1.0);
  PMC_EXPECTS(config_.latency_min >= 0 &&
              config_.latency_min <= config_.latency_max);
}

void Network::ensure_sender_states(std::size_t count) {
  const std::size_t old = senders_.size();
  if (count <= old) return;
  senders_.resize(count);
  // The prefix hashes the *global* pid: rebasing relocates state, it must
  // never relabel a sender's draw stream.
  for (std::size_t i = old; i < count; ++i)
    senders_[i].prefix = fnv1a_u64(kFnv1aBasis ^ draw_seed_, pid_base_ + i);
}

void Network::reserve(std::size_t max_processes) {
  PMC_EXPECTS(max_processes <= kDenseSenderLimit);
  if (max_processes > handlers_.size()) handlers_.resize(max_processes);
  ensure_sender_states(max_processes);
}

void Network::reserve_range(ProcessId pid_base, std::size_t count) {
  PMC_EXPECTS(handlers_.empty() && senders_.empty());
  pid_base_ = pid_base;
  reserve(count);
}

void Network::attach(ProcessId id, void* ctx, DispatchFn fn) {
  PMC_EXPECTS(fn != nullptr);
  PMC_EXPECTS(id >= pid_base_);
  const std::size_t idx = id - pid_base_;
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  handlers_[idx] = HandlerSlot{fn, ctx};
  boxed_handlers_.erase(id);
}

void Network::attach(ProcessId id, Handler handler) {
  PMC_EXPECTS(handler != nullptr);
  PMC_EXPECTS(id >= pid_base_);
  auto box = std::make_unique<Handler>(std::move(handler));
  Handler* raw = box.get();
  const std::size_t idx = id - pid_base_;
  if (idx >= handlers_.size()) handlers_.resize(idx + 1);
  handlers_[idx] = HandlerSlot{
      [](void* ctx, ProcessId from, const MessagePtr& msg) {
        (*static_cast<Handler*>(ctx))(from, msg);
      },
      raw};
  boxed_handlers_[id] = std::move(box);
}

void Network::detach(ProcessId id) {
  if (id >= pid_base_ && id - pid_base_ < handlers_.size())
    handlers_[id - pid_base_] = HandlerSlot{};
  boxed_handlers_.erase(id);
}

bool Network::attached(ProcessId id) const noexcept {
  return id >= pid_base_ && id - pid_base_ < handlers_.size() &&
         handlers_[id - pid_base_].fn != nullptr;
}

void Network::set_loss(double eps) {
  PMC_EXPECTS(eps >= 0.0 && eps <= 1.0);
  config_.loss_probability = eps;
}

void Network::set_duplication(double prob) {
  PMC_EXPECTS(prob >= 0.0 && prob <= 1.0);
  duplicate_probability_ = prob;
}

void Network::set_reorder(double prob, SimTime window) {
  PMC_EXPECTS(prob >= 0.0 && prob <= 1.0);
  PMC_EXPECTS(window >= 0);
  reorder_probability_ = prob;
  reorder_window_ = window;
}

Network::FilterToken Network::add_link_filter(LinkFilter filter) {
  PMC_EXPECTS(filter != nullptr);
  const FilterToken token = next_filter_token_++;
  filters_.emplace_back(token, std::move(filter));
  return token;
}

void Network::remove_link_filter(FilterToken token) {
  std::erase_if(filters_,
                [token](const auto& entry) { return entry.first == token; });
}

bool Network::passes_filters(ProcessId from, ProcessId to) const {
  if (filter_ && !filter_(from, to)) return false;
  for (const auto& [token, filter] : filters_) {
    if (!filter(from, to)) return false;
  }
  return true;
}

std::uint64_t Network::next_draw_seed(ProcessId from) {
  // Labeled per-message draw: (seed, sender, sender-sequence) alone decide
  // loss and latency (see draw_seed_'s comment). The sender half of the
  // hash is memoized per pid; only the sequence byte-mix runs per message.
  if (from >= pid_base_ && from - pid_base_ < kDenseSenderLimit) {
    const std::size_t idx = from - pid_base_;
    if (idx >= senders_.size()) ensure_sender_states(idx + 1);
    SenderState& s = senders_[idx];
    return fnv1a_u64(s.prefix, s.seq++);
  }
  return fnv1a_u64(fnv1a_u64(kFnv1aBasis ^ draw_seed_, from),
                   sparse_send_seq_[from]++);
}

SimTime Network::draw_latency(ProcessId from, ProcessId to,
                              std::uint64_t msg_seed, Rng& legacy) {
  if (latency_model_) {
    Rng model_rng(fnv1a_u64(msg_seed, kLatencyDrawLabel));
    const SimTime latency = latency_model_(from, to, model_rng);
    PMC_EXPECTS(latency >= 0);
    return latency;
  }
  const SimTime span = config_.latency_max - config_.latency_min;
  return config_.latency_min +
         (span > 0 ? static_cast<SimTime>(legacy.next_below(
                         static_cast<std::uint64_t>(span) + 1))
                   : 0);
}

void Network::schedule_delivery(ProcessId from, ProcessId to, SimTime latency,
                                MessagePtr msg) {
  // The capture list fits UniqueFunction's inline storage: delivery costs
  // no allocation beyond the shared payload's refcount bump.
  sched_.schedule_after(latency, [this, from, to, msg = std::move(msg)] {
    const std::size_t idx = to - pid_base_;
    if (to >= pid_base_ && idx < handlers_.size() &&
        handlers_[idx].fn != nullptr) {
      ++counters_.delivered;
      handlers_[idx].fn(handlers_[idx].ctx, from, msg);
    } else {
      ++counters_.dead_target;
    }
  });
}

void Network::deliver_after_draw(ProcessId from, ProcessId to,
                                 MessagePtr msg) {
  const double eps =
      loss_model_ ? loss_model_(from, to) : config_.loss_probability;
  PMC_EXPECTS(eps >= 0.0 && eps <= 1.0);
  const std::uint64_t msg_seed = next_draw_seed(from);
  Rng draw(msg_seed);
  if (eps > 0.0 && draw.bernoulli(eps)) {
    ++counters_.lost;
    return;
  }
  SimTime latency = draw_latency(from, to, msg_seed, draw);
  // Injector draws run on their own (msg_seed, label) streams and only
  // when the injector is on — so enabling one never shifts the loss or
  // latency draws, and calm runs replay builds that predate the injectors.
  if (reorder_probability_ > 0.0) {
    Rng reorder(fnv1a_u64(msg_seed, kReorderDrawLabel));
    if (reorder.bernoulli(reorder_probability_) && reorder_window_ > 0) {
      latency += static_cast<SimTime>(reorder.next_below(
          static_cast<std::uint64_t>(reorder_window_) + 1));
      ++counters_.reordered;
    }
  }
  if (duplicate_probability_ > 0.0) {
    Rng dup(fnv1a_u64(msg_seed, kDuplicateDrawLabel));
    if (dup.bernoulli(duplicate_probability_)) {
      // The clone draws its own latency from the duplicate stream (model
      // or uniform), so the copies race each other — the receiver's dedup
      // path is exercised under both orders.
      SimTime dup_latency;
      if (latency_model_) {
        dup_latency = latency_model_(from, to, dup);
        PMC_EXPECTS(dup_latency >= 0);
      } else {
        const SimTime span = config_.latency_max - config_.latency_min;
        dup_latency = config_.latency_min +
                      (span > 0 ? static_cast<SimTime>(dup.next_below(
                                      static_cast<std::uint64_t>(span) + 1))
                                : 0);
      }
      ++counters_.duplicated;
      schedule_delivery(from, to, dup_latency, msg);
    }
  }
  schedule_delivery(from, to, latency, std::move(msg));
}

void Network::send(ProcessId from, ProcessId to, MessagePtr msg) {
  PMC_EXPECTS(msg != nullptr);
  ++counters_.sent;
  if (!passes_filters(from, to)) {
    ++counters_.filtered;
    return;
  }
  if (transcoder_) {
    msg = transcoder_(msg);
    if (msg == nullptr) {
      ++counters_.filtered;
      return;
    }
  }
  deliver_after_draw(from, to, std::move(msg));
}

namespace {

/// One LogNormal draw: median * exp(sigma * z), rounded to integer
/// sim-time and clamped into [floor, cap]. llround pins the float ->
/// sim-time edge to a fully specified rounding.
SimTime lognormal_draw(const LogNormalParams& params, SimTime floor,
                       SimTime cap, Rng& rng) {
  const double sample =
      static_cast<double>(params.median) * std::exp(params.sigma *
                                                    rng.next_normal());
  const double capped =
      std::min(sample, static_cast<double>(std::numeric_limits<SimTime>::max()));
  return std::clamp(static_cast<SimTime>(std::llround(capped)), floor, cap);
}

void check_lognormal(const LogNormalParams& params, SimTime floor,
                     SimTime cap) {
  PMC_EXPECTS(params.median > 0);
  PMC_EXPECTS(params.sigma >= 0.0 && params.sigma <= 4.0);
  PMC_EXPECTS(floor >= 0 && floor <= cap);
}

}  // namespace

Network::LatencyModel make_lognormal_latency(LogNormalParams params,
                                             SimTime floor, SimTime cap) {
  check_lognormal(params, floor, cap);
  return [params, floor, cap](ProcessId, ProcessId, Rng& rng) {
    return lognormal_draw(params, floor, cap, rng);
  };
}

Network::LatencyModel make_zoned_latency(
    std::function<std::uint32_t(ProcessId)> zone_of, LogNormalParams local,
    LogNormalParams wan, SimTime floor, SimTime cap) {
  PMC_EXPECTS(zone_of != nullptr);
  check_lognormal(local, floor, cap);
  check_lognormal(wan, floor, cap);
  return [zone_of = std::move(zone_of), local, wan, floor,
          cap](ProcessId from, ProcessId to, Rng& rng) {
    const LogNormalParams& params =
        zone_of(from) == zone_of(to) ? local : wan;
    return lognormal_draw(params, floor, cap, rng);
  };
}

void Network::send_multi(ProcessId from, std::span<const ProcessId> to,
                         const MessagePtr& msg) {
  PMC_EXPECTS(msg != nullptr);
  // The transcoder runs at most once for the whole fan-out — but only
  // when some destination actually passes the filters, so a fully
  // partitioned fan-out costs (and counts) exactly what N send() calls
  // would.
  MessagePtr shared = msg;
  bool transcoded = transcoder_ == nullptr;
  for (const ProcessId dest : to) {
    ++counters_.sent;
    if (!passes_filters(from, dest)) {
      ++counters_.filtered;
      continue;
    }
    if (!transcoded) {
      shared = transcoder_(shared);
      transcoded = true;
    }
    if (shared == nullptr) {
      ++counters_.filtered;
      continue;
    }
    deliver_after_draw(from, dest, shared);
  }
}

}  // namespace pmc

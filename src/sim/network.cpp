#include "sim/network.hpp"

#include "common/contract.hpp"
#include "common/hash.hpp"

namespace pmc {

Network::Network(Scheduler& sched, NetworkConfig config, Rng rng)
    : sched_(sched), config_(config), draw_seed_(rng.next_u64()) {
  PMC_EXPECTS(config_.loss_probability >= 0.0 &&
              config_.loss_probability <= 1.0);
  PMC_EXPECTS(config_.latency_min >= 0 &&
              config_.latency_min <= config_.latency_max);
}

void Network::attach(ProcessId id, Handler handler) {
  PMC_EXPECTS(handler != nullptr);
  if (id >= handlers_.size()) handlers_.resize(id + 1);
  handlers_[id] = std::move(handler);
}

void Network::detach(ProcessId id) {
  if (id < handlers_.size()) handlers_[id] = nullptr;
}

bool Network::attached(ProcessId id) const noexcept {
  return id < handlers_.size() && handlers_[id] != nullptr;
}

void Network::set_loss(double eps) {
  PMC_EXPECTS(eps >= 0.0 && eps <= 1.0);
  config_.loss_probability = eps;
}

Network::FilterToken Network::add_link_filter(LinkFilter filter) {
  PMC_EXPECTS(filter != nullptr);
  const FilterToken token = next_filter_token_++;
  filters_.emplace_back(token, std::move(filter));
  return token;
}

void Network::remove_link_filter(FilterToken token) {
  std::erase_if(filters_,
                [token](const auto& entry) { return entry.first == token; });
}

void Network::send(ProcessId from, ProcessId to, MessagePtr msg) {
  PMC_EXPECTS(msg != nullptr);
  ++counters_.sent;
  if (filter_ && !filter_(from, to)) {
    ++counters_.filtered;
    return;
  }
  for (const auto& [token, filter] : filters_) {
    if (!filter(from, to)) {
      ++counters_.filtered;
      return;
    }
  }
  if (transcoder_) {
    msg = transcoder_(msg);
    if (msg == nullptr) {
      ++counters_.filtered;
      return;
    }
  }
  const double eps =
      loss_model_ ? loss_model_(from, to) : config_.loss_probability;
  PMC_EXPECTS(eps >= 0.0 && eps <= 1.0);
  // Labeled per-message draw: (seed, sender, sender-sequence) alone decide
  // loss and latency (see draw_seed_'s comment). The dense counter array
  // covers every realistic pid; a sentinel-like sender falls back to the
  // sparse map instead of forcing a huge resize.
  std::uint64_t seq = 0;
  if (from < (ProcessId{1} << 26)) {
    if (from >= send_seq_.size()) send_seq_.resize(from + 1, 0);
    seq = send_seq_[from]++;
  } else {
    seq = sparse_send_seq_[from]++;
  }
  Rng draw(fnv1a_u64(fnv1a_u64(kFnv1aBasis ^ draw_seed_, from), seq));
  if (eps > 0.0 && draw.bernoulli(eps)) {
    ++counters_.lost;
    return;
  }
  const SimTime span = config_.latency_max - config_.latency_min;
  const SimTime latency =
      config_.latency_min +
      (span > 0 ? static_cast<SimTime>(
                      draw.next_below(static_cast<std::uint64_t>(span) + 1))
                : 0);
  sched_.schedule_after(latency, [this, from, to, msg = std::move(msg)] {
    if (to < handlers_.size() && handlers_[to]) {
      ++counters_.delivered;
      handlers_[to](from, msg);
    } else {
      ++counters_.dead_target;
    }
  });
}

}  // namespace pmc

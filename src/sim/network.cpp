#include "sim/network.hpp"

#include "common/contract.hpp"

namespace pmc {

Network::Network(Scheduler& sched, NetworkConfig config, Rng rng)
    : sched_(sched), config_(config), rng_(rng) {
  PMC_EXPECTS(config_.loss_probability >= 0.0 &&
              config_.loss_probability <= 1.0);
  PMC_EXPECTS(config_.latency_min >= 0 &&
              config_.latency_min <= config_.latency_max);
}

void Network::attach(ProcessId id, Handler handler) {
  PMC_EXPECTS(handler != nullptr);
  if (id >= handlers_.size()) handlers_.resize(id + 1);
  handlers_[id] = std::move(handler);
}

void Network::detach(ProcessId id) {
  if (id < handlers_.size()) handlers_[id] = nullptr;
}

bool Network::attached(ProcessId id) const noexcept {
  return id < handlers_.size() && handlers_[id] != nullptr;
}

void Network::set_loss(double eps) {
  PMC_EXPECTS(eps >= 0.0 && eps <= 1.0);
  config_.loss_probability = eps;
}

Network::FilterToken Network::add_link_filter(LinkFilter filter) {
  PMC_EXPECTS(filter != nullptr);
  const FilterToken token = next_filter_token_++;
  filters_.emplace_back(token, std::move(filter));
  return token;
}

void Network::remove_link_filter(FilterToken token) {
  std::erase_if(filters_,
                [token](const auto& entry) { return entry.first == token; });
}

void Network::send(ProcessId from, ProcessId to, MessagePtr msg) {
  PMC_EXPECTS(msg != nullptr);
  ++counters_.sent;
  if (filter_ && !filter_(from, to)) {
    ++counters_.filtered;
    return;
  }
  for (const auto& [token, filter] : filters_) {
    if (!filter(from, to)) {
      ++counters_.filtered;
      return;
    }
  }
  if (transcoder_) {
    msg = transcoder_(msg);
    if (msg == nullptr) {
      ++counters_.filtered;
      return;
    }
  }
  if (config_.loss_probability > 0.0 &&
      rng_.bernoulli(config_.loss_probability)) {
    ++counters_.lost;
    return;
  }
  const SimTime span = config_.latency_max - config_.latency_min;
  const SimTime latency =
      config_.latency_min +
      (span > 0 ? static_cast<SimTime>(
                      rng_.next_below(static_cast<std::uint64_t>(span) + 1))
                : 0);
  sched_.schedule_after(latency, [this, from, to, msg = std::move(msg)] {
    if (to < handlers_.size() && handlers_[to]) {
      ++counters_.delivered;
      handlers_[to](from, msg);
    } else {
      ++counters_.dead_target;
    }
  });
}

}  // namespace pmc

// Reference discrete-event scheduler: a time-ordered queue of callbacks with
// stable FIFO tie-breaking (same-time events run in scheduling order, which
// keeps runs reproducible).
//
// This is the indexed-binary-heap implementation the simulator shipped with
// through PR 4. The production scheduler is now the calendar queue in
// scheduler.hpp (same contract, batched same-time cohorts); this one is kept
// as the behavioral oracle: the randomized property test
// (tests/scheduler_property_test.cpp) runs both side by side and asserts
// they execute identical (time, seq) sequences, and builds may select it
// wholesale with -DPMC_REFERENCE_SCHEDULER for bisection.
//
// The queue is an *indexed* binary heap: every pending event owns a slot in
// a side table that tracks its current heap position, so cancel() removes
// the event from the heap in place in O(log n) — no tombstones linger, and
// pending() is exactly the heap size. Tokens are (generation, slot) pairs;
// a slot's generation is bumped when its event runs or is cancelled, so
// stale tokens (including the running event's own token) are recognized and
// ignored. Callbacks are move-only UniqueFunctions: non-copyable payloads
// move through the scheduler without copies or const_cast.
#pragma once

#include <cstdint>
#include <vector>

#include "common/unique_function.hpp"
#include "sim/time.hpp"

namespace pmc {

/// Cancellation token shared by every scheduler implementation:
/// (generation << 32) | slot, so stale tokens are recognized and ignored.
using EventToken = std::uint64_t;

class ReferenceScheduler {
 public:
  using Callback = UniqueFunction<void()>;

  /// Schedules `fn` at absolute time `at` (>= now). Returns a token usable
  /// with cancel().
  EventToken schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` `delay` after now.
  EventToken schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event in O(log n); a no-op for tokens that already
  /// ran or were already cancelled (safe to call from inside the running
  /// event itself).
  void cancel(EventToken token);

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return heap_.empty(); }
  std::size_t pending() const noexcept { return heap_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Runs the next event; returns false when the queue is empty.
  bool step();
  /// Runs events until the queue is empty or `deadline` is passed; time
  /// advances to at most `deadline`.
  void run_until(SimTime deadline);
  /// Runs until the queue drains. `max_events` guards against runaway loops.
  void run(std::uint64_t max_events = 1'000'000'000ULL);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;   // FIFO tie-break among same-time events
    std::uint32_t slot;  // owning slot in slots_
    Callback fn;
  };
  struct Slot {
    std::uint32_t pos = 0;  // heap index while busy; next free slot otherwise
    std::uint32_t generation = 1;  // bumped on release; stale tokens miss
    bool busy = false;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffU;

  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  EventToken token_for(std::uint32_t slot) const noexcept {
    return (static_cast<EventToken>(slots_[slot].generation) << 32) | slot;
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;
  void place(std::size_t i, Entry entry) noexcept;
  void sift_up(std::size_t i) noexcept;
  void sift_down(std::size_t i) noexcept;
  /// Removes heap_[i] (its slot must already be released) and restores the
  /// heap property.
  void erase_at(std::size_t i) noexcept;
  /// Pops the minimum entry, releasing its slot before returning it.
  Entry extract_top() noexcept;

  std::vector<Entry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

}  // namespace pmc

#include "sim/scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contract.hpp"

namespace pmc {

EventToken Scheduler::schedule_at(SimTime at, std::function<void()> fn) {
  PMC_EXPECTS(at >= now_);
  PMC_EXPECTS(fn != nullptr);
  const EventToken token = next_token_++;
  queue_.push(Item{at, token, std::move(fn)});
  live_.insert(token);
  return token;
}

void Scheduler::cancel(EventToken token) {
  // Only a token still awaiting execution gets a tombstone; cancelling the
  // currently running (already popped) token must be a no-op.
  if (live_.erase(token) != 0) cancelled_.insert(token);
}

bool Scheduler::pop_one() {
  while (!queue_.empty()) {
    // priority_queue::top returns const&; the function object must be moved
    // out before pop, hence the const_cast on the (about to be destroyed) top.
    Item item = std::move(const_cast<Item&>(queue_.top()));
    queue_.pop();
    const auto it = cancelled_.find(item.token);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    live_.erase(item.token);
    now_ = item.at;
    ++executed_;
    item.fn();
    return true;
  }
  return false;
}

bool Scheduler::step() { return pop_one(); }

void Scheduler::run_until(SimTime deadline) {
  while (!queue_.empty() && queue_.top().at <= deadline) {
    if (!pop_one()) break;
  }
  now_ = std::max(now_, deadline);
}

void Scheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (pop_one()) {
    if (++n >= max_events)
      throw std::runtime_error("Scheduler::run exceeded max_events");
  }
}

}  // namespace pmc

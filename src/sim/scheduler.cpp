#include "sim/scheduler.hpp"

#include <algorithm>
#include <bit>
#include <stdexcept>

#include "common/contract.hpp"

namespace pmc {

CalendarScheduler::CalendarScheduler(std::uint32_t bucket_width_log2,
                                     std::uint32_t bucket_count_log2)
    : width_log2_(bucket_width_log2),
      bucket_mask_((std::uint64_t{1} << bucket_count_log2) - 1),
      bucket_count_(std::uint64_t{1} << bucket_count_log2) {
  PMC_EXPECTS(bucket_width_log2 <= 30);
  PMC_EXPECTS(bucket_count_log2 >= 6 && bucket_count_log2 <= 22);
  buckets_.resize(bucket_count_);
  occupancy_.assign(bucket_count_ / 64, 0);
}

// --- slot table ------------------------------------------------------------

std::uint32_t CalendarScheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].pos;
    slots_[slot].busy = true;
    return slot;
  }
  PMC_EXPECTS(slots_.size() < kNoSlot);
  slots_.push_back(Slot{0, 0, 1, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void CalendarScheduler::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.busy = false;
  ++s.generation;
  s.pos = free_head_;
  free_head_ = slot;
}

// --- wheel -----------------------------------------------------------------

void CalendarScheduler::wheel_insert(std::uint32_t index, Entry entry) {
  auto& bucket = buckets_[index];
  if (bucket.capacity() == 0 && !spares_.empty()) {
    bucket = std::move(spares_.back());  // adopt the largest spare buffer
    spares_.pop_back();
  }
  slots_[entry.slot].home = index;
  slots_[entry.slot].pos = static_cast<std::uint32_t>(bucket.size());
  bucket.push_back(std::move(entry));
  set_occupied(index);
  ++wheel_count_;
  // An append behind the cursor's sorted tail must be folded in before the
  // next pop (it may precede later tail entries in (at, seq) order).
  if (index == index_of(cursor_)) active_dirty_ = true;
}

void CalendarScheduler::erase_from_wheel(std::uint32_t index,
                                         std::uint32_t pos) {
  auto& bucket = buckets_[index];
  const std::size_t last = bucket.size() - 1;
  if (pos != last) {
    bucket[pos] = std::move(bucket[last]);
    slots_[bucket[pos].slot].pos = pos;
    if (index == index_of(cursor_)) active_dirty_ = true;
  }
  bucket.pop_back();
  --wheel_count_;
  const bool is_cursor = index == index_of(cursor_);
  if (bucket.size() == (is_cursor ? active_pos_ : 0)) {
    recycle_bucket(bucket);  // drops the consumed prefix too
    if (is_cursor) {
      active_pos_ = 0;
      active_dirty_ = false;
    }
    clear_occupied(index);
  }
}

void CalendarScheduler::recycle_bucket(std::vector<Entry>& bucket) {
  bucket.clear();
  if (bucket.capacity() == 0) return;
  const auto it = std::lower_bound(
      spares_.begin(), spares_.end(), bucket.capacity(),
      [](const std::vector<Entry>& s, std::size_t cap) noexcept {
        return s.capacity() < cap;
      });
  spares_.insert(it, std::move(bucket));
  bucket = std::vector<Entry>();
  if (spares_.size() > kMaxSpares) spares_.erase(spares_.begin());
}

std::uint32_t CalendarScheduler::scan_occupied(
    std::uint32_t from) const noexcept {
  // First candidate is the bit after `from`; wrap around the whole wheel.
  const auto words = static_cast<std::uint32_t>(occupancy_.size());
  std::uint32_t bit = (from + 1) & static_cast<std::uint32_t>(bucket_mask_);
  std::uint32_t word = bit >> 6;
  std::uint64_t w = occupancy_[word] >> (bit & 63);
  if (w != 0)
    return bit + static_cast<std::uint32_t>(std::countr_zero(w));
  for (std::uint32_t i = 1; i <= words; ++i) {
    const std::uint32_t next = (word + i) % words;
    if (occupancy_[next] != 0)
      return next * 64 +
             static_cast<std::uint32_t>(std::countr_zero(occupancy_[next]));
  }
  return from;  // unreachable per contract (caller checked wheel_count_)
}

// --- overflow heap ---------------------------------------------------------

void CalendarScheduler::heap_place(std::size_t i, Entry entry) noexcept {
  overflow_[i] = std::move(entry);
  slots_[overflow_[i].slot].home = kHomeOverflow;
  slots_[overflow_[i].slot].pos = static_cast<std::uint32_t>(i);
}

void CalendarScheduler::heap_sift_up(std::size_t i) noexcept {
  Entry entry = std::move(overflow_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(entry, overflow_[parent])) break;
    heap_place(i, std::move(overflow_[parent]));
    i = parent;
  }
  heap_place(i, std::move(entry));
}

void CalendarScheduler::heap_sift_down(std::size_t i) noexcept {
  Entry entry = std::move(overflow_[i]);
  const std::size_t n = overflow_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(overflow_[child + 1], overflow_[child]))
      ++child;
    if (!before(overflow_[child], entry)) break;
    heap_place(i, std::move(overflow_[child]));
    i = child;
  }
  heap_place(i, std::move(entry));
}

void CalendarScheduler::heap_erase_at(std::size_t i) noexcept {
  const std::size_t last = overflow_.size() - 1;
  if (i != last) {
    heap_place(i, std::move(overflow_[last]));
    overflow_.pop_back();
    heap_sift_down(i);
    heap_sift_up(i);
  } else {
    overflow_.pop_back();
  }
}

void CalendarScheduler::drain_overflow() {
  const std::uint64_t limit = cursor_ + bucket_count_;
  while (!overflow_.empty() && bucket_of(overflow_[0].at) < limit) {
    Entry entry = std::move(overflow_[0]);
    const std::size_t last = overflow_.size() - 1;
    if (last != 0) {
      heap_place(0, std::move(overflow_[last]));
      overflow_.pop_back();
      heap_sift_down(0);
    } else {
      overflow_.pop_back();
    }
    wheel_insert(index_of(bucket_of(entry.at)), std::move(entry));
  }
}

// --- ordering & execution --------------------------------------------------

void CalendarScheduler::sort_active_tail() {
  auto& bucket = buckets_[index_of(cursor_)];
  const std::size_t begin = active_pos_;
  const std::size_t n = bucket.size() - begin;
  if (n > 1) {
    sort_keys_.clear();
    sort_keys_.reserve(n);
    for (std::size_t i = 0; i < n; ++i)
      sort_keys_.push_back(SortKey{bucket[begin + i].at,
                                   bucket[begin + i].seq,
                                   static_cast<std::uint32_t>(i)});
    std::sort(sort_keys_.begin(), sort_keys_.end(),
              [](const SortKey& a, const SortKey& b) noexcept {
                if (a.at != b.at) return a.at < b.at;
                return a.seq < b.seq;
              });
    sorted_scratch_.clear();
    sorted_scratch_.reserve(n);
    for (const SortKey& k : sort_keys_)
      sorted_scratch_.push_back(std::move(bucket[begin + k.idx]));
    for (std::size_t i = 0; i < n; ++i) {
      bucket[begin + i] = std::move(sorted_scratch_[i]);
      slots_[bucket[begin + i].slot].pos =
          static_cast<std::uint32_t>(begin + i);
    }
  }
  active_dirty_ = false;
}

bool CalendarScheduler::locate(std::uint64_t cap) {
  if (pending_ == 0) return false;
  for (;;) {
    auto& bucket = buckets_[index_of(cursor_)];
    if (bucket.size() > active_pos_) return true;
    // The cursor bucket holds at most a consumed prefix: retire it and
    // advance to wherever the next event lives.
    if (bucket.capacity() != 0) recycle_bucket(bucket);
    clear_occupied(index_of(cursor_));
    active_pos_ = 0;
    active_dirty_ = false;

    std::uint64_t next;
    if (wheel_count_ > 0) {
      const std::uint32_t idx = scan_occupied(index_of(cursor_));
      next = cursor_ + ((idx - index_of(cursor_)) & bucket_mask_);
    } else if (!overflow_.empty()) {
      next = bucket_of(overflow_[0].at);
    } else {
      return false;
    }
    if (next > cap) return false;  // nothing due at or before the cap
    cursor_ = next;
    // The bucket the cursor just reached was filled while it was not the
    // cursor bucket, so it has never been put in (at, seq) order.
    active_dirty_ = true;
    // The window end moved forward with the cursor: overflow events whose
    // bucket it passed drain in now. Drained buckets always lie at or
    // after `next` (they were beyond the previous window end), so the
    // bucket just selected stays the earliest.
    drain_overflow();
  }
}

void CalendarScheduler::run_front() {
  auto& bucket = buckets_[index_of(cursor_)];
  Entry& entry = bucket[active_pos_];
  // Move the callback out and release the slot before invoking: cancelling
  // the running event's own token is then a no-op, the callback may
  // schedule freely (bucket reallocation cannot invalidate anything still
  // needed), and the consumed entry stays behind as an inert husk until
  // its bucket is exhausted and cleared.
  Callback fn = std::move(entry.fn);
  const SimTime at = entry.at;
  release_slot(entry.slot);
  ++active_pos_;
  --wheel_count_;
  --pending_;
  now_ = at;
  ++executed_;
  fn();
}

// --- public API ------------------------------------------------------------

EventToken CalendarScheduler::schedule_at(SimTime at, Callback fn) {
  PMC_EXPECTS(at >= now_);
  PMC_EXPECTS(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  const EventToken token = token_for(slot);
  insert(Entry{at, next_seq_++, slot, std::move(fn)});
  ++pending_;
  return token;
}

void CalendarScheduler::insert(Entry entry) {
  // at >= now_ >= cursor bucket start whenever user code runs, so the
  // target bucket is never behind the cursor.
  const std::uint64_t abs = bucket_of(entry.at);
  if (abs < cursor_ + bucket_count_) {
    wheel_insert(index_of(abs), std::move(entry));
  } else {
    slots_[entry.slot].home = kHomeOverflow;
    overflow_.push_back(std::move(entry));
    heap_sift_up(overflow_.size() - 1);
  }
}

void CalendarScheduler::cancel(EventToken token) {
  const auto slot = static_cast<std::uint32_t>(token & 0xffffffffULL);
  const auto generation = static_cast<std::uint32_t>(token >> 32);
  if (slot >= slots_.size()) return;
  const Slot s = slots_[slot];
  if (!s.busy || s.generation != generation) return;
  release_slot(slot);
  --pending_;
  if (s.home == kHomeOverflow)
    heap_erase_at(s.pos);
  else
    erase_from_wheel(s.home, s.pos);
}

bool CalendarScheduler::step() {
  if (!locate(kNoCap)) return false;
  if (active_dirty_) sort_active_tail();
  run_front();
  return true;
}

void CalendarScheduler::run_until(SimTime deadline) {
  const std::uint64_t cap = deadline < 0 ? 0 : bucket_of(deadline);
  while (locate(cap)) {
    if (active_dirty_) sort_active_tail();
    if (buckets_[index_of(cursor_)][active_pos_].at > deadline) break;
    run_front();
  }
  now_ = std::max(now_, deadline);
}

void CalendarScheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events)
      throw std::runtime_error("Scheduler::run exceeded max_events");
  }
}

}  // namespace pmc

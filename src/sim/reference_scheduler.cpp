#include "sim/reference_scheduler.hpp"

#include <algorithm>
#include <stdexcept>

#include "common/contract.hpp"

namespace pmc {

std::uint32_t ReferenceScheduler::acquire_slot() {
  if (free_head_ != kNoSlot) {
    const std::uint32_t slot = free_head_;
    free_head_ = slots_[slot].pos;
    slots_[slot].busy = true;
    return slot;
  }
  PMC_EXPECTS(slots_.size() < kNoSlot);
  slots_.push_back(Slot{0, 1, true});
  return static_cast<std::uint32_t>(slots_.size() - 1);
}

void ReferenceScheduler::release_slot(std::uint32_t slot) noexcept {
  Slot& s = slots_[slot];
  s.busy = false;
  ++s.generation;
  s.pos = free_head_;
  free_head_ = slot;
}

void ReferenceScheduler::place(std::size_t i, Entry entry) noexcept {
  heap_[i] = std::move(entry);
  slots_[heap_[i].slot].pos = static_cast<std::uint32_t>(i);
}

void ReferenceScheduler::sift_up(std::size_t i) noexcept {
  Entry entry = std::move(heap_[i]);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 2;
    if (!before(entry, heap_[parent])) break;
    place(i, std::move(heap_[parent]));
    i = parent;
  }
  place(i, std::move(entry));
}

void ReferenceScheduler::sift_down(std::size_t i) noexcept {
  Entry entry = std::move(heap_[i]);
  const std::size_t n = heap_.size();
  while (true) {
    std::size_t child = 2 * i + 1;
    if (child >= n) break;
    if (child + 1 < n && before(heap_[child + 1], heap_[child])) ++child;
    if (!before(heap_[child], entry)) break;
    place(i, std::move(heap_[child]));
    i = child;
  }
  place(i, std::move(entry));
}

void ReferenceScheduler::erase_at(std::size_t i) noexcept {
  const std::size_t last = heap_.size() - 1;
  if (i != last) {
    place(i, std::move(heap_[last]));
    heap_.pop_back();
    // The displaced entry may belong above or below its new position; only
    // one of the two sifts will actually move it.
    sift_down(i);
    sift_up(i);
  } else {
    heap_.pop_back();
  }
}

ReferenceScheduler::Entry ReferenceScheduler::extract_top() noexcept {
  Entry top = std::move(heap_[0]);
  release_slot(top.slot);
  erase_at(0);
  return top;
}

EventToken ReferenceScheduler::schedule_at(SimTime at, Callback fn) {
  PMC_EXPECTS(at >= now_);
  PMC_EXPECTS(fn != nullptr);
  const std::uint32_t slot = acquire_slot();
  const EventToken token = token_for(slot);
  heap_.push_back(Entry{at, next_seq_++, slot, std::move(fn)});
  slots_[slot].pos = static_cast<std::uint32_t>(heap_.size() - 1);
  sift_up(heap_.size() - 1);
  return token;
}

void ReferenceScheduler::cancel(EventToken token) {
  const auto slot = static_cast<std::uint32_t>(token & 0xffffffffULL);
  const auto generation = static_cast<std::uint32_t>(token >> 32);
  if (slot >= slots_.size()) return;
  const Slot& s = slots_[slot];
  if (!s.busy || s.generation != generation) return;
  const std::size_t pos = s.pos;
  release_slot(slot);
  erase_at(pos);
}

bool ReferenceScheduler::step() {
  if (heap_.empty()) return false;
  // Extracting (and releasing the slot) before invoking makes cancelling
  // the running event's own token a no-op, and lets the callback schedule
  // further events freely.
  Entry top = extract_top();
  now_ = top.at;
  ++executed_;
  top.fn();
  return true;
}

void ReferenceScheduler::run_until(SimTime deadline) {
  while (!heap_.empty() && heap_.front().at <= deadline) {
    if (!step()) break;
  }
  now_ = std::max(now_, deadline);
}

void ReferenceScheduler::run(std::uint64_t max_events) {
  std::uint64_t n = 0;
  while (step()) {
    if (++n >= max_events)
      throw std::runtime_error("ReferenceScheduler::run exceeded max_events");
  }
}

}  // namespace pmc

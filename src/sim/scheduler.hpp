// Discrete-event scheduler: a time-ordered queue of callbacks with stable
// FIFO tie-breaking (same-time events run in scheduling order, which keeps
// runs reproducible).
//
// Gossip workloads are pathological for a binary heap: every node re-arms a
// period-P timer aligned to global period boundaries, so the queue is
// dominated by huge same-time cohorts that a heap sifts one element at a
// time. CalendarScheduler is a two-level calendar queue built for exactly
// that shape:
//
//   * a near-future *wheel* of 2^b buckets, each 2^w microseconds wide,
//     covering the window [cursor, cursor + 2^(b+w)). Scheduling into the
//     window is an O(1) append to the target bucket (no ordering work at
//     all); an occupancy bitmap finds the next non-empty bucket in a few
//     word scans.
//   * a far-future *overflow* heap (the same indexed-heap discipline as
//     ReferenceScheduler) for events beyond the window. As the cursor
//     advances, overflow events whose bucket enters the window drain into
//     the wheel — each event overflows at most once.
//
// A bucket is put in (at, seq) order only when the cursor reaches it — one
// key sort plus one permutation pass, so a whole same-time cohort is
// extracted by that single operation and then executed as a linear walk of
// the bucket, not n heap pops. The executed order is exactly the reference
// order — the global (at, seq) total order — which the randomized property
// test asserts run-for-run against ReferenceScheduler
// (tests/scheduler_property_test.cpp).
//
// The cancel() contract is unchanged: tokens are (generation, slot) pairs,
// stale tokens (already ran / already cancelled) are recognized and
// ignored, and cancellation is O(log n) worst case (an overflow-heap
// removal) and O(1) for wheel entries (swap-remove from a bucket that is
// re-sorted lazily if it was already active). pending() counts live events
// exactly; no tombstones outlive their bucket.
//
// Builds may fall back to the reference implementation wholesale with
// -DPMC_REFERENCE_SCHEDULER (a bisection seam: every simulator run must be
// byte-identical under either scheduler).
#pragma once

#include <cstdint>
#include <vector>

#include "common/unique_function.hpp"
#include "sim/reference_scheduler.hpp"
#include "sim/time.hpp"

namespace pmc {

class CalendarScheduler {
 public:
  using Callback = UniqueFunction<void()>;

  /// `bucket_width_log2` is the bucket span in log2 microseconds and
  /// `bucket_count_log2` the log2 number of wheel buckets; the defaults
  /// (64 us x 4096 buckets = a 262 ms window) keep both sub-period message
  /// latencies and millisecond gossip periods inside the wheel.
  explicit CalendarScheduler(std::uint32_t bucket_width_log2 = 6,
                             std::uint32_t bucket_count_log2 = 12);

  /// Schedules `fn` at absolute time `at` (>= now). Returns a token usable
  /// with cancel().
  EventToken schedule_at(SimTime at, Callback fn);
  /// Schedules `fn` `delay` after now.
  EventToken schedule_after(SimTime delay, Callback fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; a no-op for tokens that already ran or were
  /// already cancelled (safe to call from inside the running event itself).
  void cancel(EventToken token);

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return pending_ == 0; }
  std::size_t pending() const noexcept { return pending_; }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Runs the next event; returns false when the queue is empty.
  bool step();
  /// Runs events until the queue is empty or `deadline` is passed; time
  /// advances to at most `deadline`.
  void run_until(SimTime deadline);
  /// Runs until the queue drains. `max_events` guards against runaway loops.
  void run(std::uint64_t max_events = 1'000'000'000ULL);

 private:
  struct Entry {
    SimTime at;
    std::uint64_t seq;   // FIFO tie-break among same-time events
    std::uint32_t slot;  // owning slot in slots_
    Callback fn;
  };
  /// Where a pending event currently lives, so cancel() can find it:
  /// `home` is a wheel bucket index or kHomeOverflow; `pos` is the
  /// position within that container (or the free-list link while idle).
  struct Slot {
    std::uint32_t home = 0;
    std::uint32_t pos = 0;
    std::uint32_t generation = 1;  // bumped on release; stale tokens miss
    bool busy = false;
  };
  /// (at, seq, index) triple used to order a bucket without moving the fat
  /// entries more than twice (sort the keys, then apply the permutation).
  struct SortKey {
    SimTime at;
    std::uint64_t seq;
    std::uint32_t idx;
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffU;
  static constexpr std::uint32_t kHomeOverflow = 0xfffffffeU;
  /// Sentinel cap for locate(): advance the cursor wherever the next event
  /// is (step/run); run_until caps at the deadline's bucket instead so the
  /// wheel never moves past a deadline nothing was executed at.
  static constexpr std::uint64_t kNoCap = ~std::uint64_t{0};

  static bool before(const Entry& a, const Entry& b) noexcept {
    if (a.at != b.at) return a.at < b.at;
    return a.seq < b.seq;
  }

  EventToken token_for(std::uint32_t slot) const noexcept {
    return (static_cast<EventToken>(slots_[slot].generation) << 32) | slot;
  }

  std::uint64_t bucket_of(SimTime at) const noexcept {
    return static_cast<std::uint64_t>(at) >> width_log2_;
  }
  std::uint32_t index_of(std::uint64_t abs_bucket) const noexcept {
    return static_cast<std::uint32_t>(abs_bucket & bucket_mask_);
  }

  std::uint32_t acquire_slot();
  void release_slot(std::uint32_t slot) noexcept;

  void insert(Entry entry);
  void wheel_insert(std::uint32_t index, Entry entry);
  /// Swap-removes a (cancelled) wheel entry and cleans up the bucket if no
  /// live entries remain.
  void erase_from_wheel(std::uint32_t index, std::uint32_t pos);
  /// Empties a bucket and moves its heap buffer into the spare stash
  /// (largest-capacity buffers win) instead of leaving the capacity parked
  /// on the bucket. Period-aligned timer cohorts land in a *different*
  /// bucket every period, so without recycling every bucket that ever
  /// hosted a cohort retains a cohort-sized buffer — the dominant memory
  /// cost of a 10^6-process run. With it, a handful of big buffers cycle
  /// through the boundary buckets.
  void recycle_bucket(std::vector<Entry>& bucket);

  // Overflow heap (indexed, like ReferenceScheduler's).
  void heap_place(std::size_t i, Entry entry) noexcept;
  void heap_sift_up(std::size_t i) noexcept;
  void heap_sift_down(std::size_t i) noexcept;
  void heap_erase_at(std::size_t i) noexcept;

  /// Moves every overflow event whose bucket has entered the wheel window
  /// into its bucket.
  void drain_overflow();
  /// Sorts the unconsumed tail of the cursor bucket by (at, seq): one key
  /// sort + one permutation pass over the entries.
  void sort_active_tail();
  /// Positions the cursor on the next bucket with live entries, clearing
  /// exhausted buckets and draining the overflow as the window advances.
  /// Never advances the cursor past `cap` (an absolute bucket number);
  /// returns false when no event lives at or before it.
  bool locate(std::uint64_t cap);
  /// Pops the front of the (sorted) cursor bucket and runs it.
  void run_front();
  /// First occupied bucket index at circular distance >= 1 from `from`
  /// (the caller guarantees one exists).
  std::uint32_t scan_occupied(std::uint32_t from) const noexcept;

  void set_occupied(std::uint32_t index) noexcept {
    occupancy_[index >> 6] |= std::uint64_t{1} << (index & 63);
  }
  void clear_occupied(std::uint32_t index) noexcept {
    occupancy_[index >> 6] &= ~(std::uint64_t{1} << (index & 63));
  }

  std::uint32_t width_log2_;
  std::uint64_t bucket_mask_;  // bucket count - 1
  std::uint64_t bucket_count_;

  std::vector<std::vector<Entry>> buckets_;
  std::vector<std::uint64_t> occupancy_;  // one bit per bucket index
  std::uint64_t cursor_ = 0;    // absolute bucket number the wheel is at
  std::size_t active_pos_ = 0;  // consumed prefix of the cursor bucket
  bool active_dirty_ = false;   // cursor bucket's tail needs (re)sorting
  std::size_t wheel_count_ = 0;

  std::vector<Entry> overflow_;  // min-heap by (at, seq)

  std::vector<SortKey> sort_keys_;     // sort scratch, capacity reused
  std::vector<Entry> sorted_scratch_;  // permutation-apply scratch

  static constexpr std::size_t kMaxSpares = 4;
  std::vector<std::vector<Entry>> spares_;  // recycled bucket buffers,
                                            // ascending capacity

  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t pending_ = 0;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t executed_ = 0;
};

#ifdef PMC_REFERENCE_SCHEDULER
using Scheduler = ReferenceScheduler;
#else
using Scheduler = CalendarScheduler;
#endif

}  // namespace pmc

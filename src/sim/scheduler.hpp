// Discrete-event scheduler: a time-ordered queue of callbacks with stable
// FIFO tie-breaking (same-time events run in scheduling order, which keeps
// runs reproducible). Events can be cancelled by id (lazy tombstones).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_set>
#include <vector>

#include "sim/time.hpp"

namespace pmc {

using EventToken = std::uint64_t;

class Scheduler {
 public:
  /// Schedules `fn` at absolute time `at` (>= now). Returns a token usable
  /// with cancel().
  EventToken schedule_at(SimTime at, std::function<void()> fn);
  /// Schedules `fn` `delay` after now.
  EventToken schedule_after(SimTime delay, std::function<void()> fn) {
    return schedule_at(now_ + delay, std::move(fn));
  }

  /// Cancels a pending event; a no-op for tokens that already ran or were
  /// already cancelled (safe to call from inside the running event itself).
  void cancel(EventToken token);

  SimTime now() const noexcept { return now_; }
  bool empty() const noexcept { return live_.empty(); }
  std::size_t pending() const noexcept { return live_.size(); }
  std::uint64_t executed() const noexcept { return executed_; }

  /// Runs the next event; returns false when the queue is empty.
  bool step();
  /// Runs events until the queue is empty or `deadline` is passed; time
  /// advances to at most `deadline`.
  void run_until(SimTime deadline);
  /// Runs until the queue drains. `max_events` guards against runaway loops.
  void run(std::uint64_t max_events = 1'000'000'000ULL);

 private:
  struct Item {
    SimTime at;
    EventToken token;
    std::function<void()> fn;
  };
  struct Later {
    bool operator()(const Item& a, const Item& b) const noexcept {
      if (a.at != b.at) return a.at > b.at;
      return a.token > b.token;  // FIFO among same-time events
    }
  };

  bool pop_one();

  std::priority_queue<Item, std::vector<Item>, Later> queue_;
  std::unordered_set<EventToken> live_;       // scheduled, not yet run/cancelled
  std::unordered_set<EventToken> cancelled_;  // tombstones still in the queue
  SimTime now_ = 0;
  EventToken next_token_ = 1;
  std::uint64_t executed_ = 0;
};

}  // namespace pmc

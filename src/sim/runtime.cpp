#include "sim/runtime.hpp"

#include "common/contract.hpp"
#include "common/hash.hpp"

namespace pmc {

namespace {
// Distinguishes process-incarnation stream labels from every other
// make_stream tag in the codebase (arbitrary salt).
constexpr std::uint64_t kProcessStreamSalt = 0x9c0ce55e5;
}  // namespace

Runtime::Runtime(NetworkConfig net_config, std::uint64_t seed,
                 SchedulerTuning tuning)
    :
#ifdef PMC_REFERENCE_SCHEDULER
      sched_(),
#else
      sched_(tuning.bucket_width_log2, tuning.bucket_count_log2),
#endif
      base_seed_(seed),
      seeder_(seed),
      net_(sched_, net_config, Rng(seeder_.next_u64())) {
#ifdef PMC_REFERENCE_SCHEDULER
  (void)tuning;
#endif
}

Rng Runtime::make_process_stream(ProcessId pid) {
  const std::uint64_t incarnation = incarnations_[pid]++;
  return make_stream(fnv1a_u64(
      fnv1a_u64(kFnv1aBasis ^ kProcessStreamSalt, pid), incarnation));
}

void Runtime::schedule_crashes(std::span<Process* const> victims,
                               SimTime horizon) {
  PMC_EXPECTS(horizon >= now());
  Rng rng = make_rng();
  const auto span = static_cast<std::uint64_t>(horizon - now());
  for (Process* p : victims) {
    PMC_EXPECTS(p != nullptr);
    const SimTime at =
        now() + (span > 0 ? static_cast<SimTime>(rng.next_below(span)) : 0);
    sched_.schedule_at(at, [p] {
      if (p->alive()) p->crash();
    });
  }
}

Process::Process(Runtime& rt, ProcessId id)
    : rt_(rt), id_(id), rng_(rt.make_process_stream(id)) {
  // Captureless thunk over `this`: receive dispatch is one indirect call,
  // no std::function boxing per process.
  rt_.network().attach(
      id_, this, [](void* ctx, ProcessId from, const MessagePtr& msg) {
        auto* self = static_cast<Process*>(ctx);
        if (self->alive_) self->on_message(from, msg);
      });
}

Process::~Process() {
  disarm_periodic();
  rt_.network().detach(id_);
}

void Process::crash() {
  if (!alive_) return;
  alive_ = false;
  disarm_periodic();
  rt_.network().detach(id_);
}

void Process::arm_periodic(SimTime period) {
  PMC_EXPECTS(period > 0);
  PMC_EXPECTS(alive_);
  period_ = period;
  if (!timer_armed_) {
    timer_armed_ = true;
    schedule_tick();
  }
}

void Process::disarm_periodic() {
  if (timer_armed_) {
    rt_.scheduler().cancel(timer_token_);
    timer_armed_ = false;
  }
}

void Process::schedule_tick() {
  // Align to global period boundaries: next tick at the smallest multiple of
  // period_ strictly after now.
  const SimTime now = rt_.now();
  const SimTime next = (now / period_ + 1) * period_;
  timer_token_ = rt_.scheduler().schedule_at(next, [this] {
    if (!timer_armed_ || !alive_) return;
    on_period();
    // on_period() may have disarmed (stop) or re-armed with a new period.
    if (timer_armed_ && alive_) schedule_tick();
  });
}

}  // namespace pmc

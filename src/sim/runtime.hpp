// Simulation runtime: binds a scheduler and a network, hosts processes, and
// injects crash failures (fail-stop, no recovery — the paper's failure model,
// Sec. 4.1).
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <vector>

#include "common/flat_map.hpp"
#include "common/rng.hpp"
#include "sim/network.hpp"
#include "sim/scheduler.hpp"

namespace pmc {

class Process;

/// Calendar-queue sizing knobs, forwarded to the scheduler. The defaults
/// match CalendarScheduler's (a 262 ms wheel window); hosts that run many
/// small co-resident schedulers (one per topic shard) pass a compact wheel
/// instead so per-shard fixed cost stays in the kilobytes. Ignored under
/// PMC_REFERENCE_SCHEDULER, which has no wheel.
struct SchedulerTuning {
  std::uint32_t bucket_width_log2 = 6;
  std::uint32_t bucket_count_log2 = 12;
};

class Runtime {
 public:
  explicit Runtime(NetworkConfig net_config = {},
                   std::uint64_t seed = 0x5eedf00dULL,
                   SchedulerTuning tuning = {});

  Scheduler& scheduler() noexcept { return sched_; }
  Network& network() noexcept { return net_; }
  SimTime now() const noexcept { return sched_.now(); }

  /// Independent deterministic RNG stream derived from the run seed.
  /// Sequential: the k-th call returns the k-th stream, so it depends on
  /// construction order (fine for a fixed population built up front).
  Rng make_rng() { return seeder_.split(); }

  /// Independent deterministic RNG stream identified by `tag` alone:
  /// unlike make_rng(), the stream does not depend on how many other
  /// streams were created before it. Scenario actions draw from labeled
  /// streams so inserting one action never perturbs unrelated draws.
  Rng make_stream(std::uint64_t tag) const {
    SplitMix64 sm(base_seed_ ^ (0x632be59bd9b4e019ULL * (tag + 1)));
    return Rng(sm.next());
  }

  /// Labeled stream for the next incarnation of process `pid`: the label
  /// depends only on (pid, how many processes lived at this pid before),
  /// never on how many *other* processes exist. Co-hosted groups (topic
  /// shards) rely on this: spawning a joiner in one shard must not shift
  /// the streams handed to later spawns in another shard, which the
  /// sequential make_rng() could not guarantee.
  Rng make_process_stream(ProcessId pid);

  /// Crashes each process at an independent uniform time in [now, horizon).
  /// This realizes τ = f/n: pass the f sampled victims.
  void schedule_crashes(std::span<Process* const> victims, SimTime horizon);

  void run_for(SimTime duration) { sched_.run_until(now() + duration); }
  void run_until(SimTime deadline) { sched_.run_until(deadline); }
  void run_until_idle() { sched_.run(); }

 private:
  Scheduler sched_;
  std::uint64_t base_seed_;
  Rng seeder_;
  Network net_;
  /// Incarnation counters behind make_process_stream (pid -> spawns so far).
  /// A FlatMap: almost every run has zero or a handful of respawns, and an
  /// empty sorted vector is pointer-sized where an empty unordered_map
  /// carries a bucket array — measurable across 31k per-shard runtimes.
  FlatMap<ProcessId, std::uint64_t> incarnations_;
};

/// A simulated process: receives messages while alive and may run a periodic
/// task aligned to global period boundaries (so gossip proceeds in the
/// synchronized rounds the paper's analysis assumes, without the algorithm
/// depending on that synchrony).
class Process {
 public:
  Process(Runtime& rt, ProcessId id);
  virtual ~Process();

  Process(const Process&) = delete;
  Process& operator=(const Process&) = delete;

  ProcessId id() const noexcept { return id_; }
  bool alive() const noexcept { return alive_; }

  /// Fail-stop: stops receiving and ticking; no recovery.
  void crash();

 protected:
  virtual void on_message(ProcessId from, const MessagePtr& msg) = 0;
  virtual void on_period() {}

  /// Starts the periodic task; first tick at the next multiple of `period`.
  /// Re-arming with a different period takes effect from the next tick.
  void arm_periodic(SimTime period);
  void disarm_periodic();
  bool periodic_armed() const noexcept { return timer_armed_; }

  void send(ProcessId to, MessagePtr msg) {
    rt_.network().send(id_, to, std::move(msg));
  }
  /// Fans one shared payload out to several destinations; draw-for-draw
  /// equivalent to send() per destination (see Network::send_multi).
  void send_multi(std::span<const ProcessId> to, const MessagePtr& msg) {
    rt_.network().send_multi(id_, to, msg);
  }

  Runtime& runtime() noexcept { return rt_; }
  Rng& rng() noexcept { return rng_; }

 private:
  void schedule_tick();

  Runtime& rt_;
  ProcessId id_;
  Rng rng_;
  bool alive_ = true;
  bool timer_armed_ = false;
  SimTime period_ = 0;
  EventToken timer_token_ = 0;
};

}  // namespace pmc

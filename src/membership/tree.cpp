#include "membership/tree.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace pmc {

namespace {

bool member_less(const Member& a, const Member& b) {
  return a.address < b.address;
}

}  // namespace

GroupTree::GroupTree(TreeConfig config, std::vector<Member> members,
                     Interns& interns, GroupTreeOptions options)
    : config_(config), options_(options), interns_(&interns) {
  config_.validate();
  std::sort(members.begin(), members.end(), member_less);
  for (std::size_t i = 0; i < members.size(); ++i) {
    PMC_EXPECTS(members[i].address.depth() == config_.depth);
    if (i > 0) PMC_EXPECTS(!(members[i].address == members[i - 1].address));
  }

  // Distribute members into leaf-subgroup nodes (prefix length d-1), then
  // build every leaf and bubble the rows upward.
  const std::size_t leaf_len = config_.depth - 1;
  std::vector<Prefix> leaves;
  for (auto& m : members) {
    const Prefix lp = m.address.prefix(leaf_len);
    const bool fresh = !nodes_.contains(lp);
    Node& n = ensure_node(lp);
    if (fresh) leaves.push_back(lp);
    n.members.push_back(std::move(m));
  }
  // Ensure ancestor nodes exist (including the root even when empty).
  ensure_node(Prefix::root());
  for (const auto& lp : leaves) {
    for (Prefix p = lp; !p.is_root();) {
      p = p.parent();
      ensure_node(p);
    }
  }
  for (const auto& lp : leaves) rebuild_leaf(lp);

  // Bubble rows upward one level at a time so each ancestor's aggregates are
  // recomputed exactly once (refresh_ancestors per leaf would redo the root
  // once per leaf). The map walk is a sorted materialization: each level is
  // put in prefix order before any row is pushed, so version stamps and
  // push order never depend on hash-bucket layout.
  std::vector<std::vector<const Prefix*>> by_length(config_.depth);
  // detlint:allow(iteration-order) sorted materialization — levels sorted below
  for (const auto& [prefix, n] : nodes_)
    by_length[prefix.length()].push_back(&prefix);
  for (auto& level : by_length)
    std::sort(level.begin(), level.end(),
              [](const Prefix* a, const Prefix* b) { return *a < *b; });
  for (std::size_t len = config_.depth - 1; len >= 1; --len) {
    for (const Prefix* p : by_length[len]) push_row_to_parent(*p);
    for (const Prefix* q : by_length[len - 1]) recompute_aggregates(node(*q));
  }
}

GroupTree::Node& GroupTree::node(const Prefix& p) {
  const auto it = nodes_.find(p);
  PMC_EXPECTS(it != nodes_.end());
  return it->second;
}

const GroupTree::Node& GroupTree::node(const Prefix& p) const {
  const auto it = nodes_.find(p);
  PMC_EXPECTS(it != nodes_.end());
  return it->second;
}

GroupTree::Node& GroupTree::ensure_node(const Prefix& p) {
  const auto [it, inserted] = nodes_.try_emplace(p);
  if (inserted) it->second.child_view.bind(*interns_);
  return it->second;
}

std::size_t GroupTree::process_count() const noexcept {
  const auto it = nodes_.find(Prefix::root());
  return it == nodes_.end()
             ? 0
             : static_cast<std::size_t>(it->second.process_count);
}

const DepthView& GroupTree::view_at(const Prefix& prefix) const {
  PMC_EXPECTS(prefix.length() < config_.depth);
  return node(prefix).child_view;
}

const DepthView& GroupTree::view_for(const Address& self,
                                     std::size_t depth) const {
  PMC_EXPECTS(depth >= 1 && depth <= config_.depth);
  return view_at(self.prefix(depth - 1));
}

const std::vector<Address>& GroupTree::delegates(const Prefix& prefix) const {
  return node(prefix).delegates;
}

std::uint64_t GroupTree::represented(const Prefix& prefix) const {
  const auto it = nodes_.find(prefix);
  return it == nodes_.end() ? 0 : it->second.process_count;
}

const InterestSummary& GroupTree::summary(const Prefix& prefix) const {
  return node(prefix).summary;
}

bool GroupTree::contains(const Address& a) const {
  if (a.depth() != config_.depth) return false;
  const auto it = nodes_.find(a.prefix(config_.depth - 1));
  if (it == nodes_.end()) return false;
  const auto& members = it->second.members;
  const auto mit = std::lower_bound(
      members.begin(), members.end(), a,
      [](const Member& m, const Address& addr) { return m.address < addr; });
  return mit != members.end() && mit->address == a;
}

const Subscription& GroupTree::subscription(const Address& a) const {
  const auto& members = node(a.prefix(config_.depth - 1)).members;
  const auto it = std::lower_bound(
      members.begin(), members.end(), a,
      [](const Member& m, const Address& addr) { return m.address < addr; });
  PMC_EXPECTS(it != members.end() && it->address == a);
  return it->subscription;
}

std::vector<Address> GroupTree::all_members() const {
  std::vector<Address> out;
  // detlint:allow(iteration-order) sorted materialization — sort below erases bucket order
  for (const auto& [prefix, n] : nodes_) {
    if (prefix.length() == config_.depth - 1) {
      for (const auto& m : n.members) out.push_back(m.address);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<Address> GroupTree::vacancies(const AddressSpace& space) const {
  PMC_EXPECTS(space.depth() == config_.depth);
  std::vector<Address> out;
  for (auto& a : space.enumerate()) {
    if (!contains(a)) out.push_back(std::move(a));
  }
  return out;
}

bool GroupTree::is_delegate_at(const Address& a, std::size_t depth) const {
  PMC_EXPECTS(depth >= 1 && depth <= config_.depth);
  if (depth == config_.depth) return contains(a);
  // `a` appears at depth i iff it is a delegate of its depth-(i+1) subgroup,
  // i.e. of the prefix of length i.
  const auto it = nodes_.find(a.prefix(depth));
  if (it == nodes_.end()) return false;
  const auto& del = it->second.delegates;
  return std::find(del.begin(), del.end(), a) != del.end();
}

MembershipView GroupTree::materialize_view(const Address& self) const {
  MembershipView mv(self, config_, *interns_);
  for (std::size_t depth = 1; depth <= config_.depth; ++depth) {
    const auto it = nodes_.find(self.prefix(depth - 1));
    if (it == nodes_.end()) continue;
    const DepthView& dv = it->second.child_view;
    for (std::size_t i = 0; i < dv.size(); ++i)
      mv.view(depth).upsert_pooled(dv.infix(i), dv.delegates(i),
                                   dv.interests_ptr(i), dv.process_count(i),
                                   dv.version(i), dv.alive(i));
  }
  return mv;
}

void GroupTree::rebuild_leaf(const Prefix& leaf_prefix) {
  PMC_EXPECTS(leaf_prefix.length() == config_.depth - 1);
  Node& n = node(leaf_prefix);
  std::sort(n.members.begin(), n.members.end(), member_less);

  DepthView view;
  view.bind(*interns_);
  InterestSummary summary;
  std::vector<Address> addrs;
  addrs.reserve(n.members.size());
  for (const auto& m : n.members) {
    ViewRow row;
    row.infix = m.address.component(config_.depth - 1);
    row.delegates = {m.address};
    row.interests = InterestSummary::from(m.subscription);
    row.process_count = 1;
    row.version = version_counter_++;
    summary.merge(row.interests);
    view.upsert(row);
    addrs.push_back(m.address);
  }
  n.child_view = std::move(view);
  n.summary = std::move(summary);
  n.process_count = n.members.size();
  n.delegates = elect_delegates(addrs, config_.redundancy);
}

void GroupTree::push_row_to_parent(const Prefix& child) {
  PMC_EXPECTS(!child.is_root());
  Node& parent = node(child.parent());
  const Node& c = node(child);
  if (c.process_count == 0) {
    parent.child_view.erase(child.infix());
    return;
  }
  ViewRow row;
  row.infix = child.infix();
  row.delegates = c.delegates;
  row.interests = c.summary;
  // The row lives in the depth-(parent length + 1) tables; near the root it
  // may be coarsened (Sec. 6) — sound (only over-approximates) but cheaper.
  if (child.length() <= options_.coarsen_depth_leq) row.interests.coarsen();
  row.process_count = c.process_count;
  row.version = version_counter_++;
  parent.child_view.upsert(row);
}

void GroupTree::recompute_aggregates(Node& n) {
  n.process_count = n.child_view.total_processes();
  InterestSummary summary;
  candidate_scratch_.clear();
  const DepthView& dv = n.child_view;
  for (std::size_t i = 0; i < dv.size(); ++i) {
    if (!dv.alive(i)) continue;
    summary.merge(dv.interests(i));
    const auto ids = dv.delegates(i);
    candidate_scratch_.insert(candidate_scratch_.end(), ids.begin(),
                              ids.end());
  }
  n.summary = std::move(summary);
  // The R smallest addresses under a subgroup are among its children's
  // R-smallest (delegate sets), so electing from the union is exact.
  elect_delegate_ids(candidate_scratch_, config_.redundancy, interns_->addrs,
                     delegate_scratch_);
  n.delegates.clear();
  n.delegates.reserve(delegate_scratch_.size());
  for (const AddrId id : delegate_scratch_)
    n.delegates.push_back(interns_->addrs.resolve(id));
}

void GroupTree::refresh_ancestors(const Prefix& child) {
  if (child.is_root()) return;
  const Prefix parent_prefix = child.parent();
  push_row_to_parent(child);
  recompute_aggregates(node(parent_prefix));
  refresh_ancestors(parent_prefix);
}

void GroupTree::add_member(Address address, Subscription subscription) {
  PMC_EXPECTS(address.depth() == config_.depth);
  PMC_EXPECTS(!contains(address));
  const Prefix lp = address.prefix(config_.depth - 1);
  // Materialize any missing nodes on the path.
  ensure_node(lp);
  for (Prefix p = lp; !p.is_root();) {
    p = p.parent();
    ensure_node(p);
  }
  node(lp).members.push_back(
      Member{std::move(address), std::move(subscription)});
  rebuild_leaf(lp);
  refresh_ancestors(lp);
}

void GroupTree::remove_member(const Address& address) {
  PMC_EXPECTS(contains(address));
  const Prefix lp = address.prefix(config_.depth - 1);
  Node& n = node(lp);
  const auto it = std::find_if(
      n.members.begin(), n.members.end(),
      [&](const Member& m) { return m.address == address; });
  n.members.erase(it);
  rebuild_leaf(lp);
  refresh_ancestors(lp);
}

void GroupTree::update_subscription(const Address& address,
                                    Subscription subscription) {
  PMC_EXPECTS(contains(address));
  const Prefix lp = address.prefix(config_.depth - 1);
  Node& n = node(lp);
  const auto it = std::find_if(
      n.members.begin(), n.members.end(),
      [&](const Member& m) { return m.address == address; });
  it->subscription = std::move(subscription);
  rebuild_leaf(lp);
  refresh_ancestors(lp);
}

}  // namespace pmc

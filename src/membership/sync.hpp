// Decentralized membership management (paper Sec. 2.3).
//
// Every SyncNode owns a MembershipView whose rows carry logical versions.
// Periodically it gossips a *digest* — (depth, infix, version) for every row
// — to a few known processes; a receiver replies with full rows for every
// line where its own version is newer ("gossip pull": the gossiper gets
// updated). Views therefore converge without any coordinator.
//
// Joining: the joiner asks any contact already in the group; the contact
// routes the request towards the "lowest" delegates it knows for the
// joiner's address (recursively), until an immediate neighbor inserts the
// joiner and transfers its view.
//
// Leaving: the leaver informs neighbors, which tombstone its row (alive =
// false, bumped version); the tombstone then spreads via anti-entropy.
//
// Failure detection: each process tracks the last time it heard from its
// immediate (leaf-depth) neighbors; silence beyond a timeout tombstones the
// suspect locally, and anti-entropy propagates the suspicion.
//
// Row recomputation: delegates periodically recompact the row describing
// their own subgroup at each depth they represent (interest regrouping,
// process count, delegate list) from the next-deeper table, bumping the
// version when the row materially changed. The recompaction is a pure
// function of the two adjacent tables, so it is skipped outright while
// neither table mutated since the last pass (the steady-state common case).
//
// Hot-path state is interned: peers, neighbors and contact tables hold
// AddrIds; wire messages keep carrying full Addresses (the codec and all
// protocol bytes are unchanged by the representation).
#pragma once

#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "common/flat_map.hpp"
#include "membership/tree.hpp"
#include "membership/view.hpp"
#include "sim/runtime.hpp"

namespace pmc {

// ---------------------------------------------------------------------------
// Wire messages
// ---------------------------------------------------------------------------

struct RowDigest {
  std::uint32_t depth = 0;
  AddrComponent infix = 0;
  std::uint64_t version = 0;
};

struct MembershipDigestMsg final : MessageBase {
  MembershipDigestMsg() noexcept : MessageBase(MsgKind::MembershipDigest) {}

  Address sender;
  ProcessId sender_pid = kNoProcess;
  std::vector<RowDigest> digests;
};

struct MembershipUpdateMsg final : MessageBase {
  MembershipUpdateMsg() noexcept : MessageBase(MsgKind::MembershipUpdate) {}

  Address sender;
  std::vector<DepthRow> rows;
};

struct JoinRequestMsg final : MessageBase {
  JoinRequestMsg() noexcept : MessageBase(MsgKind::JoinRequest) {}

  Address joiner;
  ProcessId joiner_pid = kNoProcess;
  Subscription subscription;
  std::uint32_t hops = 0;  ///< guards against routing loops
};

struct ViewTransferMsg final : MessageBase {
  ViewTransferMsg() noexcept : MessageBase(MsgKind::ViewTransfer) {}

  Address sender;
  std::vector<DepthRow> rows;  ///< rows valid for the joiner
};

struct LeaveMsg final : MessageBase {
  LeaveMsg() noexcept : MessageBase(MsgKind::Leave) {}

  Address leaver;
};

/// Sec. 6's per-depth mechanism (3): before excluding a silent neighbor,
/// ask another leaf neighbor whether it has heard from the suspect — a
/// lightweight agreement that filters one-sided connectivity glitches.
struct SuspectQueryMsg final : MessageBase {
  SuspectQueryMsg() noexcept : MessageBase(MsgKind::SuspectQuery) {}

  Address sender;
  Address suspect;
};

struct SuspectReplyMsg final : MessageBase {
  SuspectReplyMsg() noexcept : MessageBase(MsgKind::SuspectReply) {}

  Address sender;
  Address suspect;
  bool heard_recently = false;
};

// ---------------------------------------------------------------------------
// SyncNode
// ---------------------------------------------------------------------------

struct SyncConfig {
  TreeConfig tree;
  SimTime gossip_period = sim_ms(100);
  std::size_t gossip_fanout = 2;
  /// Silence from an immediate neighbor beyond this tombstones it.
  SimTime suspicion_timeout = sim_ms(1000);
  /// Join requests stop being forwarded after this many hops.
  std::uint32_t max_join_hops = 16;
  /// A joiner re-sends its join request every period until a view transfer
  /// arrives, giving up after this many retries (the contact may be dead —
  /// see retarget_join). 0 retries forever.
  std::uint32_t max_join_retries = 240;
  /// Capped exponential backoff on those retries: the k-th retry waits
  /// min(2^k, join_backoff_cap) gossip periods plus a jitter drawn from the
  /// joiner's own labeled stream (uniform in [0, wait * join_backoff_jitter]
  /// — labeled, so enabling backoff on one joiner never moves any other
  /// process's draws). Off by default: the legacy every-period retry
  /// cadence (and every existing run fingerprint) is unchanged.
  /// retarget_join resets the schedule along with the budget.
  bool join_backoff = false;
  /// Ceiling on the backoff factor, in gossip periods.
  std::uint32_t join_backoff_cap = 8;
  /// Jitter fraction of the backed-off wait, in [0, 1].
  double join_backoff_jitter = 0.5;
  /// When true, a timed-out neighbor is only tombstoned after a second
  /// leaf neighbor confirms it has not heard from the suspect either
  /// (Sec. 6's leaf-level agreement before exclusion).
  bool confirm_suspicion = false;
  /// Answer every membership digest, even when no row is newer (an empty
  /// MembershipUpdate as a pure ack): the periodic digest gossip doubles
  /// as loss probes, and the sent-vs-acked ratio feeds the online ε
  /// estimator (analysis/env_estimator.hpp). Off by default (the paper's
  /// pull-only anti-entropy).
  bool ack_digests = false;
};

class SyncNode final : public Process {
 public:
  /// A founding member: starts with a bootstrap view (e.g. from GroupTree).
  SyncNode(Runtime& rt, ProcessId pid, SyncConfig config, MembershipView view,
           Subscription subscription);

  /// A joining process: starts with an empty view and contacts `contact`.
  SyncNode(Runtime& rt, ProcessId pid, SyncConfig config, Address self,
           Subscription subscription, ProcessId contact, Interns& interns);

  const Address& address() const noexcept { return view_.self(); }
  AddrId address_id() const noexcept { return view_.self_id(); }
  const MembershipView& view() const noexcept { return view_; }
  const Subscription& subscription() const noexcept { return subscription_; }
  bool joined() const noexcept { return joined_; }

  /// Counters over the membership protocol's observable work, used by the
  /// scenario engine to report join/leave/failure-detection activity.
  struct Stats {
    std::uint64_t digests_sent = 0;     ///< anti-entropy digests gossiped
    std::uint64_t updates_sent = 0;     ///< row (or ack) replies to digests
    /// MembershipUpdate messages received. Updates only ever answer our
    /// own digests (gossip pull), so with ack_digests on the pair
    /// (digests_sent, digest_acks) is the sent-vs-acked feedback an
    /// EnvEstimator turns into a loss estimate.
    std::uint64_t digest_acks = 0;
    /// Rows observed transitioning alive -> dead in our view, whether
    /// tombstoned locally (timeout, leave) or absorbed via anti-entropy —
    /// the incarnation churn an EnvEstimator turns into a crash estimate.
    std::uint64_t deaths_observed = 0;
    std::uint64_t join_retries = 0;     ///< own join request re-sent
    std::uint64_t joins_forwarded = 0;  ///< join requests routed closer
    std::uint64_t joins_served = 0;     ///< view transfers sent to joiners
    std::uint64_t tombstones = 0;       ///< rows tombstoned locally
    std::uint64_t rebuttals = 0;        ///< own false tombstone rebutted
  };
  const Stats& stats() const noexcept { return stats_; }

  /// Graceful departure: informs immediate neighbors, then crashes the
  /// process object (it stops participating).
  void leave();

  /// Points a still-unjoined joiner at a fresh contact (the original one
  /// may have crashed before serving the request) and resets its retry
  /// budget. A no-op once joined.
  void retarget_join(ProcessId contact);

  /// Resolves a known process address (interned) to its simulation
  /// ProcessId. The directory is simulation plumbing (in a deployment this
  /// would be the transport address carried in the view rows).
  using Directory = std::function<ProcessId(AddrId)>;
  void set_directory(Directory directory) { directory_ = std::move(directory); }

  /// Piggybacking support (Sec. 2.3: "membership information can be
  /// piggybacked when gossiping events"): the rows worth attaching to a
  /// message for `other`, and ingestion of rows that arrived piggybacked.
  std::vector<DepthRow> rows_to_share(AddrId other) const {
    return rows_for(other);
  }
  void absorb_rows(const Address& sender,
                   const std::vector<DepthRow>& rows);

 protected:
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_period() override;

 private:
  void send_join_request();
  /// Arms the next backed-off retry (SyncConfig::join_backoff).
  void schedule_next_join_retry();
  void handle_digest(ProcessId from, const MembershipDigestMsg& m);
  void handle_update(const MembershipUpdateMsg& m);
  void handle_join(ProcessId from, const JoinRequestMsg& m);
  void handle_view_transfer(const ViewTransferMsg& m);
  void handle_leave(const LeaveMsg& m);
  void handle_suspect_query(ProcessId from, const SuspectQueryMsg& m);
  void handle_suspect_reply(const SuspectReplyMsg& m);
  void tombstone_row(DepthView& leaf, std::size_t i);

  /// Applies a row if it is newer; returns true when the view changed.
  bool apply_row(std::uint32_t depth, const ViewRow& row);
  /// Rows of this view relevant for a process with address `other`
  /// (depths 1..common_prefix+1).
  std::vector<DepthRow> rows_for(AddrId other) const;
  std::vector<RowDigest> make_digest() const;
  /// Recompacts own-subgroup rows at every depth where self is a delegate.
  void recompact_own_rows();
  void check_neighbor_timeouts();
  void note_contact(const Address& a);
  /// All (address, pid-resolvable) gossip candidates, excluding self —
  /// depth-ascending, row order, first sighting wins. Returns a scratch
  /// buffer reused across periods (invalidated by the next call).
  const std::vector<AddrId>& known_peers() const;
  void send_to(AddrId a, MessagePtr msg);
  std::uint64_t next_version() { return ++version_counter_; }
  AddrInternTable& addrs() const noexcept { return view_.interns().addrs; }

  SyncConfig config_;
  MembershipView view_;
  Subscription subscription_;
  Directory directory_;
  bool joined_ = false;
  /// The contact a joining process asked; the join request is re-sent every
  /// period until a view transfer arrives (the single send would otherwise
  /// be lost forever to ε or a not-yet-joined contact).
  ProcessId join_contact_ = kNoProcess;
  /// Retries spent on the current contact; reset by retarget_join.
  std::uint32_t join_retry_budget_ = 0;
  /// Earliest time the next backed-off join retry may fire, and the
  /// joiner's labeled jitter stream (both used only with join_backoff;
  /// the stream is assigned from Runtime::make_stream in the joiner
  /// constructor, per the labeled-stream discipline).
  SimTime join_next_retry_at_ = 0;
  Rng join_jitter_rng_;
  std::uint64_t version_counter_ = 0;
  std::size_t ping_cursor_ = 0;  // round-robin over immediate neighbors
  /// Times of *direct* contact (messages actually received from a process).
  /// Suspect queries are answered from this map only — never from grace —
  /// otherwise two suspecting processes can keep a dead neighbor "alive" by
  /// echoing each other's second-hand confidence.
  FlatMap<AddrId, SimTime> last_contact_;
  /// Deadline extensions granted by positive confirmations.
  FlatMap<AddrId, SimTime> grace_until_;
  FlatMap<AddrId, SimTime> pending_suspicions_;
  /// Resolved pids for the periodic digest fan-out, so one shared digest
  /// goes out through Network::send_multi instead of per-target copies.
  std::vector<ProcessId> digest_targets_;
  // Reusable per-period scratch buffers (the sync path allocates nothing in
  // steady state).
  mutable std::vector<AddrId> peer_scratch_;
  std::vector<AddrId> neighbor_scratch_;
  std::vector<AddrId> suspect_scratch_;
  std::vector<AddrId> candidate_scratch_;
  std::vector<AddrId> delegate_scratch_;
  /// Per-depth (deeper-table, own-table) mutation counters observed by the
  /// last recompaction pass; index = depth-1. The pass is skipped while both
  /// counters are unchanged.
  std::vector<std::pair<std::uint64_t, std::uint64_t>> recompact_cache_;
  Stats stats_;
};

}  // namespace pmc

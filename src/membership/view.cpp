#include "membership/view.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

namespace pmc {

namespace {

auto row_lower_bound(std::vector<ViewRow>& rows, AddrComponent infix) {
  return std::lower_bound(
      rows.begin(), rows.end(), infix,
      [](const ViewRow& r, AddrComponent v) { return r.infix < v; });
}

}  // namespace

const ViewRow* DepthView::find(AddrComponent infix) const noexcept {
  const auto it = std::lower_bound(
      rows_.begin(), rows_.end(), infix,
      [](const ViewRow& r, AddrComponent v) { return r.infix < v; });
  if (it != rows_.end() && it->infix == infix) return &*it;
  return nullptr;
}

bool DepthView::upsert(ViewRow row) {
  auto it = row_lower_bound(rows_, row.infix);
  if (it != rows_.end() && it->infix == row.infix) {
    if (row.version <= it->version) return false;
    *it = std::move(row);
    return true;
  }
  rows_.insert(it, std::move(row));
  return true;
}

bool DepthView::erase(AddrComponent infix) {
  auto it = row_lower_bound(rows_, infix);
  if (it != rows_.end() && it->infix == infix) {
    rows_.erase(it);
    return true;
  }
  return false;
}

std::size_t DepthView::live_count() const noexcept {
  return static_cast<std::size_t>(
      std::count_if(rows_.begin(), rows_.end(),
                    [](const ViewRow& r) { return r.alive; }));
}

std::uint64_t DepthView::total_processes() const noexcept {
  return std::accumulate(rows_.begin(), rows_.end(), std::uint64_t{0},
                         [](std::uint64_t acc, const ViewRow& r) {
                           return acc + (r.alive ? r.process_count : 0);
                         });
}

std::string DepthView::to_string() const {
  std::ostringstream os;
  for (const auto& r : rows_) {
    os << "  " << r.infix << (r.alive ? "" : " (gone)") << " | "
       << r.interests.to_string() << " | count=" << r.process_count << " |";
    for (const auto& d : r.delegates) os << " " << d.to_string();
    os << "\n";
  }
  return os.str();
}

MembershipView::MembershipView(Address self, TreeConfig config)
    : self_(std::move(self)), config_(config) {
  config_.validate();
  PMC_EXPECTS(self_.depth() == config_.depth);
  depths_.resize(config_.depth);
}

DepthView& MembershipView::view(std::size_t depth) {
  PMC_EXPECTS(depth >= 1 && depth <= depths_.size());
  return depths_[depth - 1];
}

const DepthView& MembershipView::view(std::size_t depth) const {
  PMC_EXPECTS(depth >= 1 && depth <= depths_.size());
  return depths_[depth - 1];
}

std::size_t MembershipView::known_processes() const noexcept {
  std::size_t n = 0;
  for (std::size_t depth = 1; depth <= depths_.size(); ++depth) {
    for (const auto& row : depths_[depth - 1].rows()) {
      if (row.alive) n += row.delegates.size();
    }
  }
  return n;
}

std::string MembershipView::to_string() const {
  std::ostringstream os;
  os << "MembershipView(" << self_.to_string() << ")\n";
  for (std::size_t depth = 1; depth <= depths_.size(); ++depth) {
    os << " depth " << depth << ":\n" << depths_[depth - 1].to_string();
  }
  return os.str();
}

}  // namespace pmc

#include "membership/view.hpp"

#include <algorithm>
#include <functional>
#include <sstream>

namespace pmc {

std::size_t DepthView::find_index(AddrComponent infix) const noexcept {
  const auto it = std::lower_bound(infix_.begin(), infix_.end(), infix);
  if (it != infix_.end() && *it == infix)
    return static_cast<std::size_t>(it - infix_.begin());
  return npos;
}

bool DepthView::upsert(const ViewRow& row) {
  auto& in = interns();
  id_scratch_.clear();
  id_scratch_.reserve(row.delegates.size());
  for (const auto& d : row.delegates) id_scratch_.push_back(in.addrs.intern(d));
  return upsert_pooled(row.infix, id_scratch_,
                       in.summaries.intern(row.interests), row.process_count,
                       row.version, row.alive);
}

bool DepthView::upsert_pooled(AddrComponent infix,
                              std::span<const AddrId> delegates,
                              std::shared_ptr<const InterestSummary> interests,
                              std::uint64_t process_count,
                              std::uint64_t version, bool alive) {
  const auto it = std::lower_bound(infix_.begin(), infix_.end(), infix);
  const auto i = static_cast<std::size_t>(it - infix_.begin());
  if (it != infix_.end() && *it == infix) {
    if (version <= version_[i]) return false;
    live_delegates_ -= del_len_[i];
    return store(i, delegates, std::move(interests), process_count, version,
                 alive);
  }
  infix_.insert(it, infix);
  version_.insert(version_.begin() + static_cast<std::ptrdiff_t>(i), 0);
  count_.insert(count_.begin() + static_cast<std::ptrdiff_t>(i), 0);
  alive_.insert(alive_.begin() + static_cast<std::ptrdiff_t>(i), 1);
  interests_.insert(interests_.begin() + static_cast<std::ptrdiff_t>(i),
                    nullptr);
  del_begin_.insert(del_begin_.begin() + static_cast<std::ptrdiff_t>(i), 0);
  del_len_.insert(del_len_.begin() + static_cast<std::ptrdiff_t>(i), 0);
  return store(i, delegates, std::move(interests), process_count, version,
               alive);
}

bool DepthView::store(std::size_t i, std::span<const AddrId> delegates,
                      std::shared_ptr<const InterestSummary> interests,
                      std::uint64_t process_count, std::uint64_t version,
                      bool alive) {
  set_delegates(i, delegates);
  interests_[i] = std::move(interests);
  count_[i] = process_count;
  version_[i] = version;
  alive_[i] = alive ? 1 : 0;
  ++mutations_;
  return true;
}

void DepthView::set_delegates(std::size_t i, std::span<const AddrId> ids) {
  // The new list may alias this view's own pool (a caller forwarding
  // delegates(j)); detach it before the pool reallocates or compacts.
  // detlint:allow(pointer-hash) aliasing check within one allocation; ordering never observable
  const std::less<const AddrId*> lt;
  if (!ids.empty() && !lt(ids.data(), del_pool_.data()) &&
      lt(ids.data(), del_pool_.data() + del_pool_.size())) {
    alias_scratch_.assign(ids.begin(), ids.end());
    ids = alias_scratch_;
  }
  // Reuse the row's slice when the new list fits (the common case: the
  // redundancy R is fixed), else append to the pool and reclaim once the
  // garbage outweighs the live entries.
  if (ids.size() > del_len_[i]) {
    del_begin_[i] = static_cast<std::uint32_t>(del_pool_.size());
    del_pool_.resize(del_pool_.size() + ids.size());
  }
  del_len_[i] = static_cast<std::uint32_t>(ids.size());
  std::copy(ids.begin(), ids.end(),
            del_pool_.begin() + del_begin_[i]);
  live_delegates_ += ids.size();
  if (del_pool_.size() > 2 * live_delegates_ + 64) compact_pool();
}

void DepthView::compact_pool() {
  std::vector<AddrId> packed;
  packed.reserve(live_delegates_);
  for (std::size_t i = 0; i < infix_.size(); ++i) {
    const auto begin = static_cast<std::uint32_t>(packed.size());
    packed.insert(packed.end(), del_pool_.begin() + del_begin_[i],
                  del_pool_.begin() + del_begin_[i] + del_len_[i]);
    del_begin_[i] = begin;
  }
  del_pool_ = std::move(packed);
}

bool DepthView::erase(AddrComponent infix) {
  const std::size_t i = find_index(infix);
  if (i == npos) return false;
  live_delegates_ -= del_len_[i];
  const auto d = static_cast<std::ptrdiff_t>(i);
  infix_.erase(infix_.begin() + d);
  version_.erase(version_.begin() + d);
  count_.erase(count_.begin() + d);
  alive_.erase(alive_.begin() + d);
  interests_.erase(interests_.begin() + d);
  del_begin_.erase(del_begin_.begin() + d);
  del_len_.erase(del_len_.begin() + d);
  ++mutations_;
  return true;
}

std::size_t DepthView::live_count() const noexcept {
  return static_cast<std::size_t>(
      std::count(alive_.begin(), alive_.end(), std::uint8_t{1}));
}

std::uint64_t DepthView::total_processes() const noexcept {
  std::uint64_t n = 0;
  for (std::size_t i = 0; i < count_.size(); ++i)
    if (alive_[i]) n += count_[i];
  return n;
}

ViewRow DepthView::materialize(std::size_t i) const {
  PMC_EXPECTS(i < infix_.size());
  ViewRow row;
  row.infix = infix_[i];
  const auto ids = delegates(i);
  row.delegates.reserve(ids.size());
  for (const AddrId id : ids)
    row.delegates.push_back(interns().addrs.resolve(id));
  row.interests = *interests_[i];
  row.process_count = count_[i];
  row.version = version_[i];
  row.alive = alive_[i] != 0;
  return row;
}

std::string DepthView::to_string() const {
  std::ostringstream os;
  for (std::size_t i = 0; i < infix_.size(); ++i) {
    os << "  " << infix_[i] << (alive_[i] ? "" : " (gone)") << " | "
       << interests_[i]->to_string() << " | count=" << count_[i] << " |";
    for (const AddrId id : delegates(i))
      os << " " << interns().addrs.resolve(id).to_string();
    os << "\n";
  }
  return os.str();
}

MembershipView::MembershipView(Address self, TreeConfig config,
                               Interns& interns)
    : self_(std::move(self)), config_(config), interns_(&interns) {
  config_.validate();
  PMC_EXPECTS(self_.depth() == config_.depth);
  self_id_ = interns_->addrs.intern(self_);
  depths_.resize(config_.depth);
  for (auto& dv : depths_) dv.bind(*interns_);
}

DepthView& MembershipView::view(std::size_t depth) {
  PMC_EXPECTS(depth >= 1 && depth <= depths_.size());
  return depths_[depth - 1];
}

const DepthView& MembershipView::view(std::size_t depth) const {
  PMC_EXPECTS(depth >= 1 && depth <= depths_.size());
  return depths_[depth - 1];
}

std::size_t MembershipView::known_processes() const noexcept {
  std::size_t n = 0;
  for (const auto& dv : depths_) {
    for (std::size_t i = 0; i < dv.size(); ++i)
      if (dv.alive(i)) n += dv.delegates(i).size();
  }
  return n;
}

std::string MembershipView::to_string() const {
  std::ostringstream os;
  os << "MembershipView(" << self_.to_string() << ")\n";
  for (std::size_t depth = 1; depth <= depths_.size(); ++depth) {
    os << " depth " << depth << ":\n" << depths_[depth - 1].to_string();
  }
  return os.str();
}

}  // namespace pmc

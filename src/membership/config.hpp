// Tree shape parameters shared across membership and dissemination.
#pragma once

#include <cstddef>

#include "common/contract.hpp"

namespace pmc {

struct TreeConfig {
  /// Tree depth d (number of address components).
  std::size_t depth = 3;
  /// Redundancy factor R: delegates elected per subgroup (paper recommends
  /// R > 1 for membership reliability).
  std::size_t redundancy = 3;

  void validate() const {
    PMC_EXPECTS(depth >= 1);
    PMC_EXPECTS(redundancy >= 1);
  }
};

}  // namespace pmc

#include "membership/sync.hpp"

#include <algorithm>

#include "common/contract.hpp"
#include "common/hash.hpp"
#include "membership/election.hpp"

namespace pmc {

namespace {

constexpr std::uint64_t kNeverRecompacted = ~std::uint64_t{0};

/// Label of a joiner's backoff-jitter stream (SyncConfig::join_backoff):
/// (salt, pid), so each joiner jitters independently and enabling backoff
/// never touches any other labeled stream.
constexpr std::uint64_t kJoinBackoffSalt = 0xba0cf0ff;

}  // namespace

SyncNode::SyncNode(Runtime& rt, ProcessId pid, SyncConfig config,
                   MembershipView view, Subscription subscription)
    : Process(rt, pid),
      config_(config),
      view_(std::move(view)),
      subscription_(std::move(subscription)),
      joined_(true) {
  config_.tree.validate();
  // Continue from the highest version present so local edits sort after
  // everything already in the bootstrap view (Lamport-style).
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth) {
    const DepthView& dv = view_.view(depth);
    for (std::size_t i = 0; i < dv.size(); ++i)
      version_counter_ = std::max(version_counter_, dv.version(i));
  }
  recompact_cache_.assign(config_.tree.depth,
                          {kNeverRecompacted, kNeverRecompacted});
  arm_periodic(config_.gossip_period);
}

SyncNode::SyncNode(Runtime& rt, ProcessId pid, SyncConfig config, Address self,
                   Subscription subscription, ProcessId contact,
                   Interns& interns)
    : Process(rt, pid),
      config_(config),
      view_(std::move(self), config.tree, interns),
      subscription_(std::move(subscription)),
      join_contact_(contact) {
  recompact_cache_.assign(config_.tree.depth,
                          {kNeverRecompacted, kNeverRecompacted});
  PMC_EXPECTS(config_.join_backoff_cap >= 1);
  PMC_EXPECTS(config_.join_backoff_jitter >= 0.0 &&
              config_.join_backoff_jitter <= 1.0);
  if (config_.join_backoff)
    join_jitter_rng_ =
        rt.make_stream(fnv1a_u64(kFnv1aBasis ^ kJoinBackoffSalt, pid));
  send_join_request();
  if (config_.join_backoff) schedule_next_join_retry();
  arm_periodic(config_.gossip_period);
}

void SyncNode::send_join_request() {
  auto join = std::make_shared<JoinRequestMsg>();
  join->joiner = view_.self();
  join->joiner_pid = id();
  join->subscription = subscription_;
  send(join_contact_, std::move(join));
}

void SyncNode::schedule_next_join_retry() {
  // The k-th retry (k = budget spent) waits min(2^k, cap) gossip periods,
  // plus jitter uniform in [0, wait * jitter]: concurrent joiners hitting
  // the same revived contact (a flash crowd, scenario JoinStorm) spread out
  // instead of thundering in lockstep. Pure integer schedule; the jitter
  // draw comes from this joiner's own labeled stream.
  const std::uint32_t shift = std::min<std::uint32_t>(join_retry_budget_, 31);
  const std::uint64_t factor = std::min<std::uint64_t>(
      std::uint64_t{1} << shift, config_.join_backoff_cap);
  SimTime wait = config_.gossip_period * static_cast<SimTime>(factor);
  const SimTime span = static_cast<SimTime>(
      static_cast<double>(wait) * config_.join_backoff_jitter);
  if (span > 0)
    wait += static_cast<SimTime>(
        join_jitter_rng_.next_below(static_cast<std::uint64_t>(span) + 1));
  join_next_retry_at_ = runtime().now() + wait;
}

void SyncNode::retarget_join(ProcessId contact) {
  if (joined_) return;
  join_contact_ = contact;
  join_retry_budget_ = 0;
  send_join_request();
  if (config_.join_backoff) schedule_next_join_retry();
}

void SyncNode::leave() {
  auto msg = std::make_shared<LeaveMsg>();
  msg->leaver = view_.self();
  // Inform the immediate (leaf-depth) neighbors.
  const DepthView& leaf = view_.view(config_.tree.depth);
  for (std::size_t i = 0; i < leaf.size(); ++i) {
    if (!leaf.alive(i) || leaf.delegates(i).empty()) continue;
    const AddrId neighbor = leaf.first_delegate(i);
    if (neighbor == view_.self_id()) continue;
    send_to(neighbor, msg);
  }
  crash();  // fail-stop semantics: the process simply stops participating
}

void SyncNode::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->kind) {
    case MsgKind::MembershipDigest:
      handle_digest(from, static_cast<const MembershipDigestMsg&>(*msg));
      break;
    case MsgKind::MembershipUpdate:
      handle_update(static_cast<const MembershipUpdateMsg&>(*msg));
      break;
    case MsgKind::JoinRequest:
      handle_join(from, static_cast<const JoinRequestMsg&>(*msg));
      break;
    case MsgKind::ViewTransfer:
      handle_view_transfer(static_cast<const ViewTransferMsg&>(*msg));
      break;
    case MsgKind::Leave:
      handle_leave(static_cast<const LeaveMsg&>(*msg));
      break;
    case MsgKind::SuspectQuery:
      handle_suspect_query(from, static_cast<const SuspectQueryMsg&>(*msg));
      break;
    case MsgKind::SuspectReply:
      handle_suspect_reply(static_cast<const SuspectReplyMsg&>(*msg));
      break;
    default:
      break;
  }
}

void SyncNode::on_period() {
  if (!joined_) {
    // Still waiting for the view transfer: the request (or its reply) may
    // have been lost to ε, or the contact may not have joined yet itself —
    // retry until an answer arrives. Duplicate requests are harmless (the
    // server's row upsert and our transfer handling are idempotent). The
    // budget bounds traffic towards a contact that died before serving us;
    // retarget_join() grants a fresh contact and budget.
    // With join_backoff the periodic tick only acts once the backed-off
    // deadline has passed; the tick cadence itself stays every period, so
    // the schedule is a filter over the legacy one (never earlier).
    if (config_.join_backoff && runtime().now() < join_next_retry_at_)
      return;
    if (config_.max_join_retries == 0 ||
        join_retry_budget_ < config_.max_join_retries) {
      send_join_request();
      ++join_retry_budget_;
      ++stats_.join_retries;
      if (config_.join_backoff) schedule_next_join_retry();
    }
    return;
  }
  recompact_own_rows();
  check_neighbor_timeouts();

  const auto& peers = known_peers();
  if (peers.empty()) return;
  auto digest = std::make_shared<MembershipDigestMsg>();
  digest->sender = view_.self();
  digest->sender_pid = id();
  digest->digests = make_digest();
  // The same digest goes to every target: resolve the whole fan-out first
  // and put it on the wire as one send_multi (shared payload, one
  // transcode, per-destination draws), instead of per-target sends.
  // digests_sent still counts *attempts*, like the per-target path did.
  digest_targets_.clear();
  const std::size_t fanout = std::min(config_.gossip_fanout, peers.size());
  const auto picks = rng().sample_without_replacement(peers.size(), fanout);
  for (const auto i : picks) {
    if (directory_) {
      const ProcessId pid = directory_(peers[i]);
      if (pid != kNoProcess) digest_targets_.push_back(pid);
    }
    ++stats_.digests_sent;
  }

  // Leaf subgroups actively ping each other (paper Sec. 6): one extra
  // digest per period to a round-robin immediate neighbor keeps the
  // last-contact table fresh and failure detection accurate.
  neighbor_scratch_.clear();
  const DepthView& leaf = view_.view(config_.tree.depth);
  for (std::size_t i = 0; i < leaf.size(); ++i) {
    if (!leaf.alive(i) || leaf.delegates(i).empty()) continue;
    const AddrId neighbor = leaf.first_delegate(i);
    if (neighbor == view_.self_id()) continue;
    neighbor_scratch_.push_back(neighbor);
  }
  if (!neighbor_scratch_.empty()) {
    const AddrId ping =
        neighbor_scratch_[ping_cursor_++ % neighbor_scratch_.size()];
    if (directory_) {
      const ProcessId pid = directory_(ping);
      if (pid != kNoProcess) digest_targets_.push_back(pid);
    }
    ++stats_.digests_sent;
  }
  if (!digest_targets_.empty()) send_multi(digest_targets_, digest);
}

void SyncNode::handle_digest(ProcessId from, const MembershipDigestMsg& m) {
  note_contact(m.sender);
  // Reply with every line where our version is strictly newer, plus lines
  // the gossiper does not know at all — restricted to depths the two of us
  // share (tables above the common prefix are about different subgroups).
  const std::size_t shared =
      view_.self().common_prefix_length(m.sender) + 1;
  std::vector<DepthRow> newer;
  for (std::size_t depth = 1; depth <= std::min(shared, config_.tree.depth);
       ++depth) {
    const DepthView& dv = view_.view(depth);
    for (std::size_t i = 0; i < dv.size(); ++i) {
      const AddrComponent infix = dv.infix(i);
      const auto it = std::find_if(
          m.digests.begin(), m.digests.end(), [&](const RowDigest& d) {
            return d.depth == depth && d.infix == infix;
          });
      if (it == m.digests.end() || it->version < dv.version(i))
        newer.push_back(
            DepthRow{static_cast<std::uint32_t>(depth), dv.materialize(i)});
    }
  }
  // With ack_digests every digest is answered — an empty update is a pure
  // ack — so the gossiper can meter the round-trip loss (sent vs. acked).
  if (newer.empty() && !config_.ack_digests) return;
  auto reply = std::make_shared<MembershipUpdateMsg>();
  reply->sender = view_.self();
  reply->rows = std::move(newer);
  send(from, std::move(reply));
  ++stats_.updates_sent;
}

void SyncNode::handle_update(const MembershipUpdateMsg& m) {
  note_contact(m.sender);
  // Every update answers one of our digests (gossip pull), so it doubles
  // as the ack half of the loss-feedback pair (see Stats::digest_acks).
  ++stats_.digest_acks;
  absorb_rows(m.sender, m.rows);
}

void SyncNode::absorb_rows(const Address& sender,
                           const std::vector<DepthRow>& rows) {
  const std::size_t shared =
      view_.self().common_prefix_length(sender) + 1;
  for (const auto& dr : rows) {
    if (dr.depth < 1 || dr.depth > config_.tree.depth) continue;
    if (dr.depth > shared) continue;  // not our subgroup's table
    apply_row(dr.depth, dr.row);
  }
}

void SyncNode::handle_join(ProcessId from, const JoinRequestMsg& m) {
  (void)from;
  if (!joined_) return;
  const std::size_t shared = view_.self().common_prefix_length(m.joiner);

  // Try to route closer: a delegate of a deeper subgroup on the joiner's
  // path knows strictly more of the joiner's neighborhood than we do.
  if (shared + 1 < config_.tree.depth && m.hops < config_.max_join_hops) {
    const DepthView& dv = view_.view(shared + 1);
    const std::size_t i = dv.find_index(m.joiner.component(shared));
    if (i != DepthView::npos && dv.alive(i) && !dv.delegates(i).empty() &&
        dv.first_delegate(i) != view_.self_id()) {
      auto fwd = std::make_shared<JoinRequestMsg>(m);
      fwd->hops = m.hops + 1;
      send_to(dv.first_delegate(i), std::move(fwd));
      ++stats_.joins_forwarded;
      return;
    }
  }

  // We are (or act as) an immediate neighbor: insert the joiner and send it
  // everything we know that is valid for its address.
  ViewRow row;
  row.infix = m.joiner.component(
      std::min(shared, config_.tree.depth - 1));
  row.delegates = {m.joiner};
  row.interests = InterestSummary::from(m.subscription);
  row.process_count = 1;
  row.version = next_version();
  apply_row(static_cast<std::uint32_t>(
                std::min(shared + 1, config_.tree.depth)),
            row);

  auto transfer = std::make_shared<ViewTransferMsg>();
  transfer->sender = view_.self();
  transfer->rows = rows_for(addrs().intern(m.joiner));
  send(m.joiner_pid, std::move(transfer));
  ++stats_.joins_served;
}

void SyncNode::handle_view_transfer(const ViewTransferMsg& m) {
  note_contact(m.sender);
  for (const auto& dr : m.rows) {
    if (dr.depth < 1 || dr.depth > config_.tree.depth) continue;
    apply_row(dr.depth, dr.row);
  }
  if (!joined_) {
    joined_ = true;
    // Make ourselves visible: our own leaf row, versioned locally.
    ViewRow self_row;
    self_row.infix = view_.self().component(config_.tree.depth - 1);
    self_row.delegates = {view_.self()};
    self_row.interests = InterestSummary::from(subscription_);
    self_row.process_count = 1;
    self_row.version = next_version();
    view_.view(config_.tree.depth).upsert(self_row);
  }
}

void SyncNode::handle_leave(const LeaveMsg& m) {
  // Tombstone the leaver's leaf row; anti-entropy spreads it.
  const std::size_t shared = view_.self().common_prefix_length(m.leaver);
  const std::size_t depth = std::min(shared + 1, config_.tree.depth);
  DepthView& dv = view_.view(depth);
  const std::size_t i = dv.find_index(m.leaver.component(depth - 1));
  if (i == DepthView::npos || !dv.alive(i)) return;
  tombstone_row(dv, i);
}

bool SyncNode::apply_row(std::uint32_t depth, const ViewRow& row) {
  version_counter_ = std::max(version_counter_, row.version);
  // Rebut false suspicion: a live process that learns of its own tombstone
  // republishes its leaf row with a higher version.
  if (!row.alive && depth == config_.tree.depth &&
      !row.delegates.empty() && row.delegates.front() == view_.self()) {
    ViewRow alive_row = row;
    alive_row.alive = true;
    alive_row.version = next_version();
    ++stats_.rebuttals;
    return view_.view(depth).upsert(alive_row);
  }
  DepthView& dv = view_.view(depth);
  const std::size_t current = dv.find_index(row.infix);
  const bool was_alive = current != DepthView::npos && dv.alive(current);
  const bool changed = dv.upsert(row);
  // A known-live row absorbed as a tombstone is observed incarnation
  // churn: the raw signal behind the online crash-rate estimate.
  if (changed && was_alive && !row.alive) ++stats_.deaths_observed;
  return changed;
}

std::vector<DepthRow> SyncNode::rows_for(AddrId other) const {
  const std::size_t shared =
      addrs().common_prefix_length(view_.self_id(), other);
  std::vector<DepthRow> out;
  for (std::size_t depth = 1;
       depth <= std::min(shared + 1, config_.tree.depth); ++depth) {
    const DepthView& dv = view_.view(depth);
    for (std::size_t i = 0; i < dv.size(); ++i)
      out.push_back(
          DepthRow{static_cast<std::uint32_t>(depth), dv.materialize(i)});
  }
  return out;
}

std::vector<RowDigest> SyncNode::make_digest() const {
  std::vector<RowDigest> out;
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth) {
    const DepthView& dv = view_.view(depth);
    for (std::size_t i = 0; i < dv.size(); ++i)
      out.push_back(RowDigest{static_cast<std::uint32_t>(depth), dv.infix(i),
                              dv.version(i)});
  }
  return out;
}

void SyncNode::recompact_own_rows() {
  // From the leaf upward: the row describing our subgroup of depth i (in the
  // depth-i table) is compacted from our depth-(i+1) table (paper Sec. 2.3).
  // Only delegates publish these rows; everyone else just consumes them.
  if (config_.tree.depth < 2) return;
  for (std::size_t depth = config_.tree.depth - 1; depth >= 1; --depth) {
    const DepthView& deeper = view_.view(depth + 1);
    DepthView& own = view_.view(depth);
    // The compaction is a pure function of (deeper table, own table): while
    // neither mutated since the pass that established the cache, re-running
    // it would conclude "nothing changed" — skip it outright.
    auto& cache = recompact_cache_[depth - 1];
    if (cache.first == deeper.mutations() && cache.second == own.mutations())
      continue;
    if (deeper.empty()) {
      cache = {deeper.mutations(), own.mutations()};
      continue;
    }

    InterestSummary summary;
    candidate_scratch_.clear();
    std::uint64_t count = 0;
    for (std::size_t i = 0; i < deeper.size(); ++i) {
      if (!deeper.alive(i)) continue;
      summary.merge(deeper.interests(i));
      const auto ids = deeper.delegates(i);
      candidate_scratch_.insert(candidate_scratch_.end(), ids.begin(),
                                ids.end());
      count += deeper.process_count(i);
    }
    if (count == 0) {
      cache = {deeper.mutations(), own.mutations()};
      continue;
    }
    elect_delegate_ids(candidate_scratch_, config_.tree.redundancy, addrs(),
                       delegate_scratch_);

    // Publish only if we are one of the delegates of our own subgroup.
    if (std::find(delegate_scratch_.begin(), delegate_scratch_.end(),
                  view_.self_id()) == delegate_scratch_.end()) {
      cache = {deeper.mutations(), own.mutations()};
      continue;
    }

    const AddrComponent own_infix = view_.self().component(depth - 1);
    const std::size_t current = own.find_index(own_infix);
    if (current != DepthView::npos && own.alive(current) &&
        std::ranges::equal(own.delegates(current), delegate_scratch_) &&
        own.process_count(current) == count &&
        own.interests(current) == summary) {
      cache = {deeper.mutations(), own.mutations()};
      continue;  // nothing changed
    }

    own.upsert_pooled(own_infix, delegate_scratch_,
                      view_.interns().summaries.intern(std::move(summary)),
                      count, next_version(), true);
    cache = {deeper.mutations(), own.mutations()};
  }
}

void SyncNode::check_neighbor_timeouts() {
  const SimTime now = runtime().now();
  DepthView& leaf = view_.view(config_.tree.depth);
  suspect_scratch_.clear();
  for (std::size_t i = 0; i < leaf.size(); ++i) {
    if (!leaf.alive(i) || leaf.delegates(i).empty()) continue;
    const AddrId neighbor = leaf.first_delegate(i);
    if (neighbor == view_.self_id()) continue;
    const auto it = last_contact_.find(neighbor);
    SimTime last = it == last_contact_.end() ? SimTime{0} : it->second;
    const auto grace = grace_until_.find(neighbor);
    if (grace != grace_until_.end()) last = std::max(last, grace->second);
    if (now - last <= config_.suspicion_timeout) continue;
    if (it == last_contact_.end() && now <= config_.suspicion_timeout)
      continue;  // grace period right after startup
    suspect_scratch_.push_back(neighbor);
  }

  for (const AddrId suspect : suspect_scratch_) {
    const auto tombstone_suspect = [&] {
      const std::size_t i = leaf.find_index(
          addrs().component(suspect, config_.tree.depth - 1));
      if (i != DepthView::npos && leaf.alive(i)) tombstone_row(leaf, i);
    };
    if (!config_.confirm_suspicion) {
      tombstone_suspect();
      continue;
    }
    // Agreement-before-exclusion: ask one other live neighbor first.
    const auto pending = pending_suspicions_.find(suspect);
    if (pending != pending_suspicions_.end()) {
      // No confirmation arrived for a whole timeout: the confirmer may be
      // gone too; fall back to unilateral exclusion.
      if (now - pending->second > config_.suspicion_timeout) {
        pending_suspicions_.erase(pending);
        tombstone_suspect();
      }
      continue;
    }
    AddrId confirmer = kNoAddr;
    for (std::size_t i = 0; i < leaf.size(); ++i) {
      if (!leaf.alive(i) || leaf.delegates(i).empty()) continue;
      const AddrId candidate = leaf.first_delegate(i);
      if (candidate == view_.self_id() || candidate == suspect) continue;
      confirmer = candidate;
      break;
    }
    if (confirmer == kNoAddr) {
      tombstone_suspect();  // nobody to ask
      continue;
    }
    auto query = std::make_shared<SuspectQueryMsg>();
    query->sender = view_.self();
    query->suspect = addrs().resolve(suspect);
    send_to(confirmer, std::move(query));
    pending_suspicions_.insert_or_assign(suspect, now);
  }
}

void SyncNode::handle_suspect_query(ProcessId from,
                                    const SuspectQueryMsg& m) {
  note_contact(m.sender);
  const AddrId suspect = addrs().intern(m.suspect);
  const auto it = last_contact_.find(suspect);
  const bool heard =
      it != last_contact_.end() &&
      runtime().now() - it->second <= config_.suspicion_timeout;
  auto reply = std::make_shared<SuspectReplyMsg>();
  reply->sender = view_.self();
  reply->suspect = m.suspect;
  reply->heard_recently = heard;
  send(from, std::move(reply));
}

void SyncNode::handle_suspect_reply(const SuspectReplyMsg& m) {
  note_contact(m.sender);
  const AddrId suspect = addrs().intern(m.suspect);
  const auto it = pending_suspicions_.find(suspect);
  if (it == pending_suspicions_.end()) return;  // stale reply
  pending_suspicions_.erase(it);
  if (m.heard_recently) {
    // The suspect is alive elsewhere: extend our deadline — but only as a
    // grace note, never as direct contact (see grace_until_ comment).
    grace_until_.insert_or_assign(suspect, runtime().now());
  } else {
    DepthView& leaf = view_.view(config_.tree.depth);
    const std::size_t i = leaf.find_index(
        addrs().component(suspect, config_.tree.depth - 1));
    if (i != DepthView::npos && leaf.alive(i)) tombstone_row(leaf, i);
  }
}

void SyncNode::tombstone_row(DepthView& leaf, std::size_t i) {
  const std::uint64_t v = std::max(next_version(), leaf.version(i) + 1);
  version_counter_ = std::max(version_counter_, v);
  leaf.upsert_pooled(leaf.infix(i), leaf.delegates(i), leaf.interests_ptr(i),
                     leaf.process_count(i), v, false);
  ++stats_.tombstones;
  ++stats_.deaths_observed;
}

void SyncNode::note_contact(const Address& a) {
  last_contact_.insert_or_assign(addrs().intern(a), runtime().now());
}

const std::vector<AddrId>& SyncNode::known_peers() const {
  peer_scratch_.clear();
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth) {
    const DepthView& dv = view_.view(depth);
    for (std::size_t i = 0; i < dv.size(); ++i) {
      if (!dv.alive(i)) continue;
      for (const AddrId d : dv.delegates(i)) {
        if (d == view_.self_id()) continue;
        if (std::find(peer_scratch_.begin(), peer_scratch_.end(), d) ==
            peer_scratch_.end())
          peer_scratch_.push_back(d);
      }
    }
  }
  return peer_scratch_;
}

void SyncNode::send_to(AddrId a, MessagePtr msg) {
  if (!directory_) return;
  const ProcessId pid = directory_(a);
  if (pid == kNoProcess) return;
  send(pid, std::move(msg));
}

}  // namespace pmc

#include "membership/sync.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace pmc {

SyncNode::SyncNode(Runtime& rt, ProcessId pid, SyncConfig config,
                   MembershipView view, Subscription subscription)
    : Process(rt, pid),
      config_(config),
      view_(std::move(view)),
      subscription_(std::move(subscription)),
      joined_(true) {
  config_.tree.validate();
  // Continue from the highest version present so local edits sort after
  // everything already in the bootstrap view (Lamport-style).
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth)
    for (const auto& row : view_.view(depth).rows())
      version_counter_ = std::max(version_counter_, row.version);
  arm_periodic(config_.gossip_period);
}

SyncNode::SyncNode(Runtime& rt, ProcessId pid, SyncConfig config, Address self,
                   Subscription subscription, ProcessId contact)
    : Process(rt, pid),
      config_(config),
      view_(std::move(self), config.tree),
      subscription_(std::move(subscription)),
      join_contact_(contact) {
  send_join_request();
  arm_periodic(config_.gossip_period);
}

void SyncNode::send_join_request() {
  auto join = std::make_shared<JoinRequestMsg>();
  join->joiner = view_.self();
  join->joiner_pid = id();
  join->subscription = subscription_;
  send(join_contact_, std::move(join));
}

void SyncNode::retarget_join(ProcessId contact) {
  if (joined_) return;
  join_contact_ = contact;
  join_retry_budget_ = 0;
  send_join_request();
}

void SyncNode::leave() {
  auto msg = std::make_shared<LeaveMsg>();
  msg->leaver = view_.self();
  // Inform the immediate (leaf-depth) neighbors.
  for (const auto& row : view_.view(config_.tree.depth).rows()) {
    if (!row.alive || row.delegates.empty()) continue;
    if (row.delegates.front() == view_.self()) continue;
    send_to(row.delegates.front(), msg);
  }
  crash();  // fail-stop semantics: the process simply stops participating
}

void SyncNode::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->kind) {
    case MsgKind::MembershipDigest:
      handle_digest(from, static_cast<const MembershipDigestMsg&>(*msg));
      break;
    case MsgKind::MembershipUpdate:
      handle_update(static_cast<const MembershipUpdateMsg&>(*msg));
      break;
    case MsgKind::JoinRequest:
      handle_join(from, static_cast<const JoinRequestMsg&>(*msg));
      break;
    case MsgKind::ViewTransfer:
      handle_view_transfer(static_cast<const ViewTransferMsg&>(*msg));
      break;
    case MsgKind::Leave:
      handle_leave(static_cast<const LeaveMsg&>(*msg));
      break;
    case MsgKind::SuspectQuery:
      handle_suspect_query(from, static_cast<const SuspectQueryMsg&>(*msg));
      break;
    case MsgKind::SuspectReply:
      handle_suspect_reply(static_cast<const SuspectReplyMsg&>(*msg));
      break;
    default:
      break;
  }
}

void SyncNode::on_period() {
  if (!joined_) {
    // Still waiting for the view transfer: the request (or its reply) may
    // have been lost to ε, or the contact may not have joined yet itself —
    // retry until an answer arrives. Duplicate requests are harmless (the
    // server's row upsert and our transfer handling are idempotent). The
    // budget bounds traffic towards a contact that died before serving us;
    // retarget_join() grants a fresh contact and budget.
    if (config_.max_join_retries == 0 ||
        join_retry_budget_ < config_.max_join_retries) {
      send_join_request();
      ++join_retry_budget_;
      ++stats_.join_retries;
    }
    return;
  }
  recompact_own_rows();
  check_neighbor_timeouts();

  const auto peers = known_peers();
  if (peers.empty()) return;
  auto digest = std::make_shared<MembershipDigestMsg>();
  digest->sender = view_.self();
  digest->sender_pid = id();
  digest->digests = make_digest();
  // The same digest goes to every target: resolve the whole fan-out first
  // and put it on the wire as one send_multi (shared payload, one
  // transcode, per-destination draws), instead of per-target sends.
  // digests_sent still counts *attempts*, like the per-target path did.
  digest_targets_.clear();
  const std::size_t fanout = std::min(config_.gossip_fanout, peers.size());
  const auto picks = rng().sample_without_replacement(peers.size(), fanout);
  for (const auto i : picks) {
    if (directory_) {
      const ProcessId pid = directory_(peers[i]);
      if (pid != kNoProcess) digest_targets_.push_back(pid);
    }
    ++stats_.digests_sent;
  }

  // Leaf subgroups actively ping each other (paper Sec. 6): one extra
  // digest per period to a round-robin immediate neighbor keeps the
  // last-contact table fresh and failure detection accurate.
  std::vector<const Address*> neighbors;
  for (const auto& row : view_.view(config_.tree.depth).rows()) {
    if (!row.alive || row.delegates.empty()) continue;
    if (row.delegates.front() == view_.self()) continue;
    neighbors.push_back(&row.delegates.front());
  }
  if (!neighbors.empty()) {
    const Address& ping = *neighbors[ping_cursor_++ % neighbors.size()];
    if (directory_) {
      const ProcessId pid = directory_(ping);
      if (pid != kNoProcess) digest_targets_.push_back(pid);
    }
    ++stats_.digests_sent;
  }
  if (!digest_targets_.empty()) send_multi(digest_targets_, digest);
}

void SyncNode::handle_digest(ProcessId from, const MembershipDigestMsg& m) {
  note_contact(m.sender);
  // Reply with every line where our version is strictly newer, plus lines
  // the gossiper does not know at all — restricted to depths the two of us
  // share (tables above the common prefix are about different subgroups).
  const std::size_t shared =
      view_.self().common_prefix_length(m.sender) + 1;
  std::vector<DepthRow> newer;
  for (std::size_t depth = 1; depth <= std::min(shared, config_.tree.depth);
       ++depth) {
    for (const auto& row : view_.view(depth).rows()) {
      const auto it = std::find_if(
          m.digests.begin(), m.digests.end(), [&](const RowDigest& d) {
            return d.depth == depth && d.infix == row.infix;
          });
      if (it == m.digests.end() || it->version < row.version)
        newer.push_back(DepthRow{static_cast<std::uint32_t>(depth), row});
    }
  }
  // With ack_digests every digest is answered — an empty update is a pure
  // ack — so the gossiper can meter the round-trip loss (sent vs. acked).
  if (newer.empty() && !config_.ack_digests) return;
  auto reply = std::make_shared<MembershipUpdateMsg>();
  reply->sender = view_.self();
  reply->rows = std::move(newer);
  send(from, std::move(reply));
  ++stats_.updates_sent;
}

void SyncNode::handle_update(const MembershipUpdateMsg& m) {
  note_contact(m.sender);
  // Every update answers one of our digests (gossip pull), so it doubles
  // as the ack half of the loss-feedback pair (see Stats::digest_acks).
  ++stats_.digest_acks;
  absorb_rows(m.sender, m.rows);
}

void SyncNode::absorb_rows(const Address& sender,
                           const std::vector<DepthRow>& rows) {
  const std::size_t shared =
      view_.self().common_prefix_length(sender) + 1;
  for (const auto& dr : rows) {
    if (dr.depth < 1 || dr.depth > config_.tree.depth) continue;
    if (dr.depth > shared) continue;  // not our subgroup's table
    apply_row(dr.depth, dr.row);
  }
}

void SyncNode::handle_join(ProcessId from, const JoinRequestMsg& m) {
  (void)from;
  if (!joined_) return;
  const std::size_t shared = view_.self().common_prefix_length(m.joiner);

  // Try to route closer: a delegate of a deeper subgroup on the joiner's
  // path knows strictly more of the joiner's neighborhood than we do.
  if (shared + 1 < config_.tree.depth && m.hops < config_.max_join_hops) {
    const auto* row = view_.view(shared + 1).find(m.joiner.component(shared));
    if (row != nullptr && row->alive && !row->delegates.empty() &&
        !(row->delegates.front() == view_.self())) {
      auto fwd = std::make_shared<JoinRequestMsg>(m);
      fwd->hops = m.hops + 1;
      send_to(row->delegates.front(), std::move(fwd));
      ++stats_.joins_forwarded;
      return;
    }
  }

  // We are (or act as) an immediate neighbor: insert the joiner and send it
  // everything we know that is valid for its address.
  ViewRow row;
  row.infix = m.joiner.component(
      std::min(shared, config_.tree.depth - 1));
  row.delegates = {m.joiner};
  row.interests = InterestSummary::from(m.subscription);
  row.process_count = 1;
  row.version = next_version();
  apply_row(static_cast<std::uint32_t>(
                std::min(shared + 1, config_.tree.depth)),
            row);

  auto transfer = std::make_shared<ViewTransferMsg>();
  transfer->sender = view_.self();
  transfer->rows = rows_for(m.joiner);
  send(m.joiner_pid, std::move(transfer));
  ++stats_.joins_served;
}

void SyncNode::handle_view_transfer(const ViewTransferMsg& m) {
  note_contact(m.sender);
  for (const auto& dr : m.rows) {
    if (dr.depth < 1 || dr.depth > config_.tree.depth) continue;
    apply_row(dr.depth, dr.row);
  }
  if (!joined_) {
    joined_ = true;
    // Make ourselves visible: our own leaf row, versioned locally.
    ViewRow self_row;
    self_row.infix = view_.self().component(config_.tree.depth - 1);
    self_row.delegates = {view_.self()};
    self_row.interests = InterestSummary::from(subscription_);
    self_row.process_count = 1;
    self_row.version = next_version();
    view_.view(config_.tree.depth).upsert(std::move(self_row));
  }
}

void SyncNode::handle_leave(const LeaveMsg& m) {
  // Tombstone the leaver's leaf row; anti-entropy spreads it.
  const std::size_t shared = view_.self().common_prefix_length(m.leaver);
  const std::size_t depth = std::min(shared + 1, config_.tree.depth);
  const auto* row = view_.view(depth).find(
      m.leaver.component(depth - 1));
  if (row == nullptr || !row->alive) return;
  ViewRow tomb = *row;
  tomb.alive = false;
  tomb.version = std::max(next_version(), row->version + 1);
  version_counter_ = std::max(version_counter_, tomb.version);
  view_.view(depth).upsert(std::move(tomb));
  ++stats_.tombstones;
  ++stats_.deaths_observed;
}

bool SyncNode::apply_row(std::uint32_t depth, const ViewRow& row) {
  version_counter_ = std::max(version_counter_, row.version);
  // Rebut false suspicion: a live process that learns of its own tombstone
  // republishes its leaf row with a higher version.
  if (!row.alive && depth == config_.tree.depth &&
      !row.delegates.empty() && row.delegates.front() == view_.self()) {
    ViewRow alive_row = row;
    alive_row.alive = true;
    alive_row.version = next_version();
    ++stats_.rebuttals;
    return view_.view(depth).upsert(std::move(alive_row));
  }
  const auto* current = view_.view(depth).find(row.infix);
  const bool was_alive = current != nullptr && current->alive;
  const bool changed = view_.view(depth).upsert(row);
  // A known-live row absorbed as a tombstone is observed incarnation
  // churn: the raw signal behind the online crash-rate estimate.
  if (changed && was_alive && !row.alive) ++stats_.deaths_observed;
  return changed;
}

std::vector<DepthRow> SyncNode::rows_for(const Address& other) const {
  const std::size_t shared = view_.self().common_prefix_length(other);
  std::vector<DepthRow> out;
  for (std::size_t depth = 1;
       depth <= std::min(shared + 1, config_.tree.depth); ++depth) {
    for (const auto& row : view_.view(depth).rows())
      out.push_back(DepthRow{static_cast<std::uint32_t>(depth), row});
  }
  return out;
}

std::vector<RowDigest> SyncNode::make_digest() const {
  std::vector<RowDigest> out;
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth) {
    for (const auto& row : view_.view(depth).rows())
      out.push_back(RowDigest{static_cast<std::uint32_t>(depth), row.infix,
                              row.version});
  }
  return out;
}

void SyncNode::recompact_own_rows() {
  // From the leaf upward: the row describing our subgroup of depth i (in the
  // depth-i table) is compacted from our depth-(i+1) table (paper Sec. 2.3).
  // Only delegates publish these rows; everyone else just consumes them.
  if (config_.tree.depth < 2) return;
  for (std::size_t depth = config_.tree.depth - 1; depth >= 1; --depth) {
    const DepthView& deeper = view_.view(depth + 1);
    if (deeper.empty()) continue;

    InterestSummary summary;
    std::vector<Address> candidates;
    std::uint64_t count = 0;
    for (const auto& r : deeper.rows()) {
      if (!r.alive) continue;
      summary.merge(r.interests);
      candidates.insert(candidates.end(), r.delegates.begin(),
                        r.delegates.end());
      count += r.process_count;
    }
    if (count == 0) continue;
    auto delegates = elect_delegates(candidates, config_.tree.redundancy);

    // Publish only if we are one of the delegates of our own subgroup.
    if (std::find(delegates.begin(), delegates.end(), view_.self()) ==
        delegates.end())
      continue;

    const AddrComponent own_infix = view_.self().component(depth - 1);
    const auto* current = view_.view(depth).find(own_infix);
    if (current != nullptr && current->alive &&
        current->delegates == delegates &&
        current->process_count == count && current->interests == summary)
      continue;  // nothing changed

    ViewRow row;
    row.infix = own_infix;
    row.delegates = std::move(delegates);
    row.interests = std::move(summary);
    row.process_count = count;
    row.version = next_version();
    view_.view(depth).upsert(std::move(row));
  }
}

void SyncNode::check_neighbor_timeouts() {
  const SimTime now = runtime().now();
  auto& leaf = view_.view(config_.tree.depth);
  std::vector<Address> suspects;
  for (const auto& row : leaf.rows()) {
    if (!row.alive || row.delegates.empty()) continue;
    const Address& neighbor = row.delegates.front();
    if (neighbor == view_.self()) continue;
    const auto it = last_contact_.find(neighbor);
    SimTime last = it == last_contact_.end() ? SimTime{0} : it->second;
    const auto grace = grace_until_.find(neighbor);
    if (grace != grace_until_.end()) last = std::max(last, grace->second);
    if (now - last <= config_.suspicion_timeout) continue;
    if (it == last_contact_.end() && now <= config_.suspicion_timeout)
      continue;  // grace period right after startup
    suspects.push_back(neighbor);
  }

  for (const Address& suspect : suspects) {
    if (!config_.confirm_suspicion) {
      tombstone_neighbor(suspect);
      continue;
    }
    // Agreement-before-exclusion: ask one other live neighbor first.
    const auto pending = pending_suspicions_.find(suspect);
    if (pending != pending_suspicions_.end()) {
      // No confirmation arrived for a whole timeout: the confirmer may be
      // gone too; fall back to unilateral exclusion.
      if (now - pending->second > config_.suspicion_timeout) {
        pending_suspicions_.erase(pending);
        tombstone_neighbor(suspect);
      }
      continue;
    }
    const Address* confirmer = nullptr;
    for (const auto& row : leaf.rows()) {
      if (!row.alive || row.delegates.empty()) continue;
      const Address& candidate = row.delegates.front();
      if (candidate == view_.self() || candidate == suspect) continue;
      confirmer = &candidate;
      break;
    }
    if (confirmer == nullptr) {
      tombstone_neighbor(suspect);  // nobody to ask
      continue;
    }
    auto query = std::make_shared<SuspectQueryMsg>();
    query->sender = view_.self();
    query->suspect = suspect;
    send_to(*confirmer, std::move(query));
    pending_suspicions_.emplace(suspect, now);
  }
}

void SyncNode::handle_suspect_query(ProcessId from,
                                    const SuspectQueryMsg& m) {
  note_contact(m.sender);
  const auto it = last_contact_.find(m.suspect);
  const bool heard =
      it != last_contact_.end() &&
      runtime().now() - it->second <= config_.suspicion_timeout;
  auto reply = std::make_shared<SuspectReplyMsg>();
  reply->sender = view_.self();
  reply->suspect = m.suspect;
  reply->heard_recently = heard;
  send(from, std::move(reply));
}

void SyncNode::handle_suspect_reply(const SuspectReplyMsg& m) {
  note_contact(m.sender);
  const auto it = pending_suspicions_.find(m.suspect);
  if (it == pending_suspicions_.end()) return;  // stale reply
  pending_suspicions_.erase(it);
  if (m.heard_recently) {
    // The suspect is alive elsewhere: extend our deadline — but only as a
    // grace note, never as direct contact (see grace_until_ comment).
    grace_until_[m.suspect] = runtime().now();
  } else {
    tombstone_neighbor(m.suspect);
  }
}

void SyncNode::tombstone_neighbor(const Address& neighbor) {
  auto& leaf = view_.view(config_.tree.depth);
  const auto* row = leaf.find(neighbor.component(config_.tree.depth - 1));
  if (row == nullptr || !row->alive) return;
  ViewRow tomb = *row;
  tomb.alive = false;
  tomb.version = std::max(next_version(), row->version + 1);
  version_counter_ = std::max(version_counter_, tomb.version);
  leaf.upsert(std::move(tomb));
  ++stats_.tombstones;
  ++stats_.deaths_observed;
}

void SyncNode::note_contact(const Address& a) {
  last_contact_[a] = runtime().now();
}

std::vector<Address> SyncNode::known_peers() const {
  std::vector<Address> out;
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth) {
    for (const auto& row : view_.view(depth).rows()) {
      if (!row.alive) continue;
      for (const auto& d : row.delegates) {
        if (d == view_.self()) continue;
        if (std::find(out.begin(), out.end(), d) == out.end())
          out.push_back(d);
      }
    }
  }
  return out;
}

void SyncNode::send_to(const Address& a, MessagePtr msg) {
  if (!directory_) return;
  const ProcessId pid = directory_(a);
  if (pid == kNoProcess) return;
  send(pid, std::move(msg));
}

}  // namespace pmc

// Per-depth membership view tables (paper Fig. 2).
//
// A process keeps one table per depth i of the tree. Each row describes one
// populated subgroup reachable by appending an infix x(i) to the process's
// prefix of length i-1: the subgroup's regrouped interests, its process
// count, and the R delegates representing it ("postfixes" in Fig. 2). At the
// leaf depth d a row is a single immediate-neighbor process. Rows carry a
// version for the gossip-pull anti-entropy of Sec. 2.3 (newer version wins)
// and an `alive` flag so departures/failures propagate as tombstones.
//
// Layout: DepthView is struct-of-arrays. A row is not a struct — it is index
// i into parallel arrays (infix, version, count, alive, pooled interest
// summary, CSR slice of interned delegate ids), so recompact_own_rows and
// digest construction are linear scans over flat memory and a row costs a
// few dozen bytes instead of a ViewRow's several heap blocks. The ViewRow
// struct remains as the *exchange* format — the unit the wire codec encodes
// and anti-entropy ships — materialized from / interned into the arrays at
// the network boundary only.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "addr/address.hpp"
#include "addr/intern.hpp"
#include "common/intern_pool.hpp"
#include "filter/regroup.hpp"
#include "membership/config.hpp"

namespace pmc {

/// The shared interning state of one simulation/runtime: every view, node
/// and directory hosted together binds to one Interns so AddrIds and pooled
/// summaries are comparable across them. Owned by the harness (ChurnSim /
/// ShardedSim / experiment population) or by the test itself.
struct Interns {
  AddrInternTable addrs;
  /// Anti-entropy converges whole subgroups onto structurally identical
  /// summaries; pooling stores each distinct value once per simulation.
  InternPool<InterestSummary> summaries;

  /// Pre-size for `processes` distinct addresses of depth `depth`
  /// (mirrors Network::reserve).
  void reserve(std::size_t processes, std::size_t depth) {
    addrs.reserve(processes, depth);
  }
};

struct ViewRow {
  AddrComponent infix = 0;          ///< subgroup's component at this depth
  std::vector<Address> delegates;   ///< R delegates; the process itself at depth d
  InterestSummary interests;        ///< regrouped interests of the subgroup
  std::uint64_t process_count = 0;  ///< processes represented by the row
  std::uint64_t version = 0;        ///< anti-entropy logical timestamp
  bool alive = true;                ///< false: tombstone (left or crashed)
};

/// A row tagged with the depth of the table it belongs to — the unit of
/// membership exchange (anti-entropy updates, view transfers, and rows
/// piggybacked on event gossip).
struct DepthRow {
  std::uint32_t depth = 0;
  ViewRow row;
};

/// One depth's table: rows sorted by infix, unique per infix, stored as
/// parallel arrays (see file comment). Must be bound to an Interns before
/// any row is inserted.
class DepthView {
 public:
  static constexpr std::size_t npos = static_cast<std::size_t>(-1);

  DepthView() = default;

  void bind(Interns& interns) noexcept { interns_ = &interns; }
  Interns& interns() const {
    PMC_EXPECTS(interns_ != nullptr);
    return *interns_;
  }

  std::size_t size() const noexcept { return infix_.size(); }
  bool empty() const noexcept { return infix_.empty(); }

  /// Index of the row with this infix, or npos.
  std::size_t find_index(AddrComponent infix) const noexcept;

  AddrComponent infix(std::size_t i) const { return infix_[i]; }
  std::uint64_t version(std::size_t i) const { return version_[i]; }
  std::uint64_t process_count(std::size_t i) const { return count_[i]; }
  bool alive(std::size_t i) const { return alive_[i] != 0; }
  const InterestSummary& interests(std::size_t i) const {
    return *interests_[i];
  }
  const std::shared_ptr<const InterestSummary>& interests_ptr(
      std::size_t i) const {
    return interests_[i];
  }
  /// The row's delegates, in their published order.
  std::span<const AddrId> delegates(std::size_t i) const {
    return {del_pool_.data() + del_begin_[i], del_len_[i]};
  }
  AddrId first_delegate(std::size_t i) const {
    PMC_EXPECTS(del_len_[i] > 0);
    return del_pool_[del_begin_[i]];
  }

  /// Inserts or replaces from the exchange format (interning delegates and
  /// pooling the summary); on replace the higher version wins (ties keep the
  /// incumbent). Returns true if the table changed.
  bool upsert(const ViewRow& row);

  /// Same merge rule, already-interned inputs (the recompaction hot path:
  /// no Address or summary copies).
  bool upsert_pooled(AddrComponent infix, std::span<const AddrId> delegates,
                     std::shared_ptr<const InterestSummary> interests,
                     std::uint64_t process_count, std::uint64_t version,
                     bool alive);

  /// Removes a row outright (local maintenance; prefer tombstones for
  /// anti-entropy-visible departures).
  bool erase(AddrComponent infix);

  /// Bumped on every change (upsert that took effect, erase). Lets callers
  /// cache derived state — recompaction skips depths whose inputs did not
  /// change since the last pass.
  std::uint64_t mutations() const noexcept { return mutations_; }

  /// Number of live rows.
  std::size_t live_count() const noexcept;
  /// Sum of process_count over live rows.
  std::uint64_t total_processes() const noexcept;

  /// Rebuilds the exchange-format row byte-for-byte (delegates in published
  /// order) for wire encodes and anti-entropy replies.
  ViewRow materialize(std::size_t i) const;

  std::string to_string() const;

 private:
  bool store(std::size_t i, std::span<const AddrId> delegates,
             std::shared_ptr<const InterestSummary> interests,
             std::uint64_t process_count, std::uint64_t version, bool alive);
  void set_delegates(std::size_t i, std::span<const AddrId> delegates);
  void compact_pool();

  Interns* interns_ = nullptr;

  // Parallel arrays, index = row, sorted by infix_, unique infixes.
  std::vector<AddrComponent> infix_;
  std::vector<std::uint64_t> version_;
  std::vector<std::uint64_t> count_;
  std::vector<std::uint8_t> alive_;
  std::vector<std::shared_ptr<const InterestSummary>> interests_;
  std::vector<std::uint32_t> del_begin_;  ///< offset into del_pool_
  std::vector<std::uint32_t> del_len_;

  /// CSR delegate-id pool. Replacements reuse the slice in place when the
  /// new list fits, else append; compact_pool() reclaims once garbage
  /// dominates.
  std::vector<AddrId> del_pool_;
  std::size_t live_delegates_ = 0;  ///< referenced entries of del_pool_
  std::vector<AddrId> id_scratch_;     ///< upsert() interning buffer
  std::vector<AddrId> alias_scratch_;  ///< set_delegates() detach buffer

  std::uint64_t mutations_ = 0;
};

/// The complete membership knowledge of one process: its address plus one
/// DepthView per depth 1..d. Depth i is indexed as view(i), 1-based to match
/// the paper.
class MembershipView {
 public:
  MembershipView(Address self, TreeConfig config, Interns& interns);

  const Address& self() const noexcept { return self_; }
  AddrId self_id() const noexcept { return self_id_; }
  const TreeConfig& config() const noexcept { return config_; }
  Interns& interns() const noexcept { return *interns_; }

  DepthView& view(std::size_t depth);
  const DepthView& view(std::size_t depth) const;

  /// Total processes known (Eq. 2): live delegates at depths < d plus live
  /// neighbors at depth d; a process appearing at several depths is counted
  /// once per appearance, as the paper does.
  std::size_t known_processes() const noexcept;

  std::string to_string() const;

 private:
  Address self_;
  AddrId self_id_ = kNoAddr;
  TreeConfig config_;
  Interns* interns_ = nullptr;
  std::vector<DepthView> depths_;
};

}  // namespace pmc

// Per-depth membership view tables (paper Fig. 2).
//
// A process keeps one table per depth i of the tree. Each row describes one
// populated subgroup reachable by appending an infix x(i) to the process's
// prefix of length i-1: the subgroup's regrouped interests, its process
// count, and the R delegates representing it ("postfixes" in Fig. 2). At the
// leaf depth d a row is a single immediate-neighbor process. Rows carry a
// version for the gossip-pull anti-entropy of Sec. 2.3 (newer version wins)
// and an `alive` flag so departures/failures propagate as tombstones.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "addr/address.hpp"
#include "filter/regroup.hpp"
#include "membership/config.hpp"

namespace pmc {

struct ViewRow {
  AddrComponent infix = 0;          ///< subgroup's component at this depth
  std::vector<Address> delegates;   ///< R delegates; the process itself at depth d
  InterestSummary interests;        ///< regrouped interests of the subgroup
  std::uint64_t process_count = 0;  ///< processes represented by the row
  std::uint64_t version = 0;        ///< anti-entropy logical timestamp
  bool alive = true;                ///< false: tombstone (left or crashed)
};

/// A row tagged with the depth of the table it belongs to — the unit of
/// membership exchange (anti-entropy updates, view transfers, and rows
/// piggybacked on event gossip).
struct DepthRow {
  std::uint32_t depth = 0;
  ViewRow row;
};

/// One depth's table: rows sorted by infix, unique per infix.
class DepthView {
 public:
  const std::vector<ViewRow>& rows() const noexcept { return rows_; }
  std::size_t size() const noexcept { return rows_.size(); }
  bool empty() const noexcept { return rows_.empty(); }

  const ViewRow* find(AddrComponent infix) const noexcept;

  /// Inserts or replaces; on replace the higher version wins (ties keep the
  /// incumbent). Returns true if the table changed.
  bool upsert(ViewRow row);

  /// Removes a row outright (local maintenance; prefer tombstones for
  /// anti-entropy-visible departures).
  bool erase(AddrComponent infix);

  /// Number of live rows.
  std::size_t live_count() const noexcept;
  /// Sum of process_count over live rows.
  std::uint64_t total_processes() const noexcept;

  std::string to_string() const;

 private:
  std::vector<ViewRow> rows_;
};

/// The complete membership knowledge of one process: its address plus one
/// DepthView per depth 1..d. Depth i is indexed as view(i), 1-based to match
/// the paper.
class MembershipView {
 public:
  MembershipView() = default;
  MembershipView(Address self, TreeConfig config);

  const Address& self() const noexcept { return self_; }
  const TreeConfig& config() const noexcept { return config_; }

  DepthView& view(std::size_t depth);
  const DepthView& view(std::size_t depth) const;

  /// Total processes known (Eq. 2): live delegates at depths < d plus live
  /// neighbors at depth d; a process appearing at several depths is counted
  /// once per appearance, as the paper does.
  std::size_t known_processes() const noexcept;

  std::string to_string() const;

 private:
  Address self_;
  TreeConfig config_;
  std::vector<DepthView> depths_;
};

}  // namespace pmc

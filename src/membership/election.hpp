// Deterministic delegate election (paper Sec. 2.2/2.3).
//
// All processes of a subgroup must agree on the same R delegates *without
// explicit agreement*, so the choice is a pure function of the member set.
// The paper's default criterion is "smallest addresses"; alternative
// criteria (e.g. preferring well-resourced processes) plug in as a custom
// ranking, as Sec. 2.3 suggests.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "addr/address.hpp"
#include "addr/intern.hpp"

namespace pmc {

/// Ranks candidates; delegates are the R best (lowest) by this order.
/// Must be a strict weak ordering and identical at all processes.
using DelegateRank =
    std::function<bool(const Address& a, const Address& b)>;

/// The paper's default: numerically smallest addresses first.
DelegateRank smallest_address_rank();

/// The R best members by `rank`; all members if fewer than R.
/// The result is sorted by rank (best first).
std::vector<Address> elect_delegates(std::span<const Address> members,
                                     std::size_t r,
                                     const DelegateRank& rank);

std::vector<Address> elect_delegates(std::span<const Address> members,
                                     std::size_t r);

/// Interned-id election under the paper's default criterion: the winners
/// are ranked by their *addresses* (ids are first-intern order, never a
/// valid ranking), resolved through `table`. Writes into `out` (cleared
/// first) so the recompaction hot path elects without allocating.
void elect_delegate_ids(std::span<const AddrId> members, std::size_t r,
                        const AddrInternTable& table,
                        std::vector<AddrId>& out);

}  // namespace pmc

#include "membership/election.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace pmc {

DelegateRank smallest_address_rank() {
  return [](const Address& a, const Address& b) { return a < b; };
}

std::vector<Address> elect_delegates(std::span<const Address> members,
                                     std::size_t r,
                                     const DelegateRank& rank) {
  PMC_EXPECTS(r >= 1);
  std::vector<Address> out(members.begin(), members.end());
  if (out.size() > r) {
    std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(r),
                      out.end(), rank);
    out.resize(r);
  } else {
    std::sort(out.begin(), out.end(), rank);
  }
  return out;
}

std::vector<Address> elect_delegates(std::span<const Address> members,
                                     std::size_t r) {
  return elect_delegates(members, r, smallest_address_rank());
}

void elect_delegate_ids(std::span<const AddrId> members, std::size_t r,
                        const AddrInternTable& table,
                        std::vector<AddrId>& out) {
  PMC_EXPECTS(r >= 1);
  out.assign(members.begin(), members.end());
  const auto by_address = [&table](AddrId a, AddrId b) {
    return table.less(a, b);
  };
  if (out.size() > r) {
    std::partial_sort(out.begin(), out.begin() + static_cast<std::ptrdiff_t>(r),
                      out.end(), by_address);
    out.resize(r);
  } else {
    std::sort(out.begin(), out.end(), by_address);
  }
}

}  // namespace pmc

// GroupTree: the compound spanning tree of paper Sec. 2.
//
// Processes sharing a prefix of length i-1 form a subgroup of depth i; each
// populated subgroup elects R delegates that also populate the parent node.
// GroupTree maintains, per prefix, the child view table (one ViewRow per
// populated child subgroup: its delegates, regrouped interests and process
// count), the subgroup's own delegates, and its interest summary.
//
// The tree serves two roles:
//  * in simulation, it is the authoritative membership all processes share
//    (one DepthView per subgroup, shared by reference — what every member of
//    that subgroup would hold in its own table);
//  * in the dynamic-membership path it is the bootstrap source
//    (materialize_view) and the oracle that tests compare against.
//
// Incremental join/leave updates rebuild only the leaf subgroup and the
// O(d) ancestor rows on the path to the root, bumping row versions so
// anti-entropy picks the changes up.
#pragma once

#include <span>
#include <unordered_map>
#include <vector>

#include "addr/address.hpp"
#include "addr/space.hpp"
#include "filter/subscription.hpp"
#include "membership/config.hpp"
#include "membership/election.hpp"
#include "membership/view.hpp"

namespace pmc {

struct Member {
  Address address;
  Subscription subscription;
};

/// Optional behaviours of the tree beyond the paper's core scheme.
struct GroupTreeOptions {
  /// Sec. 6's per-depth mechanism (2): "approximating the filters applied
  /// by delegates closer to the root to reduce computation". Rows in
  /// tables of depth <= this value carry *coarsened* interest summaries
  /// (bounding intervals / projections): cheaper to store and evaluate,
  /// never losing an interested process, at the cost of some extra
  /// uninterested subtrees being infected near the root. 0 disables.
  std::size_t coarsen_depth_leq = 0;
};

class GroupTree {
 public:
  /// Builds the tree for an initial population. Addresses must be unique and
  /// all of depth config.depth. All views the tree hands out intern through
  /// `interns`, which must outlive the tree.
  GroupTree(TreeConfig config, std::vector<Member> members, Interns& interns,
            GroupTreeOptions options = {});

  const TreeConfig& config() const noexcept { return config_; }
  Interns& interns() const noexcept { return *interns_; }
  std::size_t process_count() const noexcept;

  /// Child view of the subgroup denoted by `prefix`
  /// (prefix length in [0, d-1]). This is the depth-(len+1) table of every
  /// process under that prefix.
  const DepthView& view_at(const Prefix& prefix) const;

  /// The depth-i table of process `self` (i in [1, d]):
  /// view_at(self.prefix(i-1)).
  const DepthView& view_for(const Address& self, std::size_t depth) const;

  /// Delegates representing `prefix` at its parent (R smallest addresses).
  const std::vector<Address>& delegates(const Prefix& prefix) const;

  /// Number of processes represented by `prefix` (paper Eq. 4).
  std::uint64_t represented(const Prefix& prefix) const;

  /// Regrouped interests of the whole subtree under `prefix`.
  const InterestSummary& summary(const Prefix& prefix) const;

  bool contains(const Address& a) const;
  /// Individual subscription; precondition: contains(a).
  const Subscription& subscription(const Address& a) const;

  std::vector<Address> all_members() const;

  /// Addresses of `space` not currently populated, in lexicographic order —
  /// the candidate slots a scripted Join action can fill. Precondition:
  /// space.depth() == config().depth.
  std::vector<Address> vacancies(const AddressSpace& space) const;

  /// True iff `a` is one of the delegates of its depth-(i+1) subgroup for
  /// some i <= depth-1, i.e. appears in the node of depth `depth`.
  bool is_delegate_at(const Address& a, std::size_t depth) const;

  /// Per-process membership knowledge (Eq. 2) as a standalone copy — the
  /// bootstrap a joining process receives.
  MembershipView materialize_view(const Address& self) const;

  // -- Dynamic membership --------------------------------------------------

  /// Adds a process; rebuilds its leaf subgroup and the ancestor path.
  void add_member(Address address, Subscription subscription);
  /// Removes a process (leave or crash observed); ancestors updated; an empty
  /// leaf subgroup disappears from its parent's table.
  void remove_member(const Address& address);
  /// Replaces a member's subscription; summaries on the path are refreshed.
  void update_subscription(const Address& address, Subscription subscription);

 private:
  struct Node {
    DepthView child_view;             // rows for populated children
    std::vector<Address> delegates;   // R smallest under this prefix
    InterestSummary summary;
    std::uint64_t process_count = 0;
    std::vector<Member> members;      // leaf-subgroup nodes only (len == d-1)
  };

  Node& node(const Prefix& p);
  const Node& node(const Prefix& p) const;
  /// try_emplace that binds a fresh node's child view to the intern state.
  Node& ensure_node(const Prefix& p);

  void rebuild_leaf(const Prefix& leaf_prefix);
  /// Writes (or erases, when empty) the row describing `child` in its
  /// parent's table.
  void push_row_to_parent(const Prefix& child);
  /// Recomputes count/summary/delegates from the node's child rows.
  void recompute_aggregates(Node& n);
  /// Refreshes the row for `child` inside its parent and recurses upward.
  void refresh_ancestors(const Prefix& child);

  TreeConfig config_;
  GroupTreeOptions options_;
  Interns* interns_ = nullptr;
  std::unordered_map<Prefix, Node, PrefixHash> nodes_;
  std::uint64_t version_counter_ = 1;
  std::vector<AddrId> candidate_scratch_;
  std::vector<AddrId> delegate_scratch_;
};

}  // namespace pmc

#include "analysis/tree_analysis.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace pmc {

TreeAnalysisResult analyze_tree(const TreeAnalysisParams& params) {
  PMC_EXPECTS(params.a >= 1 && params.d >= 1 && params.r >= 1);
  PMC_EXPECTS(params.pd >= 0.0 && params.pd <= 1.0);

  const RoundEstimator estimator(params.pittel_c);
  const auto a = static_cast<double>(params.a);

  TreeAnalysisResult out;
  out.depths.reserve(params.d);

  double expected_g = 1.0;  // g_0 = 1: the root subgroup starts infected
  for (std::size_t i = 1; i <= params.d; ++i) {
    DepthAnalysis da;
    da.depth = i;
    // Eq. 7: a delegate of depth i represents a^(d-i) processes.
    const double represented =
        std::pow(a, static_cast<double>(params.d - i));
    da.pi = 1.0 - std::pow(1.0 - params.pd, represented);
    // Eq. 12: view sizes.
    da.mi = (i < params.d) ? static_cast<double>(params.r) * a : a;
    da.interested = da.mi * da.pi;

    // Eq. 11/13: rounds spent gossiping at this depth.
    da.rounds = estimator.faulty(da.interested, params.fanout * da.pi,
                                 params.env);
    const std::size_t executed = RoundEstimator::executed_rounds(da.rounds);

    // Eq. 14: expected infected among the interested after T_i rounds.
    const auto group = static_cast<std::size_t>(
        std::max(1.0, std::round(da.interested)));
    const auto chain = InfectionChain::flat(
        group, params.fanout * da.pi, params.env);
    da.expected_infected = chain.expected_infected(executed);

    // Eq. 15: a "node" (R delegates of one subtree; a single process at the
    // leaves) is infected when at least one of its members is.
    const double frac =
        da.interested > 0.0
            ? std::min(1.0, da.expected_infected / da.interested)
            : 0.0;
    const double exponent = da.mi / a;  // R for i < d, 1 for i = d
    da.ri = 1.0 - std::pow(1.0 - frac, exponent);

    // Eqs. 16-18 in expectation: each of the E[g_{i-1}] infected entities
    // has a children, of which a*p_i are interested, each reached w.p. r_i.
    expected_g *= a * da.pi * da.ri;
    da.expected_gi = expected_g;

    out.total_rounds += da.rounds;
    out.depths.push_back(da);
  }

  out.expected_infected = expected_g;
  const double n_pd =
      std::pow(a, static_cast<double>(params.d)) * params.pd;
  out.reliability =
      n_pd > 0.0 ? std::clamp(expected_g / n_pd, 0.0, 1.0) : 0.0;
  return out;
}

std::vector<std::vector<double>> tree_infection_distribution(
    const TreeAnalysisParams& params, std::size_t max_states) {
  const auto base = analyze_tree(params);  // supplies p_i and r_i per depth
  const auto a = static_cast<double>(params.a);

  std::vector<std::vector<double>> out;
  // g_0 = 1 with certainty.
  std::vector<double> prev{0.0, 1.0};
  for (const auto& depth : base.depths) {
    // Given g_{i-1} = j infected parent entities, the number of *interested*
    // child nodes in play is round(j * a * p_i), each independently infected
    // with probability r_i (Eq. 16).
    const double per_parent = a * depth.pi;
    const auto max_children = static_cast<std::size_t>(
        std::round(static_cast<double>(prev.size() - 1) * per_parent));
    if (max_children + 1 > max_states)
      throw std::logic_error(
          "tree_infection_distribution: state space exceeds max_states");
    std::vector<double> cur(max_children + 1, 0.0);
    for (std::size_t j = 0; j < prev.size(); ++j) {
      if (prev[j] <= 0.0) continue;
      const auto targets = static_cast<std::size_t>(
          std::round(static_cast<double>(j) * per_parent));
      if (targets == 0) {
        cur[0] += prev[j];
        continue;
      }
      const double ri = std::clamp(depth.ri, 0.0, 1.0);
      for (std::size_t k = 0; k <= targets; ++k) {
        double log_p;
        if (ri <= 0.0) {
          if (k != 0) continue;
          log_p = 0.0;
        } else if (ri >= 1.0) {
          if (k != targets) continue;
          log_p = 0.0;
        } else {
          log_p = log_binomial(static_cast<double>(targets),
                               static_cast<double>(k)) +
                  static_cast<double>(k) * std::log(ri) +
                  static_cast<double>(targets - k) * std::log(1.0 - ri);
        }
        cur[k] += prev[j] * std::exp(log_p);
      }
    }
    out.push_back(cur);
    prev = std::move(cur);
  }
  return out;
}

std::size_t regular_view_size(std::size_t a, std::size_t d, std::size_t r) {
  PMC_EXPECTS(a >= 1 && d >= 1 && r >= 1);
  return r * a * (d - 1) + a;
}

}  // namespace pmc

#include "analysis/markov.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace pmc {

double log_binomial(double n, double k) {
  PMC_EXPECTS(k >= 0.0 && k <= n);
  return std::lgamma(n + 1.0) - std::lgamma(k + 1.0) -
         std::lgamma(n - k + 1.0);
}

InfectionChain::InfectionChain(std::size_t n, double p_receive)
    : n_(n), p_(p_receive) {
  PMC_EXPECTS(n >= 1);
  PMC_EXPECTS(p_receive >= 0.0 && p_receive <= 1.0);
}

InfectionChain InfectionChain::flat(std::size_t n, double fanout,
                                    const EnvParams& env) {
  PMC_EXPECTS(n >= 1);
  double p = 0.0;
  if (n > 1) {
    p = (fanout / static_cast<double>(n - 1)) * (1.0 - env.loss) *
        (1.0 - env.crash);
    if (p > 1.0) p = 1.0;  // fanout >= group size: everyone is contacted
    if (p < 0.0) p = 0.0;
  }
  return InfectionChain(n, p);
}

double InfectionChain::transition(std::size_t j, std::size_t k) const {
  if (j > n_ || k > n_ || k < j) return 0.0;
  if (j == 0) return k == 0 ? 1.0 : 0.0;
  const double q = 1.0 - p_;
  if (q <= 0.0) return k == n_ ? 1.0 : 0.0;  // p == 1: total infection
  const double qj = std::pow(q, static_cast<double>(j));
  const double infect = 1.0 - qj;  // a given susceptible gets infected
  const auto nj = static_cast<double>(n_ - j);
  const auto kj = static_cast<double>(k - j);
  if (infect <= 0.0) return k == j ? 1.0 : 0.0;  // p == 0: frozen
  const double log_p = log_binomial(nj, kj) +
                       kj * std::log(infect) +
                       (nj - kj) * std::log(qj);
  return std::exp(log_p);
}

std::vector<double> InfectionChain::distribution_after(
    std::size_t rounds, std::size_t initial) const {
  PMC_EXPECTS(initial <= n_);
  std::vector<double> dist(n_ + 1, 0.0);
  dist[initial] = 1.0;
  for (std::size_t t = 0; t < rounds; ++t) {
    std::vector<double> next(n_ + 1, 0.0);
    for (std::size_t j = 0; j <= n_; ++j) {
      if (dist[j] <= 0.0) continue;
      for (std::size_t k = j; k <= n_; ++k)
        next[k] += dist[j] * transition(j, k);
    }
    dist = std::move(next);
  }
  return dist;
}

double InfectionChain::expected_infected(std::size_t rounds,
                                         std::size_t initial) const {
  const auto dist = distribution_after(rounds, initial);
  double e = 0.0;
  for (std::size_t k = 0; k <= n_; ++k)
    e += static_cast<double>(k) * dist[k];
  return e;
}

}  // namespace pmc

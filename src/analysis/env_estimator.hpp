// Online estimation of the environment parameters ε (message loss) and
// τ (crash rate) of the reliability analysis (paper Sec. 3.3/4.1, Eq. 11).
//
// The paper assumes every deployed process *knows* ε and τ ("estimates
// available to deployed processes"); our simulations previously froze that
// estimate at configuration time, so every loss burst or crash wave ran
// with a round bound computed for the wrong environment. EnvEstimator
// closes that gap by pure observation:
//
//  * ε from gossip feedback. With SyncConfig::ack_digests on, every
//    periodic membership digest elicits exactly one MembershipUpdate back
//    (rows when the peer is newer, an empty ack otherwise), turning the
//    anti-entropy traffic into loss probes. Over a sampling window the
//    round-trip success ratio acked/sent estimates (1-ε)², so the
//    per-window loss observation is 1 - sqrt(acked/sent). Known confound:
//    a probe to a crashed-but-not-yet-tombstoned (or partitioned-away)
//    peer goes unacked exactly like a lost message, so crash waves bleed
//    into ε̂ until failure detection prunes the view — the estimate is a
//    deliberately conservative "effective loss towards my current view",
//    which can double-discount a failure that τ̂ also sees. Over-gossiping
//    after crash waves is the safe direction for reliability; the ceiling
//    below bounds the damage.
//  * τ from view incarnation churn: rows observed transitioning alive→dead
//    (SyncNode::Stats::deaths_observed) over the known population,
//    per window. This approximates the paper's τ = f/n for windows on the
//    order of an event's gossip lifetime.
//
// Both observations are folded into an EWMA seeded from the static prior.
// The estimator is deterministic by construction — no RNG, only counter
// arithmetic — so adaptive runs replay byte-identically and never perturb
// co-hosted shards. Its output is always a valid RoundEstimator input
// (clamped to [0, ceiling] with ceiling < 1, never NaN).
#pragma once

#include <cstdint>

#include "analysis/rounds.hpp"

namespace pmc {

/// Eq. 11 environment policy: the static ε/τ prior a node starts from,
/// plus the knobs of the online estimator that may refine it at runtime.
struct AdaptiveEnv {
  /// Static estimate (the paper's deployed-process assumption): used
  /// verbatim while `adaptive` is off, and as the EWMA seed when it is on.
  EnvParams prior;

  /// Consult the live estimate (PmcastNode::set_env_source) instead of the
  /// prior when re-evaluating the Eq. 11 round bound.
  bool adaptive = false;

  /// EWMA weight of each new observation window, in (0, 1]. Larger values
  /// track bursts faster but pass more sampling noise into the bound.
  double ewma_alpha = 0.3;

  /// Estimates are clamped below these ceilings so (1-ε)(1-τ) stays
  /// strictly positive: an estimator that believes *everything* is lost
  /// must still leave the algorithm a usable (if collapsed) bound.
  double loss_ceiling = 0.9;
  double crash_ceiling = 0.9;

  /// Feedback windows with fewer probes than this are discarded — a 1-of-2
  /// ack window would swing the EWMA on pure noise.
  std::uint64_t min_probes = 4;

  void validate() const;
};

class EnvEstimator {
 public:
  explicit EnvEstimator(AdaptiveEnv policy);

  /// One feedback window: membership digests sent vs. update/ack replies
  /// received. Windows with fewer than `min_probes` probes are ignored;
  /// the ratio is clamped to [0, 1] (late acks can straddle windows).
  void observe_feedback(std::uint64_t probes, std::uint64_t acks);

  /// One churn window: alive→dead row transitions observed vs. the known
  /// population. A window with an empty population is ignored.
  void observe_churn(std::uint64_t deaths, std::uint64_t population);

  /// Current smoothed estimate; always a valid RoundEstimator::faulty
  /// input (within [0, ceiling], never NaN).
  EnvParams estimate() const noexcept;

  std::uint64_t feedback_windows() const noexcept {
    return feedback_windows_;
  }
  std::uint64_t churn_windows() const noexcept { return churn_windows_; }
  const AdaptiveEnv& policy() const noexcept { return policy_; }

 private:
  AdaptiveEnv policy_;
  double loss_;   ///< EWMA state, seeded from policy_.prior.loss
  double crash_;  ///< EWMA state, seeded from policy_.prior.crash
  std::uint64_t feedback_windows_ = 0;  ///< accepted feedback windows
  std::uint64_t churn_windows_ = 0;     ///< accepted churn windows
};

}  // namespace pmc

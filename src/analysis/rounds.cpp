#include "analysis/rounds.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace pmc {

double RoundEstimator::pittel(double n, double fanout) const {
  if (n <= 1.0 || fanout <= 0.0) return 0.0;
  const double t =
      std::log(n) * (1.0 / fanout + 1.0 / std::log(fanout + 1.0)) + c_;
  return t > 0.0 ? t : 0.0;
}

double RoundEstimator::faulty(double n, double fanout,
                              const EnvParams& env) const {
  PMC_EXPECTS(env.loss >= 0.0 && env.loss < 1.0);
  PMC_EXPECTS(env.crash >= 0.0 && env.crash < 1.0);
  const double keep = (1.0 - env.loss) * (1.0 - env.crash);
  return pittel(n * keep, fanout * keep);
}

std::size_t RoundEstimator::executed_rounds(double t) {
  if (t <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(t));
}

}  // namespace pmc

#include "analysis/rounds.hpp"

#include <cmath>

#include "common/contract.hpp"

namespace pmc {

double RoundEstimator::pittel(double n, double fanout) const {
  // Negated comparisons so NaN inputs (a collapsed upstream discount)
  // fall into the explicit 0 as well, instead of flowing through log()
  // and poisoning the round bound. A 0 here means "gossip zero rounds";
  // callers that still have an audience count the collapse
  // (PmcastNode::Stats::bound_collapsed) rather than losing the event
  // silently.
  if (!(n > 1.0) || !(fanout > 0.0)) return 0.0;
  const double t =
      std::log(n) * (1.0 / fanout + 1.0 / std::log(fanout + 1.0)) + c_;
  return t > 0.0 ? t : 0.0;
}

double RoundEstimator::faulty(double n, double fanout,
                              const EnvParams& env) const {
  // The boundary values ε = 1 / τ = 1 are accepted (an online estimator
  // saturating under total loss is a legitimate state, not a programming
  // error) and collapse the bound to an explicit 0; only out-of-range and
  // NaN parameters are rejected.
  PMC_EXPECTS(env.loss >= 0.0 && env.loss <= 1.0);
  PMC_EXPECTS(env.crash >= 0.0 && env.crash <= 1.0);
  const double keep = (1.0 - env.loss) * (1.0 - env.crash);
  if (keep <= 0.0) return 0.0;
  return pittel(n * keep, fanout * keep);
}

std::size_t RoundEstimator::executed_rounds(double t) {
  if (t <= 0.0) return 0;
  return static_cast<std::size_t>(std::ceil(t));
}

}  // namespace pmc

#include "analysis/env_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace pmc {

void AdaptiveEnv::validate() const {
  PMC_EXPECTS(prior.loss >= 0.0 && prior.loss < 1.0);
  PMC_EXPECTS(prior.crash >= 0.0 && prior.crash < 1.0);
  PMC_EXPECTS(ewma_alpha > 0.0 && ewma_alpha <= 1.0);
  PMC_EXPECTS(loss_ceiling >= 0.0 && loss_ceiling < 1.0);
  PMC_EXPECTS(crash_ceiling >= 0.0 && crash_ceiling < 1.0);
}

EnvEstimator::EnvEstimator(AdaptiveEnv policy)
    : policy_(policy),
      loss_(std::min(policy.prior.loss, policy.loss_ceiling)),
      crash_(std::min(policy.prior.crash, policy.crash_ceiling)) {
  policy_.validate();
}

void EnvEstimator::observe_feedback(std::uint64_t probes,
                                    std::uint64_t acks) {
  if (probes < policy_.min_probes) return;  // too small to be signal
  // acked/sent estimates the round-trip success (1-ε)²; acks answering
  // probes of the previous window can push the ratio past 1, so clamp.
  const double ratio = std::min(
      1.0, static_cast<double>(acks) / static_cast<double>(probes));
  const double observed = 1.0 - std::sqrt(ratio);
  loss_ = (1.0 - policy_.ewma_alpha) * loss_ + policy_.ewma_alpha * observed;
  loss_ = std::clamp(loss_, 0.0, policy_.loss_ceiling);
  ++feedback_windows_;
}

void EnvEstimator::observe_churn(std::uint64_t deaths,
                                 std::uint64_t population) {
  if (population == 0) return;
  const double observed = std::min(
      1.0, static_cast<double>(deaths) / static_cast<double>(population));
  crash_ =
      (1.0 - policy_.ewma_alpha) * crash_ + policy_.ewma_alpha * observed;
  crash_ = std::clamp(crash_, 0.0, policy_.crash_ceiling);
  ++churn_windows_;
}

EnvParams EnvEstimator::estimate() const noexcept {
  return EnvParams{loss_, crash_};
}

}  // namespace pmc

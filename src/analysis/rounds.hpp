// Expected-round estimation (paper Sec. 3.3, Eqs. 3 and 11).
//
// Pittel's asymptote for rumor spreading in a group of n processes with
// fanout F:  T(n, F) = log n * (1/F + 1/log(F+1)) + c  [Pittel 1987].
// pmcast uses it to bound how long an event is gossiped at each tree depth
// ("passive garbage collection"). Message loss ε and crash probability τ are
// folded in by discounting both the population and the fanout (Eq. 11):
// Tf(n, F) = T(n(1-ε)(1-τ), F(1-ε)(1-τ)).
//
// The asymptote degrades for small n — the paper's Sec. 5.1/5.3 discusses
// the resulting reliability loss at small matching rates; we reproduce that
// behaviour faithfully (no artificial clamping).
#pragma once

#include <cstddef>

namespace pmc {

/// Environmental parameters of the analysis model (Sec. 4.1).
struct EnvParams {
  double loss = 0.0;   ///< ε — per-message loss probability
  double crash = 0.0;  ///< τ = f/n — per-process crash probability
};

class RoundEstimator {
 public:
  /// `c` is the additive constant of Eq. 3 (the paper leaves it free;
  /// conservative values increase reliability at the cost of extra rounds).
  explicit RoundEstimator(double c = 0.0) : c_(c) {}

  /// Raw Pittel estimate T(n, F); 0 when n <= 1, F <= 0, or either input
  /// is NaN (degenerate and collapsed inputs yield an explicit 0, never a
  /// NaN bound). Real-valued: the algorithm gossips while round < T, i.e.
  /// for ceil(T) rounds.
  double pittel(double n, double fanout) const;

  /// Loss/crash-adjusted estimate Tf(n, F) (Eq. 11). Accepts ε, τ in
  /// [0, 1]: the boundary (everything lost/crashed) collapses the bound
  /// to 0 explicitly; values outside [0, 1] (or NaN) throw. When the
  /// discounted population n(1-ε)(1-τ) drops to <= 1 the bound is 0 as
  /// well — observable at the caller via Stats::bound_collapsed.
  double faulty(double n, double fanout, const EnvParams& env) const;

  /// Number of gossip rounds the algorithm will actually execute for a raw
  /// estimate t: ceil(t), 0 when t <= 0.
  static std::size_t executed_rounds(double t);

  double constant() const noexcept { return c_; }

 private:
  double c_;
};

}  // namespace pmc

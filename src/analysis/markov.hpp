// Infection-spreading Markov chain for a flat gossip group
// (paper Sec. 4.2, Eqs. 8-10 and 14).
//
// State = number of infected processes among n susceptibles. One infected
// process reaches a given other process in a round with probability
// p = (F/(n-1)) (1-ε)(1-τ); with j infected, a susceptible stays clean with
// probability q^j, so the one-round transition from j to k infects k-j of
// the n-j susceptibles binomially:
//   p_jk = C(n-j, k-j) (1-q^j)^(k-j) (q^j)^(n-k).
//
// All probabilities are computed in log space (lgamma binomials) so chains
// of a few hundred states stay numerically stable.
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/rounds.hpp"

namespace pmc {

/// log C(n, k); requires 0 <= k <= n.
double log_binomial(double n, double k);

class InfectionChain {
 public:
  /// n: group size; p_receive: probability that one infected process infects
  /// one given other process in one round (already includes fanout, loss and
  /// crash discounts).
  InfectionChain(std::size_t n, double p_receive);

  /// The paper's parametrization (Eq. 8): group n, fanout F, environment.
  static InfectionChain flat(std::size_t n, double fanout,
                             const EnvParams& env = {});

  std::size_t group_size() const noexcept { return n_; }
  double p_receive() const noexcept { return p_; }

  /// Distribution of s_t after `rounds` rounds from `initial` infected.
  /// Index k of the result is P[s_t = k], k in [0, n].
  std::vector<double> distribution_after(std::size_t rounds,
                                         std::size_t initial = 1) const;

  /// E[s_t] after `rounds` rounds (Eq. 14 uses t = T_i).
  double expected_infected(std::size_t rounds, std::size_t initial = 1) const;

  /// One-round transition probability P[s_{t+1} = k | s_t = j].
  double transition(std::size_t j, std::size_t k) const;

 private:
  std::size_t n_;
  double p_;
};

}  // namespace pmc

// Stochastic analysis of pmcast on a regular tree (paper Sec. 4.3).
//
// For a regular tree with branch factor a, depth d, redundancy R, fanout F
// and per-process interest probability p_d:
//   p_i  = 1 - (1-p_d)^(a^(d-i))                (Eq. 7 — delegate interest)
//   m_i  = R*a for i < d, a for i = d           (Eq. 12 — view sizes)
//   T_i  = Tf(m_i p_i, F p_i)                   (Eq. 11/13 — rounds per depth)
//   E[s_Ti] from the flat-group chain           (Eq. 14)
//   r_i  = 1 - (1 - E[s_Ti]/(m_i p_i))^(m_i/a)  (Eq. 15 — node infected;
//          the exponent m_i/a is R for inner depths and 1 at the leaves)
//   E[g_i] = E[g_{i-1}] * a p_i r_i             (Eqs. 16-18, expectations)
// Reliability degree = E[g_d] / (n p_d).
#pragma once

#include <cstddef>
#include <vector>

#include "analysis/markov.hpp"
#include "analysis/rounds.hpp"

namespace pmc {

struct TreeAnalysisParams {
  std::size_t a = 22;       ///< branch factor (subgroups per node)
  std::size_t d = 3;        ///< tree depth
  std::size_t r = 3;        ///< delegates per subgroup (R)
  double fanout = 2.0;      ///< gossip fanout F
  double pd = 0.5;          ///< fraction of interested processes
  EnvParams env;            ///< ε, τ
  double pittel_c = 0.0;    ///< additive constant of Eq. 3
};

struct DepthAnalysis {
  std::size_t depth = 0;       ///< i in [1, d]
  double pi = 0.0;             ///< Eq. 7
  double mi = 0.0;             ///< Eq. 12 view size
  double interested = 0.0;     ///< m_i * p_i
  double rounds = 0.0;         ///< T_i (real-valued Pittel estimate)
  double expected_infected = 0.0;  ///< E[s_Ti]
  double ri = 0.0;             ///< Eq. 15
  double expected_gi = 0.0;    ///< E[g_i]
};

struct TreeAnalysisResult {
  std::vector<DepthAnalysis> depths;  ///< one entry per depth 1..d
  double total_rounds = 0.0;          ///< Eq. 13, sum of T_i
  double expected_infected = 0.0;     ///< E[g_d] (Eq. 18)
  double reliability = 0.0;           ///< E[g_d] / (n p_d), clamped to [0,1]
};

TreeAnalysisResult analyze_tree(const TreeAnalysisParams& params);

/// Full distribution of infected entities per depth (Eqs. 16-17):
/// result[i-1][k] = P[g_i = k] for depth i, with g_0 = 1. The state space
/// at depth i has up to round(a^i * p_i) + 1 entries, so this is intended
/// for small trees (the expectation path in analyze_tree covers large
/// ones); `max_states` guards the cost and throws std::logic_error beyond.
std::vector<std::vector<double>> tree_infection_distribution(
    const TreeAnalysisParams& params, std::size_t max_states = 4096);

/// Per-process membership knowledge m = R a (d-1) + a in a regular tree
/// (Eq. 2/12) — the membership-scalability claim.
std::size_t regular_view_size(std::size_t a, std::size_t d, std::size_t r);

}  // namespace pmc

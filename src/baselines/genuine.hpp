// "Genuine" gossip multicast — filter *before* gossiping (the second
// alternative of the paper's introduction). Every process holds a partial
// random view of the group (lpbcast-style membership) annotated with the
// members' subscriptions, and forwards an event only to interested view
// members. Only concerned processes carry the load, but interested
// processes can be isolated whenever no gossip path of interested processes
// connects them — exactly the reliability limitation the paper points out,
// most visible at small matching rates.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "analysis/rounds.hpp"
#include "event/event.hpp"
#include "filter/subscription.hpp"
#include "sim/runtime.hpp"

namespace pmc {

struct GenuineGossipMsg final : MessageBase {
  GenuineGossipMsg() noexcept : MessageBase(MsgKind::GenuineGossip) {}

  std::shared_ptr<const Event> event;
  std::uint32_t round = 0;
};

struct GenuineConfig {
  std::size_t fanout = 2;
  SimTime period = sim_ms(100);
  double pittel_c = 0.0;
  EnvParams env_estimate;
  /// Group size estimate used for the round bound (processes do not know
  /// the interested population; they scale n by the local matching rate).
  std::size_t group_size_hint = 0;
};

class GenuineNode final : public Process {
 public:
  using DeliverHandler = std::function<void(const Event&)>;

  struct Peer {
    ProcessId pid = kNoProcess;
    Subscription subscription;  // known interests of the view member
  };

  /// `view`: this process's partial view (ids + known subscriptions).
  GenuineNode(Runtime& rt, ProcessId pid, GenuineConfig config,
              Subscription subscription, std::vector<Peer> view);

  void multicast(Event event);
  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  bool interested_in(const Event& e) const { return subscription_.match(e); }
  bool has_received(const EventId& id) const { return seen_.count(id) != 0; }
  bool has_delivered(const EventId& id) const {
    return delivered_.count(id) != 0;
  }

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t delivered = 0;
    std::uint64_t gossips_sent = 0;
    /// Duplicates discarded by the seen-set (exactly-once audit trail
    /// under the network's duplication injector).
    std::uint64_t dup_suppressed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 protected:
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_period() override;

 private:
  struct Entry {
    std::shared_ptr<const Event> event;
    std::uint32_t round = 0;
  };

  void buffer(Entry entry);
  void deliver_if_interested(const Event& e);

  GenuineConfig config_;
  Subscription subscription_;
  std::vector<Peer> view_;
  RoundEstimator estimator_;
  DeliverHandler deliver_;
  std::vector<Entry> buffer_;
  std::unordered_set<EventId, EventIdHash> seen_;
  std::unordered_set<EventId, EventIdHash> delivered_;
  Stats stats_;
};

}  // namespace pmc

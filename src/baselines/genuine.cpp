#include "baselines/genuine.hpp"

#include "common/contract.hpp"

namespace pmc {

GenuineNode::GenuineNode(Runtime& rt, ProcessId pid, GenuineConfig config,
                         Subscription subscription, std::vector<Peer> view)
    : Process(rt, pid),
      config_(config),
      subscription_(std::move(subscription)),
      view_(std::move(view)),
      estimator_(config.pittel_c) {
  PMC_EXPECTS(config_.fanout >= 1);
  PMC_EXPECTS(config_.period > 0);
}

void GenuineNode::multicast(Event event) {
  PMC_EXPECTS(alive());
  auto ev = std::make_shared<const Event>(std::move(event));
  seen_.insert(ev->id());
  deliver_if_interested(*ev);
  buffer(Entry{std::move(ev), 0});
}

void GenuineNode::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  if (msg->kind != MsgKind::GenuineGossip) return;
  const auto& gossip = static_cast<const GenuineGossipMsg&>(*msg);
  if (!seen_.insert(gossip.event->id()).second) {
    ++stats_.dup_suppressed;
    return;
  }
  ++stats_.received;
  deliver_if_interested(*gossip.event);
  buffer(Entry{gossip.event, gossip.round});
}

void GenuineNode::on_period() {
  auto it = buffer_.begin();
  while (it != buffer_.end()) {
    // Interested view members only — the defining property of a genuine
    // multicast: uninterested processes are never contacted.
    std::vector<std::size_t> interested;
    for (std::size_t i = 0; i < view_.size(); ++i) {
      if (view_[i].pid != id() && view_[i].subscription.match(*it->event))
        interested.push_back(i);
    }

    // Round bound: scale the group-size hint by the locally observed
    // matching rate (the process has no global interest knowledge).
    const double local_rate =
        view_.empty() ? 0.0
                      : static_cast<double>(interested.size()) /
                            static_cast<double>(view_.size());
    const double n_est =
        static_cast<double>(config_.group_size_hint) * local_rate;
    const double bound = estimator_.faulty(
        n_est, static_cast<double>(config_.fanout), config_.env_estimate);

    if (static_cast<double>(it->round) >= bound || interested.empty()) {
      it = buffer_.erase(it);
      continue;
    }
    ++it->round;
    const std::size_t picks =
        std::min<std::size_t>(config_.fanout, interested.size());
    const auto chosen =
        rng().sample_without_replacement(interested.size(), picks);
    for (const auto ci : chosen) {
      auto m = std::make_shared<GenuineGossipMsg>();
      m->event = it->event;
      m->round = it->round;
      send(view_[interested[ci]].pid, std::move(m));
      ++stats_.gossips_sent;
    }
    ++it;
  }
  if (buffer_.empty()) disarm_periodic();
}

void GenuineNode::buffer(Entry entry) {
  buffer_.push_back(std::move(entry));
  if (!periodic_armed()) arm_periodic(config_.period);
}

void GenuineNode::deliver_if_interested(const Event& e) {
  if (!subscription_.match(e)) return;
  if (!delivered_.insert(e.id()).second) return;
  ++stats_.delivered;
  if (deliver_) deliver_(e);
}

}  // namespace pmc

// Gossip-based *broadcast* with filtering at delivery — the "flooding"
// alternative the paper's introduction argues against (pbcast/lpbcast
// style). Every process relays every event to F random members of the whole
// group for T(n, F) rounds; interest is only checked before handing the
// event to the application. Reliable for interested processes, but
// uninterested processes receive (almost) everything.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "analysis/rounds.hpp"
#include "event/event.hpp"
#include "filter/subscription.hpp"
#include "sim/runtime.hpp"

namespace pmc {

struct FloodGossipMsg final : MessageBase {
  FloodGossipMsg() noexcept : MessageBase(MsgKind::FloodGossip) {}

  std::shared_ptr<const Event> event;
  std::uint32_t round = 0;
};

struct FloodingConfig {
  std::size_t fanout = 2;
  SimTime period = sim_ms(100);
  double pittel_c = 0.0;
  EnvParams env_estimate;
};

class FloodingNode final : public Process {
 public:
  using DeliverHandler = std::function<void(const Event&)>;

  /// `peers`: the full group membership (every process knows everyone —
  /// the global-knowledge assumption gossip broadcast algorithms make).
  FloodingNode(Runtime& rt, ProcessId pid, FloodingConfig config,
               Subscription subscription,
               std::shared_ptr<const std::vector<ProcessId>> peers);

  void broadcast(Event event);
  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  bool interested_in(const Event& e) const { return subscription_.match(e); }
  bool has_received(const EventId& id) const { return seen_.count(id) != 0; }
  bool has_delivered(const EventId& id) const {
    return delivered_.count(id) != 0;
  }

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t delivered = 0;
    std::uint64_t gossips_sent = 0;
    /// Duplicates discarded by the seen-set (exactly-once audit trail
    /// under the network's duplication injector).
    std::uint64_t dup_suppressed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 protected:
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_period() override;

 private:
  struct Entry {
    std::shared_ptr<const Event> event;
    std::uint32_t round = 0;
  };

  void buffer(Entry entry);
  void deliver_if_interested(const Event& e);

  FloodingConfig config_;
  Subscription subscription_;
  std::shared_ptr<const std::vector<ProcessId>> peers_;
  RoundEstimator estimator_;
  DeliverHandler deliver_;
  std::vector<Entry> buffer_;
  std::vector<ProcessId> targets_;  ///< fan-out scratch for send_multi
  std::unordered_set<EventId, EventIdHash> seen_;
  std::unordered_set<EventId, EventIdHash> delivered_;
  Stats stats_;
};

}  // namespace pmc

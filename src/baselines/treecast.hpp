// Deterministic tree multicast — the Astrolabe-style comparison point of
// the paper's concluding remarks: "multicasting ... performed
// deterministically, with higher throughput than pmcast in 'stable' phases
// of the system, yet a reduced robustness in 'unstable' phases".
//
// Uses the same GroupTree and interest summaries as pmcast, but instead of
// probabilistic gossip each holder forwards the event exactly once to ONE
// delegate of every interested child subgroup, recursively down the tree
// (and to every interested neighbor at the leaves). Message cost is
// near-optimal (≈ interested processes + interior forwards) and delivery is
// certain in a fault-free run — but a single crashed or unreachable
// forwarder silently severs its whole subtree.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>

#include "event/event.hpp"
#include "filter/subscription.hpp"
#include "pmcast/view_provider.hpp"
#include "sim/runtime.hpp"

namespace pmc {

struct TreecastMsg final : MessageBase {
  TreecastMsg() noexcept : MessageBase(MsgKind::Treecast) {}

  std::shared_ptr<const Event> event;
  /// The receiver is responsible for its subtree from this depth on.
  std::uint32_t depth = 0;
};

struct TreecastConfig {
  TreeConfig tree;
};

class TreecastNode final : public Process {
 public:
  using DeliverHandler = std::function<void(const Event&)>;
  using Directory = std::function<ProcessId(AddrId)>;

  TreecastNode(Runtime& rt, ProcessId pid, TreecastConfig config,
               Address self, Subscription subscription,
               const ViewProvider& views, Directory directory);

  void multicast(Event event);
  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  const Address& address() const noexcept { return self_; }
  bool interested_in(const Event& e) const { return subscription_.match(e); }
  bool has_received(const EventId& id) const { return seen_.count(id) != 0; }
  bool has_delivered(const EventId& id) const {
    return delivered_.count(id) != 0;
  }

  struct Stats {
    std::uint64_t received = 0;
    std::uint64_t delivered = 0;
    std::uint64_t forwards = 0;
    /// Duplicates discarded by the seen-set (exactly-once audit trail
    /// under the network's duplication injector).
    std::uint64_t dup_suppressed = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 protected:
  void on_message(ProcessId from, const MessagePtr& msg) override;

 private:
  /// Forwards to one delegate per interested foreign row at every depth in
  /// [start_depth, d]; the own-subtree branch is handled by continuing the
  /// loop locally.
  void forward_from(const std::shared_ptr<const Event>& event,
                    std::size_t start_depth);
  void deliver_if_interested(const Event& e);

  TreecastConfig config_;
  Address self_;
  AddrId self_id_ = kNoAddr;
  Subscription subscription_;
  const ViewProvider* views_;
  Directory directory_;
  DeliverHandler deliver_;
  std::unordered_set<EventId, EventIdHash> seen_;
  std::unordered_set<EventId, EventIdHash> delivered_;
  Stats stats_;
};

}  // namespace pmc

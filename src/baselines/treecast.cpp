#include "baselines/treecast.hpp"

#include "common/contract.hpp"

namespace pmc {

TreecastNode::TreecastNode(Runtime& rt, ProcessId pid, TreecastConfig config,
                           Address self, Subscription subscription,
                           const ViewProvider& views, Directory directory)
    : Process(rt, pid),
      config_(config),
      self_(std::move(self)),
      subscription_(std::move(subscription)),
      views_(&views),
      directory_(std::move(directory)) {
  config_.tree.validate();
  PMC_EXPECTS(self_.depth() == config_.tree.depth);
  PMC_EXPECTS(directory_ != nullptr);
  self_id_ = views.interns().addrs.intern(self_);
}

void TreecastNode::multicast(Event event) {
  PMC_EXPECTS(alive());
  auto ev = std::make_shared<const Event>(std::move(event));
  seen_.insert(ev->id());
  deliver_if_interested(*ev);
  forward_from(ev, 1);
}

void TreecastNode::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  if (msg->kind != MsgKind::Treecast) return;
  const auto& m = static_cast<const TreecastMsg&>(*msg);
  PMC_EXPECTS(m.event != nullptr);
  if (!seen_.insert(m.event->id()).second) {
    ++stats_.dup_suppressed;
    return;
  }
  ++stats_.received;
  deliver_if_interested(*m.event);
  if (m.depth <= config_.tree.depth) forward_from(m.event, m.depth);
}

void TreecastNode::forward_from(const std::shared_ptr<const Event>& event,
                                std::size_t start_depth) {
  for (std::size_t depth = start_depth; depth <= config_.tree.depth;
       ++depth) {
    const DepthView& view = views_->view(self_, depth);
    const AddrComponent own_infix = self_.component(depth - 1);
    for (std::size_t i = 0; i < view.size(); ++i) {
      if (!view.alive(i) || view.delegates(i).empty()) continue;
      if (!view.interests(i).match(*event)) continue;
      if (depth < config_.tree.depth && view.infix(i) == own_infix)
        continue;  // our own branch: we keep descending ourselves
      if (view.first_delegate(i) == self_id_) continue;
      const ProcessId target = directory_(view.first_delegate(i));
      if (target == kNoProcess) continue;
      auto msg = std::make_shared<TreecastMsg>();
      msg->event = event;
      msg->depth = static_cast<std::uint32_t>(depth + 1);
      send(target, std::move(msg));
      ++stats_.forwards;
    }
  }
}

void TreecastNode::deliver_if_interested(const Event& e) {
  if (!subscription_.match(e)) return;
  if (!delivered_.insert(e.id()).second) return;
  ++stats_.delivered;
  if (deliver_) deliver_(e);
}

}  // namespace pmc

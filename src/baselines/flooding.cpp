#include "baselines/flooding.hpp"

#include "common/contract.hpp"

namespace pmc {

FloodingNode::FloodingNode(Runtime& rt, ProcessId pid, FloodingConfig config,
                           Subscription subscription,
                           std::shared_ptr<const std::vector<ProcessId>> peers)
    : Process(rt, pid),
      config_(config),
      subscription_(std::move(subscription)),
      peers_(std::move(peers)),
      estimator_(config.pittel_c) {
  PMC_EXPECTS(peers_ != nullptr);
  PMC_EXPECTS(config_.fanout >= 1);
  PMC_EXPECTS(config_.period > 0);
}

void FloodingNode::broadcast(Event event) {
  PMC_EXPECTS(alive());
  auto ev = std::make_shared<const Event>(std::move(event));
  seen_.insert(ev->id());
  deliver_if_interested(*ev);
  buffer(Entry{std::move(ev), 0});
}

void FloodingNode::on_message(ProcessId /*from*/, const MessagePtr& msg) {
  if (msg->kind != MsgKind::FloodGossip) return;
  const auto& gossip = static_cast<const FloodGossipMsg&>(*msg);
  if (!seen_.insert(gossip.event->id()).second) {
    ++stats_.dup_suppressed;
    return;
  }
  ++stats_.received;
  deliver_if_interested(*gossip.event);
  buffer(Entry{gossip.event, gossip.round});
}

void FloodingNode::on_period() {
  const double bound = estimator_.faulty(
      static_cast<double>(peers_->size()),
      static_cast<double>(config_.fanout), config_.env_estimate);
  auto it = buffer_.begin();
  while (it != buffer_.end()) {
    if (static_cast<double>(it->round) >= bound) {
      it = buffer_.erase(it);
      continue;
    }
    ++it->round;
    const std::size_t picks =
        std::min<std::size_t>(config_.fanout, peers_->size());
    const auto chosen =
        rng().sample_without_replacement(peers_->size(), picks);
    targets_.clear();
    for (const auto ci : chosen) {
      const ProcessId target = (*peers_)[ci];
      if (target == id()) continue;
      targets_.push_back(target);
    }
    if (!targets_.empty()) {
      // The F copies are identical: one shared payload, one fan-out.
      auto m = std::make_shared<FloodGossipMsg>();
      m->event = it->event;
      m->round = it->round;
      send_multi(targets_, m);
      stats_.gossips_sent += targets_.size();
    }
    ++it;
  }
  if (buffer_.empty()) disarm_periodic();
}

void FloodingNode::buffer(Entry entry) {
  buffer_.push_back(std::move(entry));
  if (!periodic_armed()) arm_periodic(config_.period);
}

void FloodingNode::deliver_if_interested(const Event& e) {
  if (!subscription_.match(e)) return;
  if (!delivered_.insert(e.id()).second) return;
  ++stats_.delivered;
  if (deliver_) deliver_(e);
}

}  // namespace pmc

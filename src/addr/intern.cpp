#include "addr/intern.hpp"

#include <algorithm>

namespace pmc {

void AddrInternTable::reserve(std::size_t addresses, std::size_t depth) {
  recs_.reserve(addresses);
  comps_.reserve(addresses * depth);
  keys_.reserve(addresses * depth);
  addresses_.reserve(addresses);
  // Every non-leaf trie level is at most as populated as the leaf level, so
  // 2n buckets cover the whole trie for a balanced tree.
  trie_.reserve(addresses * 2);
  id_of_key_.reserve(addresses * 2);
}

AddrId AddrInternTable::intern(const Address& a) {
  const auto& comps = a.components();
  PMC_EXPECTS(!comps.empty());

  // Walk/extend the prefix trie, collecting the key of every prefix.
  const std::size_t key_begin = keys_.size();
  PrefixKey parent = 0;
  bool created = false;
  for (const AddrComponent c : comps) {
    const auto [it, inserted] = trie_.try_emplace(edge(parent, c), next_key_);
    if (inserted) {
      ++next_key_;
      id_of_key_.push_back(kNoAddr);
      created = true;
    }
    parent = it->second;
    keys_.push_back(parent);
  }

  if (!created && id_of_key_[parent - 1] != kNoAddr) {
    keys_.resize(key_begin);  // already interned; discard the scratch keys
    return id_of_key_[parent - 1];
  }

  const AddrId id = static_cast<AddrId>(recs_.size());
  id_of_key_[parent - 1] = id;
  recs_.push_back({static_cast<std::uint32_t>(comps_.size()),
                   static_cast<std::uint32_t>(key_begin),
                   static_cast<std::uint32_t>(comps.size())});
  comps_.insert(comps_.end(), comps.begin(), comps.end());
  addresses_.push_back(a);
  return id;
}

AddrId AddrInternTable::find(const Address& a) const {
  PrefixKey parent = 0;
  for (const AddrComponent c : a.components()) {
    const auto it = trie_.find(edge(parent, c));
    if (it == trie_.end()) return kNoAddr;
    parent = it->second;
  }
  return parent == 0 ? kNoAddr : id_of_key_[parent - 1];
}

std::size_t AddrInternTable::common_prefix_length(AddrId a, AddrId b) const {
  PMC_EXPECTS(a < recs_.size() && b < recs_.size());
  const Rec& ra = recs_[a];
  const Rec& rb = recs_[b];
  const std::size_t n = std::min<std::size_t>(ra.depth, rb.depth);
  std::size_t i = 0;
  while (i < n && keys_[ra.key_begin + i] == keys_[rb.key_begin + i]) ++i;
  return i;
}

std::size_t AddrInternTable::distance(AddrId a, AddrId b) const {
  PMC_EXPECTS(depth(a) == depth(b));
  return depth(a) - common_prefix_length(a, b);
}

bool AddrInternTable::less(AddrId a, AddrId b) const {
  const auto ca = components(a);
  const auto cb = components(b);
  return std::lexicographical_compare(ca.begin(), ca.end(), cb.begin(),
                                      cb.end());
}

}  // namespace pmc

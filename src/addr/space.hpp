// Address-space descriptors and address generators.
//
// The analysis model of the paper (Sec. 4.1) uses a "regular" tree: every
// prefix has exactly `a` populated children, so n = a^d. AddressSpace also
// supports per-level arities (Eq. 1's a_i) and sparse population for
// irregular trees.
#pragma once

#include <cstdint>
#include <vector>

#include "addr/address.hpp"
#include "common/rng.hpp"

namespace pmc {

class AddressSpace {
 public:
  /// Per-level arities a_1..a_d.
  explicit AddressSpace(std::vector<AddrComponent> arities);

  /// Regular space: d levels of arity a (analysis model, n = a^d).
  static AddressSpace regular(AddrComponent a, std::size_t d);

  std::size_t depth() const noexcept { return arities_.size(); }
  AddrComponent arity(std::size_t level) const {
    PMC_EXPECTS(level < arities_.size());
    return arities_[level];
  }

  /// Total number of representable addresses (prod a_i), saturating.
  std::uint64_t capacity() const noexcept;

  bool valid(const Address& a) const noexcept;

  /// All addresses of the space in lexicographic order. Use only for spaces
  /// whose capacity fits in memory (the simulation configs do).
  std::vector<Address> enumerate() const;

  /// `count` distinct addresses drawn uniformly without replacement.
  /// Precondition: count <= capacity().
  std::vector<Address> sample(std::size_t count, Rng& rng) const;

  /// The address at lexicographic rank `index` (mixed-radix decoding).
  Address at(std::uint64_t index) const;

 private:
  std::vector<AddrComponent> arities_;
};

}  // namespace pmc

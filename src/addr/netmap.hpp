// Mapping real network identifiers onto pmcast addresses (paper Sec. 2.2).
//
// The paper's address form x(1)....x(d) "can represent different kinds of
// addresses, like IP or DNS addresses (in the latter case, the order would
// have to be inverted)". These helpers perform those mappings:
//   * IPv4 dotted-quad -> depth-4 address with a_i = 256 (optionally a
//     fifth component for a port bucket, the paper's 2^12-ports example);
//   * DNS names -> logical addresses by hashing the *reversed* label
//     sequence ("lpdmail.epfl.ch" -> ch.epfl.lpdmail), so processes in the
//     same domain share prefixes and thus subgroups.
#pragma once

#include <cstdint>
#include <string>

#include "addr/address.hpp"
#include "addr/space.hpp"

namespace pmc {

/// The IPv4 address space: d = 4, a_i = 256.
AddressSpace ipv4_space();

/// Parses "128.178.73.3" into a depth-4 address with components < 256.
/// Throws std::invalid_argument for malformed or out-of-range quads.
Address from_ipv4(const std::string& dotted_quad);

/// IPv4 plus a port bucket: depth-5 address whose last component is
/// port >> 4 (2^12 buckets — the paper's example granularity).
Address from_ipv4_port(const std::string& dotted_quad, std::uint16_t port);

/// Renders a depth-4 address back to dotted-quad notation.
/// Precondition: depth 4, all components < 256.
std::string to_ipv4(const Address& address);

/// Maps a DNS name onto a logical address of the given space by hashing
/// each label of the *reversed* name into the corresponding level
/// (deterministically): machines under the same domain suffix share
/// prefixes. Names with fewer labels than the space depth are padded by
/// re-hashing; extra labels fold into the deepest component.
Address from_dns(const std::string& name, const AddressSpace& space);

}  // namespace pmc

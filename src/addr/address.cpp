#include "addr/address.hpp"

#include <charconv>
#include <sstream>
#include <stdexcept>

#include "common/hash.hpp"

namespace pmc {

namespace {

std::size_t hash_components(std::span<const AddrComponent> comps) noexcept {
  std::uint64_t h = kFnv1aBasis;
  for (const auto c : comps) h = fnv1a_u64(h, c);
  return static_cast<std::size_t>(h);
}

std::string join_components(std::span<const AddrComponent> comps) {
  std::ostringstream os;
  for (std::size_t i = 0; i < comps.size(); ++i) {
    if (i) os << '.';
    os << comps[i];
  }
  return os.str();
}

}  // namespace

Address Address::parse(const std::string& text) {
  std::vector<AddrComponent> comps;
  const char* p = text.data();
  const char* end = text.data() + text.size();
  while (p < end) {
    unsigned v = 0;
    const auto res = std::from_chars(p, end, v);
    if (res.ec != std::errc{} || v > 0xffff)
      throw std::invalid_argument("bad address component in '" + text + "'");
    comps.push_back(static_cast<AddrComponent>(v));
    p = res.ptr;
    if (p < end) {
      if (*p != '.')
        throw std::invalid_argument("expected '.' in address '" + text + "'");
      ++p;
      if (p == end)
        throw std::invalid_argument("trailing '.' in address '" + text + "'");
    }
  }
  if (comps.empty()) throw std::invalid_argument("empty address");
  return Address(std::move(comps));
}

Prefix Address::prefix(std::size_t len) const {
  PMC_EXPECTS(len <= comps_.size());
  return Prefix(std::vector<AddrComponent>(comps_.begin(),
                                           comps_.begin() + static_cast<std::ptrdiff_t>(len)));
}

std::size_t Address::common_prefix_length(const Address& o) const noexcept {
  const std::size_t n = std::min(comps_.size(), o.comps_.size());
  std::size_t i = 0;
  while (i < n && comps_[i] == o.comps_[i]) ++i;
  return i;
}

std::size_t Address::distance(const Address& o) const {
  PMC_EXPECTS(depth() == o.depth());
  return depth() - common_prefix_length(o);
}

bool Address::has_prefix(const Prefix& p) const noexcept {
  return p.contains(*this);
}

std::string Address::to_string() const { return join_components(comps_); }

Prefix Prefix::child(AddrComponent next) const {
  std::vector<AddrComponent> comps = comps_;
  comps.push_back(next);
  return Prefix(std::move(comps));
}

Prefix Prefix::parent() const {
  PMC_EXPECTS(!comps_.empty());
  return Prefix(std::vector<AddrComponent>(comps_.begin(), comps_.end() - 1));
}

bool Prefix::contains(const Address& a) const noexcept {
  if (comps_.size() > a.depth()) return false;
  for (std::size_t i = 0; i < comps_.size(); ++i)
    if (comps_[i] != a.component(i)) return false;
  return true;
}

bool Prefix::contains(const Prefix& p) const noexcept {
  if (comps_.size() > p.length()) return false;
  for (std::size_t i = 0; i < comps_.size(); ++i)
    if (comps_[i] != p.component(i)) return false;
  return true;
}

std::string Prefix::to_string() const {
  return comps_.empty() ? "<root>" : join_components(comps_);
}

std::size_t AddressHash::operator()(const Address& a) const noexcept {
  return hash_components(a.components());
}

std::size_t PrefixHash::operator()(const Prefix& p) const noexcept {
  return hash_components(p.components());
}

}  // namespace pmc

// Hierarchical process addresses (paper Sec. 2.2, Eq. 1).
//
// An address is a sequence x(1). ... .x(d) with 0 <= x(i) < a_i. Addresses
// can mirror network addresses (IP, inverted DNS) or be purely logical. The
// longest common prefix of two addresses determines their "distance"
// d - i + 1 and thereby the depth of the smallest subgroup containing both.
#pragma once

#include <compare>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/contract.hpp"

namespace pmc {

using AddrComponent = std::uint16_t;

class Prefix;

class Address {
 public:
  Address() = default;
  explicit Address(std::vector<AddrComponent> components)
      : comps_(std::move(components)) {}

  /// Parses "128.178.73.3"-style dotted notation.
  static Address parse(const std::string& text);

  std::size_t depth() const noexcept { return comps_.size(); }
  AddrComponent component(std::size_t i) const {
    PMC_EXPECTS(i < comps_.size());
    return comps_[i];
  }
  const std::vector<AddrComponent>& components() const noexcept {
    return comps_;
  }

  /// Prefix of the first `len` components (len in [0, depth()]).
  Prefix prefix(std::size_t len) const;

  /// Length of the longest common prefix with another address.
  std::size_t common_prefix_length(const Address& o) const noexcept;

  /// Paper distance: d - i + 1 where i-1 is the longest shared prefix length
  /// (two identical addresses have distance 0). Precondition: same depth.
  std::size_t distance(const Address& o) const;

  bool has_prefix(const Prefix& p) const noexcept;

  std::string to_string() const;

  friend bool operator==(const Address&, const Address&) = default;
  friend std::strong_ordering operator<=>(const Address& a, const Address& b) {
    return std::lexicographical_compare_three_way(
        a.comps_.begin(), a.comps_.end(), b.comps_.begin(), b.comps_.end());
  }

 private:
  std::vector<AddrComponent> comps_;
};

/// A partial address x(1). ... .x(i-1) denoting a subgroup (Sec. 2.2).
/// The empty prefix denotes the whole group.
class Prefix {
 public:
  Prefix() = default;
  explicit Prefix(std::vector<AddrComponent> components)
      : comps_(std::move(components)) {}

  static Prefix root() { return Prefix{}; }

  std::size_t length() const noexcept { return comps_.size(); }
  bool is_root() const noexcept { return comps_.empty(); }
  AddrComponent component(std::size_t i) const {
    PMC_EXPECTS(i < comps_.size());
    return comps_[i];
  }
  const std::vector<AddrComponent>& components() const noexcept {
    return comps_;
  }

  /// Child prefix with one more component appended.
  Prefix child(AddrComponent next) const;
  /// Parent prefix; precondition: !is_root().
  Prefix parent() const;
  /// The last component; precondition: !is_root().
  AddrComponent infix() const {
    PMC_EXPECTS(!comps_.empty());
    return comps_.back();
  }

  bool contains(const Address& a) const noexcept;
  bool contains(const Prefix& p) const noexcept;

  std::string to_string() const;

  friend bool operator==(const Prefix&, const Prefix&) = default;
  friend std::strong_ordering operator<=>(const Prefix& a, const Prefix& b) {
    return std::lexicographical_compare_three_way(
        a.comps_.begin(), a.comps_.end(), b.comps_.begin(), b.comps_.end());
  }

 private:
  std::vector<AddrComponent> comps_;
};

struct AddressHash {
  std::size_t operator()(const Address& a) const noexcept;
};
struct PrefixHash {
  std::size_t operator()(const Prefix& p) const noexcept;
};

}  // namespace pmc

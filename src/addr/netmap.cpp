#include "addr/netmap.hpp"

#include <algorithm>
#include <stdexcept>
#include <vector>

#include "common/contract.hpp"
#include "common/hash.hpp"
#include "common/rng.hpp"

namespace pmc {

AddressSpace ipv4_space() {
  return AddressSpace(std::vector<AddrComponent>(4, 256));
}

Address from_ipv4(const std::string& dotted_quad) {
  const Address a = Address::parse(dotted_quad);
  if (a.depth() != 4)
    throw std::invalid_argument("IPv4 address needs 4 components: " +
                                dotted_quad);
  for (std::size_t i = 0; i < 4; ++i) {
    if (a.component(i) > 255)
      throw std::invalid_argument("IPv4 component > 255 in " + dotted_quad);
  }
  return a;
}

Address from_ipv4_port(const std::string& dotted_quad, std::uint16_t port) {
  const Address base = from_ipv4(dotted_quad);
  std::vector<AddrComponent> comps = base.components();
  comps.push_back(static_cast<AddrComponent>(port >> 4));  // 2^12 buckets
  return Address(std::move(comps));
}

std::string to_ipv4(const Address& address) {
  PMC_EXPECTS(address.depth() == 4);
  for (std::size_t i = 0; i < 4; ++i) PMC_EXPECTS(address.component(i) < 256);
  return address.to_string();
}

namespace {

std::vector<std::string> split_labels(const std::string& name) {
  std::vector<std::string> labels;
  std::string current;
  for (const char c : name) {
    if (c == '.') {
      if (!current.empty()) labels.push_back(std::move(current));
      current.clear();
    } else {
      current.push_back(c);
    }
  }
  if (!current.empty()) labels.push_back(std::move(current));
  return labels;
}

std::uint64_t hash_label(const std::string& label, std::uint64_t salt) {
  std::uint64_t h = kFnv1aBasis ^ salt;
  for (const char c : label)
    h = fnv1a_byte(h, static_cast<unsigned char>(c));
  // Finalize through splitmix so low bits are well mixed for the modulo.
  // detlint:allow(rng-discipline) splitmix as hash finalizer over label bytes; no stream semantics
  return SplitMix64(h).next();
}

}  // namespace

Address from_dns(const std::string& name, const AddressSpace& space) {
  auto labels = split_labels(name);
  if (labels.empty()) throw std::invalid_argument("empty DNS name");
  std::reverse(labels.begin(), labels.end());  // TLD first -> shared prefixes

  const std::size_t depth = space.depth();
  std::vector<AddrComponent> comps(depth);
  for (std::size_t level = 0; level < depth; ++level) {
    std::uint64_t h;
    if (level < labels.size()) {
      h = hash_label(labels[level], level);
      // The deepest level folds in any remaining labels so two hosts with a
      // long common prefix but different tails still differ.
      if (level == depth - 1) {
        for (std::size_t extra = depth; extra < labels.size(); ++extra)
          h ^= hash_label(labels[extra], extra);
      }
    } else {
      // Shorter name than the tree is deep: pad by re-hashing the whole
      // name per level (deterministic, collision-resistant enough).
      h = hash_label(name, 0xabcd0000ULL + level);
    }
    comps[level] = static_cast<AddrComponent>(h % space.arity(level));
  }
  return Address(std::move(comps));
}

}  // namespace pmc

#include "addr/space.hpp"

#include <algorithm>
#include <limits>
#include <unordered_set>

namespace pmc {

AddressSpace::AddressSpace(std::vector<AddrComponent> arities)
    : arities_(std::move(arities)) {
  PMC_EXPECTS(!arities_.empty());
  for (const auto a : arities_) PMC_EXPECTS(a > 0);
}

AddressSpace AddressSpace::regular(AddrComponent a, std::size_t d) {
  PMC_EXPECTS(d > 0);
  return AddressSpace(std::vector<AddrComponent>(d, a));
}

std::uint64_t AddressSpace::capacity() const noexcept {
  std::uint64_t cap = 1;
  for (const auto a : arities_) {
    if (cap > std::numeric_limits<std::uint64_t>::max() / a)
      return std::numeric_limits<std::uint64_t>::max();
    cap *= a;
  }
  return cap;
}

bool AddressSpace::valid(const Address& a) const noexcept {
  if (a.depth() != arities_.size()) return false;
  for (std::size_t i = 0; i < arities_.size(); ++i)
    if (a.component(i) >= arities_[i]) return false;
  return true;
}

Address AddressSpace::at(std::uint64_t index) const {
  PMC_EXPECTS(index < capacity());
  std::vector<AddrComponent> comps(arities_.size());
  for (std::size_t i = arities_.size(); i-- > 0;) {
    comps[i] = static_cast<AddrComponent>(index % arities_[i]);
    index /= arities_[i];
  }
  return Address(std::move(comps));
}

std::vector<Address> AddressSpace::enumerate() const {
  const std::uint64_t cap = capacity();
  std::vector<Address> out;
  out.reserve(static_cast<std::size_t>(cap));
  for (std::uint64_t i = 0; i < cap; ++i) out.push_back(at(i));
  return out;
}

std::vector<Address> AddressSpace::sample(std::size_t count, Rng& rng) const {
  const std::uint64_t cap = capacity();
  PMC_EXPECTS(count <= cap);
  // Floyd's algorithm: O(count) memory even for huge address spaces.
  std::unordered_set<std::uint64_t> ranks;
  ranks.reserve(count);
  for (std::uint64_t j = cap - count; j < cap; ++j) {
    const std::uint64_t t = rng.next_below(j + 1);
    ranks.insert(ranks.count(t) ? j : t);
  }
  // Sorted materialization: drain the membership set through a sorted rank
  // vector so the result never reflects hash-bucket order (the output was
  // always address-sorted; rank order and address order coincide because
  // at() is a mixed-radix decode, so the final sort is now a no-op kept
  // for robustness).
  std::vector<std::uint64_t> sorted_ranks(ranks.begin(), ranks.end());
  std::sort(sorted_ranks.begin(), sorted_ranks.end());
  std::vector<Address> out;
  out.reserve(count);
  for (const auto r : sorted_ranks) out.push_back(at(r));
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace pmc

// Address interning: each distinct Address is registered once and hot code
// passes a dense 32-bit AddrId instead of copying component vectors.
//
// The motivation is memory layout, not hashing: a simulated group holds the
// same few thousand addresses in hundreds of thousands of view rows, peer
// lists and contact tables. Interned, each of those occurrences is 4 bytes
// in a flat array instead of a 24-byte std::vector header plus a heap
// allocation — and equality, ordering and Eq. 1 prefix math become integer
// arithmetic over two flat arenas:
//
//   * components are stored back-to-back in one arena (`comps_`), so an
//     address's components are a contiguous span recoverable for wire
//     encoding (the wire format keeps raw components; interning is purely a
//     process-local representation);
//   * every prefix ever seen gets a dense PrefixKey from an interned trie,
//     and the keys of all prefixes of an address are precomputed per id
//     (`keys_` arena). Two addresses share a length-l prefix iff their
//     l-th prefix keys are equal, so common_prefix_length is a linear scan
//     of integer compares with no component access at all.
//
// The table is append-only and runtime-scoped: one table per simulation
// (ChurnSim / ShardedSim / experiment Population own one), shared by every
// view, node and directory hosted on that runtime so ids are globally
// comparable there. Ids are assigned in first-intern order — NOT address
// order — so protocol code that needs the paper's deterministic "smallest
// address" criterion must rank via less()/compare(), never by raw id.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "addr/address.hpp"

namespace pmc {

/// Dense handle of an interned Address. 32 bits bound the table at ~4G
/// distinct addresses — far above the simulator's process ceilings.
using AddrId = std::uint32_t;
inline constexpr AddrId kNoAddr = 0xffffffffU;

/// Dense handle of an interned prefix (PrefixKey 0 is the root prefix).
using PrefixKey = std::uint32_t;

class AddrInternTable {
 public:
  AddrInternTable() = default;

  AddrInternTable(const AddrInternTable&) = delete;
  AddrInternTable& operator=(const AddrInternTable&) = delete;

  /// Pre-sizes the arenas for `addresses` distinct addresses of depth
  /// `depth` (like Network::reserve: one up-front allocation instead of
  /// re-hashing mid-run).
  void reserve(std::size_t addresses, std::size_t depth);

  /// Registers `a` (and all its prefixes) and returns its id; idempotent.
  AddrId intern(const Address& a);

  /// The id of an already-interned address; kNoAddr when never interned.
  AddrId find(const Address& a) const;

  /// Number of distinct addresses interned so far (ids are [0, size())).
  std::size_t size() const noexcept { return recs_.size(); }

  /// The full Address for wire encoding and display. The reference is
  /// stable for the table's lifetime.
  const Address& resolve(AddrId id) const {
    PMC_EXPECTS(id < addresses_.size());
    return addresses_[id];
  }

  std::size_t depth(AddrId id) const {
    PMC_EXPECTS(id < recs_.size());
    return recs_[id].depth;
  }

  AddrComponent component(AddrId id, std::size_t i) const {
    PMC_EXPECTS(id < recs_.size() && i < recs_[id].depth);
    return comps_[recs_[id].comp_begin + i];
  }

  /// The address's components as a contiguous span into the arena.
  std::span<const AddrComponent> components(AddrId id) const {
    PMC_EXPECTS(id < recs_.size());
    return {comps_.data() + recs_[id].comp_begin, recs_[id].depth};
  }

  /// Key of the length-`len` prefix of `id` (len in [0, depth]). Equal keys
  /// <=> equal prefixes, across every address in this table.
  PrefixKey prefix_key(AddrId id, std::size_t len) const {
    PMC_EXPECTS(id < recs_.size() && len <= recs_[id].depth);
    return len == 0 ? PrefixKey{0} : keys_[recs_[id].key_begin + len - 1];
  }

  /// Length of the longest common prefix — integer compares over the
  /// precomputed prefix keys, no component walk (Address::
  /// common_prefix_length's contract, tested equivalent in
  /// tests/intern_test.cpp).
  std::size_t common_prefix_length(AddrId a, AddrId b) const;

  /// Paper Eq. 1 distance d - i; precondition: same depth (like
  /// Address::distance).
  std::size_t distance(AddrId a, AddrId b) const;

  /// Lexicographic component order — the paper's "smallest address"
  /// delegate-election criterion. NOT id order (ids are first-intern
  /// order).
  bool less(AddrId a, AddrId b) const;

 private:
  struct Rec {
    std::uint32_t comp_begin = 0;  ///< offset into comps_
    std::uint32_t key_begin = 0;   ///< offset into keys_ (len-1 indexed)
    std::uint32_t depth = 0;
  };

  /// Trie edge (parent prefix key, component) -> child prefix key.
  static std::uint64_t edge(PrefixKey parent, AddrComponent c) noexcept {
    return (static_cast<std::uint64_t>(parent) << 16) | c;
  }

  std::vector<Rec> recs_;               // indexed by AddrId
  std::vector<AddrComponent> comps_;    // flat component arena
  std::vector<PrefixKey> keys_;         // flat prefix-key arena
  std::vector<Address> addresses_;      // resolve() storage
  std::unordered_map<std::uint64_t, PrefixKey> trie_;
  /// Full-address prefix key -> AddrId (an address IS its deepest prefix,
  /// so the trie doubles as the intern index; indexed by PrefixKey).
  std::vector<AddrId> id_of_key_;
  PrefixKey next_key_ = 1;  // 0 is the root
};

}  // namespace pmc

// Events carry a small set of named, typed attributes. Attribute lookup is
// by name over a flat sorted vector: events in this domain have a handful of
// attributes (Fig. 2 uses four), where a flat array beats a map in both
// space and lookup time.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "event/value.hpp"

namespace pmc {

/// Monotonically assigned per-publisher event identifier; combined with the
/// publisher id it uniquely names an event group-wide.
struct EventId {
  std::uint64_t publisher = 0;
  std::uint64_t sequence = 0;

  friend bool operator==(const EventId&, const EventId&) = default;
  friend auto operator<=>(const EventId&, const EventId&) = default;
};

class Event {
 public:
  Event() = default;
  explicit Event(EventId id) : id_(id) {}

  const EventId& id() const noexcept { return id_; }
  void set_id(EventId id) noexcept { id_ = id; }

  /// Sets (or replaces) an attribute. Returns *this for fluent building:
  ///   Event e; e.with("b", 2).with("c", 41.5).with("e", "Bob");
  Event& with(std::string name, Value value);

  /// nullopt when the attribute is absent.
  std::optional<Value> get(std::string_view name) const;
  bool has(std::string_view name) const { return get(name).has_value(); }

  std::size_t size() const noexcept { return attrs_.size(); }
  bool empty() const noexcept { return attrs_.empty(); }

  struct Attribute {
    std::string name;
    Value value;
  };
  const std::vector<Attribute>& attributes() const noexcept { return attrs_; }

  std::string to_string() const;

 private:
  EventId id_;
  std::vector<Attribute> attrs_;  // sorted by name
};

struct EventIdHash {
  std::size_t operator()(const EventId& id) const noexcept {
    // splitmix-style mix of the two words.
    std::uint64_t z = id.publisher * 0x9e3779b97f4a7c15ULL + id.sequence;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};

}  // namespace pmc

#include "event/value.hpp"

#include <charconv>
#include <string>

#include "common/contract.hpp"

namespace pmc {

ValueKind Value::kind() const noexcept {
  switch (rep_.index()) {
    case 0: return ValueKind::Int;
    case 1: return ValueKind::Float;
    default: return ValueKind::String;
  }
}

double Value::as_double() const {
  PMC_EXPECTS(is_numeric());
  if (kind() == ValueKind::Int)
    return static_cast<double>(std::get<std::int64_t>(rep_));
  return std::get<double>(rep_);
}

std::int64_t Value::as_int() const {
  PMC_EXPECTS(kind() == ValueKind::Int);
  return std::get<std::int64_t>(rep_);
}

const std::string& Value::as_string() const {
  PMC_EXPECTS(kind() == ValueKind::String);
  return std::get<std::string>(rep_);
}

bool operator==(const Value& a, const Value& b) {
  const bool a_str = a.kind() == ValueKind::String;
  const bool b_str = b.kind() == ValueKind::String;
  if (a_str != b_str) return false;
  if (a_str) return a.as_string() == b.as_string();
  return a.as_double() == b.as_double();
}

std::string Value::to_string() const {
  switch (kind()) {
    case ValueKind::Int: return std::to_string(as_int());
    case ValueKind::Float: {
      // Shortest form that round-trips to the same double; the default
      // ostream precision (6) would turn 0.30000000000000004 into "0.3" and
      // parse back to a different predicate.
      char buf[32];
      const auto res = std::to_chars(buf, buf + sizeof buf, as_double());
      return std::string(buf, res.ptr);
    }
    case ValueKind::String: {
      // Quote and backslash are escaped so the parser's lexer (which maps
      // `\c` back to `c` inside string literals) round-trips the value.
      std::string out;
      out.reserve(as_string().size() + 2);
      out.push_back('"');
      for (const char c : as_string()) {
        if (c == '"' || c == '\\') out.push_back('\\');
        out.push_back(c);
      }
      out.push_back('"');
      return out;
    }
  }
  return {};  // unreachable
}

}  // namespace pmc

#include "event/value.hpp"

#include <sstream>

#include "common/contract.hpp"

namespace pmc {

ValueKind Value::kind() const noexcept {
  switch (rep_.index()) {
    case 0: return ValueKind::Int;
    case 1: return ValueKind::Float;
    default: return ValueKind::String;
  }
}

double Value::as_double() const {
  PMC_EXPECTS(is_numeric());
  if (kind() == ValueKind::Int)
    return static_cast<double>(std::get<std::int64_t>(rep_));
  return std::get<double>(rep_);
}

std::int64_t Value::as_int() const {
  PMC_EXPECTS(kind() == ValueKind::Int);
  return std::get<std::int64_t>(rep_);
}

const std::string& Value::as_string() const {
  PMC_EXPECTS(kind() == ValueKind::String);
  return std::get<std::string>(rep_);
}

bool operator==(const Value& a, const Value& b) {
  const bool a_str = a.kind() == ValueKind::String;
  const bool b_str = b.kind() == ValueKind::String;
  if (a_str != b_str) return false;
  if (a_str) return a.as_string() == b.as_string();
  return a.as_double() == b.as_double();
}

std::string Value::to_string() const {
  std::ostringstream os;
  switch (kind()) {
    case ValueKind::Int: os << as_int(); break;
    case ValueKind::Float: os << as_double(); break;
    case ValueKind::String: os << '"' << as_string() << '"'; break;
  }
  return os.str();
}

}  // namespace pmc

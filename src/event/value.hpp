// Typed attribute values for content-based publish/subscribe events.
//
// The paper's example subscriptions (Fig. 2) range over integer (b, z),
// floating-point (c) and string (e) attributes; Value models exactly those
// three kinds. Numeric comparisons are performed in double precision so that
// an integer event attribute can satisfy a floating-point range constraint
// and vice versa, matching the paper's free mixing of b (int) and c (float).
#pragma once

#include <cstdint>
#include <string>
#include <variant>

namespace pmc {

enum class ValueKind { Int, Float, String };

class Value {
 public:
  Value() : rep_(std::int64_t{0}) {}
  Value(std::int64_t v) : rep_(v) {}          // NOLINT(google-explicit-constructor)
  Value(int v) : rep_(std::int64_t{v}) {}     // NOLINT(google-explicit-constructor)
  Value(double v) : rep_(v) {}                // NOLINT(google-explicit-constructor)
  Value(std::string v) : rep_(std::move(v)) {}  // NOLINT(google-explicit-constructor)
  Value(const char* v) : rep_(std::string(v)) {}  // NOLINT(google-explicit-constructor)

  ValueKind kind() const noexcept;
  bool is_numeric() const noexcept { return kind() != ValueKind::String; }

  /// Numeric view; precondition: is_numeric().
  double as_double() const;
  /// Integer view; precondition: kind() == ValueKind::Int.
  std::int64_t as_int() const;
  /// String view; precondition: kind() == ValueKind::String.
  const std::string& as_string() const;

  /// Equality is kind-aware for strings, numeric-valued for int/float
  /// (so Value(2) == Value(2.0)).
  friend bool operator==(const Value& a, const Value& b);
  friend bool operator!=(const Value& a, const Value& b) { return !(a == b); }

  std::string to_string() const;

 private:
  std::variant<std::int64_t, double, std::string> rep_;
};

}  // namespace pmc

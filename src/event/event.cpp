#include "event/event.hpp"

#include <algorithm>
#include <sstream>

namespace pmc {

Event& Event::with(std::string name, Value value) {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const Attribute& a, const std::string& n) { return a.name < n; });
  if (it != attrs_.end() && it->name == name) {
    it->value = std::move(value);
  } else {
    attrs_.insert(it, Attribute{std::move(name), std::move(value)});
  }
  return *this;
}

std::optional<Value> Event::get(std::string_view name) const {
  auto it = std::lower_bound(
      attrs_.begin(), attrs_.end(), name,
      [](const Attribute& a, std::string_view n) { return a.name < n; });
  if (it != attrs_.end() && it->name == name) return it->value;
  return std::nullopt;
}

std::string Event::to_string() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& a : attrs_) {
    if (!first) os << ", ";
    first = false;
    os << a.name << "=" << a.value.to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace pmc

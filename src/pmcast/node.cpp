#include "pmcast/node.hpp"

#include <algorithm>

#include "common/contract.hpp"

namespace pmc {

PmcastNode::PmcastNode(Runtime& rt, ProcessId pid, PmcastConfig config,
                       Address self, Subscription subscription,
                       const ViewProvider& views, Directory directory)
    : Process(rt, pid),
      config_(config),
      self_(std::move(self)),
      subscription_(std::move(subscription)),
      views_(&views),
      directory_(std::move(directory)),
      estimator_(config.pittel_c) {
  config_.validate();
  PMC_EXPECTS(self_.depth() == config_.tree.depth);
  PMC_EXPECTS(directory_ != nullptr);
  self_id_ = views.interns().addrs.intern(self_);
  gossips_.resize(config_.tree.depth);
}

void PmcastNode::pmcast(Event event) {
  PMC_EXPECTS(alive());
  auto ev = std::make_shared<const Event>(std::move(event));
  ++stats_.published;
  seen_.insert(ev->id());
  deliver_if_interested(*ev);

  // Sec. 3.2: start at the root, but skip depths where the interest is
  // confined to our own subtree — the event is of "local" interest there.
  std::size_t depth = 1;
  if (config_.local_interest_shortcut) {
    while (depth < config_.tree.depth) {
      const DepthView& view = views_->view(self_, depth);
      const AddrComponent own_infix = self_.component(depth - 1);
      bool foreign_interest = false;
      for (std::size_t i = 0; i < view.size(); ++i) {
        if (!view.alive(i) || view.infix(i) == own_infix) continue;
        if (view.interests(i).match(*ev)) {
          foreign_interest = true;
          break;
        }
      }
      if (foreign_interest) break;
      ++depth;
    }
  }

  const double rate = rate_at(depth, *ev);
  buffer_event(depth, Entry{std::move(ev), rate, 0});
}

void PmcastNode::on_message(ProcessId from, const MessagePtr& msg) {
  switch (msg->kind) {
    case MsgKind::EventDigest:
      handle_digest(from, static_cast<const EventDigestMsg&>(*msg));
      return;
    case MsgKind::EventRequest:
      handle_request(from, static_cast<const EventRequestMsg&>(*msg));
      return;
    case MsgKind::EventPayload:
      handle_payload(static_cast<const EventPayloadMsg&>(*msg));
      return;
    case MsgKind::Gossip:
      break;
    default:
      return;
  }
  const auto& gossip = static_cast<const GossipMsg&>(*msg);
  PMC_EXPECTS(gossip.event != nullptr);
  PMC_EXPECTS(gossip.depth >= 1 && gossip.depth <= config_.tree.depth);

  if (piggyback_sink_ && !gossip.piggyback.empty())
    piggyback_sink_(gossip.sender, gossip.piggyback);

  // Fig. 3 lines 20-23 (with whole-lifetime dedup, see header).
  if (!seen_.insert(gossip.event->id()).second) {
    ++stats_.dup_suppressed;
    return;
  }
  ++stats_.received;
  if (gossip.no_regossip) {
    // Leaf flood (Sec. 6): the sender already addressed every interested
    // neighbor, so there is nothing left to gossip — deliver, and keep the
    // payload only for the optional digest-recovery phase.
    deliver_if_interested(*gossip.event);
    retain_for_recovery(gossip.event);
    if (!store_.empty() && !periodic_armed()) arm_periodic(config_.period);
    return;
  }
  buffer_event(gossip.depth, Entry{gossip.event, gossip.rate, gossip.round});
  deliver_if_interested(*gossip.event);
}

void PmcastNode::on_period() {
  for (std::size_t depth = 1; depth <= config_.tree.depth; ++depth)
    gossip_entries_at(depth);
  run_recovery_round();
  if (buffers_empty() && store_.empty()) disarm_periodic();
}

void PmcastNode::gossip_entries_at(std::size_t depth) {
  auto& entries = gossips_[depth - 1];
  if (entries.empty()) return;

  // Re-evaluated every period and depth: with an adaptive env source the
  // Eq. 11 bound follows the live ε/τ estimate instead of the frozen prior.
  const EnvParams env = live_env();
  std::vector<Entry> promoted;
  auto it = entries.begin();
  while (it != entries.end()) {
    Entry& entry = *it;
    double local_rate = 0.0;  // recomputed, used only by the candidate list
    candidates_at(depth, *entry.event, gossip_scratch_, local_rate);
    const auto& candidates = gossip_scratch_;

    // Sec. 6 mechanism: dense interest at the leaf depth — flood the
    // subgroup once instead of running probabilistic rounds.
    if (depth == config_.tree.depth && entry.round == 0 &&
        entry.rate >= config_.leaf_flood_density) {
      target_scratch_.clear();
      for (const Candidate& cand : candidates) {
        if (!cand.interested) continue;
        const ProcessId target = directory_(cand.id);
        if (target == kNoProcess) continue;
        target_scratch_.push_back(target);
      }
      if (!target_scratch_.empty()) {
        auto msg = std::make_shared<GossipMsg>();
        msg->event = entry.event;
        msg->rate = entry.rate;
        msg->round = entry.round;
        // The flood already addressed everyone interested: tell receivers
        // explicitly not to re-gossip (the flag, not a sentinel round, so
        // round arithmetic never meets an out-of-band value).
        msg->no_regossip = true;
        msg->depth = static_cast<std::uint32_t>(depth);
        // One payload, one transcode, per-destination draws — the whole
        // flood goes out as a single fan-out.
        send_multi(target_scratch_, msg);
        stats_.gossips_sent += target_scratch_.size();
      }
      ++stats_.leaf_floods;
      retain_for_recovery(std::move(entry.event));
      it = entries.erase(it);
      continue;
    }
    // Fig. 3 line 7: the round bound uses the rate propagated with the
    // event, so every process of the subgroup applies the same bound.
    //
    // Discount semantics (Eq. 11 / Fig. 3 line 7 audit): Pittel's T(n, F)
    // is applied to the *interested* sub-population, so both arguments are
    // scaled by the matching rate first — n = |view| * rate is GETRATE's
    // audience, and F * rate is the expected number of the F drawn targets
    // that are interested (Fig. 3 lines 10-14 draw from the whole view and
    // filter, so the effective fanout towards the audience is F * rate).
    // faulty() then applies Eq. 11's environment discount on top,
    // multiplying both by (1-ε)(1-τ): Tf(n, F) = T(n(1-ε)(1-τ),
    // F(1-ε)(1-τ)). The two discounts are deliberate and multiplicative;
    // tests/rounds_test.cpp locks the composition against hand-computed
    // paper values.
    const double interested =
        static_cast<double>(candidates.size()) * entry.rate;
    const double bound = estimator_.faulty(
        interested, static_cast<double>(config_.fanout) * entry.rate, env);

    if (static_cast<double>(entry.round) < bound) {
      // Fig. 3 lines 8-14: one more round at this depth.
      ++entry.round;
      ++stats_.rounds_run;
      const std::size_t picks =
          std::min<std::size_t>(config_.fanout, candidates.size());
      const auto chosen =
          rng().sample_without_replacement(candidates.size(), picks);
      if (piggyback_source_) {
        // Piggybacked rows are scoped per target, so every message is
        // distinct and goes out individually.
        for (const auto ci : chosen) {
          const Candidate& cand = candidates[ci];
          if (!cand.interested) continue;  // line 13: filter before sending
          const ProcessId target = directory_(cand.id);
          if (target == kNoProcess) continue;
          auto msg = std::make_shared<GossipMsg>();
          msg->event = entry.event;
          msg->rate = entry.rate;
          msg->round = entry.round;
          msg->depth = static_cast<std::uint32_t>(depth);
          msg->piggyback = piggyback_source_(cand.id);
          if (!msg->piggyback.empty()) msg->sender = self_;
          send(target, std::move(msg));
          ++stats_.gossips_sent;
        }
      } else {
        // Without piggybacking the F copies are identical: share one
        // payload through send_multi (per-destination draws unchanged).
        target_scratch_.clear();
        for (const auto ci : chosen) {
          const Candidate& cand = candidates[ci];
          if (!cand.interested) continue;  // line 13: filter before sending
          const ProcessId target = directory_(cand.id);
          if (target == kNoProcess) continue;
          target_scratch_.push_back(target);
        }
        if (!target_scratch_.empty()) {
          auto msg = std::make_shared<GossipMsg>();
          msg->event = entry.event;
          msg->rate = entry.rate;
          msg->round = entry.round;
          msg->depth = static_cast<std::uint32_t>(depth);
          send_multi(target_scratch_, msg);
          stats_.gossips_sent += target_scratch_.size();
        }
      }
      ++it;
    } else {
      // Fig. 3 lines 15-18: retire here, promote to the next depth.
      // Retiring after zero rounds with an interested audience means the
      // discounted bound collapsed (see RoundEstimator::faulty) — count
      // it, since the event just skipped this depth entirely.
      if (entry.round == 0 && interested > 0.0) ++stats_.bound_collapsed;
      if (depth < config_.tree.depth) {
        auto ev = std::move(entry.event);
        const double next_rate = rate_at(depth + 1, *ev);
        promoted.push_back(Entry{std::move(ev), next_rate, 0});
      } else {
        retain_for_recovery(std::move(entry.event));
      }
      it = entries.erase(it);
    }
  }
  for (auto& entry : promoted) buffer_event(depth + 1, std::move(entry));
}

std::size_t tuning_start_index(const EventId& id, std::size_t n) {
  return n == 0 ? 0 : EventIdHash{}(id) % n;
}

void PmcastNode::candidates_at(std::size_t depth, const Event& e,
                               std::vector<Candidate>& out,
                               double& rate_out) const {
  const DepthView& view = views_->view(self_, depth);
  out.clear();
  std::size_t interested = 0;
  for (std::size_t i = 0; i < view.size(); ++i) {
    if (!view.alive(i)) continue;
    const bool row_interested = view.interests(i).match(e);
    for (const AddrId id : view.delegates(i)) {
      if (id == self_id_) continue;
      out.push_back(Candidate{id, row_interested});
      if (row_interested) ++interested;
    }
  }

  // Sec. 5.3 tuning: too small an audience starves Pittel's estimate, so
  // pad the interested set up to h members. The padding walks the view
  // circularly from an event-derived start index — deterministic (every
  // process promotes the same members) but unbiased across events, unlike
  // always promoting the first h rows.
  if (config_.tuning_threshold > 0 && interested < config_.tuning_threshold) {
    const std::size_t start = tuning_start_index(e.id(), out.size());
    for (std::size_t step = 0;
         step < out.size() && interested < config_.tuning_threshold; ++step) {
      Candidate& cand = out[(start + step) % out.size()];
      if (cand.interested) continue;
      cand.interested = true;
      ++interested;
    }
  }

  rate_out = out.empty()
                 ? 0.0
                 : static_cast<double>(interested) /
                       static_cast<double>(out.size());
}

double PmcastNode::rate_at(std::size_t depth, const Event& e) const {
  double rate = 0.0;
  candidates_at(depth, e, rate_scratch_, rate);
  return rate;
}

void PmcastNode::buffer_event(std::size_t depth, Entry entry) {
  PMC_EXPECTS(depth >= 1 && depth <= config_.tree.depth);
  if (config_.max_buffered > 0 && buffered_total() >= config_.max_buffered) {
    // Degradation cap: the event was already delivered locally if
    // interested; only its re-gossip duty is shed.
    ++stats_.shed_events;
    return;
  }
  gossips_[depth - 1].push_back(std::move(entry));
  if (!periodic_armed()) arm_periodic(config_.period);
}

void PmcastNode::deliver_if_interested(const Event& e) {
  if (!subscription_.match(e)) return;
  if (!delivered_ids_.insert(e.id()).second) return;
  ++stats_.delivered;
  if (deliver_) deliver_(e);
}

bool PmcastNode::buffers_empty() const noexcept {
  return std::all_of(gossips_.begin(), gossips_.end(),
                     [](const auto& v) { return v.empty(); });
}

std::size_t PmcastNode::buffered_total() const noexcept {
  std::size_t n = 0;
  for (const auto& v : gossips_) n += v.size();
  return n;
}

void PmcastNode::retain_for_recovery(std::shared_ptr<const Event> event) {
  if (config_.recovery_rounds == 0 || event == nullptr) return;
  const EventId id = event->id();  // before the move: evaluation order of
                                   // the subscript and the move is unspecified
  store_[id] = Retained{std::move(event), config_.recovery_rounds};
  if (config_.max_retained > 0 && store_.size() > config_.max_retained) {
    // Deterministic shedding: FlatMap is EventId-ordered, so every replica
    // evicts the same victim (the smallest id — oldest publishers first).
    store_.erase(store_.begin());
    ++stats_.shed_events;
  }
}

void PmcastNode::run_recovery_round() {
  if (store_.empty()) return;
  const DepthView& leaf = views_->view(self_, config_.tree.depth);

  // Per leaf neighbor, the ids of retained events its interests match.
  std::vector<std::pair<AddrId, std::vector<EventId>>> digests;
  for (std::size_t i = 0; i < leaf.size(); ++i) {
    if (!leaf.alive(i) || leaf.delegates(i).empty()) continue;
    const AddrId neighbor = leaf.first_delegate(i);
    if (neighbor == self_id_) continue;
    std::vector<EventId> ids;
    for (const auto& [id, retained] : store_) {
      if (leaf.interests(i).match(*retained.event)) ids.push_back(id);
    }
    if (!ids.empty()) digests.emplace_back(neighbor, std::move(ids));
  }

  // Digest fanout F among the neighbors with matching retained events.
  const std::size_t picks =
      std::min<std::size_t>(config_.fanout, digests.size());
  if (picks > 0) {
    const auto chosen = rng().sample_without_replacement(digests.size(), picks);
    for (const auto ci : chosen) {
      const ProcessId target = directory_(digests[ci].first);
      if (target == kNoProcess) continue;
      auto msg = std::make_shared<EventDigestMsg>();
      msg->ids = std::move(digests[ci].second);
      send(target, std::move(msg));
      ++stats_.digests_sent;
    }
  }

  for (auto it = store_.begin(); it != store_.end();) {
    if (--it->second.rounds_left == 0)
      it = store_.erase(it);
    else
      ++it;
  }
}

void PmcastNode::handle_digest(ProcessId from, const EventDigestMsg& m) {
  if (config_.recovery_rounds == 0) return;
  std::vector<EventId> missing;
  for (const auto& id : m.ids) {
    if (seen_.count(id) == 0) missing.push_back(id);
  }
  if (missing.empty()) return;
  auto request = std::make_shared<EventRequestMsg>();
  request->ids = std::move(missing);
  send(from, std::move(request));
}

void PmcastNode::handle_request(ProcessId from, const EventRequestMsg& m) {
  auto payload = std::make_shared<EventPayloadMsg>();
  for (const auto& id : m.ids) {
    const auto it = store_.find(id);
    if (it != store_.end()) payload->events.push_back(it->second.event);
  }
  if (!payload->events.empty()) send(from, std::move(payload));
}

void PmcastNode::handle_payload(const EventPayloadMsg& m) {
  for (const auto& event : m.events) {
    if (event == nullptr) continue;
    if (!seen_.insert(event->id()).second) {
      ++stats_.dup_suppressed;
      continue;
    }
    ++stats_.received;
    ++stats_.recoveries;
    deliver_if_interested(*event);
    // Retain the recovered payload so it can serve further requests, and
    // keep the periodic task alive for the digest rounds.
    retain_for_recovery(event);
    if (!periodic_armed() && alive()) arm_periodic(config_.period);
  }
}

}  // namespace pmc

#include "pmcast/view_provider.hpp"

namespace pmc {

const DepthView& TreeViewProvider::view(const Address& self,
                                        std::size_t depth) const {
  return tree_->view_for(self, depth);
}

const DepthView& LocalViewProvider::view(const Address& self,
                                         std::size_t depth) const {
  PMC_EXPECTS(view_->self() == self);
  return view_->view(depth);
}

}  // namespace pmc

// Tunables of the pmcast algorithm (paper Sec. 3.3 and 5.3).
#pragma once

#include "analysis/env_estimator.hpp"
#include "analysis/rounds.hpp"
#include "membership/config.hpp"
#include "sim/time.hpp"

namespace pmc {

struct PmcastConfig {
  TreeConfig tree;

  /// Gossip fanout F: targets drawn per buffered event per period. Drawn
  /// from the whole view; only interested targets are actually sent to
  /// (Fig. 3 lines 10-14), so the *effective* fanout is F * matching-rate.
  std::size_t fanout = 2;

  /// Gossip period P.
  SimTime period = sim_ms(100);

  /// Additive constant of Pittel's estimate (Eq. 3). Conservative (larger)
  /// values buy reliability with extra rounds.
  double pittel_c = 0.0;

  /// The ε/τ environment policy the *algorithm* assumes when bounding
  /// rounds (Eq. 11). `env.prior` is the paper's static estimate
  /// (available to deployed processes, not ground truth; conservative
  /// values recommended); with `env.adaptive` a live EnvEstimator wired
  /// through PmcastNode::set_env_source refines it online.
  AdaptiveEnv env;

  /// Small-matching-rate tuning threshold h (Sec. 5.3). When fewer than h
  /// view members are interested at a depth, additional members are treated
  /// as interested until h are, walking the view circularly from an
  /// event-derived start index (see tuning_start_index: deterministic across
  /// processes, unbiased across events). 0 disables the tuning.
  std::size_t tuning_threshold = 0;

  /// Sec. 3.2's shortcut: a freshly multicast event whose interest at a
  /// depth is confined to the originator's own subtree skips directly to
  /// the next depth.
  bool local_interest_shortcut = true;

  /// Sec. 6's per-depth mechanism (1): "flooding the leaf subgroups if
  /// there is a high density of interests". When the matching rate carried
  /// into the leaf depth is at least this density, the first gossip round
  /// there sends the event once to *every* interested neighbor instead of
  /// probabilistic rounds — deterministic within the subgroup, and cheaper
  /// than T(a, F) gossip rounds when nearly everyone wants the event.
  /// Values > 1 disable the mechanism (default).
  double leaf_flood_density = 2.0;

  /// pbcast/rpbcast-style digest recovery (the mechanism pmcast's Sec. 3.1
  /// contrasts itself with), layered on the leaf subgroups as an optional
  /// reliability booster: after an event's gossip life-time ends at depth
  /// d, the process keeps the payload and gossips *digests* (event ids,
  /// pre-filtered against each target's interests) to leaf neighbors for
  /// this many extra periods; a neighbor missing an event requests a
  /// retransmission. Recovers processes the bounded rounds missed — the
  /// dominant loss at small matching rates — at the cost of digest
  /// traffic. 0 disables (the paper's plain algorithm).
  std::size_t recovery_rounds = 0;

  /// Graceful degradation under adversarial load: caps on the two stores a
  /// hostile schedule can grow without bound. `max_retained` bounds the
  /// digest-recovery store (overflow sheds the smallest EventId — a
  /// deterministic total order, so replays agree on every victim);
  /// `max_buffered` bounds the total entries across the per-depth gossip
  /// buffers (overflow drops the incoming event instead of buffering it —
  /// it was delivered locally if interested, only its re-gossip is shed).
  /// Every shed increments Stats::shed_events. 0 = unbounded (the default;
  /// fingerprints of capless runs are unchanged).
  std::size_t max_retained = 0;
  std::size_t max_buffered = 0;

  void validate() const {
    tree.validate();
    env.validate();
    PMC_EXPECTS(fanout >= 1);
    PMC_EXPECTS(period > 0);
  }
};

}  // namespace pmc

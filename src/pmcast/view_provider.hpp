// Where a pmcast node's per-depth view tables come from.
//
// Two implementations:
//  * TreeViewProvider — tables shared from a GroupTree. In simulation this
//    models the converged state where every process of a subgroup holds the
//    same table (and saves memory for 10^4-process runs).
//  * LocalViewProvider — tables from a process-local MembershipView, e.g.
//    one maintained by the SyncNode anti-entropy; this is the deployment
//    configuration where views are only loosely coordinated.
#pragma once

#include "membership/tree.hpp"
#include "membership/view.hpp"

namespace pmc {

class ViewProvider {
 public:
  virtual ~ViewProvider() = default;
  /// The depth-i table of process `self` (i in [1, d]).
  virtual const DepthView& view(const Address& self,
                                std::size_t depth) const = 0;
  /// The intern state the provided tables are expressed in. Nodes intern
  /// their own address here at construction so the hot path never touches
  /// component vectors.
  virtual Interns& interns() const = 0;
};

class TreeViewProvider final : public ViewProvider {
 public:
  explicit TreeViewProvider(const GroupTree& tree) : tree_(&tree) {}
  const DepthView& view(const Address& self,
                        std::size_t depth) const override;
  Interns& interns() const override { return tree_->interns(); }

 private:
  const GroupTree* tree_;
};

class LocalViewProvider final : public ViewProvider {
 public:
  explicit LocalViewProvider(const MembershipView& view) : view_(&view) {}
  const DepthView& view(const Address& self,
                        std::size_t depth) const override;
  Interns& interns() const override { return view_->interns(); }

 private:
  const MembershipView* view_;
};

}  // namespace pmc

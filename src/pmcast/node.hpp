// The pmcast dissemination node — paper Fig. 3.
//
// A node buffers each known event per depth as (event, rate, round). Every
// period P it walks the buffers depth by depth:
//   * while round < T(interested, F*rate) it draws F random members of its
//     depth view and gossips the event to those that are interested
//     (delegates whose subgroup's regrouped interests match);
//   * once the rounds at a depth are exhausted the entry moves to the next
//     depth with a freshly computed matching rate (GETRATE), until it falls
//     off depth d — the paper's "passive garbage collection".
// Receivers deliver the event iff their own subscription matches.
//
// Deviations from the paper's pseudocode, argued in DESIGN.md §2:
//   * PMCAST inserts at depth 1 (the root), per the paper's prose;
//   * the leaf-depth view size is not multiplied by R;
//   * a per-node `seen` set deduplicates events across their whole lifetime
//     (Fig. 3 line 20 only checks the live buffers), so HPDELIVER fires at
//     most once per event;
//   * a node never gossips to itself.
#pragma once

#include <functional>
#include <memory>
#include <unordered_set>
#include <vector>

#include "common/flat_map.hpp"
#include "event/event.hpp"
#include "filter/subscription.hpp"
#include "pmcast/config.hpp"
#include "pmcast/view_provider.hpp"
#include "sim/runtime.hpp"

namespace pmc {

/// The gossip wire message (Fig. 3's SEND(event, rate, round, depth)).
/// `piggyback` optionally carries membership rows (Sec. 2.3) together with
/// the sender's address so the receiver can scope them.
struct GossipMsg final : MessageBase {
  GossipMsg() noexcept : MessageBase(MsgKind::Gossip) {}

  std::shared_ptr<const Event> event;
  double rate = 0.0;
  std::uint32_t round = 0;
  std::uint32_t depth = 0;
  /// The sender has already addressed every interested member (Sec. 6 leaf
  /// flood): the receiver delivers (and may retain for recovery) but never
  /// re-buffers the event for gossip. An explicit flag — the exhausted
  /// state used to be smuggled as round = uint32::max, which an adaptive
  /// round bound must never see in live arithmetic.
  bool no_regossip = false;
  Address sender;                  ///< set when piggyback is non-empty
  std::vector<DepthRow> piggyback;
};

/// Recovery digests (optional, PmcastConfig::recovery_rounds): ids of
/// retained events the sender believes the target is interested in.
struct EventDigestMsg final : MessageBase {
  EventDigestMsg() noexcept : MessageBase(MsgKind::EventDigest) {}

  std::vector<EventId> ids;
};

/// Request for retransmission of events missing at the requester.
struct EventRequestMsg final : MessageBase {
  EventRequestMsg() noexcept : MessageBase(MsgKind::EventRequest) {}

  std::vector<EventId> ids;
};

/// Retransmitted payloads answering an EventRequestMsg.
struct EventPayloadMsg final : MessageBase {
  EventPayloadMsg() noexcept : MessageBase(MsgKind::EventPayload) {}

  std::vector<std::shared_ptr<const Event>> events;
};

/// Deterministic, event-derived start index for the Sec. 5.3 tuning padding:
/// when fewer than h view members are interested, members starting at this
/// index are promoted. Every process computes the same index from the event
/// id alone (so a subgroup pads consistently without agreement), but the
/// index varies across events, so the padding does not systematically favor
/// the low-index view rows.
std::size_t tuning_start_index(const EventId& id, std::size_t n);

class PmcastNode final : public Process {
 public:
  using DeliverHandler = std::function<void(const Event&)>;
  /// Resolves an interned known-process address to its simulation
  /// ProcessId (the ids live in the ViewProvider's intern table).
  using Directory = std::function<ProcessId(AddrId)>;

  PmcastNode(Runtime& rt, ProcessId pid, PmcastConfig config, Address self,
             Subscription subscription, const ViewProvider& views,
             Directory directory);

  /// Multicasts an event (Fig. 3's PMCAST). The originator participates at
  /// every depth starting from the root; if it is itself interested, the
  /// event is delivered locally.
  void pmcast(Event event);

  /// HPDELIVER callback; invoked at most once per event.
  void set_deliver_handler(DeliverHandler handler) {
    deliver_ = std::move(handler);
  }

  /// Membership piggybacking (paper Sec. 2.3): when both hooks are set,
  /// every outgoing gossip carries source(target) rows and every incoming
  /// gossip's rows are handed to sink(sender, rows) — typically wired to
  /// SyncNode::rows_to_share / SyncNode::absorb_rows, so membership spreads
  /// with events instead of (only) dedicated gossips.
  using PiggybackSource =
      std::function<std::vector<DepthRow>(AddrId target)>;
  using PiggybackSink = std::function<void(const Address& sender,
                                           const std::vector<DepthRow>&)>;
  void set_piggyback(PiggybackSource source, PiggybackSink sink) {
    piggyback_source_ = std::move(source);
    piggyback_sink_ = std::move(sink);
  }

  /// Live ε/τ source for the Eq. 11 bound (config.env.adaptive): when set,
  /// every per-depth bound evaluation consults it instead of the static
  /// config.env.prior — typically wired to EnvEstimator::estimate of the
  /// node's estimator. The source must return valid faulty() inputs
  /// (ε, τ in [0, 1], no NaN); EnvEstimator guarantees that.
  using EnvSource = std::function<EnvParams()>;
  void set_env_source(EnvSource source) { env_source_ = std::move(source); }

  /// The ε/τ the next bound evaluation will use (prior or live estimate).
  EnvParams live_env() const {
    return env_source_ ? env_source_() : config_.env.prior;
  }

  const Address& address() const noexcept { return self_; }
  AddrId address_id() const noexcept { return self_id_; }
  const Subscription& subscription() const noexcept { return subscription_; }

  bool interested_in(const Event& e) const { return subscription_.match(e); }
  bool has_received(const EventId& id) const { return seen_.count(id) != 0; }
  bool has_delivered(const EventId& id) const {
    return delivered_ids_.count(id) != 0;
  }

  struct Stats {
    std::uint64_t published = 0;
    std::uint64_t received = 0;   ///< distinct events received via gossip
    std::uint64_t delivered = 0;  ///< events handed to the application
    std::uint64_t gossips_sent = 0;
    std::uint64_t rounds_run = 0;  ///< per-depth gossip rounds executed
    /// Entries retired after zero rounds at a depth that still had an
    /// interested audience: the discounted Eq. 11 bound collapsed
    /// (n(1-ε)(1-τ) <= 1 or fanout discounted to 0). Observable instead of
    /// a silent delivery loss — the dominant failure mode at small
    /// matching rates and saturated loss estimates.
    std::uint64_t bound_collapsed = 0;
    std::uint64_t leaf_floods = 0;  ///< Sec. 6 leaf-flood activations
    std::uint64_t digests_sent = 0;
    std::uint64_t recoveries = 0;  ///< events obtained via retransmission
    /// Duplicate events discarded by the whole-lifetime seen-set (gossip
    /// and recovery-payload paths). Under the network's duplication
    /// injector this is the exactly-once audit trail: every duplicate the
    /// wire manufactures lands here, never in `delivered`.
    std::uint64_t dup_suppressed = 0;
    /// Events shed by the PmcastConfig::max_retained / max_buffered caps.
    std::uint64_t shed_events = 0;
  };
  const Stats& stats() const noexcept { return stats_; }

 protected:
  void on_message(ProcessId from, const MessagePtr& msg) override;
  void on_period() override;

 private:
  struct Entry {
    std::shared_ptr<const Event> event;
    double rate = 0.0;
    std::uint32_t round = 0;
  };

  /// One view member that could be gossiped to.
  struct Candidate {
    AddrId id = kNoAddr;
    bool interested = false;
  };

  /// Enumerates the view members at `depth` (excluding self) into `out`
  /// (cleared first), marking each as interested per its row's regrouped
  /// interests, with the Sec. 5.3 tuning applied. Returns the effective
  /// matching rate via `rate_out`. Callers pass a long-lived scratch buffer
  /// so the candidate vector is not reallocated every round at every depth.
  void candidates_at(std::size_t depth, const Event& e,
                     std::vector<Candidate>& out, double& rate_out) const;

  /// Fig. 3's GETRATE: effective matching rate at `depth`.
  double rate_at(std::size_t depth, const Event& e) const;

  void buffer_event(std::size_t depth, Entry entry);
  void gossip_entries_at(std::size_t depth);
  void deliver_if_interested(const Event& e);
  bool buffers_empty() const noexcept;
  std::size_t buffered_total() const noexcept;

  /// Starts (or refreshes) the recovery phase for a retained event.
  void retain_for_recovery(std::shared_ptr<const Event> event);
  /// One period of digest gossip for every event still in recovery.
  void run_recovery_round();
  void handle_digest(ProcessId from, const EventDigestMsg& m);
  void handle_request(ProcessId from, const EventRequestMsg& m);
  void handle_payload(const EventPayloadMsg& m);

  PmcastConfig config_;
  Address self_;
  AddrId self_id_ = kNoAddr;
  Subscription subscription_;
  const ViewProvider* views_;
  Directory directory_;
  RoundEstimator estimator_;
  EnvSource env_source_;
  DeliverHandler deliver_;
  PiggybackSource piggyback_source_;
  PiggybackSink piggyback_sink_;

  std::vector<std::vector<Entry>> gossips_;  // index 0 <-> depth 1

  /// Reusable candidate buffers: one for the gossip loop, one for the
  /// nested rate_at() calls (promotion computes the next depth's rate while
  /// the gossip loop's candidates are still in scope, so the two must not
  /// alias). mutable because rate_at() is logically const.
  mutable std::vector<Candidate> gossip_scratch_;
  mutable std::vector<Candidate> rate_scratch_;
  /// Resolved fan-out pids for the current round/flood, so one shared
  /// message goes out through Network::send_multi instead of F copies.
  std::vector<ProcessId> target_scratch_;

  std::unordered_set<EventId, EventIdHash> seen_;
  std::unordered_set<EventId, EventIdHash> delivered_ids_;

  /// Events retained for digest recovery, with remaining digest rounds.
  /// A FlatMap so recovery digests enumerate ids in EventId order — with an
  /// unordered_map the digest wire bytes would leak hash-bucket order
  /// (detlint iteration-order). The store holds at most a few rounds' worth
  /// of events, where the sorted vector also beats the bucket array.
  struct Retained {
    std::shared_ptr<const Event> event;
    std::size_t rounds_left = 0;
  };
  FlatMap<EventId, Retained> store_;

  Stats stats_;
};

}  // namespace pmc

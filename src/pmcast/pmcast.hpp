// Umbrella header: the public API of the pmcast library.
//
//   #include "pmcast/pmcast.hpp"
//
// Typical use (see examples/quickstart.cpp):
//   1. Describe the tree (TreeConfig) and build a GroupTree from
//      (Address, Subscription) members, or run SyncNodes for decentralized
//      membership.
//   2. Create a Runtime and one PmcastNode per process, wired to a
//      ViewProvider and an Address -> ProcessId directory.
//   3. Call PmcastNode::pmcast(event); interested nodes get their deliver
//      handler invoked with high probability, uninterested nodes are left
//      alone with high probability.
#pragma once

#include "addr/address.hpp"
#include "addr/space.hpp"
#include "analysis/markov.hpp"
#include "analysis/rounds.hpp"
#include "analysis/tree_analysis.hpp"
#include "event/event.hpp"
#include "filter/regroup.hpp"
#include "filter/subscription.hpp"
#include "membership/sync.hpp"
#include "membership/tree.hpp"
#include "membership/view.hpp"
#include "pmcast/config.hpp"
#include "pmcast/node.hpp"
#include "pmcast/view_provider.hpp"
#include "sim/runtime.hpp"

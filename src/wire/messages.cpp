#include "wire/messages.hpp"

#include <limits>

namespace pmc::wire {

namespace {

constexpr std::uint64_t kMaxCollection = 1 << 20;  // sanity bound on counts

/// Sanity cap on gossip rounds: legitimate rounds are O(log n) (Pittel's
/// bound), so anything near integer range is a corrupted frame or a relic
/// of the retired round = uint32::max "do not re-gossip" sentinel (now the
/// explicit GossipMsg::no_regossip flag). Enforced on both directions so a
/// sentinel can neither leave nor enter round arithmetic.
constexpr std::uint64_t kMaxGossipRound = 1 << 20;

std::uint64_t checked_count(Reader& r) {
  const std::uint64_t n = r.varint();
  if (n > kMaxCollection) throw DecodeError("collection too large");
  return n;
}

}  // namespace

// -- Value -------------------------------------------------------------------

void encode(Writer& w, const Value& v) {
  switch (v.kind()) {
    case ValueKind::Int:
      w.u8(0);
      w.svarint(v.as_int());
      break;
    case ValueKind::Float:
      w.u8(1);
      w.f64(v.as_double());
      break;
    case ValueKind::String:
      w.u8(2);
      w.str(v.as_string());
      break;
  }
}

Value decode_value(Reader& r) {
  switch (r.u8()) {
    case 0: return Value(r.svarint());
    case 1: return Value(r.f64());
    case 2: return Value(r.str());
    default: throw DecodeError("bad value kind");
  }
}

// -- Event -------------------------------------------------------------------

void encode(Writer& w, const Event& e) {
  w.varint(e.id().publisher);
  w.varint(e.id().sequence);
  w.varint(e.attributes().size());
  for (const auto& a : e.attributes()) {
    w.str(a.name);
    encode(w, a.value);
  }
}

Event decode_event(Reader& r) {
  EventId id;
  id.publisher = r.varint();
  id.sequence = r.varint();
  Event e(id);
  const auto n = checked_count(r);
  for (std::uint64_t i = 0; i < n; ++i) {
    std::string name = r.str();
    if (name.empty()) throw DecodeError("empty attribute name");
    e.with(std::move(name), decode_value(r));
  }
  return e;
}

// -- Predicate ----------------------------------------------------------------

void encode(Writer& w, const PredicatePtr& p) {
  using Kind = Predicate::Kind;
  switch (p->kind()) {
    case Kind::True: w.u8(0); break;
    case Kind::False: w.u8(1); break;
    case Kind::Compare:
      w.u8(2);
      w.str(p->attr());
      w.u8(static_cast<std::uint8_t>(p->op()));
      encode(w, p->value());
      break;
    case Kind::And:
    case Kind::Or:
      w.u8(p->kind() == Kind::And ? 3 : 4);
      w.varint(p->children().size());
      for (const auto& c : p->children()) encode(w, c);
      break;
    case Kind::Not:
      w.u8(5);
      encode(w, p->child());
      break;
  }
}

PredicatePtr decode_predicate(Reader& r, std::size_t max_depth) {
  if (max_depth == 0) throw DecodeError("predicate too deep");
  const std::uint8_t tag = r.u8();
  switch (tag) {
    case 0: return Predicate::wildcard();
    case 1: return Predicate::never();
    case 2: {
      std::string attr = r.str();
      if (attr.empty()) throw DecodeError("empty attribute in comparison");
      const std::uint8_t op = r.u8();
      if (op > static_cast<std::uint8_t>(CmpOp::Ge))
        throw DecodeError("bad comparison operator");
      return Predicate::compare(std::move(attr), static_cast<CmpOp>(op),
                                decode_value(r));
    }
    case 3:
    case 4: {
      // Rebuilding through the conj/disj factories re-applies constant
      // folding and flattening: the decoded tree is canonical, equivalent.
      const auto n = checked_count(r);
      std::vector<PredicatePtr> children;
      children.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i)
        children.push_back(decode_predicate(r, max_depth - 1));
      return tag == 3 ? Predicate::conj(std::move(children))
                      : Predicate::disj(std::move(children));
    }
    case 5:
      return Predicate::negation(decode_predicate(r, max_depth - 1));
    default: throw DecodeError("bad predicate tag");
  }
  throw DecodeError("unreachable predicate tag");
}

// -- Subscription -------------------------------------------------------------

void encode(Writer& w, const Subscription& s) { encode(w, s.predicate()); }

Subscription decode_subscription(Reader& r) {
  return Subscription(decode_predicate(r));
}

// -- Interval / IntervalSet ----------------------------------------------------

void encode(Writer& w, const Interval& iv) {
  w.f64(iv.lo);
  w.f64(iv.hi);
  w.boolean(iv.lo_open);
  w.boolean(iv.hi_open);
}

Interval decode_interval(Reader& r) {
  Interval iv;
  iv.lo = r.f64();
  iv.hi = r.f64();
  iv.lo_open = r.boolean();
  iv.hi_open = r.boolean();
  return iv;
}

void encode(Writer& w, const IntervalSet& set) {
  w.varint(set.intervals().size());
  for (const auto& iv : set.intervals()) encode(w, iv);
}

IntervalSet decode_interval_set(Reader& r) {
  IntervalSet set;
  const auto n = checked_count(r);
  for (std::uint64_t i = 0; i < n; ++i) set.insert(decode_interval(r));
  return set;
}

// -- Clause ---------------------------------------------------------------------

void encode(Writer& w, const Clause& c) {
  w.varint(c.numeric().size());
  for (const auto& [attr, iv] : c.numeric()) {
    w.str(attr);
    encode(w, iv);
  }
  w.varint(c.strings().size());
  for (const auto& [attr, allowed] : c.strings()) {
    w.str(attr);
    w.varint(allowed.size());
    for (const auto& s : allowed) w.str(s);
  }
}

Clause decode_clause(Reader& r) {
  Clause c;
  const auto numeric = checked_count(r);
  for (std::uint64_t i = 0; i < numeric; ++i) {
    std::string attr = r.str();
    c.constrain_numeric(attr, decode_interval(r));
  }
  const auto strings = checked_count(r);
  for (std::uint64_t i = 0; i < strings; ++i) {
    std::string attr = r.str();
    const auto count = checked_count(r);
    std::vector<std::string> allowed;
    allowed.reserve(static_cast<std::size_t>(count));
    for (std::uint64_t j = 0; j < count; ++j) allowed.push_back(r.str());
    c.constrain_string(attr, std::move(allowed));
  }
  return c;
}

// -- InterestSummary ---------------------------------------------------------

void encode(Writer& w, const InterestSummary& s) {
  w.boolean(s.is_wildcard());
  w.varint(s.numeric_unions().size());
  for (const auto& [attr, set] : s.numeric_unions()) {
    w.str(attr);
    encode(w, set);
  }
  w.varint(s.string_unions().size());
  for (const auto& [attr, allowed] : s.string_unions()) {
    w.str(attr);
    w.varint(allowed.size());
    for (const auto& v : allowed) w.str(v);
  }
  w.varint(s.clauses().size());
  for (const auto& c : s.clauses()) encode(w, c);
  w.varint(s.opaque().size());
  for (const auto& p : s.opaque()) encode(w, p);
}

InterestSummary decode_summary(Reader& r) {
  const bool wildcard = r.boolean();
  std::map<std::string, IntervalSet> numeric;
  const auto numeric_count = checked_count(r);
  for (std::uint64_t i = 0; i < numeric_count; ++i) {
    std::string attr = r.str();
    numeric.emplace(std::move(attr), decode_interval_set(r));
  }
  std::map<std::string, std::vector<std::string>> strings;
  const auto string_count = checked_count(r);
  for (std::uint64_t i = 0; i < string_count; ++i) {
    std::string attr = r.str();
    const auto count = checked_count(r);
    std::vector<std::string> allowed;
    for (std::uint64_t j = 0; j < count; ++j) allowed.push_back(r.str());
    strings.emplace(std::move(attr), std::move(allowed));
  }
  std::vector<Clause> clauses;
  const auto clause_count = checked_count(r);
  for (std::uint64_t i = 0; i < clause_count; ++i)
    clauses.push_back(decode_clause(r));
  std::vector<PredicatePtr> opaque;
  const auto opaque_count = checked_count(r);
  for (std::uint64_t i = 0; i < opaque_count; ++i)
    opaque.push_back(decode_predicate(r));
  return InterestSummary::reassemble(wildcard, std::move(numeric),
                                     std::move(strings), std::move(clauses),
                                     std::move(opaque));
}

// -- Address / ViewRow ---------------------------------------------------------

void encode(Writer& w, const Address& a) {
  w.varint(a.depth());
  for (const auto c : a.components()) w.varint(c);
}

Address decode_address(Reader& r) {
  const auto depth = checked_count(r);
  if (depth == 0) throw DecodeError("empty address");
  std::vector<AddrComponent> comps;
  comps.reserve(static_cast<std::size_t>(depth));
  for (std::uint64_t i = 0; i < depth; ++i) {
    const std::uint64_t c = r.varint();
    if (c > std::numeric_limits<AddrComponent>::max())
      throw DecodeError("address component out of range");
    comps.push_back(static_cast<AddrComponent>(c));
  }
  return Address(std::move(comps));
}

void encode(Writer& w, const ViewRow& row) {
  w.varint(row.infix);
  w.varint(row.delegates.size());
  for (const auto& d : row.delegates) encode(w, d);
  encode(w, row.interests);
  w.varint(row.process_count);
  w.varint(row.version);
  w.boolean(row.alive);
}

ViewRow decode_view_row(Reader& r) {
  ViewRow row;
  const std::uint64_t infix = r.varint();
  if (infix > std::numeric_limits<AddrComponent>::max())
    throw DecodeError("infix out of range");
  row.infix = static_cast<AddrComponent>(infix);
  const auto delegates = checked_count(r);
  for (std::uint64_t i = 0; i < delegates; ++i)
    row.delegates.push_back(decode_address(r));
  row.interests = decode_summary(r);
  row.process_count = r.varint();
  row.version = r.varint();
  row.alive = r.boolean();
  return row;
}

// -- Envelope --------------------------------------------------------------------

namespace {

void encode_depth_rows(Writer& w, const std::vector<DepthRow>& rows) {
  w.varint(rows.size());
  for (const auto& dr : rows) {
    w.varint(dr.depth);
    encode(w, dr.row);
  }
}

std::vector<DepthRow> decode_depth_rows(Reader& r) {
  std::vector<DepthRow> rows;
  const auto n = checked_count(r);
  for (std::uint64_t i = 0; i < n; ++i) {
    DepthRow dr;
    const std::uint64_t depth = r.varint();
    if (depth == 0 || depth > 0xff) throw DecodeError("bad row depth");
    dr.depth = static_cast<std::uint32_t>(depth);
    dr.row = decode_view_row(r);
    rows.push_back(std::move(dr));
  }
  return rows;
}

}  // namespace

// The in-memory kind tag doubles as the wire discriminator; if either enum
// drifts, these fire rather than the decoder mis-routing bytes.
#define PMC_ASSERT_TAG_MIRRORS_KIND(name)                  \
  static_assert(static_cast<std::uint8_t>(MessageTag::name) == \
                static_cast<std::uint8_t>(MsgKind::name))
PMC_ASSERT_TAG_MIRRORS_KIND(Gossip);
PMC_ASSERT_TAG_MIRRORS_KIND(MembershipDigest);
PMC_ASSERT_TAG_MIRRORS_KIND(MembershipUpdate);
PMC_ASSERT_TAG_MIRRORS_KIND(JoinRequest);
PMC_ASSERT_TAG_MIRRORS_KIND(ViewTransfer);
PMC_ASSERT_TAG_MIRRORS_KIND(Leave);
PMC_ASSERT_TAG_MIRRORS_KIND(FloodGossip);
PMC_ASSERT_TAG_MIRRORS_KIND(GenuineGossip);
PMC_ASSERT_TAG_MIRRORS_KIND(SuspectQuery);
PMC_ASSERT_TAG_MIRRORS_KIND(SuspectReply);
PMC_ASSERT_TAG_MIRRORS_KIND(EventDigest);
PMC_ASSERT_TAG_MIRRORS_KIND(EventRequest);
PMC_ASSERT_TAG_MIRRORS_KIND(EventPayload);
#undef PMC_ASSERT_TAG_MIRRORS_KIND

std::vector<std::uint8_t> encode_message(const MessageBase& msg) {
  Writer w;
  // One shared discriminator write (the asserts above guarantee the kind
  // byte IS the MessageTag byte); the per-kind cases only encode bodies.
  w.u8(static_cast<std::uint8_t>(msg.kind));
  switch (msg.kind) {
    case MsgKind::Gossip: {
      const auto& gossip = static_cast<const GossipMsg&>(msg);
      if (gossip.round > kMaxGossipRound)
        throw std::logic_error(
            "encode_message: gossip round beyond sanity cap (sentinel?)");
      encode(w, *gossip.event);
      w.f64(gossip.rate);
      w.varint(gossip.round);
      w.varint(gossip.depth);
      w.boolean(gossip.no_regossip);
      const bool piggybacked = !gossip.piggyback.empty();
      w.boolean(piggybacked);
      if (piggybacked) {
        encode(w, gossip.sender);
        encode_depth_rows(w, gossip.piggyback);
      }
      break;
    }
    case MsgKind::MembershipDigest: {
      const auto& digest = static_cast<const MembershipDigestMsg&>(msg);
      encode(w, digest.sender);
      w.varint(digest.sender_pid);
      w.varint(digest.digests.size());
      for (const auto& d : digest.digests) {
        w.varint(d.depth);
        w.varint(d.infix);
        w.varint(d.version);
      }
      break;
    }
    case MsgKind::MembershipUpdate: {
      const auto& update = static_cast<const MembershipUpdateMsg&>(msg);
      encode(w, update.sender);
      encode_depth_rows(w, update.rows);
      break;
    }
    case MsgKind::JoinRequest: {
      const auto& join = static_cast<const JoinRequestMsg&>(msg);
      encode(w, join.joiner);
      w.varint(join.joiner_pid);
      encode(w, join.subscription);
      w.varint(join.hops);
      break;
    }
    case MsgKind::ViewTransfer: {
      const auto& transfer = static_cast<const ViewTransferMsg&>(msg);
      encode(w, transfer.sender);
      encode_depth_rows(w, transfer.rows);
      break;
    }
    case MsgKind::Leave: {
      const auto& leave = static_cast<const LeaveMsg&>(msg);
      encode(w, leave.leaver);
      break;
    }
    case MsgKind::FloodGossip: {
      const auto& flood = static_cast<const FloodGossipMsg&>(msg);
      encode(w, *flood.event);
      w.varint(flood.round);
      break;
    }
    case MsgKind::GenuineGossip: {
      const auto& genuine = static_cast<const GenuineGossipMsg&>(msg);
      encode(w, *genuine.event);
      w.varint(genuine.round);
      break;
    }
    case MsgKind::SuspectQuery: {
      const auto& query = static_cast<const SuspectQueryMsg&>(msg);
      encode(w, query.sender);
      encode(w, query.suspect);
      break;
    }
    case MsgKind::SuspectReply: {
      const auto& reply = static_cast<const SuspectReplyMsg&>(msg);
      encode(w, reply.sender);
      encode(w, reply.suspect);
      w.boolean(reply.heard_recently);
      break;
    }
    case MsgKind::EventDigest: {
      const auto& digest = static_cast<const EventDigestMsg&>(msg);
      w.varint(digest.ids.size());
      for (const auto& id : digest.ids) {
        w.varint(id.publisher);
        w.varint(id.sequence);
      }
      break;
    }
    case MsgKind::EventRequest: {
      const auto& request = static_cast<const EventRequestMsg&>(msg);
      w.varint(request.ids.size());
      for (const auto& id : request.ids) {
        w.varint(id.publisher);
        w.varint(id.sequence);
      }
      break;
    }
    case MsgKind::EventPayload: {
      const auto& payload = static_cast<const EventPayloadMsg&>(msg);
      w.varint(payload.events.size());
      for (const auto& event : payload.events) encode(w, *event);
      break;
    }
    default:
      throw std::logic_error("encode_message: unknown message type");
  }
  return std::move(w).take();
}

MessagePtr decode_message(std::span<const std::uint8_t> data) {
  Reader r(data);
  const auto tag = static_cast<MessageTag>(r.u8());
  MessagePtr out;
  switch (tag) {
    case MessageTag::Gossip: {
      auto msg = std::make_shared<GossipMsg>();
      msg->event = std::make_shared<const Event>(decode_event(r));
      msg->rate = r.f64();
      if (!(msg->rate >= 0.0 && msg->rate <= 1.0))
        throw DecodeError("rate out of range");
      const std::uint64_t round = r.varint();
      if (round > kMaxGossipRound)
        throw DecodeError("gossip round beyond sanity cap");
      msg->round = static_cast<std::uint32_t>(round);
      const std::uint64_t depth = r.varint();
      if (depth == 0 || depth > 0xff) throw DecodeError("bad gossip depth");
      msg->depth = static_cast<std::uint32_t>(depth);
      msg->no_regossip = r.boolean();
      if (r.boolean()) {
        msg->sender = decode_address(r);
        msg->piggyback = decode_depth_rows(r);
      }
      out = std::move(msg);
      break;
    }
    case MessageTag::MembershipDigest: {
      auto msg = std::make_shared<MembershipDigestMsg>();
      msg->sender = decode_address(r);
      msg->sender_pid = static_cast<ProcessId>(r.varint());
      const auto n = checked_count(r);
      for (std::uint64_t i = 0; i < n; ++i) {
        RowDigest d;
        d.depth = static_cast<std::uint32_t>(r.varint());
        const std::uint64_t infix = r.varint();
        if (infix > std::numeric_limits<AddrComponent>::max())
          throw DecodeError("digest infix out of range");
        d.infix = static_cast<AddrComponent>(infix);
        d.version = r.varint();
        msg->digests.push_back(d);
      }
      out = std::move(msg);
      break;
    }
    case MessageTag::MembershipUpdate: {
      auto msg = std::make_shared<MembershipUpdateMsg>();
      msg->sender = decode_address(r);
      msg->rows = decode_depth_rows(r);
      out = std::move(msg);
      break;
    }
    case MessageTag::JoinRequest: {
      auto msg = std::make_shared<JoinRequestMsg>();
      msg->joiner = decode_address(r);
      msg->joiner_pid = static_cast<ProcessId>(r.varint());
      msg->subscription = decode_subscription(r);
      msg->hops = static_cast<std::uint32_t>(r.varint());
      out = std::move(msg);
      break;
    }
    case MessageTag::ViewTransfer: {
      auto msg = std::make_shared<ViewTransferMsg>();
      msg->sender = decode_address(r);
      msg->rows = decode_depth_rows(r);
      out = std::move(msg);
      break;
    }
    case MessageTag::Leave: {
      auto msg = std::make_shared<LeaveMsg>();
      msg->leaver = decode_address(r);
      out = std::move(msg);
      break;
    }
    case MessageTag::FloodGossip: {
      auto msg = std::make_shared<FloodGossipMsg>();
      msg->event = std::make_shared<const Event>(decode_event(r));
      msg->round = static_cast<std::uint32_t>(r.varint());
      out = std::move(msg);
      break;
    }
    case MessageTag::GenuineGossip: {
      auto msg = std::make_shared<GenuineGossipMsg>();
      msg->event = std::make_shared<const Event>(decode_event(r));
      msg->round = static_cast<std::uint32_t>(r.varint());
      out = std::move(msg);
      break;
    }
    case MessageTag::SuspectQuery: {
      auto msg = std::make_shared<SuspectQueryMsg>();
      msg->sender = decode_address(r);
      msg->suspect = decode_address(r);
      out = std::move(msg);
      break;
    }
    case MessageTag::SuspectReply: {
      auto msg = std::make_shared<SuspectReplyMsg>();
      msg->sender = decode_address(r);
      msg->suspect = decode_address(r);
      msg->heard_recently = r.boolean();
      out = std::move(msg);
      break;
    }
    case MessageTag::EventDigest:
    case MessageTag::EventRequest: {
      const auto n = checked_count(r);
      std::vector<EventId> ids;
      ids.reserve(static_cast<std::size_t>(n));
      for (std::uint64_t i = 0; i < n; ++i) {
        EventId id;
        id.publisher = r.varint();
        id.sequence = r.varint();
        ids.push_back(id);
      }
      if (tag == MessageTag::EventDigest) {
        auto msg = std::make_shared<EventDigestMsg>();
        msg->ids = std::move(ids);
        out = std::move(msg);
      } else {
        auto msg = std::make_shared<EventRequestMsg>();
        msg->ids = std::move(ids);
        out = std::move(msg);
      }
      break;
    }
    case MessageTag::EventPayload: {
      auto msg = std::make_shared<EventPayloadMsg>();
      const auto n = checked_count(r);
      for (std::uint64_t i = 0; i < n; ++i)
        msg->events.push_back(
            std::make_shared<const Event>(decode_event(r)));
      out = std::move(msg);
      break;
    }
    default: throw DecodeError("unknown message tag");
  }
  r.expect_end();
  return out;
}

}  // namespace pmc::wire

// Binary wire codec: a compact, explicitly specified encoding so pmcast
// messages can cross real sockets (the simulator passes shared pointers,
// but a deployment serializes). Varint-coded integers, IEEE-754 doubles in
// little-endian byte order, length-prefixed strings.
//
// Decoding is defensive: every read is bounds-checked and malformed input
// raises DecodeError (never UB) — decoders are fed by the network.
#pragma once

#include <cstdint>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

namespace pmc {

class DecodeError : public std::runtime_error {
 public:
  explicit DecodeError(const std::string& what)
      : std::runtime_error("wire decode error: " + what) {}
};

class Writer {
 public:
  void u8(std::uint8_t v) { out_.push_back(v); }
  /// LEB128-style varint (7 bits per byte, high bit = continue).
  void varint(std::uint64_t v);
  /// Zig-zag varint for signed values.
  void svarint(std::int64_t v);
  void f64(double v);
  void boolean(bool v) { u8(v ? 1 : 0); }
  void str(const std::string& s);
  void bytes(std::span<const std::uint8_t> data);

  const std::vector<std::uint8_t>& data() const noexcept { return out_; }
  std::vector<std::uint8_t> take() && { return std::move(out_); }
  std::size_t size() const noexcept { return out_.size(); }

 private:
  std::vector<std::uint8_t> out_;
};

class Reader {
 public:
  explicit Reader(std::span<const std::uint8_t> data) : data_(data) {}

  std::uint8_t u8();
  std::uint64_t varint();
  std::int64_t svarint();
  double f64();
  bool boolean();
  std::string str();

  bool exhausted() const noexcept { return pos_ == data_.size(); }
  std::size_t remaining() const noexcept { return data_.size() - pos_; }
  /// Throws DecodeError unless all input was consumed.
  void expect_end() const;

 private:
  void need(std::size_t n) const;

  std::span<const std::uint8_t> data_;
  std::size_t pos_ = 0;
};

}  // namespace pmc

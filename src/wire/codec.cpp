#include "wire/codec.hpp"

#include <bit>
#include <cstring>

namespace pmc {

void Writer::varint(std::uint64_t v) {
  while (v >= 0x80) {
    out_.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out_.push_back(static_cast<std::uint8_t>(v));
}

void Writer::svarint(std::int64_t v) {
  // Zig-zag: small magnitudes of either sign stay small on the wire.
  varint((static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63));
}

void Writer::f64(double v) {
  const auto bits = std::bit_cast<std::uint64_t>(v);
  for (int i = 0; i < 8; ++i)
    out_.push_back(static_cast<std::uint8_t>(bits >> (8 * i)));
}

void Writer::str(const std::string& s) {
  varint(s.size());
  out_.insert(out_.end(), s.begin(), s.end());
}

void Writer::bytes(std::span<const std::uint8_t> data) {
  varint(data.size());
  out_.insert(out_.end(), data.begin(), data.end());
}

void Reader::need(std::size_t n) const {
  if (remaining() < n) throw DecodeError("truncated input");
}

std::uint8_t Reader::u8() {
  need(1);
  return data_[pos_++];
}

std::uint64_t Reader::varint() {
  std::uint64_t v = 0;
  int shift = 0;
  for (;;) {
    if (shift >= 64) throw DecodeError("varint too long");
    const std::uint8_t byte = u8();
    v |= static_cast<std::uint64_t>(byte & 0x7f) << shift;
    if ((byte & 0x80) == 0) break;
    shift += 7;
  }
  return v;
}

std::int64_t Reader::svarint() {
  const std::uint64_t raw = varint();
  return static_cast<std::int64_t>((raw >> 1) ^ (~(raw & 1) + 1));
}

double Reader::f64() {
  need(8);
  std::uint64_t bits = 0;
  for (int i = 0; i < 8; ++i)
    bits |= static_cast<std::uint64_t>(data_[pos_++]) << (8 * i);
  return std::bit_cast<double>(bits);
}

bool Reader::boolean() {
  const std::uint8_t v = u8();
  if (v > 1) throw DecodeError("bad boolean");
  return v == 1;
}

std::string Reader::str() {
  const std::uint64_t len = varint();
  if (len > remaining()) throw DecodeError("string length beyond input");
  std::string s(reinterpret_cast<const char*>(data_.data() + pos_),
                static_cast<std::size_t>(len));
  pos_ += static_cast<std::size_t>(len);
  return s;
}

void Reader::expect_end() const {
  if (!exhausted()) throw DecodeError("trailing bytes");
}

}  // namespace pmc

// Wire encoding of pmcast's domain types and protocol messages.
//
// Every protocol message (gossip, membership digest/update, join/leave,
// baseline gossips) round-trips through encode_message/decode_message with
// a one-byte type tag. Decoders validate everything (bounds, tags, depth
// limits on predicate trees) and throw DecodeError on malformed input.
#pragma once

#include <memory>

#include "baselines/flooding.hpp"
#include "baselines/genuine.hpp"
#include "membership/sync.hpp"
#include "pmcast/node.hpp"
#include "wire/codec.hpp"

namespace pmc::wire {

// -- Domain types -----------------------------------------------------------

void encode(Writer& w, const Value& v);
Value decode_value(Reader& r);

void encode(Writer& w, const Event& e);
Event decode_event(Reader& r);

void encode(Writer& w, const PredicatePtr& p);
/// `max_depth` bounds AST recursion against adversarial input.
PredicatePtr decode_predicate(Reader& r, std::size_t max_depth = 64);

void encode(Writer& w, const Subscription& s);
Subscription decode_subscription(Reader& r);

void encode(Writer& w, const Interval& iv);
Interval decode_interval(Reader& r);

void encode(Writer& w, const IntervalSet& set);
IntervalSet decode_interval_set(Reader& r);

void encode(Writer& w, const Clause& c);
Clause decode_clause(Reader& r);

void encode(Writer& w, const InterestSummary& s);
InterestSummary decode_summary(Reader& r);

void encode(Writer& w, const Address& a);
Address decode_address(Reader& r);

void encode(Writer& w, const ViewRow& row);
ViewRow decode_view_row(Reader& r);

// -- Protocol envelope ------------------------------------------------------

enum class MessageTag : std::uint8_t {
  Gossip = 1,
  MembershipDigest = 2,
  MembershipUpdate = 3,
  JoinRequest = 4,
  ViewTransfer = 5,
  Leave = 6,
  FloodGossip = 7,
  GenuineGossip = 8,
  SuspectQuery = 9,
  SuspectReply = 10,
  EventDigest = 11,
  EventRequest = 12,
  EventPayload = 13,
};

/// Serializes any of the known protocol messages; throws std::logic_error
/// for unknown MessageBase subclasses.
std::vector<std::uint8_t> encode_message(const MessageBase& msg);

/// Parses a message envelope; throws DecodeError on malformed input.
MessagePtr decode_message(std::span<const std::uint8_t> data);

}  // namespace pmc::wire

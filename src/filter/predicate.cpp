#include "filter/predicate.hpp"

#include <sstream>

#include "common/contract.hpp"

namespace pmc {

CmpOp negate(CmpOp op) noexcept {
  switch (op) {
    case CmpOp::Eq: return CmpOp::Ne;
    case CmpOp::Ne: return CmpOp::Eq;
    case CmpOp::Lt: return CmpOp::Ge;
    case CmpOp::Le: return CmpOp::Gt;
    case CmpOp::Gt: return CmpOp::Le;
    case CmpOp::Ge: return CmpOp::Lt;
  }
  return CmpOp::Eq;  // unreachable
}

std::string to_string(CmpOp op) {
  switch (op) {
    case CmpOp::Eq: return "==";
    case CmpOp::Ne: return "!=";
    case CmpOp::Lt: return "<";
    case CmpOp::Le: return "<=";
    case CmpOp::Gt: return ">";
    case CmpOp::Ge: return ">=";
  }
  return "?";
}

PredicatePtr Predicate::wildcard() {
  struct Make : Predicate {
    Make() : Predicate(Kind::True) {}
  };
  static const PredicatePtr p = std::make_shared<Make>();
  return p;
}

PredicatePtr Predicate::never() {
  struct Make : Predicate {
    Make() : Predicate(Kind::False) {}
  };
  static const PredicatePtr p = std::make_shared<Make>();
  return p;
}

PredicatePtr Predicate::compare(std::string attr, CmpOp op, Value value) {
  PMC_EXPECTS(!attr.empty());
  struct Make : Predicate {
    Make() : Predicate(Kind::Compare) {}
  };
  auto p = std::make_shared<Make>();
  p->attr_ = std::move(attr);
  p->op_ = op;
  p->value_ = std::move(value);
  return p;
}

PredicatePtr Predicate::conj(std::vector<PredicatePtr> children) {
  std::vector<PredicatePtr> flat;
  for (auto& c : children) {
    PMC_EXPECTS(c != nullptr);
    if (c->kind() == Kind::True) continue;
    if (c->kind() == Kind::False) return never();
    if (c->kind() == Kind::And) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return wildcard();
  if (flat.size() == 1) return flat.front();
  struct Make : Predicate {
    Make() : Predicate(Kind::And) {}
  };
  auto p = std::make_shared<Make>();
  p->children_ = std::move(flat);
  return p;
}

PredicatePtr Predicate::disj(std::vector<PredicatePtr> children) {
  std::vector<PredicatePtr> flat;
  for (auto& c : children) {
    PMC_EXPECTS(c != nullptr);
    if (c->kind() == Kind::False) continue;
    if (c->kind() == Kind::True) return wildcard();
    if (c->kind() == Kind::Or) {
      flat.insert(flat.end(), c->children_.begin(), c->children_.end());
    } else {
      flat.push_back(std::move(c));
    }
  }
  if (flat.empty()) return never();
  if (flat.size() == 1) return flat.front();
  struct Make : Predicate {
    Make() : Predicate(Kind::Or) {}
  };
  auto p = std::make_shared<Make>();
  p->children_ = std::move(flat);
  return p;
}

PredicatePtr Predicate::negation(PredicatePtr c) {
  PMC_EXPECTS(c != nullptr);
  switch (c->kind()) {
    case Kind::True: return never();
    case Kind::False: return wildcard();
    case Kind::Not: return c->child();
    default: break;
  }
  struct Make : Predicate {
    Make() : Predicate(Kind::Not) {}
  };
  auto p = std::make_shared<Make>();
  p->children_.push_back(std::move(c));
  return p;
}

bool compare_values(const Value& ev, CmpOp op, const Value& target) {
  const bool ev_str = ev.kind() == ValueKind::String;
  const bool tg_str = target.kind() == ValueKind::String;
  if (ev_str != tg_str) return op == CmpOp::Ne;  // cross-kind: never equal
  if (ev_str) {
    const auto& a = ev.as_string();
    const auto& b = target.as_string();
    switch (op) {
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      case CmpOp::Lt: return a < b;
      case CmpOp::Le: return a <= b;
      case CmpOp::Gt: return a > b;
      case CmpOp::Ge: return a >= b;
    }
  } else {
    const double a = ev.as_double();
    const double b = target.as_double();
    switch (op) {
      case CmpOp::Eq: return a == b;
      case CmpOp::Ne: return a != b;
      case CmpOp::Lt: return a < b;
      case CmpOp::Le: return a <= b;
      case CmpOp::Gt: return a > b;
      case CmpOp::Ge: return a >= b;
    }
  }
  return false;  // unreachable
}

bool Predicate::match(const Event& e) const {
  switch (kind_) {
    case Kind::True: return true;
    case Kind::False: return false;
    case Kind::Compare: {
      const auto v = e.get(attr_);
      if (!v) return false;
      return compare_values(*v, op_, value_);
    }
    case Kind::And:
      for (const auto& c : children_)
        if (!c->match(e)) return false;
      return true;
    case Kind::Or:
      for (const auto& c : children_)
        if (c->match(e)) return true;
      return false;
    case Kind::Not: return !children_.front()->match(e);
  }
  return false;  // unreachable
}

const std::string& Predicate::attr() const {
  PMC_EXPECTS(kind_ == Kind::Compare);
  return attr_;
}

CmpOp Predicate::op() const {
  PMC_EXPECTS(kind_ == Kind::Compare);
  return op_;
}

const Value& Predicate::value() const {
  PMC_EXPECTS(kind_ == Kind::Compare);
  return value_;
}

const std::vector<PredicatePtr>& Predicate::children() const {
  PMC_EXPECTS(kind_ == Kind::And || kind_ == Kind::Or);
  return children_;
}

const PredicatePtr& Predicate::child() const {
  PMC_EXPECTS(kind_ == Kind::Not);
  return children_.front();
}

std::string Predicate::to_string() const {
  std::ostringstream os;
  switch (kind_) {
    case Kind::True: os << "true"; break;
    case Kind::False: os << "false"; break;
    case Kind::Compare:
      os << attr_ << " " << pmc::to_string(op_) << " " << value_.to_string();
      break;
    case Kind::And:
    case Kind::Or: {
      const char* sep = kind_ == Kind::And ? " && " : " || ";
      os << "(";
      for (std::size_t i = 0; i < children_.size(); ++i) {
        if (i) os << sep;
        os << children_[i]->to_string();
      }
      os << ")";
      break;
    }
    case Kind::Not: os << "!(" << children_.front()->to_string() << ")"; break;
  }
  return os.str();
}

}  // namespace pmc

#include "filter/regroup.hpp"

#include <algorithm>
#include <bit>
#include <sstream>

#include "common/contract.hpp"
#include "common/hash.hpp"

namespace pmc {

// ---------------------------------------------------------------------------
// Clause
// ---------------------------------------------------------------------------

void Clause::constrain_numeric(const std::string& attr, const Interval& iv) {
  auto [it, inserted] = numeric_.try_emplace(attr, iv);
  if (!inserted) it->second = it->second.intersect(iv);
  if (it->second.empty()) contradictory_ = true;
  // A numeric constraint and a string constraint on the same attribute can
  // never both hold (an attribute value has one kind).
  if (strings_.count(attr) != 0) contradictory_ = true;
}

void Clause::constrain_string(const std::string& attr,
                              std::vector<std::string> allowed) {
  std::sort(allowed.begin(), allowed.end());
  allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());
  auto it = strings_.find(attr);
  if (it == strings_.end()) {
    it = strings_.emplace(attr, std::move(allowed)).first;
  } else {
    std::vector<std::string> both;
    std::set_intersection(it->second.begin(), it->second.end(),
                          allowed.begin(), allowed.end(),
                          std::back_inserter(both));
    it->second = std::move(both);
  }
  if (it->second.empty()) contradictory_ = true;
  if (numeric_.count(attr) != 0) contradictory_ = true;
}

bool Clause::match(const Event& e) const {
  if (contradictory_) return false;
  for (const auto& [attr, iv] : numeric_) {
    const auto v = e.get(attr);
    if (!v || !v->is_numeric() || !iv.contains(v->as_double())) return false;
  }
  for (const auto& [attr, allowed] : strings_) {
    const auto v = e.get(attr);
    if (!v || v->kind() != ValueKind::String) return false;
    if (!std::binary_search(allowed.begin(), allowed.end(), v->as_string()))
      return false;
  }
  return true;
}

bool Clause::subsumes(const Clause& o) const {
  if (o.contradictory_) return true;
  if (contradictory_) return false;
  // Every constraint of *this must be implied by o's constraint on the same
  // attribute: o must constrain the attribute at least as tightly.
  for (const auto& [attr, iv] : numeric_) {
    const auto it = o.numeric_.find(attr);
    if (it == o.numeric_.end() || !iv.covers(it->second)) return false;
  }
  for (const auto& [attr, allowed] : strings_) {
    const auto it = o.strings_.find(attr);
    if (it == o.strings_.end()) return false;
    if (!std::includes(allowed.begin(), allowed.end(), it->second.begin(),
                       it->second.end()))
      return false;
  }
  return true;
}

std::string Clause::to_string() const {
  if (contradictory_) return "false";
  if (unconstrained()) return "true";
  std::ostringstream os;
  bool first = true;
  for (const auto& [attr, iv] : numeric_) {
    if (!first) os << " && ";
    first = false;
    os << attr << " in " << iv.to_string();
  }
  for (const auto& [attr, allowed] : strings_) {
    if (!first) os << " && ";
    first = false;
    os << attr << " in {";
    for (std::size_t i = 0; i < allowed.size(); ++i) {
      if (i) os << ", ";
      os << '"' << allowed[i] << '"';
    }
    os << "}";
  }
  return os.str();
}

// ---------------------------------------------------------------------------
// DNF conversion
// ---------------------------------------------------------------------------

namespace {

/// Interval for a single numeric comparison; nullopt when the comparison is
/// not interval-shaped (numeric Ne — union of two rays, handled by caller).
std::optional<Interval> comparison_interval(CmpOp op, double v) {
  switch (op) {
    case CmpOp::Eq: return Interval::point(v);
    case CmpOp::Lt: return Interval::at_most(v, /*open=*/true);
    case CmpOp::Le: return Interval::at_most(v, /*open=*/false);
    case CmpOp::Gt: return Interval::at_least(v, /*open=*/true);
    case CmpOp::Ge: return Interval::at_least(v, /*open=*/false);
    case CmpOp::Ne: return std::nullopt;
  }
  return std::nullopt;
}

std::optional<Clause> intersect_clauses(const Clause& a, const Clause& b) {
  Clause out = a;
  for (const auto& [attr, iv] : b.numeric()) out.constrain_numeric(attr, iv);
  for (const auto& [attr, allowed] : b.strings())
    out.constrain_string(attr, allowed);
  if (out.contradictory()) return std::nullopt;
  return out;
}

}  // namespace

std::optional<std::vector<Clause>> to_dnf(const PredicatePtr& pred,
                                          std::size_t max_clauses) {
  PMC_EXPECTS(pred != nullptr);
  using Kind = Predicate::Kind;
  switch (pred->kind()) {
    case Kind::True: return std::vector<Clause>{Clause{}};
    case Kind::False: return std::vector<Clause>{};
    case Kind::Not: return std::nullopt;  // negation over a complex subtree
    case Kind::Compare: {
      const auto& v = pred->value();
      if (v.kind() == ValueKind::String) {
        if (pred->op() == CmpOp::Eq) {
          Clause c;
          c.constrain_string(pred->attr(), {v.as_string()});
          return std::vector<Clause>{std::move(c)};
        }
        return std::nullopt;  // string !=, <, ... not clause-representable
      }
      const double x = v.as_double();
      if (pred->op() == CmpOp::Ne) {
        Clause below, above;
        below.constrain_numeric(pred->attr(),
                                Interval::at_most(x, /*open=*/true));
        above.constrain_numeric(pred->attr(),
                                Interval::at_least(x, /*open=*/true));
        return std::vector<Clause>{std::move(below), std::move(above)};
      }
      Clause c;
      c.constrain_numeric(pred->attr(), *comparison_interval(pred->op(), x));
      return std::vector<Clause>{std::move(c)};
    }
    case Kind::Or: {
      std::vector<Clause> out;
      for (const auto& child : pred->children()) {
        auto sub = to_dnf(child, max_clauses);
        if (!sub) return std::nullopt;
        out.insert(out.end(), std::make_move_iterator(sub->begin()),
                   std::make_move_iterator(sub->end()));
        if (out.size() > max_clauses) return std::nullopt;
      }
      return out;
    }
    case Kind::And: {
      std::vector<Clause> acc{Clause{}};
      for (const auto& child : pred->children()) {
        auto sub = to_dnf(child, max_clauses);
        if (!sub) return std::nullopt;
        std::vector<Clause> next;
        for (const auto& a : acc) {
          for (const auto& b : *sub) {
            if (auto merged = intersect_clauses(a, b))
              next.push_back(std::move(*merged));
            if (next.size() > max_clauses) return std::nullopt;
          }
        }
        acc = std::move(next);
        if (acc.empty()) break;  // contradiction, short-circuit
      }
      return acc;
    }
  }
  return std::nullopt;  // unreachable
}

// ---------------------------------------------------------------------------
// InterestSummary
// ---------------------------------------------------------------------------

InterestSummary InterestSummary::from(const Subscription& sub,
                                      const RegroupOptions& opts) {
  InterestSummary s;
  if (sub.is_wildcard()) {
    s.wildcard_ = true;
    return s;
  }
  auto dnf = to_dnf(sub.predicate(), opts.max_dnf_clauses);
  if (!dnf) {
    s.opaque_.push_back(sub.predicate());
    return s;
  }
  for (auto& clause : *dnf) s.add_clause(std::move(clause), opts);
  s.prune_subsumed();
  return s;
}

void InterestSummary::add_clause(Clause c, const RegroupOptions& opts) {
  if (c.contradictory()) return;
  if (c.unconstrained()) {
    wildcard_ = true;
    return;
  }
  if (c.attribute_count() == 1) {
    // Tier 1/2: fold single-attribute clauses into per-attribute unions.
    if (!c.numeric().empty()) {
      const auto& [attr, iv] = *c.numeric().begin();
      numeric_[attr].insert(iv);
    } else {
      const auto& [attr, allowed] = *c.strings().begin();
      auto& dst = strings_[attr];
      std::vector<std::string> merged;
      std::set_union(dst.begin(), dst.end(), allowed.begin(), allowed.end(),
                     std::back_inserter(merged));
      dst = std::move(merged);
    }
    return;
  }
  clauses_.push_back(std::move(c));
  if (clauses_.size() > opts.max_clauses) coarsen();
}

void InterestSummary::merge(const InterestSummary& other,
                            const RegroupOptions& opts) {
  if (other.wildcard_) wildcard_ = true;
  if (wildcard_) return;
  for (const auto& [attr, ivs] : other.numeric_) numeric_[attr].insert_all(ivs);
  for (const auto& [attr, allowed] : other.strings_) {
    auto& dst = strings_[attr];
    std::vector<std::string> merged;
    std::set_union(dst.begin(), dst.end(), allowed.begin(), allowed.end(),
                   std::back_inserter(merged));
    dst = std::move(merged);
  }
  for (const auto& c : other.clauses_) add_clause(c, opts);
  opaque_.insert(opaque_.end(), other.opaque_.begin(), other.opaque_.end());
  prune_subsumed();
}

void InterestSummary::prune_subsumed() {
  if (wildcard_) return;
  // Drop multi-attribute clauses already implied by a tier-1/2 union or by
  // a weaker clause. Quadratic in clause count, which stays small by budget.
  std::vector<Clause> kept;
  for (std::size_t i = 0; i < clauses_.size(); ++i) {
    const Clause& c = clauses_[i];
    bool redundant = false;
    for (const auto& [attr, iv] : c.numeric()) {
      const auto it = numeric_.find(attr);
      if (it != numeric_.end() && it->second.covers(iv)) {
        redundant = true;  // the single-attribute union already matches
        break;
      }
    }
    if (!redundant) {
      for (std::size_t j = 0; j < clauses_.size() && !redundant; ++j) {
        if (j == i) continue;
        // Tie-break equal clauses by index so exactly one copy survives.
        if (clauses_[j].subsumes(c) &&
            !(c.subsumes(clauses_[j]) && i < j)) {
          redundant = true;
        }
      }
    }
    if (!redundant) kept.push_back(c);
  }
  clauses_ = std::move(kept);
}

bool InterestSummary::match(const Event& e) const {
  if (wildcard_) return true;
  for (const auto& [attr, ivs] : numeric_) {
    const auto v = e.get(attr);
    if (v && v->is_numeric() && ivs.contains(v->as_double())) return true;
  }
  for (const auto& [attr, allowed] : strings_) {
    const auto v = e.get(attr);
    if (v && v->kind() == ValueKind::String &&
        std::binary_search(allowed.begin(), allowed.end(), v->as_string()))
      return true;
  }
  for (const auto& c : clauses_)
    if (c.match(e)) return true;
  for (const auto& p : opaque_)
    if (p->match(e)) return true;
  return false;
}

void InterestSummary::coarsen() {
  if (wildcard_) return;
  // Relax each multi-attribute clause to the projection onto one of its
  // attributes: (b>3 && c<2) is implied by (b>3), so replacing the clause by
  // the projection can only add matches — never lose one.
  for (const auto& c : clauses_) {
    if (!c.numeric().empty()) {
      const auto& [attr, iv] = *c.numeric().begin();
      numeric_[attr].insert(iv);
    } else if (!c.strings().empty()) {
      const auto& [attr, allowed] = *c.strings().begin();
      auto& dst = strings_[attr];
      std::vector<std::string> merged;
      std::set_union(dst.begin(), dst.end(), allowed.begin(), allowed.end(),
                     std::back_inserter(merged));
      dst = std::move(merged);
    }
  }
  clauses_.clear();
  // Collapse each interval union to its bounding interval.
  for (auto& [attr, ivs] : numeric_) {
    if (ivs.size() > 1) ivs = IntervalSet(ivs.bounding());
  }
  prune_subsumed();
}

InterestSummary InterestSummary::reassemble(
    bool wildcard, std::map<std::string, IntervalSet> numeric,
    std::map<std::string, std::vector<std::string>> strings,
    std::vector<Clause> clauses, std::vector<PredicatePtr> opaque) {
  InterestSummary s;
  s.wildcard_ = wildcard;
  s.numeric_ = std::move(numeric);
  s.strings_ = std::move(strings);
  s.clauses_ = std::move(clauses);
  s.opaque_ = std::move(opaque);
  return s;
}

std::size_t InterestSummary::complexity() const noexcept {
  if (wildcard_) return 0;
  std::size_t n = clauses_.size() + opaque_.size();
  for (const auto& [attr, ivs] : numeric_) n += ivs.size();
  for (const auto& [attr, allowed] : strings_) n += allowed.size();
  return n;
}

namespace {

std::uint64_t hash_string(std::uint64_t h, const std::string& s) noexcept {
  h = fnv1a_u64(h, s.size());
  for (const char c : s) h = fnv1a_byte(h, static_cast<std::uint8_t>(c));
  return h;
}

std::uint64_t hash_interval(std::uint64_t h, const Interval& iv) noexcept {
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(iv.lo));
  h = fnv1a_u64(h, std::bit_cast<std::uint64_t>(iv.hi));
  h = fnv1a_byte(h, static_cast<std::uint8_t>((iv.lo_open ? 1 : 0) |
                                              (iv.hi_open ? 2 : 0)));
  return h;
}

std::uint64_t hash_clause(std::uint64_t h, const Clause& c) noexcept {
  h = fnv1a_byte(h, c.contradictory() ? 1 : 0);
  h = fnv1a_u64(h, c.numeric().size());
  for (const auto& [attr, iv] : c.numeric()) {
    h = hash_string(h, attr);
    h = hash_interval(h, iv);
  }
  h = fnv1a_u64(h, c.strings().size());
  for (const auto& [attr, allowed] : c.strings()) {
    h = hash_string(h, attr);
    h = fnv1a_u64(h, allowed.size());
    for (const auto& s : allowed) h = hash_string(h, s);
  }
  return h;
}

}  // namespace

std::uint64_t InterestSummary::hash() const noexcept {
  std::uint64_t h = kFnv1aBasis;
  h = fnv1a_byte(h, wildcard_ ? 1 : 0);
  h = fnv1a_u64(h, numeric_.size());
  for (const auto& [attr, ivs] : numeric_) {
    h = hash_string(h, attr);
    h = fnv1a_u64(h, ivs.size());
    for (const auto& iv : ivs.intervals()) h = hash_interval(h, iv);
  }
  h = fnv1a_u64(h, strings_.size());
  for (const auto& [attr, allowed] : strings_) {
    h = hash_string(h, attr);
    h = fnv1a_u64(h, allowed.size());
    for (const auto& s : allowed) h = hash_string(h, s);
  }
  h = fnv1a_u64(h, clauses_.size());
  for (const auto& c : clauses_) h = hash_clause(h, c);
  h = fnv1a_u64(h, opaque_.size());
  for (const auto& p : opaque_)
    // detlint:allow(pointer-hash) pool-bucket hash only, consistent with pointer ==; never serialized or fingerprinted
    h = fnv1a_u64(h, reinterpret_cast<std::uintptr_t>(p.get()));
  return h;
}

std::string InterestSummary::to_string() const {
  if (wildcard_) return "*";
  std::ostringstream os;
  bool first = true;
  const auto sep = [&] {
    if (!first) os << " || ";
    first = false;
  };
  for (const auto& [attr, ivs] : numeric_) {
    sep();
    os << attr << " in " << ivs.to_string();
  }
  for (const auto& [attr, allowed] : strings_) {
    sep();
    os << attr << " in {";
    for (std::size_t i = 0; i < allowed.size(); ++i) {
      if (i) os << ", ";
      os << '"' << allowed[i] << '"';
    }
    os << "}";
  }
  for (const auto& c : clauses_) {
    sep();
    os << "(" << c.to_string() << ")";
  }
  for (const auto& p : opaque_) {
    sep();
    os << p->to_string();
  }
  if (first) os << "false";
  return os.str();
}

}  // namespace pmc

#include "filter/parser.hpp"

#include <cctype>
#include <charconv>
#include <optional>
#include <stdexcept>
#include <string>

namespace pmc {

namespace {

enum class Tok {
  End, Ident, Int, Float, String, LParen, RParen,
  AndAnd, OrOr, Bang, Eq, Ne, Lt, Le, Gt, Ge, True, False,
};

struct Token {
  Tok kind = Tok::End;
  std::string text;       // identifier / string payload
  std::int64_t int_val = 0;
  double float_val = 0.0;
  std::size_t pos = 0;
};

class Lexer {
 public:
  explicit Lexer(std::string_view src) : src_(src) { advance(); }

  const Token& peek() const noexcept { return cur_; }

  Token take() {
    Token t = cur_;
    advance();
    return t;
  }

  [[noreturn]] void fail(const std::string& msg) const {
    throw std::invalid_argument("interest parse error at offset " +
                                std::to_string(cur_.pos) + ": " + msg);
  }

 private:
  void advance() {
    while (i_ < src_.size() &&
           std::isspace(static_cast<unsigned char>(src_[i_])))
      ++i_;
    cur_ = Token{};
    cur_.pos = i_;
    if (i_ >= src_.size()) return;  // End

    const char c = src_[i_];
    if (c == '(') { cur_.kind = Tok::LParen; ++i_; return; }
    if (c == ')') { cur_.kind = Tok::RParen; ++i_; return; }
    if (c == '&') { expect_pair('&'); cur_.kind = Tok::AndAnd; return; }
    if (c == '|') { expect_pair('|'); cur_.kind = Tok::OrOr; return; }
    if (c == '!') {
      ++i_;
      if (i_ < src_.size() && src_[i_] == '=') { cur_.kind = Tok::Ne; ++i_; }
      else cur_.kind = Tok::Bang;
      return;
    }
    if (c == '=') {
      ++i_;
      if (i_ < src_.size() && src_[i_] == '=') ++i_;  // "=" and "==" alias
      cur_.kind = Tok::Eq;
      return;
    }
    if (c == '<') {
      ++i_;
      if (i_ < src_.size() && src_[i_] == '=') { cur_.kind = Tok::Le; ++i_; }
      else cur_.kind = Tok::Lt;
      return;
    }
    if (c == '>') {
      ++i_;
      if (i_ < src_.size() && src_[i_] == '=') { cur_.kind = Tok::Ge; ++i_; }
      else cur_.kind = Tok::Gt;
      return;
    }
    if (c == '"') { lex_string(); return; }
    if (std::isdigit(static_cast<unsigned char>(c)) || c == '-' ||
        c == '+' || c == '.') {
      lex_number();
      return;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      lex_ident();
      return;
    }
    throw std::invalid_argument("interest parse error at offset " +
                                std::to_string(i_) +
                                ": unexpected character '" + c + "'");
  }

  void expect_pair(char c) {
    if (i_ + 1 >= src_.size() || src_[i_ + 1] != c)
      throw std::invalid_argument("interest parse error at offset " +
                                  std::to_string(i_) + ": expected '" +
                                  std::string(2, c) + "'");
    i_ += 2;
  }

  void lex_string() {
    ++i_;  // opening quote
    std::string out;
    while (i_ < src_.size() && src_[i_] != '"') {
      if (src_[i_] == '\\' && i_ + 1 < src_.size()) ++i_;  // escape
      out.push_back(src_[i_]);
      ++i_;
    }
    if (i_ >= src_.size())
      throw std::invalid_argument("interest parse error: unterminated string");
    ++i_;  // closing quote
    cur_.kind = Tok::String;
    cur_.text = std::move(out);
  }

  void lex_number() {
    const std::size_t start = i_;
    if (src_[i_] == '-' || src_[i_] == '+') ++i_;
    bool is_float = false;
    while (i_ < src_.size()) {
      const char c = src_[i_];
      if (std::isdigit(static_cast<unsigned char>(c))) { ++i_; continue; }
      if (c == '.' || c == 'e' || c == 'E') {
        is_float = true;
        ++i_;
        if ((c == 'e' || c == 'E') && i_ < src_.size() &&
            (src_[i_] == '-' || src_[i_] == '+'))
          ++i_;
        continue;
      }
      break;
    }
    const std::string_view lexeme = src_.substr(start, i_ - start);
    if (is_float) {
      cur_.kind = Tok::Float;
      // from_chars, not stod: stod throws out_of_range on subnormal
      // literals like 5e-324 (glibc strtod flags ERANGE underflow), which
      // would make the printer's shortest-round-trip output unparseable.
      double v = 0.0;
      const auto res =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), v);
      if (res.ec != std::errc{} || res.ptr != lexeme.data() + lexeme.size())
        throw std::invalid_argument("interest parse error: bad float '" +
                                    std::string(lexeme) + "'");
      cur_.float_val = v;
    } else {
      cur_.kind = Tok::Int;
      std::int64_t v = 0;
      const auto res =
          std::from_chars(lexeme.data(), lexeme.data() + lexeme.size(), v);
      if (res.ec != std::errc{})
        throw std::invalid_argument("interest parse error: bad integer '" +
                                    std::string(lexeme) + "'");
      cur_.int_val = v;
    }
  }

  void lex_ident() {
    const std::size_t start = i_;
    while (i_ < src_.size() &&
           (std::isalnum(static_cast<unsigned char>(src_[i_])) ||
            src_[i_] == '_'))
      ++i_;
    cur_.text = std::string(src_.substr(start, i_ - start));
    if (cur_.text == "true") cur_.kind = Tok::True;
    else if (cur_.text == "false") cur_.kind = Tok::False;
    else cur_.kind = Tok::Ident;
  }

  std::string_view src_;
  std::size_t i_ = 0;
  Token cur_;
};

struct Operand {
  bool is_attr = false;
  std::string attr;
  Value value;
};

class Parser {
 public:
  explicit Parser(std::string_view src) : lex_(src) {}

  PredicatePtr parse() {
    auto p = parse_or();
    if (lex_.peek().kind != Tok::End) lex_.fail("trailing input");
    return p;
  }

 private:
  PredicatePtr parse_or() {
    std::vector<PredicatePtr> parts{parse_and()};
    while (lex_.peek().kind == Tok::OrOr) {
      lex_.take();
      parts.push_back(parse_and());
    }
    return Predicate::disj(std::move(parts));
  }

  PredicatePtr parse_and() {
    std::vector<PredicatePtr> parts{parse_unary()};
    while (lex_.peek().kind == Tok::AndAnd) {
      lex_.take();
      parts.push_back(parse_unary());
    }
    return Predicate::conj(std::move(parts));
  }

  PredicatePtr parse_unary() {
    if (lex_.peek().kind == Tok::Bang) {
      lex_.take();
      return Predicate::negation(parse_unary());
    }
    return parse_primary();
  }

  PredicatePtr parse_primary() {
    switch (lex_.peek().kind) {
      case Tok::LParen: {
        lex_.take();
        auto p = parse_or();
        if (lex_.peek().kind != Tok::RParen) lex_.fail("expected ')'");
        lex_.take();
        return p;
      }
      case Tok::True: lex_.take(); return Predicate::wildcard();
      case Tok::False: lex_.take(); return Predicate::never();
      default: return parse_chain();
    }
  }

  // operand (cmpop operand)+ — pairwise conjunction for chains.
  PredicatePtr parse_chain() {
    std::vector<Operand> operands{parse_operand()};
    std::vector<CmpOp> ops;
    while (auto op = peek_cmp()) {
      lex_.take();
      ops.push_back(*op);
      operands.push_back(parse_operand());
    }
    if (ops.empty()) lex_.fail("expected comparison operator");
    std::vector<PredicatePtr> cmps;
    cmps.reserve(ops.size());
    for (std::size_t i = 0; i < ops.size(); ++i)
      cmps.push_back(make_compare(operands[i], ops[i], operands[i + 1]));
    return Predicate::conj(std::move(cmps));
  }

  std::optional<CmpOp> peek_cmp() const {
    switch (lex_.peek().kind) {
      case Tok::Eq: return CmpOp::Eq;
      case Tok::Ne: return CmpOp::Ne;
      case Tok::Lt: return CmpOp::Lt;
      case Tok::Le: return CmpOp::Le;
      case Tok::Gt: return CmpOp::Gt;
      case Tok::Ge: return CmpOp::Ge;
      default: return std::nullopt;
    }
  }

  Operand parse_operand() {
    const Token t = lex_.take();
    Operand o;
    switch (t.kind) {
      case Tok::Ident:
        o.is_attr = true;
        o.attr = t.text;
        break;
      case Tok::Int: o.value = Value(t.int_val); break;
      case Tok::Float: o.value = Value(t.float_val); break;
      case Tok::String: o.value = Value(t.text); break;
      default: lex_.fail("expected attribute or literal");
    }
    return o;
  }

  PredicatePtr make_compare(const Operand& lhs, CmpOp op, const Operand& rhs) {
    if (lhs.is_attr == rhs.is_attr)
      lex_.fail("comparison must relate one attribute to one literal");
    if (lhs.is_attr) return Predicate::compare(lhs.attr, op, rhs.value);
    // Literal on the left: mirror the operator ("10.0 < c" == "c > 10.0").
    CmpOp mirrored = op;
    switch (op) {
      case CmpOp::Lt: mirrored = CmpOp::Gt; break;
      case CmpOp::Le: mirrored = CmpOp::Ge; break;
      case CmpOp::Gt: mirrored = CmpOp::Lt; break;
      case CmpOp::Ge: mirrored = CmpOp::Le; break;
      default: break;  // Eq/Ne symmetric
    }
    return Predicate::compare(rhs.attr, mirrored, lhs.value);
  }

  Lexer lex_;
};

}  // namespace

PredicatePtr parse_predicate(std::string_view text) {
  return Parser(text).parse();
}

}  // namespace pmc

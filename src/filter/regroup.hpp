// Interest regrouping (paper Sec. 2.3).
//
// A line of a view table of depth i represents a whole subgroup; its
// interest column must match an event iff *some* process in the subgroup is
// interested — the union of the individual subscriptions. The paper requires
// the union to be computed "not just by simply forming a [disjunction] of the
// individual interests, but by reducing the complexity of the interests both
// in terms of memory space and in terms of evaluation time".
//
// InterestSummary does this in three tiers:
//   1. single-attribute numeric constraints are unioned into per-attribute
//      IntervalSets (binary-search matching, ranges merge away);
//   2. single-attribute string equalities are unioned into per-attribute
//      sorted string whitelists;
//   3. everything else is normalized into conjunctive clauses (bounded DNF)
//      with subsumption pruning, or kept as an opaque predicate if the
//      normalization would explode.
//
// A summary never produces a false negative (every event matching a merged
// subscription matches the summary). coarsen() trades precision for space —
// the "approximating the filters applied by delegates closer to the root"
// mechanism sketched in the paper's concluding remarks.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "filter/interval.hpp"
#include "filter/subscription.hpp"

namespace pmc {

/// A conjunction of per-attribute constraints: numeric interval and/or
/// string whitelist per attribute. An empty clause matches every event.
class Clause {
 public:
  void constrain_numeric(const std::string& attr, const Interval& iv);
  void constrain_string(const std::string& attr,
                        std::vector<std::string> allowed);

  bool match(const Event& e) const;

  /// True when no constraint can ever be satisfied.
  bool contradictory() const noexcept { return contradictory_; }
  /// True when there are no constraints at all (matches everything).
  bool unconstrained() const noexcept {
    return !contradictory_ && numeric_.empty() && strings_.empty();
  }

  /// True iff this clause matches every event the other matches
  /// (this is weaker-or-equal: every constraint here is implied by o's).
  bool subsumes(const Clause& o) const;

  std::size_t attribute_count() const noexcept {
    return numeric_.size() + strings_.size();
  }
  const std::map<std::string, Interval>& numeric() const noexcept {
    return numeric_;
  }
  const std::map<std::string, std::vector<std::string>>& strings()
      const noexcept {
    return strings_;
  }

  friend bool operator==(const Clause&, const Clause&) = default;

  std::string to_string() const;

 private:
  std::map<std::string, Interval> numeric_;
  std::map<std::string, std::vector<std::string>> strings_;  // sorted
  bool contradictory_ = false;
};

/// Options controlling how aggressively summaries trade precision for space.
struct RegroupOptions {
  /// Clause budget before DNF conversion of one predicate gives up
  /// (the predicate is then kept opaque).
  std::size_t max_dnf_clauses = 64;
  /// Multi-attribute clause budget of a summary; exceeding it triggers an
  /// automatic coarsen().
  std::size_t max_clauses = 256;
};

class InterestSummary {
 public:
  InterestSummary() = default;

  /// Summary of a single subscription.
  static InterestSummary from(const Subscription& sub,
                              const RegroupOptions& opts = {});

  /// Union with another summary (set union of represented interests).
  void merge(const InterestSummary& other, const RegroupOptions& opts = {});

  /// No false negatives w.r.t. every merged subscription.
  bool match(const Event& e) const;

  bool is_wildcard() const noexcept { return wildcard_; }

  /// Replaces per-attribute interval sets by their bounding interval and
  /// multi-attribute clauses by their per-attribute projections. Cheaper to
  /// store and evaluate; strictly more permissive.
  void coarsen();

  /// Rough size measure: interval count + whitelist entries + clauses +
  /// opaque predicates (0 for a wildcard summary).
  std::size_t complexity() const noexcept;

  const std::map<std::string, IntervalSet>& numeric_unions() const noexcept {
    return numeric_;
  }
  const std::map<std::string, std::vector<std::string>>& string_unions()
      const noexcept {
    return strings_;
  }
  const std::vector<Clause>& clauses() const noexcept { return clauses_; }
  const std::vector<PredicatePtr>& opaque() const noexcept { return opaque_; }

  /// Rebuilds a summary from its parts — the wire codec's exact inverse of
  /// the accessors above. No simplification is re-run.
  static InterestSummary reassemble(
      bool wildcard, std::map<std::string, IntervalSet> numeric,
      std::map<std::string, std::vector<std::string>> strings,
      std::vector<Clause> clauses, std::vector<PredicatePtr> opaque);

  /// Structural equality (opaque predicates compare by pointer identity).
  friend bool operator==(const InterestSummary&, const InterestSummary&) =
      default;

  /// Structural FNV-1a hash consistent with operator== (equal summaries hash
  /// equal; opaque predicates hash by pointer identity, matching ==). Feeds
  /// InternPool<InterestSummary> content addressing.
  std::uint64_t hash() const noexcept;

  std::string to_string() const;

 private:
  void add_clause(Clause c, const RegroupOptions& opts);
  void prune_subsumed();

  bool wildcard_ = false;
  std::map<std::string, IntervalSet> numeric_;                // tier 1
  std::map<std::string, std::vector<std::string>> strings_;   // tier 2
  std::vector<Clause> clauses_;                                // tier 3
  std::vector<PredicatePtr> opaque_;                           // fallback
};

/// Normalizes a predicate into DNF clauses; nullopt when the expansion
/// exceeds max_clauses or the predicate contains non-normalizable parts
/// (e.g. negation over a complex subtree, string inequality).
std::optional<std::vector<Clause>> to_dnf(const PredicatePtr& pred,
                                          std::size_t max_clauses);

}  // namespace pmc

// Predicate AST for content-based subscriptions.
//
// Grammar of interests supported (superset of the paper's Fig. 2 examples):
// comparisons of an attribute against an int/float/string constant, with
// conjunction, disjunction and negation. The absence of a constraint on an
// attribute is a wildcard (paper Sec. 2.3).
//
// Predicates are immutable and shared (shared_ptr<const Predicate>): view
// tables replicate the same interests many times across depths, and sharing
// keeps membership state small.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "event/event.hpp"

namespace pmc {

enum class CmpOp { Eq, Ne, Lt, Le, Gt, Ge };

/// The comparison with op negated (Eq<->Ne, Lt<->Ge, Le<->Gt).
CmpOp negate(CmpOp op) noexcept;
std::string to_string(CmpOp op);

/// The single-comparison kernel behind Predicate::match: how an event value
/// relates to a subscription constant. Cross-kind (string vs numeric) values
/// are never equal, so only Ne holds across kinds; numeric comparisons are
/// done in double. Exposed so the predicate index lanes share the oracle's
/// exact semantics instead of reimplementing them.
bool compare_values(const Value& event_value, CmpOp op, const Value& target);

class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  enum class Kind { True, False, Compare, And, Or, Not };

  // -- Factories (the only way to build predicates) ------------------------
  static PredicatePtr wildcard();
  static PredicatePtr never();
  static PredicatePtr compare(std::string attr, CmpOp op, Value value);
  /// Conjunction; flattens nested Ands, folds constants.
  static PredicatePtr conj(std::vector<PredicatePtr> children);
  /// Disjunction; flattens nested Ors, folds constants.
  static PredicatePtr disj(std::vector<PredicatePtr> children);
  /// Logical negation. Double negation cancels and True/False fold, but a
  /// negated comparison stays a Not node: `!(a == v)` matches an event with
  /// no `a` attribute (the comparison is false, Not flips it) while the
  /// op-negated `a != v` does not — folding one into the other would change
  /// absent-attribute semantics.
  static PredicatePtr negation(PredicatePtr child);

  Kind kind() const noexcept { return kind_; }

  /// Matching semantics: a comparison on an attribute absent from the event
  /// is false (the event carries no evidence for it); Not flips the result.
  bool match(const Event& e) const;

  // -- Accessors (preconditions on kind) ------------------------------------
  const std::string& attr() const;        ///< kind() == Compare
  CmpOp op() const;                        ///< kind() == Compare
  const Value& value() const;              ///< kind() == Compare
  const std::vector<PredicatePtr>& children() const;  ///< And / Or
  const PredicatePtr& child() const;       ///< Not

  std::string to_string() const;

 private:
  explicit Predicate(Kind k) : kind_(k) {}

  Kind kind_;
  std::string attr_;
  CmpOp op_ = CmpOp::Eq;
  Value value_;
  std::vector<PredicatePtr> children_;
};

}  // namespace pmc

// A subscription is a process's individual interest: a predicate over event
// attributes. Subscriptions are cheap to copy (shared immutable AST).
#pragma once

#include <string>
#include <string_view>

#include "common/contract.hpp"
#include "filter/predicate.hpp"

namespace pmc {

class Subscription {
 public:
  /// Wildcard subscription (interested in everything) — the paper's
  /// interpretation of "absence of a criterion" (Sec. 2.3).
  Subscription() : pred_(Predicate::wildcard()) {}
  explicit Subscription(PredicatePtr pred) : pred_(std::move(pred)) {
    PMC_EXPECTS(pred_ != nullptr);
  }

  /// Parses the textual interest language, e.g.
  ///   "b > 3 && 10.0 < c && c < 220.0"
  ///   "b == 2 && (e == \"Bob\" || e == \"Tom\")"
  ///   "20.0 < c < 35.0"                       (chained comparison)
  /// Throws std::invalid_argument on syntax errors.
  static Subscription parse(std::string_view text);

  bool match(const Event& e) const { return pred_->match(e); }
  bool is_wildcard() const noexcept {
    return pred_->kind() == Predicate::Kind::True;
  }

  const PredicatePtr& predicate() const noexcept { return pred_; }
  std::string to_string() const { return pred_->to_string(); }

 private:
  PredicatePtr pred_;
};

}  // namespace pmc

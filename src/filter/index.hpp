// Predicate index: matching one event against very many subscriptions.
//
// The filter layer evaluates a predicate AST per subscription per event,
// which is linear in the audience and caps realistic subscriber counts far
// below the 10^6-process scale of the simulation core. PredicateIndex makes
// that sublinear with the classic counting (Rete-style) decomposition used
// by content-based brokers:
//
//   subscription predicate
//     --DNF-->  sub-subscriptions (conjunctive clauses)
//     --atoms-> per-attribute lanes
//
// Decomposition rules (see decompose() in index.cpp):
//   * And / Or flatten into a DNF of clauses; each clause is a conjunction
//     of atoms. Or therefore *expands* a subscription into several clauses
//     (sub-subscription expansion); the subscription matches when any of
//     its clauses matches.
//   * An atom is a single comparison `attr op value`, possibly negated.
//     Not is pushed down De-Morgan-style; a negated comparison stays a
//     *negated atom* rather than an op-negated one, because the two differ
//     on events lacking the attribute (Predicate::match: a comparison on an
//     absent attribute is false, Not flips it) and on NaN / cross-kind
//     values. A negated atom is true by default and is *revoked* when the
//     event carries the attribute and the positive comparison holds.
//   * Predicates whose DNF exceeds Options::max_clauses fall back to a scan
//     bucket that evaluates Predicate::match directly — always correct,
//     just not indexed.
//
// Lanes per attribute:
//   * Eq atoms: hash lanes keyed by value (numeric and string separately;
//     Value(2) and Value(2.0) share a key, mirroring compare_values).
//   * Numeric Lt/Le/Gt/Ge atoms: all ordered bounds a clause places on one
//     attribute are intersected into a single pmc::Interval (an empty
//     intersection kills the clause at insert time), and the per-attribute
//     interval lane answers stabbing queries with a centered interval tree
//     in O(log n + hits). Fusing matters: crediting `u >= lo` and `u < hi`
//     as separate atoms would visit ~half the lane per event (every ray
//     covers half the space), while the fused interval is hit only by the
//     events actually inside it — output-sensitive, which is what makes the
//     whole index sublinear.
//   * String Lt/Le/Gt/Ge atoms: sorted bound lanes; satisfied lower bounds
//     are a prefix (key asc, closed-before-strict) and satisfied upper
//     bounds a suffix under std::partition_point.
//   * Ne and negated atoms: per-attribute lists evaluated with
//     compare_values — the same kernel Predicate::match uses, so lane
//     semantics can't drift from the oracle.
//
// Matching is counting: each clause knows how many atoms it needs; visiting
// an event's attributes credits (or revokes) atoms, and a clause whose
// credit reaches its need fires. Counters are epoch-stamped so per-event
// reset is O(touched), not O(total). Only lanes for the event's attributes
// are visited, so the cost scales with event width x lane hits, not with N.
//
// PredicateIndex is an accelerator behind the SubscriptionMatcher seam:
// Predicate::match remains the oracle (never deleted), and the NaiveScan
// matcher below *is* that oracle looped over subscriptions — tests and
// benches cross-check the two on identical streams.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "filter/interval.hpp"
#include "filter/predicate.hpp"
#include "filter/subscription.hpp"

namespace pmc {

using SubscriptionId = std::uint32_t;

/// Work accounting for machine-speed-independent comparisons against the
/// naive scan (whose work is simply subscriptions x events).
struct IndexCounters {
  std::uint64_t events = 0;           ///< match() calls
  std::uint64_t lane_searches = 0;    ///< attribute -> lane lookups
  std::uint64_t atom_visits = 0;      ///< lane entries touched (incl. searches)
  std::uint64_t candidate_checks = 0; ///< clause credit checks
  std::uint64_t fallback_evals = 0;   ///< scan-bucket Predicate::match calls
  std::uint64_t matches = 0;          ///< subscription ids reported

  /// Total per-event work in "atom-ish" units, comparable against the naive
  /// scan's predicate evaluations.
  std::uint64_t work() const noexcept {
    return lane_searches + atom_visits + candidate_checks + fallback_evals +
           matches;
  }
};

class PredicateIndex {
 public:
  struct Options {
    /// DNF expansion budget per subscription; predicates that would expand
    /// into more clauses than this are evaluated via the scan bucket.
    std::size_t max_clauses = 32;
  };

  PredicateIndex() = default;
  explicit PredicateIndex(Options opts) : opts_(opts) {}

  /// Indexes `pred` under `id`. Precondition: `id` not already present.
  void add(SubscriptionId id, PredicatePtr pred);
  void add(SubscriptionId id, const Subscription& sub) {
    add(id, sub.predicate());
  }

  /// Removes a subscription; false when `id` is unknown. Removal is O(its
  /// clause count) — lane entries die lazily and are compacted (full
  /// rebuild) once dead clauses outnumber live ones.
  bool remove(SubscriptionId id);

  /// Ids of all subscriptions whose predicate matches `e`, ascending.
  void match(const Event& e, std::vector<SubscriptionId>& out) const;
  std::vector<SubscriptionId> match(const Event& e) const {
    std::vector<SubscriptionId> out;
    match(e, out);
    return out;
  }

  std::size_t size() const noexcept { return live_; }
  /// Subscriptions in the budget-exceeded scan bucket (subset of size()).
  std::size_t scan_bucket_size() const noexcept { return scan_live_; }

  const IndexCounters& counters() const noexcept { return counters_; }
  void reset_counters() noexcept { counters_ = IndexCounters{}; }

  /// Output-sensitive interval stabbing: which stored intervals contain x?
  /// A centered interval tree (rebuilt lazily after mutation): each node
  /// keeps the intervals containing its center, sorted by lower bound
  /// ascending and upper bound descending, so a query walks one root-to-leaf
  /// path and scans only actual hits — O(log n + hits).
  class IntervalLane {
   public:
    /// Precondition: !iv.empty().
    void add(const Interval& iv, std::uint32_t clause) {
      entries_.push_back({iv, clause});
      built_ = false;
    }
    bool empty() const noexcept { return entries_.empty(); }
    std::size_t size() const noexcept { return entries_.size(); }

    /// Calls hit(clause) for every interval containing x. x must not be NaN.
    template <typename Fn>
    void stab(double x, Fn&& hit) const {
      if (!built_) build();
      std::int32_t n = root_;
      while (n >= 0) {
        const Node& node = nodes_[n];
        if (x == node.center) {  // every interval stored here contains center
          for (const std::uint32_t i : node.by_lo) hit(entries_[i].clause);
          return;
        }
        if (x < node.center) {
          // Stored intervals reach past center > x on the right; stabbed
          // iff the lower bound admits x — a prefix of by_lo.
          for (const std::uint32_t i : node.by_lo) {
            const Interval& iv = entries_[i].iv;
            if (iv.lo_open ? iv.lo >= x : iv.lo > x) break;
            hit(entries_[i].clause);
          }
          n = node.left;
        } else {
          for (const std::uint32_t i : node.by_hi) {
            const Interval& iv = entries_[i].iv;
            if (iv.hi_open ? iv.hi <= x : iv.hi < x) break;
            hit(entries_[i].clause);
          }
          n = node.right;
        }
      }
    }

   private:
    struct Entry {
      Interval iv;
      std::uint32_t clause = 0;
    };
    struct Node {
      double center = 0;
      std::int32_t left = -1;
      std::int32_t right = -1;
      std::vector<std::uint32_t> by_lo;  // (lo asc, closed before open)
      std::vector<std::uint32_t> by_hi;  // (hi desc, closed before open)
    };

    void build() const;
    std::int32_t build_node(std::vector<std::uint32_t>& idxs) const;

    std::vector<Entry> entries_;
    mutable std::vector<Node> nodes_;
    mutable std::int32_t root_ = -1;
    mutable bool built_ = true;  // empty tree is trivially built
  };

 private:
  struct StrRangeEntry {
    std::string key;
    std::uint8_t strict = 0;
    std::uint32_t clause = 0;
  };
  struct NeEntry {
    Value value;
    std::uint32_t clause = 0;
  };
  struct NegEntry {  // negated atom: default-credited, revoked when op holds
    CmpOp op = CmpOp::Eq;
    Value value;
    std::uint32_t clause = 0;
  };

  struct Lanes {
    std::unordered_map<double, std::vector<std::uint32_t>> eq_num;
    std::unordered_map<std::string, std::vector<std::uint32_t>> eq_str;
    IntervalLane interval;                // fused numeric ordered atoms
    std::vector<StrRangeEntry> str_lower;
    std::vector<StrRangeEntry> str_upper;
    std::vector<NeEntry> ne;
    std::vector<NegEntry> neg;
    bool sorted = true;  // string bound lanes sort lazily on first match()
  };

  struct SubRec {
    SubscriptionId id = 0;
    PredicatePtr pred;
    std::vector<std::uint32_t> clauses;
    bool scan = false;
    bool live = false;
  };

  struct ConjAtom {
    const Predicate* cmp = nullptr;  // kind() == Compare
    bool negated = false;
  };

  void add_internal(SubscriptionId id, PredicatePtr pred);
  bool decompose(const PredicatePtr& p, bool negated,
                 std::vector<std::vector<ConjAtom>>& out) const;
  void install_clause(std::uint32_t handle,
                      const std::vector<ConjAtom>& atoms);
  void insert_atom(std::uint32_t clause, const Predicate& cmp, bool negated);
  void maybe_compact();
  void match_attribute(const std::string& name, const Value& v) const;
  void credit(std::uint32_t clause, int delta) const;
  void report(std::uint32_t handle, std::vector<SubscriptionId>& out) const;
  void ensure_sorted(Lanes& lanes) const;
  void begin_event() const;

  Options opts_;

  std::vector<SubRec> subs_;
  std::vector<std::uint32_t> free_handles_;
  std::unordered_map<SubscriptionId, std::uint32_t> by_id_;
  std::vector<std::uint32_t> scan_handles_;  // lazily pruned

  // Clause state (SoA; indexed by clause id).
  std::vector<std::uint32_t> clause_owner_;
  std::vector<std::uint32_t> clause_needed_;
  std::vector<std::uint32_t> clause_neg_;
  std::vector<std::uint8_t> clause_live_;
  std::vector<std::uint32_t> always_;    // needed == 0 (wildcard clauses)
  std::vector<std::uint32_t> neg_only_;  // needed == neg > 0: can match untouched

  mutable std::unordered_map<std::string, Lanes> lanes_;

  std::size_t live_ = 0;
  std::size_t scan_live_ = 0;
  std::size_t live_clauses_ = 0;
  std::size_t dead_clauses_ = 0;
  std::size_t dead_scan_ = 0;

  // Epoch-stamped match scratch (mutable: match() is logically const).
  mutable std::vector<int> credit_;
  mutable std::vector<std::uint32_t> credit_epoch_;
  mutable std::vector<std::uint32_t> owner_epoch_;
  mutable std::vector<std::uint32_t> touched_;
  mutable std::uint32_t epoch_ = 0;
  mutable IndexCounters counters_;
};

/// Which matcher a subscription path runs on.
enum class MatcherKind {
  IndexLanes,  ///< PredicateIndex (sublinear)
  NaiveScan,   ///< Predicate::match per subscription — the oracle
};

/// The seam between subscription storage and match strategy. NaiveScan is
/// the reference semantics (a literal loop over Predicate::match);
/// IndexLanes must be indistinguishable from it on any event stream.
class SubscriptionMatcher {
 public:
  explicit SubscriptionMatcher(MatcherKind kind,
                               PredicateIndex::Options opts = {})
      : kind_(kind), index_(opts) {}

  MatcherKind kind() const noexcept { return kind_; }

  void add(SubscriptionId id, PredicatePtr pred);
  void add(SubscriptionId id, const Subscription& sub) {
    add(id, sub.predicate());
  }
  bool remove(SubscriptionId id);
  std::size_t size() const noexcept;

  /// Matching ids, ascending — identical across kinds by construction.
  void match(const Event& e, std::vector<SubscriptionId>& out) const;
  std::vector<SubscriptionId> match(const Event& e) const {
    std::vector<SubscriptionId> out;
    match(e, out);
    return out;
  }

  /// Work units consumed so far: naive predicate evaluations, or
  /// IndexCounters::work() for the index — the machine-independent basis of
  /// the bench gate.
  std::uint64_t work_units() const noexcept;

  /// Non-null only for MatcherKind::IndexLanes.
  const PredicateIndex* index() const noexcept {
    return kind_ == MatcherKind::IndexLanes ? &index_ : nullptr;
  }

 private:
  MatcherKind kind_;
  PredicateIndex index_;
  std::vector<std::pair<SubscriptionId, PredicatePtr>> naive_;  // id-sorted
  mutable std::uint64_t naive_work_ = 0;
};

}  // namespace pmc

// Recursive-descent parser for the textual interest language.
//
//   expr        := or
//   or          := and ( "||" and )*
//   and         := unary ( "&&" unary )*
//   unary       := "!" unary | primary
//   primary     := "(" expr ")" | "true" | "false" | chain
//   chain       := operand ( cmpop operand )+      (chains conjoin pairwise,
//                                                   e.g. "10.0 < c < 220.0")
//   operand     := identifier | literal
//   cmpop       := "==" | "=" | "!=" | "<" | "<=" | ">" | ">="
//   literal     := integer | float | '"' chars '"'
//
// Each comparison must relate exactly one attribute to one literal
// (either side). Throws std::invalid_argument with position info on error.
#pragma once

#include <string_view>

#include "filter/predicate.hpp"

namespace pmc {

PredicatePtr parse_predicate(std::string_view text);

}  // namespace pmc

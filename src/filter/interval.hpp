// Numeric intervals and disjoint interval sets.
//
// Interval sets are the workhorse of *interest regrouping* (paper Sec. 2.3):
// the union of many single-attribute range subscriptions (e.g. "c > 155.6",
// "10.0 < c < 220.0") collapses into a small sorted set of disjoint
// intervals, which both shrinks the delegate's view tables and makes
// matching a binary search instead of a linear scan over subscriptions.
#pragma once

#include <limits>
#include <string>
#include <vector>

namespace pmc {

/// A (possibly half-open, possibly unbounded) interval over doubles.
struct Interval {
  double lo = -std::numeric_limits<double>::infinity();
  double hi = std::numeric_limits<double>::infinity();
  bool lo_open = false;  ///< true: (lo, ...  false: [lo, ...
  bool hi_open = false;  ///< true: ..., hi)  false: ..., hi]

  static Interval all() { return {}; }
  static Interval at_least(double lo, bool open = false) {
    return {lo, std::numeric_limits<double>::infinity(), open, false};
  }
  static Interval at_most(double hi, bool open = false) {
    return {-std::numeric_limits<double>::infinity(), hi, false, open};
  }
  static Interval point(double x) { return {x, x, false, false}; }
  static Interval closed(double lo, double hi) { return {lo, hi, false, false}; }
  static Interval open(double lo, double hi) { return {lo, hi, true, true}; }
  /// [lo, hi) — the shape used by the uniform-interest workload.
  static Interval half_open(double lo, double hi) {
    return {lo, hi, false, true};
  }

  bool contains(double x) const noexcept {
    if (lo_open ? x <= lo : x < lo) return false;
    if (hi_open ? x >= hi : x > hi) return false;
    return true;
  }

  /// True when no double satisfies the interval.
  bool empty() const noexcept {
    if (lo > hi) return true;
    return lo == hi && (lo_open || hi_open);
  }

  bool unbounded_below() const noexcept {
    return lo == -std::numeric_limits<double>::infinity();
  }
  bool unbounded_above() const noexcept {
    return hi == std::numeric_limits<double>::infinity();
  }

  /// Set intersection; may be empty.
  Interval intersect(const Interval& o) const noexcept;

  /// True iff this interval contains every point of o.
  bool covers(const Interval& o) const noexcept;

  /// True iff the union of the two intervals is a single interval
  /// (they overlap or touch at a shared closed endpoint).
  bool mergeable(const Interval& o) const noexcept;

  /// Union of two mergeable intervals. Precondition: mergeable(o).
  Interval merge(const Interval& o) const noexcept;

  friend bool operator==(const Interval&, const Interval&) = default;

  std::string to_string() const;
};

/// A set of pairwise disjoint, non-mergeable intervals kept sorted by lower
/// bound. Insertion unions; the canonical form makes equality structural.
class IntervalSet {
 public:
  IntervalSet() = default;
  explicit IntervalSet(Interval iv) { insert(iv); }

  void insert(Interval iv);
  void insert_all(const IntervalSet& o);

  bool contains(double x) const noexcept;
  bool empty() const noexcept { return ivs_.empty(); }
  std::size_t size() const noexcept { return ivs_.size(); }

  /// True iff every point of o is contained in this set.
  bool covers(const IntervalSet& o) const noexcept;
  bool covers(const Interval& o) const noexcept;

  /// Smallest single interval containing the whole set (for coarsening).
  /// Precondition: !empty().
  Interval bounding() const;

  /// True iff the set contains every double (single (-inf, +inf) interval).
  bool is_all() const noexcept {
    return ivs_.size() == 1 && ivs_[0].unbounded_below() &&
           ivs_[0].unbounded_above();
  }

  const std::vector<Interval>& intervals() const noexcept { return ivs_; }

  friend bool operator==(const IntervalSet&, const IntervalSet&) = default;

  std::string to_string() const;

 private:
  std::vector<Interval> ivs_;
};

}  // namespace pmc

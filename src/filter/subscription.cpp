#include "filter/subscription.hpp"

#include "filter/parser.hpp"

namespace pmc {

Subscription Subscription::parse(std::string_view text) {
  return Subscription(parse_predicate(text));
}

}  // namespace pmc

#include "filter/index.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <utility>

#include "common/contract.hpp"

namespace pmc {

namespace {

// compare_values treats -0.0 == +0.0; hash lanes must agree on one key.
inline double norm_key(double x) { return x == 0.0 ? 0.0 : x; }

// A point guaranteed to be contained in the (non-empty) interval — the
// split pivot of the interval tree. nextafter handles open rays whose only
// finite endpoint is excluded.
double inner_point(const Interval& iv) {
  const bool lo_inf = iv.unbounded_below();
  const bool hi_inf = iv.unbounded_above();
  if (lo_inf && hi_inf) return 0.0;
  if (hi_inf)
    return iv.lo_open ? std::nextafter(iv.lo,
                                       std::numeric_limits<double>::infinity())
                      : iv.lo;
  if (lo_inf)
    return iv.hi_open ? std::nextafter(iv.hi,
                                       -std::numeric_limits<double>::infinity())
                      : iv.hi;
  if (iv.lo == iv.hi) return iv.lo;  // non-empty => closed point
  return iv.lo / 2 + iv.hi / 2;      // halved first: no overflow to inf
}

}  // namespace

// ---------------------------------------------------------------------------
// IntervalLane: centered interval tree

void PredicateIndex::IntervalLane::build() const {
  nodes_.clear();
  root_ = -1;
  std::vector<std::uint32_t> idxs(entries_.size());
  for (std::uint32_t i = 0; i < idxs.size(); ++i) idxs[i] = i;
  root_ = build_node(idxs);
  built_ = true;
}

std::int32_t PredicateIndex::IntervalLane::build_node(
    std::vector<std::uint32_t>& idxs) const {
  if (idxs.empty()) return -1;
  // Median of inner points: the median interval itself contains the chosen
  // center, so the node set is never empty and both sides strictly shrink.
  std::vector<double> points;
  points.reserve(idxs.size());
  for (const std::uint32_t i : idxs) points.push_back(inner_point(entries_[i].iv));
  const auto mid = points.begin() + static_cast<std::ptrdiff_t>(points.size() / 2);
  std::nth_element(points.begin(), mid, points.end());
  const double center = *mid;

  std::vector<std::uint32_t> left, right, here;
  for (const std::uint32_t i : idxs) {
    const Interval& iv = entries_[i].iv;
    if (iv.hi_open ? iv.hi <= center : iv.hi < center)
      left.push_back(i);  // entirely below center
    else if (iv.lo_open ? iv.lo >= center : iv.lo > center)
      right.push_back(i);  // entirely above center
    else
      here.push_back(i);  // contains center
  }
  idxs.clear();
  idxs.shrink_to_fit();

  const auto n = static_cast<std::int32_t>(nodes_.size());
  nodes_.emplace_back();
  {
    Node& node = nodes_[static_cast<std::size_t>(n)];
    node.center = center;
    node.by_lo = here;
    node.by_hi = std::move(here);
    std::sort(node.by_lo.begin(), node.by_lo.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const Interval& x = entries_[a].iv;
                const Interval& y = entries_[b].iv;
                return x.lo < y.lo || (x.lo == y.lo && x.lo_open < y.lo_open);
              });
    std::sort(node.by_hi.begin(), node.by_hi.end(),
              [this](std::uint32_t a, std::uint32_t b) {
                const Interval& x = entries_[a].iv;
                const Interval& y = entries_[b].iv;
                return x.hi > y.hi || (x.hi == y.hi && x.hi_open < y.hi_open);
              });
  }
  // nodes_ may reallocate during recursion: write children after returning.
  const std::int32_t l = build_node(left);
  const std::int32_t r = build_node(right);
  nodes_[static_cast<std::size_t>(n)].left = l;
  nodes_[static_cast<std::size_t>(n)].right = r;
  return n;
}

// ---------------------------------------------------------------------------
// Decomposition

bool PredicateIndex::decompose(const PredicatePtr& p, bool negated,
                               std::vector<std::vector<ConjAtom>>& out) const {
  const std::size_t budget = opts_.max_clauses;
  switch (p->kind()) {
    case Predicate::Kind::True:
      if (!negated) out.push_back({});  // one empty clause == always
      return out.size() <= budget;
    case Predicate::Kind::False:
      if (negated) out.push_back({});  // !(false) == always; false == no clause
      return out.size() <= budget;
    case Predicate::Kind::Compare:
      out.push_back({ConjAtom{p.get(), negated}});
      return out.size() <= budget;
    case Predicate::Kind::Not:
      return decompose(p->child(), !negated, out);
    case Predicate::Kind::And:
    case Predicate::Kind::Or: {
      // De Morgan at the decomposition level: !And is a disjunction of the
      // negated children, !Or a conjunction.
      const bool conjunctive = (p->kind() == Predicate::Kind::And) != negated;
      if (!conjunctive) {
        for (const auto& child : p->children())
          if (!decompose(child, negated, out)) return false;
        return out.size() <= budget;
      }
      // Conjunction: cross product of the children's clause lists.
      std::vector<std::vector<ConjAtom>> acc;
      acc.push_back({});
      for (const auto& child : p->children()) {
        std::vector<std::vector<ConjAtom>> cl;
        if (!decompose(child, negated, cl)) return false;
        if (acc.size() * cl.size() > budget) return false;
        std::vector<std::vector<ConjAtom>> next;
        next.reserve(acc.size() * cl.size());
        for (const auto& a : acc)
          for (const auto& b : cl) {
            auto merged = a;
            merged.insert(merged.end(), b.begin(), b.end());
            next.push_back(std::move(merged));
          }
        acc = std::move(next);
      }
      for (auto& cl : acc) out.push_back(std::move(cl));
      return out.size() <= budget;
    }
  }
  return false;  // unreachable
}

void PredicateIndex::insert_atom(std::uint32_t clause, const Predicate& cmp,
                                 bool negated) {
  Lanes& lanes = lanes_[cmp.attr()];
  if (negated) {
    lanes.neg.push_back({cmp.op(), cmp.value(), clause});
    return;
  }
  const Value& v = cmp.value();
  const bool is_str = v.kind() == ValueKind::String;
  switch (cmp.op()) {
    case CmpOp::Eq:
      if (is_str)
        lanes.eq_str[v.as_string()].push_back(clause);
      else
        lanes.eq_num[norm_key(v.as_double())].push_back(clause);
      return;
    case CmpOp::Ne:
      // Kept generic: cross-kind values satisfy Ne, so a hash lane keyed by
      // one kind cannot represent it.
      lanes.ne.push_back({v, clause});
      return;
    case CmpOp::Gt:
    case CmpOp::Ge: {
      // Numeric ordered atoms are fused into interval-lane entries by
      // install_clause; only string bounds land here.
      PMC_EXPECTS(is_str);
      const auto strict = static_cast<std::uint8_t>(cmp.op() == CmpOp::Gt);
      lanes.str_lower.push_back({v.as_string(), strict, clause});
      lanes.sorted = false;
      return;
    }
    case CmpOp::Lt:
    case CmpOp::Le: {
      PMC_EXPECTS(is_str);
      const auto strict = static_cast<std::uint8_t>(cmp.op() == CmpOp::Lt);
      lanes.str_upper.push_back({v.as_string(), strict, clause});
      lanes.sorted = false;
      return;
    }
  }
}

void PredicateIndex::install_clause(std::uint32_t handle,
                                    const std::vector<ConjAtom>& atoms) {
  // Two jobs before any state is written:
  //  * fuse all positive numeric ordered atoms on one attribute into a
  //    single Interval (credited once by the stab lane), and
  //  * detect clauses that can never hold — a positive Eq/ordered
  //    comparison against NaN, or contradictory bounds (empty fusion) —
  //    and drop them entirely. Positive Ne and negated atoms are kept
  //    as-is: their lanes evaluate compare_values, NaN included.
  std::vector<std::pair<const std::string*, Interval>> fused;
  std::uint32_t units = 0;  // atoms as counted by the matcher
  std::uint32_t neg = 0;
  for (const auto& a : atoms) {
    if (a.negated) {
      ++neg;
      ++units;
      continue;
    }
    const Value& v = a.cmp->value();
    const bool is_str = v.kind() == ValueKind::String;
    const CmpOp op = a.cmp->op();
    if (!is_str && op != CmpOp::Eq && op != CmpOp::Ne) {
      const double b = v.as_double();
      if (std::isnan(b)) return;  // x <op> NaN never holds
      const Interval iv = op == CmpOp::Gt   ? Interval::at_least(b, true)
                          : op == CmpOp::Ge ? Interval::at_least(b)
                          : op == CmpOp::Lt ? Interval::at_most(b, true)
                                            : Interval::at_most(b);
      const auto it =
          std::find_if(fused.begin(), fused.end(), [&a](const auto& f) {
            return *f.first == a.cmp->attr();
          });
      if (it == fused.end())
        fused.emplace_back(&a.cmp->attr(), iv);
      else
        it->second = it->second.intersect(iv);
      continue;
    }
    if (!is_str && op == CmpOp::Eq && std::isnan(v.as_double())) return;
    ++units;
  }
  for (const auto& f : fused) {
    if (f.second.empty()) return;  // contradictory bounds
    ++units;
  }

  const auto clause = static_cast<std::uint32_t>(clause_owner_.size());
  clause_owner_.push_back(handle);
  clause_needed_.push_back(units);
  clause_neg_.push_back(neg);
  clause_live_.push_back(1);
  subs_[handle].clauses.push_back(clause);
  ++live_clauses_;
  if (units == 0)
    always_.push_back(clause);
  else if (neg == units)
    neg_only_.push_back(clause);  // all-default credit: can match untouched
  for (const auto& a : atoms) {
    const bool fused_away = !a.negated &&
                            a.cmp->value().kind() != ValueKind::String &&
                            a.cmp->op() != CmpOp::Eq && a.cmp->op() != CmpOp::Ne;
    if (!fused_away) insert_atom(clause, *a.cmp, a.negated);
  }
  for (const auto& f : fused) lanes_[*f.first].interval.add(f.second, clause);
}

// ---------------------------------------------------------------------------
// Mutation

void PredicateIndex::add(SubscriptionId id, PredicatePtr pred) {
  maybe_compact();
  add_internal(id, std::move(pred));
}

void PredicateIndex::add_internal(SubscriptionId id, PredicatePtr pred) {
  PMC_EXPECTS(pred != nullptr);
  PMC_EXPECTS(by_id_.find(id) == by_id_.end());
  std::uint32_t handle;
  if (!free_handles_.empty()) {
    handle = free_handles_.back();
    free_handles_.pop_back();
  } else {
    handle = static_cast<std::uint32_t>(subs_.size());
    subs_.emplace_back();
  }
  SubRec& rec = subs_[handle];
  rec.id = id;
  rec.pred = std::move(pred);
  rec.live = true;
  rec.scan = false;
  rec.clauses.clear();
  by_id_.emplace(id, handle);
  ++live_;

  std::vector<std::vector<ConjAtom>> clauses;
  if (!decompose(rec.pred, false, clauses)) {
    // DNF budget exceeded: correct-but-linear fallback.
    rec.scan = true;
    ++scan_live_;
    scan_handles_.push_back(handle);
    return;
  }
  for (const auto& cl : clauses) install_clause(handle, cl);
}

bool PredicateIndex::remove(SubscriptionId id) {
  const auto it = by_id_.find(id);
  if (it == by_id_.end()) return false;
  const std::uint32_t handle = it->second;
  by_id_.erase(it);
  SubRec& rec = subs_[handle];
  rec.live = false;
  --live_;
  if (rec.scan) {
    rec.scan = false;
    --scan_live_;
    ++dead_scan_;
  }
  for (const std::uint32_t c : rec.clauses) {
    clause_live_[c] = 0;
    --live_clauses_;
    ++dead_clauses_;
  }
  rec.clauses.clear();
  rec.pred.reset();
  free_handles_.push_back(handle);
  maybe_compact();
  return true;
}

void PredicateIndex::maybe_compact() {
  if (dead_clauses_ <= live_clauses_ + 64 && dead_scan_ <= scan_live_ + 64)
    return;
  std::vector<std::pair<SubscriptionId, PredicatePtr>> keep;
  keep.reserve(live_);
  for (const auto& rec : subs_)
    if (rec.live) keep.emplace_back(rec.id, rec.pred);
  subs_.clear();
  free_handles_.clear();
  by_id_.clear();
  scan_handles_.clear();
  clause_owner_.clear();
  clause_needed_.clear();
  clause_neg_.clear();
  clause_live_.clear();
  always_.clear();
  neg_only_.clear();
  lanes_.clear();
  live_ = scan_live_ = live_clauses_ = dead_clauses_ = dead_scan_ = 0;
  credit_.clear();
  credit_epoch_.clear();
  owner_epoch_.clear();
  touched_.clear();
  epoch_ = 0;
  for (auto& [id, pred] : keep) add_internal(id, std::move(pred));
}

// ---------------------------------------------------------------------------
// Matching

void PredicateIndex::begin_event() const {
  const std::size_t nclauses = clause_owner_.size();
  if (credit_.size() < nclauses) {
    credit_.resize(nclauses, 0);
    credit_epoch_.resize(nclauses, 0);
  }
  if (owner_epoch_.size() < subs_.size()) owner_epoch_.resize(subs_.size(), 0);
  ++epoch_;
  if (epoch_ == 0) {  // wraparound: stamps from 2^32 events ago are garbage
    std::fill(credit_epoch_.begin(), credit_epoch_.end(), 0u);
    std::fill(owner_epoch_.begin(), owner_epoch_.end(), 0u);
    epoch_ = 1;
  }
  touched_.clear();
}

void PredicateIndex::credit(std::uint32_t clause, int delta) const {
  if (credit_epoch_[clause] != epoch_) {
    credit_epoch_[clause] = epoch_;
    // Baseline: every negated atom starts credited and is revoked when its
    // positive comparison holds on this event.
    credit_[clause] = static_cast<int>(clause_neg_[clause]);
    touched_.push_back(clause);
  }
  credit_[clause] += delta;
}

void PredicateIndex::report(std::uint32_t handle,
                            std::vector<SubscriptionId>& out) const {
  if (owner_epoch_[handle] == epoch_) return;  // another clause already fired
  owner_epoch_[handle] = epoch_;
  out.push_back(subs_[handle].id);
  ++counters_.matches;
}

void PredicateIndex::ensure_sorted(Lanes& lanes) const {
  if (lanes.sorted) return;
  // Lower bounds: (key asc, closed before strict) makes satisfied atoms a
  // prefix for any probe. Upper bounds mirrored: (key asc, strict before
  // closed) makes them a suffix.
  std::sort(lanes.str_lower.begin(), lanes.str_lower.end(),
            [](const StrRangeEntry& a, const StrRangeEntry& b) {
              return a.key < b.key || (a.key == b.key && a.strict < b.strict);
            });
  std::sort(lanes.str_upper.begin(), lanes.str_upper.end(),
            [](const StrRangeEntry& a, const StrRangeEntry& b) {
              return a.key < b.key || (a.key == b.key && a.strict > b.strict);
            });
  lanes.sorted = true;
}

void PredicateIndex::match_attribute(const std::string& name,
                                     const Value& v) const {
  const auto it = lanes_.find(name);
  if (it == lanes_.end()) return;
  Lanes& lanes = it->second;
  ++counters_.lane_searches;

  if (v.kind() == ValueKind::String) {
    const std::string& s = v.as_string();
    if (const auto eq = lanes.eq_str.find(s); eq != lanes.eq_str.end()) {
      for (const std::uint32_t c : eq->second) {
        ++counters_.atom_visits;
        credit(c, +1);
      }
    }
    ensure_sorted(lanes);
    const auto lo_end = std::partition_point(
        lanes.str_lower.begin(), lanes.str_lower.end(),
        [&s](const StrRangeEntry& e) {
          return e.key < s || (e.key == s && !e.strict);
        });
    for (auto p = lanes.str_lower.begin(); p != lo_end; ++p) {
      ++counters_.atom_visits;
      credit(p->clause, +1);
    }
    const auto hi_begin = std::partition_point(
        lanes.str_upper.begin(), lanes.str_upper.end(),
        [&s](const StrRangeEntry& e) {
          return e.key < s || (e.key == s && e.strict);
        });
    for (auto p = hi_begin; p != lanes.str_upper.end(); ++p) {
      ++counters_.atom_visits;
      credit(p->clause, +1);
    }
  } else {
    const double x = v.as_double();
    // NaN satisfies no Eq/ordered comparison: skip those lanes entirely
    // (exactly what compare_values would conclude per atom). Ne and negated
    // atoms below use compare_values and handle NaN themselves.
    if (!std::isnan(x)) {
      if (const auto eq = lanes.eq_num.find(norm_key(x));
          eq != lanes.eq_num.end()) {
        for (const std::uint32_t c : eq->second) {
          ++counters_.atom_visits;
          credit(c, +1);
        }
      }
      lanes.interval.stab(x, [this](std::uint32_t c) {
        ++counters_.atom_visits;
        credit(c, +1);
      });
    }
  }

  for (const NeEntry& e : lanes.ne) {
    ++counters_.atom_visits;
    if (compare_values(v, CmpOp::Ne, e.value)) credit(e.clause, +1);
  }
  for (const NegEntry& e : lanes.neg) {
    ++counters_.atom_visits;
    if (compare_values(v, e.op, e.value)) credit(e.clause, -1);
  }
}

void PredicateIndex::match(const Event& e,
                           std::vector<SubscriptionId>& out) const {
  out.clear();
  ++counters_.events;
  begin_event();

  for (const auto& attr : e.attributes()) match_attribute(attr.name, attr.value);

  for (const std::uint32_t c : touched_) {
    ++counters_.candidate_checks;
    if (clause_live_[c] && credit_[c] == static_cast<int>(clause_needed_[c]))
      report(clause_owner_[c], out);
  }
  // Wildcard clauses and all-negated clauses can fire without any lane
  // visit, so they are checked every event.
  for (const std::uint32_t c : always_) {
    ++counters_.candidate_checks;
    if (clause_live_[c]) report(clause_owner_[c], out);
  }
  for (const std::uint32_t c : neg_only_) {
    ++counters_.candidate_checks;
    if (!clause_live_[c]) continue;
    const int cr = credit_epoch_[c] == epoch_
                       ? credit_[c]
                       : static_cast<int>(clause_neg_[c]);
    if (cr == static_cast<int>(clause_needed_[c])) report(clause_owner_[c], out);
  }
  for (const std::uint32_t h : scan_handles_) {
    const SubRec& rec = subs_[h];
    if (!rec.live || !rec.scan) continue;
    ++counters_.fallback_evals;
    if (rec.pred->match(e)) report(h, out);
  }

  std::sort(out.begin(), out.end());
}

// ---------------------------------------------------------------------------
// SubscriptionMatcher seam

void SubscriptionMatcher::add(SubscriptionId id, PredicatePtr pred) {
  if (kind_ == MatcherKind::IndexLanes) {
    index_.add(id, std::move(pred));
    return;
  }
  PMC_EXPECTS(pred != nullptr);
  const auto it = std::lower_bound(
      naive_.begin(), naive_.end(), id,
      [](const auto& e, SubscriptionId v) { return e.first < v; });
  PMC_EXPECTS(it == naive_.end() || it->first != id);
  naive_.emplace(it, id, std::move(pred));
}

bool SubscriptionMatcher::remove(SubscriptionId id) {
  if (kind_ == MatcherKind::IndexLanes) return index_.remove(id);
  const auto it = std::lower_bound(
      naive_.begin(), naive_.end(), id,
      [](const auto& e, SubscriptionId v) { return e.first < v; });
  if (it == naive_.end() || it->first != id) return false;
  naive_.erase(it);
  return true;
}

std::size_t SubscriptionMatcher::size() const noexcept {
  return kind_ == MatcherKind::IndexLanes ? index_.size() : naive_.size();
}

void SubscriptionMatcher::match(const Event& e,
                                std::vector<SubscriptionId>& out) const {
  if (kind_ == MatcherKind::IndexLanes) {
    index_.match(e, out);
    return;
  }
  // The oracle: one Predicate::match per subscription, ids already sorted.
  out.clear();
  for (const auto& [id, pred] : naive_) {
    ++naive_work_;
    if (pred->match(e)) out.push_back(id);
  }
}

std::uint64_t SubscriptionMatcher::work_units() const noexcept {
  return kind_ == MatcherKind::IndexLanes ? index_.counters().work()
                                          : naive_work_;
}

}  // namespace pmc

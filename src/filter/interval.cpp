#include "filter/interval.hpp"

#include <algorithm>
#include <sstream>

#include "common/contract.hpp"

namespace pmc {

namespace {

/// Orders lower bounds: a closed bound at x precedes an open bound at x.
bool lo_less(double a_lo, bool a_open, double b_lo, bool b_open) {
  if (a_lo != b_lo) return a_lo < b_lo;
  return !a_open && b_open;
}

/// Orders upper bounds: an open bound at x precedes a closed bound at x.
bool hi_less(double a_hi, bool a_open, double b_hi, bool b_open) {
  if (a_hi != b_hi) return a_hi < b_hi;
  return a_open && !b_open;
}

}  // namespace

Interval Interval::intersect(const Interval& o) const noexcept {
  Interval r = *this;
  if (lo_less(r.lo, r.lo_open, o.lo, o.lo_open)) {
    r.lo = o.lo;
    r.lo_open = o.lo_open;
  }
  if (hi_less(o.hi, o.hi_open, r.hi, r.hi_open)) {
    r.hi = o.hi;
    r.hi_open = o.hi_open;
  }
  return r;
}

bool Interval::covers(const Interval& o) const noexcept {
  if (o.empty()) return true;
  if (empty()) return false;
  const bool lo_ok = !lo_less(o.lo, o.lo_open, lo, lo_open);
  const bool hi_ok = !hi_less(hi, hi_open, o.hi, o.hi_open);
  return lo_ok && hi_ok;
}

bool Interval::mergeable(const Interval& o) const noexcept {
  if (empty() || o.empty()) return true;
  // Sort so a starts no later than b.
  const Interval& a = lo_less(lo, lo_open, o.lo, o.lo_open) ? *this : o;
  const Interval& b = (&a == this) ? o : *this;
  // Disjoint iff a ends strictly before b starts with a gap: either
  // a.hi < b.lo, or a.hi == b.lo with both bounds open (the point escapes).
  if (a.hi < b.lo) return false;
  if (a.hi == b.lo && a.hi_open && b.lo_open) return false;
  return true;
}

Interval Interval::merge(const Interval& o) const noexcept {
  if (empty()) return o;
  if (o.empty()) return *this;
  Interval r = *this;
  if (lo_less(o.lo, o.lo_open, r.lo, r.lo_open)) {
    r.lo = o.lo;
    r.lo_open = o.lo_open;
  }
  if (hi_less(r.hi, r.hi_open, o.hi, o.hi_open)) {
    r.hi = o.hi;
    r.hi_open = o.hi_open;
  }
  return r;
}

std::string Interval::to_string() const {
  std::ostringstream os;
  os << (lo_open ? '(' : '[') << lo << ", " << hi << (hi_open ? ')' : ']');
  return os.str();
}

void IntervalSet::insert(Interval iv) {
  if (iv.empty()) return;
  std::vector<Interval> out;
  out.reserve(ivs_.size() + 1);
  bool placed = false;
  for (const auto& cur : ivs_) {
    if (iv.mergeable(cur)) {
      iv = iv.merge(cur);
    } else if (lo_less(cur.lo, cur.lo_open, iv.lo, iv.lo_open)) {
      out.push_back(cur);
    } else {
      if (!placed) {
        out.push_back(iv);
        placed = true;
      }
      out.push_back(cur);
    }
  }
  if (!placed) out.push_back(iv);
  ivs_ = std::move(out);
}

void IntervalSet::insert_all(const IntervalSet& o) {
  for (const auto& iv : o.ivs_) insert(iv);
}

bool IntervalSet::contains(double x) const noexcept {
  // Binary search on lower bounds, then check the candidate interval.
  auto it = std::upper_bound(
      ivs_.begin(), ivs_.end(), x,
      [](double v, const Interval& iv) { return v < iv.lo; });
  if (it == ivs_.begin()) return false;
  return std::prev(it)->contains(x);
}

bool IntervalSet::covers(const Interval& o) const noexcept {
  if (o.empty()) return true;
  // Canonical form: disjoint, non-mergeable intervals. A single interval o is
  // covered iff some one member covers it (a gap otherwise leaks a point).
  return std::any_of(ivs_.begin(), ivs_.end(),
                     [&](const Interval& iv) { return iv.covers(o); });
}

bool IntervalSet::covers(const IntervalSet& o) const noexcept {
  return std::all_of(o.ivs_.begin(), o.ivs_.end(),
                     [&](const Interval& iv) { return covers(iv); });
}

Interval IntervalSet::bounding() const {
  PMC_EXPECTS(!ivs_.empty());
  Interval r = ivs_.front();
  r.hi = ivs_.back().hi;
  r.hi_open = ivs_.back().hi_open;
  return r;
}

std::string IntervalSet::to_string() const {
  std::ostringstream os;
  os << "{";
  for (std::size_t i = 0; i < ivs_.size(); ++i) {
    if (i) os << " ∪ ";
    os << ivs_[i].to_string();
  }
  os << "}";
  return os.str();
}

}  // namespace pmc

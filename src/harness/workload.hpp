// Workload generators for the experiments.
//
// uniform_interest_members realizes the analysis model of paper Sec. 4.1 —
// "every process in the group is interested with a probability of p_d" —
// with *real* subscriptions: each process subscribes to a wrap-around
// interval of width p_d over a uniform attribute u in [0, 1). For an event
// with u drawn uniformly, each process matches independently with
// probability exactly p_d, while the full filter/regrouping machinery is
// exercised (interval subscriptions regroup into per-attribute interval
// unions in the delegates' tables).
//
// clustered_interest_members gives processes of nearby addresses correlated
// interests (each leaf subgroup is biased towards one region of the
// attribute space) — the favourable case for the tree's locality.
#pragma once

#include <string>
#include <vector>

#include "addr/space.hpp"
#include "common/rng.hpp"
#include "event/event.hpp"
#include "membership/tree.hpp"

namespace pmc {

/// Attribute name used by the generated subscriptions and events.
inline constexpr const char* kUniformAttr = "u";

/// One member per address of the space, each with an interval subscription
/// of width `pd` at a uniform random offset (wrap-around).
std::vector<Member> uniform_interest_members(const AddressSpace& space,
                                             double pd, Rng& rng);

/// Interval subscription of width `pd` starting at `offset` (wrap-around
/// across 1.0 becomes a disjunction of two intervals).
Subscription interval_subscription(double offset, double pd);

/// Member whose subscription depends only on (seed, address) — unlike a
/// shared sequential Rng, adding or removing *other* members never
/// re-shuffles this one's interests. The scenario engine derives every
/// slot's subscription this way so churn stays reproducible.
Member stable_member(const Address& address, double pd, std::uint64_t seed);

/// Members whose interests cluster per leaf subgroup: processes of leaf
/// subgroup k subscribe to an interval of width `pd` centered (with jitter)
/// on that subgroup's slice of [0, 1).
std::vector<Member> clustered_interest_members(const AddressSpace& space,
                                               double pd, double jitter,
                                               Rng& rng);

/// Event with attribute u uniform in [0, 1).
Event make_uniform_event(std::uint64_t publisher, std::uint64_t sequence,
                         Rng& rng);

/// Event with a fixed u (deterministic matching set).
Event make_event_at(std::uint64_t publisher, std::uint64_t sequence,
                    double u);

// ---------------------------------------------------------------------------
// Zipf-skewed content-based subscription workload — the *audience* scale
// axis. Realistic content-based feeds are heavily skewed: a few hot
// attributes/values draw most subscriptions and most events (stock symbols,
// game channels), with a long tail. Attribute choice, equality values and
// event values all follow Zipf ranks so the predicate index is exercised
// under contention on the hot lanes, not a flat uniform best case.

struct ZipfWorkload {
  std::size_t subscriptions = 1000;
  std::size_t numeric_attrs = 4;    ///< "n0".."n3": uniform [0,1) event values
  std::size_t string_attrs = 4;     ///< "s0".."s3": Zipf-ranked categories
  std::size_t values_per_attr = 256;  ///< category universe per string attr
  double skew = 1.1;                ///< Zipf exponent s (rank^-s)
  double range_fraction = 0.5;      ///< P(atom is a numeric range) vs equality
  double or_fraction = 0.1;         ///< P(subscription is a 2-clause disjunction)
  std::size_t atoms_min = 1;        ///< atoms per conjunctive clause
  std::size_t atoms_max = 3;
  double range_width = 0.02;        ///< numeric range selectivity
  std::uint64_t seed = 1;

  void validate() const;
};

/// Precomputed Zipf(s) CDF over ranks 0..n-1; sampling is one uniform draw
/// plus a binary search.
class ZipfRanks {
 public:
  ZipfRanks(std::size_t n, double s);

  std::size_t size() const noexcept { return cdf_.size(); }
  double probability(std::size_t rank) const;
  std::size_t sample(Rng& rng) const;

 private:
  std::vector<double> cdf_;
};

/// Generator over a ZipfWorkload. Subscription i depends only on
/// (config.seed, i) — like stable_member, adding subscriptions never
/// re-shuffles existing ones, so incremental index builds are reproducible.
class ZipfWorkloadGen {
 public:
  explicit ZipfWorkloadGen(ZipfWorkload config);

  const ZipfWorkload& config() const noexcept { return config_; }

  /// The i-th subscription (i in [0, config.subscriptions)).
  Subscription subscription(std::size_t i) const;

  /// An event carrying every attribute: numeric attrs uniform in [0, 1),
  /// string attrs uniform over the catalog (the subscription side carries
  /// the Zipf skew — see event() for why).
  Event event(std::uint64_t publisher, std::uint64_t sequence, Rng& rng) const;

  static std::string numeric_attr(std::size_t i);
  static std::string string_attr(std::size_t i);
  static std::string string_value(std::size_t rank);

 private:
  ZipfWorkload config_;
  ZipfRanks numeric_attr_ranks_;
  ZipfRanks string_attr_ranks_;
  ZipfRanks value_ranks_;
};

}  // namespace pmc

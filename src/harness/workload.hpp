// Workload generators for the experiments.
//
// uniform_interest_members realizes the analysis model of paper Sec. 4.1 —
// "every process in the group is interested with a probability of p_d" —
// with *real* subscriptions: each process subscribes to a wrap-around
// interval of width p_d over a uniform attribute u in [0, 1). For an event
// with u drawn uniformly, each process matches independently with
// probability exactly p_d, while the full filter/regrouping machinery is
// exercised (interval subscriptions regroup into per-attribute interval
// unions in the delegates' tables).
//
// clustered_interest_members gives processes of nearby addresses correlated
// interests (each leaf subgroup is biased towards one region of the
// attribute space) — the favourable case for the tree's locality.
#pragma once

#include <string>
#include <vector>

#include "addr/space.hpp"
#include "common/rng.hpp"
#include "event/event.hpp"
#include "membership/tree.hpp"

namespace pmc {

/// Attribute name used by the generated subscriptions and events.
inline constexpr const char* kUniformAttr = "u";

/// One member per address of the space, each with an interval subscription
/// of width `pd` at a uniform random offset (wrap-around).
std::vector<Member> uniform_interest_members(const AddressSpace& space,
                                             double pd, Rng& rng);

/// Interval subscription of width `pd` starting at `offset` (wrap-around
/// across 1.0 becomes a disjunction of two intervals).
Subscription interval_subscription(double offset, double pd);

/// Member whose subscription depends only on (seed, address) — unlike a
/// shared sequential Rng, adding or removing *other* members never
/// re-shuffles this one's interests. The scenario engine derives every
/// slot's subscription this way so churn stays reproducible.
Member stable_member(const Address& address, double pd, std::uint64_t seed);

/// Members whose interests cluster per leaf subgroup: processes of leaf
/// subgroup k subscribe to an interval of width `pd` centered (with jitter)
/// on that subgroup's slice of [0, 1).
std::vector<Member> clustered_interest_members(const AddressSpace& space,
                                               double pd, double jitter,
                                               Rng& rng);

/// Event with attribute u uniform in [0, 1).
Event make_uniform_event(std::uint64_t publisher, std::uint64_t sequence,
                         Rng& rng);

/// Event with a fixed u (deterministic matching set).
Event make_event_at(std::uint64_t publisher, std::uint64_t sequence,
                    double u);

}  // namespace pmc

#include "harness/workload.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/hash.hpp"

namespace pmc {

Subscription interval_subscription(double offset, double pd) {
  PMC_EXPECTS(pd >= 0.0 && pd <= 1.0);
  PMC_EXPECTS(offset >= 0.0 && offset < 1.0);
  if (pd >= 1.0) return Subscription();  // wildcard
  if (pd <= 0.0) return Subscription(Predicate::never());
  const double hi = offset + pd;
  if (hi <= 1.0) {
    // u >= offset && u < hi
    return Subscription(Predicate::conj(
        {Predicate::compare(kUniformAttr, CmpOp::Ge, Value(offset)),
         Predicate::compare(kUniformAttr, CmpOp::Lt, Value(hi))}));
  }
  // Wrap-around: [offset, 1) ∪ [0, hi-1).
  return Subscription(Predicate::disj(
      {Predicate::compare(kUniformAttr, CmpOp::Ge, Value(offset)),
       Predicate::compare(kUniformAttr, CmpOp::Lt, Value(hi - 1.0))}));
}

Member stable_member(const Address& address, double pd, std::uint64_t seed) {
  // FNV-1a over the components, salted with the seed, feeds a one-shot Rng:
  // fully specified, so the same (seed, address) pair yields the same
  // subscription on every platform.
  std::uint64_t h = kFnv1aBasis ^ seed;
  for (const auto c : address.components()) h = fnv1a_u64(h, c);
  Rng rng(h);
  return Member{address, interval_subscription(rng.next_double(), pd)};
}

std::vector<Member> uniform_interest_members(const AddressSpace& space,
                                             double pd, Rng& rng) {
  std::vector<Member> members;
  const auto addresses = space.enumerate();
  members.reserve(addresses.size());
  for (const auto& a : addresses) {
    members.push_back(
        Member{a, interval_subscription(rng.next_double(), pd)});
  }
  return members;
}

std::vector<Member> clustered_interest_members(const AddressSpace& space,
                                               double pd, double jitter,
                                               Rng& rng) {
  PMC_EXPECTS(jitter >= 0.0 && jitter <= 1.0);
  std::vector<Member> members;
  const auto addresses = space.enumerate();
  members.reserve(addresses.size());
  if (addresses.empty()) return members;

  // Leaf subgroups get evenly spaced base offsets across [0, 1).
  const std::size_t leaf_len = space.depth() - 1;
  std::vector<Prefix> leaf_order;
  for (const auto& a : addresses) {
    const Prefix lp = a.prefix(leaf_len);
    if (leaf_order.empty() || !(leaf_order.back() == lp))
      leaf_order.push_back(lp);
  }
  const auto leaves = static_cast<double>(leaf_order.size());

  std::size_t leaf_idx = 0;
  for (const auto& a : addresses) {
    if (!(a.prefix(leaf_len) == leaf_order[leaf_idx])) ++leaf_idx;
    const double base = static_cast<double>(leaf_idx) / leaves;
    double offset = base + (rng.next_double() - 0.5) * jitter;
    offset -= std::floor(offset);  // wrap into [0, 1)
    members.push_back(Member{a, interval_subscription(offset, pd)});
  }
  return members;
}

Event make_uniform_event(std::uint64_t publisher, std::uint64_t sequence,
                         Rng& rng) {
  return make_event_at(publisher, sequence, rng.next_double());
}

Event make_event_at(std::uint64_t publisher, std::uint64_t sequence,
                    double u) {
  Event e(EventId{publisher, sequence});
  e.with(kUniformAttr, Value(u));
  return e;
}

}  // namespace pmc

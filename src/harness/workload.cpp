#include "harness/workload.hpp"

#include <cmath>

#include "common/contract.hpp"
#include "common/hash.hpp"

namespace pmc {

Subscription interval_subscription(double offset, double pd) {
  PMC_EXPECTS(pd >= 0.0 && pd <= 1.0);
  PMC_EXPECTS(offset >= 0.0 && offset < 1.0);
  if (pd >= 1.0) return Subscription();  // wildcard
  if (pd <= 0.0) return Subscription(Predicate::never());
  const double hi = offset + pd;
  if (hi <= 1.0) {
    // u >= offset && u < hi
    return Subscription(Predicate::conj(
        {Predicate::compare(kUniformAttr, CmpOp::Ge, Value(offset)),
         Predicate::compare(kUniformAttr, CmpOp::Lt, Value(hi))}));
  }
  // Wrap-around: [offset, 1) ∪ [0, hi-1).
  return Subscription(Predicate::disj(
      {Predicate::compare(kUniformAttr, CmpOp::Ge, Value(offset)),
       Predicate::compare(kUniformAttr, CmpOp::Lt, Value(hi - 1.0))}));
}

Member stable_member(const Address& address, double pd, std::uint64_t seed) {
  // FNV-1a over the components, salted with the seed, feeds a one-shot Rng:
  // fully specified, so the same (seed, address) pair yields the same
  // subscription on every platform.
  std::uint64_t h = kFnv1aBasis ^ seed;
  for (const auto c : address.components()) h = fnv1a_u64(h, c);
  // detlint:allow(rng-discipline) documented (seed, address) labeled stream — the fnv1a label IS the make_stream discipline, deployment-size independent
  Rng rng(h);
  return Member{address, interval_subscription(rng.next_double(), pd)};
}

std::vector<Member> uniform_interest_members(const AddressSpace& space,
                                             double pd, Rng& rng) {
  std::vector<Member> members;
  const auto addresses = space.enumerate();
  members.reserve(addresses.size());
  for (const auto& a : addresses) {
    members.push_back(
        Member{a, interval_subscription(rng.next_double(), pd)});
  }
  return members;
}

std::vector<Member> clustered_interest_members(const AddressSpace& space,
                                               double pd, double jitter,
                                               Rng& rng) {
  PMC_EXPECTS(jitter >= 0.0 && jitter <= 1.0);
  std::vector<Member> members;
  const auto addresses = space.enumerate();
  members.reserve(addresses.size());
  if (addresses.empty()) return members;

  // Leaf subgroups get evenly spaced base offsets across [0, 1).
  const std::size_t leaf_len = space.depth() - 1;
  std::vector<Prefix> leaf_order;
  for (const auto& a : addresses) {
    const Prefix lp = a.prefix(leaf_len);
    if (leaf_order.empty() || !(leaf_order.back() == lp))
      leaf_order.push_back(lp);
  }
  const auto leaves = static_cast<double>(leaf_order.size());

  std::size_t leaf_idx = 0;
  for (const auto& a : addresses) {
    if (!(a.prefix(leaf_len) == leaf_order[leaf_idx])) ++leaf_idx;
    const double base = static_cast<double>(leaf_idx) / leaves;
    double offset = base + (rng.next_double() - 0.5) * jitter;
    offset -= std::floor(offset);  // wrap into [0, 1)
    members.push_back(Member{a, interval_subscription(offset, pd)});
  }
  return members;
}

Event make_uniform_event(std::uint64_t publisher, std::uint64_t sequence,
                         Rng& rng) {
  return make_event_at(publisher, sequence, rng.next_double());
}

Event make_event_at(std::uint64_t publisher, std::uint64_t sequence,
                    double u) {
  Event e(EventId{publisher, sequence});
  e.with(kUniformAttr, Value(u));
  return e;
}

// ---------------------------------------------------------------------------
// Zipf workload

void ZipfWorkload::validate() const {
  PMC_EXPECTS(subscriptions > 0);
  PMC_EXPECTS(numeric_attrs > 0 && string_attrs > 0);
  PMC_EXPECTS(values_per_attr > 0);
  PMC_EXPECTS(skew > 0.0);
  PMC_EXPECTS(range_fraction >= 0.0 && range_fraction <= 1.0);
  PMC_EXPECTS(or_fraction >= 0.0 && or_fraction <= 1.0);
  PMC_EXPECTS(atoms_min >= 1 && atoms_min <= atoms_max);
  PMC_EXPECTS(range_width > 0.0 && range_width <= 1.0);
}

ZipfRanks::ZipfRanks(std::size_t n, double s) {
  PMC_EXPECTS(n > 0);
  cdf_.reserve(n);
  double total = 0.0;
  for (std::size_t r = 0; r < n; ++r) {
    total += std::pow(static_cast<double>(r + 1), -s);
    cdf_.push_back(total);
  }
  for (auto& c : cdf_) c /= total;
  cdf_.back() = 1.0;  // guard against rounding
}

double ZipfRanks::probability(std::size_t rank) const {
  PMC_EXPECTS(rank < cdf_.size());
  return rank == 0 ? cdf_[0] : cdf_[rank] - cdf_[rank - 1];
}

std::size_t ZipfRanks::sample(Rng& rng) const {
  const double u = rng.next_double();
  const auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  return it == cdf_.end() ? cdf_.size() - 1
                          : static_cast<std::size_t>(it - cdf_.begin());
}

ZipfWorkloadGen::ZipfWorkloadGen(ZipfWorkload config)
    : config_(config),
      numeric_attr_ranks_(config.numeric_attrs, config.skew),
      string_attr_ranks_(config.string_attrs, config.skew),
      value_ranks_(config.values_per_attr, config.skew) {
  config_.validate();
}

namespace {

// Built via append (not operator+ on a literal): GCC 12's -Wrestrict trips
// a false positive on the latter under -O2.
std::string tagged(char tag, std::size_t i) {
  std::string s(1, tag);
  s.append(std::to_string(i));
  return s;
}

}  // namespace

std::string ZipfWorkloadGen::numeric_attr(std::size_t i) {
  return tagged('n', i);
}

std::string ZipfWorkloadGen::string_attr(std::size_t i) {
  return tagged('s', i);
}

std::string ZipfWorkloadGen::string_value(std::size_t rank) {
  return tagged('v', rank);
}

Subscription ZipfWorkloadGen::subscription(std::size_t i) const {
  // Seeded like stable_member: one FNV-1a-derived stream per (seed, i).
  std::uint64_t h = kFnv1aBasis ^ config_.seed;
  h = fnv1a_u64(h, static_cast<std::uint64_t>(i));
  // detlint:allow(rng-discipline) documented (seed, i) labeled stream, independent of deployment size — see stable_member
  Rng rng(h);

  const auto make_clause = [this, &rng]() -> PredicatePtr {
    const auto n = static_cast<std::size_t>(rng.next_in(
        static_cast<std::int64_t>(config_.atoms_min),
        static_cast<std::int64_t>(config_.atoms_max)));
    std::vector<PredicatePtr> atoms;
    atoms.reserve(n * 2);
    for (std::size_t a = 0; a < n; ++a) {
      if (rng.bernoulli(config_.range_fraction)) {
        const auto attr = numeric_attr(numeric_attr_ranks_.sample(rng));
        const double lo = rng.next_double() * (1.0 - config_.range_width);
        atoms.push_back(
            Predicate::compare(attr, CmpOp::Ge, Value(lo)));
        atoms.push_back(Predicate::compare(attr, CmpOp::Lt,
                                           Value(lo + config_.range_width)));
      } else {
        const auto attr = string_attr(string_attr_ranks_.sample(rng));
        atoms.push_back(Predicate::compare(
            attr, CmpOp::Eq, Value(string_value(value_ranks_.sample(rng)))));
      }
    }
    return Predicate::conj(std::move(atoms));
  };

  auto pred = make_clause();
  if (rng.bernoulli(config_.or_fraction))
    pred = Predicate::disj({std::move(pred), make_clause()});
  return Subscription(std::move(pred));
}

Event ZipfWorkloadGen::event(std::uint64_t publisher, std::uint64_t sequence,
                             Rng& rng) const {
  // The *audience* is skewed, the world is not: subscriptions crowd hot
  // categories (Zipf), while events draw values uniformly across the
  // catalog — every stock ticks, subscribers pile onto the hot names. The
  // skew therefore lives where it stresses the index (hot lanes hold big
  // clause buckets) without making every event light them all up.
  Event e(EventId{publisher, sequence});
  for (std::size_t i = 0; i < config_.numeric_attrs; ++i)
    e.with(numeric_attr(i), Value(rng.next_double()));
  for (std::size_t i = 0; i < config_.string_attrs; ++i)
    e.with(string_attr(i),
           Value(string_value(rng.next_below(config_.values_per_attr))));
  return e;
}

}  // namespace pmc

// Sharded multi-group runtime: K independent pmcast groups ("topic
// shards") hosted on ONE Runtime/Network.
//
// The paper argues pmcast's membership and dissemination costs stay
// bounded as the system grows; the way a deployment actually grows past
// one group is by hosting many of them — one per topic — side by side.
// ShardedSim realizes that: every shard runs the full dynamic-group stack
// of ChurnSim (GroupTree oracle + SyncNode anti-entropy membership feeding
// a PmcastNode per live process), owns a disjoint pid range on the shared
// network, and may be driven by its own ScenarioScript. Cross-shard
// publishers model subscribers whose topic spans several shards: a
// ShardRouter publishes the same event into every shard the publisher
// spans.
//
// Isolation is a hard invariant, not an accident of scheduling: every
// random draw a shard makes is labeled with the shard's salt
// (Runtime::make_stream), process RNGs are labeled by (pid, incarnation),
// and the network derives loss/latency draws from (sender, sender
// sequence) — so adding a scenario action to shard A provably leaves
// shard B's per-shard summary byte-identical (tests/shard_test.cpp).
// Loss bursts are scoped through a per-shard loss model on the shared
// network, and partitions installed by a shard pass all other shards'
// traffic untouched.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "harness/scenario.hpp"

namespace pmc {

/// Cross-shard publisher workload: `publishers` logical publishers, each
/// spanning `span` consecutive shards (publisher p covers shards
/// p % K, (p+1) % K, …), each publishing `events` events `spacing` apart
/// starting at `start`. The same event (same id, same attribute) enters
/// every spanned shard through the ShardRouter.
struct CrossPublisherConfig {
  std::size_t publishers = 0;
  std::size_t span = 2;
  std::size_t events = 8;
  SimTime start = sim_ms(300);
  SimTime spacing = sim_ms(100);
};

struct ShardedConfig {
  /// Number of topic shards (independent groups).
  std::size_t shards = 4;
  /// Template for every shard: tree shape, fill, protocol parameters, base
  /// ε, and the master seed. Each shard derives its own subscription seed
  /// and RNG-stream salt from (seed, shard index).
  ChurnConfig shard;
  /// Per-shard override of the template's `adaptive` flag: when non-empty,
  /// exactly the listed shard indices run the online ε/τ estimator and
  /// every other shard stays static (the isolation tests flip estimation
  /// on for one shard and assert the others' summaries are untouched).
  /// Empty = every shard follows the template.
  std::vector<std::size_t> adaptive_shards;
  CrossPublisherConfig cross;

  /// Processes hosted across all shards (2 protocol nodes per address).
  std::size_t total_capacity() const;
  void validate() const;  ///< PMC_EXPECTS on every range above
};

/// Routes publishes into topic shards. Each shard has its own labeled
/// publisher-pick stream, so routing an event into shard A never consumes
/// a draw shard B's picks depend on.
class ShardRouter {
 public:
  ShardRouter(Runtime& runtime, std::vector<ChurnSim*> shards);

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Publishes event (id, u) into every shard in `targets`; returns how
  /// many shards it actually entered (a shard with no live member skips).
  std::size_t publish(const EventId& id, double u,
                      std::span<const std::size_t> targets);

 private:
  std::vector<ChurnSim*> shards_;
  std::vector<Rng> picks_;  ///< per-shard publisher-pick streams
};

/// Byte-comparable digest of a sharded run: one GroupSummary per shard, a
/// field-wise aggregate, and the runtime-wide network/scheduler counters.
struct ShardedSummary {
  std::vector<GroupSummary> shards;
  GroupSummary aggregate;  ///< sums; latency merged; fp over shard fps
  NetworkCounters network;
  std::uint64_t scheduler_executed = 0;
  std::uint64_t cross_published = 0;  ///< router publishes that landed
  std::uint64_t fingerprint = 0;

  friend bool operator==(const ShardedSummary&, const ShardedSummary&) =
      default;
  /// Aggregate line; with `per_shard`, one indented line per shard below.
  std::string to_string(bool per_shard = true) const;
};

/// Hosts `config.shards` independent dynamic groups on one Runtime and
/// drives them together. Shard s occupies pids
/// [s * 2 * capacity, (s+1) * 2 * capacity).
class ShardedSim {
 public:
  explicit ShardedSim(ShardedConfig config);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  ChurnSim& shard(std::size_t idx);
  const ChurnSim& shard(std::size_t idx) const;
  ShardRouter& router() noexcept { return *router_; }

  /// Plays `script` on one shard (validated against that shard's state).
  void play(std::size_t shard_idx, const ScenarioScript& script);
  /// Plays `script` on every shard (each with its own salted streams, so
  /// the same script unfolds differently per shard).
  void play_all(const ScenarioScript& script);

  void run_for(SimTime duration);
  void run_until(SimTime deadline);
  SimTime now() const noexcept;

  Runtime& runtime() noexcept { return *runtime_; }
  const ShardedConfig& config() const noexcept { return config_; }
  std::uint64_t cross_published() const noexcept { return cross_published_; }

  ShardedSummary summary() const;

 private:
  void schedule_cross_publishers();

  ShardedConfig config_;
  std::unique_ptr<Runtime> runtime_;
  /// Intern state shared by every shard: all shards draw from the same
  /// address space, so one table serves them all (declared before shards_,
  /// which hold references into it).
  std::unique_ptr<Interns> interns_;
  std::vector<std::unique_ptr<ChurnSim>> shards_;
  /// Current ε per shard, read by the network's loss model; LossBurst
  /// actions write their shard's entry through set_loss_hook.
  std::vector<double> shard_loss_;
  std::unique_ptr<ShardRouter> router_;
  std::uint64_t cross_published_ = 0;
};

}  // namespace pmc

// Sharded multi-group runtime: K independent pmcast groups ("topic
// shards") driven together, optionally on a worker thread pool.
//
// The paper argues pmcast's membership and dissemination costs stay
// bounded as the system grows; the way a deployment actually grows past
// one group is by hosting many of them — one per topic — side by side.
// ShardedSim realizes that: every shard runs the full dynamic-group stack
// of ChurnSim (GroupTree oracle + SyncNode anti-entropy membership feeding
// a PmcastNode per live process), owns its own Runtime — scheduler,
// network, intern tables — over a disjoint pid range, and may be driven
// by its own ScenarioScript. Cross-shard publishers model subscribers
// whose topic spans several shards: the same event (same id, same
// attribute) enters every shard the publisher spans.
//
// Isolation is a hard invariant, not an accident of scheduling: every
// random draw a shard makes is labeled with the shard's salt
// (Runtime::make_stream), process RNGs are labeled by (pid, incarnation),
// and the network derives loss/latency draws from (sender, sender
// sequence) — so adding a scenario action to shard A provably leaves
// shard B's per-shard summary byte-identical (tests/shard_test.cpp).
// Loss bursts and partitions act on the shard's own network, so they
// cannot leak by construction.
//
// Threading and determinism: isolation is also what makes deterministic
// parallelism safe. Shards share no mutable state, so ShardedSim advances
// them in fixed barrier epochs: within an epoch every shard runs
// independently (run_until the epoch end) on a WorkerPool lane; at the
// barrier, cross-shard router publishes buffered during the epoch are
// exchanged in (source shard, enqueue) order and pre-scheduled injections
// carry on. Every per-shard input — RNG streams, event order, epoch
// boundaries, exchange order — is independent of which lane ran which
// shard, so a T-thread run produces byte-identical per-shard and
// aggregate summaries to threads = 1 (the serial reference, which runs
// the same epoch loop inline). tests/repro_golden_test.cpp pins the
// fingerprints at T = 1, 2, and 8.
#pragma once

#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "harness/scenario.hpp"
#include "sim/worker_pool.hpp"

namespace pmc {

/// Cross-shard publisher workload: `publishers` logical publishers, each
/// spanning `span` consecutive shards (publisher p covers shards
/// p % K, (p+1) % K, …), each publishing `events` events `spacing` apart
/// starting at `start`. The same event (same id, same attribute) enters
/// every spanned shard through a pre-scheduled injection in that shard's
/// own event queue.
struct CrossPublisherConfig {
  std::size_t publishers = 0;
  std::size_t span = 2;
  std::size_t events = 8;
  SimTime start = sim_ms(300);
  SimTime spacing = sim_ms(100);
};

struct ShardedConfig {
  /// Number of topic shards (independent groups).
  std::size_t shards = 4;
  /// Template for every shard: tree shape, fill, protocol parameters, base
  /// ε, and the master seed. Each shard derives its own subscription seed
  /// and RNG-stream salt from (seed, shard index).
  ChurnConfig shard;
  /// Per-shard override of the template's `adaptive` flag: when non-empty,
  /// exactly the listed shard indices run the online ε/τ estimator and
  /// every other shard stays static (the isolation tests flip estimation
  /// on for one shard and assert the others' summaries are untouched).
  /// Empty = every shard follows the template.
  std::vector<std::size_t> adaptive_shards;
  CrossPublisherConfig cross;

  /// Worker threads driving the shards: 1 = serial (the reference), 0 =
  /// one per hardware core. Results are byte-identical for every value —
  /// the thread count decides wall-clock, never outcomes.
  std::size_t threads = 1;
  /// Barrier epoch length: shards advance independently for this long,
  /// then exchange buffered router publishes. 0 = one gossip period.
  /// Affects when dynamically enqueued cross publishes land (they apply
  /// at the next barrier), not any shard-local outcome.
  SimTime barrier_interval = 0;

  /// Processes hosted across all shards (2 protocol nodes per address).
  std::size_t total_capacity() const;
  void validate() const;  ///< PMC_EXPECTS on every range above
};

/// Routes publishes into topic shards. Each shard has its own labeled
/// publisher-pick stream, so routing an event into shard A never consumes
/// a draw shard B's picks depend on.
class ShardRouter {
 public:
  /// `picks[s]` is shard s's publisher-pick stream (label
  /// (kRouterPickSalt, s) off the master seed).
  ShardRouter(std::vector<ChurnSim*> shards, std::vector<Rng> picks);

  std::size_t shard_count() const noexcept { return shards_.size(); }

  /// Sentinel source for publishes originating outside any shard
  /// (harness code, tests); drained before every shard's own buffer.
  static constexpr std::size_t kExternalSource =
      static_cast<std::size_t>(-1);

  /// Buffers event (id, u) for every shard in `targets`; it lands at the
  /// next barrier. `source` orders the exchange — buffers drain external
  /// first, then source shard 0..K-1, each FIFO — so the landing order is
  /// independent of which worker lane buffered what. Safe to call from
  /// shard `source`'s own callbacks mid-epoch or from the driving thread
  /// between runs.
  void enqueue(const EventId& id, double u,
               std::span<const std::size_t> targets,
               std::size_t source = kExternalSource);

  /// Publishes (id, u) into shard `target` immediately, consuming that
  /// shard's pick stream. Only from `target`'s own execution context (its
  /// lane mid-epoch, or the driving thread between epochs). Returns false
  /// (and the shard counts a skip) when the shard has no live member.
  bool publish_into(std::size_t target, const EventId& id, double u);

  /// Applies every buffered publish in deterministic order; returns how
  /// many (event, target) pairs reached a live member. Driving thread
  /// only, at a barrier.
  std::uint64_t drain();

 private:
  struct Pending {
    EventId id;
    double u;
    std::vector<std::size_t> targets;
  };

  std::vector<ChurnSim*> shards_;
  std::vector<Rng> picks_;  ///< per-shard publisher-pick streams
  /// Slot 0 = external, slot s + 1 = shard s. A shard writes only its own
  /// slot (from its lane), so buffering is race-free without locks.
  std::vector<std::vector<Pending>> pending_;
};

/// Byte-comparable digest of a sharded run: one GroupSummary per shard, a
/// field-wise aggregate, and the summed network/scheduler counters.
struct ShardedSummary {
  std::vector<GroupSummary> shards;
  GroupSummary aggregate;  ///< sums; latency merged; fp over shard fps
  NetworkCounters network;
  std::uint64_t scheduler_executed = 0;
  std::uint64_t cross_published = 0;  ///< router publishes that landed
  std::uint64_t fingerprint = 0;

  friend bool operator==(const ShardedSummary&, const ShardedSummary&) =
      default;
  /// Aggregate line; with `per_shard`, one indented line per shard below.
  std::string to_string(bool per_shard = true) const;
};

/// Hosts `config.shards` independent dynamic groups, each on its own
/// Runtime, and drives them together in barrier epochs on up to
/// `config.threads` lanes. Shard s occupies pids
/// [s * 2 * capacity, (s+1) * 2 * capacity) — globally unique, so every
/// labeled draw matches the single-runtime engine this replaced.
class ShardedSim {
 public:
  explicit ShardedSim(ShardedConfig config);
  ~ShardedSim();

  ShardedSim(const ShardedSim&) = delete;
  ShardedSim& operator=(const ShardedSim&) = delete;

  std::size_t shard_count() const noexcept { return shards_.size(); }
  ChurnSim& shard(std::size_t idx);
  const ChurnSim& shard(std::size_t idx) const;
  ShardRouter& router() noexcept { return *router_; }

  /// Resolved worker lanes (after threads = 0 and the shard-count cap).
  std::size_t thread_count() const noexcept { return pool_->thread_count(); }

  /// Plays `script` on one shard (validated against that shard's state).
  void play(std::size_t shard_idx, const ScenarioScript& script);
  /// Plays `script` on every shard (each with its own salted streams, so
  /// the same script unfolds differently per shard).
  void play_all(const ScenarioScript& script);

  void run_for(SimTime duration);
  void run_until(SimTime deadline);
  SimTime now() const noexcept { return now_; }

  /// Shard `idx`'s runtime (its scheduler, network, and stream factory).
  Runtime& shard_runtime(std::size_t idx);
  const ShardedConfig& config() const noexcept { return config_; }
  std::uint64_t cross_published() const noexcept;

  ShardedSummary summary() const;

 private:
  /// Per-shard cross-traffic accounting, written only from the owning
  /// shard's execution context (its lane mid-epoch); the driving thread
  /// sums the slots between epochs.
  struct ShardCross {
    std::uint64_t landed = 0;   ///< injections that reached a live member
    std::uint64_t runs = 0;     ///< injection callbacks executed
    std::uint64_t primary = 0;  ///< …on the event's first spanned shard
  };

  void schedule_cross_publishers();

  ShardedConfig config_;
  SimTime barrier_interval_ = 0;
  SimTime now_ = 0;
  /// One runtime (scheduler + network + stream factory) and one intern
  /// table per shard: all shards enumerate the same address space in the
  /// same order, so per-shard tables assign identical AddrIds — and being
  /// private, they are mutable mid-run without any cross-lane traffic.
  std::vector<std::unique_ptr<Runtime>> runtimes_;
  std::vector<std::unique_ptr<Interns>> interns_;
  std::vector<std::unique_ptr<ChurnSim>> shards_;
  std::vector<ShardCross> cross_;
  std::unique_ptr<ShardRouter> router_;
  std::unique_ptr<WorkerPool> pool_;
  std::uint64_t cross_drained_ = 0;  ///< landed via barrier exchange
};

}  // namespace pmc

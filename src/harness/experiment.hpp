// Experiment runner: repeated single-event dissemination runs over a fixed
// group, with per-run metrics aggregated into Summaries. This is the
// machinery behind every figure bench (DESIGN.md §5).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "common/stats.hpp"
#include "harness/workload.hpp"
#include "pmcast/config.hpp"

namespace pmc {

struct ExperimentConfig {
  // Tree shape (regular, n = a^d).
  std::size_t a = 22;
  std::size_t d = 3;
  std::size_t r = 3;

  // Algorithm parameters.
  std::size_t fanout = 2;
  double pittel_c = 0.0;
  std::size_t tuning_threshold = 0;     ///< Sec. 5.3 h; 0 = untuned
  bool local_interest_shortcut = true;
  double leaf_flood_density = 2.0;      ///< Sec. 6 leaf flooding; >1 = off
  std::size_t coarsen_depth_leq = 0;    ///< Sec. 6 root coarsening; 0 = off
  std::size_t recovery_rounds = 0;      ///< digest recovery; 0 = off

  // Workload.
  double pd = 0.5;            ///< fraction of interested processes
  bool clustered = false;     ///< clustered instead of uniform interests
  double cluster_jitter = 0.2;

  // Environment (ground truth; also given to the algorithm as estimate).
  double loss = 0.05;           ///< ε
  double crash_fraction = 0.0;  ///< τ = f/n — fraction crashed during run
  SimTime period = sim_ms(100);

  // Measurement.
  std::size_t runs = 20;
  std::uint64_t seed = 42;

  std::size_t group_size() const;
  TreeAnalysisParams analysis_params() const;
  PmcastConfig pmcast_config() const;

  /// Rejects out-of-range parameters via PMC_EXPECTS (std::logic_error):
  /// loss or crash_fraction outside [0, 1), pd outside [0, 1], zero sizes,
  /// fanouts, run counts or periods. Every run_* entry point calls this.
  void validate() const;
};

/// Per-point aggregated results (across config.runs independent runs).
struct ExperimentResult {
  Summary delivery;         ///< delivered / interested, per run
  Summary false_reception;  ///< uninterested receivers / uninterested, per run
  Summary rounds;           ///< completed gossip periods until quiescence
  Summary messages_per_process;
  Summary interested_fraction;  ///< sanity: should concentrate around pd
};

/// Runs pmcast `config.runs` times (one event per run) and aggregates.
ExperimentResult run_pmcast_experiment(const ExperimentConfig& config);

/// Same group and workload, flooding-broadcast baseline.
ExperimentResult run_flooding_experiment(const ExperimentConfig& config);

/// Same group and workload, genuine-multicast baseline with partial views
/// of `view_size` uniformly random members.
ExperimentResult run_genuine_experiment(const ExperimentConfig& config,
                                        std::size_t view_size);

/// Same group and workload, Astrolabe-style deterministic tree multicast
/// (one forward per interested subgroup; efficient but fragile).
ExperimentResult run_treecast_experiment(const ExperimentConfig& config);

/// Sustained multi-event workload: `events` publications from random
/// publishers spaced `inter_arrival` apart over one shared runtime — the
/// "stable phase" throughput scenario (several events in flight at once).
struct StreamConfig {
  ExperimentConfig base;
  std::size_t events = 50;
  SimTime inter_arrival = sim_ms(150);
};

struct StreamResult {
  Summary per_event_delivery;   ///< delivered/interested for each event
  double messages_per_event_per_process = 0.0;
  double drain_periods = 0.0;   ///< periods from last publish to quiescence
};

StreamResult run_stream_experiment(const StreamConfig& config);

/// Reads a positive integer override from the environment (e.g. PMCAST_RUNS)
/// so benches can be scaled up without recompiling; `fallback` otherwise.
std::size_t env_size_t(const char* name, std::size_t fallback);

}  // namespace pmc

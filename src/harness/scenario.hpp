// Deterministic churn & fault scenario engine.
//
// A ScenarioScript is a timeline of typed fault/churn actions — crashes,
// recoveries, joins, graceful leaves, partitions with a scheduled heal,
// loss bursts and publish bursts — that a ChurnSim executes at their
// scheduled sim-times. The engine turns the single-shot figure harness into
// a general workload driver over a *changing* group: every live process
// runs the full deployment stack (SyncNode anti-entropy membership feeding
// a PmcastNode through a LocalViewProvider, with membership rows
// piggybacked on event gossip, optionally through the wire codec).
//
// Determinism: every action draws from its own RNG stream derived from the
// run seed and the action's (time, kind, ordinal) label — never from a
// shared sequential stream — so inserting one action never perturbs the
// draws of unrelated actions, and two runs with the same seed and script
// produce byte-identical summaries (tests/scenario_test.cpp,
// tests/determinism_test.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <variant>
#include <vector>

#include "addr/space.hpp"
#include "analysis/env_estimator.hpp"
#include "event/event.hpp"
#include "membership/sync.hpp"
#include "membership/tree.hpp"
#include "pmcast/node.hpp"
#include "pmcast/view_provider.hpp"

namespace pmc {

// ---------------------------------------------------------------------------
// Script
// ---------------------------------------------------------------------------

/// Fail-stop crash of `count` uniformly chosen live processes.
struct CrashNodes {
  std::size_t count = 1;
};

/// Rejoin of up to `count` previously crashed processes (oldest crash
/// first), each re-entering through the join protocol at its old address.
struct RecoverNodes {
  std::size_t count = 1;
};

/// `count` fresh processes join at vacant addresses through the scripted
/// join path (JoinRequest routed to an immediate neighbor, ViewTransfer).
struct Join {
  std::size_t count = 1;
};

/// Graceful departure of `count` uniformly chosen live processes (LeaveMsg
/// to the immediate neighbors, then fail-stop).
struct Leave {
  std::size_t count = 1;
};

/// Splits the group: processes whose top-level address component is in
/// `side` cannot exchange messages with the rest until `heal_at` (absolute
/// sim-time). Concurrent partitions compose (layered link filters).
struct Partition {
  std::vector<AddrComponent> side;
  SimTime heal_at = 0;
};

/// Raises the network loss probability to `eps` for `duration`, then
/// restores the scenario's base loss.
struct LossBurst {
  double eps = 0.5;
  SimTime duration = sim_ms(100);
};

/// Publishes `count` events from uniformly chosen live publishers, spaced
/// `spacing` apart (0 = all at once).
struct PublishBurst {
  std::size_t count = 1;
  SimTime spacing = 0;
};

/// Installs a LogNormal WAN latency model (median / log-space sigma) on
/// the group's network; median == 0 restores the uniform default. The
/// clamp window is [0, 16 * median] so the heavy tail cannot outlive a
/// run. Text form: `latency lognormal 2ms 0.8` / `latency uniform`.
struct LatencyProfile {
  SimTime median = 0;  ///< 0 = restore the uniform [min, max] draw
  double sigma = 0.0;
};

/// One-directional partition: messages from processes whose top-level
/// address component is in `from_side` towards processes whose component
/// is in `to_side` are dropped until `heal_at`; the reverse direction
/// passes. Text form: `asym 0,1 to 2 heal 1800ms`.
struct AsymPartition {
  std::vector<AddrComponent> from_side;
  std::vector<AddrComponent> to_side;
  SimTime heal_at = 0;
};

/// Flapping partition: processes whose top-level component is in `side`
/// are cut off from the rest for the first `duty` fraction of every
/// `period`, reconnected for the remainder, until `until` (absolute).
/// Text form: `flap 0 period 200ms duty 0.4 until 2s`.
struct Flap {
  std::vector<AddrComponent> side;
  SimTime period = sim_ms(200);
  double duty = 0.5;
  SimTime until = 0;
};

/// Correlated rack failure: every live process whose address starts with
/// `prefix` (components 0..k-1) fail-stops at once — the crash burst is
/// correlated over an address zone, not sampled. Text form: `rack 0` /
/// `rack 0,2`.
struct RackFailure {
  std::vector<AddrComponent> prefix;
};

/// Flash crowd: `count` fresh joins spread evenly over `over`
/// (0 = all at once). Text form: `joinstorm 16 over 200ms`.
struct JoinStorm {
  std::size_t count = 1;
  SimTime over = 0;
};

/// Raises the network duplication probability to `prob` for `duration`,
/// then restores 0. Text form: `duplicate 0.4 for 300ms`.
struct DuplicateBurst {
  double prob = 0.5;
  SimTime duration = sim_ms(100);
};

/// Replays the churn timeline parsed from `path` (the scenario text
/// format), every child action offset by this action's time. Expanded by
/// ChurnSim::play before validation/scheduling; nesting is rejected. The
/// path must be whitespace- and '#'-free (the text format could not
/// round-trip it otherwise). Text form: `replay traces/outage.scn`.
struct TraceReplay {
  std::string path;
};

/// New alternatives are appended at the END: an action's RNG stream label
/// hashes op.index() (see ChurnSim::play), so reordering the variant would
/// relabel every existing script's draws.
using ScenarioOp =
    std::variant<CrashNodes, RecoverNodes, Join, Leave, Partition, LossBurst,
                 PublishBurst, LatencyProfile, AsymPartition, Flap,
                 RackFailure, JoinStorm, DuplicateBurst, TraceReplay>;

/// Parses a sim-time token ("750us", "500ms", "2s"; bare digits mean µs) —
/// the same syntax scenario scripts use. Throws std::invalid_argument on
/// malformed input.
SimTime parse_sim_time(const std::string& token);

struct ScenarioAction {
  SimTime at = 0;
  ScenarioOp op;
};

/// A validated, reproducible timeline of scenario actions. Build with the
/// fluent add() API or parse() from the text format (see README):
///
///   # staggered joins, a crash burst, a healed partition, a loss spike
///   at 200ms join 2
///   at 900ms crash 3
///   at 1s partition 0,1 heal 1800ms
///   at 1200ms loss 0.35 for 400ms
///   at 1500ms publish 6 every 25ms
///   at 2s recover 2
class ScenarioScript {
 public:
  ScenarioScript& add(SimTime at, ScenarioOp op);

  const std::vector<ScenarioAction>& actions() const noexcept {
    return actions_;
  }
  bool empty() const noexcept { return actions_.empty(); }
  std::size_t size() const noexcept { return actions_.size(); }

  /// Rejects nonsense scripts via PMC_EXPECTS (throws std::logic_error):
  /// out-of-range loss, non-positive counts/durations, actions scheduled in
  /// the past or out of order, heal before its partition, and recoveries
  /// exceeding the crashes scheduled before them. `prior_crashes` credits
  /// crashes scheduled by earlier timelines of the same run (ChurnSim::play
  /// passes its outstanding crash count for appended scripts).
  void validate(std::uint64_t prior_crashes = 0) const;

  /// Parses the text format; throws std::invalid_argument (with the line
  /// number) on syntax errors. The result still must pass validate().
  static ScenarioScript parse(const std::string& text);

  /// The canonical churn demo: staggered joins + crash burst +
  /// partition/heal + loss spike + publish bursts (used by examples/churn
  /// and `pmcast_sim --scenario demo`).
  static ScenarioScript demo();

  /// Renders back to the text format; parse(to_string()) reproduces the
  /// script exactly.
  std::string to_string() const;

 private:
  std::vector<ScenarioAction> actions_;
};

// ---------------------------------------------------------------------------
// Engine
// ---------------------------------------------------------------------------

struct ChurnConfig {
  // Address space (capacity a^d) and tree shape.
  std::size_t a = 4;
  std::size_t d = 2;
  std::size_t r = 2;

  /// Fraction of interested processes (uniform interval subscriptions).
  double pd = 0.5;
  /// Fraction of the address space populated by founders; the rest stays
  /// vacant for scripted joins.
  double initial_fill = 0.75;

  // Environment.
  double loss = 0.0;  ///< base ε; LossBurst actions deviate from this
  SimTime latency_min = sim_us(100);
  SimTime latency_max = sim_us(900);

  // Protocol parameters.
  SimTime period = sim_ms(50);  ///< gossip period of both layers
  SimTime suspicion_timeout = sim_ms(500);
  bool confirm_suspicion = false;
  std::size_t fanout = 3;
  std::size_t recovery_rounds = 0;
  /// Graceful-degradation caps passed through to every PmcastNode
  /// (PmcastConfig::max_retained / max_buffered); 0 = unbounded, the
  /// pre-cap behaviour.
  std::size_t max_retained = 0;
  std::size_t max_buffered = 0;
  /// Capped exponential backoff (with labeled-stream jitter) on the
  /// joiners' join-request retries (SyncConfig::join_backoff).
  bool join_backoff = false;
  /// Run every message through encode_message/decode_message, as a socket
  /// deployment would (scenarios then exercise the frozen wire format).
  bool wire_transcode = false;

  /// Online ε/τ estimation (analysis/env_estimator.hpp): every node runs
  /// an EnvEstimator fed by digest feedback (SyncConfig::ack_digests is
  /// forced on) and observed view churn, and its pmcast layer re-evaluates
  /// the Eq. 11 round bound with the live estimate instead of the static
  /// `loss` prior. Deterministic: estimation is pure counter arithmetic.
  bool adaptive = false;
  /// EWMA weight per estimator sampling window, in (0, 1].
  double adaptive_alpha = 0.3;
  /// Length of one estimator sampling window; 0 = 4 gossip periods.
  SimTime adaptive_interval = 0;

  std::uint64_t seed = 42;

  std::size_t capacity() const;
  void validate() const;  ///< PMC_EXPECTS on every range above
};

/// What happened, aggregated over the whole run.
struct ChurnCounters {
  std::uint64_t joins_requested = 0;  ///< joiners spawned (Join + Recover)
  std::uint64_t crashes = 0;
  std::uint64_t leaves = 0;
  std::uint64_t recoveries = 0;
  std::uint64_t partitions = 0;
  std::uint64_t heals = 0;  ///< partition/asym/flap filters removed
  std::uint64_t loss_bursts = 0;
  std::uint64_t loss_restores = 0;
  std::uint64_t published = 0;
  std::uint64_t delivered = 0;  ///< HPDELIVER calls across all processes
  /// Deliveries owed at publish time: for every published event, the live
  /// processes whose subscription matched it when it entered the group.
  /// Pure bookkeeping (no draws), so counting it never moves a replay;
  /// delivered / expected_deliveries is the figure sweeps' delivery ratio,
  /// and delivered <= expected_deliveries is the exactly-once identity the
  /// --gate-figures check enforces under duplication.
  std::uint64_t expected_deliveries = 0;
  std::uint64_t asym_partitions = 0;
  std::uint64_t flaps = 0;
  std::uint64_t rack_failures = 0;   ///< RackFailure actions (crashes
                                     ///< counts the victims)
  std::uint64_t join_storms = 0;
  std::uint64_t dup_bursts = 0;
  std::uint64_t dup_restores = 0;
  std::uint64_t latency_profiles = 0;  ///< LatencyProfile actions applied
  std::uint64_t skipped = 0;    ///< action shortfall (e.g. no live target)

  friend bool operator==(const ChurnCounters&, const ChurnCounters&) =
      default;

  /// Field-wise sum (sharded runs aggregate per-shard counters).
  ChurnCounters& operator+=(const ChurnCounters& o) {
    joins_requested += o.joins_requested;
    crashes += o.crashes;
    leaves += o.leaves;
    recoveries += o.recoveries;
    partitions += o.partitions;
    heals += o.heals;
    loss_bursts += o.loss_bursts;
    loss_restores += o.loss_restores;
    published += o.published;
    delivered += o.delivered;
    expected_deliveries += o.expected_deliveries;
    asym_partitions += o.asym_partitions;
    flaps += o.flaps;
    rack_failures += o.rack_failures;
    join_storms += o.join_storms;
    dup_bursts += o.dup_bursts;
    dup_restores += o.dup_restores;
    latency_profiles += o.latency_profiles;
    skipped += o.skipped;
    return *this;
  }
};

/// The group-local half of a run digest: everything one dynamic group can
/// account for without touching runtime-wide state (network counters,
/// scheduler progress). This is the per-shard summary of a sharded run —
/// byte-comparable, so shard-isolation tests can assert that shard B's
/// GroupSummary is unchanged when shard A's script gains an action.
struct GroupSummary {
  ChurnCounters counters;
  std::size_t live = 0;    ///< live processes at summary time
  std::size_t joined = 0;  ///< live processes whose join completed
  std::uint64_t membership_tombstones = 0;  ///< summed over live processes
  std::uint64_t joins_served = 0;           ///< view transfers sent
  /// Publish→deliver latency over this group's deliveries, in integer
  /// sim-time so the digest stays byte-comparable (no float formatting).
  std::uint64_t latency_samples = 0;
  SimTime latency_total = 0;
  SimTime latency_max = 0;
  /// Adaptive environment estimation (ChurnConfig::adaptive): the live
  /// nodes' mean ε̂/τ̂ in parts-per-million (integers keep the digest
  /// byte-comparable), and the estimator windows folded in across them.
  /// All zero when estimation is off.
  std::uint64_t env_loss_ppm = 0;
  std::uint64_t env_crash_ppm = 0;
  std::uint64_t env_windows = 0;
  /// Eq. 11 bound collapses observed across all processes
  /// (PmcastNode::Stats::bound_collapsed).
  std::uint64_t bound_collapsed = 0;
  /// Duplicate gossips/payloads discarded by the receivers' seen-set
  /// (summed PmcastNode::Stats::dup_suppressed) — the exactly-once ledger
  /// the duplication injector is audited against.
  std::uint64_t dup_suppressed = 0;
  /// Events shed by the graceful-degradation caps (max_retained /
  /// max_buffered), summed over live processes.
  std::uint64_t shed_events = 0;
  /// FNV-1a over every slot's per-node statistics.
  std::uint64_t fingerprint = 0;

  friend bool operator==(const GroupSummary&, const GroupSummary&) = default;
  double latency_mean_ms() const;
  std::string to_string() const;
};

/// A byte-comparable end-of-run digest: the group-local summary plus the
/// runtime-wide counters (network, scheduler). Two runs with the same
/// config and script must compare equal (operator==).
struct ChurnSummary {
  ChurnCounters counters;
  NetworkCounters network;
  std::uint64_t scheduler_executed = 0;
  std::size_t live = 0;    ///< live processes at summary time
  std::size_t joined = 0;  ///< live processes whose join completed
  std::uint64_t membership_tombstones = 0;  ///< summed over live processes
  std::uint64_t joins_served = 0;           ///< view transfers sent
  std::uint64_t latency_samples = 0;        ///< see GroupSummary
  SimTime latency_total = 0;
  SimTime latency_max = 0;
  std::uint64_t env_loss_ppm = 0;    ///< see GroupSummary
  std::uint64_t env_crash_ppm = 0;
  std::uint64_t env_windows = 0;
  std::uint64_t bound_collapsed = 0;
  std::uint64_t dup_suppressed = 0;  ///< see GroupSummary
  std::uint64_t shed_events = 0;     ///< see GroupSummary
  std::uint64_t fingerprint = 0;

  friend bool operator==(const ChurnSummary&, const ChurnSummary&) = default;
  std::string to_string() const;
};

/// Hosts a dynamic group over a Runtime and executes scenario scripts
/// against it. Every populated address owns a SyncNode (pid = pid_base +
/// slot) and a PmcastNode (pid = pid_base + capacity + slot) wired together
/// by piggybacking and a LocalViewProvider. SyncNodes gossip forever, so
/// the engine runs for explicit horizons (run_for/run_until) rather than to
/// quiescence.
///
/// A ChurnSim either owns its Runtime (the classic single-group mode) or
/// borrows one shared with other groups (topic shards; see
/// harness/shard.hpp). In shard mode every labeled RNG stream is salted
/// with the shard's tag, pids are offset by pid_base, and runtime-wide
/// effects (loss bursts) are routed through hooks the owner scopes to this
/// shard — so co-hosted groups never perturb each other.
class ChurnSim {
 public:
  explicit ChurnSim(ChurnConfig config);

  /// Shard mode: hosts the group on `runtime` (owned elsewhere), with pids
  /// offset by `pid_base` and every labeled stream salted by `stream_salt`.
  /// The owner is responsible for runtime-wide settings (wire transcoding,
  /// base latency), for scoping loss via set_loss_hook, and provides the
  /// shared intern state (shards use the same address space, so one table
  /// serves them all).
  ChurnSim(Runtime& runtime, ChurnConfig config, ProcessId pid_base,
           std::uint64_t stream_salt, Interns& interns);

  ~ChurnSim();

  ChurnSim(const ChurnSim&) = delete;
  ChurnSim& operator=(const ChurnSim&) = delete;

  /// Validates `script` and schedules every action (all must lie at or
  /// after now()). May be called repeatedly to append further timelines.
  void play(const ScenarioScript& script);

  void run_for(SimTime duration);
  void run_until(SimTime deadline);
  SimTime now() const noexcept;

  Runtime& runtime() noexcept { return *rt_; }
  Interns& interns() noexcept { return *interns_; }
  const ChurnConfig& config() const noexcept { return config_; }
  const ChurnCounters& counters() const noexcept { return counters_; }

  /// First pid of this group's range; the group occupies
  /// [pid_base(), pid_base() + 2 * capacity).
  ProcessId pid_base() const noexcept { return pid_base_; }

  /// Overrides what a LossBurst action does: `hook(eps)` is called to raise
  /// the loss and later `hook(config().loss)` to restore it. A sharded
  /// runtime points this at the shard's entry in a per-shard loss model
  /// instead of the network-wide scalar ε.
  void set_loss_hook(std::function<void(double)> hook);

  /// Router entry point for cross-shard publishers: publishes the event
  /// (id, u) from a live member picked with `rng` (the caller's stream, so
  /// this group's own draws are untouched). Returns false (and counts a
  /// skip) when the group has no live member.
  bool publish_external(const EventId& id, double u, Rng& rng);

  std::size_t live_count() const noexcept;
  std::size_t joined_count() const noexcept;

  /// Group-local digest (per-shard summary in a sharded run).
  GroupSummary group_summary() const;
  /// group_summary() plus the runtime-wide network/scheduler counters.
  ChurnSummary summary() const;

 private:
  /// Last-seen SyncNode counters, so one estimator sampling window feeds
  /// only the deltas accrued since the previous window.
  struct EnvCursor {
    std::uint64_t digests_sent = 0;
    std::uint64_t digest_acks = 0;
    std::uint64_t deaths_observed = 0;
  };

  struct Slot {
    Address address;
    Subscription subscription;
    std::unique_ptr<SyncNode> sync;
    std::unique_ptr<LocalViewProvider> provider;
    std::unique_ptr<PmcastNode> pm;
    /// Per-node online ε/τ estimator (ChurnConfig::adaptive); reset with
    /// each incarnation, like the protocol nodes it observes.
    std::unique_ptr<EnvEstimator> estimator;
    EnvCursor env_cursor;
    bool live = false;
  };

  /// Shared tail of both constructors: builds the slots, picks the
  /// founders, and spawns them.
  void init_population();

  ProcessId sync_pid(std::size_t slot) const noexcept;
  ProcessId pm_pid(std::size_t slot) const noexcept;
  /// The slot owning interned address `id`; kNoSlot for foreign ids.
  std::size_t slot_for(AddrId id) const noexcept;
  /// Labeled stream salted with this group's shard tag (no-op salt when the
  /// group owns its runtime).
  Rng stream(std::uint64_t tag) const;
  SyncNode::Directory sync_directory();
  PmcastNode::Directory pm_directory();

  /// (Re)creates both protocol nodes in `slot`. Founders get a materialized
  /// bootstrap view; joiners enter through the join protocol via `contact`.
  void spawn(std::size_t slot, bool founder, ProcessId contact);

  /// One estimator sampling window: feeds every live slot's estimator the
  /// feedback/churn deltas since the last window, then re-schedules itself
  /// `adaptive_interval_` later. Pure counter arithmetic — no RNG draws —
  /// so co-hosted shards are provably unaffected.
  void sample_environment();

  void apply(const ScenarioAction& action, std::shared_ptr<Rng> rng);
  std::vector<std::size_t> live_slots() const;
  /// Join-contact candidates: joined live slots, else any live slot.
  std::vector<std::size_t> contact_slots() const;
  /// Picks up to `count` distinct live slots uniformly; fewer if the group
  /// is smaller (shortfall counted as skipped).
  std::vector<std::size_t> pick_live(std::size_t count, Rng& rng);
  /// Points still-unjoined joiners at fresh contacts after crashes/leaves
  /// (their original contact may be gone).
  void retarget_pending_joiners(Rng& rng);
  /// Spawns one fresh joiner at a vacant address (shared by Join and
  /// JoinStorm); counts a skip when no vacancy or contact exists.
  void do_join(Rng& rng);
  void publish_one(Rng& rng);

  static constexpr std::size_t kNoSlot = static_cast<std::size_t>(-1);

  ChurnConfig config_;
  AddressSpace space_;
  std::unique_ptr<Runtime> owned_rt_;  ///< set only in single-group mode
  Runtime* rt_ = nullptr;              ///< owned_rt_.get() or the shared one
  std::unique_ptr<Interns> owned_interns_;  ///< single-group mode only
  Interns* interns_ = nullptr;  ///< owned_interns_.get() or the shared one
  ProcessId pid_base_ = 0;
  std::uint64_t stream_salt_ = 0;  ///< 0 in single-group mode (tags as-is)
  SimTime adaptive_interval_ = 0;  ///< resolved sampling window (adaptive)
  std::function<void(double)> apply_loss_;  ///< see set_loss_hook
  std::unique_ptr<GroupTree> oracle_;  ///< intended membership bookkeeping
  std::vector<Slot> slots_;
  /// Dense AddrId -> slot directory (every slot address is interned up
  /// front, so protocol-node lookups are a bounds check + array read).
  std::vector<std::size_t> slot_of_id_;
  std::vector<std::size_t> crashed_pool_;  ///< recover candidates, FIFO
  /// Per-(time, kind) ordinals for action stream labels; persists across
  /// play() calls so appended timelines never reuse a label.
  std::map<std::pair<SimTime, std::size_t>, std::uint64_t> action_ordinals_;
  /// Crashes scheduled minus recoveries scheduled, across every play()
  /// call: the crash credit appended timelines may recover against.
  std::uint64_t crash_credit_ = 0;
  /// End of the last scheduled loss burst; later bursts must start after
  /// it (overlap would truncate the earlier burst's restore).
  SimTime loss_busy_until_ = 0;
  /// Bumped by every burst; a restore only fires if its epoch is current
  /// (a back-to-back burst's set_loss runs before the old restore).
  std::uint64_t loss_epoch_ = 0;
  /// DuplicateBurst bookkeeping, mirroring the loss-burst pair above.
  SimTime dup_busy_until_ = 0;
  std::uint64_t dup_epoch_ = 0;
  std::uint64_t publish_seq_ = 0;
  ChurnCounters counters_;
  /// Publish times by event id, for delivery-latency accounting. Entries
  /// are kept for the whole run (publish counts are scenario-scale).
  std::unordered_map<EventId, SimTime, EventIdHash> publish_times_;
  std::uint64_t latency_samples_ = 0;
  SimTime latency_total_ = 0;
  SimTime latency_max_ = 0;
};

}  // namespace pmc

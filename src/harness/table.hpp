// Fixed-width table printing for the bench binaries — every figure/table
// bench emits the same series the paper plots, in aligned columns.
#pragma once

#include <iosfwd>
#include <string>
#include <vector>

namespace pmc {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Adds a data row; must have as many cells as there are headers.
  void add_row(std::vector<std::string> cells);

  /// Formats a double with `precision` digits after the point.
  static std::string num(double v, int precision = 4);
  static std::string integer(std::uint64_t v);

  void print(std::ostream& os) const;

  /// Raw cells, so bench binaries can mirror the printed table into the
  /// machine-readable --json output without rebuilding the rows.
  const std::vector<std::string>& headers() const noexcept {
    return headers_;
  }
  const std::vector<std::vector<std::string>>& rows() const noexcept {
    return rows_;
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pmc

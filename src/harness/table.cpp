#include "harness/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

#include "common/contract.hpp"

namespace pmc {

Table::Table(std::vector<std::string> headers)
    : headers_(std::move(headers)) {
  PMC_EXPECTS(!headers_.empty());
}

void Table::add_row(std::vector<std::string> cells) {
  PMC_EXPECTS(cells.size() == headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::integer(std::uint64_t v) { return std::to_string(v); }

void Table::print(std::ostream& os) const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c)
    widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      widths[c] = std::max(widths[c], row[c].size());

  const auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << (c == 0 ? "" : "  ") << std::setw(static_cast<int>(widths[c]))
         << row[c];
    }
    os << "\n";
  };
  print_row(headers_);
  std::size_t total = 0;
  for (const auto w : widths) total += w + 2;
  os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

}  // namespace pmc

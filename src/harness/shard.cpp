#include "harness/shard.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/contract.hpp"
#include "common/hash.hpp"
#include "wire/messages.hpp"

namespace pmc {

namespace {

// Labeled RNG stream tags (arbitrary distinct salts, disjoint from the
// single-group tags in scenario.cpp).
constexpr std::uint64_t kShardStreamSalt = 0x5ba4d5a17;
constexpr std::uint64_t kShardSeedSalt = 0x5ba4d5eed;
constexpr std::uint64_t kRouterPickSalt = 0x4007e4b1c;
constexpr std::uint64_t kCrossEventSalt = 0xc4055e7e;

/// Synthetic EventId::publisher namespace for cross-shard publishers; far
/// above any pm pid (which are ProcessId-sized), so ids never collide.
constexpr std::uint64_t kCrossPublisherIdBase = std::uint64_t{1} << 62;

/// Many small co-resident schedulers: past this shard count, each shard's
/// calendar wheel drops to 64 buckets (the scheduler's minimum; a ~4 ms
/// window, enough for message latencies; periodic timers ride the
/// overflow heap). Purely a memory knob — the execution order is the
/// (at, seq) total order under any wheel geometry
/// (tests/scheduler_property_test.cpp).
constexpr std::size_t kCompactWheelShards = 8;

std::uint64_t shard_tag(std::uint64_t salt, std::uint64_t index) {
  return fnv1a_u64(kFnv1aBasis ^ salt, index);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedConfig
// ---------------------------------------------------------------------------

std::size_t ShardedConfig::total_capacity() const {
  return shards * shard.capacity();
}

void ShardedConfig::validate() const {
  PMC_EXPECTS(shards >= 1);
  shard.validate();
  for (const auto s : adaptive_shards) PMC_EXPECTS(s < shards);
  // Two protocol nodes per address, across every shard, must stay within
  // the same sanity bound ChurnConfig imposes on a single group — and the
  // pid ranges must fit comfortably in ProcessId.
  PMC_EXPECTS(total_capacity() <= (std::size_t{1} << 22));
  PMC_EXPECTS(barrier_interval >= 0);
  if (cross.publishers > 0) {
    PMC_EXPECTS(cross.span >= 1 && cross.span <= shards);
    PMC_EXPECTS(cross.events >= 1);
    PMC_EXPECTS(cross.start >= 0);
    PMC_EXPECTS(cross.spacing >= 0);
    if (cross.spacing > 0) {
      // The last event of every publisher must stay representable.
      const auto last = static_cast<std::uint64_t>(cross.events - 1);
      PMC_EXPECTS(last <= static_cast<std::uint64_t>(
                              std::numeric_limits<SimTime>::max() /
                              cross.spacing));
      const SimTime spread = static_cast<SimTime>(last) * cross.spacing;
      PMC_EXPECTS(cross.start <=
                  std::numeric_limits<SimTime>::max() - spread);
    }
  }
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(std::vector<ChurnSim*> shards,
                         std::vector<Rng> picks)
    : shards_(std::move(shards)), picks_(std::move(picks)) {
  PMC_EXPECTS(!shards_.empty());
  PMC_EXPECTS(picks_.size() == shards_.size());
  for (const auto* shard : shards_) PMC_EXPECTS(shard != nullptr);
  pending_.resize(shards_.size() + 1);
}

void ShardRouter::enqueue(const EventId& id, double u,
                          std::span<const std::size_t> targets,
                          std::size_t source) {
  const std::size_t slot = source == kExternalSource ? 0 : source + 1;
  PMC_EXPECTS(slot < pending_.size());
  Pending p{id, u, {}};
  p.targets.reserve(targets.size());
  for (const auto t : targets) {
    PMC_EXPECTS(t < shards_.size());
    p.targets.push_back(t);
  }
  pending_[slot].push_back(std::move(p));
}

bool ShardRouter::publish_into(std::size_t target, const EventId& id,
                               double u) {
  PMC_EXPECTS(target < shards_.size());
  return shards_[target]->publish_external(id, u, picks_[target]);
}

std::uint64_t ShardRouter::drain() {
  std::uint64_t landed = 0;
  for (auto& buffer : pending_) {
    for (const auto& p : buffer) {
      for (const auto t : p.targets) {
        if (publish_into(t, p.id, p.u)) ++landed;
      }
    }
    buffer.clear();
  }
  return landed;
}

// ---------------------------------------------------------------------------
// ShardedSummary
// ---------------------------------------------------------------------------

std::string ShardedSummary::to_string(bool per_shard) const {
  std::ostringstream out;
  out << "shards " << shards.size() << " | cross published "
      << cross_published << " | " << aggregate.to_string() << " | net sent "
      << network.sent << " lost " << network.lost << " filtered "
      << network.filtered << " | sched " << scheduler_executed
      << " | fingerprint " << std::hex << fingerprint << std::dec;
  if (per_shard) {
    for (std::size_t s = 0; s < shards.size(); ++s)
      out << "\n  shard " << s << ": " << shards[s].to_string();
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// ShardedSim
// ---------------------------------------------------------------------------

ShardedSim::ShardedSim(ShardedConfig config) : config_(config) {
  config_.validate();
  barrier_interval_ = config_.barrier_interval > 0 ? config_.barrier_interval
                                                   : config_.shard.period;

  NetworkConfig net;
  net.loss_probability = config_.shard.loss;
  net.latency_min = config_.shard.latency_min;
  net.latency_max = config_.shard.latency_max;

  SchedulerTuning tuning;
  if (config_.shards >= kCompactWheelShards) tuning.bucket_count_log2 = 6;

  const std::size_t capacity = config_.shard.capacity();
  runtimes_.reserve(config_.shards);
  interns_.reserve(config_.shards);
  shards_.reserve(config_.shards);
  cross_.resize(config_.shards);
  std::vector<Rng> picks;
  picks.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    ChurnConfig cfg = config_.shard;
    // Per-shard subscription seed: same address, different shard -> an
    // independent interest profile.
    cfg.seed = fnv1a_u64(shard_tag(kShardSeedSalt, s), config_.shard.seed);
    if (!config_.adaptive_shards.empty()) {
      cfg.adaptive = std::find(config_.adaptive_shards.begin(),
                               config_.adaptive_shards.end(),
                               s) != config_.adaptive_shards.end();
    }
    // Every runtime is seeded with the *master* seed: labeled streams are
    // pure functions of (base seed, tag), so shard s's draws here equal
    // its draws when every shard shared one runtime — which is what keeps
    // the pre-split golden fingerprints valid.
    runtimes_.push_back(
        std::make_unique<Runtime>(net, config_.shard.seed, tuning));
    Runtime& rt = *runtimes_.back();
    // The shard's tables hold only its own pid range [s*2C, (s+1)*2C):
    // rebased dense tables, so 31k shards don't each allocate global-pid-
    // sized vectors. Draw labels still use the global pid.
    rt.network().reserve_range(static_cast<ProcessId>(s * 2 * capacity),
                               2 * capacity);
    if (config_.shard.wire_transcode) {
      rt.network().set_transcoder([](const MessagePtr& msg) {
        return wire::decode_message(wire::encode_message(*msg));
      });
    }
    // Every shard enumerates the same address space in the same order, so
    // per-shard intern tables assign identical AddrIds.
    interns_.push_back(std::make_unique<Interns>());
    interns_.back()->reserve(capacity, config_.shard.d);
    shards_.push_back(std::make_unique<ChurnSim>(
        rt, cfg, static_cast<ProcessId>(s * 2 * capacity),
        shard_tag(kShardStreamSalt, s), *interns_.back()));
    // No loss hook: a LossBurst's default set_loss lands on the shard's
    // own network, which is exactly the scope the hook used to enforce.
    picks.push_back(rt.make_stream(shard_tag(kRouterPickSalt, s)));
  }

  std::vector<ChurnSim*> raw;
  raw.reserve(shards_.size());
  for (const auto& shard : shards_) raw.push_back(shard.get());
  router_ = std::make_unique<ShardRouter>(std::move(raw), std::move(picks));
  schedule_cross_publishers();

  pool_ = std::make_unique<WorkerPool>(
      WorkerPool::resolve_threads(config_.threads, config_.shards));
}

ShardedSim::~ShardedSim() = default;

ChurnSim& ShardedSim::shard(std::size_t idx) {
  PMC_EXPECTS(idx < shards_.size());
  return *shards_[idx];
}

const ChurnSim& ShardedSim::shard(std::size_t idx) const {
  PMC_EXPECTS(idx < shards_.size());
  return *shards_[idx];
}

Runtime& ShardedSim::shard_runtime(std::size_t idx) {
  PMC_EXPECTS(idx < runtimes_.size());
  return *runtimes_[idx];
}

void ShardedSim::play(std::size_t shard_idx, const ScenarioScript& script) {
  shard(shard_idx).play(script);
}

void ShardedSim::play_all(const ScenarioScript& script) {
  for (const auto& shard : shards_) shard->play(script);
}

void ShardedSim::run_for(SimTime duration) { run_until(now_ + duration); }

void ShardedSim::run_until(SimTime deadline) {
  while (now_ < deadline) {
    const SimTime target = std::min(deadline, now_ + barrier_interval_);
    // Within the epoch every shard advances alone: no shared mutable
    // state, so lane assignment cannot affect outcomes. The pool's run()
    // is the barrier that publishes every shard's writes back.
    pool_->run(shards_.size(), [this, target](std::size_t s) {
      shards_[s]->run_until(target);
    });
    now_ = target;
    // Exchange buffered cross publishes at the barrier, in (source,
    // enqueue) order; they land at t = now and unfold next epoch.
    cross_drained_ += router_->drain();
  }
}

void ShardedSim::schedule_cross_publishers() {
  const auto& cross = config_.cross;
  for (std::size_t p = 0; p < cross.publishers; ++p) {
    for (std::size_t k = 0; k < cross.events; ++k) {
      const SimTime at =
          cross.start + static_cast<SimTime>(k) * cross.spacing;
      // The event's attribute depends only on (publisher, sequence), so a
      // shard's churn can never shift which events the others see.
      const double u =
          runtimes_.front()
              ->make_stream(fnv1a_u64(shard_tag(kCrossEventSalt, p), k))
              .next_double();
      const EventId id{kCrossPublisherIdBase + p, k};
      // One injection per spanned shard, pre-scheduled in that shard's own
      // queue (same relative order vs the shard's events as the shared-
      // scheduler engine gave: ctor-scheduled, (p, k) iteration order).
      for (std::size_t j = 0; j < cross.span; ++j) {
        const std::size_t s = (p + j) % config_.shards;
        const bool primary = j == 0;
        runtimes_[s]->scheduler().schedule_at(
            at, [this, s, id, u, primary] {
              ShardCross& c = cross_[s];
              ++c.runs;
              if (primary) ++c.primary;
              if (router_->publish_into(s, id, u)) ++c.landed;
            });
      }
    }
  }
}

std::uint64_t ShardedSim::cross_published() const noexcept {
  std::uint64_t landed = cross_drained_;
  for (const auto& c : cross_) landed += c.landed;
  return landed;
}

ShardedSummary ShardedSim::summary() const {
  ShardedSummary out;
  out.shards.reserve(shards_.size());
  std::uint64_t fp = kFnv1aBasis;
  std::uint64_t env_shards = 0, env_loss_acc = 0, env_crash_acc = 0;
  for (const auto& shard : shards_) {
    GroupSummary g = shard->group_summary();
    out.aggregate.counters += g.counters;
    out.aggregate.live += g.live;
    out.aggregate.joined += g.joined;
    out.aggregate.membership_tombstones += g.membership_tombstones;
    out.aggregate.joins_served += g.joins_served;
    out.aggregate.latency_samples += g.latency_samples;
    out.aggregate.latency_total += g.latency_total;
    out.aggregate.latency_max =
        std::max(out.aggregate.latency_max, g.latency_max);
    out.aggregate.env_windows += g.env_windows;
    out.aggregate.bound_collapsed += g.bound_collapsed;
    if (g.env_windows > 0) {
      env_loss_acc += g.env_loss_ppm;
      env_crash_acc += g.env_crash_ppm;
      ++env_shards;
    }
    fp = fnv1a_u64(fp, g.fingerprint);
    out.shards.push_back(std::move(g));
  }
  if (env_shards > 0) {
    // Unweighted mean over the estimating shards (display aggregate; the
    // per-shard summaries carry the exact values).
    out.aggregate.env_loss_ppm = env_loss_acc / env_shards;
    out.aggregate.env_crash_ppm = env_crash_acc / env_shards;
  }
  out.aggregate.fingerprint = fp;

  std::uint64_t executed = 0;
  std::uint64_t cross_runs = 0, cross_primary = 0;
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    const NetworkCounters& nc = runtimes_[s]->network().counters();
    out.network.sent += nc.sent;
    out.network.delivered += nc.delivered;
    out.network.lost += nc.lost;
    out.network.filtered += nc.filtered;
    out.network.dead_target += nc.dead_target;
    executed += runtimes_[s]->scheduler().executed();
    cross_runs += cross_[s].runs;
    cross_primary += cross_[s].primary;
  }
  // The single-runtime engine ran ONE callback per cross event however
  // many shards it spanned; the per-shard queues run one per spanned
  // shard. Collapse the fan-out back so the digest (and its pinned
  // fingerprints) count events, not copies.
  out.scheduler_executed = executed - cross_runs + cross_primary;
  out.cross_published = cross_published();

  std::uint64_t h = fp;
  h = fnv1a_u64(h, out.network.sent);
  h = fnv1a_u64(h, out.network.delivered);
  h = fnv1a_u64(h, out.network.lost);
  h = fnv1a_u64(h, out.network.filtered);
  h = fnv1a_u64(h, out.network.dead_target);
  h = fnv1a_u64(h, out.scheduler_executed);
  h = fnv1a_u64(h, out.cross_published);
  out.fingerprint = h;
  return out;
}

}  // namespace pmc

#include "harness/shard.hpp"

#include <algorithm>
#include <limits>
#include <sstream>

#include "common/contract.hpp"
#include "common/hash.hpp"
#include "wire/messages.hpp"

namespace pmc {

namespace {

// Labeled RNG stream tags (arbitrary distinct salts, disjoint from the
// single-group tags in scenario.cpp).
constexpr std::uint64_t kShardStreamSalt = 0x5ba4d5a17;
constexpr std::uint64_t kShardSeedSalt = 0x5ba4d5eed;
constexpr std::uint64_t kRouterPickSalt = 0x4007e4b1c;
constexpr std::uint64_t kCrossEventSalt = 0xc4055e7e;

/// Synthetic EventId::publisher namespace for cross-shard publishers; far
/// above any pm pid (which are ProcessId-sized), so ids never collide.
constexpr std::uint64_t kCrossPublisherIdBase = std::uint64_t{1} << 62;

std::uint64_t shard_tag(std::uint64_t salt, std::uint64_t index) {
  return fnv1a_u64(kFnv1aBasis ^ salt, index);
}

}  // namespace

// ---------------------------------------------------------------------------
// ShardedConfig
// ---------------------------------------------------------------------------

std::size_t ShardedConfig::total_capacity() const {
  return shards * shard.capacity();
}

void ShardedConfig::validate() const {
  PMC_EXPECTS(shards >= 1);
  shard.validate();
  for (const auto s : adaptive_shards) PMC_EXPECTS(s < shards);
  // Two protocol nodes per address, across every shard, must stay within
  // the same sanity bound ChurnConfig imposes on a single group — and the
  // pid ranges must fit comfortably in ProcessId.
  PMC_EXPECTS(total_capacity() <= (std::size_t{1} << 22));
  if (cross.publishers > 0) {
    PMC_EXPECTS(cross.span >= 1 && cross.span <= shards);
    PMC_EXPECTS(cross.events >= 1);
    PMC_EXPECTS(cross.start >= 0);
    PMC_EXPECTS(cross.spacing >= 0);
    if (cross.spacing > 0) {
      // The last event of every publisher must stay representable.
      const auto last = static_cast<std::uint64_t>(cross.events - 1);
      PMC_EXPECTS(last <= static_cast<std::uint64_t>(
                              std::numeric_limits<SimTime>::max() /
                              cross.spacing));
      const SimTime spread = static_cast<SimTime>(last) * cross.spacing;
      PMC_EXPECTS(cross.start <=
                  std::numeric_limits<SimTime>::max() - spread);
    }
  }
}

// ---------------------------------------------------------------------------
// ShardRouter
// ---------------------------------------------------------------------------

ShardRouter::ShardRouter(Runtime& runtime, std::vector<ChurnSim*> shards)
    : shards_(std::move(shards)) {
  PMC_EXPECTS(!shards_.empty());
  picks_.reserve(shards_.size());
  for (std::size_t s = 0; s < shards_.size(); ++s) {
    PMC_EXPECTS(shards_[s] != nullptr);
    picks_.push_back(runtime.make_stream(shard_tag(kRouterPickSalt, s)));
  }
}

std::size_t ShardRouter::publish(const EventId& id, double u,
                                 std::span<const std::size_t> targets) {
  std::size_t reached = 0;
  for (const auto s : targets) {
    PMC_EXPECTS(s < shards_.size());
    if (shards_[s]->publish_external(id, u, picks_[s])) ++reached;
  }
  return reached;
}

// ---------------------------------------------------------------------------
// ShardedSummary
// ---------------------------------------------------------------------------

std::string ShardedSummary::to_string(bool per_shard) const {
  std::ostringstream out;
  out << "shards " << shards.size() << " | cross published "
      << cross_published << " | " << aggregate.to_string() << " | net sent "
      << network.sent << " lost " << network.lost << " filtered "
      << network.filtered << " | sched " << scheduler_executed
      << " | fingerprint " << std::hex << fingerprint << std::dec;
  if (per_shard) {
    for (std::size_t s = 0; s < shards.size(); ++s)
      out << "\n  shard " << s << ": " << shards[s].to_string();
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// ShardedSim
// ---------------------------------------------------------------------------

ShardedSim::ShardedSim(ShardedConfig config) : config_(config) {
  config_.validate();

  NetworkConfig net;
  net.loss_probability = config_.shard.loss;
  net.latency_min = config_.shard.latency_min;
  net.latency_max = config_.shard.latency_max;
  runtime_ = std::make_unique<Runtime>(net, config_.shard.seed);
  // The population is known up front: K shards, 2 protocol nodes per
  // address. One reservation here means the shared network's handler and
  // per-sender tables never resize (and the sparse map never rehashes)
  // however many shards spawn processes mid-run.
  runtime_->network().reserve(config_.shards * 2 * config_.shard.capacity());
  if (config_.shard.wire_transcode) {
    runtime_->network().set_transcoder([](const MessagePtr& msg) {
      return wire::decode_message(wire::encode_message(*msg));
    });
  }

  const std::size_t capacity = config_.shard.capacity();
  // Every shard enumerates the same address space, so the shared table
  // holds exactly `capacity` distinct addresses however many shards run.
  interns_ = std::make_unique<Interns>();
  interns_->reserve(capacity, config_.shard.d);
  shard_loss_.assign(config_.shards, config_.shard.loss);
  shards_.reserve(config_.shards);
  for (std::size_t s = 0; s < config_.shards; ++s) {
    ChurnConfig cfg = config_.shard;
    // Per-shard subscription seed: same address, different shard -> an
    // independent interest profile.
    cfg.seed = fnv1a_u64(shard_tag(kShardSeedSalt, s), config_.shard.seed);
    if (!config_.adaptive_shards.empty()) {
      cfg.adaptive = std::find(config_.adaptive_shards.begin(),
                               config_.adaptive_shards.end(),
                               s) != config_.adaptive_shards.end();
    }
    shards_.push_back(std::make_unique<ChurnSim>(
        *runtime_, cfg, static_cast<ProcessId>(s * 2 * capacity),
        shard_tag(kShardStreamSalt, s), *interns_));
    // Scope LossBurst actions to this shard's slice of the loss model.
    shards_.back()->set_loss_hook(
        [this, s](double eps) { shard_loss_[s] = eps; });
  }
  runtime_->network().set_loss_model(
      [this, capacity](ProcessId from, ProcessId /*to*/) {
        const std::size_t s = from / (2 * capacity);
        return s < shard_loss_.size() ? shard_loss_[s] : config_.shard.loss;
      });

  std::vector<ChurnSim*> raw;
  raw.reserve(shards_.size());
  for (const auto& shard : shards_) raw.push_back(shard.get());
  router_ = std::make_unique<ShardRouter>(*runtime_, std::move(raw));
  schedule_cross_publishers();
}

ShardedSim::~ShardedSim() = default;

ChurnSim& ShardedSim::shard(std::size_t idx) {
  PMC_EXPECTS(idx < shards_.size());
  return *shards_[idx];
}

const ChurnSim& ShardedSim::shard(std::size_t idx) const {
  PMC_EXPECTS(idx < shards_.size());
  return *shards_[idx];
}

void ShardedSim::play(std::size_t shard_idx, const ScenarioScript& script) {
  shard(shard_idx).play(script);
}

void ShardedSim::play_all(const ScenarioScript& script) {
  for (const auto& shard : shards_) shard->play(script);
}

void ShardedSim::run_for(SimTime duration) { runtime_->run_for(duration); }
void ShardedSim::run_until(SimTime deadline) {
  runtime_->run_until(deadline);
}
SimTime ShardedSim::now() const noexcept { return runtime_->now(); }

void ShardedSim::schedule_cross_publishers() {
  const auto& cross = config_.cross;
  for (std::size_t p = 0; p < cross.publishers; ++p) {
    std::vector<std::size_t> targets;
    targets.reserve(cross.span);
    for (std::size_t j = 0; j < cross.span; ++j)
      targets.push_back((p + j) % config_.shards);
    for (std::size_t k = 0; k < cross.events; ++k) {
      const SimTime at =
          cross.start + static_cast<SimTime>(k) * cross.spacing;
      // The event's attribute depends only on (publisher, sequence), so a
      // shard's churn can never shift which events the others see.
      const double u =
          runtime_
              ->make_stream(fnv1a_u64(shard_tag(kCrossEventSalt, p), k))
              .next_double();
      const EventId id{kCrossPublisherIdBase + p, k};
      runtime_->scheduler().schedule_at(at, [this, id, u, targets] {
        cross_published_ += router_->publish(id, u, targets);
      });
    }
  }
}

ShardedSummary ShardedSim::summary() const {
  ShardedSummary out;
  out.shards.reserve(shards_.size());
  std::uint64_t fp = kFnv1aBasis;
  std::uint64_t env_shards = 0, env_loss_acc = 0, env_crash_acc = 0;
  for (const auto& shard : shards_) {
    GroupSummary g = shard->group_summary();
    out.aggregate.counters += g.counters;
    out.aggregate.live += g.live;
    out.aggregate.joined += g.joined;
    out.aggregate.membership_tombstones += g.membership_tombstones;
    out.aggregate.joins_served += g.joins_served;
    out.aggregate.latency_samples += g.latency_samples;
    out.aggregate.latency_total += g.latency_total;
    out.aggregate.latency_max =
        std::max(out.aggregate.latency_max, g.latency_max);
    out.aggregate.env_windows += g.env_windows;
    out.aggregate.bound_collapsed += g.bound_collapsed;
    if (g.env_windows > 0) {
      env_loss_acc += g.env_loss_ppm;
      env_crash_acc += g.env_crash_ppm;
      ++env_shards;
    }
    fp = fnv1a_u64(fp, g.fingerprint);
    out.shards.push_back(std::move(g));
  }
  if (env_shards > 0) {
    // Unweighted mean over the estimating shards (display aggregate; the
    // per-shard summaries carry the exact values).
    out.aggregate.env_loss_ppm = env_loss_acc / env_shards;
    out.aggregate.env_crash_ppm = env_crash_acc / env_shards;
  }
  out.aggregate.fingerprint = fp;
  out.network = runtime_->network().counters();
  out.scheduler_executed = runtime_->scheduler().executed();
  out.cross_published = cross_published_;

  std::uint64_t h = fp;
  h = fnv1a_u64(h, out.network.sent);
  h = fnv1a_u64(h, out.network.delivered);
  h = fnv1a_u64(h, out.network.lost);
  h = fnv1a_u64(h, out.network.filtered);
  h = fnv1a_u64(h, out.network.dead_target);
  h = fnv1a_u64(h, out.scheduler_executed);
  h = fnv1a_u64(h, out.cross_published);
  out.fingerprint = h;
  return out;
}

}  // namespace pmc

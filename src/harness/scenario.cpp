#include "harness/scenario.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <fstream>
#include <limits>
#include <map>
#include <sstream>
#include <string_view>

#include "common/contract.hpp"
#include "common/hash.hpp"
#include "harness/workload.hpp"
#include "wire/messages.hpp"

namespace pmc {

namespace {

template <class... Ts>
struct Overload : Ts... {
  using Ts::operator()...;
};
template <class... Ts>
Overload(Ts...) -> Overload<Ts...>;

// Labeled RNG stream tags (arbitrary distinct salts).
constexpr std::uint64_t kFounderStream = 0xf0bdde55;
constexpr std::uint64_t kActionStreamSalt = 0xac710095;

SimTime parse_time_token(const std::string& token, std::size_t line) {
  try {
    return parse_sim_time(token);
  } catch (const std::invalid_argument& e) {
    throw std::invalid_argument("scenario line " + std::to_string(line) +
                                ": " + e.what());
  }
}

std::string format_time(SimTime t) {
  if (t != 0 && t % sim_sec(1) == 0)
    return std::to_string(t / sim_sec(1)) + "s";
  if (t != 0 && t % sim_ms(1) == 0)
    return std::to_string(t / sim_ms(1)) + "ms";
  return std::to_string(t) + "us";
}

std::size_t parse_count(const std::string& token, std::size_t line) {
  // Strict: every character must be a digit ("3ms" is a typo, not a 3).
  const bool all_digits =
      !token.empty() &&
      std::all_of(token.begin(), token.end(), [](unsigned char c) {
        return std::isdigit(c) != 0;
      });
  if (all_digits) {
    try {
      return static_cast<std::size_t>(std::stoull(token));
    } catch (const std::exception&) {  // out_of_range
    }
  }
  throw std::invalid_argument("scenario line " + std::to_string(line) +
                              ": expected a count, got '" + token + "'");
}

double parse_double_token(const std::string& token, std::size_t line,
                          const char* what) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size())
    throw std::invalid_argument("scenario line " + std::to_string(line) +
                                ": expected a " + what + ", got '" + token +
                                "'");
  return value;
}

std::vector<AddrComponent> parse_components(const std::string& token,
                                            std::size_t line) {
  std::vector<AddrComponent> out;
  std::istringstream parts(token);
  for (std::string part; std::getline(parts, part, ',');) {
    const std::size_t c = parse_count(part, line);
    if (c > std::numeric_limits<AddrComponent>::max())
      throw std::invalid_argument("scenario line " + std::to_string(line) +
                                  ": address component out of range: '" +
                                  part + "'");
    out.push_back(static_cast<AddrComponent>(c));
  }
  return out;
}

AddressSpace make_space(const ChurnConfig& config) {
  config.validate();
  return AddressSpace::regular(static_cast<AddrComponent>(config.a),
                               config.d);
}

/// Splices every TraceReplay's parsed child timeline into the script,
/// offsetting the child's times (including the absolute heal/until times
/// carried inside Partition/AsymPartition/Flap ops) by the replay action's
/// time. Nested replays are rejected; the result is re-sorted (stable, so
/// same-time actions keep script order) and still must pass validate().
ScenarioScript expand_traces(const ScenarioScript& script) {
  const auto checked_add = [](SimTime base, SimTime offset,
                              const std::string& path) {
    if (base > std::numeric_limits<SimTime>::max() - offset)
      throw std::invalid_argument("scenario trace '" + path +
                                  "': offset time out of range");
    return base + offset;
  };
  std::vector<ScenarioAction> out;
  for (const auto& action : script.actions()) {
    const auto* replay = std::get_if<TraceReplay>(&action.op);
    if (replay == nullptr) {
      out.push_back(action);
      continue;
    }
    std::ifstream in(replay->path);
    if (!in)
      throw std::invalid_argument("scenario trace '" + replay->path +
                                  "': cannot open");
    std::ostringstream text;
    text << in.rdbuf();
    ScenarioScript child;
    try {
      child = ScenarioScript::parse(text.str());
    } catch (const std::invalid_argument& e) {
      throw std::invalid_argument("scenario trace '" + replay->path +
                                  "': " + e.what());
    }
    for (const auto& sub : child.actions()) {
      if (std::holds_alternative<TraceReplay>(sub.op))
        throw std::invalid_argument("scenario trace '" + replay->path +
                                    "': nested replay is not supported");
      ScenarioOp op = sub.op;
      if (auto* part = std::get_if<Partition>(&op)) {
        part->heal_at = checked_add(part->heal_at, action.at, replay->path);
      } else if (auto* asym = std::get_if<AsymPartition>(&op)) {
        asym->heal_at = checked_add(asym->heal_at, action.at, replay->path);
      } else if (auto* flap = std::get_if<Flap>(&op)) {
        flap->until = checked_add(flap->until, action.at, replay->path);
      }
      out.push_back(ScenarioAction{
          checked_add(sub.at, action.at, replay->path), std::move(op)});
    }
  }
  std::stable_sort(
      out.begin(), out.end(),
      [](const ScenarioAction& a, const ScenarioAction& b) {
        return a.at < b.at;
      });
  ScenarioScript expanded;
  for (auto& a : out) expanded.add(a.at, std::move(a.op));
  return expanded;
}

}  // namespace

SimTime parse_sim_time(const std::string& token) {
  std::size_t digits = 0;
  while (digits < token.size() &&
         std::isdigit(static_cast<unsigned char>(token[digits])))
    ++digits;
  if (digits == 0)
    throw std::invalid_argument("expected a time, got '" + token + "'");
  std::int64_t value = 0;
  try {
    value = std::stoll(token.substr(0, digits));
  } catch (const std::exception&) {  // out_of_range on overflow
    throw std::invalid_argument("time out of range: '" + token + "'");
  }
  const std::string unit = token.substr(digits);
  // Guard the unit multiplication too: sim_ms/sim_sec must not overflow.
  const std::int64_t scale =
      (unit == "ms") ? 1000 : (unit == "s") ? 1000 * 1000 : 1;
  if (value > std::numeric_limits<SimTime>::max() / scale)
    throw std::invalid_argument("time out of range: '" + token + "'");
  if (unit.empty() || unit == "us") return sim_us(value);
  if (unit == "ms") return sim_ms(value);
  if (unit == "s") return sim_sec(value);
  throw std::invalid_argument("unknown time unit '" + unit + "'");
}

// ---------------------------------------------------------------------------
// ScenarioScript
// ---------------------------------------------------------------------------

ScenarioScript& ScenarioScript::add(SimTime at, ScenarioOp op) {
  actions_.push_back(ScenarioAction{at, std::move(op)});
  return *this;
}

void ScenarioScript::validate(std::uint64_t prior_crashes) const {
  SimTime prev = 0;
  std::uint64_t crashes = prior_crashes;
  std::uint64_t recovers = 0;
  SimTime loss_busy_until = 0;
  SimTime dup_busy_until = 0;
  for (const auto& action : actions_) {
    PMC_EXPECTS(action.at >= 0);
    PMC_EXPECTS(action.at >= prev);  // timeline must be sorted
    prev = action.at;
    std::visit(
        Overload{
            [&](const CrashNodes& op) {
              PMC_EXPECTS(op.count >= 1);
              crashes += op.count;
            },
            [&](const RecoverNodes& op) {
              PMC_EXPECTS(op.count >= 1);
              recovers += op.count;
              PMC_EXPECTS(recovers <= crashes);  // recover-before-crash
            },
            [&](const Join& op) { PMC_EXPECTS(op.count >= 1); },
            [&](const Leave& op) { PMC_EXPECTS(op.count >= 1); },
            [&](const Partition& op) {
              PMC_EXPECTS(!op.side.empty());
              PMC_EXPECTS(op.heal_at > action.at);
            },
            [&](const LossBurst& op) {
              PMC_EXPECTS(op.eps >= 0.0 && op.eps <= 1.0);
              PMC_EXPECTS(op.duration > 0);
              PMC_EXPECTS(op.duration <=
                          std::numeric_limits<SimTime>::max() - action.at);
              // Overlapping bursts would silently truncate each other when
              // the earlier one's restore fires; reject them instead.
              PMC_EXPECTS(action.at >= loss_busy_until);
              loss_busy_until = action.at + op.duration;
            },
            [&](const PublishBurst& op) {
              PMC_EXPECTS(op.count >= 1);
              PMC_EXPECTS(op.spacing >= 0);
              if (op.spacing > 0) {
                // The whole spread must stay representable: the k-th
                // publish fires at action.at + k * spacing.
                const auto last = static_cast<std::uint64_t>(op.count - 1);
                PMC_EXPECTS(
                    last <= static_cast<std::uint64_t>(
                                std::numeric_limits<SimTime>::max() /
                                op.spacing));
                const SimTime spread =
                    static_cast<SimTime>(last) * op.spacing;
                PMC_EXPECTS(action.at <=
                            std::numeric_limits<SimTime>::max() - spread);
              }
            },
            [&](const LatencyProfile& op) {
              PMC_EXPECTS(op.median >= 0);
              // median == 0 restores the uniform default; sigma must be 0
              // there so every script has exactly one canonical text form.
              if (op.median > 0) {
                PMC_EXPECTS(op.sigma > 0.0 && op.sigma <= 4.0);
                // The clamp window is [0, 16 * median].
                PMC_EXPECTS(op.median <=
                            std::numeric_limits<SimTime>::max() / 16);
              } else {
                PMC_EXPECTS(op.sigma == 0.0);
              }
            },
            [&](const AsymPartition& op) {
              PMC_EXPECTS(!op.from_side.empty());
              PMC_EXPECTS(!op.to_side.empty());
              PMC_EXPECTS(op.heal_at > action.at);
            },
            [&](const Flap& op) {
              PMC_EXPECTS(!op.side.empty());
              PMC_EXPECTS(op.period > 0);
              PMC_EXPECTS(op.duty > 0.0 && op.duty < 1.0);
              PMC_EXPECTS(op.until > action.at);
            },
            [&](const RackFailure& op) {
              PMC_EXPECTS(!op.prefix.empty());
            },
            [&](const JoinStorm& op) {
              PMC_EXPECTS(op.count >= 1);
              PMC_EXPECTS(op.over >= 0);
              // The last join of the storm fires at action.at + over.
              PMC_EXPECTS(op.over <=
                          std::numeric_limits<SimTime>::max() - action.at);
            },
            [&](const DuplicateBurst& op) {
              PMC_EXPECTS(op.prob >= 0.0 && op.prob <= 1.0);
              PMC_EXPECTS(op.duration > 0);
              PMC_EXPECTS(op.duration <=
                          std::numeric_limits<SimTime>::max() - action.at);
              // Same non-overlap rule as loss bursts: a burst starting
              // inside another's window would truncate its restore.
              PMC_EXPECTS(action.at >= dup_busy_until);
              dup_busy_until = action.at + op.duration;
            },
            [&](const TraceReplay& op) {
              // Leaf check only: ChurnSim::play expands the trace (and
              // re-validates the spliced timeline); here we just need a
              // path the text format can round-trip.
              PMC_EXPECTS(!op.path.empty());
              PMC_EXPECTS(op.path.find('#') == std::string::npos);
              PMC_EXPECTS(std::none_of(
                  op.path.begin(), op.path.end(), [](unsigned char ch) {
                    return std::isspace(ch) != 0;
                  }));
            },
        },
        action.op);
  }
}

ScenarioScript ScenarioScript::parse(const std::string& text) {
  ScenarioScript script;
  std::istringstream stream(text);
  std::string raw_line;
  std::size_t line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    const auto hash = raw_line.find('#');
    if (hash != std::string::npos) raw_line.resize(hash);
    std::istringstream line(raw_line);
    std::vector<std::string> tok;
    for (std::string t; line >> t;) tok.push_back(std::move(t));
    if (tok.empty()) continue;

    const auto fail = [&](const std::string& why) -> std::invalid_argument {
      return std::invalid_argument("scenario line " +
                                   std::to_string(line_no) + ": " + why);
    };
    if (tok[0] != "at" || tok.size() < 3) {
      throw fail("expected 'at <time> <action> ...'");
    }
    const SimTime at = parse_time_token(tok[1], line_no);
    const std::string& verb = tok[2];
    const auto arg = [&](std::size_t i) -> const std::string& {
      if (i >= tok.size()) throw fail("missing argument for '" + verb + "'");
      return tok[i];
    };

    std::size_t expected = 4;  // "at <time> <verb> <count>"
    if (verb == "join") {
      script.add(at, Join{parse_count(arg(3), line_no)});
    } else if (verb == "leave") {
      script.add(at, Leave{parse_count(arg(3), line_no)});
    } else if (verb == "crash") {
      script.add(at, CrashNodes{parse_count(arg(3), line_no)});
    } else if (verb == "recover") {
      script.add(at, RecoverNodes{parse_count(arg(3), line_no)});
    } else if (verb == "partition") {
      Partition op;
      std::istringstream sides(arg(3));
      for (std::string part; std::getline(sides, part, ',');) {
        const std::size_t c = parse_count(part, line_no);
        if (c > std::numeric_limits<AddrComponent>::max())
          throw fail("partition component out of range: '" + part + "'");
        op.side.push_back(static_cast<AddrComponent>(c));
      }
      if (arg(4) != "heal") throw fail("expected 'heal <time>'");
      op.heal_at = parse_time_token(arg(5), line_no);
      script.add(at, std::move(op));
      expected = 6;
    } else if (verb == "loss") {
      LossBurst op;
      const std::string& eps = arg(3);
      char* end = nullptr;
      op.eps = std::strtod(eps.c_str(), &end);
      if (eps.empty() || end != eps.c_str() + eps.size())
        throw fail("expected a loss probability, got '" + eps + "'");
      if (arg(4) != "for") throw fail("expected 'for <duration>'");
      op.duration = parse_time_token(arg(5), line_no);
      script.add(at, op);
      expected = 6;
    } else if (verb == "publish") {
      PublishBurst op;
      op.count = parse_count(arg(3), line_no);
      if (tok.size() > 4) {
        if (arg(4) != "every") throw fail("expected 'every <spacing>'");
        op.spacing = parse_time_token(arg(5), line_no);
        expected = 6;
      }
      script.add(at, op);
    } else if (verb == "latency") {
      LatencyProfile op;
      if (arg(3) == "uniform") {
        // defaults: median 0 restores the uniform draw
      } else if (arg(3) == "lognormal") {
        op.median = parse_time_token(arg(4), line_no);
        op.sigma = parse_double_token(arg(5), line_no, "sigma");
        expected = 6;
      } else {
        throw fail("expected 'lognormal <median> <sigma>' or 'uniform'");
      }
      script.add(at, op);
    } else if (verb == "asym") {
      AsymPartition op;
      op.from_side = parse_components(arg(3), line_no);
      if (arg(4) != "to") throw fail("expected 'to <components>'");
      op.to_side = parse_components(arg(5), line_no);
      if (arg(6) != "heal") throw fail("expected 'heal <time>'");
      op.heal_at = parse_time_token(arg(7), line_no);
      script.add(at, std::move(op));
      expected = 8;
    } else if (verb == "flap") {
      Flap op;
      op.side = parse_components(arg(3), line_no);
      if (arg(4) != "period") throw fail("expected 'period <time>'");
      op.period = parse_time_token(arg(5), line_no);
      if (arg(6) != "duty") throw fail("expected 'duty <fraction>'");
      op.duty = parse_double_token(arg(7), line_no, "duty fraction");
      if (arg(8) != "until") throw fail("expected 'until <time>'");
      op.until = parse_time_token(arg(9), line_no);
      script.add(at, std::move(op));
      expected = 10;
    } else if (verb == "rack") {
      RackFailure op;
      op.prefix = parse_components(arg(3), line_no);
      script.add(at, std::move(op));
    } else if (verb == "joinstorm") {
      JoinStorm op;
      op.count = parse_count(arg(3), line_no);
      if (tok.size() > 4) {
        if (arg(4) != "over") throw fail("expected 'over <spread>'");
        op.over = parse_time_token(arg(5), line_no);
        expected = 6;
      }
      script.add(at, op);
    } else if (verb == "duplicate") {
      DuplicateBurst op;
      op.prob = parse_double_token(arg(3), line_no,
                                   "duplication probability");
      if (arg(4) != "for") throw fail("expected 'for <duration>'");
      op.duration = parse_time_token(arg(5), line_no);
      script.add(at, op);
      expected = 6;
    } else if (verb == "replay") {
      script.add(at, TraceReplay{arg(3)});
    } else {
      throw fail("unknown action '" + verb + "'");
    }
    // Anything left over means the line said more than the action can
    // express — reject it rather than silently dropping qualifiers.
    if (tok.size() > expected)
      throw fail("unexpected trailing token '" + tok[expected] + "'");
  }
  return script;
}

ScenarioScript ScenarioScript::demo() {
  ScenarioScript s;
  s.add(sim_ms(200), Join{2});       // staggered joins...
  s.add(sim_ms(350), Join{2});       // ...in two waves
  s.add(sim_ms(600), PublishBurst{6, sim_ms(25)});
  s.add(sim_ms(900), CrashNodes{3});  // crash burst
  s.add(sim_ms(1000), Partition{{0, 1}, sim_ms(1800)});
  s.add(sim_ms(1200), LossBurst{0.35, sim_ms(400)});  // loss spike
  s.add(sim_ms(1400), PublishBurst{6, sim_ms(25)});
  s.add(sim_ms(2000), RecoverNodes{2});
  s.add(sim_ms(2300), Leave{1});
  s.add(sim_ms(2500), PublishBurst{4, sim_ms(50)});
  return s;
}

std::string ScenarioScript::to_string() const {
  std::ostringstream out;
  for (const auto& action : actions_) {
    out << "at " << format_time(action.at) << ' ';
    std::visit(
        Overload{
            [&](const CrashNodes& op) { out << "crash " << op.count; },
            [&](const RecoverNodes& op) { out << "recover " << op.count; },
            [&](const Join& op) { out << "join " << op.count; },
            [&](const Leave& op) { out << "leave " << op.count; },
            [&](const Partition& op) {
              out << "partition ";
              for (std::size_t i = 0; i < op.side.size(); ++i)
                out << (i ? "," : "") << op.side[i];
              out << " heal " << format_time(op.heal_at);
            },
            [&](const LossBurst& op) {
              // Shortest representation that parses back to the same
              // double, keeping parse(to_string()) exact.
              char buf[32];
              const auto res =
                  std::to_chars(buf, buf + sizeof buf, op.eps);
              out << "loss " << std::string_view(buf, res.ptr) << " for "
                  << format_time(op.duration);
            },
            [&](const PublishBurst& op) {
              out << "publish " << op.count;
              if (op.spacing > 0) out << " every " << format_time(op.spacing);
            },
            [&](const LatencyProfile& op) {
              if (op.median == 0) {
                out << "latency uniform";
              } else {
                char buf[32];
                const auto res =
                    std::to_chars(buf, buf + sizeof buf, op.sigma);
                out << "latency lognormal " << format_time(op.median) << ' '
                    << std::string_view(buf, res.ptr);
              }
            },
            [&](const AsymPartition& op) {
              out << "asym ";
              for (std::size_t i = 0; i < op.from_side.size(); ++i)
                out << (i ? "," : "") << op.from_side[i];
              out << " to ";
              for (std::size_t i = 0; i < op.to_side.size(); ++i)
                out << (i ? "," : "") << op.to_side[i];
              out << " heal " << format_time(op.heal_at);
            },
            [&](const Flap& op) {
              char buf[32];
              const auto res = std::to_chars(buf, buf + sizeof buf, op.duty);
              out << "flap ";
              for (std::size_t i = 0; i < op.side.size(); ++i)
                out << (i ? "," : "") << op.side[i];
              out << " period " << format_time(op.period) << " duty "
                  << std::string_view(buf, res.ptr) << " until "
                  << format_time(op.until);
            },
            [&](const RackFailure& op) {
              out << "rack ";
              for (std::size_t i = 0; i < op.prefix.size(); ++i)
                out << (i ? "," : "") << op.prefix[i];
            },
            [&](const JoinStorm& op) {
              out << "joinstorm " << op.count;
              if (op.over > 0) out << " over " << format_time(op.over);
            },
            [&](const DuplicateBurst& op) {
              char buf[32];
              const auto res = std::to_chars(buf, buf + sizeof buf, op.prob);
              out << "duplicate " << std::string_view(buf, res.ptr)
                  << " for " << format_time(op.duration);
            },
            [&](const TraceReplay& op) { out << "replay " << op.path; },
        },
        action.op);
    out << '\n';
  }
  return out.str();
}

// ---------------------------------------------------------------------------
// ChurnConfig
// ---------------------------------------------------------------------------

std::size_t ChurnConfig::capacity() const {
  // Saturating a^d, so a nonsense shape cannot wrap into a plausible size.
  std::size_t n = 1;
  for (std::size_t i = 0; i < d; ++i) {
    if (a != 0 && n > std::numeric_limits<std::size_t>::max() / a)
      return std::numeric_limits<std::size_t>::max();
    n *= a;
  }
  return n;
}

void ChurnConfig::validate() const {
  PMC_EXPECTS(a >= 1 && d >= 1 && r >= 1 && fanout >= 1);
  // Arities are AddrComponent-sized; a larger value would silently
  // truncate when the address space is built.
  PMC_EXPECTS(a <= std::numeric_limits<AddrComponent>::max());
  // The engine instantiates two protocol nodes per address up front;
  // beyond ~4M addresses the config is nonsense, not a workload.
  PMC_EXPECTS(capacity() <= (std::size_t{1} << 22));
  PMC_EXPECTS(pd >= 0.0 && pd <= 1.0);
  PMC_EXPECTS(initial_fill > 0.0 && initial_fill <= 1.0);
  PMC_EXPECTS(loss >= 0.0 && loss < 1.0);
  PMC_EXPECTS(latency_min >= 0 && latency_min <= latency_max);
  PMC_EXPECTS(period > 0);
  PMC_EXPECTS(suspicion_timeout > 0);
  PMC_EXPECTS(adaptive_alpha > 0.0 && adaptive_alpha <= 1.0);
  PMC_EXPECTS(adaptive_interval >= 0);
  PMC_EXPECTS(capacity() >= 2);
}

// ---------------------------------------------------------------------------
// GroupSummary / ChurnSummary
// ---------------------------------------------------------------------------

namespace {

/// GroupSummary and ChurnSummary share the group-local fields by name;
/// templating over the summary type keeps this a single field list instead
/// of a long positional parameter row two call sites could transpose.
template <class SummaryT>
void append_group_fields(std::ostringstream& out, const SummaryT& s) {
  const ChurnCounters& c = s.counters;
  out << "live " << s.live << " (joined " << s.joined << ")"
      << " | joins " << c.joins_requested << " (served " << s.joins_served
      << ")"
      << " | crashes " << c.crashes << " | leaves " << c.leaves
      << " | recoveries " << c.recoveries
      << " | partitions " << c.partitions << "/" << c.heals << " healed"
      << " | loss bursts " << c.loss_bursts
      << " | published " << c.published << " | delivered " << c.delivered;
  if (s.latency_samples > 0) {
    out << " | latency mean "
        << (static_cast<double>(s.latency_total) /
            static_cast<double>(s.latency_samples)) /
               static_cast<double>(sim_ms(1))
        << "ms max " << static_cast<double>(s.latency_max) /
               static_cast<double>(sim_ms(1)) << "ms";
  }
  if (s.env_windows > 0) {
    // ppm -> fractional display with no float round-tripping on the wire.
    out << " | env eps~" << static_cast<double>(s.env_loss_ppm) / 1e6
        << " tau~" << static_cast<double>(s.env_crash_ppm) / 1e6
        << " (" << s.env_windows << " windows)";
  }
  if (s.bound_collapsed > 0)
    out << " | bound collapsed " << s.bound_collapsed;
  if (s.dup_suppressed > 0) out << " | dup suppressed " << s.dup_suppressed;
  if (s.shed_events > 0) out << " | shed " << s.shed_events;
  out << " | tombstones " << s.membership_tombstones;
}

}  // namespace

double GroupSummary::latency_mean_ms() const {
  if (latency_samples == 0) return 0.0;
  return (static_cast<double>(latency_total) /
          static_cast<double>(latency_samples)) /
         static_cast<double>(sim_ms(1));
}

std::string GroupSummary::to_string() const {
  std::ostringstream out;
  append_group_fields(out, *this);
  out << " | fingerprint " << std::hex << fingerprint << std::dec;
  return out.str();
}

std::string ChurnSummary::to_string() const {
  std::ostringstream out;
  append_group_fields(out, *this);
  out << " | net sent " << network.sent << " lost " << network.lost
      << " filtered " << network.filtered
      << " | fingerprint " << std::hex << fingerprint << std::dec;
  return out.str();
}

// ---------------------------------------------------------------------------
// ChurnSim
// ---------------------------------------------------------------------------

ChurnSim::ChurnSim(ChurnConfig config)
    : config_(config), space_(make_space(config_)) {
  NetworkConfig net;
  net.loss_probability = config_.loss;
  net.latency_min = config_.latency_min;
  net.latency_max = config_.latency_max;
  owned_rt_ = std::make_unique<Runtime>(net, config_.seed);
  rt_ = owned_rt_.get();
  // Two protocol nodes per address: pre-size the handler and sender tables
  // so a full group never resizes them mid-run. Same idea for the intern
  // arenas: the whole address space is interned during init_population.
  rt_->network().reserve(2 * config_.capacity());
  owned_interns_ = std::make_unique<Interns>();
  owned_interns_->reserve(config_.capacity(), config_.d);
  interns_ = owned_interns_.get();
  if (config_.wire_transcode) {
    rt_->network().set_transcoder([](const MessagePtr& msg) {
      return wire::decode_message(wire::encode_message(*msg));
    });
  }
  apply_loss_ = [this](double eps) { rt_->network().set_loss(eps); };
  init_population();
}

ChurnSim::ChurnSim(Runtime& runtime, ChurnConfig config, ProcessId pid_base,
                   std::uint64_t stream_salt, Interns& interns)
    : config_(config),
      space_(make_space(config_)),
      rt_(&runtime),
      interns_(&interns),
      pid_base_(pid_base),
      stream_salt_(stream_salt) {
  // Runtime-wide knobs (latency, wire transcoding, base ε) belong to the
  // runtime's owner in shard mode; a LossBurst without a hook would leak
  // across every co-hosted group, so default to the scalar ε anyway and
  // expect the owner to install a scoped hook.
  apply_loss_ = [this](double eps) { rt_->network().set_loss(eps); };
  init_population();
}

void ChurnSim::init_population() {
  // Every address of the space owns a slot whose subscription depends only
  // on (seed, address), so churn never re-shuffles anyone else's interests.
  const auto addresses = space_.enumerate();
  slots_.reserve(addresses.size());
  for (std::size_t i = 0; i < addresses.size(); ++i) {
    Slot slot;
    auto member = stable_member(addresses[i], config_.pd, config_.seed);
    slot.address = std::move(member.address);
    slot.subscription = std::move(member.subscription);
    const AddrId id = interns_->addrs.intern(slot.address);
    if (slot_of_id_.size() <= id) slot_of_id_.resize(id + 1, kNoSlot);
    slot_of_id_[id] = i;
    slots_.push_back(std::move(slot));
  }

  // Founders: a random subset of initial_fill * capacity addresses.
  const auto n = slots_.size();
  const auto founders = std::max<std::size_t>(
      2, static_cast<std::size_t>(
             std::llround(config_.initial_fill * static_cast<double>(n))));
  Rng founder_rng = stream(kFounderStream);
  auto picks = founder_rng.sample_without_replacement(
      n, std::min(founders, n));
  std::sort(picks.begin(), picks.end());

  std::vector<Member> members;
  members.reserve(picks.size());
  for (const auto i : picks)
    members.push_back(Member{slots_[i].address, slots_[i].subscription});
  TreeConfig tc;
  tc.depth = config_.d;
  tc.redundancy = config_.r;
  oracle_ = std::make_unique<GroupTree>(tc, std::move(members), *interns_);

  for (const auto i : picks) spawn(i, /*founder=*/true, kNoProcess);

  if (config_.adaptive) {
    adaptive_interval_ = config_.adaptive_interval > 0
                             ? config_.adaptive_interval
                             : 4 * config_.period;
    rt_->scheduler().schedule_after(adaptive_interval_,
                                    [this] { sample_environment(); });
  }
}

ChurnSim::~ChurnSim() = default;

ProcessId ChurnSim::sync_pid(std::size_t slot) const noexcept {
  return pid_base_ + static_cast<ProcessId>(slot);
}

ProcessId ChurnSim::pm_pid(std::size_t slot) const noexcept {
  return pid_base_ + static_cast<ProcessId>(slots_.size() + slot);
}

Rng ChurnSim::stream(std::uint64_t tag) const {
  // Salt 0 (single-group mode) leaves the label untouched, so classic runs
  // keep their historical streams; a shard's well-mixed salt moves every
  // label into its own namespace.
  return rt_->make_stream(stream_salt_ ^ tag);
}

void ChurnSim::set_loss_hook(std::function<void(double)> hook) {
  PMC_EXPECTS(hook != nullptr);
  apply_loss_ = std::move(hook);
}

std::size_t ChurnSim::slot_for(AddrId id) const noexcept {
  return id < slot_of_id_.size() ? slot_of_id_[id] : kNoSlot;
}

SyncNode::Directory ChurnSim::sync_directory() {
  return [this](AddrId id) {
    const std::size_t slot = slot_for(id);
    return slot == kNoSlot ? kNoProcess : sync_pid(slot);
  };
}

PmcastNode::Directory ChurnSim::pm_directory() {
  return [this](AddrId id) {
    const std::size_t slot = slot_for(id);
    return slot == kNoSlot ? kNoProcess : pm_pid(slot);
  };
}

void ChurnSim::spawn(std::size_t slot_idx, bool founder, ProcessId contact) {
  Slot& slot = slots_[slot_idx];
  // Destroy stale nodes first: a Process attaches its pid's network handler
  // in its constructor, so the old incarnation must detach before the new
  // one registers.
  slot.pm.reset();
  slot.provider.reset();
  slot.sync.reset();
  // A fresh incarnation starts with zeroed protocol stats, so its
  // estimator and feedback cursor restart from scratch too.
  slot.estimator.reset();
  slot.env_cursor = EnvCursor{};

  SyncConfig sc;
  sc.tree.depth = config_.d;
  sc.tree.redundancy = config_.r;
  sc.gossip_period = config_.period;
  sc.gossip_fanout = config_.fanout;
  sc.suspicion_timeout = config_.suspicion_timeout;
  sc.confirm_suspicion = config_.confirm_suspicion;
  sc.ack_digests = config_.adaptive;  // digests double as loss probes
  sc.join_backoff = config_.join_backoff;

  if (founder) {
    slot.sync = std::make_unique<SyncNode>(
        *rt_, sync_pid(slot_idx), sc,
        oracle_->materialize_view(slot.address), slot.subscription);
  } else {
    slot.sync = std::make_unique<SyncNode>(*rt_, sync_pid(slot_idx), sc,
                                           slot.address, slot.subscription,
                                           contact, *interns_);
  }
  slot.sync->set_directory(sync_directory());

  slot.provider = std::make_unique<LocalViewProvider>(slot.sync->view());

  PmcastConfig pc;
  pc.tree = sc.tree;
  pc.fanout = config_.fanout;
  pc.period = config_.period;
  pc.env.prior.loss = config_.loss;
  pc.env.adaptive = config_.adaptive;
  pc.env.ewma_alpha = config_.adaptive_alpha;
  pc.recovery_rounds = config_.recovery_rounds;
  pc.max_retained = config_.max_retained;
  pc.max_buffered = config_.max_buffered;
  slot.pm = std::make_unique<PmcastNode>(*rt_, pm_pid(slot_idx), pc,
                                         slot.address, slot.subscription,
                                         *slot.provider, pm_directory());
  if (config_.adaptive) {
    slot.estimator = std::make_unique<EnvEstimator>(pc.env);
    EnvEstimator* estimator = slot.estimator.get();
    slot.pm->set_env_source([estimator] { return estimator->estimate(); });
  }
  slot.pm->set_deliver_handler([this](const Event& e) {
    ++counters_.delivered;
    const auto it = publish_times_.find(e.id());
    if (it != publish_times_.end()) {
      const SimTime latency = rt_->now() - it->second;
      ++latency_samples_;
      latency_total_ += latency;
      latency_max_ = std::max(latency_max_, latency);
    }
  });
  SyncNode* sync = slot.sync.get();
  slot.pm->set_piggyback(
      [sync](AddrId target) { return sync->rows_to_share(target); },
      [sync](const Address& sender, const std::vector<DepthRow>& rows) {
        sync->absorb_rows(sender, rows);
      });

  slot.live = true;
}

void ChurnSim::play(const ScenarioScript& script) {
  // TraceReplay actions splice their parsed child timeline in here, before
  // validation — everything below (including the stream labels) operates
  // on the expanded script, so a replayed action is indistinguishable from
  // the same action written inline at its offset time.
  const bool has_replay = std::any_of(
      script.actions().begin(), script.actions().end(),
      [](const ScenarioAction& a) {
        return std::holds_alternative<TraceReplay>(a.op);
      });
  ScenarioScript expanded;
  if (has_replay) expanded = expand_traces(script);
  const ScenarioScript& timeline = has_replay ? expanded : script;

  timeline.validate(crash_credit_);
  const SimTime start = rt_->now();
  // Engine-level validation the script alone cannot do. The whole script
  // must be accepted before any state changes: a throw below would
  // otherwise leave phantom crash credit or already-scheduled actions.
  const auto check_top_components =
      [this](const std::vector<AddrComponent>& side) {
        // A component outside the address space would make the split a
        // silent no-op; reject it instead.
        for (const auto c : side) PMC_EXPECTS(c < space_.arity(0));
      };
  SimTime loss_busy_until = loss_busy_until_;
  SimTime dup_busy_until = dup_busy_until_;
  for (const auto& action : timeline.actions()) {
    PMC_EXPECTS(action.at >= start);  // no actions scheduled in the past
    if (const auto* part = std::get_if<Partition>(&action.op)) {
      check_top_components(part->side);
    } else if (const auto* burst = std::get_if<LossBurst>(&action.op)) {
      // Also reject bursts overlapping one scheduled by an earlier play().
      PMC_EXPECTS(action.at >= loss_busy_until);
      loss_busy_until = action.at + burst->duration;
    } else if (const auto* asym = std::get_if<AsymPartition>(&action.op)) {
      check_top_components(asym->from_side);
      check_top_components(asym->to_side);
    } else if (const auto* flap = std::get_if<Flap>(&action.op)) {
      check_top_components(flap->side);
    } else if (const auto* rack = std::get_if<RackFailure>(&action.op)) {
      PMC_EXPECTS(rack->prefix.size() <= space_.depth());
      for (std::size_t i = 0; i < rack->prefix.size(); ++i)
        PMC_EXPECTS(rack->prefix[i] < space_.arity(i));
    } else if (const auto* dup = std::get_if<DuplicateBurst>(&action.op)) {
      PMC_EXPECTS(action.at >= dup_busy_until);
      dup_busy_until = action.at + dup->duration;
    }
  }
  // Accepted: account the crash credit appended timelines recover against,
  // and the windows the last scheduled loss/duplication bursts occupy.
  loss_busy_until_ = loss_busy_until;
  dup_busy_until_ = dup_busy_until;
  for (const auto& action : timeline.actions()) {
    if (const auto* crash = std::get_if<CrashNodes>(&action.op)) {
      crash_credit_ += crash->count;
    } else if (const auto* rec = std::get_if<RecoverNodes>(&action.op)) {
      crash_credit_ -= rec->count;  // validate() guaranteed non-negative
    } else if (const auto* rack = std::get_if<RackFailure>(&action.op)) {
      // A rack failure's victim count is only known at fire time; credit
      // the whole zone's capacity so a later RecoverNodes can target it.
      std::uint64_t zone = 1;
      for (std::size_t i = rack->prefix.size(); i < space_.depth(); ++i)
        zone *= space_.arity(i);
      crash_credit_ += zone;
    }
  }
  // Stream labels: (time, kind, ordinal-within-time-and-kind), hashed with
  // the run seed. Ordinals persist across play() calls so appended
  // timelines never reuse a label. New ScenarioOp alternatives append at
  // the variant's end — the label hashes op.index().
  static_assert(std::variant_size_v<ScenarioOp> == 14);
  for (const auto& action : timeline.actions()) {
    const auto key = std::make_pair(action.at, action.op.index());
    const std::uint64_t ordinal = action_ordinals_[key]++;
    const std::uint64_t tag =
        fnv1a_u64(fnv1a_u64(fnv1a_u64(kFnv1aBasis ^ kActionStreamSalt,
                          static_cast<std::uint64_t>(action.at)),
                    action.op.index()),
              ordinal);
    auto rng = std::make_shared<Rng>(stream(tag));
    rt_->scheduler().schedule_at(
        action.at,
        [this, action, rng] { apply(action, rng); });
  }
}

void ChurnSim::sample_environment() {
  for (auto& slot : slots_) {
    if (!slot.live || slot.estimator == nullptr || slot.sync == nullptr)
      continue;
    const auto& s = slot.sync->stats();
    slot.estimator->observe_feedback(
        s.digests_sent - slot.env_cursor.digests_sent,
        s.digest_acks - slot.env_cursor.digest_acks);
    slot.estimator->observe_churn(
        s.deaths_observed - slot.env_cursor.deaths_observed,
        slot.sync->view().known_processes());
    slot.env_cursor = EnvCursor{s.digests_sent, s.digest_acks,
                                s.deaths_observed};
  }
  rt_->scheduler().schedule_after(adaptive_interval_,
                                  [this] { sample_environment(); });
}

void ChurnSim::run_for(SimTime duration) { rt_->run_for(duration); }
void ChurnSim::run_until(SimTime deadline) { rt_->run_until(deadline); }
SimTime ChurnSim::now() const noexcept { return rt_->now(); }

std::vector<std::size_t> ChurnSim::live_slots() const {
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].live) out.push_back(i);
  return out;
}

std::vector<std::size_t> ChurnSim::contact_slots() const {
  // Prefer fully joined processes as join contacts (a real joiner would be
  // pointed at an established member); fall back to any live process.
  std::vector<std::size_t> out;
  for (std::size_t i = 0; i < slots_.size(); ++i)
    if (slots_[i].live && slots_[i].sync->joined()) out.push_back(i);
  return out.empty() ? live_slots() : out;
}

std::vector<std::size_t> ChurnSim::pick_live(std::size_t count, Rng& rng) {
  const auto live = live_slots();
  const std::size_t n = std::min(count, live.size());
  counters_.skipped += count - n;
  std::vector<std::size_t> out;
  out.reserve(n);
  for (const auto i : rng.sample_without_replacement(live.size(), n))
    out.push_back(live[i]);
  return out;
}

void ChurnSim::retarget_pending_joiners(Rng& rng) {
  // A contact that crashed or left strands its pending joiners (they would
  // retry a dead pid until their budget runs out): point every live,
  // unjoined process at a fresh contact.
  const auto contacts = contact_slots();
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (!slots_[i].live || slots_[i].sync->joined()) continue;
    if (contacts.empty()) break;
    const std::size_t pick = contacts[rng.next_below(contacts.size())];
    if (pick == i) continue;  // nobody else to ask
    slots_[i].sync->retarget_join(sync_pid(pick));
  }
}

void ChurnSim::do_join(Rng& rng) {
  // One fresh joiner (JoinStorm's unit of work). Unlike the batched Join
  // action this re-queries the vacancy list per call — storm joins are
  // spread over time, and earlier arrivals must shrink the pool seen by
  // later ones.
  const auto vacant = oracle_->vacancies(space_);
  if (vacant.empty()) {
    ++counters_.skipped;
    return;
  }
  const Address address = vacant[rng.next_below(vacant.size())];
  const auto contacts = contact_slots();
  if (contacts.empty()) {
    ++counters_.skipped;
    return;
  }
  const std::size_t contact = contacts[rng.next_below(contacts.size())];
  const std::size_t idx = slot_for(interns_->addrs.intern(address));
  spawn(idx, /*founder=*/false, sync_pid(contact));
  oracle_->add_member(address, slots_[idx].subscription);
  ++counters_.joins_requested;
}

void ChurnSim::publish_one(Rng& rng) {
  const auto live = live_slots();
  if (live.empty()) {
    ++counters_.skipped;
    return;
  }
  const std::size_t slot =
      live[rng.next_below(live.size())];
  Event e = make_uniform_event(pm_pid(slot), publish_seq_++, rng);
  // Deliveries owed: every live matching process at publish time (pure
  // predicate evaluation, no draws — see ChurnCounters).
  for (const auto& s : slots_)
    if (s.live && s.subscription.match(e)) ++counters_.expected_deliveries;
  // Record before pmcast: the publisher may deliver to itself inline.
  publish_times_.emplace(e.id(), rt_->now());
  ++counters_.published;
  slots_[slot].pm->pmcast(std::move(e));
}

bool ChurnSim::publish_external(const EventId& id, double u, Rng& rng) {
  const auto live = live_slots();
  if (live.empty()) {
    ++counters_.skipped;
    return false;
  }
  const std::size_t slot = live[rng.next_below(live.size())];
  Event e = make_event_at(id.publisher, id.sequence, u);
  for (const auto& s : slots_)
    if (s.live && s.subscription.match(e)) ++counters_.expected_deliveries;
  publish_times_.emplace(e.id(), rt_->now());
  ++counters_.published;
  slots_[slot].pm->pmcast(std::move(e));
  return true;
}

void ChurnSim::apply(const ScenarioAction& action,
                     std::shared_ptr<Rng> rng) {
  std::visit(
      Overload{
          [&](const CrashNodes& op) {
            for (const auto idx : pick_live(op.count, *rng)) {
              slots_[idx].sync->crash();
              slots_[idx].pm->crash();
              slots_[idx].live = false;
              oracle_->remove_member(slots_[idx].address);
              crashed_pool_.push_back(idx);
              ++counters_.crashes;
            }
            retarget_pending_joiners(*rng);
          },
          [&](const RecoverNodes& op) {
            const std::size_t n =
                std::min(op.count, crashed_pool_.size());
            counters_.skipped += op.count - n;
            for (std::size_t k = 0; k < n; ++k) {
              const std::size_t idx = crashed_pool_.front();
              crashed_pool_.erase(crashed_pool_.begin());
              if (slots_[idx].live) {
                // A Join re-occupied the crashed address in the meantime;
                // nothing left to recover.
                ++counters_.skipped;
                continue;
              }
              const auto contacts = contact_slots();
              if (contacts.empty()) {
                ++counters_.skipped;
                continue;
              }
              const std::size_t contact =
                  contacts[rng->next_below(contacts.size())];
              spawn(idx, /*founder=*/false, sync_pid(contact));
              oracle_->add_member(slots_[idx].address,
                                  slots_[idx].subscription);
              ++counters_.recoveries;
              ++counters_.joins_requested;
            }
          },
          [&](const Join& op) {
            auto vacant = oracle_->vacancies(space_);
            const std::size_t n = std::min(op.count, vacant.size());
            counters_.skipped += op.count - n;
            for (std::size_t k = 0; k < n; ++k) {
              const std::size_t pick = static_cast<std::size_t>(
                  rng->next_below(vacant.size()));
              const Address address = vacant[pick];
              vacant.erase(vacant.begin() +
                           static_cast<std::ptrdiff_t>(pick));
              const auto contacts = contact_slots();
              if (contacts.empty()) {
                ++counters_.skipped;
                continue;
              }
              const std::size_t contact =
                  contacts[rng->next_below(contacts.size())];
              const std::size_t idx = slot_for(interns_->addrs.intern(address));
              spawn(idx, /*founder=*/false, sync_pid(contact));
              oracle_->add_member(address, slots_[idx].subscription);
              ++counters_.joins_requested;
            }
          },
          [&](const Leave& op) {
            for (const auto idx : pick_live(op.count, *rng)) {
              slots_[idx].sync->leave();
              slots_[idx].pm->crash();
              slots_[idx].live = false;
              oracle_->remove_member(slots_[idx].address);
              ++counters_.leaves;
            }
            retarget_pending_joiners(*rng);
          },
          [&](const Partition& op) {
            const std::vector<AddrComponent> side = op.side;
            const ProcessId base = pid_base_;
            const std::size_t capacity = slots_.size();
            const auto in_side = [this, side, base, capacity](ProcessId pid) {
              const std::size_t offset = pid - base;
              const std::size_t slot =
                  offset < capacity ? offset : offset - capacity;
              const AddrComponent top = slots_[slot].address.component(0);
              return std::find(side.begin(), side.end(), top) != side.end();
            };
            // The split is scoped to this group's pid range: traffic of
            // co-hosted groups (other shards) passes untouched.
            const auto in_range = [base, capacity](ProcessId pid) {
              return pid >= base && pid < base + 2 * capacity;
            };
            const auto token = rt_->network().add_link_filter(
                [in_side, in_range](ProcessId from, ProcessId to) {
                  if (!in_range(from) || !in_range(to)) return true;
                  return in_side(from) == in_side(to);
                });
            ++counters_.partitions;
            rt_->scheduler().schedule_at(op.heal_at, [this, token] {
              rt_->network().remove_link_filter(token);
              ++counters_.heals;
            });
          },
          [&](const LossBurst& op) {
            // Epoch-checked restore: for back-to-back bursts the scheduler
            // runs the next burst's set_loss (scheduled early, in play())
            // before this burst's same-time restore (FIFO tie-break), so
            // an unconditional restore would clobber the new ε for its
            // whole window. A stale epoch makes the restore a no-op.
            const std::uint64_t epoch = ++loss_epoch_;
            apply_loss_(op.eps);
            ++counters_.loss_bursts;
            rt_->scheduler().schedule_after(op.duration, [this, epoch] {
              if (epoch != loss_epoch_) return;  // a newer burst took over
              apply_loss_(config_.loss);
              ++counters_.loss_restores;
            });
          },
          [&](const PublishBurst& op) {
            for (std::size_t k = 0; k < op.count; ++k) {
              const SimTime at = action.at + static_cast<SimTime>(k) *
                                                 op.spacing;
              if (at <= rt_->now()) {
                publish_one(*rng);
              } else {
                rt_->scheduler().schedule_at(
                    at, [this, rng] { publish_one(*rng); });
              }
            }
          },
          [&](const LatencyProfile& op) {
            // NOTE: in shard mode the network (and thus the latency model)
            // is runtime-wide, like the base latency config — the owner
            // decides which shard's script carries the profile actions.
            if (op.median > 0) {
              rt_->network().set_latency_model(make_lognormal_latency(
                  LogNormalParams{op.median, op.sigma}, 0, 16 * op.median));
            } else {
              rt_->network().set_latency_model(nullptr);
            }
            ++counters_.latency_profiles;
          },
          [&](const AsymPartition& op) {
            const std::vector<AddrComponent> from_side = op.from_side;
            const std::vector<AddrComponent> to_side = op.to_side;
            const ProcessId base = pid_base_;
            const std::size_t capacity = slots_.size();
            const auto top_of = [this, base, capacity](ProcessId pid) {
              const std::size_t offset = pid - base;
              const std::size_t slot =
                  offset < capacity ? offset : offset - capacity;
              return slots_[slot].address.component(0);
            };
            const auto in_range = [base, capacity](ProcessId pid) {
              return pid >= base && pid < base + 2 * capacity;
            };
            const auto in = [](const std::vector<AddrComponent>& side,
                               AddrComponent c) {
              return std::find(side.begin(), side.end(), c) != side.end();
            };
            // One-directional: only from_side -> to_side messages drop;
            // the reverse direction (and co-hosted shards) pass.
            const auto token = rt_->network().add_link_filter(
                [top_of, in_range, in, from_side, to_side](ProcessId from,
                                                           ProcessId to) {
                  if (!in_range(from) || !in_range(to)) return true;
                  return !(in(from_side, top_of(from)) &&
                           in(to_side, top_of(to)));
                });
            ++counters_.asym_partitions;
            rt_->scheduler().schedule_at(op.heal_at, [this, token] {
              rt_->network().remove_link_filter(token);
              ++counters_.heals;
            });
          },
          [&](const Flap& op) {
            const std::vector<AddrComponent> side = op.side;
            const ProcessId base = pid_base_;
            const std::size_t capacity = slots_.size();
            const auto in_side = [this, side, base, capacity](ProcessId pid) {
              const std::size_t offset = pid - base;
              const std::size_t slot =
                  offset < capacity ? offset : offset - capacity;
              const AddrComponent top = slots_[slot].address.component(0);
              return std::find(side.begin(), side.end(), top) != side.end();
            };
            const auto in_range = [base, capacity](ProcessId pid) {
              return pid >= base && pid < base + 2 * capacity;
            };
            // The down window is a precomputed integer span (at least one
            // tick), so the filter itself runs pure integer arithmetic on
            // the send time — no float drift across the flap's lifetime.
            const SimTime start_at = action.at;
            const SimTime period = op.period;
            const SimTime down_window = std::max<SimTime>(
                1, static_cast<SimTime>(std::llround(
                       op.duty * static_cast<double>(op.period))));
            const auto token = rt_->network().add_link_filter(
                [this, in_side, in_range, start_at, period,
                 down_window](ProcessId from, ProcessId to) {
                  if (!in_range(from) || !in_range(to)) return true;
                  if (in_side(from) == in_side(to)) return true;
                  return (rt_->now() - start_at) % period >= down_window;
                });
            ++counters_.flaps;
            rt_->scheduler().schedule_at(op.until, [this, token] {
              rt_->network().remove_link_filter(token);
              ++counters_.heals;
            });
          },
          [&](const RackFailure& op) {
            // Correlated: every live process in the address zone
            // fail-stops at once — no sampling, no draws.
            ++counters_.rack_failures;
            for (std::size_t idx = 0; idx < slots_.size(); ++idx) {
              Slot& slot = slots_[idx];
              if (!slot.live) continue;
              bool in_zone = true;
              for (std::size_t i = 0; i < op.prefix.size(); ++i) {
                if (slot.address.component(i) != op.prefix[i]) {
                  in_zone = false;
                  break;
                }
              }
              if (!in_zone) continue;
              slot.sync->crash();
              slot.pm->crash();
              slot.live = false;
              oracle_->remove_member(slot.address);
              crashed_pool_.push_back(idx);
              ++counters_.crashes;
            }
            retarget_pending_joiners(*rng);
          },
          [&](const JoinStorm& op) {
            ++counters_.join_storms;
            const SimTime spacing =
                op.count > 1
                    ? op.over / static_cast<SimTime>(op.count - 1)
                    : 0;
            for (std::size_t k = 0; k < op.count; ++k) {
              const SimTime at =
                  action.at + static_cast<SimTime>(k) * spacing;
              if (at <= rt_->now()) {
                do_join(*rng);
              } else {
                rt_->scheduler().schedule_at(
                    at, [this, rng] { do_join(*rng); });
              }
            }
          },
          [&](const DuplicateBurst& op) {
            // Epoch-checked restore, mirroring LossBurst.
            const std::uint64_t epoch = ++dup_epoch_;
            rt_->network().set_duplication(op.prob);
            ++counters_.dup_bursts;
            rt_->scheduler().schedule_after(op.duration, [this, epoch] {
              if (epoch != dup_epoch_) return;
              rt_->network().set_duplication(0.0);
              ++counters_.dup_restores;
            });
          },
          [&](const TraceReplay&) {
            // play() splices traces before scheduling; reaching here means
            // the expansion was bypassed.
            PMC_EXPECTS(false && "TraceReplay must be expanded by play()");
          },
      },
      action.op);
}

std::size_t ChurnSim::live_count() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : slots_)
    if (slot.live) ++n;
  return n;
}

std::size_t ChurnSim::joined_count() const noexcept {
  std::size_t n = 0;
  for (const auto& slot : slots_)
    if (slot.live && slot.sync->joined()) ++n;
  return n;
}

GroupSummary ChurnSim::group_summary() const {
  GroupSummary out;
  out.counters = counters_;
  out.live = live_count();
  out.joined = joined_count();
  out.latency_samples = latency_samples_;
  out.latency_total = latency_total_;
  out.latency_max = latency_max_;

  std::uint64_t h = kFnv1aBasis;
  std::uint64_t env_nodes = 0;
  double env_loss_sum = 0.0, env_crash_sum = 0.0;
  for (const auto& slot : slots_) {
    h = fnv1a_u64(h, slot.live ? 1 : 0);
    if (slot.sync != nullptr) {
      const auto& s = slot.sync->stats();
      out.membership_tombstones += s.tombstones;
      out.joins_served += s.joins_served;
      h = fnv1a_u64(h, slot.sync->joined() ? 1 : 0);
      h = fnv1a_u64(h, s.digests_sent);
      h = fnv1a_u64(h, s.updates_sent);
      h = fnv1a_u64(h, s.digest_acks);
      h = fnv1a_u64(h, s.deaths_observed);
      h = fnv1a_u64(h, s.join_retries);
      h = fnv1a_u64(h, s.joins_forwarded);
      h = fnv1a_u64(h, s.joins_served);
      h = fnv1a_u64(h, s.tombstones);
      h = fnv1a_u64(h, s.rebuttals);
      h = fnv1a_u64(h, slot.sync->view().known_processes());
    }
    if (slot.pm != nullptr) {
      const auto& p = slot.pm->stats();
      out.bound_collapsed += p.bound_collapsed;
      // Summed but NOT hashed: the fingerprint's field list is frozen
      // (docs/DETERMINISM.md) — new counters are compared by operator==.
      out.dup_suppressed += p.dup_suppressed;
      out.shed_events += p.shed_events;
      h = fnv1a_u64(h, p.published);
      h = fnv1a_u64(h, p.received);
      h = fnv1a_u64(h, p.delivered);
      h = fnv1a_u64(h, p.gossips_sent);
      h = fnv1a_u64(h, p.rounds_run);
      h = fnv1a_u64(h, p.bound_collapsed);
      h = fnv1a_u64(h, p.leaf_floods);
      h = fnv1a_u64(h, p.digests_sent);
      h = fnv1a_u64(h, p.recoveries);
    }
    if (slot.live && slot.estimator != nullptr) {
      const EnvParams e = slot.estimator->estimate();
      env_loss_sum += e.loss;
      env_crash_sum += e.crash;
      out.env_windows += slot.estimator->feedback_windows() +
                         slot.estimator->churn_windows();
      ++env_nodes;
    }
  }
  if (env_nodes > 0) {
    // Parts-per-million keeps the digest integral (byte-comparable across
    // replays without float formatting concerns).
    out.env_loss_ppm = static_cast<std::uint64_t>(
        std::llround(1e6 * env_loss_sum / static_cast<double>(env_nodes)));
    out.env_crash_ppm = static_cast<std::uint64_t>(
        std::llround(1e6 * env_crash_sum / static_cast<double>(env_nodes)));
  }
  h = fnv1a_u64(h, out.env_loss_ppm);
  h = fnv1a_u64(h, out.env_crash_ppm);
  h = fnv1a_u64(h, out.env_windows);
  h = fnv1a_u64(h, counters_.published);
  h = fnv1a_u64(h, counters_.delivered);
  h = fnv1a_u64(h, latency_samples_);
  h = fnv1a_u64(h, static_cast<std::uint64_t>(latency_total_));
  h = fnv1a_u64(h, static_cast<std::uint64_t>(latency_max_));
  out.fingerprint = h;
  return out;
}

ChurnSummary ChurnSim::summary() const {
  const GroupSummary g = group_summary();
  ChurnSummary out;
  out.counters = g.counters;
  out.live = g.live;
  out.joined = g.joined;
  out.membership_tombstones = g.membership_tombstones;
  out.joins_served = g.joins_served;
  out.latency_samples = g.latency_samples;
  out.latency_total = g.latency_total;
  out.latency_max = g.latency_max;
  out.env_loss_ppm = g.env_loss_ppm;
  out.env_crash_ppm = g.env_crash_ppm;
  out.env_windows = g.env_windows;
  out.bound_collapsed = g.bound_collapsed;
  out.dup_suppressed = g.dup_suppressed;
  out.shed_events = g.shed_events;
  out.network = rt_->network().counters();
  out.scheduler_executed = rt_->scheduler().executed();

  std::uint64_t h = g.fingerprint;
  h = fnv1a_u64(h, out.network.sent);
  h = fnv1a_u64(h, out.network.delivered);
  h = fnv1a_u64(h, out.network.lost);
  h = fnv1a_u64(h, out.network.filtered);
  h = fnv1a_u64(h, out.network.dead_target);
  h = fnv1a_u64(h, out.scheduler_executed);
  out.fingerprint = h;
  return out;
}

}  // namespace pmc

#include "harness/experiment.hpp"

#include <cstdlib>
#include <limits>
#include <memory>
#include <unordered_map>

#include "baselines/flooding.hpp"
#include "baselines/genuine.hpp"
#include "baselines/treecast.hpp"
#include "common/contract.hpp"
#include "pmcast/node.hpp"

namespace pmc {

std::size_t ExperimentConfig::group_size() const {
  std::size_t n = 1;
  for (std::size_t i = 0; i < d; ++i) n *= a;
  return n;
}

TreeAnalysisParams ExperimentConfig::analysis_params() const {
  TreeAnalysisParams p;
  p.a = a;
  p.d = d;
  p.r = r;
  p.fanout = static_cast<double>(fanout);
  p.pd = pd;
  p.env.loss = loss;
  p.env.crash = crash_fraction;
  p.pittel_c = pittel_c;
  return p;
}

void ExperimentConfig::validate() const {
  PMC_EXPECTS(a >= 1 && d >= 1 && r >= 1);
  // Arities are AddrComponent-sized; larger values would silently truncate
  // when the address space is built.
  PMC_EXPECTS(a <= std::numeric_limits<AddrComponent>::max());
  PMC_EXPECTS(fanout >= 1);
  PMC_EXPECTS(runs >= 1);
  PMC_EXPECTS(pd >= 0.0 && pd <= 1.0);
  PMC_EXPECTS(cluster_jitter >= 0.0 && cluster_jitter <= 1.0);
  PMC_EXPECTS(loss >= 0.0 && loss < 1.0);
  PMC_EXPECTS(crash_fraction >= 0.0 && crash_fraction < 1.0);
  PMC_EXPECTS(period > 0);
  PMC_EXPECTS(pittel_c >= 0.0);
  PMC_EXPECTS(leaf_flood_density >= 0.0);
}

PmcastConfig ExperimentConfig::pmcast_config() const {
  PmcastConfig c;
  c.tree.depth = d;
  c.tree.redundancy = r;
  c.fanout = fanout;
  c.period = period;
  c.pittel_c = pittel_c;
  c.env.prior.loss = loss;
  c.env.prior.crash = crash_fraction;
  c.tuning_threshold = tuning_threshold;
  c.local_interest_shortcut = local_interest_shortcut;
  c.leaf_flood_density = leaf_flood_density;
  c.recovery_rounds = recovery_rounds;
  return c;
}

namespace {

/// Shared per-configuration state reused across runs: the member population,
/// its intern state, its tree, and the interned-address -> pid directory.
struct Population {
  std::vector<Member> members;
  /// Declared before the tree, which holds a reference into it. Mutable:
  /// protocol nodes intern their own address through the (const) provider.
  mutable Interns interns;
  std::unique_ptr<GroupTree> tree;
  /// Dense AddrId -> pid directory; kNoProcess for foreign ids.
  std::vector<ProcessId> pid_by_id;

  explicit Population(const ExperimentConfig& config, bool build_tree) {
    config.validate();
    // detlint:allow(rng-discipline) master-seed root for population synthesis; no Runtime exists yet
    Rng rng(config.seed);
    const auto space = AddressSpace::regular(
        static_cast<AddrComponent>(config.a), config.d);
    members = config.clustered
                  ? clustered_interest_members(space, config.pd,
                                               config.cluster_jitter, rng)
                  : uniform_interest_members(space, config.pd, rng);
    interns.reserve(members.size(), config.d);
    if (build_tree) {
      TreeConfig tc;
      tc.depth = config.d;
      tc.redundancy = config.r;
      GroupTreeOptions opts;
      opts.coarsen_depth_leq = config.coarsen_depth_leq;
      tree = std::make_unique<GroupTree>(tc, members, interns, opts);
    }
    for (std::size_t i = 0; i < members.size(); ++i) {
      const AddrId id = interns.addrs.intern(members[i].address);
      if (pid_by_id.size() <= id) pid_by_id.resize(id + 1, kNoProcess);
      pid_by_id[id] = static_cast<ProcessId>(i);
    }
  }

  PmcastNode::Directory directory_fn() const {
    return [this](AddrId id) {
      return id < pid_by_id.size() ? pid_by_id[id] : kNoProcess;
    };
  }
};

struct RunMetrics {
  double delivery = 0.0;
  double false_reception = 0.0;
  double rounds = 0.0;
  double messages_per_process = 0.0;
  double interested_fraction = 0.0;
};

void aggregate(ExperimentResult& out, const RunMetrics& m) {
  out.delivery.add(m.delivery);
  out.false_reception.add(m.false_reception);
  out.rounds.add(m.rounds);
  out.messages_per_process.add(m.messages_per_process);
  out.interested_fraction.add(m.interested_fraction);
}

/// Counts delivery/reception over the node collection after a run.
/// NodeT must expose interested_in/has_delivered/has_received/alive.
template <typename NodeT>
RunMetrics finish_run(const std::vector<std::unique_ptr<NodeT>>& nodes,
                      const Event& event, ProcessId publisher,
                      const Runtime& rt, std::uint64_t sent,
                      SimTime period) {
  std::size_t interested = 0;
  std::size_t interested_delivered = 0;
  std::size_t uninterested = 0;
  std::size_t uninterested_received = 0;
  for (const auto& node : nodes) {
    if (!node->alive()) continue;  // crashed processes leave both sides
    const bool wants = node->interested_in(event);
    if (wants) {
      ++interested;
      if (node->has_delivered(event.id())) ++interested_delivered;
    } else if (node->id() != publisher) {
      ++uninterested;
      if (node->has_received(event.id())) ++uninterested_received;
    }
  }
  RunMetrics m;
  m.delivery = interested == 0
                   ? 1.0
                   : static_cast<double>(interested_delivered) /
                         static_cast<double>(interested);
  m.false_reception = uninterested == 0
                          ? 0.0
                          : static_cast<double>(uninterested_received) /
                                static_cast<double>(uninterested);
  m.rounds = static_cast<double>(rt.now()) / static_cast<double>(period);
  m.messages_per_process =
      static_cast<double>(sent) / static_cast<double>(nodes.size());
  m.interested_fraction =
      static_cast<double>(interested) /
      static_cast<double>(std::max<std::size_t>(1, nodes.size()));
  return m;
}

template <typename MakeNodes, typename Publish>
ExperimentResult run_experiment_loop(const ExperimentConfig& config,
                                     MakeNodes&& make_nodes,
                                     Publish&& publish) {
  ExperimentResult out;
  // detlint:allow(rng-discipline) xor-labeled root that seeds each run's Runtime; predates make_stream
  Rng run_rng(config.seed ^ 0xabcdef0123456789ULL);
  for (std::size_t run = 0; run < config.runs; ++run) {
    NetworkConfig net;
    net.loss_probability = config.loss;
    Runtime rt(net, run_rng.next_u64());
    rt.network().reserve(config.group_size());

    auto nodes = make_nodes(rt);

    // Crash injection: f = τ n victims, uniform over the run horizon.
    const auto f = static_cast<std::size_t>(
        config.crash_fraction * static_cast<double>(nodes.size()));
    if (f > 0) {
      const auto victims =
          run_rng.sample_without_replacement(nodes.size(), f);
      std::vector<Process*> procs;
      procs.reserve(f);
      for (const auto v : victims) procs.push_back(nodes[v].get());
      rt.schedule_crashes(procs, 40 * config.period);
    }

    const auto publisher = static_cast<ProcessId>(
        run_rng.next_below(nodes.size()));
    const Event event = make_uniform_event(publisher, run, run_rng);
    publish(*nodes[publisher], event);

    rt.run_until_idle();

    aggregate(out, finish_run(nodes, event, publisher, rt,
                              rt.network().counters().sent, config.period));
  }
  return out;
}

}  // namespace

ExperimentResult run_pmcast_experiment(const ExperimentConfig& config) {
  const Population pop(config, /*build_tree=*/true);
  const TreeViewProvider views(*pop.tree);
  const PmcastConfig node_config = config.pmcast_config();

  return run_experiment_loop(
      config,
      [&](Runtime& rt) {
        std::vector<std::unique_ptr<PmcastNode>> nodes;
        nodes.reserve(pop.members.size());
        for (std::size_t i = 0; i < pop.members.size(); ++i) {
          nodes.push_back(std::make_unique<PmcastNode>(
              rt, static_cast<ProcessId>(i), node_config,
              pop.members[i].address, pop.members[i].subscription, views,
              pop.directory_fn()));
        }
        return nodes;
      },
      [](PmcastNode& node, const Event& e) { node.pmcast(e); });
}

ExperimentResult run_flooding_experiment(const ExperimentConfig& config) {
  const Population pop(config, /*build_tree=*/false);
  FloodingConfig fc;
  fc.fanout = config.fanout;
  fc.period = config.period;
  fc.pittel_c = config.pittel_c;
  fc.env_estimate.loss = config.loss;
  fc.env_estimate.crash = config.crash_fraction;

  auto peers = std::make_shared<std::vector<ProcessId>>();
  for (std::size_t i = 0; i < pop.members.size(); ++i)
    peers->push_back(static_cast<ProcessId>(i));

  return run_experiment_loop(
      config,
      [&](Runtime& rt) {
        std::vector<std::unique_ptr<FloodingNode>> nodes;
        nodes.reserve(pop.members.size());
        for (std::size_t i = 0; i < pop.members.size(); ++i) {
          nodes.push_back(std::make_unique<FloodingNode>(
              rt, static_cast<ProcessId>(i), fc,
              pop.members[i].subscription, peers));
        }
        return nodes;
      },
      [](FloodingNode& node, const Event& e) { node.broadcast(e); });
}

ExperimentResult run_genuine_experiment(const ExperimentConfig& config,
                                        std::size_t view_size) {
  const Population pop(config, /*build_tree=*/false);
  GenuineConfig gc;
  gc.fanout = config.fanout;
  gc.period = config.period;
  gc.pittel_c = config.pittel_c;
  gc.env_estimate.loss = config.loss;
  gc.env_estimate.crash = config.crash_fraction;
  gc.group_size_hint = pop.members.size();

  // Partial views are fixed per configuration (same seed), mirroring a
  // converged lpbcast-style membership.
  // detlint:allow(rng-discipline) xor-labeled per-config view stream; fixed across runs by design
  Rng view_rng(config.seed ^ 0x7777777777777777ULL);
  std::vector<std::vector<GenuineNode::Peer>> views(pop.members.size());
  for (std::size_t i = 0; i < pop.members.size(); ++i) {
    const auto picks = view_rng.sample_without_replacement(
        pop.members.size(), std::min(view_size, pop.members.size()));
    for (const auto p : picks) {
      if (p == i) continue;
      views[i].push_back(GenuineNode::Peer{
          static_cast<ProcessId>(p), pop.members[p].subscription});
    }
  }

  return run_experiment_loop(
      config,
      [&](Runtime& rt) {
        std::vector<std::unique_ptr<GenuineNode>> nodes;
        nodes.reserve(pop.members.size());
        for (std::size_t i = 0; i < pop.members.size(); ++i) {
          nodes.push_back(std::make_unique<GenuineNode>(
              rt, static_cast<ProcessId>(i), gc,
              pop.members[i].subscription, views[i]));
        }
        return nodes;
      },
      [](GenuineNode& node, const Event& e) { node.multicast(e); });
}

ExperimentResult run_treecast_experiment(const ExperimentConfig& config) {
  const Population pop(config, /*build_tree=*/true);
  const TreeViewProvider views(*pop.tree);
  TreecastConfig tc;
  tc.tree.depth = config.d;
  tc.tree.redundancy = config.r;

  return run_experiment_loop(
      config,
      [&](Runtime& rt) {
        std::vector<std::unique_ptr<TreecastNode>> nodes;
        nodes.reserve(pop.members.size());
        for (std::size_t i = 0; i < pop.members.size(); ++i) {
          nodes.push_back(std::make_unique<TreecastNode>(
              rt, static_cast<ProcessId>(i), tc, pop.members[i].address,
              pop.members[i].subscription, views, pop.directory_fn()));
        }
        return nodes;
      },
      [](TreecastNode& node, const Event& e) { node.multicast(e); });
}

StreamResult run_stream_experiment(const StreamConfig& stream) {
  PMC_EXPECTS(stream.events >= 1);
  PMC_EXPECTS(stream.inter_arrival >= 0);
  const ExperimentConfig& config = stream.base;
  const Population pop(config, /*build_tree=*/true);
  const TreeViewProvider views(*pop.tree);
  const PmcastConfig node_config = config.pmcast_config();

  NetworkConfig net;
  net.loss_probability = config.loss;
  Runtime rt(net, config.seed ^ 0x5712ea30ULL);
  rt.network().reserve(pop.members.size());

  std::vector<std::unique_ptr<PmcastNode>> nodes;
  nodes.reserve(pop.members.size());
  for (std::size_t i = 0; i < pop.members.size(); ++i) {
    nodes.push_back(std::make_unique<PmcastNode>(
        rt, static_cast<ProcessId>(i), node_config, pop.members[i].address,
        pop.members[i].subscription, views, pop.directory_fn()));
  }

  // detlint:allow(rng-discipline) xor-labeled event stream for the fixed-population harness
  Rng rng(config.seed ^ 0x5151515151ULL);
  std::vector<Event> events;
  events.reserve(stream.events);
  for (std::uint64_t s = 0; s < stream.events; ++s) {
    const auto publisher =
        static_cast<ProcessId>(rng.next_below(nodes.size()));
    Event e = make_uniform_event(publisher, s, rng);
    events.push_back(e);
    rt.scheduler().schedule_at(
        static_cast<SimTime>(s) * stream.inter_arrival,
        [&nodes, publisher, e] { nodes[publisher].get()->pmcast(e); });
  }
  rt.run_until_idle();

  StreamResult out;
  const SimTime last_publish =
      static_cast<SimTime>(stream.events - 1) * stream.inter_arrival;
  out.drain_periods = static_cast<double>(rt.now() - last_publish) /
                      static_cast<double>(config.period);
  out.messages_per_event_per_process =
      static_cast<double>(rt.network().counters().sent) /
      static_cast<double>(stream.events) /
      static_cast<double>(nodes.size());
  for (const auto& e : events) {
    std::size_t interested = 0, delivered = 0;
    for (const auto& node : nodes) {
      if (!node->alive() || !node->interested_in(e)) continue;
      ++interested;
      if (node->has_delivered(e.id())) ++delivered;
    }
    out.per_event_delivery.add(
        interested == 0 ? 1.0
                        : static_cast<double>(delivered) /
                              static_cast<double>(interested));
  }
  return out;
}

std::size_t env_size_t(const char* name, std::size_t fallback) {
  // detlint:allow(banned-source) run-scope knob (PMCAST_*) read before any Runtime exists; never feeds draws or fingerprints
  const char* value = std::getenv(name);  // NOLINT(concurrency-mt-unsafe)
  if (value == nullptr || *value == '\0') return fallback;
  const long parsed = std::strtol(value, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

}  // namespace pmc

// Shared FNV-1a hashing. Several determinism-critical derivations (stable
// per-address subscriptions, scenario action stream labels, run summary
// fingerprints) hash through these helpers; keeping one definition ensures
// they can never silently diverge.
#pragma once

#include <cstdint>

namespace pmc {

inline constexpr std::uint64_t kFnv1aBasis = 14695981039346656037ULL;
inline constexpr std::uint64_t kFnv1aPrime = 1099511628211ULL;

constexpr std::uint64_t fnv1a_byte(std::uint64_t h, std::uint8_t b) {
  return (h ^ b) * kFnv1aPrime;
}

/// Mixes all 8 bytes of `v` (little-endian order) into `h`.
constexpr std::uint64_t fnv1a_u64(std::uint64_t h, std::uint64_t v) {
  for (int i = 0; i < 8; ++i)
    h = fnv1a_byte(h, static_cast<std::uint8_t>((v >> (8 * i)) & 0xff));
  return h;
}

}  // namespace pmc

// Deterministic pseudo-random number generation for reproducible simulation.
//
// The simulator must produce bit-identical runs for a given seed across
// platforms, so we implement xoshiro256** (Blackman & Vigna) seeded through
// splitmix64 instead of relying on the implementation-defined distributions
// of <random>. All distribution helpers (uniform doubles, bounded integers,
// Bernoulli trials, sampling without replacement) are implemented here with
// fully specified algorithms.
#pragma once

#include <cstdint>
#include <vector>

#include "common/contract.hpp"

namespace pmc {

/// splitmix64 — used to stretch a single 64-bit seed into the 256-bit
/// xoshiro state, and to derive independent child seeds.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 — the simulator's workhorse generator.
/// Satisfies UniformRandomBitGenerator so it can also feed <random> if needed.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x9d1ef5a3c0ffee42ULL) noexcept {
    reseed(seed);
  }

  void reseed(std::uint64_t seed) noexcept {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  static constexpr result_type min() noexcept { return 0; }
  static constexpr result_type max() noexcept { return ~std::uint64_t{0}; }

  result_type operator()() noexcept { return next_u64(); }

  std::uint64_t next_u64() noexcept;

  /// Uniform double in [0, 1) with 53 bits of precision.
  double next_double() noexcept {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) via Lemire's nearly-divisionless method.
  /// Precondition: bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Precondition: lo <= hi.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) noexcept {
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Bernoulli trial with success probability p (clamped to [0,1]).
  bool bernoulli(double p) noexcept { return next_double() < p; }

  /// Standard normal deviate via Acklam's rational inverse-CDF
  /// approximation of a single uniform draw (no rejection loop, so the
  /// draw count per call is fixed — one — which labeled streams rely on).
  /// The polynomial is fully specified here; the only libm calls are
  /// std::sqrt (IEEE correctly rounded) and std::log, whose last-ulp
  /// variance across libms is far below the integer rounding every
  /// consumer applies (sim-time latencies), so replays stay byte-identical
  /// in practice and exactly on any one toolchain.
  double next_normal() noexcept;

  /// Derive an independent generator (for per-process / per-run streams).
  Rng split() noexcept { return Rng(next_u64()); }

  /// k distinct indices drawn uniformly from [0, n) without replacement,
  /// in selection order (partial Fisher-Yates on an index vector).
  /// Precondition: k <= n.
  std::vector<std::size_t> sample_without_replacement(std::size_t n,
                                                      std::size_t k);

  /// In-place Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(next_below(i));
      using std::swap;
      swap(v[i - 1], v[j]);
    }
  }

 private:
  std::uint64_t state_[4]{};
};

}  // namespace pmc

// Sorted-vector map for small dense integer keys (AddrId contact tables).
//
// SyncNode keeps a handful of per-neighbor timestamps (last contact, grace
// windows, pending suspicions). An unordered_map<Address, SimTime> spends a
// heap node plus a component-vector copy per entry; with interned ids the
// same table is one contiguous vector of 12-byte pairs and a binary search —
// smaller than the unordered_map's bucket array alone at typical neighbor
// counts, and trivially iterable in deterministic (key) order.
#pragma once

#include <algorithm>
#include <utility>
#include <vector>

namespace pmc {

template <typename K, typename V>
class FlatMap {
 public:
  using value_type = std::pair<K, V>;
  using iterator = typename std::vector<value_type>::iterator;
  using const_iterator = typename std::vector<value_type>::const_iterator;

  iterator begin() noexcept { return entries_.begin(); }
  iterator end() noexcept { return entries_.end(); }
  const_iterator begin() const noexcept { return entries_.begin(); }
  const_iterator end() const noexcept { return entries_.end(); }

  bool empty() const noexcept { return entries_.empty(); }
  std::size_t size() const noexcept { return entries_.size(); }
  void clear() noexcept { entries_.clear(); }
  void reserve(std::size_t n) { entries_.reserve(n); }

  iterator find(K key) {
    const auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  const_iterator find(K key) const {
    const auto it = lower_bound(key);
    return (it != entries_.end() && it->first == key) ? it : entries_.end();
  }
  bool contains(K key) const { return find(key) != entries_.end(); }

  /// Inserts or overwrites; returns the entry's value slot.
  V& insert_or_assign(K key, V value) {
    const auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) {
      it->second = std::move(value);
      return it->second;
    }
    return entries_.insert(it, {key, std::move(value)})->second;
  }

  /// operator[]-style access, default-constructing missing entries.
  V& operator[](K key) {
    const auto it = lower_bound(key);
    if (it != entries_.end() && it->first == key) return it->second;
    return entries_.insert(it, {key, V{}})->second;
  }

  bool erase(K key) {
    const auto it = lower_bound(key);
    if (it == entries_.end() || it->first != key) return false;
    entries_.erase(it);
    return true;
  }
  iterator erase(iterator it) { return entries_.erase(it); }

 private:
  iterator lower_bound(K key) {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, K k) { return e.first < k; });
  }
  const_iterator lower_bound(K key) const {
    return std::lower_bound(
        entries_.begin(), entries_.end(), key,
        [](const value_type& e, K k) { return e.first < k; });
  }

  std::vector<value_type> entries_;  // sorted by key, unique keys
};

}  // namespace pmc

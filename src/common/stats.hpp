// Streaming statistics used by the experiment harness: Welford accumulators
// for mean/variance with normal-approximation confidence intervals, and a
// small exact-quantile summary for per-run metrics (run counts are modest,
// so storing samples is acceptable and keeps quantiles exact).
#pragma once

#include <cstddef>
#include <vector>

namespace pmc {

/// Single-pass mean/variance accumulator (Welford's algorithm).
class Accumulator {
 public:
  void add(double x) noexcept;

  std::size_t count() const noexcept { return n_; }
  double mean() const noexcept { return n_ == 0 ? 0.0 : mean_; }
  /// Unbiased sample variance; 0 for fewer than two samples.
  double variance() const noexcept;
  double stddev() const noexcept;
  /// Standard error of the mean; 0 for fewer than two samples.
  double stderr_mean() const noexcept;
  /// Half-width of the 95% confidence interval (normal approximation).
  double ci95_halfwidth() const noexcept { return 1.959964 * stderr_mean(); }
  double min() const noexcept { return min_; }
  double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Stores samples for exact quantiles; intended for <= a few thousand runs.
class Summary {
 public:
  void add(double x);

  std::size_t count() const noexcept { return samples_.size(); }
  double mean() const noexcept { return acc_.mean(); }
  double stddev() const noexcept { return acc_.stddev(); }
  double ci95_halfwidth() const noexcept { return acc_.ci95_halfwidth(); }
  double min() const noexcept { return acc_.min(); }
  double max() const noexcept { return acc_.max(); }

  /// Linear-interpolation quantile, q in [0, 1]. Returns 0 when empty.
  double quantile(double q) const;
  double median() const { return quantile(0.5); }

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = false;
  Accumulator acc_;
};

}  // namespace pmc

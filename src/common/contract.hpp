// Lightweight contract checking in the spirit of the C++ Core Guidelines'
// Expects/Ensures (I.6, I.8). Violations are programming errors, so they
// terminate via std::logic_error rather than being silently ignored.
#pragma once

#include <stdexcept>
#include <string>

namespace pmc {

namespace detail {
[[noreturn]] inline void contract_failure(const char* kind, const char* expr,
                                          const char* file, int line) {
  throw std::logic_error(std::string(kind) + " violated: " + expr + " at " +
                         file + ":" + std::to_string(line));
}
}  // namespace detail

}  // namespace pmc

#define PMC_EXPECTS(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::pmc::detail::contract_failure("precondition", #cond, __FILE__,   \
                                      __LINE__);                         \
  } while (false)

#define PMC_ENSURES(cond)                                                \
  do {                                                                   \
    if (!(cond))                                                         \
      ::pmc::detail::contract_failure("postcondition", #cond, __FILE__,  \
                                      __LINE__);                         \
  } while (false)

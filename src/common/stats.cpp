#include "common/stats.hpp"

#include <algorithm>
#include <cmath>

#include "common/contract.hpp"

namespace pmc {

void Accumulator::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double Accumulator::variance() const noexcept {
  return n_ < 2 ? 0.0 : m2_ / static_cast<double>(n_ - 1);
}

double Accumulator::stddev() const noexcept { return std::sqrt(variance()); }

double Accumulator::stderr_mean() const noexcept {
  return n_ < 2 ? 0.0 : stddev() / std::sqrt(static_cast<double>(n_));
}

void Summary::add(double x) {
  samples_.push_back(x);
  sorted_ = false;
  acc_.add(x);
}

double Summary::quantile(double q) const {
  PMC_EXPECTS(q >= 0.0 && q <= 1.0);
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] + frac * (samples_[hi] - samples_[lo]);
}

}  // namespace pmc

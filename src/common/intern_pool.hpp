// Content-addressed value pool: structurally equal values are stored once
// and shared via shared_ptr<const T>.
//
// The membership layer uses this for InterestSummary: anti-entropy converges
// every process in a subgroup onto structurally identical row summaries, so
// without pooling a group of n processes stores O(n * rows) copies of the
// same few hundred distinct summaries. Pooled, each row is one shared_ptr
// (8 bytes) and the distinct values exist once per simulation.
//
// Requires T to expose `std::uint64_t hash() const` consistent with its
// operator== (equal values must hash equal; collisions are resolved by deep
// equality). Pool entries are immutable once interned — the shared_ptr is
// const — so sharing is safe across processes on one runtime.
#pragma once

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

namespace pmc {

template <typename T>
class InternPool {
 public:
  InternPool() = default;

  InternPool(const InternPool&) = delete;
  InternPool& operator=(const InternPool&) = delete;

  void reserve(std::size_t distinct_values) {
    buckets_.reserve(distinct_values);
  }

  /// Returns the pooled instance structurally equal to `value`, interning a
  /// copy (or the moved-from value) on first sight.
  std::shared_ptr<const T> intern(const T& value) {
    return intern_impl(value, [&] { return std::make_shared<const T>(value); });
  }
  std::shared_ptr<const T> intern(T&& value) {
    return intern_impl(value, [&] {
      return std::make_shared<const T>(std::move(value));
    });
  }

  /// Distinct values interned so far.
  std::size_t size() const noexcept { return count_; }

 private:
  template <typename MakeFn>
  std::shared_ptr<const T> intern_impl(const T& value, MakeFn make) {
    auto& chain = buckets_[value.hash()];
    for (const auto& entry : chain)
      if (*entry == value) return entry;
    chain.push_back(make());
    ++count_;
    return chain.back();
  }

  /// hash -> structurally distinct values with that hash (chain length 1
  /// barring collisions).
  std::unordered_map<std::uint64_t, std::vector<std::shared_ptr<const T>>>
      buckets_;
  std::size_t count_ = 0;
};

}  // namespace pmc

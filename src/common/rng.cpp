#include "common/rng.hpp"

#include <cmath>
#include <numeric>

namespace pmc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Rng::next_normal() noexcept {
  // Acklam's inverse normal CDF approximation (relative error < 1.15e-9
  // over the whole open interval), evaluated on one uniform draw mapped
  // into (0, 1). Good far beyond what latency sampling needs, and — unlike
  // Box-Muller or Ziggurat — consumes exactly one draw with no
  // trigonometry and no rejection loop.
  static constexpr double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                                 -2.759285104469687e+02, 1.383577518672690e+02,
                                 -3.066479806614716e+01, 2.506628277459239e+00};
  static constexpr double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                                 -1.556989798598866e+02, 6.680131188771972e+01,
                                 -1.328068155288572e+01};
  static constexpr double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                                 -2.400758277161838e+00, -2.549732539343734e+00,
                                 4.374664141464968e+00,  2.938163982698783e+00};
  static constexpr double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                                 2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double p_low = 0.02425;
  // Map the 53-bit uniform into the open interval: 0 would send the lower
  // tail branch to log(0).
  const double p = (static_cast<double>(next_u64() >> 11) + 0.5) * 0x1.0p-53;
  if (p < p_low) {
    const double q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
            c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p > 1.0 - p_low) {
    const double q = std::sqrt(-2.0 * std::log(1.0 - p));
    return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q +
             c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  const double q = p - 0.5;
  const double r = q * q;
  return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r +
          a[5]) *
         q /
         (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  PMC_EXPECTS(k <= n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(next_below(n - i));
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace pmc

#include "common/rng.hpp"

#include <numeric>

namespace pmc {

namespace {
constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

std::uint64_t Rng::next_u64() noexcept {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  // Lemire 2019, "Fast Random Integer Generation in an Interval".
  std::uint64_t x = next_u64();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto low = static_cast<std::uint64_t>(m);
  if (low < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (low < threshold) {
      x = next_u64();
      m = static_cast<__uint128_t>(x) * bound;
      low = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::vector<std::size_t> Rng::sample_without_replacement(std::size_t n,
                                                         std::size_t k) {
  PMC_EXPECTS(k <= n);
  std::vector<std::size_t> idx(n);
  std::iota(idx.begin(), idx.end(), std::size_t{0});
  for (std::size_t i = 0; i < k; ++i) {
    const auto j = i + static_cast<std::size_t>(next_below(n - i));
    using std::swap;
    swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

}  // namespace pmc

// Move-only type-erased callable (a C++20 stand-in for C++23's
// std::move_only_function, which the simulator cannot use yet).
//
// The scheduler stores one callback per pending event, so this type is built
// for that hot path: callables up to kInlineSize bytes with a nothrow move
// constructor live inline (no allocation per scheduled event); larger or
// throwing-move callables fall back to the heap. Unlike std::function it
// accepts non-copyable callables (e.g. lambdas owning a unique_ptr), which
// is what lets the scheduler move payloads through without const_cast.
#pragma once

#include <cstddef>
#include <functional>  // std::bad_function_call
#include <new>
#include <type_traits>
#include <utility>

namespace pmc {

template <class Signature>
class UniqueFunction;

template <class R, class... Args>
class UniqueFunction<R(Args...)> {
 public:
  UniqueFunction() noexcept = default;
  UniqueFunction(std::nullptr_t) noexcept {}  // NOLINT(runtime/explicit)

  template <class F, class D = std::decay_t<F>,
            class = std::enable_if_t<
                !std::is_same_v<D, UniqueFunction> &&
                std::is_invocable_r_v<R, D&, Args...>>>
  UniqueFunction(F&& f) {  // NOLINT(runtime/explicit)
    // Match std::function: wrapping a null function pointer or an empty
    // std::function yields an *empty* UniqueFunction, so callers' null
    // checks (e.g. the scheduler's precondition) still fire at wrap time
    // rather than as bad_function_call when the callable is invoked.
    if constexpr (requires { f == nullptr; }) {
      if (f == nullptr) return;
    }
    if constexpr (kInlinable<D>) {
      ::new (storage_) D(std::forward<F>(f));
      invoke_ = [](void* s, Args... args) -> R {
        return (*static_cast<D*>(s))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* other) noexcept {
        auto* d = static_cast<D*>(self);
        if (op == Op::Move) ::new (other) D(std::move(*d));
        d->~D();
      };
    } else {
      ::new (storage_) D*(new D(std::forward<F>(f)));
      invoke_ = [](void* s, Args... args) -> R {
        return (**static_cast<D**>(s))(std::forward<Args>(args)...);
      };
      manage_ = [](Op op, void* self, void* other) noexcept {
        auto*& p = *static_cast<D**>(self);
        if (op == Op::Move)
          ::new (other) D*(p);
        else
          delete p;
        p = nullptr;
      };
    }
  }

  UniqueFunction(UniqueFunction&& rhs) noexcept { steal(rhs); }
  UniqueFunction& operator=(UniqueFunction&& rhs) noexcept {
    if (this != &rhs) {
      reset();
      steal(rhs);
    }
    return *this;
  }
  UniqueFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  UniqueFunction(const UniqueFunction&) = delete;
  UniqueFunction& operator=(const UniqueFunction&) = delete;

  ~UniqueFunction() { reset(); }

  explicit operator bool() const noexcept { return invoke_ != nullptr; }
  friend bool operator==(const UniqueFunction& f, std::nullptr_t) noexcept {
    return f.invoke_ == nullptr;
  }
  friend bool operator!=(const UniqueFunction& f, std::nullptr_t) noexcept {
    return f.invoke_ != nullptr;
  }

  R operator()(Args... args) {
    if (invoke_ == nullptr) throw std::bad_function_call();
    return invoke_(storage_, std::forward<Args>(args)...);
  }

 private:
  enum class Op { Move, Destroy };

  static constexpr std::size_t kInlineSize = 48;
  static constexpr std::size_t kInlineAlign = alignof(std::max_align_t);
  template <class D>
  static constexpr bool kInlinable = sizeof(D) <= kInlineSize &&
                                     alignof(D) <= kInlineAlign &&
                                     std::is_nothrow_move_constructible_v<D>;

  void reset() noexcept {
    if (manage_ != nullptr) manage_(Op::Destroy, storage_, nullptr);
    invoke_ = nullptr;
    manage_ = nullptr;
  }

  void steal(UniqueFunction& rhs) noexcept {
    if (rhs.manage_ != nullptr)
      rhs.manage_(Op::Move, rhs.storage_, storage_);
    invoke_ = rhs.invoke_;
    manage_ = rhs.manage_;
    rhs.invoke_ = nullptr;
    rhs.manage_ = nullptr;
  }

  alignas(kInlineAlign) unsigned char storage_[kInlineSize];
  R (*invoke_)(void*, Args...) = nullptr;
  void (*manage_)(Op, void*, void*) noexcept = nullptr;
};

}  // namespace pmc

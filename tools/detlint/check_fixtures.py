#!/usr/bin/env python3
"""detlint self-test over tests/detlint_fixtures/.

Asserts the linter's contract on a pinned corpus:

  * every bad_<rule>.cpp is flagged EXACTLY ONCE, and the one finding is
    for <rule> (no cross-rule noise, no double counting);
  * clean.cpp produces zero findings;
  * allowed.cpp passes when its inline annotations are honored and fails
    when they are ignored (--no-allowlist) — proving the escape hatch is
    the only thing suppressing it.

Registered as the `detlint_fixture_check` ctest, so a regression in any
rule's matcher fails tier-1 verify without needing GitHub.

Usage: python3 tools/detlint/check_fixtures.py [--engine lex|cindex|auto]
"""

from __future__ import annotations

import argparse
import re
import subprocess
import sys
from pathlib import Path

HERE = Path(__file__).resolve().parent
ROOT = HERE.parent.parent
FIXTURES = ROOT / "tests" / "detlint_fixtures"
FINDING_RE = re.compile(r"^(?P<path>[^:]+):(?P<line>\d+): \[(?P<rule>[a-z-]+)\]")


def run_detlint(files, engine, no_allowlist):
    cmd = [sys.executable, str(HERE / "detlint.py"), "--root", str(ROOT),
           "--engine", engine]
    if no_allowlist:
        cmd.append("--no-allowlist")
    cmd += [str(f) for f in files]
    proc = subprocess.run(cmd, capture_output=True, text=True)
    findings = []
    for line in proc.stdout.splitlines():
        m = FINDING_RE.match(line)
        if m:
            findings.append((m.group("path"), int(m.group("line")),
                             m.group("rule")))
    return proc.returncode, findings


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("--engine", default="lex",
                    choices=("lex", "cindex", "auto"))
    args = ap.parse_args()

    failures: list[str] = []

    def check(cond: bool, what: str):
        print(("ok   " if cond else "FAIL ") + what)
        if not cond:
            failures.append(what)

    bad_fixtures = sorted(FIXTURES.glob("bad_*.cpp"))
    check(len(bad_fixtures) == 5,
          f"five bad fixtures present (found {len(bad_fixtures)})")

    for fixture in bad_fixtures:
        rule = fixture.stem[len("bad_"):].replace("_", "-")
        rc, findings = run_detlint([fixture], args.engine, no_allowlist=True)
        check(rc == 1, f"{fixture.name}: exit 1 (got {rc})")
        check(len(findings) == 1,
              f"{fixture.name}: exactly one finding (got {len(findings)}: "
              f"{findings})")
        if findings:
            check(findings[0][2] == rule,
                  f"{fixture.name}: finding is [{rule}] "
                  f"(got [{findings[0][2]}])")

    clean = FIXTURES / "clean.cpp"
    rc, findings = run_detlint([clean], args.engine, no_allowlist=True)
    check(rc == 0 and not findings,
          f"clean.cpp: zero findings, exit 0 (got {rc}, {findings})")

    allowed = FIXTURES / "allowed.cpp"
    rc, findings = run_detlint([allowed], args.engine, no_allowlist=False)
    check(rc == 0 and not findings,
          f"allowed.cpp with annotations honored: passes (got {rc}, "
          f"{findings})")
    rc, findings = run_detlint([allowed], args.engine, no_allowlist=True)
    check(rc == 1 and len(findings) == 2,
          f"allowed.cpp with --no-allowlist: both sites flagged "
          f"(got {rc}, {findings})")

    if failures:
        print(f"\ncheck_fixtures: {len(failures)} assertion(s) failed")
        return 1
    print("\ncheck_fixtures: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())

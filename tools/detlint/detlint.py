#!/usr/bin/env python3
"""detlint — static enforcement of the pmcast determinism & replay contract.

The repo's one load-bearing invariant is that a scenario replayed with the
same master seed is byte-identical — across thread counts, memory layouts,
and index rewrites. Golden-fingerprint tests catch violations after the
fact; detlint catches the *sources* of nondeterminism at lint time, the way
TSan catches data races at run time. docs/DETERMINISM.md is the prose
contract; each rule below cross-references a section there.

Rules
-----
banned-source       Wall-clock, entropy, and environment reads in
                    fingerprint-affecting code: std::random_device, rand,
                    srand, time(), gettimeofday, clock_gettime,
                    system_clock / steady_clock / high_resolution_clock,
                    getenv. Replays must not observe the host.
pointer-hash        Pointer values reaching a hash or comparator:
                    std::hash<T*>, std::less<T*>, reinterpret_cast to
                    [u]intptr_t, `this` passed to a hash/fnv helper.
                    Addresses differ run to run; hashing one bakes ASLR
                    into a fingerprint.
rng-discipline      RNG engine construction outside the labeled-stream
                    seam: any <random> engine anywhere, and direct
                    pmc::Rng / SplitMix64 construction outside src/sim/
                    and src/common/rng* — simulation draws must flow
                    through Runtime::make_stream / make_process_stream so
                    that adding a consumer never perturbs unrelated draws.
iteration-order     Range-for or iterator loops over std::unordered_map /
                    std::unordered_set. Bucket order is
                    implementation-defined; iterating it leaks hash order
                    into summaries, wire bytes, and fan-out order. Use
                    FlatMap or sorted materialization.
thread-confinement  Mutable static / namespace-scope state reachable from
                    worker-pool lanes: TSan only catches these when a
                    schedule happens to race; the replay contract bans
                    them outright.

Escape hatches
--------------
An inline annotation on the finding's line or the line above:

    // detlint:allow(<rule>[,<rule>...]) <justification>

(justification required), or a checked-in allowlist entry
(tools/detlint/detlint.allow):

    <path-glob> <rule> -- <justification>

Engines
-------
--engine=lex (default) is a self-contained lexical analyzer: it strips
comments/strings, resolves unordered-container declarations across a
file and its same-stem header/source pair, and needs nothing beyond
Python. --engine=cindex parses the real AST via clang.cindex over the
CMake-exported compile_commands.json when the libclang bindings are
installed (pip install libclang / apt install python3-clang); it is a
strict superset in precision but an optional dependency — detlint
degrades to lex with a note, never a crash. --engine=auto picks cindex
when importable, lex otherwise.

Usage
-----
    python3 tools/detlint/detlint.py                    # lint the tree
    python3 tools/detlint/detlint.py --list-rules
    python3 tools/detlint/detlint.py path/to/file.cpp   # explicit files
    python3 tools/detlint/detlint.py --no-allowlist f.cpp   # fixtures mode

Exit status: 0 clean, 1 violations, 2 usage/environment error.
"""

from __future__ import annotations

import argparse
import fnmatch
import json
import re
import sys
from dataclasses import dataclass, field
from pathlib import Path

RULES = (
    "banned-source",
    "pointer-hash",
    "rng-discipline",
    "iteration-order",
    "thread-confinement",
)

# Directories scanned when no explicit files are given, relative to repo root.
DEFAULT_SCAN_DIRS = ("src", "bench", "examples", "tools")
CXX_SUFFIXES = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h"}

# rng-discipline: pmc::Rng / SplitMix64 may be constructed directly only in
# the stream factory itself and the generator's home.
RNG_EXEMPT_GLOBS = ("src/sim/*", "src/common/rng.*")

ALLOW_RE = re.compile(
    r"//\s*detlint:allow\(\s*([a-z-]+(?:\s*,\s*[a-z-]+)*)\s*\)\s*(.*)"
)


@dataclass
class Finding:
    path: str  # repo-relative, posix
    line: int  # 1-based
    rule: str
    message: str
    allowed_by: str | None = None  # None = live violation


@dataclass
class SourceText:
    """A C++ file with comments/strings blanked and annotations extracted."""

    path: Path
    rel: str
    raw_lines: list[str] = field(default_factory=list)
    code_lines: list[str] = field(default_factory=list)  # stripped
    # line (1-based) -> (frozenset of rules, justification)
    allows: dict[int, tuple[frozenset, str]] = field(default_factory=dict)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments, string and char literals, preserving line
    structure so findings keep their line numbers. Handles //, /* */,
    "..." with escapes, '...', and R"delim(...)delim" raw strings."""
    out = []
    i, n = 0, len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "/" and nxt == "/":
            j = text.find("\n", i)
            j = n if j == -1 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and nxt == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j == -1 else j
            chunk = text[i : j + 2]
            out.append("".join(ch if ch == "\n" else " " for ch in chunk))
            i = j + 2
        elif c == "R" and nxt == '"':
            m = re.match(r'R"([^()\s\\]{0,16})\(', text[i:])
            if m:
                closer = ")" + m.group(1) + '"'
                j = text.find(closer, i + m.end())
                j = n - len(closer) if j == -1 else j
                chunk = text[i : j + len(closer)]
                out.append('R""' + "".join(
                    ch if ch == "\n" else " " for ch in chunk[3:]))
                i = j + len(closer)
            else:
                out.append(c)
                i += 1
        elif c == '"':
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            out.append('"' + " " * (j - i - 1) + '"')
            i = j + 1
        elif c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            out.append("'" + " " * (j - i - 1) + "'")
            i = j + 1
        else:
            out.append(c)
            i += 1
    return "".join(out)


def load_source(path: Path, root: Path) -> SourceText:
    text = path.read_text(encoding="utf-8", errors="replace")
    src = SourceText(path=path, rel=path.relative_to(root).as_posix())
    src.raw_lines = text.splitlines()
    src.code_lines = strip_comments_and_strings(text).splitlines()
    for lineno, line in enumerate(src.raw_lines, start=1):
        m = ALLOW_RE.search(line)
        if m:
            rules = frozenset(r.strip() for r in m.group(1).split(","))
            src.allows[lineno] = (rules, m.group(2).strip())
    return src


# --------------------------------------------------------------------------
# Allowlist


@dataclass
class AllowEntry:
    glob: str
    rule: str  # rule id or '*'
    justification: str
    origin: str  # "file:line" for diagnostics


def load_allowlist(path: Path) -> list[AllowEntry]:
    entries = []
    if not path.exists():
        return entries
    for lineno, line in enumerate(
        path.read_text(encoding="utf-8").splitlines(), start=1
    ):
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        head, sep, justification = line.partition("--")
        if not sep or not justification.strip():
            raise SystemExit(
                f"{path}:{lineno}: allowlist entry needs a '-- justification'"
            )
        parts = head.split()
        if len(parts) != 2 or (parts[1] not in RULES and parts[1] != "*"):
            raise SystemExit(
                f"{path}:{lineno}: expected '<glob> <rule> -- <why>', "
                f"rule one of {', '.join(RULES)} or '*'"
            )
        entries.append(
            AllowEntry(parts[0], parts[1], justification.strip(),
                       f"{path.name}:{lineno}")
        )
    return entries


def allowlisted(entry_list, rel: str, rule: str):
    for e in entry_list:
        if (e.rule == rule or e.rule == "*") and fnmatch.fnmatch(rel, e.glob):
            return e
    return None


# --------------------------------------------------------------------------
# Lexical engine


BANNED_SOURCE_PATTERNS = (
    (re.compile(r"\brandom_device\b"), "std::random_device (host entropy)"),
    (re.compile(r"(?<![\w:.])s?rand\s*\("), "rand()/srand() (ambient C RNG)"),
    (re.compile(r"(?<![\w:.~])time\s*\(\s*(?:nullptr|NULL|0|&\w+)?\s*\)"),
     "time() (wall clock)"),
    (re.compile(r"\bstd::time\b"), "std::time (wall clock)"),
    (re.compile(r"\b(?:system_clock|high_resolution_clock|file_clock)\b"),
     "wall/host clock read"),
    (re.compile(r"\bsteady_clock\b"), "steady_clock (host clock)"),
    (re.compile(r"\b(?:secure_)?getenv\b"), "getenv (environment read)"),
    (re.compile(r"\b(?:gettimeofday|clock_gettime|timespec_get|localtime"
                r"|gmtime)\b"), "wall-clock/calendar read"),
    (re.compile(r"(?<![\w:.])clock\s*\(\s*\)"), "clock() (CPU clock)"),
)

POINTER_HASH_PATTERNS = (
    (re.compile(r"\bstd::hash\s*<[^<>;]*\*\s*>"),
     "std::hash over a pointer type"),
    (re.compile(r"\bstd::less\s*<[^<>;]*\*\s*>"),
     "std::less over a pointer type (address ordering)"),
    (re.compile(r"\breinterpret_cast\s*<\s*(?:std::)?u?intptr_t\s*>"),
     "pointer converted to integer (address value escapes)"),
    (re.compile(r"\b\w*(?:hash|fnv)\w*\s*\([^()]*\bthis\b"),
     "`this` passed to a hash function"),
)

STD_ENGINE_RE = re.compile(
    r"\b(?:std::)?(?:mt19937(?:_64)?|minstd_rand0?|default_random_engine"
    r"|ranlux(?:24|48)(?:_base)?|knuth_b)\b"
)
# Rng construction forms. A trailing ( is only a *construction* when the
# parenthesis content is value-like; `Rng stream(std::uint64_t tag)` is a
# declaration of a function returning Rng.
RNG_DECL_RE = re.compile(r"\b(?:pmc::)?(Rng|SplitMix64)\s+(\w+)\s*([({=])")
RNG_TEMP_RE = re.compile(r"\b(?:pmc::)?(Rng|SplitMix64)\s*\(")
STREAM_FACTORY_RE = re.compile(
    r"\b(?:make_stream|make_process_stream|make_rng|stream|split)\s*\("
)
PARAMLIST_TYPE_RE = re.compile(
    r"\b(?:std::|const\b|unsigned\b|uint|int\d|size_t|uint64|Rng\b|double\b"
    r"|float\b|char\b|bool\b|auto\b)|&|\w\s+\w"
)

UNORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?unordered_(?:map|set|multimap|multiset)\s*<"
)
# Ordered/sequence containers tracked only to *shadow* unordered names:
# `foo(std::unordered_map<..>& counts)` in one function must not taint a
# `foo(std::map<..>& counts)` parameter of the same name elsewhere.
ORDERED_DECL_RE = re.compile(
    r"\b(?:std\s*::\s*)?(?:map|set|multimap|multiset|vector|deque|list"
    r"|array|span|FlatMap)\s*<"
)
RANGE_FOR_RE = re.compile(r"\bfor\s*\((?P<head>[^;)]*?):(?P<expr>[^;]*)\)")
ITER_FOR_RE = re.compile(
    r"\bfor\s*\([^;]*=\s*(?P<base>\w+(?:\s*(?:\.|->)\s*\w+)*)\s*"
    r"(?:\.|->)\s*c?begin\s*\("
)

STATIC_DECL_RE = re.compile(r"^\s*(?:inline\s+)?static\s+(?!class\b|struct\b)")
STATIC_IMMUTABLE_RE = re.compile(
    r"^\s*(?:inline\s+)?static\s+(?:(?:inline|constexpr|constinit|const"
    r"|thread_local)\b|(?:std::)?atomic\b|(?:std::)?atomic<)"
)


def balanced_template_end(text: str, start: int) -> int:
    """Index just past the matching '>' for the '<' at text[start]."""
    depth = 0
    i = start
    while i < len(text):
        c = text[i]
        if c == "<":
            depth += 1
        elif c == ">":
            # treat '>>' as two closers (C++11 semantics)
            depth -= 1
            if depth == 0:
                return i + 1
        elif c in ";{":
            break
        i += 1
    return -1


def _collect_decls(code: str, pattern: re.Pattern) -> list[tuple[int, str]]:
    """(char offset, identifier) for declarations matching a container
    pattern: members, locals, and parameters, plus `using X = ...` aliases."""
    decls: list[tuple[int, str]] = []
    for m in pattern.finditer(code):
        end = balanced_template_end(code, m.end() - 1)
        if end == -1:
            continue
        after = code[end:]
        # Declarator terminators cover members/locals (`; = { (`) and
        # parameters (`) ,`).
        dm = re.match(r"\s*[&*]?\s*(\w+)\s*[;={(),]", after)
        if dm and dm.group(1) not in ("const",):
            decls.append((m.start(), dm.group(1)))
        # `using X = unordered_map<...>` alias: record the alias name too
        line_start = code.rfind("\n", 0, m.start()) + 1
        um = re.match(r"\s*using\s+(\w+)\s*=", code[line_start:m.start()])
        if um:
            decls.append((line_start, um.group(1)))
    return decls


def collect_unordered_decls(code: str) -> set[str]:
    """Identifiers declared with an unordered container type (name set,
    used for same-stem sibling headers where positions don't transfer)."""
    return {name for _, name in _collect_decls(code, UNORDERED_DECL_RE)}


class ContainerScope:
    """Nearest-preceding-declaration resolution for container names.

    A base identifier in a loop is treated as unordered iff the closest
    declaration of that name *above* the use site is an unordered container
    (ordered/sequence declarations shadow same-named unordered ones from
    other scopes). With no preceding declaration — class members declared
    below their use, or in the paired header — any unordered declaration of
    the name, local-later or sibling, counts (conservative)."""

    def __init__(self, code: str, sibling_unordered: set[str]):
        self.events: dict[str, list[tuple[int, bool]]] = {}
        for off, name in _collect_decls(code, UNORDERED_DECL_RE):
            self.events.setdefault(name, []).append((off, True))
        for off, name in _collect_decls(code, ORDERED_DECL_RE):
            self.events.setdefault(name, []).append((off, False))
        for evs in self.events.values():
            evs.sort()
        self.sibling_unordered = sibling_unordered

    def is_unordered_at(self, name: str, offset: int) -> bool:
        evs = self.events.get(name, [])
        preceding = [u for off, u in evs if off <= offset]
        if preceding:
            return preceding[-1]
        if any(u for _, u in evs):  # declared below the use site
            return True
        return name in self.sibling_unordered


def range_expr_base(expr: str) -> str | None:
    """First identifier of a range-for expression: `store_`, `eq->second`
    -> `eq`, `*ptr` -> `ptr`, `this->store_` -> `store_`."""
    expr = expr.strip()
    expr = re.sub(r"^[*&(\s]+", "", expr)
    expr = re.sub(r"^this\s*->\s*", "", expr)
    m = re.match(r"(\w+)", expr)
    return m.group(1) if m else None


class BraceTracker:
    """Approximate scope tracking: classifies each '{' as namespace, type,
    or block so the lexical engine can tell namespace-scope variables from
    locals. Heuristic by design — the cindex engine is exact."""

    NAMESPACE, TYPE, BLOCK = "namespace", "type", "block"

    def __init__(self):
        self.stack: list[str] = []
        self.pending = ""  # tokens since last ; { or }

    def feed(self, line: str):
        for ch in line:
            if ch == "{":
                self.stack.append(self._classify(self.pending))
                self.pending = ""
            elif ch == "}":
                if self.stack:
                    self.stack.pop()
                self.pending = ""
            elif ch == ";":
                self.pending = ""
            else:
                self.pending += ch

    def _classify(self, pending: str) -> str:
        p = pending.strip()
        if re.search(r"\bnamespace\b", p):
            return self.NAMESPACE
        if re.search(r"\b(class|struct|union|enum)\b", p) and "(" not in p:
            return self.TYPE
        return self.BLOCK

    def at_namespace_scope(self) -> bool:
        return all(s == self.NAMESPACE for s in self.stack)

    def innermost(self) -> str:
        return self.stack[-1] if self.stack else self.NAMESPACE


def lex_lint_file(
    src: SourceText,
    sibling_decls: set[str],
    root: Path,
) -> list[Finding]:
    findings: list[Finding] = []
    code = "\n".join(src.code_lines)
    scope = ContainerScope(code, sibling_decls)
    rel = src.rel

    rng_exempt = any(fnmatch.fnmatch(rel, g) for g in RNG_EXEMPT_GLOBS)
    tracker = BraceTracker()
    # char offset of each line start in `code`, for scope resolution
    line_offsets = [0]
    for l in src.code_lines:
        line_offsets.append(line_offsets[-1] + len(l) + 1)

    def add(lineno: int, rule: str, message: str):
        findings.append(Finding(rel, lineno, rule, message))

    for lineno, line in enumerate(src.code_lines, start=1):
        if not line.strip():
            tracker.feed(line)
            continue

        # -- banned-source ------------------------------------------------
        for pattern, what in BANNED_SOURCE_PATTERNS:
            if pattern.search(line):
                add(lineno, "banned-source",
                    f"{what} — replays must not observe the host "
                    "(DETERMINISM.md §2)")

        # -- pointer-hash -------------------------------------------------
        for pattern, what in POINTER_HASH_PATTERNS:
            if pattern.search(line):
                add(lineno, "pointer-hash",
                    f"{what} — addresses differ run to run "
                    "(DETERMINISM.md §3)")

        # -- rng-discipline -----------------------------------------------
        if STD_ENGINE_RE.search(line):
            add(lineno, "rng-discipline",
                "<random> engine — all simulation draws must come from "
                "pmc::Rng streams labeled via Runtime::make_stream "
                "(DETERMINISM.md §1)")
        elif not rng_exempt:
            flagged = False
            for m in RNG_DECL_RE.finditer(line):
                what, tail = m.group(1), line[m.end() - 1 :]
                if tail.startswith("="):
                    init = line[m.end() :]
                    if STREAM_FACTORY_RE.search(init):
                        continue
                elif tail.startswith("("):
                    close = tail.find(")")
                    params = tail[1:close] if close != -1 else tail[1:]
                    # A function *declaration* returning Rng, not a
                    # construction: parameter-ish paren content.
                    if params.strip() == "" or (
                        PARAMLIST_TYPE_RE.search(params)
                        and not STREAM_FACTORY_RE.search(params)
                        and not re.match(r"\s*[\d'x]+\s*$", params)
                    ):
                        continue
                add(lineno, "rng-discipline",
                    f"direct {what} construction outside src/sim/ — label a "
                    "stream through Runtime::make_stream / "
                    "make_process_stream instead (DETERMINISM.md §1)")
                flagged = True
            if not flagged:
                for m in RNG_TEMP_RE.finditer(line):
                    # skip the declaration forms already handled above and
                    # factory-seeded temporaries
                    before = line[: m.start()]
                    if re.search(r"\b(?:pmc::)?(?:Rng|SplitMix64)\s+\w*$",
                                 before + m.group(0)[:-1]):
                        continue
                    tail = line[m.end() :]
                    close = tail.find(")")
                    args = tail[:close] if close != -1 else tail
                    if args.strip() == "" or STREAM_FACTORY_RE.search(args):
                        continue
                    if re.match(r"\s*(?:[A-Za-z_]\w*\s+[A-Za-z_]\w*|"
                                r"(?:std::|const\b|&)\S*)", args):
                        continue  # parameter list -> declaration
                    add(lineno, "rng-discipline",
                        f"direct {m.group(1)} temporary outside src/sim/ — "
                        "label a stream through Runtime::make_stream "
                        "(DETERMINISM.md §1)")

        # -- iteration-order ----------------------------------------------
        line_off = line_offsets[lineno - 1]
        for m in RANGE_FOR_RE.finditer(line):
            base = range_expr_base(m.group("expr"))
            if base and scope.is_unordered_at(base, line_off + m.start()):
                add(lineno, "iteration-order",
                    f"range-for over unordered container `{base}` — bucket "
                    "order leaks into results; use FlatMap or sorted "
                    "materialization (DETERMINISM.md §4)")
            elif "unordered_" in m.group("expr"):
                add(lineno, "iteration-order",
                    "range-for over an unordered container expression "
                    "(DETERMINISM.md §4)")
        for m in ITER_FOR_RE.finditer(line):
            base = range_expr_base(m.group("base"))
            if base and scope.is_unordered_at(base, line_off + m.start()):
                add(lineno, "iteration-order",
                    f"iterator loop over unordered container `{base}` — "
                    "bucket order leaks into results (DETERMINISM.md §4)")

        # -- thread-confinement -------------------------------------------
        if (
            STATIC_DECL_RE.search(line)
            and not STATIC_IMMUTABLE_RE.search(line)
            and tracker.innermost() != BraceTracker.TYPE
        ):
            stmt = line
            # join continuation lines up to ; or {
            k = lineno
            while (";" not in stmt and "{" not in stmt
                   and k < len(src.code_lines)):
                stmt += " " + src.code_lines[k]
                k += 1
            body = re.sub(r"^\s*(?:inline\s+)?static\s+", "", stmt)
            eq = body.find("=")
            paren = body.find("(")
            is_variable = ("(" not in body) or (eq != -1 and eq < paren)
            if is_variable and not re.match(
                r"\s*(?:const|constexpr|constinit|thread_local|"
                r"(?:std::)?atomic)\b", body
            ):
                add(lineno, "thread-confinement",
                    "mutable static — shared across worker-pool lanes and "
                    "across replays; confine state to the owning Runtime "
                    "(DETERMINISM.md §5)")

        tracker.feed(line)

    return findings


# --------------------------------------------------------------------------
# cindex engine (optional; exact AST walk over compile_commands.json)


def cindex_available() -> bool:
    try:
        import clang.cindex  # noqa: F401

        clang.cindex.Index.create()
        return True
    except Exception:
        return False


def cindex_lint(
    files: list[Path], root: Path, compdb_dir: Path | None
) -> list[Finding]:
    """AST-based pass. Covers the rules that benefit from types exactly
    (iteration-order via the real range-init type, rng-discipline via
    constructor calls, thread-confinement via storage class); the token
    rules (banned-source, pointer-hash) reuse the lexical matcher on the
    same files, so the union is complete."""
    import clang.cindex as ci

    findings: list[Finding] = []
    index = ci.Index.create()
    compdb = None
    if compdb_dir and (compdb_dir / "compile_commands.json").exists():
        compdb = ci.CompilationDatabase.fromDirectory(str(compdb_dir))

    wanted = {f.resolve() for f in files}
    tus = [f for f in files if f.suffix in (".cpp", ".cc", ".cxx")]

    def args_for(tu_path: Path) -> list[str]:
        base = ["-std=c++20", f"-I{root / 'src'}"]
        if compdb:
            cmds = compdb.getCompileCommands(str(tu_path))
            if cmds:
                raw = list(cmds[0].arguments)[1:-1]  # drop compiler & file
                return [a for a in raw if a not in ("-c", "-o")]
        return base

    UNORDERED = ("unordered_map", "unordered_set", "unordered_multimap",
                 "unordered_multiset")
    ENGINES = ("mt19937", "minstd_rand", "default_random_engine", "ranlux",
               "knuth_b")

    def rel_of(loc_file: str) -> str | None:
        p = Path(loc_file).resolve()
        if p in wanted:
            return p.relative_to(root.resolve()).as_posix()
        return None

    def walk(cursor):
        for node in cursor.walk_preorder():
            if not node.location.file:
                continue
            rel = rel_of(node.location.file.name)
            if rel is None:
                continue
            line = node.location.line
            if node.kind == ci.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(node.get_children())
                if children:
                    t = children[0].type.spelling
                    if any(u in t for u in UNORDERED):
                        findings.append(Finding(
                            rel, line, "iteration-order",
                            f"range-for over `{t}` (DETERMINISM.md §4)"))
            elif node.kind in (ci.CursorKind.VAR_DECL,):
                t = node.type.spelling
                if any(e in t for e in ENGINES):
                    findings.append(Finding(
                        rel, line, "rng-discipline",
                        f"<random> engine `{t}` (DETERMINISM.md §1)"))
                storage = node.storage_class
                if (storage == ci.StorageClass.STATIC
                        and not node.type.is_const_qualified()
                        and "atomic" not in t and "thread_local" not in t):
                    sem = node.semantic_parent.kind if node.semantic_parent \
                        else None
                    if sem != ci.CursorKind.CLASS_DECL \
                            and sem != ci.CursorKind.STRUCT_DECL:
                        findings.append(Finding(
                            rel, line, "thread-confinement",
                            f"mutable static `{node.spelling}` "
                            "(DETERMINISM.md §5)"))

    for tu_path in tus:
        tu = index.parse(str(tu_path), args=args_for(tu_path))
        walk(tu.cursor)
    return findings


# --------------------------------------------------------------------------
# Driver


def discover_files(root: Path) -> list[Path]:
    out = []
    for d in DEFAULT_SCAN_DIRS:
        base = root / d
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in CXX_SUFFIXES and p.is_file():
                out.append(p)
    return out


def sibling_decl_map(files: list[Path], root: Path) -> dict[Path, set[str]]:
    """For each file, unordered-container identifiers declared in its
    same-directory same-stem partner(s) (foo.cpp <-> foo.hpp), so members
    declared in a header are recognized in the implementation file."""
    by_stem: dict[tuple, list[Path]] = {}
    for f in files:
        by_stem.setdefault((f.parent, f.stem), []).append(f)
    decls: dict[Path, set[str]] = {}
    cache: dict[Path, set[str]] = {}

    def decls_of(p: Path) -> set[str]:
        if p not in cache:
            text = strip_comments_and_strings(
                p.read_text(encoding="utf-8", errors="replace"))
            cache[p] = collect_unordered_decls(text)
        return cache[p]

    for f in files:
        sibs = [s for s in by_stem[(f.parent, f.stem)] if s != f]
        decls[f] = set().union(*(decls_of(s) for s in sibs)) if sibs else set()
    return decls


def apply_allows(
    findings: list[Finding],
    sources: dict[str, SourceText],
    allowlist: list[AllowEntry],
) -> None:
    for f in findings:
        src = sources.get(f.path)
        if src:
            for ln in (f.line, f.line - 1):
                allow = src.allows.get(ln)
                if allow and f.rule in allow[0]:
                    f.allowed_by = f"inline:{ln} ({allow[1]})"
                    break
        if f.allowed_by is None:
            e = allowlisted(allowlist, f.path, f.rule)
            if e:
                f.allowed_by = f"{e.origin} ({e.justification})"


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(
        prog="detlint", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("files", nargs="*", help="files to lint (default: tree)")
    ap.add_argument("--root", default=None,
                    help="repo root (default: two levels above this script)")
    ap.add_argument("--engine", choices=("auto", "lex", "cindex"),
                    default="lex")
    ap.add_argument("--compdb", default=None,
                    help="directory containing compile_commands.json "
                    "(cindex engine)")
    ap.add_argument("--no-allowlist", action="store_true",
                    help="ignore detlint.allow and inline annotations "
                    "(fixture mode)")
    ap.add_argument("--list-rules", action="store_true")
    ap.add_argument("--show-allowed", action="store_true",
                    help="also print findings suppressed by annotations or "
                    "the allowlist")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = Path(args.root).resolve() if args.root else \
        Path(__file__).resolve().parent.parent.parent
    files = [Path(f).resolve() for f in args.files] if args.files else \
        discover_files(root)
    files = [f for f in files if f.suffix in CXX_SUFFIXES]
    if not files:
        print("detlint: no C++ files to lint", file=sys.stderr)
        return 2

    engine = args.engine
    if engine == "auto":
        engine = "cindex" if cindex_available() else "lex"
    if engine == "cindex" and not cindex_available():
        print("detlint: clang.cindex unavailable, falling back to lex "
              "engine", file=sys.stderr)
        engine = "lex"

    sources: dict[str, SourceText] = {}
    for f in files:
        try:
            src = load_source(f, root)
        except ValueError:
            print(f"detlint: {f} is outside --root {root}", file=sys.stderr)
            return 2
        sources[src.rel] = src

    siblings = sibling_decl_map(files, root)
    findings: list[Finding] = []
    for f in files:
        src = sources[f.relative_to(root).as_posix()]
        findings.extend(lex_lint_file(src, siblings[f], root))

    if engine == "cindex":
        compdb_dir = Path(args.compdb) if args.compdb else root / "build"
        seen = {(f.path, f.line, f.rule) for f in findings}
        for f in cindex_lint(files, root, compdb_dir):
            if (f.path, f.line, f.rule) not in seen:
                findings.append(f)

    if not args.no_allowlist:
        allowlist = load_allowlist(Path(__file__).parent / "detlint.allow")
        apply_allows(findings, sources, allowlist)

    findings.sort(key=lambda f: (f.path, f.line, f.rule))
    live = [f for f in findings if f.allowed_by is None]
    for f in findings:
        if f.allowed_by is None:
            print(f"{f.path}:{f.line}: [{f.rule}] {f.message}")
        elif args.show_allowed:
            print(f"{f.path}:{f.line}: [{f.rule}] allowed by {f.allowed_by}")

    suppressed = len(findings) - len(live)
    status = "FAIL" if live else "OK"
    print(f"detlint: {status} — {len(live)} violation(s), "
          f"{suppressed} allowed, {len(files)} file(s), engine={engine}")
    return 1 if live else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))

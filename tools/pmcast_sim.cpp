// pmcast_sim — command-line experiment driver.
//
// Runs pmcast (or a baseline) on a regular tree with the uniform-interest
// workload and prints delivery/reception/cost metrics next to the Sec. 4
// analysis prediction. Everything the figure benches sweep is exposed as a
// flag, so new parameter points can be explored without recompiling:
//
//   pmcast_sim --a 22 --d 3 --R 3 --F 2 --pd 0.5 --loss 0.05 --runs 20
//   pmcast_sim --algorithm flooding --a 12 --d 3 --pd 0.2
//   pmcast_sim --analysis-only --a 22 --d 3 --pd 0.1
//
// Scenario mode drives the churn/fault engine instead of the single-event
// harness: a text script of timed actions (joins, leaves, crashes,
// recoveries, partitions, loss bursts, publish bursts) runs over a dynamic
// group. `--scenario demo` uses the built-in churn demo; any other value is
// read as a script file (see README "Writing scenarios"):
//
//   pmcast_sim --scenario demo --a 4 --d 2 --seed 7
//   pmcast_sim --scenario storm.scn --fill 0.8 --horizon 5s --repro-check
//
// Sharded mode hosts K independent pmcast groups (topic shards) on one
// runtime — each with its own membership stack, optionally its own script,
// plus cross-shard publishers routed across several shards (see
// docs/ARCHITECTURE.md):
//
//   pmcast_sim --shards 16 --repro-check
//   pmcast_sim --shards 4 --shard-scenario demo --cross 2 --cross-span 3
//   pmcast_sim --shards 8 --shard-scenario 0:storm.scn --horizon 5s
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "analysis/tree_analysis.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"
#include "harness/shard.hpp"
#include "harness/table.hpp"

namespace {

using namespace pmc;

struct Options {
  ExperimentConfig experiment;
  std::string algorithm = "pmcast";  // pmcast | flooding | genuine
  std::size_t genuine_view = 20;
  bool analysis_only = false;

  // Scenario mode.
  std::string scenario;  ///< "demo", or a script file path; empty = off
  double fill = 0.75;
  SimTime horizon = sim_ms(3500);
  bool repro_check = false;
  bool wire_transcode = false;
  bool adaptive = false;  ///< online ε/τ estimation (scenario/sharded)
  double adaptive_alpha = 0.3;

  // Sharded mode.
  std::size_t shards = 0;  ///< 0 = off; K hosts K topic shards
  /// "demo"/"file" (every shard) or "<idx>:demo|file" (one shard);
  /// repeatable.
  std::vector<std::string> shard_scenarios;
  std::size_t cross_publishers = 0;
  std::size_t cross_span = 2;
  std::size_t cross_events = 8;
  SimTime cross_spacing = sim_ms(100);
  std::size_t threads = 1;  ///< worker lanes; 0 = one per hardware core
  // Scenario mode defaults the group to a=4, d=2, R=2; only flags the user
  // actually passed override those (tracked per flag — a lone --a must not
  // drag in the experiment harness's d=3/R=3).
  bool a_set = false;
  bool d_set = false;
  bool r_set = false;
  /// Experiment-only flags seen on the command line; scenario and sharded
  /// mode reject them instead of silently ignoring what the user asked
  /// for.
  std::vector<std::string> experiment_only_flags;
  /// Sharded-only flags seen; rejected unless --shards is given.
  std::vector<std::string> sharded_only_flags;
};

void print_usage() {
  std::cout <<
      "pmcast_sim — probabilistic multicast experiment driver\n\n"
      "usage: pmcast_sim [flags]\n\n"
      "tree / workload:\n"
      "  --a N            subgroups per node (default 22)\n"
      "  --d N            tree depth, n = a^d (default 3)\n"
      "  --R N            delegates per subgroup (default 3)\n"
      "  --pd X           fraction of interested processes (default 0.5)\n"
      "  --clustered      per-leaf clustered interests instead of uniform\n"
      "environment:\n"
      "  --loss X         message loss probability eps (default 0.05)\n"
      "  --crash X        fraction crashing during a run (default 0)\n"
      "algorithm:\n"
      "  --algorithm S    pmcast | flooding | genuine (default pmcast)\n"
      "  --F N            gossip fanout (default 2)\n"
      "  --c X            Pittel constant (default 0)\n"
      "  --h N            tuning threshold, 0 = untuned (default 0)\n"
      "  --flood X        leaf-flood density threshold, >1 = off\n"
      "  --coarsen N      coarsen rows at depth <= N (default 0 = off)\n"
      "  --no-shortcut    disable the local-interest shortcut\n"
      "  --view N         genuine baseline partial-view size (default 20)\n"
      "measurement:\n"
      "  --runs N         independent runs (default 20)\n"
      "  --seed N         base seed (default 42)\n"
      "  --analysis-only  print only the Sec. 4 prediction (no simulation)\n"
      "scenario mode (churn/fault engine over a dynamic group):\n"
      "  --scenario S     'demo' or a script file; enables scenario mode\n"
      "                   (group defaults to --a 4 --d 2 --R 2 unless set)\n"
      "  --fill X         initially populated fraction of a^d (default 0.75)\n"
      "  --horizon T      run length, e.g. 3500ms / 5s; bare = us\n"
      "  --wire           serialize every message through the wire codec\n"
      "  --adaptive[=A]   online eps/tau estimation feeding the Eq. 11\n"
      "                   round bound (EWMA weight A in (0,1], default "
      "0.3);\n"
      "                   needs --scenario or --shards\n"
      "  --repro-check    run twice, compare summaries byte-for-byte\n"
      "sharded mode (K topic shards on one runtime; see docs/SCENARIOS.md):\n"
      "  --shards K       host K independent groups; per-shard tree from\n"
      "                   --a/--d/--R (defaults a=4, d=2, R=2)\n"
      "  --shard-scenario S\n"
      "                   'demo' or a script file for every shard, or\n"
      "                   '<i>:demo|file' for shard i only; repeatable\n"
      "  --cross N        cross-shard publishers (default 0)\n"
      "  --cross-span M   shards each cross publisher spans (default 2)\n"
      "  --cross-events N events per cross publisher (default 8)\n"
      "  --cross-every T  spacing between a publisher's events (default "
      "100ms)\n"
      "  --threads N      worker threads driving the shards (default 1;\n"
      "                   0 = one per core); any N is byte-identical, and\n"
      "                   --repro-check compares the run against N=1\n"
      "\n"
      "--fill/--horizon/--wire/--adaptive/--seed/--pd/--loss/--F apply to\n"
      "scenario and sharded mode; the remaining experiment flags are\n"
      "rejected there.\n"
      "--help / -h prints this and exits 0, whatever else is given.\n";
}

/// Strict size parse: every character must be a digit, so "--cross abc"
/// errors out instead of silently becoming 0 publishers.
bool parse_size(const std::string& flag, const char* value,
                std::size_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value, &end, 10);
  if (*value == '\0' || end == nullptr || *end != '\0') {
    std::cerr << "bad " << flag << ": expected a number, got '" << value
              << "'\n";
    return false;
  }
  out = static_cast<std::size_t>(v);
  return true;
}

bool parse_args(int argc, char** argv, Options& out) {
  auto& e = out.experiment;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    // --help/-h never reaches here: main() pre-scans argv and exits first.
    if (flag == "--a") {
      e.a = std::strtoul(next(), nullptr, 10);
      out.a_set = true;
    }
    else if (flag == "--d") {
      e.d = std::strtoul(next(), nullptr, 10);
      out.d_set = true;
    }
    else if (flag == "--R") {
      e.r = std::strtoul(next(), nullptr, 10);
      out.r_set = true;
    }
    else if (flag == "--F") e.fanout = std::strtoul(next(), nullptr, 10);
    else if (flag == "--pd") e.pd = std::strtod(next(), nullptr);
    else if (flag == "--loss") e.loss = std::strtod(next(), nullptr);
    else if (flag == "--crash") {
      e.crash_fraction = std::strtod(next(), nullptr);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--c") {
      e.pittel_c = std::strtod(next(), nullptr);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--h") {
      e.tuning_threshold = std::strtoul(next(), nullptr, 10);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--flood") {
      e.leaf_flood_density = std::strtod(next(), nullptr);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--coarsen") {
      e.coarsen_depth_leq = std::strtoul(next(), nullptr, 10);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--no-shortcut") {
      e.local_interest_shortcut = false;
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--clustered") {
      e.clustered = true;
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--runs") {
      e.runs = std::strtoul(next(), nullptr, 10);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--seed") e.seed = std::strtoull(next(), nullptr, 10);
    else if (flag == "--algorithm") {
      out.algorithm = next();
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--view") {
      out.genuine_view = std::strtoul(next(), nullptr, 10);
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--analysis-only") {
      out.analysis_only = true;
      out.experiment_only_flags.push_back(flag);
    }
    else if (flag == "--scenario") out.scenario = next();
    else if (flag == "--fill") out.fill = std::strtod(next(), nullptr);
    else if (flag == "--horizon") {
      try {
        out.horizon = parse_sim_time(next());  // same syntax as scripts
      } catch (const std::invalid_argument& err) {
        std::cerr << "bad --horizon: " << err.what() << "\n";
        return false;
      }
      if (out.horizon <= 0) {
        std::cerr << "bad --horizon: must be positive\n";
        return false;
      }
    }
    else if (flag == "--wire") out.wire_transcode = true;
    else if (flag == "--adaptive" || flag.rfind("--adaptive=", 0) == 0) {
      out.adaptive = true;
      if (flag.size() > std::string("--adaptive").size()) {
        const std::string value = flag.substr(std::string("--adaptive=").size());
        char* end = nullptr;
        out.adaptive_alpha = std::strtod(value.c_str(), &end);
        if (value.empty() || end != value.c_str() + value.size() ||
            !(out.adaptive_alpha > 0.0 && out.adaptive_alpha <= 1.0)) {
          std::cerr << "bad --adaptive: EWMA weight must be in (0, 1], got '"
                    << value << "'\n";
          return false;
        }
      }
    }
    else if (flag == "--repro-check") out.repro_check = true;
    else if (flag == "--shards") {
      if (!parse_size(flag, next(), out.shards)) return false;
      if (out.shards < 1) {
        std::cerr << "bad --shards: must be >= 1\n";
        return false;
      }
    }
    else if (flag == "--shard-scenario") {
      out.shard_scenarios.emplace_back(next());
      out.sharded_only_flags.push_back(flag);
    }
    else if (flag == "--cross") {
      if (!parse_size(flag, next(), out.cross_publishers)) return false;
      out.sharded_only_flags.push_back(flag);
    }
    else if (flag == "--cross-span") {
      if (!parse_size(flag, next(), out.cross_span)) return false;
      out.sharded_only_flags.push_back(flag);
    }
    else if (flag == "--cross-events") {
      if (!parse_size(flag, next(), out.cross_events)) return false;
      out.sharded_only_flags.push_back(flag);
    }
    else if (flag == "--cross-every") {
      try {
        out.cross_spacing = parse_sim_time(next());
      } catch (const std::invalid_argument& err) {
        std::cerr << "bad --cross-every: " << err.what() << "\n";
        return false;
      }
      out.sharded_only_flags.push_back(flag);
    }
    else if (flag == "--threads") {
      if (!parse_size(flag, next(), out.threads)) return false;
      out.sharded_only_flags.push_back(flag);
    }
    else {
      std::cerr << "unknown flag: " << flag << " (try --help)\n";
      return false;
    }
  }
  if (e.a < 1 || e.d < 1 || e.r < 1 || e.fanout < 1 || e.runs < 1 ||
      e.pd < 0.0 || e.pd > 1.0 || e.loss < 0.0 || e.loss >= 1.0 ||
      e.crash_fraction < 0.0 || e.crash_fraction >= 1.0) {
    std::cerr << "invalid parameter values (try --help)\n";
    return false;
  }
  if (out.algorithm != "pmcast" && out.algorithm != "flooding" &&
      out.algorithm != "genuine") {
    std::cerr << "unknown algorithm: " << out.algorithm << "\n";
    return false;
  }
  if (out.adaptive && out.scenario.empty() && out.shards == 0) {
    std::cerr << "--adaptive requires --scenario or --shards\n";
    return false;
  }
  if (!out.scenario.empty() && out.shards > 0) {
    std::cerr << "--scenario and --shards are mutually exclusive; use "
                 "--shard-scenario to script the shards\n";
    return false;
  }
  if (out.shards == 0 && !out.sharded_only_flags.empty()) {
    std::cerr << "flags that require --shards:";
    for (const auto& f : out.sharded_only_flags) std::cerr << " " << f;
    std::cerr << "\n";
    return false;
  }
  if ((!out.scenario.empty() || out.shards > 0) &&
      !out.experiment_only_flags.empty()) {
    // Silently ignoring what the user asked for would misreport the run.
    std::cerr << "flags not applicable in --"
              << (out.shards > 0 ? "shards" : "scenario") << " mode:";
    for (const auto& f : out.experiment_only_flags) std::cerr << " " << f;
    std::cerr << "\n";
    return false;
  }
  if (out.shards > 0 && out.cross_publishers > 0 &&
      (out.cross_span < 1 || out.cross_span > out.shards)) {
    std::cerr << "bad --cross-span: must be within [1, --shards]\n";
    return false;
  }
  return true;
}

/// Loads "demo" or a script file into `script`; prints the reason and
/// returns false on failure.
bool load_script(const std::string& spec, ScenarioScript& script) {
  if (spec == "demo") {
    script = ScenarioScript::demo();
    return true;
  }
  std::ifstream in(spec);
  if (!in) {
    std::cerr << "cannot open scenario file: " << spec << "\n";
    return false;
  }
  std::ostringstream text;
  text << in.rdbuf();
  try {
    script = ScenarioScript::parse(text.str());
  } catch (const std::exception& e) {
    std::cerr << e.what() << "\n";
    return false;
  }
  return true;
}

int run_scenario(const Options& options) {
  ScenarioScript script;
  if (!load_script(options.scenario, script)) return 2;

  ChurnConfig config;
  if (options.a_set) config.a = options.experiment.a;
  if (options.d_set) config.d = options.experiment.d;
  if (options.r_set) config.r = options.experiment.r;
  config.pd = options.experiment.pd;
  config.fanout = options.experiment.fanout;
  config.loss = options.experiment.loss;
  config.initial_fill = options.fill;
  config.seed = options.experiment.seed;
  config.wire_transcode = options.wire_transcode;
  config.adaptive = options.adaptive;
  config.adaptive_alpha = options.adaptive_alpha;

  const auto run_once = [&] {
    ChurnSim sim(config);
    sim.play(script);
    sim.run_until(options.horizon);
    return sim.summary();
  };

  std::cout << "scenario: " << script.size() << " actions over "
            << options.horizon / sim_ms(1) << " ms, capacity "
            << config.capacity() << " (fill " << config.initial_fill
            << "), eps=" << config.loss << ", seed="
            << config.seed << (config.wire_transcode ? ", wire codec" : "");
  if (config.adaptive)
    std::cout << ", adaptive (alpha=" << config.adaptive_alpha << ")";
  std::cout << "\n" << script.to_string() << "\n";
  try {
    const auto summary = run_once();
    std::cout << summary.to_string() << "\n";
    if (options.repro_check) {
      const auto second = run_once();
      const bool identical = second == summary;
      std::cout << "repro-check: "
                << (identical ? "identical summaries" : "MISMATCH") << "\n";
      return identical ? 0 : 1;
    }
  } catch (const std::logic_error& e) {
    std::cerr << "invalid scenario or config: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

/// One parsed --shard-scenario entry: a script for every shard, or for one.
struct ShardScript {
  ScenarioScript script;
  std::size_t shard = 0;
  bool all = false;
};

/// Parses "--shard-scenario" specs: "demo"/"file" (all shards) or
/// "<idx>:demo|file" (one shard). Returns false after printing the reason.
bool parse_shard_scripts(const Options& options,
                         std::vector<ShardScript>& out) {
  for (const auto& spec : options.shard_scenarios) {
    ShardScript entry;
    std::string path = spec;
    const auto colon = spec.find(':');
    // "<digits>:rest" addresses one shard; anything else is a path (keeps
    // e.g. Windows-style paths or plain files with colons later in them
    // from being misread as shard indices).
    if (colon != std::string::npos && colon > 0 &&
        spec.find_first_not_of("0123456789") == colon) {
      entry.shard = std::strtoul(spec.substr(0, colon).c_str(), nullptr, 10);
      if (entry.shard >= options.shards) {
        std::cerr << "bad --shard-scenario '" << spec << "': shard index "
                  << entry.shard << " out of range (--shards "
                  << options.shards << ")\n";
        return false;
      }
      path = spec.substr(colon + 1);
    } else {
      entry.all = true;
    }
    if (!load_script(path, entry.script)) return false;
    out.push_back(std::move(entry));
  }
  return true;
}

int run_sharded(const Options& options) {
  std::vector<ShardScript> scripts;
  if (!parse_shard_scripts(options, scripts)) return 2;

  ShardedConfig config;
  config.shards = options.shards;
  // Same per-shard defaults as scenario mode: a=4, d=2, R=2 unless set.
  if (options.a_set) config.shard.a = options.experiment.a;
  if (options.d_set) config.shard.d = options.experiment.d;
  if (options.r_set) config.shard.r = options.experiment.r;
  config.shard.pd = options.experiment.pd;
  config.shard.fanout = options.experiment.fanout;
  config.shard.loss = options.experiment.loss;
  config.shard.initial_fill = options.fill;
  config.shard.seed = options.experiment.seed;
  config.shard.wire_transcode = options.wire_transcode;
  config.shard.adaptive = options.adaptive;
  config.shard.adaptive_alpha = options.adaptive_alpha;
  config.cross.publishers = options.cross_publishers;
  config.cross.span = options.cross_span;
  config.cross.events = options.cross_events;
  config.cross.spacing = options.cross_spacing;
  config.threads = options.threads;

  const auto run_once = [&](std::size_t threads) {
    ShardedConfig run_config = config;
    run_config.threads = threads;
    ShardedSim sim(run_config);
    for (const auto& entry : scripts) {
      if (entry.all) {
        sim.play_all(entry.script);
      } else {
        sim.play(entry.shard, entry.script);
      }
    }
    sim.run_until(options.horizon);
    return sim.summary();
  };

  std::cout << "sharded: " << config.shards << " shards x capacity "
            << config.shard.capacity() << " (fill "
            << config.shard.initial_fill << "), " << scripts.size()
            << " script(s), " << config.cross.publishers
            << " cross publisher(s) spanning " << config.cross.span
            << ", horizon " << options.horizon / sim_ms(1)
            << " ms, eps=" << config.shard.loss << ", seed="
            << config.shard.seed << ", threads=" << config.threads
            << (config.shard.wire_transcode ? ", wire codec" : "");
  if (config.shard.adaptive)
    std::cout << ", adaptive (alpha=" << config.shard.adaptive_alpha << ")";
  std::cout << "\n";
  try {
    const auto summary = run_once(config.threads);
    std::cout << summary.to_string() << "\n";
    if (options.repro_check) {
      // A threaded run is checked against the serial reference: one lane,
      // same epochs, inline index order. threads=1 degenerates to the old
      // same-config replay.
      const auto second = run_once(1);
      const bool identical = second == summary;
      std::cout << "repro-check: "
                << (identical ? "identical summaries (aggregate + per-shard)"
                              : "MISMATCH")
                << (config.threads != 1 ? " [threads vs serial]" : "")
                << "\n";
      return identical ? 0 : 1;
    }
  } catch (const std::logic_error& e) {
    std::cerr << "invalid scenario or config: " << e.what() << "\n";
    return 2;
  }
  return 0;
}

void print_analysis(const ExperimentConfig& e) {
  const auto result = analyze_tree(e.analysis_params());
  std::cout << "\nSec. 4 analysis:\n";
  Table t({"depth", "p_i", "m_i", "T_i", "E[s_Ti]", "r_i", "E[g_i]"});
  for (const auto& d : result.depths) {
    t.add_row({Table::integer(d.depth), Table::num(d.pi),
               Table::num(d.mi, 0), Table::num(d.rounds, 2),
               Table::num(d.expected_infected, 2), Table::num(d.ri),
               Table::num(d.expected_gi, 1)});
  }
  t.print(std::cout);
  std::cout << "total rounds (Eq. 13):   " << Table::num(result.total_rounds, 2)
            << "\nexpected infected:       "
            << Table::num(result.expected_infected, 1)
            << "\npredicted reliability:   "
            << Table::num(result.reliability) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  // --help wins over everything, including flag-combination errors: asking
  // for usage must always print it and exit 0.
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    if (flag == "--help" || flag == "-h") {
      print_usage();
      return 0;
    }
  }
  Options options;
  if (!parse_args(argc, argv, options)) return 2;
  if (options.shards > 0) return run_sharded(options);
  if (!options.scenario.empty()) return run_scenario(options);
  const auto& e = options.experiment;

  std::cout << "pmcast_sim: n = " << e.group_size() << " (a=" << e.a
            << ", d=" << e.d << "), R=" << e.r << ", F=" << e.fanout
            << ", pd=" << e.pd << ", eps=" << e.loss
            << ", tau=" << e.crash_fraction << ", algorithm="
            << options.algorithm << "\n";

  if (options.analysis_only) {
    print_analysis(e);
    return 0;
  }

  ExperimentResult result;
  if (options.algorithm == "pmcast") {
    result = run_pmcast_experiment(e);
  } else if (options.algorithm == "flooding") {
    result = run_flooding_experiment(e);
  } else {
    result = run_genuine_experiment(e, options.genuine_view);
  }

  std::cout << "\nsimulation (" << e.runs << " runs):\n";
  Table t({"metric", "mean", "ci95", "min", "max"});
  const auto row = [&](const char* name, const Summary& s, int precision) {
    t.add_row({name, Table::num(s.mean(), precision),
               Table::num(s.ci95_halfwidth(), precision),
               Table::num(s.min(), precision),
               Table::num(s.max(), precision)});
  };
  row("delivery", result.delivery, 4);
  row("false reception", result.false_reception, 4);
  row("rounds", result.rounds, 1);
  row("messages/process", result.messages_per_process, 2);
  row("interested fraction", result.interested_fraction, 3);
  t.print(std::cout);

  if (options.algorithm == "pmcast") print_analysis(e);
  return 0;
}

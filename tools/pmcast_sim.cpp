// pmcast_sim — command-line experiment driver.
//
// Runs pmcast (or a baseline) on a regular tree with the uniform-interest
// workload and prints delivery/reception/cost metrics next to the Sec. 4
// analysis prediction. Everything the figure benches sweep is exposed as a
// flag, so new parameter points can be explored without recompiling:
//
//   pmcast_sim --a 22 --d 3 --R 3 --F 2 --pd 0.5 --loss 0.05 --runs 20
//   pmcast_sim --algorithm flooding --a 12 --d 3 --pd 0.2
//   pmcast_sim --analysis-only --a 22 --d 3 --pd 0.1
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "analysis/tree_analysis.hpp"
#include "harness/experiment.hpp"
#include "harness/table.hpp"

namespace {

using namespace pmc;

struct Options {
  ExperimentConfig experiment;
  std::string algorithm = "pmcast";  // pmcast | flooding | genuine
  std::size_t genuine_view = 20;
  bool analysis_only = false;
  bool help = false;
};

void print_usage() {
  std::cout <<
      "pmcast_sim — probabilistic multicast experiment driver\n\n"
      "usage: pmcast_sim [flags]\n\n"
      "tree / workload:\n"
      "  --a N            subgroups per node (default 22)\n"
      "  --d N            tree depth, n = a^d (default 3)\n"
      "  --R N            delegates per subgroup (default 3)\n"
      "  --pd X           fraction of interested processes (default 0.5)\n"
      "  --clustered      per-leaf clustered interests instead of uniform\n"
      "environment:\n"
      "  --loss X         message loss probability eps (default 0.05)\n"
      "  --crash X        fraction crashing during a run (default 0)\n"
      "algorithm:\n"
      "  --algorithm S    pmcast | flooding | genuine (default pmcast)\n"
      "  --F N            gossip fanout (default 2)\n"
      "  --c X            Pittel constant (default 0)\n"
      "  --h N            tuning threshold, 0 = untuned (default 0)\n"
      "  --flood X        leaf-flood density threshold, >1 = off\n"
      "  --coarsen N      coarsen rows at depth <= N (default 0 = off)\n"
      "  --no-shortcut    disable the local-interest shortcut\n"
      "  --view N         genuine baseline partial-view size (default 20)\n"
      "measurement:\n"
      "  --runs N         independent runs (default 20)\n"
      "  --seed N         base seed (default 42)\n"
      "  --analysis-only  print only the Sec. 4 prediction (no simulation)\n";
}

bool parse_args(int argc, char** argv, Options& out) {
  auto& e = out.experiment;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << flag << "\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--help" || flag == "-h") out.help = true;
    else if (flag == "--a") e.a = std::strtoul(next(), nullptr, 10);
    else if (flag == "--d") e.d = std::strtoul(next(), nullptr, 10);
    else if (flag == "--R") e.r = std::strtoul(next(), nullptr, 10);
    else if (flag == "--F") e.fanout = std::strtoul(next(), nullptr, 10);
    else if (flag == "--pd") e.pd = std::strtod(next(), nullptr);
    else if (flag == "--loss") e.loss = std::strtod(next(), nullptr);
    else if (flag == "--crash")
      e.crash_fraction = std::strtod(next(), nullptr);
    else if (flag == "--c") e.pittel_c = std::strtod(next(), nullptr);
    else if (flag == "--h")
      e.tuning_threshold = std::strtoul(next(), nullptr, 10);
    else if (flag == "--flood")
      e.leaf_flood_density = std::strtod(next(), nullptr);
    else if (flag == "--coarsen")
      e.coarsen_depth_leq = std::strtoul(next(), nullptr, 10);
    else if (flag == "--no-shortcut") e.local_interest_shortcut = false;
    else if (flag == "--clustered") e.clustered = true;
    else if (flag == "--runs") e.runs = std::strtoul(next(), nullptr, 10);
    else if (flag == "--seed") e.seed = std::strtoull(next(), nullptr, 10);
    else if (flag == "--algorithm") out.algorithm = next();
    else if (flag == "--view")
      out.genuine_view = std::strtoul(next(), nullptr, 10);
    else if (flag == "--analysis-only") out.analysis_only = true;
    else {
      std::cerr << "unknown flag: " << flag << " (try --help)\n";
      return false;
    }
  }
  if (e.a < 1 || e.d < 1 || e.r < 1 || e.fanout < 1 || e.runs < 1 ||
      e.pd < 0.0 || e.pd > 1.0 || e.loss < 0.0 || e.loss >= 1.0 ||
      e.crash_fraction < 0.0 || e.crash_fraction >= 1.0) {
    std::cerr << "invalid parameter values (try --help)\n";
    return false;
  }
  if (out.algorithm != "pmcast" && out.algorithm != "flooding" &&
      out.algorithm != "genuine") {
    std::cerr << "unknown algorithm: " << out.algorithm << "\n";
    return false;
  }
  return true;
}

void print_analysis(const ExperimentConfig& e) {
  const auto result = analyze_tree(e.analysis_params());
  std::cout << "\nSec. 4 analysis:\n";
  Table t({"depth", "p_i", "m_i", "T_i", "E[s_Ti]", "r_i", "E[g_i]"});
  for (const auto& d : result.depths) {
    t.add_row({Table::integer(d.depth), Table::num(d.pi),
               Table::num(d.mi, 0), Table::num(d.rounds, 2),
               Table::num(d.expected_infected, 2), Table::num(d.ri),
               Table::num(d.expected_gi, 1)});
  }
  t.print(std::cout);
  std::cout << "total rounds (Eq. 13):   " << Table::num(result.total_rounds, 2)
            << "\nexpected infected:       "
            << Table::num(result.expected_infected, 1)
            << "\npredicted reliability:   "
            << Table::num(result.reliability) << "\n";
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  if (!parse_args(argc, argv, options)) return 2;
  if (options.help) {
    print_usage();
    return 0;
  }
  const auto& e = options.experiment;

  std::cout << "pmcast_sim: n = " << e.group_size() << " (a=" << e.a
            << ", d=" << e.d << "), R=" << e.r << ", F=" << e.fanout
            << ", pd=" << e.pd << ", eps=" << e.loss
            << ", tau=" << e.crash_fraction << ", algorithm="
            << options.algorithm << "\n";

  if (options.analysis_only) {
    print_analysis(e);
    return 0;
  }

  ExperimentResult result;
  if (options.algorithm == "pmcast") {
    result = run_pmcast_experiment(e);
  } else if (options.algorithm == "flooding") {
    result = run_flooding_experiment(e);
  } else {
    result = run_genuine_experiment(e, options.genuine_view);
  }

  std::cout << "\nsimulation (" << e.runs << " runs):\n";
  Table t({"metric", "mean", "ci95", "min", "max"});
  const auto row = [&](const char* name, const Summary& s, int precision) {
    t.add_row({name, Table::num(s.mean(), precision),
               Table::num(s.ci95_halfwidth(), precision),
               Table::num(s.min(), precision),
               Table::num(s.max(), precision)});
  };
  row("delivery", result.delivery, 4);
  row("false reception", result.false_reception, 4);
  row("rounds", result.rounds, 1);
  row("messages/process", result.messages_per_process, 2);
  row("interested fraction", result.interested_fraction, 3);
  t.print(std::cout);

  if (options.algorithm == "pmcast") print_analysis(e);
  return 0;
}

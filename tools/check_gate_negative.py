#!/usr/bin/env python3
"""Prove --gate-figures actually bites: seed regressions into a copy of a
fig bench JSON and require the gate to FAIL on each one.

Usage:
    check_gate_negative.py FIG_FILE

A gate that silently passes everything is worse than no gate — it reads
as coverage while enforcing nothing. This script is the gate's own
acceptance test: it takes a real (passing) fig4/fig6 --json dump, writes
tampered copies into a temp directory, runs check_bench_json.py
--gate-figures on each, and exits non-zero unless EVERY tampered copy is
rejected. Three seeded regressions, one per invariant class:

  * exactly-once broken: delivered = expected + 1 on a scenario row
    (a node delivered some event twice);
  * delivery collapse: delivered = expected // 2 (far below every
    scenario's floor — graceful degradation lost);
  * injector dead: net_dup = 0 and dup_suppressed = 0 on the dup row
    (the duplicate storm silently stopped firing).

CI runs this right after the positive gate on the committed snapshots,
so both directions of the gate are exercised on every push.
"""

import copy
import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
CHECKER = os.path.join(HERE, "check_bench_json.py")


def fail(msg):
    print(f"check_gate_negative: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def scenarios_table(doc, path):
    for t in doc["tables"]:
        if t.get("title") == "scenarios":
            return t
    fail(f"{path}: no 'scenarios' table to tamper with")


def col(table, name, path):
    try:
        return table["headers"].index(name)
    except ValueError:
        fail(f"{path}: 'scenarios' table has no {name!r} column")


def run_gate(path):
    """Returns the checker's exit code on --gate-figures PATH."""
    proc = subprocess.run(
        [sys.executable, CHECKER, "--gate-figures", path],
        stdout=subprocess.PIPE,
        stderr=subprocess.STDOUT,
        text=True,
    )
    return proc.returncode, proc.stdout


def main(argv):
    if len(argv) != 2:
        fail("usage: check_gate_negative.py FIG_FILE")
    src = argv[1]
    try:
        with open(src, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{src}: {e}")

    # The pristine file must pass — otherwise the negative results below
    # prove nothing (the gate might be failing for an unrelated reason).
    code, out = run_gate(src)
    if code != 0:
        fail(f"{src} does not pass the gate untampered:\n{out}")

    table = scenarios_table(doc, src)
    exp_col = col(table, "expected", src)
    del_col = col(table, "delivered", src)
    dup_col = col(table, "dup_suppressed", src)
    netdup_col = col(table, "net_dup", src)
    name_col = col(table, "scenario", src)

    def tamper_exactly_once(d):
        row = scenarios_table(d, src)["rows"][0]
        row[del_col] = str(int(float(row[exp_col])) + 1)

    def tamper_collapse(d):
        row = scenarios_table(d, src)["rows"][0]
        row[del_col] = str(int(float(row[exp_col])) // 2)

    def tamper_dead_injector(d):
        for row in scenarios_table(d, src)["rows"]:
            if str(row[name_col]) == "dup":
                row[netdup_col] = "0"
                row[dup_col] = "0"
                return
        fail(f"{src}: no 'dup' scenario row to tamper with")

    tampers = [
        ("exactly-once broken (delivered > expected)", tamper_exactly_once),
        ("delivery collapse (ratio ~0.5)", tamper_collapse),
        ("dead duplicate injector (net_dup = 0)", tamper_dead_injector),
    ]

    with tempfile.TemporaryDirectory() as tmp:
        for label, tamper in tampers:
            tampered = copy.deepcopy(doc)
            tamper(tampered)
            path = os.path.join(tmp, "tampered.json")
            with open(path, "w", encoding="utf-8") as f:
                json.dump(tampered, f)
            code, out = run_gate(path)
            if code == 0:
                fail(f"gate PASSED a seeded regression [{label}] — "
                     f"--gate-figures is not enforcing anything")
            print(f"check_gate_negative: OK: gate rejected [{label}]")
    print(f"check_gate_negative: OK: {src} — all seeded regressions caught")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

#!/usr/bin/env python3
"""Zero-warning clang-tidy gate over the CMake compilation database.

Runs the repo's curated .clang-tidy profile (see that file for the
rationale) on every translation unit under src/, bench/, examples/, and
tools/, in parallel, and fails on ANY diagnostic — WarningsAsErrors is
'*' in the profile, and this runner additionally greps the output so a
stray warning can't slip through a clang-tidy exit-code quirk.

Usage:
    cmake -B build -S .            # CMAKE_EXPORT_COMPILE_COMMANDS is ON
    python3 tools/run_clang_tidy.py [--build-dir build] [--jobs N]
                                    [files...]

Exit status: 0 clean, 1 diagnostics found, 2 usage error,
77 when clang-tidy is not installed (ctest's SKIP_RETURN_CODE, so local
checkouts without LLVM skip instead of failing; the CI static-analysis
job installs clang-tidy and hard-gates).
"""

from __future__ import annotations

import argparse
import concurrent.futures
import json
import os
import re
import shutil
import subprocess
import sys
from pathlib import Path

SCOPE_RE = re.compile(r"(^|/)(src|bench|examples|tools)/")
DIAG_RE = re.compile(r":\d+:\d+:\s+(warning|error):")
SKIP_RC = 77


def find_clang_tidy() -> str | None:
    candidates = [os.environ.get("CLANG_TIDY"), "clang-tidy"]
    candidates += [f"clang-tidy-{v}" for v in range(21, 13, -1)]
    for c in candidates:
        if c and shutil.which(c):
            return c
    return None


def scoped_tus(build_dir: Path, root: Path) -> list[str]:
    db_path = build_dir / "compile_commands.json"
    if not db_path.exists():
        print(f"run_clang_tidy: {db_path} not found — configure with "
              "`cmake -B build -S .` first", file=sys.stderr)
        raise SystemExit(2)
    seen = set()
    out = []
    for entry in json.loads(db_path.read_text()):
        f = str(Path(entry["directory"], entry["file"]).resolve())
        try:
            rel = Path(f).relative_to(root.resolve()).as_posix()
        except ValueError:
            continue  # generated/external TU (e.g. fetched gtest)
        if SCOPE_RE.search(rel) and f not in seen:
            seen.add(f)
            out.append(f)
    return sorted(out)


def main() -> int:
    ap = argparse.ArgumentParser()
    ap.add_argument("files", nargs="*",
                    help="TUs to check (default: every in-scope TU in the "
                    "compilation database)")
    ap.add_argument("--build-dir", default="build")
    ap.add_argument("--jobs", type=int, default=os.cpu_count() or 2)
    args = ap.parse_args()

    root = Path(__file__).resolve().parent.parent
    build_dir = Path(args.build_dir)
    if not build_dir.is_absolute():
        build_dir = root / build_dir

    tidy = find_clang_tidy()
    if tidy is None:
        print("run_clang_tidy: clang-tidy not installed — skipping "
              "(install clang-tidy or set CLANG_TIDY to gate locally)")
        return SKIP_RC

    files = args.files or scoped_tus(build_dir, root)
    if not files:
        print("run_clang_tidy: no in-scope translation units", file=sys.stderr)
        return 2

    failures = 0

    def check(path: str) -> tuple[str, int, str]:
        proc = subprocess.run(
            [tidy, "-p", str(build_dir), "--quiet", path],
            capture_output=True, text=True)
        return path, proc.returncode, proc.stdout + proc.stderr

    with concurrent.futures.ThreadPoolExecutor(max_workers=args.jobs) as ex:
        for path, rc, output in ex.map(check, files):
            diags = [l for l in output.splitlines() if DIAG_RE.search(l)]
            if rc != 0 or diags:
                failures += 1
                rel = Path(path).resolve()
                try:
                    rel = rel.relative_to(root.resolve())
                except ValueError:
                    pass
                print(f"== {rel} (exit {rc})")
                print(output.rstrip())

    total = len(files)
    if failures:
        print(f"run_clang_tidy: FAIL — diagnostics in {failures}/{total} "
              "translation unit(s)")
        return 1
    print(f"run_clang_tidy: OK — {total} translation unit(s) clean "
          f"({tidy})")
    return 0


if __name__ == "__main__":
    sys.exit(main())

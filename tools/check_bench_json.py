#!/usr/bin/env python3
"""Validate pmcast-bench-v1 JSON files and gate scheduler performance.

Usage:
    check_bench_json.py FILE [FILE...]
        Schema-check every file (exit 1 on the first violation).

    check_bench_json.py --gate-scheduler MICRO_FILE [FILE...]
        Additionally require MICRO_FILE (a micro_benchmarks --json dump) to
        show the calendar-queue scheduler at or above the PR-1 performance
        envelope at the 131072-event point.

    check_bench_json.py --gate-memory SCALE_FILE [FILE...]
        Additionally require SCALE_FILE (a table_scale --json dump) to show
        bytes-per-process at the 100,000-process sharded row at or below
        the post-interning envelope. Skips with a note when the run was
        capped below 100k processes (the row is absent). The serial
        (threads=1) gate row must carry a NUMERIC B/proc: "n/a" there means
        the RSS high-water predates the row's boot — a polluted snapshot —
        and fails the gate.

    check_bench_json.py --gate-parallel SCALE_FILE [FILE...]
        Additionally require the threaded 100,000-process rows in
        SCALE_FILE to be counter-identical to the serial row (sched ops,
        msgs sent, delivered — the barrier engine's byte-identity claim,
        checked at EVERY thread count present), and the 8-thread row to run
        at least 2x faster than the serial row in wall-clock. The speedup
        half is skipped with a note when the recording host had fewer than
        8 cores (the cores column) — the identity half always applies.

    check_bench_json.py --gate-filter FILTER_FILE [FILE...]
        Additionally require FILTER_FILE (a table_filter --json dump) to
        show the predicate index returning the same matched count as the
        naive scan on EVERY row (the oracle claim), and to spend at most
        a tenth of the naive scan's work at the 1,000,000-subscription
        row: naive evals / index work >= 10. Skips the ratio check with a
        note when the run was capped below 10^6 subscriptions (smoke) —
        the matched-count identity always applies.

    check_bench_json.py --gate-figures FIG_FILE [--gate-figures FIG_FILE2]
        Additionally require every FIG_FILE (a fig4_delivery /
        fig6_scalability --json dump; the flag repeats) to carry a
        'scenarios' table whose adversarial rows hold the fault-injection
        invariants: delivered <= expected on every row (exactly-once,
        also under duplicate storms), stable-phase delivery ratio at or
        above a per-scenario floor, the calm control row free of injector
        traffic, and the duplicate-storm row showing that the injector
        actually fired (net_dup > 0) and was absorbed (dup_suppressed >
        0). The suite must include the calm control plus at least three
        distinct adversarial scenarios.

The scheduler gate is deliberately *counter-based*, not wall-clock-based:
CI machines differ wildly in absolute speed, so the gate compares the
calendar queue against the legacy tombstone scheduler measured in the same
process on the same machine. PR 1's indexed heap recorded a 1.38x ratio
over the legacy scheduler (1.84M vs 1.33M sched-ops/s at 131k events);
regressing below that ratio would mean the calendar queue lost PR 1's win,
never mind PR 5's. The required ratio is 2.0 — comfortably above PR 1's
1.38, comfortably below the ~4-5x the calendar queue actually shows — so
the gate trips on real regressions, not scheduler-neutral machine noise.

The filter gate is counter-based like the scheduler gate: `naive evals`
counts Predicate::match calls in the naive scan (subscriptions x events)
and `index work` counts the index's touched units (lane searches, atom
visits, candidate checks, fallback evals, matches) over the same stream.
Both are deterministic functions of the workload, so the 10x bar measures
the data structure, not the machine. The committed BENCH_filter.json
records ~20x at every row — the gate trips on algorithmic regressions
(a lane degenerating to linear credit, the scan bucket swallowing the
workload), not on noise.

The memory gate is machine-independent for the same reason: bytes per
process (peak RSS / live processes) is a property of the data layout, not
of machine speed. The pre-interning engine sat at 14,626 B/proc at 100k
(1394.8 MB RSS); the intern-table + struct-of-arrays layout must keep the
row at or below half of that, 7312 B/proc, with headroom above the ~3-4 KB
it actually measures so allocator and libc variance across CI images does
not trip it.
"""

import json
import sys

SCHEMA = "pmcast-bench-v1"
GATE_POINT = "131072"
GATE_NUMERATOR = f"BM_SchedulerCalendarQueue/{GATE_POINT}"
GATE_DENOMINATOR = f"BM_SchedulerLegacyTombstones/{GATE_POINT}"
GATE_MIN_RATIO = 2.0
MEM_GATE_PROCESSES = 100_000
MEM_GATE_MAX_BYTES_PER_PROC = 7312.0  # half of the pre-interning 14626
PAR_GATE_PROCESSES = 100_000
PAR_GATE_THREADS = 8
PAR_GATE_MIN_SPEEDUP = 2.0
PAR_GATE_COUNTERS = ("sched ops", "msgs sent", "delivered")
FILTER_GATE_SUBS = 1_000_000
FILTER_GATE_MIN_RATIO = 10.0
# Stable-phase delivery-ratio floors per scenario. The committed
# snapshots are single deterministic runs (fixed seed), so the measured
# ratios are exact; the floors sit ~3-5 points below them so the gate
# trips on real robustness regressions (a fault row collapsing) rather
# than on a benign re-tuning of the dissemination stack. Observed values
# across the committed fig4/fig6 rows: calm 0.94-0.99, wan 0.93-0.99,
# flap 0.93-0.96, asym 0.94-0.99, rack 0.95-0.99, dup 0.93-0.98.
FIG_GATE_FLOORS = {
    "calm": 0.90,
    "wan": 0.88,
    "flap": 0.86,
    "asym": 0.88,
    "rack": 0.88,
    "dup": 0.88,
}
FIG_GATE_DEFAULT_FLOOR = 0.80  # scenarios added later start here
FIG_GATE_MIN_ADVERSARIAL = 3


def fail(msg):
    print(f"check_bench_json: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def load_and_validate(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        fail(f"{path}: {e}")
    if doc.get("schema") != SCHEMA:
        fail(f"{path}: schema is {doc.get('schema')!r}, want {SCHEMA!r}")
    if not isinstance(doc.get("binary"), str) or not doc["binary"]:
        fail(f"{path}: missing/empty 'binary'")
    tables = doc.get("tables")
    if not isinstance(tables, list) or not tables:
        fail(f"{path}: 'tables' must be a non-empty list")
    for t in tables:
        title = t.get("title")
        headers = t.get("headers")
        rows = t.get("rows")
        if not isinstance(title, str) or not title:
            fail(f"{path}: table without a title")
        if not isinstance(headers, list) or not headers:
            fail(f"{path}: table {title!r} has no headers")
        if not isinstance(rows, list) or not rows:
            fail(f"{path}: table {title!r} has no rows")
        for row in rows:
            if not isinstance(row, list) or len(row) != len(headers):
                fail(
                    f"{path}: table {title!r} row width {len(row)} != "
                    f"{len(headers)} headers"
                )
            for cell in row:
                if not isinstance(cell, (int, float, str)):
                    fail(f"{path}: table {title!r} has a non-scalar cell")
    print(f"check_bench_json: OK: {path} ({doc['binary']}, "
          f"{len(tables)} table(s))")
    return doc


def micro_items_per_second(doc, path, name):
    for t in doc["tables"]:
        try:
            name_col = t["headers"].index("name")
            ips_col = t["headers"].index("items_per_second")
        except ValueError:
            continue
        for row in t["rows"]:
            if row[name_col] == name:
                value = row[ips_col]
                if not isinstance(value, (int, float)) or value <= 0:
                    fail(f"{path}: {name} items_per_second is {value!r}")
                return float(value)
    fail(f"{path}: benchmark {name!r} not found (run micro_benchmarks with "
         f"--benchmark_filter=Scheduler --json {path})")


def gate_memory(doc, path):
    """Bytes/process at the 100k sharded row must stay in the SoA envelope."""
    for t in doc["tables"]:
        try:
            procs_col = t["headers"].index("processes")
            bpp_col = t["headers"].index("B/proc")
        except ValueError:
            continue
        try:
            threads_col = t["headers"].index("threads")
        except ValueError:
            threads_col = None  # pre-threads snapshots: every row is serial
        for row in t["rows"]:
            if float(row[procs_col]) != MEM_GATE_PROCESSES:
                continue
            if threads_col is not None and float(row[threads_col]) != 1:
                # Threaded reruns of the same deployment sit inside the
                # serial row's high-water mark; only the serial row carries
                # the row's own memory figure.
                continue
            bpp = row[bpp_col]
            if not isinstance(bpp, (int, float)):
                fail(
                    f"{path}: B/proc at the {MEM_GATE_PROCESSES}-process "
                    f"serial row is {bpp!r} — the RSS high-water mark "
                    f"predates the row's boot, so the snapshot is polluted "
                    f"by an earlier row; regenerate with a per-section run "
                    f"(table_scale --section B)"
                )
            bpp = float(bpp)
            print(
                f"check_bench_json: memory @{MEM_GATE_PROCESSES} processes: "
                f"{bpp:.1f} B/proc "
                f"(required <= {MEM_GATE_MAX_BYTES_PER_PROC:.0f})"
            )
            if bpp > MEM_GATE_MAX_BYTES_PER_PROC:
                fail(
                    f"{bpp:.1f} B/proc > {MEM_GATE_MAX_BYTES_PER_PROC:.0f}: "
                    f"per-process memory regressed above the intern/SoA "
                    f"envelope"
                )
            return
    print(
        f"check_bench_json: NOTE: no {MEM_GATE_PROCESSES}-process row with "
        f"a B/proc column in {path} (run capped below 100k?) — memory gate "
        f"skipped"
    )


def gate_parallel(doc, path):
    """Threaded 100k rows: counter-identical to serial, and 8 threads at
    least 2x faster in wall-clock (skipped when the host had < 8 cores)."""
    for t in doc["tables"]:
        headers = t["headers"]
        try:
            procs_col = headers.index("processes")
            threads_col = headers.index("threads")
            cores_col = headers.index("cores")
            run_col = headers.index("run ms")
            counter_cols = [headers.index(c) for c in PAR_GATE_COUNTERS]
        except ValueError:
            continue
        rows = [
            r for r in t["rows"]
            if float(r[procs_col]) == PAR_GATE_PROCESSES
        ]
        if not rows:
            continue
        serial = [r for r in rows if float(r[threads_col]) == 1]
        threaded = [r for r in rows if float(r[threads_col]) != 1]
        if not serial:
            fail(f"{path}: no serial {PAR_GATE_PROCESSES}-process row to "
                 f"compare the threaded rows against")
        if not threaded:
            fail(f"{path}: no threaded {PAR_GATE_PROCESSES}-process rows "
                 f"(rerun table_scale --section B with the parallel rows)")
        base = serial[0]
        # Identity half: EVERY threaded row must reproduce the serial
        # counters bit for bit — this is the determinism contract, and it
        # holds on any machine, so it is never skipped.
        for row in threaded:
            for col, name in zip(counter_cols, PAR_GATE_COUNTERS):
                if row[col] != base[col]:
                    fail(
                        f"{path}: '{name}' differs between threads=1 "
                        f"({base[col]!r}) and threads="
                        f"{row[threads_col]!r} ({row[col]!r}) at "
                        f"{PAR_GATE_PROCESSES} processes — the parallel "
                        f"engine changed observable behavior"
                    )
        print(
            f"check_bench_json: parallel @{PAR_GATE_PROCESSES} processes: "
            f"{len(threaded)} threaded row(s) counter-identical to serial"
        )
        # Speedup half: wall-clock is machine-dependent, so it only binds
        # when the recording host actually had the lanes.
        eight = [
            r for r in threaded
            if float(r[threads_col]) == PAR_GATE_THREADS
        ]
        if not eight:
            fail(f"{path}: no threads={PAR_GATE_THREADS} row at "
                 f"{PAR_GATE_PROCESSES} processes")
        row8 = eight[0]
        cores = float(row8[cores_col])
        if cores < PAR_GATE_THREADS:
            print(
                f"check_bench_json: NOTE: recorded on a {cores:.0f}-core "
                f"host (< {PAR_GATE_THREADS}) — the "
                f">={PAR_GATE_MIN_SPEEDUP}x speedup check is skipped; "
                f"counter identity was still enforced"
            )
            return
        speedup = float(base[run_col]) / float(row8[run_col])
        print(
            f"check_bench_json: parallel speedup @{PAR_GATE_PROCESSES}: "
            f"{float(base[run_col]):.1f} ms serial / "
            f"{float(row8[run_col]):.1f} ms at {PAR_GATE_THREADS} threads "
            f"= {speedup:.2f}x (required >= {PAR_GATE_MIN_SPEEDUP})"
        )
        if speedup < PAR_GATE_MIN_SPEEDUP:
            fail(
                f"{speedup:.2f}x < {PAR_GATE_MIN_SPEEDUP}x: the worker-pool "
                f"engine lost its wall-clock win at "
                f"{PAR_GATE_THREADS} threads"
            )
        return
    print(
        f"check_bench_json: NOTE: no {PAR_GATE_PROCESSES}-process rows with "
        f"threads/cores columns in {path} (run capped below 100k?) — "
        f"parallel gate skipped"
    )


def gate_filter(doc, path):
    """Index matched counts must equal the naive scan's on every row, and
    the index must do <= a tenth of the naive work at the 10^6 row."""
    for t in doc["tables"]:
        headers = t["headers"]
        try:
            subs_col = headers.index("subs")
            evals_col = headers.index("naive evals")
            work_col = headers.index("index work")
            mn_col = headers.index("matched naive")
            mi_col = headers.index("matched index")
        except ValueError:
            continue
        # Oracle half: the index and the naive scan must agree on every
        # row, at every scale — machine-independent, never skipped. (The
        # bench itself already compares per-event id sets and hard-fails;
        # this re-checks the committed snapshot was produced by a passing
        # run, not hand-edited or truncated.)
        for row in t["rows"]:
            if row[mn_col] != row[mi_col]:
                fail(
                    f"{path}: matched naive ({row[mn_col]!r}) != matched "
                    f"index ({row[mi_col]!r}) at subs={row[subs_col]!r} — "
                    f"the predicate index diverged from the "
                    f"Predicate::match oracle"
                )
        print(
            f"check_bench_json: filter oracle: index matched counts equal "
            f"naive on all {len(t['rows'])} row(s)"
        )
        # Work half: counter-based, so machine-independent too, but it
        # needs the full-size row; smoke runs cap the axis and skip it.
        big = [
            r for r in t["rows"]
            if float(r[subs_col]) >= FILTER_GATE_SUBS
        ]
        if not big:
            print(
                f"check_bench_json: NOTE: no row with subs >= "
                f"{FILTER_GATE_SUBS} in {path} (run capped for smoke?) — "
                f"filter work-ratio gate skipped"
            )
            return
        row = big[0]
        evals = float(row[evals_col])
        work = float(row[work_col])
        if work <= 0:
            fail(f"{path}: index work is {row[work_col]!r} at the "
                 f"{FILTER_GATE_SUBS}-subscription row")
        ratio = evals / work
        print(
            f"check_bench_json: filter @{FILTER_GATE_SUBS} subs: "
            f"{evals:.0f} naive evals / {work:.0f} index work = "
            f"{ratio:.1f}x (required >= {FILTER_GATE_MIN_RATIO:.0f})"
        )
        if ratio < FILTER_GATE_MIN_RATIO:
            fail(
                f"naive/index work ratio {ratio:.1f} < "
                f"{FILTER_GATE_MIN_RATIO:.0f}: the predicate index lost "
                f"its sublinear envelope at {FILTER_GATE_SUBS} "
                f"subscriptions"
            )
        return
    fail(f"{path}: no table with subs/naive evals/index work/matched "
         f"columns (is this a table_filter --json dump?)")


def gate_figures(doc, path):
    """Adversarial scenario rows: exactly-once + delivery floors + the
    injector audit counters. Everything here is a deterministic event
    counter (fixed-seed single runs), so the gate is machine-independent
    and never skipped."""
    for t in doc["tables"]:
        if t.get("title") != "scenarios":
            continue
        headers = t["headers"]
        try:
            name_col = headers.index("scenario")
            exp_col = headers.index("expected")
            del_col = headers.index("delivered")
            dup_col = headers.index("dup_suppressed")
            netdup_col = headers.index("net_dup")
            reord_col = headers.index("net_reorder")
        except ValueError as e:
            fail(f"{path}: 'scenarios' table is missing a column: {e}")
        names = set()
        worst = {}
        for row in t["rows"]:
            name = str(row[name_col])
            names.add(name)
            expected = float(row[exp_col])
            delivered = float(row[del_col])
            if expected <= 0:
                fail(f"{path}: scenario {name!r} expected {expected:.0f} "
                     f"deliveries — the publish burst never matched a "
                     f"live process")
            # Exactly-once: duplicate storms and reordering may delay or
            # drop, but a process must never deliver an event twice.
            if delivered > expected:
                fail(
                    f"{path}: scenario {name!r} delivered {delivered:.0f} "
                    f"> expected {expected:.0f} — an event was delivered "
                    f"more than once (duplicate suppression broke)"
                )
            ratio = delivered / expected
            worst[name] = min(worst.get(name, 1.0), ratio)
            floor = FIG_GATE_FLOORS.get(name, FIG_GATE_DEFAULT_FLOOR)
            if ratio < floor:
                fail(
                    f"{path}: scenario {name!r} delivery ratio "
                    f"{ratio:.4f} < floor {floor} — the stack lost its "
                    f"graceful-degradation envelope under this fault"
                )
            if name == "calm" and (float(row[netdup_col]) != 0
                                   or float(row[reord_col]) != 0):
                fail(
                    f"{path}: calm row shows injector traffic (net_dup="
                    f"{row[netdup_col]!r}, net_reorder={row[reord_col]!r}) "
                    f"— injectors must stay off unless scripted"
                )
            if name == "dup":
                if float(row[netdup_col]) <= 0:
                    fail(f"{path}: dup row has net_dup {row[netdup_col]!r} "
                         f"— the duplication injector never fired")
                if float(row[dup_col]) <= 0:
                    fail(f"{path}: dup row has dup_suppressed "
                         f"{row[dup_col]!r} — no duplicate was absorbed")
        if "calm" not in names:
            fail(f"{path}: 'scenarios' table has no calm control row")
        adversarial = names - {"calm"}
        if len(adversarial) < FIG_GATE_MIN_ADVERSARIAL:
            fail(
                f"{path}: only {len(adversarial)} adversarial scenario(s) "
                f"({sorted(adversarial)}) — need >= "
                f"{FIG_GATE_MIN_ADVERSARIAL} besides calm"
            )
        summary = ", ".join(
            f"{n}={worst[n]:.4f}" for n in sorted(worst))
        print(
            f"check_bench_json: figures {path}: {len(t['rows'])} scenario "
            f"row(s), worst ratios [{summary}] — exactly-once and floors "
            f"hold"
        )
        return
    fail(f"{path}: no 'scenarios' table (run the fig bench with --json; "
         f"--scenarios-only is enough)")


def main(argv):
    args = argv[1:]
    gate_file = None
    mem_file = None
    par_file = None
    filter_file = None
    figure_files = []  # --gate-figures repeats: one per fig bench
    files = []
    i = 0
    while i < len(args):
        if args[i] in ("--gate-scheduler", "--gate-memory",
                       "--gate-parallel", "--gate-filter",
                       "--gate-figures"):
            if i + 1 >= len(args):
                fail(f"{args[i]} needs a JSON file")
            if args[i] == "--gate-scheduler":
                gate_file = args[i + 1]
            elif args[i] == "--gate-memory":
                mem_file = args[i + 1]
            elif args[i] == "--gate-filter":
                filter_file = args[i + 1]
            elif args[i] == "--gate-figures":
                figure_files.append(args[i + 1])
            else:
                par_file = args[i + 1]
            files.append(args[i + 1])  # gated files are schema-checked too
            i += 2
        else:
            files.append(args[i])
            i += 1
    files = list(dict.fromkeys(files))  # dedup, keep order
    if not files:
        fail("no files given")

    docs = {path: load_and_validate(path) for path in files}

    if gate_file is not None:
        doc = docs[gate_file]
        calendar = micro_items_per_second(doc, gate_file, GATE_NUMERATOR)
        legacy = micro_items_per_second(doc, gate_file, GATE_DENOMINATOR)
        ratio = calendar / legacy
        print(
            f"check_bench_json: scheduler @{GATE_POINT} events: "
            f"calendar {calendar / 1e6:.2f}M/s, legacy {legacy / 1e6:.2f}M/s, "
            f"ratio {ratio:.2f} (required >= {GATE_MIN_RATIO})"
        )
        if ratio < GATE_MIN_RATIO:
            fail(
                f"calendar/legacy ratio {ratio:.2f} < {GATE_MIN_RATIO}: "
                f"the scheduler regressed below the PR-1 envelope"
            )

    if mem_file is not None:
        gate_memory(docs[mem_file], mem_file)

    if par_file is not None:
        gate_parallel(docs[par_file], par_file)

    if filter_file is not None:
        gate_filter(docs[filter_file], filter_file)

    for path in figure_files:
        gate_figures(docs[path], path)
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))

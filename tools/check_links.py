#!/usr/bin/env python3
"""Fail on broken relative links and heading anchors in Markdown files.

Scans every *.md under the given root (default: the repo root containing
this script), extracts inline links and images ``[text](target)``, and
checks that every relative target resolves to an existing file or
directory. Anchors are validated too: a pure in-page ``#anchor`` must
match a heading in the same file, and the ``#anchor`` half of a
``path#anchor`` target must match a heading in the linked Markdown file
(GitHub slug rules: lowercase, punctuation stripped, spaces to hyphens,
``-N`` suffixes for duplicates). External links (http/https/mailto) are
skipped. Registered as the ``docs_link_check`` ctest and run by the
docs-and-examples CI job, so documentation cross-references cannot rot
silently.
"""

import re
import sys
from pathlib import Path

# Inline link or image: [text](target) / ![alt](target). Targets with
# spaces or nested parens are not used in this repo; keep the regex simple.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$")
SKIP_PREFIXES = ("http://", "https://", "mailto:")
SKIP_DIRS = {".git", "build", ".cache"}


def slugify(heading: str) -> str:
    """GitHub-style anchor slug for a heading line's text."""
    text = re.sub(r"`([^`]*)`", r"\1", heading)          # inline code
    text = re.sub(r"!?\[([^\]]*)\]\([^)]*\)", r"\1", text)  # links/images
    text = text.strip().lower()
    text = re.sub(r"[^\w\- ]", "", text)
    return text.replace(" ", "-")


def heading_slugs(md: Path):
    """All anchor slugs defined in *md*, with GitHub duplicate suffixes."""
    slugs = set()
    counts = {}
    in_fence = False
    for line in md.read_text(encoding="utf-8", errors="replace").splitlines():
        if line.lstrip().startswith(("```", "~~~")):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        m = HEADING_RE.match(line)
        if not m:
            continue
        slug = slugify(m.group(1))
        n = counts.get(slug, 0)
        counts[slug] = n + 1
        slugs.add(slug if n == 0 else f"{slug}-{n}")
    return slugs


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(md: Path, root: Path, slug_cache: dict):
    def slugs_of(path: Path):
        key = str(path)
        if key not in slug_cache:
            slug_cache[key] = heading_slugs(path)
        return slug_cache[key]

    broken = []
    text = md.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part, _, anchor = target.partition("#")
            resolved = (md.parent / path_part if path_part else md).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
                continue
            if root.resolve() not in resolved.parents and resolved != root.resolve():
                broken.append((lineno, f"{target} (escapes the repository)"))
                continue
            if anchor and resolved.suffix == ".md":
                if anchor.lower() not in slugs_of(resolved):
                    broken.append((lineno, f"{target} (no such heading)"))
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    if not root.is_dir():
        print(f"check_links: not a directory: {root}", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    slug_cache = {}
    for md in iter_markdown(root):
        checked += 1
        for lineno, target in check_file(md, root, slug_cache):
            print(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"check_links: {failures} broken link(s) in {checked} file(s)")
        return 1
    print(f"check_links: OK ({checked} markdown file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#!/usr/bin/env python3
"""Fail on broken relative links in the repository's Markdown files.

Scans every *.md under the given root (default: the repo root containing
this script), extracts inline links and images ``[text](target)``, and
checks that every relative target resolves to an existing file or
directory. External links (http/https/mailto) and pure in-page anchors
(#...) are skipped; a ``path#anchor`` target is checked for the path part
only. Registered as the ``docs_link_check`` ctest and run by the
docs-and-examples CI job, so documentation cross-references cannot rot
silently.
"""

import re
import sys
from pathlib import Path

# Inline link or image: [text](target) / ![alt](target). Targets with
# spaces or nested parens are not used in this repo; keep the regex simple.
LINK_RE = re.compile(r"!?\[[^\]]*\]\(([^)\s]+)\)")
SKIP_PREFIXES = ("http://", "https://", "mailto:", "#")
SKIP_DIRS = {".git", "build", ".cache"}


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if not any(part in SKIP_DIRS for part in path.parts):
            yield path


def check_file(md: Path, root: Path):
    broken = []
    text = md.read_text(encoding="utf-8", errors="replace")
    for lineno, line in enumerate(text.splitlines(), start=1):
        for match in LINK_RE.finditer(line):
            target = match.group(1)
            if target.startswith(SKIP_PREFIXES):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (md.parent / path_part).resolve()
            if not resolved.exists():
                broken.append((lineno, target))
            elif root.resolve() not in resolved.parents and resolved != root.resolve():
                broken.append((lineno, f"{target} (escapes the repository)"))
    return broken


def main() -> int:
    root = Path(sys.argv[1]) if len(sys.argv) > 1 else Path(__file__).parent.parent
    if not root.is_dir():
        print(f"check_links: not a directory: {root}", file=sys.stderr)
        return 2
    failures = 0
    checked = 0
    for md in iter_markdown(root):
        checked += 1
        for lineno, target in check_file(md, root):
            print(f"{md.relative_to(root)}:{lineno}: broken link -> {target}")
            failures += 1
    if failures:
        print(f"check_links: {failures} broken link(s) in {checked} file(s)")
        return 1
    print(f"check_links: OK ({checked} markdown file(s))")
    return 0


if __name__ == "__main__":
    sys.exit(main())

#include "common/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmc {
namespace {

TEST(Accumulator, EmptyIsZero) {
  Accumulator a;
  EXPECT_EQ(a.count(), 0u);
  EXPECT_DOUBLE_EQ(a.mean(), 0.0);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.stderr_mean(), 0.0);
}

TEST(Accumulator, SingleSample) {
  Accumulator a;
  a.add(4.5);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean(), 4.5);
  EXPECT_DOUBLE_EQ(a.variance(), 0.0);
  EXPECT_DOUBLE_EQ(a.min(), 4.5);
  EXPECT_DOUBLE_EQ(a.max(), 4.5);
}

TEST(Accumulator, MeanAndVarianceMatchClosedForm) {
  Accumulator a;
  for (const double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) a.add(x);
  EXPECT_DOUBLE_EQ(a.mean(), 5.0);
  // Sample variance of the classic data set: 32/7.
  EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(Accumulator, MinMaxTracked) {
  Accumulator a;
  a.add(3.0);
  a.add(-1.0);
  a.add(10.0);
  EXPECT_DOUBLE_EQ(a.min(), -1.0);
  EXPECT_DOUBLE_EQ(a.max(), 10.0);
}

TEST(Accumulator, Ci95ShrinksWithSamples) {
  Accumulator small, large;
  for (int i = 0; i < 10; ++i) small.add(i % 2);
  for (int i = 0; i < 1000; ++i) large.add(i % 2);
  EXPECT_GT(small.ci95_halfwidth(), large.ci95_halfwidth());
}

TEST(Summary, QuantilesExact) {
  Summary s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.quantile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 100.0);
  EXPECT_NEAR(s.median(), 50.5, 1e-12);
  EXPECT_NEAR(s.quantile(0.25), 25.75, 1e-12);
}

TEST(Summary, QuantileOnEmptyIsZero) {
  Summary s;
  EXPECT_DOUBLE_EQ(s.quantile(0.5), 0.0);
}

TEST(Summary, AddAfterQuantileStillCorrect) {
  Summary s;
  s.add(3.0);
  s.add(1.0);
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  s.add(2.0);  // triggers re-sort on the next quantile call
  EXPECT_DOUBLE_EQ(s.median(), 2.0);
  EXPECT_DOUBLE_EQ(s.quantile(1.0), 3.0);
}

TEST(Summary, MirrorsAccumulatorMoments) {
  Summary s;
  Accumulator a;
  for (const double x : {1.0, 2.0, 3.5, 9.0}) {
    s.add(x);
    a.add(x);
  }
  EXPECT_DOUBLE_EQ(s.mean(), a.mean());
  EXPECT_DOUBLE_EQ(s.stddev(), a.stddev());
  EXPECT_DOUBLE_EQ(s.min(), a.min());
  EXPECT_DOUBLE_EQ(s.max(), a.max());
}

TEST(Summary, QuantileOutOfRangeThrows) {
  Summary s;
  s.add(1.0);
  EXPECT_THROW(s.quantile(-0.1), std::logic_error);
  EXPECT_THROW(s.quantile(1.1), std::logic_error);
}

}  // namespace
}  // namespace pmc

// Failure-injection suites: partitions, blackouts, targeted delegate
// wipeouts, and regressions for scheduler/timer interactions under
// cancellation — the failure modes a gossip protocol must degrade
// gracefully under (bounded lifetime, no livelock, no false delivery).
#include <gtest/gtest.h>

#include "cluster_helpers.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

TEST(FailureInjection, PartitionedSubtreeMissesEventOthersUnaffected) {
  // Cut subtree 2 off from everyone else for the whole run. pmcast has no
  // retransmission once an event's rounds expire, so subtree-2 processes
  // miss the event while the rest of the group delivers normally.
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 7);
  const auto subtree_of = [&](ProcessId pid) {
    return c.members[pid].address.component(0);
  };
  c.runtime->network().set_link_filter(
      [&](ProcessId from, ProcessId to) {
        return (subtree_of(from) == 2) == (subtree_of(to) == 2);
      });
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);  // publisher in subtree 0
  c.runtime->run_until_idle();

  std::size_t cut_received = 0, rest_delivered = 0, rest_total = 0;
  for (const auto& n : c.nodes) {
    if (n->address().component(0) == 2) {
      if (n->has_received(e.id())) ++cut_received;
    } else {
      ++rest_total;
      if (n->has_delivered(e.id())) ++rest_delivered;
    }
  }
  EXPECT_EQ(cut_received, 0u);
  EXPECT_GE(rest_delivered, rest_total - 1);
  EXPECT_TRUE(c.runtime->scheduler().empty());  // no livelock on the cut
}

TEST(FailureInjection, TotalBlackoutStillQuiesces) {
  // Every message dropped: bounded gossip rounds must still drain the
  // buffers (passive garbage collection survives a dead network).
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 8);
  c.runtime->network().set_link_filter(
      [](ProcessId, ProcessId) { return false; });
  c.nodes[4]->pmcast(make_event_at(4, 0, 0.5));
  c.runtime->run_until_idle();
  EXPECT_TRUE(c.runtime->scheduler().empty());
  std::size_t received = 0;
  for (const auto& n : c.nodes)
    if (n->id() != 4 && n->has_received(EventId{4, 0})) ++received;
  EXPECT_EQ(received, 0u);
}

TEST(FailureInjection, AllDelegatesOfSubgroupCrashed) {
  // Killing every delegate of one leaf subgroup makes that subgroup
  // unreachable, but the rest of the group must still deliver.
  auto c = make_cluster(4, 2, 2, 1.0, default_config(), 0.0, 9);
  // Subgroup 3's delegates are its R = 2 smallest members: 3.0 and 3.1.
  c.nodes[c.pid_of(Address::parse("3.0"))]->crash();
  c.nodes[c.pid_of(Address::parse("3.1"))]->crash();
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t others_delivered = 0, others_total = 0;
  for (const auto& n : c.nodes) {
    if (!n->alive() || n->address().component(0) == 3) continue;
    ++others_total;
    if (n->has_delivered(e.id())) ++others_delivered;
  }
  EXPECT_GE(others_delivered, others_total - 1);
  // Non-delegate members of subgroup 3 cannot be reached (their only
  // entry points are gone).
  EXPECT_FALSE(
      c.nodes[c.pid_of(Address::parse("3.2"))]->has_received(e.id()));
}

TEST(FailureInjection, HeavyLossDegradesButDoesNotWedge) {
  PmcastConfig config = default_config();
  config.env.prior.loss = 0.5;  // the algorithm compensates with rounds
  auto c = make_cluster(4, 2, 3, 1.0, config, /*loss=*/0.5, 10);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  EXPECT_TRUE(c.runtime->scheduler().empty());
  std::size_t delivered = 0;
  for (const auto& n : c.nodes)
    if (n->has_delivered(e.id())) ++delivered;
  // Half the messages die; with the loss-adjusted round bound most
  // processes are still infected.
  EXPECT_GE(delivered, c.nodes.size() / 2);
}

TEST(FailureInjection, PublisherCrashesMidDissemination) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 11);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  // Let one gossip period elapse, then kill the publisher.
  c.runtime->run_for(sim_ms(150));
  c.nodes[0]->crash();
  c.runtime->run_until_idle();
  std::size_t delivered = 0;
  for (const auto& n : c.nodes)
    if (n->alive() && n->has_delivered(e.id())) ++delivered;
  // The first round already seeded other processes; they finish the job.
  EXPECT_GE(delivered, 6u);
}

TEST(FailureInjection, CrashWithInFlightMessages) {
  // Messages addressed to a process that crashes while they are in flight
  // are counted dead, not delivered, and nothing dangles.
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 12);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_for(sim_ms(100) + sim_us(50));  // mid-latency window
  for (ProcessId pid = 1; pid < 4; ++pid) c.nodes[pid]->crash();
  c.runtime->run_until_idle();
  EXPECT_TRUE(c.runtime->scheduler().empty());
  const auto& counters = c.runtime->network().counters();
  EXPECT_EQ(counters.delivered + counters.lost + counters.dead_target +
                counters.filtered,
            counters.sent);
}

// --- Scheduler/timer regressions -------------------------------------------

/// Regression for the live-token accounting bug: disarming the periodic
/// timer from inside on_period used to cancel the already-executed token
/// and corrupt the pending-event counter.
class SelfDisarmProbe final : public Process {
 public:
  SelfDisarmProbe(Runtime& rt, ProcessId id) : Process(rt, id) {
    arm_periodic(sim_ms(10));
  }
  int ticks = 0;

 protected:
  void on_message(ProcessId, const MessagePtr&) override {}
  void on_period() override {
    ++ticks;
    disarm_periodic();  // stop after the first tick — from inside the tick
  }
};

TEST(SchedulerRegression, DisarmInsideTickKeepsAccountingExact) {
  Runtime rt;
  SelfDisarmProbe a(rt, 0), b(rt, 1);
  rt.run_until_idle();
  EXPECT_EQ(a.ticks, 1);
  EXPECT_EQ(b.ticks, 1);
  EXPECT_TRUE(rt.scheduler().empty());
  EXPECT_EQ(rt.scheduler().pending(), 0u);
}

/// Re-arming with a different period from inside the tick takes effect.
class RearmProbe final : public Process {
 public:
  RearmProbe(Runtime& rt, ProcessId id) : Process(rt, id) {
    arm_periodic(sim_ms(10));
  }
  std::vector<SimTime> tick_times;

 protected:
  void on_message(ProcessId, const MessagePtr&) override {}
  void on_period() override {
    tick_times.push_back(runtime().now());
    if (tick_times.size() == 1) arm_periodic(sim_ms(30));
    if (tick_times.size() >= 3) disarm_periodic();
  }
};

TEST(SchedulerRegression, RearmInsideTickChangesPeriod) {
  Runtime rt;
  RearmProbe p(rt, 0);
  rt.run_until_idle();
  ASSERT_EQ(p.tick_times.size(), 3u);
  EXPECT_EQ(p.tick_times[0], sim_ms(10));
  EXPECT_EQ(p.tick_times[1], sim_ms(30));  // aligned to the new period
  EXPECT_EQ(p.tick_times[2], sim_ms(60));
}

TEST(SchedulerRegression, CancelExecutedTokenIsNoOp) {
  Scheduler s;
  EventToken token = 0;
  token = s.schedule_at(sim_ms(1), [] {});
  s.schedule_at(sim_ms(2), [] {});
  s.run_until(sim_ms(1));
  s.cancel(token);  // already executed — must not affect the other event
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.executed(), 2u);
}

TEST(FailureInjection, DeterministicUnderCrashSchedule) {
  const auto run = [] {
    auto c = make_cluster(4, 2, 2, 0.7, default_config(), 0.05, 13);
    std::vector<Process*> victims{c.nodes[3].get(), c.nodes[9].get()};
    c.runtime->schedule_crashes(victims, sim_ms(500));
    c.nodes[0]->pmcast(make_event_at(0, 0, 0.4));
    c.runtime->run_until_idle();
    return c.runtime->network().counters().sent;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace pmc

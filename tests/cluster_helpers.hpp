// Shared helpers for tests that spin up a full pmcast cluster in the
// simulator: builds the population, the intern state, the group tree, the
// directory and one PmcastNode per process.
#pragma once

#include <memory>
#include <vector>

#include "harness/workload.hpp"
#include "pmcast/node.hpp"

namespace pmc::testing {

struct Cluster {
  std::vector<Member> members;
  // Declared before the tree, which holds a reference into it.
  std::unique_ptr<Interns> interns;
  std::unique_ptr<GroupTree> tree;
  std::unique_ptr<Runtime> runtime;
  std::unique_ptr<TreeViewProvider> views;
  std::vector<ProcessId> pid_by_id;  ///< dense AddrId -> pid directory
  std::vector<std::unique_ptr<PmcastNode>> nodes;

  PmcastNode::Directory directory_fn() const {
    return [this](AddrId id) {
      return id < pid_by_id.size() ? pid_by_id[id] : kNoProcess;
    };
  }

  /// Pid of an address that is known to be in the cluster.
  ProcessId pid_of(const Address& a) const {
    const AddrId id = interns->addrs.find(a);
    return id == kNoAddr ? kNoProcess : pid_by_id.at(id);
  }
};

inline Cluster make_cluster(std::size_t a, std::size_t d, std::size_t r,
                            double pd, PmcastConfig config,
                            double loss = 0.0, std::uint64_t seed = 1) {
  Cluster c;
  Rng rng(seed);
  const auto space =
      AddressSpace::regular(static_cast<AddrComponent>(a), d);
  c.members = uniform_interest_members(space, pd, rng);

  TreeConfig tc;
  tc.depth = d;
  tc.redundancy = r;
  c.interns = std::make_unique<Interns>();
  c.interns->reserve(c.members.size(), d);
  c.tree = std::make_unique<GroupTree>(tc, c.members, *c.interns);
  c.views = std::make_unique<TreeViewProvider>(*c.tree);

  NetworkConfig net;
  net.loss_probability = loss;
  c.runtime = std::make_unique<Runtime>(net, seed ^ 0x5a5a5a5aULL);

  config.tree = tc;
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    const AddrId id = c.interns->addrs.intern(c.members[i].address);
    if (c.pid_by_id.size() <= id) c.pid_by_id.resize(id + 1, kNoProcess);
    c.pid_by_id[id] = static_cast<ProcessId>(i);
  }
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    c.nodes.push_back(std::make_unique<PmcastNode>(
        *c.runtime, static_cast<ProcessId>(i), config,
        c.members[i].address, c.members[i].subscription, *c.views,
        c.directory_fn()));
  }
  return c;
}

inline PmcastConfig default_config() {
  PmcastConfig config;
  config.fanout = 3;
  config.period = sim_ms(100);
  return config;
}

}  // namespace pmc::testing

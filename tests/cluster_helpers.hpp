// Shared helpers for tests that spin up a full pmcast cluster in the
// simulator: builds the population, the group tree, the directory and one
// PmcastNode per process.
#pragma once

#include <memory>
#include <unordered_map>
#include <vector>

#include "harness/workload.hpp"
#include "pmcast/node.hpp"

namespace pmc::testing {

struct Cluster {
  std::vector<Member> members;
  std::unique_ptr<GroupTree> tree;
  std::unique_ptr<Runtime> runtime;
  std::unique_ptr<TreeViewProvider> views;
  std::unordered_map<Address, ProcessId, AddressHash> directory;
  std::vector<std::unique_ptr<PmcastNode>> nodes;

  PmcastNode::Directory directory_fn() const {
    return [this](const Address& a) {
      const auto it = directory.find(a);
      return it == directory.end() ? kNoProcess : it->second;
    };
  }
};

inline Cluster make_cluster(std::size_t a, std::size_t d, std::size_t r,
                            double pd, PmcastConfig config,
                            double loss = 0.0, std::uint64_t seed = 1) {
  Cluster c;
  Rng rng(seed);
  const auto space =
      AddressSpace::regular(static_cast<AddrComponent>(a), d);
  c.members = uniform_interest_members(space, pd, rng);

  TreeConfig tc;
  tc.depth = d;
  tc.redundancy = r;
  c.tree = std::make_unique<GroupTree>(tc, c.members);
  c.views = std::make_unique<TreeViewProvider>(*c.tree);

  NetworkConfig net;
  net.loss_probability = loss;
  c.runtime = std::make_unique<Runtime>(net, seed ^ 0x5a5a5a5aULL);

  config.tree = tc;
  for (std::size_t i = 0; i < c.members.size(); ++i)
    c.directory.emplace(c.members[i].address, static_cast<ProcessId>(i));
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    c.nodes.push_back(std::make_unique<PmcastNode>(
        *c.runtime, static_cast<ProcessId>(i), config,
        c.members[i].address, c.members[i].subscription, *c.views,
        c.directory_fn()));
  }
  return c;
}

inline PmcastConfig default_config() {
  PmcastConfig config;
  config.fanout = 3;
  config.period = sim_ms(100);
  return config;
}

}  // namespace pmc::testing

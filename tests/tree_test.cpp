#include "membership/tree.hpp"

#include <gtest/gtest.h>

#include "addr/space.hpp"
#include "harness/workload.hpp"

namespace pmc {
namespace {

TreeConfig cfg(std::size_t d, std::size_t r) {
  TreeConfig c;
  c.depth = d;
  c.redundancy = r;
  return c;
}

std::vector<Member> regular_members(AddrComponent a, std::size_t d,
                                    double pd = 1.0, std::uint64_t seed = 1) {
  Rng rng(seed);
  return uniform_interest_members(AddressSpace::regular(a, d), pd, rng);
}

/// GroupTree stores its rows through an Interns the caller owns; this
/// helper bundles the two with the right lifetime.
struct Tree {
  Interns interns;
  GroupTree tree;
  Tree(TreeConfig c, std::vector<Member> members)
      : tree(c, std::move(members), interns) {}
};

TEST(GroupTree, ProcessCountMatchesPopulation) {
  const Tree t(cfg(3, 2), regular_members(3, 3));
  EXPECT_EQ(t.tree.process_count(), 27u);
}

TEST(GroupTree, RootViewHasOneRowPerPopulatedChild) {
  const Tree t(cfg(3, 2), regular_members(3, 3));
  const auto& root_view = t.tree.view_at(Prefix::root());
  ASSERT_EQ(root_view.size(), 3u);
  for (std::size_t i = 0; i < root_view.size(); ++i) {
    EXPECT_EQ(root_view.process_count(i), 9u);
    EXPECT_EQ(root_view.delegates(i).size(), 2u);
  }
}

TEST(GroupTree, LeafViewListsIndividualProcesses) {
  const Tree t(cfg(3, 2), regular_members(3, 3));
  const auto self = Address::parse("1.1.0");
  const auto& leaf = t.tree.view_for(self, 3);
  ASSERT_EQ(leaf.size(), 3u);
  for (std::size_t i = 0; i < leaf.size(); ++i) {
    EXPECT_EQ(leaf.process_count(i), 1u);
    EXPECT_EQ(leaf.delegates(i).size(), 1u);
  }
}

TEST(GroupTree, DelegatesAreSmallestAddresses) {
  const Tree t(cfg(3, 2), regular_members(3, 3));
  // Delegates of subgroup 2.1 are its two smallest members.
  const auto d = t.tree.delegates(Address::parse("2.1.0").prefix(2));
  ASSERT_EQ(d.size(), 2u);
  EXPECT_EQ(d[0].to_string(), "2.1.0");
  EXPECT_EQ(d[1].to_string(), "2.1.1");
}

TEST(GroupTree, DelegatesAreNested) {
  // A delegate at depth i is also a delegate at every depth below (paper:
  // "it appears in all successive depths") under smallest-address election.
  const Tree t(cfg(3, 3), regular_members(4, 3));
  const auto root_delegates = t.tree.delegates(Prefix::root());
  for (const auto& d : root_delegates) {
    for (std::size_t depth = 1; depth <= 3; ++depth)
      EXPECT_TRUE(t.tree.is_delegate_at(d, depth))
          << d.to_string() << " at depth " << depth;
  }
}

TEST(GroupTree, RepresentedCountsEq4) {
  const Tree t(cfg(3, 2), regular_members(3, 3));
  EXPECT_EQ(t.tree.represented(Prefix::root()), 27u);
  EXPECT_EQ(t.tree.represented(Address::parse("1.0.0").prefix(1)), 9u);
  EXPECT_EQ(t.tree.represented(Address::parse("1.0.0").prefix(2)), 3u);
  EXPECT_EQ(t.tree.represented(Address::parse("9.9.9").prefix(1)), 0u);
}

TEST(GroupTree, ViewSizesMatchEq12) {
  // m_i = R*a for i < d and a for i = d in a regular tree.
  const std::size_t a = 4, d = 3, r = 2;
  const Tree t(cfg(d, r),
               regular_members(static_cast<AddrComponent>(a), d));
  const auto self = Address::parse("1.2.3");
  for (std::size_t depth = 1; depth <= d; ++depth) {
    const auto& view = t.tree.view_for(self, depth);
    std::size_t members = 0;
    for (std::size_t i = 0; i < view.size(); ++i)
      members += view.delegates(i).size();
    EXPECT_EQ(members, depth < d ? r * a : a) << "depth " << depth;
  }
}

TEST(GroupTree, SubgroupSummaryCoversMemberInterests) {
  // The regrouped interests of every prefix must match any event a member
  // subscription matches (no false negatives through the whole tree).
  const auto members = regular_members(3, 3, 0.15, /*seed=*/7);
  const Tree t(cfg(3, 2), members);
  Rng rng(99);
  for (int trial = 0; trial < 200; ++trial) {
    const Event e = make_uniform_event(0, static_cast<std::uint64_t>(trial),
                                       rng);
    for (const auto& m : members) {
      if (!m.subscription.match(e)) continue;
      for (std::size_t len = 0; len < 3; ++len)
        EXPECT_TRUE(t.tree.summary(m.address.prefix(len)).match(e));
    }
  }
}

TEST(GroupTree, ContainsAndSubscription) {
  const auto members = regular_members(3, 2, 0.5);
  const Tree t(cfg(2, 1), members);
  EXPECT_TRUE(t.tree.contains(Address::parse("0.0")));
  EXPECT_FALSE(t.tree.contains(Address::parse("3.0")));
  EXPECT_FALSE(t.tree.contains(Address::parse("0.0.0")));
  EXPECT_NO_THROW(t.tree.subscription(Address::parse("2.2")));
}

TEST(GroupTree, AllMembersRoundTrip) {
  const auto members = regular_members(3, 2);
  const Tree t(cfg(2, 1), members);
  const auto all = t.tree.all_members();
  EXPECT_EQ(all.size(), 9u);
  for (std::size_t i = 1; i < all.size(); ++i) EXPECT_LT(all[i - 1], all[i]);
}

TEST(GroupTree, DepthOneDegeneratesToFlatGroup) {
  const Tree t(cfg(1, 2), regular_members(5, 1));
  EXPECT_EQ(t.tree.process_count(), 5u);
  const auto& view = t.tree.view_at(Prefix::root());
  EXPECT_EQ(view.size(), 5u);
}

TEST(GroupTree, IrregularPopulation) {
  // A sparse, irregular population: only some leaf subgroups exist.
  std::vector<Member> members;
  for (const auto* t : {"0.0.0", "0.0.1", "0.2.4", "3.1.1", "3.1.2"})
    members.push_back(Member{Address::parse(t), Subscription()});
  const Tree t(cfg(3, 2), members);
  EXPECT_EQ(t.tree.process_count(), 5u);
  const auto& root_view = t.tree.view_at(Prefix::root());
  EXPECT_EQ(root_view.size(), 2u);  // subtrees 0 and 3
  EXPECT_EQ(t.tree.represented(Address::parse("0.0.0").prefix(1)), 3u);
  EXPECT_EQ(t.tree.represented(Address::parse("3.0.0").prefix(1)), 2u);
}

TEST(GroupTree, DuplicateAddressRejected) {
  std::vector<Member> members;
  members.push_back(Member{Address::parse("0.0"), Subscription()});
  members.push_back(Member{Address::parse("0.0"), Subscription()});
  Interns interns;
  EXPECT_THROW(GroupTree(cfg(2, 1), members, interns), std::logic_error);
}

TEST(GroupTree, WrongDepthAddressRejected) {
  std::vector<Member> members;
  members.push_back(Member{Address::parse("0.0.0"), Subscription()});
  Interns interns;
  EXPECT_THROW(GroupTree(cfg(2, 1), members, interns), std::logic_error);
}

TEST(GroupTree, AddMemberUpdatesPath) {
  auto members = regular_members(3, 2);
  members.pop_back();  // remove 2.2
  Tree t(cfg(2, 2), members);
  EXPECT_EQ(t.tree.process_count(), 8u);
  t.tree.add_member(Address::parse("2.2"), Subscription::parse("u < 0.5"));
  EXPECT_EQ(t.tree.process_count(), 9u);
  EXPECT_TRUE(t.tree.contains(Address::parse("2.2")));
  EXPECT_EQ(t.tree.represented(Address::parse("2.0").prefix(1)), 3u);
}

TEST(GroupTree, AddMemberIntoEmptySubtreeCreatesNodes) {
  std::vector<Member> members{{Address::parse("0.0.0"), Subscription()}};
  Tree t(cfg(3, 1), members);
  t.tree.add_member(Address::parse("2.1.0"), Subscription());
  EXPECT_EQ(t.tree.process_count(), 2u);
  EXPECT_EQ(t.tree.view_at(Prefix::root()).size(), 2u);
}

TEST(GroupTree, RemoveMemberUpdatesDelegates) {
  Tree t(cfg(2, 1), regular_members(3, 2));
  // 0.0 is the single delegate of subgroup 0; removing it promotes 0.1.
  EXPECT_EQ(t.tree.delegates(Address::parse("0.0").prefix(1))[0].to_string(),
            "0.0");
  t.tree.remove_member(Address::parse("0.0"));
  EXPECT_EQ(t.tree.delegates(Address::parse("0.0").prefix(1))[0].to_string(),
            "0.1");
  EXPECT_EQ(t.tree.process_count(), 8u);
}

TEST(GroupTree, RemoveLastMemberOfSubgroupDropsRow) {
  std::vector<Member> members;
  for (const auto* t : {"0.0", "0.1", "1.0"})
    members.push_back(Member{Address::parse(t), Subscription()});
  Tree t(cfg(2, 2), members);
  t.tree.remove_member(Address::parse("1.0"));
  EXPECT_EQ(t.tree.view_at(Prefix::root()).size(), 1u);
  EXPECT_EQ(t.tree.process_count(), 2u);
}

TEST(GroupTree, RemoveNonMemberRejected) {
  Tree t(cfg(2, 1), regular_members(2, 2));
  EXPECT_THROW(t.tree.remove_member(Address::parse("9.9")),
               std::logic_error);
}

TEST(GroupTree, UpdateSubscriptionRefreshesSummaries) {
  std::vector<Member> members;
  for (const auto* t : {"0.0", "0.1"})
    members.push_back(Member{Address::parse(t),
                             Subscription::parse("u >= 0.9")});
  Tree t(cfg(2, 1), members);
  Event e = make_event_at(0, 0, 0.1);
  EXPECT_FALSE(t.tree.summary(Prefix::root()).match(e));
  t.tree.update_subscription(Address::parse("0.1"),
                             Subscription::parse("u < 0.5"));
  EXPECT_TRUE(t.tree.summary(Prefix::root()).match(e));
}

TEST(GroupTree, MaterializeViewMatchesShared) {
  const Tree t(cfg(3, 2), regular_members(3, 3, 0.4));
  const auto self = Address::parse("1.2.0");
  const auto mv = t.tree.materialize_view(self);
  for (std::size_t depth = 1; depth <= 3; ++depth) {
    const auto& shared = t.tree.view_for(self, depth);
    ASSERT_EQ(mv.view(depth).size(), shared.size());
    for (std::size_t i = 0; i < shared.size(); ++i) {
      EXPECT_EQ(mv.view(depth).infix(i), shared.infix(i));
      EXPECT_EQ(mv.view(depth).process_count(i), shared.process_count(i));
    }
  }
  // Eq. 2 knowledge: R*a*(d-1) + a = 2*3*2 + 3 = 15.
  EXPECT_EQ(mv.known_processes(), 15u);
}

TEST(GroupTree, VersionsIncreaseOnMutation) {
  Tree t(cfg(2, 1), regular_members(3, 2));
  const auto& root = t.tree.view_at(Prefix::root());
  const auto before = root.version(root.find_index(0));
  t.tree.remove_member(Address::parse("0.2"));
  const auto after = root.version(root.find_index(0));
  EXPECT_GT(after, before);
}

}  // namespace
}  // namespace pmc

#include "analysis/tree_analysis.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmc {
namespace {

TreeAnalysisParams fig4_params(double pd) {
  TreeAnalysisParams p;
  p.a = 22;
  p.d = 3;
  p.r = 3;
  p.fanout = 2.0;
  p.pd = pd;
  p.env.loss = 0.05;
  return p;
}

TEST(TreeAnalysis, PiMatchesEq7) {
  const auto r = analyze_tree(fig4_params(0.3));
  ASSERT_EQ(r.depths.size(), 3u);
  // p_i = 1-(1-pd)^(a^(d-i)).
  EXPECT_NEAR(r.depths[0].pi, 1.0 - std::pow(0.7, 484.0), 1e-12);
  EXPECT_NEAR(r.depths[1].pi, 1.0 - std::pow(0.7, 22.0), 1e-12);
  EXPECT_NEAR(r.depths[2].pi, 0.3, 1e-12);
}

TEST(TreeAnalysis, ViewSizesMatchEq12) {
  const auto r = analyze_tree(fig4_params(0.5));
  EXPECT_DOUBLE_EQ(r.depths[0].mi, 66.0);  // R*a
  EXPECT_DOUBLE_EQ(r.depths[1].mi, 66.0);
  EXPECT_DOUBLE_EQ(r.depths[2].mi, 22.0);  // a at the leaves
}

TEST(TreeAnalysis, PiDecreasesWithDepth) {
  const auto r = analyze_tree(fig4_params(0.2));
  EXPECT_GE(r.depths[0].pi, r.depths[1].pi);
  EXPECT_GE(r.depths[1].pi, r.depths[2].pi);
}

TEST(TreeAnalysis, HighMatchingRateHighReliability) {
  // The Sec. 4 expressions are deliberately pessimistic (they ignore that
  // subgroups usually start with all R delegates infected), so "high"
  // means > 0.9 rather than ~1.
  const auto r = analyze_tree(fig4_params(0.8));
  EXPECT_GT(r.reliability, 0.9);
}

TEST(TreeAnalysis, ReliabilityDegradesForSmallPd) {
  // The paper's Fig. 4 anomaly: Pittel's asymptote starves tiny audiences.
  const auto high = analyze_tree(fig4_params(0.5));
  const auto low = analyze_tree(fig4_params(0.01));
  EXPECT_GT(high.reliability, low.reliability);
}

TEST(TreeAnalysis, ReliabilityInUnitInterval) {
  for (const double pd : {0.01, 0.05, 0.2, 0.5, 0.9, 1.0}) {
    const auto r = analyze_tree(fig4_params(pd));
    EXPECT_GE(r.reliability, 0.0) << pd;
    EXPECT_LE(r.reliability, 1.0) << pd;
  }
}

TEST(TreeAnalysis, ExpectedInfectedBoundedByInterested) {
  const auto r = analyze_tree(fig4_params(0.4));
  const double n_pd = std::pow(22.0, 3.0) * 0.4;
  EXPECT_LE(r.expected_infected, n_pd * 1.0001);
}

TEST(TreeAnalysis, TotalRoundsIsSumOfDepthRounds) {
  const auto r = analyze_tree(fig4_params(0.5));
  double sum = 0;
  for (const auto& d : r.depths) sum += d.rounds;
  EXPECT_NEAR(r.total_rounds, sum, 1e-12);
}

TEST(TreeAnalysis, MoreLossLowerReliability) {
  auto clean = fig4_params(0.3);
  clean.env.loss = 0.0;
  auto lossy = fig4_params(0.3);
  lossy.env.loss = 0.3;
  // The algorithm compensates rounds, but reliability still suffers a bit;
  // at minimum it must not *improve* with loss.
  EXPECT_GE(analyze_tree(clean).reliability,
            analyze_tree(lossy).reliability - 1e-9);
}

TEST(TreeAnalysis, CrashesReduceReliability) {
  auto safe = fig4_params(0.3);
  auto crashy = fig4_params(0.3);
  crashy.env.crash = 0.2;
  EXPECT_GE(analyze_tree(safe).reliability,
            analyze_tree(crashy).reliability - 1e-9);
}

TEST(TreeAnalysis, DepthOneIsFlatGossip) {
  TreeAnalysisParams p;
  p.a = 50;
  p.d = 1;
  p.r = 1;
  p.fanout = 3.0;
  p.pd = 1.0;
  const auto r = analyze_tree(p);
  ASSERT_EQ(r.depths.size(), 1u);
  EXPECT_DOUBLE_EQ(r.depths[0].pi, 1.0);
  EXPECT_DOUBLE_EQ(r.depths[0].mi, 50.0);
  EXPECT_GT(r.reliability, 0.9);
}

TEST(TreeAnalysis, FullInterestNearPerfect) {
  auto p = fig4_params(1.0);
  p.env.loss = 0.0;
  const auto r = analyze_tree(p);
  EXPECT_GT(r.reliability, 0.96);
}

TEST(TreeAnalysis, RiExponentIsRForInnerDepthsOneForLeaf) {
  // With expected fraction f at a depth, r_i = 1-(1-f)^R for inner depths.
  const auto r = analyze_tree(fig4_params(0.6));
  for (const auto& d : r.depths) {
    const double frac = d.interested > 0
                            ? std::min(1.0, d.expected_infected / d.interested)
                            : 0.0;
    const double exponent = d.depth < 3 ? 3.0 : 1.0;
    EXPECT_NEAR(d.ri, 1.0 - std::pow(1.0 - frac, exponent), 1e-9);
  }
}

TEST(TreeAnalysis, InvalidParamsRejected) {
  TreeAnalysisParams p;
  p.a = 0;
  EXPECT_THROW(analyze_tree(p), std::logic_error);
  TreeAnalysisParams q;
  q.pd = 1.5;
  EXPECT_THROW(analyze_tree(q), std::logic_error);
}

TEST(RegularViewSize, MatchesEq2) {
  EXPECT_EQ(regular_view_size(22, 3, 3), 3u * 22 * 2 + 22);
  EXPECT_EQ(regular_view_size(10, 1, 5), 10u);  // single depth: neighbors only
  EXPECT_EQ(regular_view_size(4, 2, 2), 2u * 4 + 4);
}

TEST(RegularViewSize, SublinearInGroupSize) {
  // O(d R n^(1/d)): quadrupling n at d=2 only doubles the view.
  const auto v1 = regular_view_size(10, 2, 3);
  const auto v2 = regular_view_size(20, 2, 3);
  EXPECT_LT(v2, 2 * v1 + 21);
}

}  // namespace
}  // namespace pmc

// End-to-end wire validation: every message of a full simulation is
// serialized and re-parsed at the network boundary (Network::set_transcoder),
// so the complete protocol — dissemination, recovery, and membership
// anti-entropy — runs over the exact byte format a deployment would use.
#include <gtest/gtest.h>

#include "cluster_helpers.hpp"
#include "membership/sync.hpp"
#include "wire/messages.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

Network::Transcoder codec_round_trip() {
  return [](const MessagePtr& msg) -> MessagePtr {
    const auto bytes = wire::encode_message(*msg);
    return wire::decode_message(bytes);
  };
}

TEST(WireIntegration, DisseminationOverSerializedMessages) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 81);
  c.runtime->network().set_transcoder(codec_round_trip());
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[4]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t delivered = 0;
  for (const auto& n : c.nodes)
    if (n->has_delivered(e.id())) ++delivered;
  EXPECT_EQ(delivered, c.nodes.size());
}

TEST(WireIntegration, SerializedEqualsDirectDelivery) {
  // The codec must be transparent: identical seeds, identical outcomes.
  const auto run = [](bool serialize) {
    auto c = make_cluster(3, 3, 2, 0.6, default_config(), 0.05, 82);
    if (serialize) c.runtime->network().set_transcoder(codec_round_trip());
    const Event e = make_event_at(0, 0, 0.4);
    c.nodes[0]->pmcast(e);
    c.runtime->run_until_idle();
    std::vector<bool> outcome;
    for (const auto& n : c.nodes) outcome.push_back(n->has_delivered(e.id()));
    return outcome;
  };
  EXPECT_EQ(run(false), run(true));
}

TEST(WireIntegration, RecoveryOverSerializedMessages) {
  // Digest/request/payload recovery messages serialize too: a lossy run
  // with the codec in the path still repairs misses.
  PmcastConfig config = default_config();
  config.recovery_rounds = 5;
  config.env.prior.loss = 0.3;
  auto c = make_cluster(4, 2, 2, 1.0, config, /*loss=*/0.3, 85);
  c.runtime->network().set_transcoder(codec_round_trip());
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t delivered = 0;
  for (const auto& n : c.nodes)
    if (n->has_delivered(e.id())) ++delivered;
  EXPECT_GE(delivered, c.nodes.size() - 2);
}

TEST(WireIntegration, MembershipSyncOverSerializedMessages) {
  Rng rng(83);
  const auto space = AddressSpace::regular(3, 2);
  const auto members = uniform_interest_members(space, 0.5, rng);
  SyncConfig config;
  config.tree.depth = 2;
  config.tree.redundancy = 2;
  config.gossip_period = sim_ms(50);
  Interns interns;
  const GroupTree tree(config.tree, members, interns);
  Runtime rt(NetworkConfig{}, 83);
  rt.network().set_transcoder(codec_round_trip());
  std::vector<ProcessId> dir;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
    dir[id] = static_cast<ProcessId>(i);
  }
  std::vector<std::unique_ptr<SyncNode>> nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<SyncNode>(
        rt, static_cast<ProcessId>(i), config,
        tree.materialize_view(members[i].address), members[i].subscription));
    nodes.back()->set_directory([&dir](AddrId id) {
      return id < dir.size() ? dir[id] : kNoProcess;
    });
  }
  rt.run_for(sim_ms(500));
  // Tombstone propagation through serialized updates.
  nodes[4]->leave();
  rt.run_for(sim_ms(1500));
  std::size_t tombstoned = 0;
  for (const auto& n : nodes) {
    if (!n->alive()) continue;
    if (n->address().component(0) != 1) continue;
    const auto& leaf = n->view().view(2);
    const std::size_t row = leaf.find_index(1);
    if (row != DepthView::npos && !leaf.alive(row)) ++tombstoned;
  }
  EXPECT_GE(tombstoned, 2u);
}

TEST(WireIntegration, DroppingTranscoderActsAsFilter) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 84);
  c.runtime->network().set_transcoder(
      [](const MessagePtr&) { return MessagePtr{}; });
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  EXPECT_GT(c.runtime->network().counters().filtered, 0u);
  EXPECT_EQ(c.runtime->network().counters().delivered, 0u);
}

}  // namespace
}  // namespace pmc

#include "analysis/rounds.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace pmc {
namespace {

TEST(RoundEstimator, MatchesPittelClosedForm) {
  const RoundEstimator est(0.0);
  const double n = 10000, f = 2;
  const double expected =
      std::log(n) * (1.0 / f + 1.0 / std::log(f + 1.0));
  EXPECT_NEAR(est.pittel(n, f), expected, 1e-12);
}

TEST(RoundEstimator, ZeroForDegenerateGroups) {
  const RoundEstimator est;
  EXPECT_DOUBLE_EQ(est.pittel(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(0.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(100.0, 0.0), 0.0);
}

TEST(RoundEstimator, MonotoneInGroupSize) {
  const RoundEstimator est;
  EXPECT_LT(est.pittel(100, 3), est.pittel(1000, 3));
  EXPECT_LT(est.pittel(1000, 3), est.pittel(10000, 3));
}

TEST(RoundEstimator, DecreasingInFanout) {
  const RoundEstimator est;
  EXPECT_GT(est.pittel(10000, 1), est.pittel(10000, 2));
  EXPECT_GT(est.pittel(10000, 2), est.pittel(10000, 4));
}

TEST(RoundEstimator, ConstantShifts) {
  const RoundEstimator base(0.0), shifted(2.5);
  EXPECT_NEAR(shifted.pittel(1000, 2) - base.pittel(1000, 2), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(shifted.constant(), 2.5);
}

TEST(RoundEstimator, NegativeTotalClampedToZero) {
  const RoundEstimator est(-100.0);
  EXPECT_DOUBLE_EQ(est.pittel(10, 2), 0.0);
}

TEST(RoundEstimator, FaultyDiscountsPopulationAndFanout) {
  const RoundEstimator est;
  EnvParams env;
  env.loss = 0.2;
  env.crash = 0.1;
  const double keep = 0.8 * 0.9;
  EXPECT_NEAR(est.faulty(1000, 3, env),
              est.pittel(1000 * keep, 3 * keep), 1e-12);
}

TEST(RoundEstimator, FaultyNoFaultsEqualsPittel) {
  const RoundEstimator est;
  EXPECT_DOUBLE_EQ(est.faulty(500, 2, EnvParams{}), est.pittel(500, 2));
}

TEST(RoundEstimator, FaultyMoreLossMoreRounds) {
  // More loss shrinks the effective fanout, so the bound cannot shrink
  // whenever the effective population is still > 1... but Eq. 11 also
  // shrinks n. The paper's net effect at realistic sizes: more rounds.
  const RoundEstimator est;
  EnvParams lossy;
  lossy.loss = 0.3;
  EXPECT_GT(est.faulty(10000, 2, lossy), est.faulty(10000, 2, EnvParams{}));
}

TEST(RoundEstimator, InvalidEnvRejected) {
  const RoundEstimator est;
  EnvParams bad;
  bad.loss = 1.0;
  EXPECT_THROW(est.faulty(10, 2, bad), std::logic_error);
  EnvParams bad2;
  bad2.crash = -0.1;
  EXPECT_THROW(est.faulty(10, 2, bad2), std::logic_error);
}

TEST(RoundEstimator, ExecutedRoundsCeil) {
  EXPECT_EQ(RoundEstimator::executed_rounds(0.0), 0u);
  EXPECT_EQ(RoundEstimator::executed_rounds(-1.0), 0u);
  EXPECT_EQ(RoundEstimator::executed_rounds(0.1), 1u);
  EXPECT_EQ(RoundEstimator::executed_rounds(3.0), 3u);
  EXPECT_EQ(RoundEstimator::executed_rounds(3.2), 4u);
}

TEST(RoundEstimator, SmallPopulationAnomalyReproduced) {
  // Sec. 5.1: towards n*pd -> 1 the estimate collapses to 0, which is the
  // root cause of the small-matching-rate reliability loss.
  const RoundEstimator est;
  EXPECT_GT(est.pittel(50, 2), est.pittel(2, 2));
  EXPECT_GT(est.pittel(2, 2), est.pittel(1, 2));
  EXPECT_DOUBLE_EQ(est.pittel(1, 2), 0.0);
}

}  // namespace
}  // namespace pmc

#include "analysis/rounds.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

namespace pmc {
namespace {

TEST(RoundEstimator, MatchesPittelClosedForm) {
  const RoundEstimator est(0.0);
  const double n = 10000, f = 2;
  const double expected =
      std::log(n) * (1.0 / f + 1.0 / std::log(f + 1.0));
  EXPECT_NEAR(est.pittel(n, f), expected, 1e-12);
}

TEST(RoundEstimator, ZeroForDegenerateGroups) {
  const RoundEstimator est;
  EXPECT_DOUBLE_EQ(est.pittel(1.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(0.5, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(0.0, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(100.0, 0.0), 0.0);
}

TEST(RoundEstimator, MonotoneInGroupSize) {
  const RoundEstimator est;
  EXPECT_LT(est.pittel(100, 3), est.pittel(1000, 3));
  EXPECT_LT(est.pittel(1000, 3), est.pittel(10000, 3));
}

TEST(RoundEstimator, DecreasingInFanout) {
  const RoundEstimator est;
  EXPECT_GT(est.pittel(10000, 1), est.pittel(10000, 2));
  EXPECT_GT(est.pittel(10000, 2), est.pittel(10000, 4));
}

TEST(RoundEstimator, ConstantShifts) {
  const RoundEstimator base(0.0), shifted(2.5);
  EXPECT_NEAR(shifted.pittel(1000, 2) - base.pittel(1000, 2), 2.5, 1e-12);
  EXPECT_DOUBLE_EQ(shifted.constant(), 2.5);
}

TEST(RoundEstimator, NegativeTotalClampedToZero) {
  const RoundEstimator est(-100.0);
  EXPECT_DOUBLE_EQ(est.pittel(10, 2), 0.0);
}

TEST(RoundEstimator, FaultyDiscountsPopulationAndFanout) {
  const RoundEstimator est;
  EnvParams env;
  env.loss = 0.2;
  env.crash = 0.1;
  const double keep = 0.8 * 0.9;
  EXPECT_NEAR(est.faulty(1000, 3, env),
              est.pittel(1000 * keep, 3 * keep), 1e-12);
}

TEST(RoundEstimator, FaultyNoFaultsEqualsPittel) {
  const RoundEstimator est;
  EXPECT_DOUBLE_EQ(est.faulty(500, 2, EnvParams{}), est.pittel(500, 2));
}

TEST(RoundEstimator, FaultyMoreLossMoreRounds) {
  // More loss shrinks the effective fanout, so the bound cannot shrink
  // whenever the effective population is still > 1... but Eq. 11 also
  // shrinks n. The paper's net effect at realistic sizes: more rounds.
  const RoundEstimator est;
  EnvParams lossy;
  lossy.loss = 0.3;
  EXPECT_GT(est.faulty(10000, 2, lossy), est.faulty(10000, 2, EnvParams{}));
}

TEST(RoundEstimator, InvalidEnvRejected) {
  const RoundEstimator est;
  EnvParams bad;
  bad.loss = 1.5;  // beyond the [0, 1] parameter space
  EXPECT_THROW(est.faulty(10, 2, bad), std::logic_error);
  EnvParams bad2;
  bad2.crash = -0.1;
  EXPECT_THROW(est.faulty(10, 2, bad2), std::logic_error);
  EnvParams bad3;
  bad3.loss = std::numeric_limits<double>::quiet_NaN();
  EXPECT_THROW(est.faulty(10, 2, bad3), std::logic_error);
}

TEST(RoundEstimator, SaturatedEnvCollapsesToZeroInsteadOfThrowing) {
  // ε = 1 (or τ = 1) is a state an online estimator can legitimately
  // reach under total loss; the pre-fix estimator rejected the boundary
  // (loss < 1) and threw mid-gossip. Now the bound collapses to an
  // explicit 0 — observable via PmcastNode::Stats::bound_collapsed.
  const RoundEstimator est;
  EnvParams total_loss;
  total_loss.loss = 1.0;
  EXPECT_DOUBLE_EQ(est.faulty(1000, 3, total_loss), 0.0);
  EnvParams total_crash;
  total_crash.crash = 1.0;
  EXPECT_DOUBLE_EQ(est.faulty(1000, 3, total_crash), 0.0);
}

TEST(RoundEstimator, CollapsedDiscountsYieldZeroNotNaN) {
  const RoundEstimator est;
  // Discounted population <= 1: zero rounds, explicitly.
  EnvParams harsh;
  harsh.loss = 0.9;
  harsh.crash = 0.9;  // keep = 0.01: n = 50 -> 0.5, F = 2 -> 0.02
  EXPECT_DOUBLE_EQ(est.faulty(50, 2, harsh), 0.0);
  // NaN inputs (a poisoned upstream discount) also collapse to 0 instead
  // of propagating through log().
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_DOUBLE_EQ(est.pittel(nan, 2.0), 0.0);
  EXPECT_DOUBLE_EQ(est.pittel(100.0, nan), 0.0);
}

TEST(RoundEstimator, FaultyMatchesHandComputedEq11) {
  // Locks the double-discount semantics of the Fig. 3 line 7 call site
  // (src/pmcast/node.cpp): the matching rate scales both arguments first
  // (n = |view| * rate interested processes, F * rate expected interested
  // draws), then Eq. 11 multiplies both by (1-ε)(1-τ). For a view of 20,
  // rate 0.5, F = 3, ε = 0.2, τ = 0.1:
  //   n' = 20 * 0.5 * 0.72 = 7.2,  F' = 3 * 0.5 * 0.72 = 1.08
  //   T  = ln(7.2) * (1/1.08 + 1/ln(2.08)) = 4.52333009268176...
  const RoundEstimator est;
  EnvParams env;
  env.loss = 0.2;
  env.crash = 0.1;
  const double interested = 20 * 0.5;
  const double effective_fanout = 3 * 0.5;
  EXPECT_NEAR(est.faulty(interested, effective_fanout, env),
              4.5233300926817614, 1e-12);
  // The algorithm then gossips for ceil(T) = 5 rounds at this depth.
  EXPECT_EQ(RoundEstimator::executed_rounds(
                est.faulty(interested, effective_fanout, env)),
            5u);
}

TEST(RoundEstimator, ExecutedRoundsCeil) {
  EXPECT_EQ(RoundEstimator::executed_rounds(0.0), 0u);
  EXPECT_EQ(RoundEstimator::executed_rounds(-1.0), 0u);
  EXPECT_EQ(RoundEstimator::executed_rounds(0.1), 1u);
  EXPECT_EQ(RoundEstimator::executed_rounds(3.0), 3u);
  EXPECT_EQ(RoundEstimator::executed_rounds(3.2), 4u);
}

TEST(RoundEstimator, SmallPopulationAnomalyReproduced) {
  // Sec. 5.1: towards n*pd -> 1 the estimate collapses to 0, which is the
  // root cause of the small-matching-rate reliability loss.
  const RoundEstimator est;
  EXPECT_GT(est.pittel(50, 2), est.pittel(2, 2));
  EXPECT_GT(est.pittel(2, 2), est.pittel(1, 2));
  EXPECT_DOUBLE_EQ(est.pittel(1, 2), 0.0);
}

}  // namespace
}  // namespace pmc

#include "sim/runtime.hpp"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

namespace pmc {
namespace {

struct Ping final : MessageBase {};

/// Test process: counts messages and ticks; can echo messages back.
class Probe final : public Process {
 public:
  Probe(Runtime& rt, ProcessId id) : Process(rt, id) {}

  int messages = 0;
  int ticks = 0;
  bool echo = false;
  SimTime last_tick_at = -1;

  void start_ticking(SimTime period) { arm_periodic(period); }
  void stop_ticking() { disarm_periodic(); }
  void send_ping(ProcessId to) { send(to, std::make_shared<Ping>()); }
  using Process::periodic_armed;

 protected:
  void on_message(ProcessId from, const MessagePtr&) override {
    ++messages;
    if (echo) send(from, std::make_shared<Ping>());
  }
  void on_period() override {
    ++ticks;
    last_tick_at = runtime().now();
    if (ticks >= 5) disarm_periodic();
  }
};

TEST(Runtime, ProcessesExchangeMessages) {
  Runtime rt;
  Probe a(rt, 0), b(rt, 1);
  a.send_ping(1);
  rt.run_until_idle();
  EXPECT_EQ(b.messages, 1);
  EXPECT_EQ(a.messages, 0);
}

TEST(Runtime, EchoRoundTrip) {
  Runtime rt;
  Probe a(rt, 0), b(rt, 1);
  b.echo = true;
  a.send_ping(1);
  rt.run_until_idle();
  EXPECT_EQ(b.messages, 1);
  EXPECT_EQ(a.messages, 1);
}

TEST(Runtime, PeriodicTicksAlignToPeriodBoundaries) {
  Runtime rt;
  Probe a(rt, 0);
  a.start_ticking(sim_ms(10));
  rt.run_until_idle();
  EXPECT_EQ(a.ticks, 5);
  // Last tick at the 5th boundary.
  EXPECT_EQ(a.last_tick_at, sim_ms(50));
}

TEST(Runtime, DisarmStopsTicks) {
  Runtime rt;
  Probe a(rt, 0);
  a.start_ticking(sim_ms(10));
  rt.run_for(sim_ms(25));
  EXPECT_EQ(a.ticks, 2);
  a.stop_ticking();
  rt.run_for(sim_ms(100));
  EXPECT_EQ(a.ticks, 2);
}

TEST(Runtime, CrashStopsMessagesAndTicks) {
  Runtime rt;
  Probe a(rt, 0), b(rt, 1);
  b.start_ticking(sim_ms(10));
  b.crash();
  a.send_ping(1);
  rt.run_until_idle();
  EXPECT_EQ(b.messages, 0);
  EXPECT_EQ(b.ticks, 0);
  EXPECT_FALSE(b.alive());
}

TEST(Runtime, CrashIsIdempotent) {
  Runtime rt;
  Probe a(rt, 0);
  a.crash();
  a.crash();
  EXPECT_FALSE(a.alive());
}

TEST(Runtime, ScheduleCrashesWithinHorizon) {
  Runtime rt;
  std::vector<std::unique_ptr<Probe>> procs;
  for (ProcessId i = 0; i < 20; ++i)
    procs.push_back(std::make_unique<Probe>(rt, i));
  std::vector<Process*> victims;
  for (std::size_t i = 0; i < 10; ++i) victims.push_back(procs[i].get());
  rt.schedule_crashes(victims, sim_ms(100));
  rt.run_until_idle();
  EXPECT_LE(rt.now(), sim_ms(100));
  for (std::size_t i = 0; i < 10; ++i) EXPECT_FALSE(procs[i]->alive());
  for (std::size_t i = 10; i < 20; ++i) EXPECT_TRUE(procs[i]->alive());
}

TEST(Runtime, MakeRngStreamsDiffer) {
  Runtime rt;
  Rng a = rt.make_rng();
  Rng b = rt.make_rng();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Runtime, SameSeedSameBehaviour) {
  const auto run = [](std::uint64_t seed) {
    Runtime rt(NetworkConfig{}, seed);
    Rng r = rt.make_rng();
    return r.next_u64();
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

TEST(Runtime, DestructorDetaches) {
  Runtime rt;
  {
    Probe tmp(rt, 3);
  }
  EXPECT_FALSE(rt.network().attached(3));
}

TEST(Runtime, ArmPeriodicOnCrashedProcessThrows) {
  Runtime rt;
  Probe a(rt, 0);
  a.crash();
  EXPECT_THROW(a.start_ticking(sim_ms(10)), std::logic_error);
}

TEST(Runtime, RunForAdvancesTime) {
  Runtime rt;
  rt.run_for(sim_ms(42));
  EXPECT_EQ(rt.now(), sim_ms(42));
}

}  // namespace
}  // namespace pmc

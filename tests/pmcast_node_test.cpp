#include "pmcast/node.hpp"

#include <gtest/gtest.h>

#include "cluster_helpers.hpp"

namespace pmc {
namespace {

using testing::Cluster;
using testing::default_config;
using testing::make_cluster;

TEST(PmcastNode, EveryoneInterestedEveryoneDelivers) {
  auto c = make_cluster(3, 2, 2, /*pd=*/1.0, default_config());
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[4]->pmcast(e);
  c.runtime->run_until_idle();
  for (const auto& node : c.nodes)
    EXPECT_TRUE(node->has_delivered(e.id())) << node->address().to_string();
}

TEST(PmcastNode, PublisherDeliversLocallyWhenInterested) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  EXPECT_TRUE(c.nodes[0]->has_delivered(e.id()));
  EXPECT_EQ(c.nodes[0]->stats().published, 1u);
}

TEST(PmcastNode, UninterestedNonDelegatesNeverReceive) {
  // With exact interval regrouping, an event is only ever sent to processes
  // whose row matches: uninterested leaf processes (non-delegates) must not
  // be touched — pmcast's defining property versus broadcast (Fig. 5).
  auto c = make_cluster(4, 3, 2, /*pd=*/0.4, default_config(), 0.0, 3);
  const Event e = make_event_at(1, 0, 0.3);
  c.nodes[7]->pmcast(e);
  c.runtime->run_until_idle();
  for (const auto& node : c.nodes) {
    if (node->interested_in(e)) continue;
    if (node->id() == 7) continue;  // the publisher buffers its own event
    bool delegate = false;
    for (std::size_t depth = 1; depth < 3; ++depth)
      delegate = delegate || c.tree->is_delegate_at(node->address(), depth);
    if (!delegate) {
      EXPECT_FALSE(node->has_received(e.id()))
          << node->address().to_string();
    }
  }
}

TEST(PmcastNode, CrossSubtreeDelivery) {
  auto c = make_cluster(3, 3, 2, 1.0, default_config(), 0.0, 5);
  // Publish from 0.0.0; check delivery in the farthest subtree 2.x.x.
  const Event e = make_event_at(0, 0, 0.2);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t far_delivered = 0, far_total = 0;
  for (const auto& node : c.nodes) {
    if (node->address().component(0) != 2) continue;
    ++far_total;
    if (node->has_delivered(e.id())) ++far_delivered;
  }
  EXPECT_EQ(far_total, 9u);
  EXPECT_GE(far_delivered, 8u);  // allow one probabilistic miss
}

TEST(PmcastNode, DeliverHandlerInvokedExactlyOnce) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  std::vector<int> calls(c.nodes.size(), 0);
  for (std::size_t i = 0; i < c.nodes.size(); ++i)
    c.nodes[i]->set_deliver_handler(
        [&calls, i](const Event&) { ++calls[i]; });
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[2]->pmcast(e);
  c.runtime->run_until_idle();
  for (const auto count : calls) EXPECT_LE(count, 1);
  EXPECT_GE(calls[2], 1);
}

TEST(PmcastNode, QuiescesAfterBoundedRounds) {
  // Passive garbage collection: the run must drain on its own.
  auto c = make_cluster(3, 3, 2, 0.8, default_config(), 0.0, 9);
  c.nodes[3]->pmcast(make_event_at(3, 0, 0.1));
  c.runtime->run_until_idle();
  EXPECT_TRUE(c.runtime->scheduler().empty());
  // Sanity: time advanced but is bounded (no runaway regossiping).
  EXPECT_LT(c.runtime->now(), sim_ms(100) * 200);
}

TEST(PmcastNode, NoSelfSends) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  c.runtime->network().set_link_filter([](ProcessId from, ProcessId to) {
    EXPECT_NE(from, to) << "node gossiped to itself";
    return true;
  });
  c.nodes[1]->pmcast(make_event_at(1, 0, 0.5));
  c.runtime->run_until_idle();
}

TEST(PmcastNode, SecondPublishOfSameEventIgnoredByReceivers) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  const Event e = make_event_at(0, 7, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  const auto received_before = c.nodes[5]->stats().received;
  c.nodes[1]->pmcast(e);  // same EventId republished elsewhere
  c.runtime->run_until_idle();
  EXPECT_EQ(c.nodes[5]->stats().received, received_before);
}

TEST(PmcastNode, MultipleConcurrentEvents) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  const Event e1 = make_event_at(0, 0, 0.3);
  const Event e2 = make_event_at(1, 0, 0.7);
  c.nodes[0]->pmcast(e1);
  c.nodes[1]->pmcast(e2);
  c.runtime->run_until_idle();
  std::size_t d1 = 0, d2 = 0;
  for (const auto& node : c.nodes) {
    if (node->has_delivered(e1.id())) ++d1;
    if (node->has_delivered(e2.id())) ++d2;
  }
  EXPECT_GE(d1, 8u);
  EXPECT_GE(d2, 8u);
}

TEST(PmcastNode, CrashedPublisherRejected) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  c.nodes[0]->crash();
  EXPECT_THROW(c.nodes[0]->pmcast(make_event_at(0, 0, 0.5)),
               std::logic_error);
}

TEST(PmcastNode, SurvivesCrashedDelegatesWithRedundancy) {
  // R=3: killing one delegate per leaf subgroup must not break delivery.
  auto c = make_cluster(4, 2, 3, 1.0, default_config(), 0.0, 11);
  // Crash the smallest-address member of each leaf subgroup except the
  // publisher's.
  for (AddrComponent g = 1; g < 4; ++g) {
    const AddrId id =
        c.interns->addrs.find(Address(std::vector<AddrComponent>{g, 0}));
    ASSERT_NE(id, kNoAddr);
    c.nodes[c.pid_by_id[id]]->crash();
  }
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t delivered = 0, alive_count = 0;
  for (const auto& node : c.nodes) {
    if (!node->alive()) continue;
    ++alive_count;
    if (node->has_delivered(e.id())) ++delivered;
  }
  EXPECT_EQ(alive_count, 13u);
  EXPECT_GE(delivered, 12u);
}

TEST(PmcastNode, LocalInterestShortcutSkipsRootGossip) {
  // Build members by hand: only the publisher's own leaf subgroup is
  // interested, so the event should skip straight to the leaf depth.
  const auto run = [](bool shortcut) {
    std::vector<Member> members;
    const auto space = AddressSpace::regular(3, 2);
    for (const auto& addr : space.enumerate()) {
      const bool own_group = addr.component(0) == 0;
      members.push_back(Member{
          addr, own_group ? Subscription::parse("u < 1.0")
                          : Subscription::parse("u > 2.0")});
    }
    TreeConfig tc;
    tc.depth = 2;
    tc.redundancy = 2;
    Interns interns;
    GroupTree tree(tc, members, interns);
    TreeViewProvider views(tree);
    Runtime rt(NetworkConfig{}, 17);
    std::vector<ProcessId> dir;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const AddrId id = interns.addrs.intern(members[i].address);
      if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
      dir[id] = static_cast<ProcessId>(i);
    }
    PmcastConfig config = testing::default_config();
    config.tree = tc;
    config.local_interest_shortcut = shortcut;
    std::vector<std::unique_ptr<PmcastNode>> nodes;
    for (std::size_t i = 0; i < members.size(); ++i)
      nodes.push_back(std::make_unique<PmcastNode>(
          rt, static_cast<ProcessId>(i), config, members[i].address,
          members[i].subscription, views, [&dir](AddrId id) {
            return id < dir.size() ? dir[id] : kNoProcess;
          }));
    nodes[0]->pmcast(make_event_at(0, 0, 0.5));
    rt.run_until_idle();
    std::size_t delivered = 0;
    for (const auto& n : nodes)
      if (n->has_delivered(EventId{0, 0})) ++delivered;
    return std::pair{rt.network().counters().sent, delivered};
  };
  const auto [msgs_with, delivered_with] = run(true);
  const auto [msgs_without, delivered_without] = run(false);
  EXPECT_EQ(delivered_with, 3u);  // the whole leaf subgroup
  EXPECT_EQ(delivered_without, 3u);
  EXPECT_LE(msgs_with, msgs_without);
}

TEST(PmcastNode, TuningIncreasesUninterestedReceptions) {
  // Sec. 5.3's compromise: the tuned variant reaches more uninterested
  // processes. Compare total receptions at a small matching rate.
  const auto receptions = [](std::size_t h) {
    PmcastConfig config = testing::default_config();
    config.tuning_threshold = h;
    auto c = make_cluster(5, 2, 2, /*pd=*/0.1, config, 0.0, 23);
    c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
    c.runtime->run_until_idle();
    std::size_t count = 0;
    for (const auto& node : c.nodes)
      if (!node->interested_in(make_event_at(0, 0, 0.5)) &&
          node->has_received(EventId{0, 0}))
        ++count;
    return count;
  };
  EXPECT_GE(receptions(6), receptions(0));
}

TEST(PmcastNode, WorksWithLocalViewProvider) {
  // Deployment configuration: every node owns a materialized view.
  const auto space = AddressSpace::regular(3, 2);
  Rng rng(31);
  const auto members = uniform_interest_members(space, 1.0, rng);
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 2;
  Interns interns;
  const GroupTree tree(tc, members, interns);

  Runtime rt(NetworkConfig{}, 31);
  std::vector<ProcessId> dir;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
    dir[id] = static_cast<ProcessId>(i);
  }

  std::vector<MembershipView> views;
  views.reserve(members.size());
  for (const auto& m : members) views.push_back(tree.materialize_view(m.address));
  std::vector<std::unique_ptr<LocalViewProvider>> providers;
  std::vector<std::unique_ptr<PmcastNode>> nodes;
  PmcastConfig config = testing::default_config();
  config.tree = tc;
  for (std::size_t i = 0; i < members.size(); ++i) {
    providers.push_back(std::make_unique<LocalViewProvider>(views[i]));
    nodes.push_back(std::make_unique<PmcastNode>(
        rt, static_cast<ProcessId>(i), config, members[i].address,
        members[i].subscription, *providers[i], [&dir](AddrId id) {
          return id < dir.size() ? dir[id] : kNoProcess;
        }));
  }
  nodes[4]->pmcast(make_event_at(4, 0, 0.5));
  rt.run_until_idle();
  std::size_t delivered = 0;
  for (const auto& n : nodes)
    if (n->has_delivered(EventId{4, 0})) ++delivered;
  EXPECT_GE(delivered, 8u);
}

TEST(PmcastNode, StatsAreConsistent) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  std::uint64_t total_sent = 0;
  for (const auto& node : c.nodes) {
    const auto& s = node->stats();
    // Each executed round sends at most F gossips.
    EXPECT_LE(s.gossips_sent, s.rounds_run * 3);
    total_sent += s.gossips_sent;
  }
  EXPECT_EQ(total_sent, c.runtime->network().counters().sent);
}

TEST(PmcastNode, DepthOneTree) {
  auto c = make_cluster(6, 1, 2, 1.0, default_config(), 0.0, 41);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t delivered = 0;
  for (const auto& n : c.nodes)
    if (n->has_delivered(e.id())) ++delivered;
  EXPECT_GE(delivered, 5u);
}

TEST(PmcastNode, IgnoresForeignMessages) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config());
  struct Alien final : MessageBase {};
  c.runtime->network().send(99, 0, std::make_shared<Alien>());
  c.runtime->run_until_idle();
  EXPECT_EQ(c.nodes[0]->stats().received, 0u);
}

}  // namespace
}  // namespace pmc

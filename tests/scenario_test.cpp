// Scenario engine: script parsing/round-tripping, config and script
// validation (contract violations throw), and the engine's behavioral
// guarantees — joins complete, crashes get detected, partitions block and
// heal, loss bursts restore, publishes deliver — all reproducibly.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <limits>
#include <stdexcept>
#include <string>

#include "harness/scenario.hpp"

namespace pmc {
namespace {

ChurnConfig small_config(std::uint64_t seed = 11) {
  ChurnConfig c;
  c.a = 4;
  c.d = 2;
  c.r = 2;
  c.pd = 0.5;
  c.initial_fill = 0.75;
  c.period = sim_ms(50);
  c.suspicion_timeout = sim_ms(400);
  c.seed = seed;
  return c;
}

// ---------------------------------------------------------------------------
// Script validation (satellite: config validation via contract.hpp)
// ---------------------------------------------------------------------------

TEST(ScenarioScript, ValidScriptPasses) {
  EXPECT_NO_THROW(ScenarioScript::demo().validate());
}

TEST(ScenarioScript, RejectsLossOutOfRange) {
  ScenarioScript s;
  s.add(sim_ms(100), LossBurst{1.5, sim_ms(100)});
  EXPECT_THROW(s.validate(), std::logic_error);
  ScenarioScript neg;
  neg.add(sim_ms(100), LossBurst{-0.1, sim_ms(100)});
  EXPECT_THROW(neg.validate(), std::logic_error);
}

TEST(ScenarioScript, RejectsZeroCountsAndDurations) {
  {
    ScenarioScript s;
    s.add(sim_ms(100), CrashNodes{0});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;
    s.add(sim_ms(100), LossBurst{0.5, 0});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
}

TEST(ScenarioScript, RejectsUnsortedOrNegativeTimes) {
  {
    ScenarioScript s;
    s.add(sim_ms(200), Join{1});
    s.add(sim_ms(100), Join{1});  // out of order
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;
    s.add(-1, Join{1});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
}

TEST(ScenarioScript, RejectsHealBeforePartition) {
  ScenarioScript s;
  s.add(sim_ms(500), Partition{{0}, sim_ms(400)});
  EXPECT_THROW(s.validate(), std::logic_error);
}

TEST(ScenarioScript, RejectsRecoverBeforeCrash) {
  {
    ScenarioScript s;
    s.add(sim_ms(100), RecoverNodes{1});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    // More recoveries than crashes scheduled before them.
    ScenarioScript s;
    s.add(sim_ms(100), CrashNodes{1});
    s.add(sim_ms(200), RecoverNodes{2});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;
    s.add(sim_ms(100), CrashNodes{2});
    s.add(sim_ms(200), RecoverNodes{2});
    EXPECT_NO_THROW(s.validate());
  }
}

TEST(ScenarioScript, AppendedTimelineMayRecoverEarlierCrashes) {
  // play() credits crashes scheduled by earlier timelines of the same run,
  // so a follow-up script can recover them even though it contains no
  // CrashNodes of its own.
  ChurnSim sim(small_config());
  ScenarioScript first;
  first.add(sim_ms(100), CrashNodes{2});
  sim.play(first);
  sim.run_for(sim_ms(500));

  ScenarioScript second;
  second.add(sim_ms(800), RecoverNodes{2});
  EXPECT_THROW(second.validate(), std::logic_error);  // standalone: invalid
  EXPECT_NO_THROW(sim.play(second));                  // appended: credited
  sim.run_for(sim_ms(2000));
  EXPECT_EQ(sim.counters().recoveries, 2u);

  ScenarioScript third;  // but the credit is spent now
  third.add(sim_ms(3000), RecoverNodes{1});
  EXPECT_THROW(sim.play(third), std::logic_error);
}

TEST(ScenarioScript, PlayRejectsPartitionSideOutsideAddressSpace) {
  ChurnSim sim(small_config());  // a = 4: valid top components are 0..3
  ScenarioScript s;
  s.add(sim_ms(100), Partition{{4}, sim_ms(500)});
  EXPECT_THROW(sim.play(s), std::logic_error);
}

TEST(ScenarioScript, PlayRejectsActionsInThePast) {
  ChurnSim sim(small_config());
  sim.run_for(sim_ms(500));
  ScenarioScript s;
  s.add(sim_ms(100), Join{1});  // valid on its own, but now() is 500ms
  EXPECT_THROW(sim.play(s), std::logic_error);
}

TEST(ScenarioScript, RejectedPlayLeavesNoStateBehind) {
  // A rejected script must not leave phantom crash credit or partially
  // scheduled actions: play() validates everything before mutating.
  ChurnSim sim(small_config());
  sim.run_for(sim_ms(500));
  ScenarioScript bad;
  bad.add(sim_ms(100), CrashNodes{2});  // in the past -> whole script rejected
  EXPECT_THROW(sim.play(bad), std::logic_error);

  ScenarioScript recover;  // must NOT be creditable against the rejected crash
  recover.add(sim_ms(1000), RecoverNodes{2});
  EXPECT_THROW(sim.play(recover), std::logic_error);

  sim.run_for(sim_ms(2000));  // and the rejected crash never fires
  EXPECT_EQ(sim.counters().crashes, 0u);
  EXPECT_EQ(sim.live_count(), 12u);
}

TEST(ScenarioScript, ParseRejectsOverflowingTimeWithLineNumber) {
  try {
    ScenarioScript::parse("at 99999999999999999999ms join 1\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(ChurnConfigValidation, RejectsNonsense) {
  {
    auto c = small_config();
    c.loss = 1.0;  // ε must stay below 1
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = small_config();
    c.initial_fill = 0.0;
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = small_config();
    c.pd = 1.5;
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = small_config();
    c.period = 0;
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = small_config();
    c.latency_min = sim_ms(2);
    c.latency_max = sim_ms(1);
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = small_config();
    c.a = 70000;  // exceeds AddrComponent — would silently truncate
    EXPECT_THROW(c.validate(), std::logic_error);
  }
  {
    auto c = small_config();
    c.a = 300;
    c.d = 40;  // capacity saturates far past any sane engine run
    EXPECT_THROW(c.validate(), std::logic_error);
  }
}

// ---------------------------------------------------------------------------
// Text format
// ---------------------------------------------------------------------------

TEST(ScenarioScript, ParsesTextFormat) {
  const auto s = ScenarioScript::parse(
      "# a comment\n"
      "at 200ms join 2\n"
      "\n"
      "at 1s partition 0,1 heal 1800ms   # trailing comment\n"
      "at 1200ms loss 0.35 for 400ms\n"
      "at 1500ms publish 6 every 25ms\n"
      "at 2s crash 1\n"
      "at 2500ms recover 1\n"
      "at 3s leave 2\n");
  ASSERT_EQ(s.size(), 7u);
  EXPECT_NO_THROW(s.validate());
  EXPECT_TRUE(std::holds_alternative<Join>(s.actions()[0].op));
  EXPECT_EQ(s.actions()[0].at, sim_ms(200));
  const auto& p = std::get<Partition>(s.actions()[1].op);
  EXPECT_EQ(p.side, (std::vector<AddrComponent>{0, 1}));
  EXPECT_EQ(p.heal_at, sim_ms(1800));
  const auto& l = std::get<LossBurst>(s.actions()[2].op);
  EXPECT_DOUBLE_EQ(l.eps, 0.35);
  EXPECT_EQ(l.duration, sim_ms(400));
  const auto& pub = std::get<PublishBurst>(s.actions()[3].op);
  EXPECT_EQ(pub.count, 6u);
  EXPECT_EQ(pub.spacing, sim_ms(25));
}

TEST(ScenarioScript, TextRoundTrip) {
  const auto demo = ScenarioScript::demo();
  const auto reparsed = ScenarioScript::parse(demo.to_string());
  EXPECT_EQ(reparsed.to_string(), demo.to_string());
  ASSERT_EQ(reparsed.size(), demo.size());
}

TEST(ScenarioScript, LossEpsRoundTripsExactly) {
  // to_string must emit enough digits that parsing reproduces the exact
  // double, not a 6-digit approximation.
  ScenarioScript s;
  s.add(sim_ms(100), LossBurst{0.123456789012345, sim_ms(200)});
  const auto reparsed = ScenarioScript::parse(s.to_string());
  const auto& op = std::get<LossBurst>(reparsed.actions()[0].op);
  EXPECT_EQ(op.eps, 0.123456789012345);
}

TEST(ScenarioScript, RejectsOverlappingLossBursts) {
  // An earlier burst's restore would silently truncate a longer concurrent
  // one, so overlap is rejected — both within a script and across play().
  {
    ScenarioScript s;
    s.add(0, LossBurst{0.9, sim_sec(1)});
    s.add(sim_ms(200), LossBurst{0.5, sim_ms(100)});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;  // back-to-back is fine
    s.add(0, LossBurst{0.9, sim_ms(200)});
    s.add(sim_ms(200), LossBurst{0.5, sim_ms(100)});
    EXPECT_NO_THROW(s.validate());
  }
  ChurnSim sim(small_config());
  ScenarioScript first;
  first.add(sim_ms(100), LossBurst{0.9, sim_sec(2)});
  sim.play(first);
  ScenarioScript second;
  second.add(sim_ms(500), LossBurst{0.5, sim_ms(100)});  // inside the first
  EXPECT_THROW(sim.play(second), std::logic_error);
}

TEST(ScenarioScript, BackToBackLossBurstsBothApply) {
  // The second burst's set_loss runs before the first burst's same-time
  // restore (FIFO tie-break); the epoch check must keep the second ε in
  // force for its whole window instead of letting the stale restore win.
  auto config = small_config();
  config.loss = 0.0;
  ChurnSim sim(config);
  ScenarioScript s;
  s.add(sim_ms(200), LossBurst{0.9, sim_ms(200)});
  s.add(sim_ms(400), LossBurst{0.5, sim_ms(200)});
  sim.play(s);
  sim.run_until(sim_ms(300));
  EXPECT_DOUBLE_EQ(sim.runtime().network().config().loss_probability, 0.9);
  sim.run_until(sim_ms(500));
  EXPECT_DOUBLE_EQ(sim.runtime().network().config().loss_probability, 0.5);
  sim.run_until(sim_ms(700));
  EXPECT_DOUBLE_EQ(sim.runtime().network().config().loss_probability, 0.0);
  EXPECT_EQ(sim.counters().loss_bursts, 2u);
  EXPECT_EQ(sim.counters().loss_restores, 1u);  // only the live epoch's
}

TEST(ScenarioScript, RejectsTimelineArithmeticOverflow) {
  {
    ScenarioScript s;  // (count-1) * spacing would overflow SimTime
    s.add(0, PublishBurst{3, sim_us(4611686018427387904LL)});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;  // at + duration would overflow SimTime
    s.add(sim_us(2), LossBurst{0.5,
                               std::numeric_limits<SimTime>::max() - 1});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
}

TEST(ScenarioScript, RejectsTrailingTokens) {
  // Qualifiers the action cannot express must fail loudly, not vanish.
  EXPECT_THROW(ScenarioScript::parse("at 1s crash 3 heal 2s\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s join 2 every 25ms\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s partition 0 heal 2s extra\n"),
               std::invalid_argument);
}

TEST(ScenarioScript, ParseSimTimeSharedSyntax) {
  EXPECT_EQ(parse_sim_time("750us"), sim_us(750));
  EXPECT_EQ(parse_sim_time("500ms"), sim_ms(500));
  EXPECT_EQ(parse_sim_time("2s"), sim_sec(2));
  EXPECT_EQ(parse_sim_time("42"), sim_us(42));
  EXPECT_THROW(parse_sim_time("s"), std::invalid_argument);
  EXPECT_THROW(parse_sim_time("-5ms"), std::invalid_argument);
  EXPECT_THROW(parse_sim_time("10min"), std::invalid_argument);
  // The unit multiplication must not overflow either (UB otherwise).
  EXPECT_THROW(parse_sim_time("9999999999999999999s"),
               std::invalid_argument);
  EXPECT_THROW(parse_sim_time("9223372036854775s"), std::invalid_argument);
}

TEST(ScenarioScript, RejectsCountsWithTrailingGarbage) {
  EXPECT_THROW(ScenarioScript::parse("at 1s crash 3ms\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s partition 4294967296 heal 2s\n"),
               std::invalid_argument);  // would truncate to component 0
}

TEST(ScenarioScript, RejectsMalformedLossNumber) {
  // A typo'd eps must fail loudly, not silently parse as 0.0 (which would
  // invert the tested condition).
  EXPECT_THROW(ScenarioScript::parse("at 100ms loss O.35 for 400ms\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 100ms loss 0.35x for 400ms\n"),
               std::invalid_argument);
}

TEST(ScenarioScript, ParseErrorsCarryLineNumbers) {
  try {
    ScenarioScript::parse("at 100ms join 1\nat 200ms frobnicate 3\n");
    FAIL() << "expected invalid_argument";
  } catch (const std::invalid_argument& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
  EXPECT_THROW(ScenarioScript::parse("at 100xx join 1\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("join 1\n"), std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 100ms partition 0 mend 1s\n"),
               std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Engine behavior
// ---------------------------------------------------------------------------

TEST(ChurnSim, FoundersConvergeAndJoinsComplete) {
  ChurnSim sim(small_config());
  EXPECT_EQ(sim.live_count(), 12u);  // 0.75 * 16
  ScenarioScript s;
  s.add(sim_ms(100), Join{2});
  s.add(sim_ms(250), Join{2});
  sim.play(s);
  sim.run_for(sim_ms(1500));
  EXPECT_EQ(sim.live_count(), 16u);
  EXPECT_EQ(sim.joined_count(), 16u);  // every join completed
  EXPECT_EQ(sim.counters().joins_requested, 4u);
  EXPECT_GT(sim.summary().joins_served, 0u);
}

TEST(ChurnSim, CrashesAreDetectedByNeighbors) {
  ChurnSim sim(small_config());
  ScenarioScript s;
  s.add(sim_ms(300), CrashNodes{2});
  sim.play(s);
  sim.run_for(sim_ms(2500));  // >> suspicion timeout
  EXPECT_EQ(sim.counters().crashes, 2u);
  EXPECT_EQ(sim.live_count(), 10u);
  // Failure detection tombstoned the silent processes somewhere.
  EXPECT_GT(sim.summary().membership_tombstones, 0u);
}

TEST(ChurnSim, PartitionFiltersTrafficAndHeals) {
  ChurnSim sim(small_config());
  ScenarioScript s;
  s.add(sim_ms(200), Partition{{0, 1}, sim_ms(900)});
  sim.play(s);
  sim.run_until(sim_ms(800));
  const auto mid = sim.summary();
  EXPECT_EQ(mid.counters.partitions, 1u);
  EXPECT_EQ(mid.counters.heals, 0u);
  EXPECT_GT(mid.network.filtered, 0u);  // the split actually bites
  EXPECT_EQ(sim.runtime().network().link_filter_count(), 1u);
  sim.run_until(sim_ms(1500));
  const auto end = sim.summary();
  EXPECT_EQ(end.counters.heals, 1u);
  EXPECT_EQ(sim.runtime().network().link_filter_count(), 0u);
  // After the heal, traffic flows again: filtered stops growing.
  const auto filtered_at_heal = end.network.filtered;
  sim.run_for(sim_ms(500));
  EXPECT_EQ(sim.summary().network.filtered, filtered_at_heal);
}

TEST(ChurnSim, LossBurstRaisesAndRestoresLoss) {
  auto config = small_config();
  config.loss = 0.0;
  ChurnSim sim(config);
  ScenarioScript s;
  s.add(sim_ms(200), LossBurst{0.5, sim_ms(400)});
  sim.play(s);
  sim.run_until(sim_ms(400));
  EXPECT_DOUBLE_EQ(sim.runtime().network().config().loss_probability, 0.5);
  EXPECT_GT(sim.summary().network.lost, 0u);
  sim.run_until(sim_ms(1000));
  EXPECT_DOUBLE_EQ(sim.runtime().network().config().loss_probability, 0.0);
  EXPECT_EQ(sim.counters().loss_bursts, 1u);
  EXPECT_EQ(sim.counters().loss_restores, 1u);
}

TEST(ChurnSim, PublishBurstsDeliverToInterestedProcesses) {
  ChurnSim sim(small_config());
  ScenarioScript s;
  s.add(sim_ms(300), PublishBurst{5, sim_ms(20)});
  sim.play(s);
  sim.run_for(sim_ms(2000));
  EXPECT_EQ(sim.counters().published, 5u);
  EXPECT_GT(sim.counters().delivered, 0u);
}

TEST(ChurnSim, RecoveredProcessesRejoin) {
  ChurnSim sim(small_config());
  ScenarioScript s;
  s.add(sim_ms(200), CrashNodes{3});
  s.add(sim_ms(1200), RecoverNodes{2});
  sim.play(s);
  sim.run_for(sim_ms(3000));
  EXPECT_EQ(sim.counters().crashes, 3u);
  EXPECT_EQ(sim.counters().recoveries, 2u);
  EXPECT_EQ(sim.live_count(), 11u);  // 12 - 3 + 2
}

TEST(ChurnSim, DemoScenarioReportsNonzeroChurnCounts) {
  // The acceptance scenario: staggered joins + crash burst + partition/heal
  // + loss spike, all in one run, every counter nonzero.
  ChurnSim sim(small_config(7));
  sim.play(ScenarioScript::demo());
  sim.run_until(sim_ms(3500));
  const auto s = sim.summary();
  EXPECT_GT(s.counters.joins_requested, 0u);
  EXPECT_GT(s.counters.crashes, 0u);
  EXPECT_GT(s.counters.recoveries, 0u);
  EXPECT_GT(s.counters.leaves, 0u);
  EXPECT_EQ(s.counters.partitions, 1u);
  EXPECT_EQ(s.counters.heals, 1u);
  EXPECT_GT(s.counters.published, 0u);
  EXPECT_GT(s.counters.delivered, 0u);
  EXPECT_GT(s.joins_served, 0u);
}

TEST(ChurnSim, JoinersSurviveTheirContactCrashing) {
  // A joiner whose contact crashes before serving the request is stranded
  // on a dead pid; the engine re-targets pending joiners after every crash
  // burst, so the join must still complete.
  auto config = small_config();
  config.initial_fill = 0.5;  // 8 founders, plenty of vacancies
  ChurnSim sim(config);
  ScenarioScript s;
  s.add(sim_ms(200), Join{4});
  s.add(sim_ms(230), CrashNodes{4});  // likely hits at least one contact
  sim.play(s);
  sim.run_for(sim_ms(4000));
  EXPECT_EQ(sim.joined_count(), sim.live_count());
  EXPECT_EQ(sim.live_count(), 8u);  // 8 + 4 - 4
}

TEST(ChurnSim, JoinersSurviveTheirContactLeaving) {
  // Same guarantee when the contact departs gracefully instead of
  // crashing (leave() also ends fail-stop).
  auto config = small_config();
  config.initial_fill = 0.5;
  ChurnSim sim(config);
  ScenarioScript s;
  s.add(sim_ms(200), Join{4});
  s.add(sim_ms(230), Leave{4});
  sim.play(s);
  sim.run_for(sim_ms(4000));
  EXPECT_EQ(sim.joined_count(), sim.live_count());
  EXPECT_EQ(sim.live_count(), 8u);
}

// ---------------------------------------------------------------------------
// Adversarial verbs: parsing, validation, round-trip, engine semantics
// ---------------------------------------------------------------------------

TEST(ScenarioScript, ParsesAdversarialVerbs) {
  const auto s = ScenarioScript::parse(
      "at 100ms latency lognormal 2ms 0.8\n"
      "at 200ms asym 0,1 to 2 heal 1800ms\n"
      "at 300ms flap 0 period 200ms duty 0.4 until 2s\n"
      "at 400ms rack 1,0\n"
      "at 500ms joinstorm 16 over 250ms\n"
      "at 600ms joinstorm 4\n"
      "at 700ms duplicate 0.4 for 300ms\n"
      "at 800ms replay traces/outage.scn\n"
      "at 900ms latency uniform\n");
  ASSERT_EQ(s.size(), 9u);
  const auto& lat = std::get<LatencyProfile>(s.actions()[0].op);
  EXPECT_EQ(lat.median, sim_ms(2));
  EXPECT_DOUBLE_EQ(lat.sigma, 0.8);
  const auto& asym = std::get<AsymPartition>(s.actions()[1].op);
  EXPECT_EQ(asym.from_side, (std::vector<AddrComponent>{0, 1}));
  EXPECT_EQ(asym.to_side, (std::vector<AddrComponent>{2}));
  EXPECT_EQ(asym.heal_at, sim_ms(1800));
  const auto& flap = std::get<Flap>(s.actions()[2].op);
  EXPECT_EQ(flap.side, (std::vector<AddrComponent>{0}));
  EXPECT_EQ(flap.period, sim_ms(200));
  EXPECT_DOUBLE_EQ(flap.duty, 0.4);
  EXPECT_EQ(flap.until, sim_sec(2));
  const auto& rack = std::get<RackFailure>(s.actions()[3].op);
  EXPECT_EQ(rack.prefix, (std::vector<AddrComponent>{1, 0}));
  const auto& storm = std::get<JoinStorm>(s.actions()[4].op);
  EXPECT_EQ(storm.count, 16u);
  EXPECT_EQ(storm.over, sim_ms(250));
  EXPECT_EQ(std::get<JoinStorm>(s.actions()[5].op).over, 0);
  const auto& dup = std::get<DuplicateBurst>(s.actions()[6].op);
  EXPECT_DOUBLE_EQ(dup.prob, 0.4);
  EXPECT_EQ(dup.duration, sim_ms(300));
  EXPECT_EQ(std::get<TraceReplay>(s.actions()[7].op).path,
            "traces/outage.scn");
  const auto& uniform = std::get<LatencyProfile>(s.actions()[8].op);
  EXPECT_EQ(uniform.median, 0);
}

TEST(ScenarioScript, AdversarialVerbsRoundTrip) {
  const char* text =
      "at 100ms latency lognormal 2ms 0.8\n"
      "at 200ms asym 0,1 to 2 heal 1800ms\n"
      "at 300ms flap 0 period 200ms duty 0.4 until 2s\n"
      "at 400ms rack 1,0\n"
      "at 500ms joinstorm 16 over 250ms\n"
      "at 700ms duplicate 0.4 for 300ms\n"
      "at 800ms replay traces/outage.scn\n"
      "at 900ms latency uniform\n";
  const auto s = ScenarioScript::parse(text);
  EXPECT_EQ(ScenarioScript::parse(s.to_string()).to_string(), s.to_string());
}

TEST(ScenarioScript, RejectsMalformedAdversarialVerbs) {
  // Wrong arity / missing keywords.
  EXPECT_THROW(ScenarioScript::parse("at 1s asym 0 heal 2s\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s asym 0 to 1\n"),
               std::invalid_argument);
  EXPECT_THROW(
      ScenarioScript::parse("at 1s flap 0 period 200ms duty 0.4\n"),
      std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s duplicate 0.4\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s latency lognormal 2ms\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s rack\n"),
               std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s replay\n"),
               std::invalid_argument);
  // Malformed numbers must fail loudly, like the loss verb.
  EXPECT_THROW(
      ScenarioScript::parse("at 1s flap 0 period 200ms duty O.4 until 2s\n"),
      std::invalid_argument);
  EXPECT_THROW(ScenarioScript::parse("at 1s duplicate 0.4x for 300ms\n"),
               std::invalid_argument);
}

TEST(ScenarioScript, RejectsAdversarialContractBreaches) {
  {
    ScenarioScript s;  // heal before the cut
    AsymPartition p;
    p.from_side = {0};
    p.to_side = {1};
    p.heal_at = sim_ms(100);
    s.add(sim_ms(500), p);
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;  // duty outside (0, 1)
    Flap f;
    f.side = {0};
    f.duty = 1.0;
    f.until = sim_ms(900);
    s.add(sim_ms(500), f);
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;  // sigma above the lognormal sanity bound
    s.add(sim_ms(100), LatencyProfile{sim_ms(2), 5.0});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;  // overlapping duplicate bursts
    s.add(sim_ms(100), DuplicateBurst{0.5, sim_ms(300)});
    s.add(sim_ms(200), DuplicateBurst{0.5, sim_ms(300)});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
  {
    ScenarioScript s;  // replay path with whitespace can't round-trip
    s.add(sim_ms(100), TraceReplay{"bad path.scn"});
    EXPECT_THROW(s.validate(), std::logic_error);
  }
}

TEST(ChurnSim, RackFailureCrashesExactlyTheZone) {
  auto config = small_config();
  config.initial_fill = 1.0;
  ChurnSim sim(config);
  const std::size_t before = sim.live_count();
  ScenarioScript s;
  RackFailure r;
  r.prefix = {0};
  s.add(sim_ms(200), r);
  sim.play(s);
  sim.run_for(sim_ms(400));
  // a=4, d=2, full fill: the rack under top-level component 0 is 4 wide.
  EXPECT_EQ(sim.counters().rack_failures, 1u);
  EXPECT_EQ(sim.counters().crashes, 4u);
  EXPECT_EQ(sim.live_count(), before - 4);
}

TEST(ChurnSim, JoinStormCompletes) {
  auto config = small_config();
  config.initial_fill = 0.5;
  ChurnSim sim(config);
  ScenarioScript s;
  s.add(sim_ms(200), JoinStorm{6, sim_ms(250)});
  sim.play(s);
  sim.run_for(sim_ms(5000));
  EXPECT_EQ(sim.counters().join_storms, 1u);
  EXPECT_GE(sim.counters().joins_requested, 6u);
  EXPECT_EQ(sim.joined_count(), sim.live_count());
  EXPECT_EQ(sim.live_count(), 14u);  // 8 founders + 6 stormers
}

TEST(ChurnSim, DuplicateBurstRaisesAndRestores) {
  ChurnSim sim(small_config());
  ScenarioScript s;
  s.add(sim_ms(200), DuplicateBurst{0.6, sim_ms(600)});
  s.add(sim_ms(300), PublishBurst{4, sim_ms(30)});
  sim.play(s);
  sim.run_for(sim_ms(2500));
  const auto summary = sim.summary();
  EXPECT_EQ(summary.counters.dup_bursts, 1u);
  EXPECT_EQ(summary.counters.dup_restores, 1u);
  EXPECT_GT(summary.network.duplicated, 0u);
  EXPECT_GT(summary.dup_suppressed, 0u);
  // Exactly-once held anyway.
  EXPECT_LE(summary.counters.delivered,
            summary.counters.expected_deliveries);
}

TEST(ChurnSim, TraceReplayExpandsWithOffset) {
  const std::string path =
      ::testing::TempDir() + "pmc_trace_replay_test.scn";
  {
    std::ofstream out(path);
    out << "at 100ms join 1\n"
        << "at 300ms publish 2 every 10ms\n";
  }
  ChurnSim sim(small_config());
  ScenarioScript s;
  s.add(sim_ms(500), TraceReplay{path});
  sim.play(s);
  sim.run_for(sim_ms(3000));
  // The child timeline runs shifted by the replay's time: join at 600ms,
  // publishes at 800/810ms.
  EXPECT_EQ(sim.counters().joins_requested, 1u);
  EXPECT_EQ(sim.counters().published, 2u);
  EXPECT_EQ(sim.joined_count(), sim.live_count());
  std::remove(path.c_str());
}

TEST(ChurnSim, TraceReplayRejectsMissingAndNestedFiles) {
  {
    ChurnSim sim(small_config());
    ScenarioScript s;
    s.add(sim_ms(500), TraceReplay{"/nonexistent/trace.scn"});
    EXPECT_THROW(sim.play(s), std::logic_error);
  }
  {
    const std::string nested =
        ::testing::TempDir() + "pmc_trace_nested_test.scn";
    std::ofstream(nested) << "at 100ms replay " << nested << "\n";
    ChurnSim sim(small_config());
    ScenarioScript s;
    s.add(sim_ms(500), TraceReplay{nested});
    EXPECT_THROW(sim.play(s), std::logic_error);
    std::remove(nested.c_str());
  }
}

TEST(ChurnSim, WireTranscodeScenarioStillWorks) {
  // Every message of a churn scenario crosses the frozen wire format.
  auto config = small_config();
  config.wire_transcode = true;
  ChurnSim sim(config);
  ScenarioScript s;
  s.add(sim_ms(200), Join{1});
  s.add(sim_ms(400), PublishBurst{3, sim_ms(20)});
  s.add(sim_ms(600), CrashNodes{1});
  sim.play(s);
  sim.run_for(sim_ms(2000));
  EXPECT_EQ(sim.joined_count(), sim.live_count());
  EXPECT_GT(sim.counters().delivered, 0u);
}

}  // namespace
}  // namespace pmc

// Odds and ends: textual rendering used by operators/debuggers, parser
// round-trips through to_string, and small cross-module seams not covered
// by the focused suites.
#include <gtest/gtest.h>

#include <sstream>

#include "filter/parser.hpp"
#include "harness/workload.hpp"
#include "membership/tree.hpp"
#include "sim/time.hpp"

namespace pmc {
namespace {

TEST(Rendering, IntervalToString) {
  EXPECT_EQ(Interval::closed(1.0, 2.0).to_string(), "[1, 2]");
  EXPECT_EQ(Interval::open(1.0, 2.0).to_string(), "(1, 2)");
  EXPECT_EQ(Interval::half_open(0.0, 1.0).to_string(), "[0, 1)");
}

TEST(Rendering, IntervalSetToString) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(3.0, 4.0));
  const auto text = s.to_string();
  EXPECT_NE(text.find("[0, 1]"), std::string::npos);
  EXPECT_NE(text.find("[3, 4]"), std::string::npos);
}

TEST(Rendering, SummaryToString) {
  auto s = InterestSummary::from(Subscription::parse("b > 3"));
  EXPECT_NE(s.to_string().find("b in"), std::string::npos);
  EXPECT_EQ(InterestSummary::from(Subscription()).to_string(), "*");
  EXPECT_EQ(InterestSummary{}.to_string(), "false");
}

TEST(Rendering, ClauseToString) {
  Clause c;
  EXPECT_EQ(c.to_string(), "true");
  c.constrain_numeric("b", Interval::point(2.0));
  c.constrain_string("e", {"Bob"});
  const auto text = c.to_string();
  EXPECT_NE(text.find("b in"), std::string::npos);
  EXPECT_NE(text.find("\"Bob\""), std::string::npos);
}

TEST(Rendering, DepthViewToStringShowsTombstones) {
  Interns interns;
  DepthView v;
  v.bind(interns);
  ViewRow row;
  row.infix = 7;
  row.delegates = {Address::parse("7.0")};
  row.interests = InterestSummary::from(Subscription());
  row.alive = false;
  v.upsert(row);
  EXPECT_NE(v.to_string().find("(gone)"), std::string::npos);
}

TEST(ParserRoundTrip, ToStringParsesBackEquivalently) {
  const char* texts[] = {
      "b == 2",
      "b > 1 && c < 30.0",
      "e == \"Bob\" || e == \"Tom\"",
      "(a == 1 || b == 2) && c >= 0.5",
      "!(b == 2 && c > 1.0)",
  };
  Rng rng(3);
  for (const auto* text : texts) {
    const auto original = Subscription::parse(text);
    const auto reparsed = Subscription::parse(original.to_string());
    for (int trial = 0; trial < 300; ++trial) {
      Event e;
      e.with("a", static_cast<std::int64_t>(rng.next_below(4)))
          .with("b", static_cast<std::int64_t>(rng.next_below(4)))
          .with("c", rng.next_double() * 40.0)
          .with("e", rng.bernoulli(0.5) ? "Bob" : "Tom");
      EXPECT_EQ(reparsed.match(e), original.match(e)) << text;
    }
  }
}

TEST(TreeSeams, ViewForAgreesWithViewAt) {
  Rng rng(5);
  const auto members = uniform_interest_members(
      AddressSpace::regular(3, 3), 0.5, rng);
  TreeConfig tc;
  tc.depth = 3;
  tc.redundancy = 2;
  Interns interns;
  const GroupTree tree(tc, members, interns);
  const auto self = Address::parse("1.2.0");
  for (std::size_t depth = 1; depth <= 3; ++depth) {
    EXPECT_EQ(&tree.view_for(self, depth),
              &tree.view_at(self.prefix(depth - 1)));
  }
  EXPECT_THROW(tree.view_for(self, 0), std::logic_error);
  EXPECT_THROW(tree.view_for(self, 4), std::logic_error);
}

TEST(TreeSeams, SummaryOfUnknownPrefixThrows) {
  Rng rng(6);
  const auto members = uniform_interest_members(
      AddressSpace::regular(2, 2), 1.0, rng);
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 1;
  Interns interns;
  const GroupTree tree(tc, members, interns);
  EXPECT_THROW(tree.summary(Address::parse("9.9").prefix(1)),
               std::logic_error);
  EXPECT_THROW(tree.delegates(Address::parse("9.9").prefix(1)),
               std::logic_error);
}

TEST(TreeSeams, SubscriptionLookupOfMissingMemberThrows) {
  Rng rng(7);
  auto members = uniform_interest_members(
      AddressSpace::regular(2, 2), 1.0, rng);
  members.pop_back();  // 1.1 missing
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 1;
  Interns interns;
  const GroupTree tree(tc, members, interns);
  EXPECT_THROW(tree.subscription(Address::parse("1.1")), std::logic_error);
}

TEST(Contracts, ViolationMessagesAreInformative) {
  try {
    PMC_EXPECTS(1 == 2);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("precondition"), std::string::npos);
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
  }
  try {
    PMC_ENSURES(false);
    FAIL() << "should have thrown";
  } catch (const std::logic_error& e) {
    EXPECT_NE(std::string(e.what()).find("postcondition"),
              std::string::npos);
  }
}

TEST(SimTimeHelpers, UnitsCompose) {
  EXPECT_EQ(sim_ms(1), sim_us(1000));
  EXPECT_EQ(sim_sec(1), sim_ms(1000));
  EXPECT_EQ(sim_sec(2) + sim_ms(500), sim_us(2'500'000));
}

}  // namespace
}  // namespace pmc

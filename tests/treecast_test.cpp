// Deterministic tree multicast (Astrolabe-style baseline): perfect and
// cheap in stable phases, fragile under crashes — the contrast the paper's
// concluding remarks draw against pmcast.
#include <gtest/gtest.h>

#include "baselines/treecast.hpp"

#include "cluster_helpers.hpp"
#include "harness/experiment.hpp"
#include "harness/workload.hpp"

namespace pmc {
namespace {

struct TreecastCluster {
  std::vector<Member> members;
  std::unique_ptr<Interns> interns = std::make_unique<Interns>();
  std::unique_ptr<GroupTree> tree;
  std::unique_ptr<Runtime> runtime;
  std::unique_ptr<TreeViewProvider> views;
  std::vector<ProcessId> directory;  ///< dense AddrId -> pid
  std::vector<std::unique_ptr<TreecastNode>> nodes;

  ProcessId pid_of(const Address& a) const {
    const AddrId id = interns->addrs.find(a);
    return id == kNoAddr ? kNoProcess : directory.at(id);
  }
};

TreecastCluster make_treecast(std::size_t a, std::size_t d, double pd,
                              std::uint64_t seed = 1) {
  TreecastCluster c;
  Rng rng(seed);
  c.members = uniform_interest_members(
      AddressSpace::regular(static_cast<AddrComponent>(a), d), pd, rng);
  TreeConfig tree_config;
  tree_config.depth = d;
  tree_config.redundancy = 2;
  c.tree = std::make_unique<GroupTree>(tree_config, c.members, *c.interns);
  c.views = std::make_unique<TreeViewProvider>(*c.tree);
  c.runtime = std::make_unique<Runtime>(NetworkConfig{}, seed ^ 0x7);
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    const AddrId id = c.interns->addrs.intern(c.members[i].address);
    if (c.directory.size() <= id) c.directory.resize(id + 1, kNoProcess);
    c.directory[id] = static_cast<ProcessId>(i);
  }
  TreecastConfig config;
  config.tree = tree_config;
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    c.nodes.push_back(std::make_unique<TreecastNode>(
        *c.runtime, static_cast<ProcessId>(i), config,
        c.members[i].address, c.members[i].subscription, *c.views,
        [&dir = c.directory](AddrId id) {
          return id < dir.size() ? dir[id] : kNoProcess;
        }));
  }
  return c;
}

TEST(Treecast, StablePhaseDeliversToEveryInterested) {
  // Deterministic: every interested process delivers, no probability.
  auto c = make_treecast(4, 3, 0.5, 2);
  const Event e = make_event_at(0, 0, 0.3);
  c.nodes[10]->multicast(e);
  c.runtime->run_until_idle();
  for (std::size_t i = 0; i < c.nodes.size(); ++i) {
    if (c.members[i].subscription.match(e)) {
      EXPECT_TRUE(c.nodes[i]->has_delivered(e.id())) << i;
    } else {
      EXPECT_FALSE(c.nodes[i]->has_delivered(e.id())) << i;
    }
  }
}

TEST(Treecast, MessageCostNearInterestedCount) {
  auto c = make_treecast(5, 2, 0.4, 3);
  const Event e = make_event_at(0, 0, 0.7);
  std::size_t interested = 0;
  for (const auto& m : c.members)
    if (m.subscription.match(e)) ++interested;
  c.nodes[0]->multicast(e);
  c.runtime->run_until_idle();
  const auto sent = c.runtime->network().counters().sent;
  // One message per interested process plus at most one per subgroup.
  EXPECT_LE(sent, interested + 5 + 1);
}

TEST(Treecast, SingleCrashedForwarderSeversSubtree) {
  // The fragility: crash subgroup 2's first delegate and every interested
  // process in subtree 2 is lost — no redundancy, no retry.
  auto c = make_treecast(4, 2, 1.0, 4);
  c.nodes[c.pid_of(Address::parse("2.0"))]->crash();
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->multicast(e);
  c.runtime->run_until_idle();
  for (const auto& n : c.nodes) {
    if (!n->alive()) continue;
    if (n->address().component(0) == 2) {
      EXPECT_FALSE(n->has_received(e.id())) << n->address().to_string();
    } else {
      EXPECT_TRUE(n->has_delivered(e.id())) << n->address().to_string();
    }
  }
}

TEST(Treecast, PmcastMoreRobustUnderCrashes) {
  // The paper's qualitative claim, quantified. Treecast forwards complete
  // within milliseconds, so mid-run crash injection cannot touch it; the
  // "unstable phase" is modeled as processes already crashed (but not yet
  // excluded from anyone's views) when the event is published. pmcast's
  // R-redundant random gossip routes around them; treecast's single
  // deterministic forwarder per subgroup does not.
  double det_delivery = 0.0, gossip_delivery = 0.0;
  const std::size_t trials = 10;
  for (std::uint64_t seed = 0; seed < trials; ++seed) {
    Rng crash_rng(500 + seed);
    const auto victims = crash_rng.sample_without_replacement(64, 10);

    // Deterministic treecast.
    {
      auto c = make_treecast(8, 2, 0.8, 900 + seed);
      for (const auto v : victims) c.nodes[v]->crash();
      const Event e = make_event_at(0, seed, 0.5);
      std::size_t publisher = 0;
      while (!c.nodes[publisher]->alive()) ++publisher;
      c.nodes[publisher]->multicast(e);
      c.runtime->run_until_idle();
      std::size_t interested = 0, delivered = 0;
      for (std::size_t i = 0; i < c.nodes.size(); ++i) {
        if (!c.nodes[i]->alive() || !c.members[i].subscription.match(e))
          continue;
        ++interested;
        if (c.nodes[i]->has_delivered(e.id())) ++delivered;
      }
      det_delivery += interested == 0 ? 1.0
                                      : static_cast<double>(delivered) /
                                            static_cast<double>(interested);
    }

    // pmcast with the same population shape and victims.
    {
      PmcastConfig pc = testing::default_config();
      auto c = testing::make_cluster(8, 2, 3, 0.8, pc, 0.0, 900 + seed);
      for (const auto v : victims) c.nodes[v]->crash();
      const Event e = make_event_at(0, seed, 0.5);
      std::size_t publisher = 0;
      while (!c.nodes[publisher]->alive()) ++publisher;
      c.nodes[publisher]->pmcast(e);
      c.runtime->run_until_idle();
      std::size_t interested = 0, delivered = 0;
      for (std::size_t i = 0; i < c.nodes.size(); ++i) {
        if (!c.nodes[i]->alive() || !c.members[i].subscription.match(e))
          continue;
        ++interested;
        if (c.nodes[i]->has_delivered(e.id())) ++delivered;
      }
      gossip_delivery += interested == 0
                             ? 1.0
                             : static_cast<double>(delivered) /
                                   static_cast<double>(interested);
    }
  }
  EXPECT_GT(gossip_delivery, det_delivery);

  // ...and in the stable phase the deterministic tree is cheaper.
  ExperimentConfig stable;
  stable.a = 8;
  stable.d = 2;
  stable.r = 3;
  stable.fanout = 3;
  stable.pd = 0.8;
  stable.loss = 0.0;
  stable.runs = 10;
  stable.seed = 5;
  const auto det_stable = run_treecast_experiment(stable);
  const auto gossip_stable = run_pmcast_experiment(stable);
  EXPECT_LT(det_stable.messages_per_process.mean(),
            gossip_stable.messages_per_process.mean());
  EXPECT_GT(det_stable.delivery.mean(), 0.99);
}

TEST(Treecast, DuplicateMulticastIgnored) {
  auto c = make_treecast(3, 2, 1.0, 6);
  const Event e = make_event_at(0, 9, 0.5);
  c.nodes[0]->multicast(e);
  c.runtime->run_until_idle();
  const auto sent = c.runtime->network().counters().sent;
  c.nodes[1]->multicast(e);  // same id from elsewhere
  c.runtime->run_until_idle();
  // Receivers have seen the id; only node 1's own forwards add traffic.
  EXPECT_LE(c.runtime->network().counters().sent, sent + 9);
}

TEST(Treecast, UninterestedSubtreesNeverTouched) {
  auto c = make_treecast(4, 2, 0.25, 7);
  const Event e = make_event_at(0, 0, 0.9);
  c.nodes[0]->multicast(e);
  c.runtime->run_until_idle();
  for (std::size_t i = 1; i < c.nodes.size(); ++i) {
    // Treecast sends only to delegates of interested rows and interested
    // neighbors: an uninterested process receives only if it is the first
    // delegate of a subgroup containing interest.
    if (c.members[i].subscription.match(e)) continue;
    const auto prefix = c.members[i].address.prefix(1);
    const bool forwarder =
        c.tree->delegates(prefix).front() == c.members[i].address &&
        c.tree->summary(prefix).match(e);
    if (!forwarder) {
      EXPECT_FALSE(c.nodes[i]->has_received(e.id()))
          << c.members[i].address.to_string();
    }
  }
}

}  // namespace
}  // namespace pmc

// Membership piggybacking on event gossip (paper Sec. 2.3): membership
// rows ride on GossipMsg via the PmcastNode piggyback hooks wired into
// SyncNode, so view updates spread even when dedicated membership gossip
// is scarce.
#include <gtest/gtest.h>

#include <memory>
#include <unordered_map>

#include "harness/workload.hpp"
#include "membership/sync.hpp"
#include "pmcast/node.hpp"
#include "wire/messages.hpp"

namespace pmc {
namespace {

struct Stack {
  std::vector<Member> members;
  std::unique_ptr<Interns> interns = std::make_unique<Interns>();
  std::unique_ptr<GroupTree> tree;
  std::unique_ptr<Runtime> runtime;
  std::vector<ProcessId> sync_dir;  ///< dense AddrId -> sync pid
  std::vector<ProcessId> pm_dir;    ///< dense AddrId -> pmcast pid
  std::vector<std::unique_ptr<SyncNode>> sync_nodes;
  std::vector<std::unique_ptr<LocalViewProvider>> providers;
  std::vector<std::unique_ptr<PmcastNode>> pm_nodes;
};

/// Builds combined SyncNode+PmcastNode processes with piggybacking wired,
/// with the dedicated membership gossip slowed to once per `sync_period`.
Stack make_stack(SimTime sync_period, bool piggyback,
                 std::uint64_t seed = 5) {
  Stack s;
  Rng rng(seed);
  const auto space = AddressSpace::regular(3, 2);
  s.members = uniform_interest_members(space, 1.0, rng);
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 2;
  s.tree = std::make_unique<GroupTree>(tc, s.members, *s.interns);
  s.runtime = std::make_unique<Runtime>(NetworkConfig{}, seed ^ 0x42);

  for (std::size_t i = 0; i < s.members.size(); ++i) {
    const AddrId id = s.interns->addrs.intern(s.members[i].address);
    if (s.sync_dir.size() <= id) {
      s.sync_dir.resize(id + 1, kNoProcess);
      s.pm_dir.resize(id + 1, kNoProcess);
    }
    s.sync_dir[id] = static_cast<ProcessId>(i);
    s.pm_dir[id] = static_cast<ProcessId>(i + 100);
  }
  SyncConfig sc;
  sc.tree = tc;
  sc.gossip_period = sync_period;
  sc.suspicion_timeout = sync_period * 100;  // irrelevant here
  for (std::size_t i = 0; i < s.members.size(); ++i) {
    s.sync_nodes.push_back(std::make_unique<SyncNode>(
        *s.runtime, static_cast<ProcessId>(i), sc,
        s.tree->materialize_view(s.members[i].address),
        s.members[i].subscription));
    s.sync_nodes.back()->set_directory([&dir = s.sync_dir](AddrId id) {
      return id < dir.size() ? dir[id] : kNoProcess;
    });
  }
  PmcastConfig pc;
  pc.tree = tc;
  pc.fanout = 3;
  for (std::size_t i = 0; i < s.members.size(); ++i) {
    s.providers.push_back(
        std::make_unique<LocalViewProvider>(s.sync_nodes[i]->view()));
    s.pm_nodes.push_back(std::make_unique<PmcastNode>(
        *s.runtime, static_cast<ProcessId>(i + 100), pc,
        s.members[i].address, s.members[i].subscription, *s.providers[i],
        [&dir = s.pm_dir](AddrId id) {
          return id < dir.size() ? dir[id] : kNoProcess;
        }));
    if (piggyback) {
      SyncNode* sync = s.sync_nodes[i].get();
      s.pm_nodes.back()->set_piggyback(
          [sync](AddrId target) { return sync->rows_to_share(target); },
          [sync](const Address& sender, const std::vector<DepthRow>& rows) {
            sync->absorb_rows(sender, rows);
          });
    }
  }
  return s;
}

TEST(Piggyback, GossipCarriesRows) {
  auto s = make_stack(sim_sec(100), /*piggyback=*/true);
  // Intercept a gossip message and verify rows ride along.
  bool saw_piggyback = false;
  s.runtime->network().set_transcoder([&](const MessagePtr& msg) {
    if (const auto* gossip = dynamic_cast<const GossipMsg*>(msg.get())) {
      if (!gossip->piggyback.empty()) saw_piggyback = true;
    }
    return msg;
  });
  s.pm_nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  s.runtime->run_for(sim_sec(5));
  EXPECT_TRUE(saw_piggyback);
}

TEST(Piggyback, SpreadsMembershipWithoutDedicatedGossip) {
  // Dedicated membership gossip effectively disabled (100 s period); a
  // local row bump at one process must still reach its neighbors by
  // riding on event gossip.
  auto s = make_stack(sim_sec(100), /*piggyback=*/true);

  // Simulate a local membership change: node 0 (address 0.0) tombstones
  // its neighbor 0.2 in its own view.
  {
    auto& view =
        const_cast<MembershipView&>(s.sync_nodes[0]->view());
    auto& leaf = view.view(2);
    const std::size_t i = leaf.find_index(2);
    ASSERT_NE(i, DepthView::npos);
    ViewRow tomb = leaf.materialize(i);
    tomb.alive = false;
    tomb.version += 1000;
    leaf.upsert(tomb);
  }

  // A few events published by node 0 spread the row to subgroup peers.
  for (std::uint64_t i = 0; i < 5; ++i) {
    s.pm_nodes[0]->pmcast(make_event_at(0, i, 0.5));
    s.runtime->run_for(sim_sec(3));
  }

  const auto& leaf = s.sync_nodes[1]->view().view(2);
  const std::size_t i = leaf.find_index(2);
  ASSERT_NE(i, DepthView::npos);
  EXPECT_FALSE(leaf.alive(i)) << "piggybacked tombstone did not arrive";
}

TEST(Piggyback, NoHooksNoRows) {
  auto s = make_stack(sim_sec(100), /*piggyback=*/false);
  bool saw_piggyback = false;
  s.runtime->network().set_transcoder([&](const MessagePtr& msg) {
    if (const auto* gossip = dynamic_cast<const GossipMsg*>(msg.get())) {
      if (!gossip->piggyback.empty()) saw_piggyback = true;
    }
    return msg;
  });
  s.pm_nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  s.runtime->run_for(sim_sec(5));
  EXPECT_FALSE(saw_piggyback);
}

TEST(Piggyback, SurvivesWireRoundTrip) {
  auto s = make_stack(sim_sec(100), /*piggyback=*/true);
  s.runtime->network().set_transcoder([](const MessagePtr& msg) {
    return wire::decode_message(wire::encode_message(*msg));
  });
  s.pm_nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  s.runtime->run_for(sim_sec(5));
  std::size_t delivered = 0;
  for (const auto& n : s.pm_nodes)
    if (n->has_delivered(EventId{0, 0})) ++delivered;
  EXPECT_EQ(delivered, s.pm_nodes.size());
}

}  // namespace
}  // namespace pmc

// Tests for the paper's Sec. 6 extension mechanisms (leaf flooding, root
// filter coarsening, agreement-before-exclusion) and the Eq. 16/17
// distribution-level analysis.
#include <gtest/gtest.h>

#include <numeric>

#include "analysis/tree_analysis.hpp"
#include "cluster_helpers.hpp"
#include "membership/sync.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

// --- Leaf flooding ---------------------------------------------------------

TEST(LeafFlood, ActivatesAtHighDensity) {
  PmcastConfig config = default_config();
  config.leaf_flood_density = 0.9;
  auto c = make_cluster(4, 2, 2, /*pd=*/1.0, config, 0.0, 3);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::uint64_t floods = 0;
  std::size_t delivered = 0;
  for (const auto& n : c.nodes) {
    floods += n.get()->stats().leaf_floods;
    if (n->has_delivered(e.id())) ++delivered;
  }
  EXPECT_GT(floods, 0u);
  EXPECT_EQ(delivered, c.nodes.size());  // flood is deterministic per group
}

TEST(LeafFlood, InactiveBelowDensity) {
  PmcastConfig config = default_config();
  config.leaf_flood_density = 0.9;
  auto c = make_cluster(4, 2, 2, /*pd=*/0.3, config, 0.0, 4);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  std::uint64_t floods = 0;
  for (const auto& n : c.nodes) floods += n->stats().leaf_floods;
  EXPECT_EQ(floods, 0u);
}

TEST(LeafFlood, DisabledByDefault) {
  auto c = make_cluster(4, 2, 2, 1.0, default_config(), 0.0, 5);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  std::uint64_t floods = 0;
  for (const auto& n : c.nodes) floods += n->stats().leaf_floods;
  EXPECT_EQ(floods, 0u);
}

TEST(LeafFlood, FloodedReceiversDoNotRegossip) {
  // The flood carries GossipMsg::no_regossip: receivers deliver (and
  // retain for recovery) without ever re-buffering the event for gossip,
  // so total messages stay close to one per interested process per
  // subgroup entry.
  PmcastConfig flood_config = default_config();
  flood_config.leaf_flood_density = 0.9;
  auto with_flood = make_cluster(5, 2, 2, 1.0, flood_config, 0.0, 6);
  with_flood.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  with_flood.runtime->run_until_idle();

  auto without = make_cluster(5, 2, 2, 1.0, default_config(), 0.0, 6);
  without.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  without.runtime->run_until_idle();

  EXPECT_LT(with_flood.runtime->network().counters().sent,
            without.runtime->network().counters().sent);
}

// --- Root filter coarsening --------------------------------------------------

std::vector<Member> two_attr_members() {
  // Subscriptions with disjoint (b, u)-boxes: coarsening projects the boxes,
  // so the coarse tree over-approximates but must never lose a match.
  std::vector<Member> members;
  const auto space = AddressSpace::regular(4, 2);
  std::size_t i = 0;
  for (const auto& addr : space.enumerate()) {
    const double lo = 0.06 * static_cast<double>(i);
    members.push_back(Member{
        addr, Subscription::parse(
                  "b == " + std::to_string(i % 5) + " && u >= " +
                  std::to_string(lo) + " && u < " + std::to_string(lo + 0.05))});
    ++i;
  }
  return members;
}

TEST(Coarsening, RowsNearRootGetSimpler) {
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 2;
  Interns exact_interns;
  const GroupTree exact(tc, two_attr_members(), exact_interns);
  GroupTreeOptions opts;
  opts.coarsen_depth_leq = 1;
  Interns coarse_interns;
  const GroupTree coarse(tc, two_attr_members(), coarse_interns, opts);
  std::size_t exact_complexity = 0, coarse_complexity = 0;
  const auto& exact_root = exact.view_at(Prefix::root());
  for (std::size_t i = 0; i < exact_root.size(); ++i)
    exact_complexity += exact_root.interests(i).complexity();
  const auto& coarse_root = coarse.view_at(Prefix::root());
  for (std::size_t i = 0; i < coarse_root.size(); ++i)
    coarse_complexity += coarse_root.interests(i).complexity();
  EXPECT_LT(coarse_complexity, exact_complexity);
}

TEST(Coarsening, NeverLosesAnInterestedProcess) {
  const auto members = two_attr_members();
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 2;
  GroupTreeOptions opts;
  opts.coarsen_depth_leq = 1;
  Interns interns;
  const GroupTree coarse(tc, members, interns, opts);
  Rng rng(8);
  for (int trial = 0; trial < 300; ++trial) {
    Event e;
    e.with("b", static_cast<std::int64_t>(rng.next_below(6)))
        .with("u", rng.next_double());
    for (const auto& m : members) {
      if (!m.subscription.match(e)) continue;
      // The root row covering this member must still match.
      const auto& root = coarse.view_at(Prefix::root());
      const std::size_t row = root.find_index(m.address.component(0));
      ASSERT_NE(row, DepthView::npos);
      EXPECT_TRUE(root.interests(row).match(e));
    }
  }
}

TEST(Coarsening, DeliveryPreservedEndToEnd) {
  // A single interested destination reached through coarsened root rows.
  // The path is probabilistic (one interested subtree among four), so the
  // assertion aggregates over several simulation seeds.
  const auto members = two_attr_members();
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 2;
  GroupTreeOptions opts;
  opts.coarsen_depth_leq = 1;
  Interns interns;
  const GroupTree tree(tc, members, interns, opts);
  const TreeViewProvider views(tree);

  std::size_t successes = 0;
  const std::size_t attempts = 8;
  for (std::uint64_t seed = 0; seed < attempts; ++seed) {
    Runtime rt(NetworkConfig{}, 10 + seed);
    std::vector<ProcessId> dir;
    for (std::size_t i = 0; i < members.size(); ++i) {
      const AddrId id = interns.addrs.intern(members[i].address);
      if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
      dir[id] = static_cast<ProcessId>(i);
    }
    PmcastConfig config = default_config();
    config.tree = tc;
    config.fanout = 4;
    // A single interested destination is exactly the small-audience case
    // where the untuned round bound collapses to zero (Sec. 5.1); the
    // h-tuning keeps the event alive long enough to reach it.
    config.tuning_threshold = 3;
    std::vector<std::unique_ptr<PmcastNode>> nodes;
    for (std::size_t i = 0; i < members.size(); ++i)
      nodes.push_back(std::make_unique<PmcastNode>(
          rt, static_cast<ProcessId>(i), config, members[i].address,
          members[i].subscription, views, [&dir](AddrId id) {
            return id < dir.size() ? dir[id] : kNoProcess;
          }));
    // Event matching member index 3 (b == 3, u in [0.18, 0.23)).
    Event e(EventId{0, seed});
    e.with("b", 3).with("u", 0.2);
    nodes[9]->pmcast(e);
    rt.run_until_idle();
    if (nodes[3]->has_delivered(e.id())) ++successes;
  }
  EXPECT_GE(successes, attempts - 2);
}

// --- Agreement before exclusion ----------------------------------------------

struct SyncPair {
  std::vector<Member> members;
  std::unique_ptr<Interns> interns = std::make_unique<Interns>();
  std::unique_ptr<GroupTree> tree;
  std::unique_ptr<Runtime> runtime;
  std::vector<ProcessId> directory;  ///< dense AddrId -> pid
  std::vector<std::unique_ptr<SyncNode>> nodes;
};

SyncPair make_sync(bool confirm, std::uint64_t seed) {
  SyncPair c;
  Rng rng(seed);
  const auto space = AddressSpace::regular(4, 2);
  c.members = uniform_interest_members(space, 0.5, rng);
  SyncConfig config;
  config.tree.depth = 2;
  config.tree.redundancy = 2;
  config.gossip_period = sim_ms(50);
  config.suspicion_timeout = sim_ms(400);
  config.confirm_suspicion = confirm;
  c.tree = std::make_unique<GroupTree>(config.tree, c.members, *c.interns);
  c.runtime = std::make_unique<Runtime>(NetworkConfig{}, seed ^ 0x99);
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    const AddrId id = c.interns->addrs.intern(c.members[i].address);
    if (c.directory.size() <= id) c.directory.resize(id + 1, kNoProcess);
    c.directory[id] = static_cast<ProcessId>(i);
  }
  for (std::size_t i = 0; i < c.members.size(); ++i) {
    c.nodes.push_back(std::make_unique<SyncNode>(
        *c.runtime, static_cast<ProcessId>(i), config,
        c.tree->materialize_view(c.members[i].address),
        c.members[i].subscription));
    c.nodes.back()->set_directory([&dir = c.directory](AddrId id) {
      return id < dir.size() ? dir[id] : kNoProcess;
    });
  }
  return c;
}

TEST(SuspicionConfirmation, RealCrashStillDetected) {
  auto c = make_sync(/*confirm=*/true, 21);
  c.runtime->run_for(sim_ms(300));
  c.nodes[1]->crash();  // 0.1
  c.runtime->run_for(sim_ms(4000));
  std::size_t tombstoned = 0;
  for (const auto& n : c.nodes) {
    if (!n->alive() || n->address().component(0) != 0) continue;
    const auto& leaf = n->view().view(2);
    const std::size_t row = leaf.find_index(1);
    if (row != DepthView::npos && !leaf.alive(row)) ++tombstoned;
  }
  EXPECT_GE(tombstoned, 2u);
}

TEST(SuspicionConfirmation, OneSidedSilenceDoesNotExclude) {
  // Drop only 0.1 -> 0.0 traffic: without confirmation 0.0 falsely excludes
  // 0.1; with confirmation it asks 0.2/0.3, which still hear from 0.1.
  const auto run = [](bool confirm) {
    auto c = make_sync(confirm, 22);
    const ProcessId victim = 1;   // address 0.1
    const ProcessId observer = 0;  // address 0.0
    c.runtime->network().set_link_filter(
        [victim, observer](ProcessId from, ProcessId to) {
          return !(from == victim && to == observer);
        });
    c.runtime->run_for(sim_ms(4000));
    const auto& leaf = c.nodes[observer]->view().view(2);
    const std::size_t row = leaf.find_index(1);
    return row != DepthView::npos && leaf.alive(row);
  };
  EXPECT_TRUE(run(true));    // confirmation saves the healthy process
  EXPECT_FALSE(run(false));  // unilateral exclusion fires
}

// --- Eq. 16/17 distribution --------------------------------------------------

TEST(TreeDistribution, NormalizedPerDepth) {
  TreeAnalysisParams p;
  p.a = 5;
  p.d = 3;
  p.r = 2;
  p.fanout = 3;
  p.pd = 0.4;
  const auto dists = tree_infection_distribution(p);
  ASSERT_EQ(dists.size(), 3u);
  for (const auto& dist : dists) {
    const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (const auto v : dist) EXPECT_GE(v, -1e-12);
  }
}

TEST(TreeDistribution, ExpectationMatchesProductFormula) {
  TreeAnalysisParams p;
  p.a = 4;
  p.d = 2;
  p.r = 2;
  p.fanout = 3;
  p.pd = 0.6;
  const auto base = analyze_tree(p);
  const auto dists = tree_infection_distribution(p);
  for (std::size_t i = 0; i < dists.size(); ++i) {
    double mean = 0.0;
    for (std::size_t k = 0; k < dists[i].size(); ++k)
      mean += static_cast<double>(k) * dists[i][k];
    // The distribution rounds the per-parent child count to an integer, so
    // allow a rounding-induced band around the closed-form expectation.
    EXPECT_NEAR(mean, base.depths[i].expected_gi,
                0.15 * std::max(1.0, base.depths[i].expected_gi));
  }
}

TEST(TreeDistribution, StateSpaceGuard) {
  TreeAnalysisParams p;
  p.a = 40;
  p.d = 3;
  p.r = 3;
  p.pd = 0.9;
  EXPECT_THROW(tree_infection_distribution(p, /*max_states=*/64),
               std::logic_error);
}

TEST(TreeDistribution, FullInterestConcentratesHigh) {
  TreeAnalysisParams p;
  p.a = 4;
  p.d = 2;
  p.r = 2;
  p.fanout = 4;
  p.pd = 1.0;
  const auto dists = tree_infection_distribution(p);
  const auto& leaf = dists.back();
  // Mass should concentrate near full infection (16 processes).
  double tail = 0.0;
  for (std::size_t k = 12; k < leaf.size(); ++k) tail += leaf[k];
  EXPECT_GT(tail, 0.8);
}

}  // namespace
}  // namespace pmc

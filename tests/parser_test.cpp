#include "filter/parser.hpp"

#include <gtest/gtest.h>

#include "filter/subscription.hpp"

namespace pmc {
namespace {

Event fig2_event() {
  // An event in the style of the paper's Fig. 2 attribute space.
  Event e;
  e.with("b", 2).with("c", 41.5).with("e", "Bob").with("z", 20000);
  return e;
}

TEST(Parser, SimpleComparison) {
  EXPECT_TRUE(Subscription::parse("b == 2").match(fig2_event()));
  EXPECT_FALSE(Subscription::parse("b == 3").match(fig2_event()));
}

TEST(Parser, SingleEqualsAlias) {
  EXPECT_TRUE(Subscription::parse("b = 2").match(fig2_event()));
}

TEST(Parser, AllOperators) {
  const auto e = fig2_event();
  EXPECT_TRUE(Subscription::parse("b != 3").match(e));
  EXPECT_TRUE(Subscription::parse("b < 3").match(e));
  EXPECT_TRUE(Subscription::parse("b <= 2").match(e));
  EXPECT_TRUE(Subscription::parse("b > 1").match(e));
  EXPECT_TRUE(Subscription::parse("b >= 2").match(e));
}

TEST(Parser, FloatLiterals) {
  const auto e = fig2_event();
  EXPECT_TRUE(Subscription::parse("c > 40.0").match(e));
  EXPECT_TRUE(Subscription::parse("c >= 35.997").match(e));
  EXPECT_TRUE(Subscription::parse("c < 1e3").match(e));
  EXPECT_FALSE(Subscription::parse("c < 4.15e1").match(e));
}

TEST(Parser, NegativeNumbers) {
  Event e;
  e.with("t", -5);
  EXPECT_TRUE(Subscription::parse("t == -5").match(e));
  EXPECT_TRUE(Subscription::parse("t > -10").match(e));
}

TEST(Parser, StringLiterals) {
  const auto e = fig2_event();
  EXPECT_TRUE(Subscription::parse("e == \"Bob\"").match(e));
  EXPECT_FALSE(Subscription::parse("e == \"Tom\"").match(e));
}

TEST(Parser, StringEscapes) {
  Event e;
  e.with("s", "a\"b");
  EXPECT_TRUE(Subscription::parse("s == \"a\\\"b\"").match(e));
}

TEST(Parser, PaperStyleConjunction) {
  // Fig. 2, depth-4 row 19: "b > 1, 20.0 < c < 30.0, z <= 50000".
  const auto sub =
      Subscription::parse("b > 1 && 20.0 < c && c < 30.0 && z <= 50000");
  Event hit;
  hit.with("b", 2).with("c", 25.0).with("z", 1000);
  EXPECT_TRUE(sub.match(hit));
  Event miss = hit;
  miss.with("c", 31.0);
  EXPECT_FALSE(sub.match(miss));
}

TEST(Parser, ChainedComparison) {
  const auto sub = Subscription::parse("20.0 < c < 30.0");
  Event in;
  in.with("c", 25.0);
  Event out;
  out.with("c", 30.0);
  EXPECT_TRUE(sub.match(in));
  EXPECT_FALSE(sub.match(out));
}

TEST(Parser, MirroredLiteralOnLeft) {
  const auto sub = Subscription::parse("10.0 < c");
  Event e;
  e.with("c", 10.5);
  EXPECT_TRUE(sub.match(e));
  e.with("c", 9.0);
  EXPECT_FALSE(sub.match(e));
}

TEST(Parser, DisjunctionOfStrings) {
  // Fig. 2, depth-2 row 18: e = "Bob" ∨ "Tom".
  const auto sub =
      Subscription::parse("e == \"Bob\" || e == \"Tom\"");
  EXPECT_TRUE(sub.match(fig2_event()));
  Event tom;
  tom.with("e", "Tom");
  EXPECT_TRUE(sub.match(tom));
  Event ann;
  ann.with("e", "Ann");
  EXPECT_FALSE(sub.match(ann));
}

TEST(Parser, PrecedenceAndOverOr) {
  // a==1 || a==2 && b==3 parses as a==1 || (a==2 && b==3).
  const auto sub = Subscription::parse("a == 1 || a == 2 && b == 3");
  Event a1;
  a1.with("a", 1);
  EXPECT_TRUE(sub.match(a1));
  Event a2_no_b;
  a2_no_b.with("a", 2);
  EXPECT_FALSE(sub.match(a2_no_b));
  Event a2_b3;
  a2_b3.with("a", 2).with("b", 3);
  EXPECT_TRUE(sub.match(a2_b3));
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto sub = Subscription::parse("(a == 1 || a == 2) && b == 3");
  Event a1_b3;
  a1_b3.with("a", 1).with("b", 3);
  EXPECT_TRUE(sub.match(a1_b3));
  Event a1_only;
  a1_only.with("a", 1);
  EXPECT_FALSE(sub.match(a1_only));
}

TEST(Parser, Negation) {
  const auto sub = Subscription::parse("!(b == 2)");
  EXPECT_FALSE(sub.match(fig2_event()));
  Event other;
  other.with("b", 3);
  EXPECT_TRUE(sub.match(other));
}

TEST(Parser, BangEqualsVersusNotExpression) {
  const auto a = Subscription::parse("b != 2");
  const auto b = Subscription::parse("!(b = 2)");
  Event e3;
  e3.with("b", 3);
  EXPECT_TRUE(a.match(e3));
  EXPECT_TRUE(b.match(e3));
}

TEST(Parser, TrueFalseKeywords) {
  EXPECT_TRUE(Subscription::parse("true").match(Event{}));
  EXPECT_FALSE(Subscription::parse("false").match(Event{}));
  EXPECT_TRUE(Subscription::parse("true").is_wildcard());
}

TEST(Parser, WhitespaceTolerant) {
  EXPECT_TRUE(
      Subscription::parse("  b\t==   2  \n&& c>40.0 ").match(fig2_event()));
}

TEST(Parser, ErrorsThrow) {
  EXPECT_THROW(Subscription::parse(""), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b =="), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b == 2 &&"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("(b == 2"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b == 2 extra"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b @ 2"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b & 2"), std::invalid_argument);
}

TEST(Parser, AttributeToAttributeRejected) {
  EXPECT_THROW(Subscription::parse("a == b"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("1 == 2"), std::invalid_argument);
}

TEST(Parser, Fig2DepthFourRows) {
  // Every interest row of the paper's Fig. 2 depth-4 table parses.
  const char* rows[] = {
      "b == 2 && c > 40.0 && z == 20000",
      "b == 5 && c > 53.5",
      "b > 1 && 20.0 < c && c < 30.0 && z <= 50000",
      "b > 0 && c > 20.0",
      "b == 4 && 2000 < z && z < 30000",
      "b == 3 && c >= 35.997",
      "b == 2",
  };
  for (const auto* row : rows) EXPECT_NO_THROW(Subscription::parse(row));
}

}  // namespace
}  // namespace pmc

#include "filter/parser.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "filter/subscription.hpp"

namespace pmc {
namespace {

Event fig2_event() {
  // An event in the style of the paper's Fig. 2 attribute space.
  Event e;
  e.with("b", 2).with("c", 41.5).with("e", "Bob").with("z", 20000);
  return e;
}

TEST(Parser, SimpleComparison) {
  EXPECT_TRUE(Subscription::parse("b == 2").match(fig2_event()));
  EXPECT_FALSE(Subscription::parse("b == 3").match(fig2_event()));
}

TEST(Parser, SingleEqualsAlias) {
  EXPECT_TRUE(Subscription::parse("b = 2").match(fig2_event()));
}

TEST(Parser, AllOperators) {
  const auto e = fig2_event();
  EXPECT_TRUE(Subscription::parse("b != 3").match(e));
  EXPECT_TRUE(Subscription::parse("b < 3").match(e));
  EXPECT_TRUE(Subscription::parse("b <= 2").match(e));
  EXPECT_TRUE(Subscription::parse("b > 1").match(e));
  EXPECT_TRUE(Subscription::parse("b >= 2").match(e));
}

TEST(Parser, FloatLiterals) {
  const auto e = fig2_event();
  EXPECT_TRUE(Subscription::parse("c > 40.0").match(e));
  EXPECT_TRUE(Subscription::parse("c >= 35.997").match(e));
  EXPECT_TRUE(Subscription::parse("c < 1e3").match(e));
  EXPECT_FALSE(Subscription::parse("c < 4.15e1").match(e));
}

TEST(Parser, NegativeNumbers) {
  Event e;
  e.with("t", -5);
  EXPECT_TRUE(Subscription::parse("t == -5").match(e));
  EXPECT_TRUE(Subscription::parse("t > -10").match(e));
}

TEST(Parser, StringLiterals) {
  const auto e = fig2_event();
  EXPECT_TRUE(Subscription::parse("e == \"Bob\"").match(e));
  EXPECT_FALSE(Subscription::parse("e == \"Tom\"").match(e));
}

TEST(Parser, StringEscapes) {
  Event e;
  e.with("s", "a\"b");
  EXPECT_TRUE(Subscription::parse("s == \"a\\\"b\"").match(e));
}

TEST(Parser, PaperStyleConjunction) {
  // Fig. 2, depth-4 row 19: "b > 1, 20.0 < c < 30.0, z <= 50000".
  const auto sub =
      Subscription::parse("b > 1 && 20.0 < c && c < 30.0 && z <= 50000");
  Event hit;
  hit.with("b", 2).with("c", 25.0).with("z", 1000);
  EXPECT_TRUE(sub.match(hit));
  Event miss = hit;
  miss.with("c", 31.0);
  EXPECT_FALSE(sub.match(miss));
}

TEST(Parser, ChainedComparison) {
  const auto sub = Subscription::parse("20.0 < c < 30.0");
  Event in;
  in.with("c", 25.0);
  Event out;
  out.with("c", 30.0);
  EXPECT_TRUE(sub.match(in));
  EXPECT_FALSE(sub.match(out));
}

TEST(Parser, MirroredLiteralOnLeft) {
  const auto sub = Subscription::parse("10.0 < c");
  Event e;
  e.with("c", 10.5);
  EXPECT_TRUE(sub.match(e));
  e.with("c", 9.0);
  EXPECT_FALSE(sub.match(e));
}

TEST(Parser, DisjunctionOfStrings) {
  // Fig. 2, depth-2 row 18: e = "Bob" ∨ "Tom".
  const auto sub =
      Subscription::parse("e == \"Bob\" || e == \"Tom\"");
  EXPECT_TRUE(sub.match(fig2_event()));
  Event tom;
  tom.with("e", "Tom");
  EXPECT_TRUE(sub.match(tom));
  Event ann;
  ann.with("e", "Ann");
  EXPECT_FALSE(sub.match(ann));
}

TEST(Parser, PrecedenceAndOverOr) {
  // a==1 || a==2 && b==3 parses as a==1 || (a==2 && b==3).
  const auto sub = Subscription::parse("a == 1 || a == 2 && b == 3");
  Event a1;
  a1.with("a", 1);
  EXPECT_TRUE(sub.match(a1));
  Event a2_no_b;
  a2_no_b.with("a", 2);
  EXPECT_FALSE(sub.match(a2_no_b));
  Event a2_b3;
  a2_b3.with("a", 2).with("b", 3);
  EXPECT_TRUE(sub.match(a2_b3));
}

TEST(Parser, ParenthesesOverridePrecedence) {
  const auto sub = Subscription::parse("(a == 1 || a == 2) && b == 3");
  Event a1_b3;
  a1_b3.with("a", 1).with("b", 3);
  EXPECT_TRUE(sub.match(a1_b3));
  Event a1_only;
  a1_only.with("a", 1);
  EXPECT_FALSE(sub.match(a1_only));
}

TEST(Parser, Negation) {
  const auto sub = Subscription::parse("!(b == 2)");
  EXPECT_FALSE(sub.match(fig2_event()));
  Event other;
  other.with("b", 3);
  EXPECT_TRUE(sub.match(other));
}

TEST(Parser, BangEqualsVersusNotExpression) {
  const auto a = Subscription::parse("b != 2");
  const auto b = Subscription::parse("!(b = 2)");
  Event e3;
  e3.with("b", 3);
  EXPECT_TRUE(a.match(e3));
  EXPECT_TRUE(b.match(e3));
  // When b is ABSENT the two diverge: `b != 2` requires b to be present
  // with another value, while `!(b = 2)` is satisfied vacuously. The
  // parser must keep them distinct trees (!= one Compare node, !(...) a
  // Not node) so this semantic difference survives a round trip.
  Event absent;
  absent.with("c", 1);
  EXPECT_FALSE(a.match(absent));
  EXPECT_TRUE(b.match(absent));
}

TEST(Parser, TrueFalseKeywords) {
  EXPECT_TRUE(Subscription::parse("true").match(Event{}));
  EXPECT_FALSE(Subscription::parse("false").match(Event{}));
  EXPECT_TRUE(Subscription::parse("true").is_wildcard());
}

TEST(Parser, WhitespaceTolerant) {
  EXPECT_TRUE(
      Subscription::parse("  b\t==   2  \n&& c>40.0 ").match(fig2_event()));
}

TEST(Parser, ErrorsThrow) {
  EXPECT_THROW(Subscription::parse(""), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b =="), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b == 2 &&"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("(b == 2"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b == 2 extra"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b @ 2"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("\"unterminated"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("b & 2"), std::invalid_argument);
}

TEST(Parser, AttributeToAttributeRejected) {
  EXPECT_THROW(Subscription::parse("a == b"), std::invalid_argument);
  EXPECT_THROW(Subscription::parse("1 == 2"), std::invalid_argument);
}

// ---------------------------------------------------------------------------
// Round-trip property: parse(p->to_string()) must be semantically
// equivalent to p — same verdict on every event. This pins the printer and
// the lexer to each other: string escaping (Value::to_string escapes `"`
// and `\`, the lexer unescapes them) and float formatting (shortest
// round-trip via to_chars, not ostream's 6-digit default) both broke this
// property before they were fixed. Values are finite only: "inf"/"nan"
// have no literal syntax in the interest language.

Value random_finite_value(Rng& rng) {
  switch (rng.next_below(8)) {
    case 0: return Value(rng.next_in(-3, 3));
    case 1: return Value(static_cast<double>(rng.next_in(-2, 2)));
    case 2: return Value(rng.next_double() * 2.0 - 1.0);
    case 3: return Value(0.1 + 0.2);  // classic shortest-form stressor
    case 4: return Value(rng.bernoulli(0.5) ? 1e300 : 5e-324);
    case 5: return Value(rng.bernoulli(0.5) ? -0.0 : 0.0);
    case 6: {
      static const char* words[] = {"alpha", "beta", "", "quo\"te",
                                    "back\\slash", "mixed\\\"both"};
      return Value(words[rng.next_below(6)]);
    }
    default:
      return Value("w" + std::to_string(rng.next_below(4)));
  }
}

PredicatePtr random_finite_predicate(Rng& rng, int depth) {
  static const char* attrs[] = {"a", "b", "c", "d", "e"};
  const auto leaf = [&]() -> PredicatePtr {
    const auto roll = rng.next_below(20);
    if (roll == 0) return Predicate::wildcard();
    if (roll == 1) return Predicate::never();
    static const CmpOp ops[] = {CmpOp::Eq, CmpOp::Ne, CmpOp::Lt,
                                CmpOp::Le, CmpOp::Gt, CmpOp::Ge};
    return Predicate::compare(attrs[rng.next_below(5)],
                              ops[rng.next_below(6)],
                              random_finite_value(rng));
  };
  if (depth <= 0 || rng.bernoulli(0.55)) return leaf();
  if (rng.bernoulli(0.3))
    return Predicate::negation(random_finite_predicate(rng, depth - 1));
  std::vector<PredicatePtr> kids;
  const auto n = 2 + rng.next_below(2);
  for (std::uint64_t i = 0; i < n; ++i)
    kids.push_back(random_finite_predicate(rng, depth - 1));
  return rng.bernoulli(0.5) ? Predicate::conj(std::move(kids))
                            : Predicate::disj(std::move(kids));
}

Event random_roundtrip_event(Rng& rng) {
  Event e;
  for (const char* a : {"a", "b", "c", "d", "e"})
    if (rng.bernoulli(0.7)) e.with(a, random_finite_value(rng));
  return e;
}

TEST(Parser, RoundTripPropertyOverRandomPredicates) {
  Rng rng(0x20f117e5u);
  for (int p = 0; p < 2000; ++p) {
    const auto original = random_finite_predicate(rng, 3);
    const std::string text = original->to_string();
    PredicatePtr reparsed;
    ASSERT_NO_THROW(reparsed = parse_predicate(text))
        << "unparseable printer output: " << text;
    for (int e = 0; e < 16; ++e) {
      const auto ev = random_roundtrip_event(rng);
      ASSERT_EQ(original->match(ev), reparsed->match(ev))
          << "round trip changed semantics of: " << text;
    }
  }
}

TEST(Parser, RoundTripEscapedStrings) {
  for (const char* s : {"quo\"te", "back\\slash", "both\\\"ways", ""}) {
    const auto p = Predicate::compare("e", CmpOp::Eq, Value(s));
    const auto back = parse_predicate(p->to_string());
    Event hit;
    hit.with("e", s);
    EXPECT_TRUE(back->match(hit)) << p->to_string();
    Event miss;
    miss.with("e", "other");
    EXPECT_FALSE(back->match(miss)) << p->to_string();
  }
}

TEST(Parser, RoundTripFloatPrecision) {
  // 0.1 + 0.2 != 0.3 in doubles; the printed form must carry all 17
  // significant digits or the reparsed predicate matches the wrong value.
  const double exact = 0.1 + 0.2;
  const auto p = Predicate::compare("c", CmpOp::Eq, Value(exact));
  const auto back = parse_predicate(p->to_string());
  Event hit;
  hit.with("c", exact);
  EXPECT_TRUE(back->match(hit));
  Event near_miss;
  near_miss.with("c", 0.3);
  EXPECT_FALSE(back->match(near_miss));
}

TEST(Parser, RoundTripKeepsNotOverCompare) {
  // Negation of a comparison must survive printing as a Not node — folding
  // it to the opposite operator would flip the absent-attribute verdict.
  const auto p = Predicate::negation(
      Predicate::compare("b", CmpOp::Eq, Value(std::int64_t{2})));
  const auto back = parse_predicate(p->to_string());
  Event absent;
  absent.with("c", 1);
  EXPECT_TRUE(p->match(absent));
  EXPECT_TRUE(back->match(absent));
}

TEST(Parser, Fig2DepthFourRows) {
  // Every interest row of the paper's Fig. 2 depth-4 table parses.
  const char* rows[] = {
      "b == 2 && c > 40.0 && z == 20000",
      "b == 5 && c > 53.5",
      "b > 1 && 20.0 < c && c < 30.0 && z <= 50000",
      "b > 0 && c > 20.0",
      "b == 4 && 2000 < z && z < 30000",
      "b == 3 && c >= 35.997",
      "b == 2",
  };
  for (const auto* row : rows) EXPECT_NO_THROW(Subscription::parse(row));
}

}  // namespace
}  // namespace pmc

#include "membership/view.hpp"

#include <gtest/gtest.h>

#include "filter/subscription.hpp"

namespace pmc {
namespace {

ViewRow row(AddrComponent infix, std::uint64_t version,
            std::uint64_t count = 1, bool alive = true) {
  ViewRow r;
  r.infix = infix;
  r.version = version;
  r.process_count = count;
  r.alive = alive;
  r.delegates = {Address::parse(std::to_string(infix) + ".0.0")};
  r.interests = InterestSummary::from(Subscription());
  return r;
}

TEST(DepthView, UpsertInsertsSorted) {
  DepthView v;
  EXPECT_TRUE(v.upsert(row(5, 1)));
  EXPECT_TRUE(v.upsert(row(1, 1)));
  EXPECT_TRUE(v.upsert(row(3, 1)));
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v.rows()[0].infix, 1);
  EXPECT_EQ(v.rows()[1].infix, 3);
  EXPECT_EQ(v.rows()[2].infix, 5);
}

TEST(DepthView, NewerVersionWins) {
  DepthView v;
  v.upsert(row(1, 1, 10));
  EXPECT_TRUE(v.upsert(row(1, 2, 20)));
  EXPECT_EQ(v.find(1)->process_count, 20u);
  EXPECT_EQ(v.size(), 1u);
}

TEST(DepthView, OlderOrEqualVersionIgnored) {
  DepthView v;
  v.upsert(row(1, 5, 10));
  EXPECT_FALSE(v.upsert(row(1, 5, 99)));
  EXPECT_FALSE(v.upsert(row(1, 3, 99)));
  EXPECT_EQ(v.find(1)->process_count, 10u);
}

TEST(DepthView, FindMissingReturnsNull) {
  DepthView v;
  v.upsert(row(2, 1));
  EXPECT_EQ(v.find(3), nullptr);
  EXPECT_NE(v.find(2), nullptr);
}

TEST(DepthView, Erase) {
  DepthView v;
  v.upsert(row(1, 1));
  v.upsert(row(2, 1));
  EXPECT_TRUE(v.erase(1));
  EXPECT_FALSE(v.erase(1));
  EXPECT_EQ(v.size(), 1u);
  EXPECT_EQ(v.find(1), nullptr);
}

TEST(DepthView, LiveCountSkipsTombstones) {
  DepthView v;
  v.upsert(row(1, 1, 1, true));
  v.upsert(row(2, 1, 1, false));
  v.upsert(row(3, 1, 1, true));
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v.live_count(), 2u);
}

TEST(DepthView, TotalProcessesSumsLiveRows) {
  DepthView v;
  v.upsert(row(1, 1, 10, true));
  v.upsert(row(2, 1, 20, false));  // tombstoned, not counted
  v.upsert(row(3, 1, 5, true));
  EXPECT_EQ(v.total_processes(), 15u);
}

TEST(MembershipView, DepthIndexingOneBased) {
  const auto self = Address::parse("1.2.3");
  TreeConfig cfg;
  cfg.depth = 3;
  cfg.redundancy = 2;
  MembershipView mv(self, cfg);
  mv.view(1).upsert(row(0, 1));
  mv.view(3).upsert(row(7, 1));
  EXPECT_EQ(mv.view(1).size(), 1u);
  EXPECT_EQ(mv.view(2).size(), 0u);
  EXPECT_EQ(mv.view(3).size(), 1u);
  EXPECT_THROW(mv.view(0), std::logic_error);
  EXPECT_THROW(mv.view(4), std::logic_error);
}

TEST(MembershipView, SelfDepthMustMatchConfig) {
  TreeConfig cfg;
  cfg.depth = 3;
  EXPECT_THROW(MembershipView(Address::parse("1.2"), cfg), std::logic_error);
}

TEST(MembershipView, KnownProcessesCountsDelegatesPerAppearance) {
  const auto self = Address::parse("1.2.3");
  TreeConfig cfg;
  cfg.depth = 3;
  MembershipView mv(self, cfg);
  ViewRow r1 = row(0, 1);
  r1.delegates = {Address::parse("0.0.0"), Address::parse("0.0.1")};
  mv.view(1).upsert(r1);
  ViewRow r2 = row(4, 1);
  r2.delegates = {Address::parse("1.4.0")};
  mv.view(2).upsert(r2);
  ViewRow dead = row(9, 1, 1, false);
  mv.view(2).upsert(dead);
  EXPECT_EQ(mv.known_processes(), 3u);  // 2 + 1, tombstone excluded
}

TEST(MembershipView, ToStringMentionsSelf) {
  TreeConfig cfg;
  cfg.depth = 2;
  MembershipView mv(Address::parse("3.1"), cfg);
  EXPECT_NE(mv.to_string().find("3.1"), std::string::npos);
}

}  // namespace
}  // namespace pmc

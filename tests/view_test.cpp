#include "membership/view.hpp"

#include <gtest/gtest.h>

#include "filter/subscription.hpp"

namespace pmc {
namespace {

ViewRow row(AddrComponent infix, std::uint64_t version,
            std::uint64_t count = 1, bool alive = true) {
  ViewRow r;
  r.infix = infix;
  r.version = version;
  r.process_count = count;
  r.alive = alive;
  r.delegates = {Address::parse(std::to_string(infix) + ".0.0")};
  r.interests = InterestSummary::from(Subscription());
  return r;
}

/// A DepthView needs intern state to store rows; the fixture owns one.
struct BoundView {
  Interns interns;
  DepthView v;
  BoundView() { v.bind(interns); }
};

TEST(DepthView, UpsertInsertsSorted) {
  BoundView b;
  EXPECT_TRUE(b.v.upsert(row(5, 1)));
  EXPECT_TRUE(b.v.upsert(row(1, 1)));
  EXPECT_TRUE(b.v.upsert(row(3, 1)));
  ASSERT_EQ(b.v.size(), 3u);
  EXPECT_EQ(b.v.infix(0), 1);
  EXPECT_EQ(b.v.infix(1), 3);
  EXPECT_EQ(b.v.infix(2), 5);
}

TEST(DepthView, NewerVersionWins) {
  BoundView b;
  b.v.upsert(row(1, 1, 10));
  EXPECT_TRUE(b.v.upsert(row(1, 2, 20)));
  EXPECT_EQ(b.v.process_count(b.v.find_index(1)), 20u);
  EXPECT_EQ(b.v.size(), 1u);
}

TEST(DepthView, OlderOrEqualVersionIgnored) {
  BoundView b;
  b.v.upsert(row(1, 5, 10));
  EXPECT_FALSE(b.v.upsert(row(1, 5, 99)));
  EXPECT_FALSE(b.v.upsert(row(1, 3, 99)));
  EXPECT_EQ(b.v.process_count(b.v.find_index(1)), 10u);
}

TEST(DepthView, FindMissingReturnsNpos) {
  BoundView b;
  b.v.upsert(row(2, 1));
  EXPECT_EQ(b.v.find_index(3), DepthView::npos);
  EXPECT_NE(b.v.find_index(2), DepthView::npos);
}

TEST(DepthView, Erase) {
  BoundView b;
  b.v.upsert(row(1, 1));
  b.v.upsert(row(2, 1));
  EXPECT_TRUE(b.v.erase(1));
  EXPECT_FALSE(b.v.erase(1));
  EXPECT_EQ(b.v.size(), 1u);
  EXPECT_EQ(b.v.find_index(1), DepthView::npos);
}

TEST(DepthView, LiveCountSkipsTombstones) {
  BoundView b;
  b.v.upsert(row(1, 1, 1, true));
  b.v.upsert(row(2, 1, 1, false));
  b.v.upsert(row(3, 1, 1, true));
  EXPECT_EQ(b.v.size(), 3u);
  EXPECT_EQ(b.v.live_count(), 2u);
}

TEST(DepthView, TotalProcessesSumsLiveRows) {
  BoundView b;
  b.v.upsert(row(1, 1, 10, true));
  b.v.upsert(row(2, 1, 20, false));  // tombstoned, not counted
  b.v.upsert(row(3, 1, 5, true));
  EXPECT_EQ(b.v.total_processes(), 15u);
}

TEST(DepthView, MaterializeReproducesRowBytes) {
  BoundView b;
  ViewRow r = row(4, 7, 12);
  r.delegates = {Address::parse("4.0.1"), Address::parse("4.0.0")};
  b.v.upsert(r);
  const std::size_t i = b.v.find_index(4);
  ASSERT_NE(i, DepthView::npos);
  const ViewRow back = b.v.materialize(i);
  EXPECT_EQ(back.infix, r.infix);
  EXPECT_EQ(back.version, r.version);
  EXPECT_EQ(back.process_count, r.process_count);
  EXPECT_EQ(back.alive, r.alive);
  // Delegate order is preserved exactly as published (no id reordering).
  EXPECT_EQ(back.delegates, r.delegates);
  EXPECT_EQ(back.interests, r.interests);
}

TEST(DepthView, DelegatesAreInternedIds) {
  BoundView b;
  ViewRow r = row(2, 1);
  r.delegates = {Address::parse("2.1.1"), Address::parse("2.1.2")};
  b.v.upsert(r);
  const std::size_t i = b.v.find_index(2);
  const auto ids = b.v.delegates(i);
  ASSERT_EQ(ids.size(), 2u);
  EXPECT_EQ(b.interns.addrs.resolve(ids[0]), r.delegates[0]);
  EXPECT_EQ(b.interns.addrs.resolve(ids[1]), r.delegates[1]);
  EXPECT_EQ(b.v.first_delegate(i), ids[0]);
}

TEST(DepthView, PooledSummariesAreShared) {
  // Structurally identical summaries collapse onto one pooled instance.
  BoundView b;
  b.v.upsert(row(1, 1));
  b.v.upsert(row(2, 1));
  EXPECT_EQ(b.v.interests_ptr(0).get(), b.v.interests_ptr(1).get());
  EXPECT_EQ(b.interns.summaries.size(), 1u);
}

TEST(MembershipView, DepthIndexingOneBased) {
  const auto self = Address::parse("1.2.3");
  TreeConfig cfg;
  cfg.depth = 3;
  cfg.redundancy = 2;
  Interns interns;
  MembershipView mv(self, cfg, interns);
  mv.view(1).upsert(row(0, 1));
  mv.view(3).upsert(row(7, 1));
  EXPECT_EQ(mv.view(1).size(), 1u);
  EXPECT_EQ(mv.view(2).size(), 0u);
  EXPECT_EQ(mv.view(3).size(), 1u);
  EXPECT_THROW(mv.view(0), std::logic_error);
  EXPECT_THROW(mv.view(4), std::logic_error);
}

TEST(MembershipView, SelfDepthMustMatchConfig) {
  TreeConfig cfg;
  cfg.depth = 3;
  Interns interns;
  EXPECT_THROW(MembershipView(Address::parse("1.2"), cfg, interns),
               std::logic_error);
}

TEST(MembershipView, KnownProcessesCountsDelegatesPerAppearance) {
  const auto self = Address::parse("1.2.3");
  TreeConfig cfg;
  cfg.depth = 3;
  Interns interns;
  MembershipView mv(self, cfg, interns);
  ViewRow r1 = row(0, 1);
  r1.delegates = {Address::parse("0.0.0"), Address::parse("0.0.1")};
  mv.view(1).upsert(r1);
  ViewRow r2 = row(4, 1);
  r2.delegates = {Address::parse("1.4.0")};
  mv.view(2).upsert(r2);
  ViewRow dead = row(9, 1, 1, false);
  mv.view(2).upsert(dead);
  EXPECT_EQ(mv.known_processes(), 3u);  // 2 + 1, tombstone excluded
}

TEST(MembershipView, SelfIdIsInterned) {
  TreeConfig cfg;
  cfg.depth = 2;
  Interns interns;
  MembershipView mv(Address::parse("3.1"), cfg, interns);
  EXPECT_EQ(interns.addrs.resolve(mv.self_id()), mv.self());
}

TEST(MembershipView, ToStringMentionsSelf) {
  TreeConfig cfg;
  cfg.depth = 2;
  Interns interns;
  MembershipView mv(Address::parse("3.1"), cfg, interns);
  EXPECT_NE(mv.to_string().find("3.1"), std::string::npos);
}

}  // namespace
}  // namespace pmc

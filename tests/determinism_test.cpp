// End-to-end determinism: the simulator promises bit-identical runs for a
// given seed (fully specified RNG streams, FIFO tie-breaking in the
// scheduler), so two runs with the same seed must produce identical
// per-node statistics — and a different seed must not.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "cluster_helpers.hpp"
#include "harness/experiment.hpp"
#include "harness/scenario.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

struct RunTrace {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t>>
      per_node;
  std::uint64_t network_sent = 0;
  std::uint64_t network_delivered = 0;
  std::uint64_t scheduler_executed = 0;

  friend bool operator==(const RunTrace&, const RunTrace&) = default;
};

RunTrace run_once(std::uint64_t seed) {
  PmcastConfig config = default_config();
  config.tuning_threshold = 4;  // exercise the padding path too
  auto cluster = make_cluster(/*a=*/4, /*d=*/3, /*r=*/2, /*pd=*/0.4, config,
                              /*loss=*/0.05, seed);

  // Publish on the workload's attribute so the event actually matches a
  // seed-dependent subset of subscriptions: with labeled (seed, pid) RNG
  // streams everywhere, an event that matches *nobody* disseminates
  // identically under every seed (tuned padding selects all candidates),
  // which would make DifferentSeedDiverges vacuous.
  cluster.nodes.front()->pmcast(make_event_at(/*publisher=*/7,
                                              /*sequence=*/1, /*u=*/0.4));
  cluster.runtime->run_until_idle();

  RunTrace trace;
  for (const auto& node : cluster.nodes) {
    const auto& s = node->stats();
    trace.per_node.emplace_back(s.received, s.delivered, s.gossips_sent,
                                s.rounds_run, s.leaf_floods);
  }
  trace.network_sent = cluster.runtime->network().counters().sent;
  trace.network_delivered = cluster.runtime->network().counters().delivered;
  trace.scheduler_executed = cluster.runtime->scheduler().executed();
  return trace;
}

TEST(Determinism, SameSeedSameStatsAcrossRuns) {
  const RunTrace first = run_once(12345);
  const RunTrace second = run_once(12345);
  EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedDiverges) {
  // Sanity check that the equality above is not vacuous: another seed gives
  // another workload, so at least the network totals should differ.
  const RunTrace first = run_once(12345);
  const RunTrace other = run_once(54321);
  EXPECT_NE(first, other);
}

TEST(Determinism, ExperimentHarnessIsRepeatable) {
  ExperimentConfig config;
  config.a = 5;
  config.d = 2;
  config.r = 2;
  config.runs = 3;
  config.seed = 99;
  const ExperimentResult a = run_pmcast_experiment(config);
  const ExperimentResult b = run_pmcast_experiment(config);
  EXPECT_EQ(a.delivery.mean(), b.delivery.mean());
  EXPECT_EQ(a.false_reception.mean(), b.false_reception.mean());
  EXPECT_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_EQ(a.messages_per_process.mean(), b.messages_per_process.mean());
}

// ---------------------------------------------------------------------------
// Scenario engine determinism
// ---------------------------------------------------------------------------

namespace scenario_determinism {

ChurnConfig engine_config(std::uint64_t seed) {
  ChurnConfig c;
  c.a = 4;
  c.d = 2;
  c.r = 2;
  c.initial_fill = 0.75;
  c.loss = 0.05;
  c.period = sim_ms(50);
  c.suspicion_timeout = sim_ms(400);
  c.seed = seed;
  return c;
}

ChurnSummary run_script(std::uint64_t seed, const ScenarioScript& script,
                        SimTime horizon) {
  ChurnSim sim(engine_config(seed));
  sim.play(script);
  sim.run_until(horizon);
  return sim.summary();
}

}  // namespace scenario_determinism

TEST(ScenarioDeterminism, SameSeedSameScriptSameSummary) {
  using namespace scenario_determinism;
  const auto script = ScenarioScript::demo();
  const auto a = run_script(2024, script, sim_ms(3500));
  const auto b = run_script(2024, script, sim_ms(3500));
  EXPECT_EQ(a, b);  // byte-identical counters, network totals, fingerprint
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(ScenarioDeterminism, DifferentSeedDiverges) {
  using namespace scenario_determinism;
  const auto script = ScenarioScript::demo();
  const auto a = run_script(2024, script, sim_ms(3500));
  const auto b = run_script(2025, script, sim_ms(3500));
  EXPECT_NE(a, b);
}

TEST(ScenarioDeterminism, ExtraLossBurstLeavesPreBurstRunUnchanged) {
  // RNG stream isolation: every action draws from its own labeled stream,
  // so inserting one extra action must not perturb anything that happens
  // before the action fires — deliveries, network totals, per-node stats.
  using namespace scenario_determinism;
  ScenarioScript base;
  base.add(sim_ms(200), Join{2});
  base.add(sim_ms(400), PublishBurst{4, sim_ms(25)});
  base.add(sim_ms(700), CrashNodes{2});
  base.add(sim_ms(900), PublishBurst{4, sim_ms(25)});

  ScenarioScript extended;
  extended.add(sim_ms(200), Join{2});
  extended.add(sim_ms(400), PublishBurst{4, sim_ms(25)});
  extended.add(sim_ms(700), CrashNodes{2});
  extended.add(sim_ms(900), PublishBurst{4, sim_ms(25)});
  extended.add(sim_ms(1500), LossBurst{0.6, sim_ms(300)});  // the extra one

  // Up to just before the burst fires, both runs must be byte-identical.
  const auto pre_a = run_script(99, base, sim_ms(1499));
  const auto pre_b = run_script(99, extended, sim_ms(1499));
  EXPECT_EQ(pre_a, pre_b);
  EXPECT_GT(pre_a.counters.delivered, 0u);  // the comparison is not vacuous

  // After it fires, the extended run must actually diverge (the burst drops
  // messages), otherwise the pre-burst equality proves nothing.
  const auto end_a = run_script(99, base, sim_ms(2500));
  const auto end_b = run_script(99, extended, sim_ms(2500));
  EXPECT_NE(end_a.network, end_b.network);
  EXPECT_EQ(end_b.counters.loss_bursts, 1u);
}

TEST(ScenarioDeterminism, LabeledStreamsAreCallOrderIndependent) {
  Runtime rt(NetworkConfig{}, 77);
  Rng a1 = rt.make_stream(1);
  Rng a2 = rt.make_stream(2);
  // Interleave sequential make_rng() calls; labeled streams must not care.
  (void)rt.make_rng();
  Rng b2 = rt.make_stream(2);
  Rng b1 = rt.make_stream(1);
  EXPECT_EQ(a1.next_u64(), b1.next_u64());
  EXPECT_EQ(a2.next_u64(), b2.next_u64());
  Runtime other(NetworkConfig{}, 78);
  EXPECT_NE(rt.make_stream(3).next_u64(), other.make_stream(3).next_u64());
}

TEST(ScenarioDeterminism, StableMemberDependsOnlyOnSeedAndAddress) {
  const auto a = Address::parse("1.2");
  const auto b = Address::parse("1.3");
  const auto m1 = stable_member(a, 0.5, 42);
  const auto m2 = stable_member(a, 0.5, 42);
  const Event probe = make_event_at(0, 0, 0.37);
  EXPECT_EQ(m1.subscription.match(probe), m2.subscription.match(probe));
  EXPECT_EQ(m1.subscription.to_string(), m2.subscription.to_string());
  // Different address or seed gives a different interval (almost surely).
  EXPECT_NE(stable_member(b, 0.5, 42).subscription.to_string(),
            m1.subscription.to_string());
  EXPECT_NE(stable_member(a, 0.5, 43).subscription.to_string(),
            m1.subscription.to_string());
}

TEST(TuningStartIndex, DeterministicPerEventAndInBounds) {
  const EventId id{3, 17};
  const std::size_t n = 23;
  const std::size_t first = tuning_start_index(id, n);
  EXPECT_EQ(first, tuning_start_index(id, n));
  EXPECT_LT(first, n);
  EXPECT_EQ(tuning_start_index(id, 0), 0u);
}

TEST(TuningStartIndex, SpreadsAcrossEvents) {
  // The padding start must not collapse onto index 0 for all events (the
  // old implementation always promoted the first h view rows).
  const std::size_t n = 16;
  std::set<std::size_t> starts;
  for (std::uint64_t seq = 0; seq < 64; ++seq)
    starts.insert(tuning_start_index(EventId{1, seq}, n));
  EXPECT_GT(starts.size(), n / 2);
}

}  // namespace
}  // namespace pmc

// End-to-end determinism: the simulator promises bit-identical runs for a
// given seed (fully specified RNG streams, FIFO tie-breaking in the
// scheduler), so two runs with the same seed must produce identical
// per-node statistics — and a different seed must not.
#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "cluster_helpers.hpp"
#include "harness/experiment.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

struct RunTrace {
  std::vector<std::tuple<std::uint64_t, std::uint64_t, std::uint64_t,
                         std::uint64_t, std::uint64_t>>
      per_node;
  std::uint64_t network_sent = 0;
  std::uint64_t network_delivered = 0;
  std::uint64_t scheduler_executed = 0;

  friend bool operator==(const RunTrace&, const RunTrace&) = default;
};

RunTrace run_once(std::uint64_t seed) {
  PmcastConfig config = default_config();
  config.tuning_threshold = 4;  // exercise the padding path too
  auto cluster = make_cluster(/*a=*/4, /*d=*/3, /*r=*/2, /*pd=*/0.4, config,
                              /*loss=*/0.05, seed);

  Event e;
  e.set_id(EventId{/*publisher=*/7, /*sequence=*/1});
  e.with("temperature", 21.5);
  cluster.nodes.front()->pmcast(std::move(e));
  cluster.runtime->run_until_idle();

  RunTrace trace;
  for (const auto& node : cluster.nodes) {
    const auto& s = node->stats();
    trace.per_node.emplace_back(s.received, s.delivered, s.gossips_sent,
                                s.rounds_run, s.leaf_floods);
  }
  trace.network_sent = cluster.runtime->network().counters().sent;
  trace.network_delivered = cluster.runtime->network().counters().delivered;
  trace.scheduler_executed = cluster.runtime->scheduler().executed();
  return trace;
}

TEST(Determinism, SameSeedSameStatsAcrossRuns) {
  const RunTrace first = run_once(12345);
  const RunTrace second = run_once(12345);
  EXPECT_EQ(first, second);
}

TEST(Determinism, DifferentSeedDiverges) {
  // Sanity check that the equality above is not vacuous: another seed gives
  // another workload, so at least the network totals should differ.
  const RunTrace first = run_once(12345);
  const RunTrace other = run_once(54321);
  EXPECT_NE(first, other);
}

TEST(Determinism, ExperimentHarnessIsRepeatable) {
  ExperimentConfig config;
  config.a = 5;
  config.d = 2;
  config.r = 2;
  config.runs = 3;
  config.seed = 99;
  const ExperimentResult a = run_pmcast_experiment(config);
  const ExperimentResult b = run_pmcast_experiment(config);
  EXPECT_EQ(a.delivery.mean(), b.delivery.mean());
  EXPECT_EQ(a.false_reception.mean(), b.false_reception.mean());
  EXPECT_EQ(a.rounds.mean(), b.rounds.mean());
  EXPECT_EQ(a.messages_per_process.mean(), b.messages_per_process.mean());
}

TEST(TuningStartIndex, DeterministicPerEventAndInBounds) {
  const EventId id{3, 17};
  const std::size_t n = 23;
  const std::size_t first = tuning_start_index(id, n);
  EXPECT_EQ(first, tuning_start_index(id, n));
  EXPECT_LT(first, n);
  EXPECT_EQ(tuning_start_index(id, 0), 0u);
}

TEST(TuningStartIndex, SpreadsAcrossEvents) {
  // The padding start must not collapse onto index 0 for all events (the
  // old implementation always promoted the first h view rows).
  const std::size_t n = 16;
  std::set<std::size_t> starts;
  for (std::uint64_t seq = 0; seq < 64; ++seq)
    starts.insert(tuning_start_index(EventId{1, seq}, n));
  EXPECT_GT(starts.size(), n / 2);
}

}  // namespace
}  // namespace pmc

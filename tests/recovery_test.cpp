// Tests for the optional digest-recovery layer (PmcastConfig::recovery_rounds)
// — pbcast-style event-digest anti-entropy on the leaf subgroups.
#include <gtest/gtest.h>

#include "cluster_helpers.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

PmcastConfig recovery_config(std::size_t rounds) {
  PmcastConfig config = testing::default_config();
  config.recovery_rounds = rounds;
  return config;
}

TEST(Recovery, RepairsLossInducedMisses) {
  // Aggregate across seeds: under 30% loss the recovering configuration
  // must deliver at least as much as the plain one, typically more.
  std::size_t plain_delivered = 0, recovering_delivered = 0;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    for (const bool recover : {false, true}) {
      PmcastConfig config = recovery_config(recover ? 5 : 0);
      config.fanout = 2;
      config.env.prior.loss = 0.30;
      auto c = make_cluster(4, 2, 2, 1.0, config, /*loss=*/0.30, 50 + seed);
      const Event e = make_event_at(0, seed, 0.5);
      c.nodes[0]->pmcast(e);
      c.runtime->run_until_idle();
      std::size_t delivered = 0;
      for (const auto& n : c.nodes)
        if (n->has_delivered(e.id())) ++delivered;
      (recover ? recovering_delivered : plain_delivered) += delivered;
    }
  }
  EXPECT_GE(recovering_delivered, plain_delivered);
}

TEST(Recovery, RecoveriesActuallyHappenUnderLoss) {
  PmcastConfig config = recovery_config(6);
  config.env.prior.loss = 0.4;
  std::uint64_t recoveries = 0;
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    auto c = make_cluster(4, 2, 2, 1.0, config, 0.4, 60 + seed);
    c.nodes[0]->pmcast(make_event_at(0, seed, 0.5));
    c.runtime->run_until_idle();
    for (const auto& n : c.nodes) recoveries += n->stats().recoveries;
  }
  EXPECT_GT(recoveries, 0u);
}

TEST(Recovery, UninterestedNonDelegatesStillUntouched) {
  // Digests are pre-filtered against the target's interests, so the pmcast
  // guarantee survives: uninterested non-delegates stay untouched.
  PmcastConfig config = recovery_config(5);
  auto c = make_cluster(4, 3, 2, 0.4, config, 0.1, 61);
  const Event e = make_event_at(1, 0, 0.3);
  c.nodes[7]->pmcast(e);
  c.runtime->run_until_idle();
  for (const auto& node : c.nodes) {
    if (node->id() == 7 || node->interested_in(e)) continue;
    bool delegate = false;
    for (std::size_t depth = 1; depth < 3; ++depth)
      delegate = delegate || c.tree->is_delegate_at(node->address(), depth);
    if (!delegate) {
      EXPECT_FALSE(node->has_received(e.id()))
          << node->address().to_string();
    }
  }
}

TEST(Recovery, QuiescesAfterBoundedDigestRounds) {
  PmcastConfig config = recovery_config(4);
  auto c = make_cluster(3, 2, 2, 1.0, config, 0.0, 62);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  EXPECT_TRUE(c.runtime->scheduler().empty());
}

TEST(Recovery, DisabledMeansNoDigests) {
  auto c = make_cluster(3, 2, 2, 1.0, default_config(), 0.0, 63);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  for (const auto& n : c.nodes) {
    EXPECT_EQ(n->stats().digests_sent, 0u);
    EXPECT_EQ(n->stats().recoveries, 0u);
  }
}

TEST(Recovery, DigestTrafficBounded) {
  // Each node sends at most F digests per period for recovery_rounds
  // periods per retained event batch.
  PmcastConfig config = recovery_config(3);
  config.fanout = 2;
  auto c = make_cluster(3, 2, 2, 1.0, config, 0.0, 64);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  for (const auto& n : c.nodes)
    EXPECT_LE(n->stats().digests_sent, 2u * 3u + 2u);
}

TEST(Recovery, RecoveredEventServesFurtherRequests) {
  // A process that recovered an event retains it, so a second-degree miss
  // can be repaired through it (transitive recovery).
  PmcastConfig config = recovery_config(8);
  config.fanout = 2;
  // Heavy loss so several processes need recovery chains.
  std::size_t delivered_total = 0, node_count = 0;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    auto c = make_cluster(4, 2, 3, 1.0, config, 0.45, 70 + seed);
    const Event e = make_event_at(0, seed, 0.5);
    c.nodes[0]->pmcast(e);
    c.runtime->run_until_idle();
    node_count += c.nodes.size();
    for (const auto& n : c.nodes)
      if (n->has_delivered(e.id())) ++delivered_total;
  }
  // With 45% loss and F=2 the plain algorithm misses a sizable fraction;
  // long recovery chains should push delivery close to total.
  EXPECT_GE(delivered_total, node_count * 9 / 10);
}

}  // namespace
}  // namespace pmc

#include "addr/netmap.hpp"

#include <gtest/gtest.h>

#include <set>

namespace pmc {
namespace {

TEST(Ipv4, RoundTrip) {
  const auto a = from_ipv4("128.178.73.3");
  EXPECT_EQ(a.depth(), 4u);
  EXPECT_EQ(to_ipv4(a), "128.178.73.3");
  EXPECT_TRUE(ipv4_space().valid(a));
}

TEST(Ipv4, RejectsMalformed) {
  EXPECT_THROW(from_ipv4("1.2.3"), std::invalid_argument);
  EXPECT_THROW(from_ipv4("1.2.3.4.5"), std::invalid_argument);
  EXPECT_THROW(from_ipv4("256.0.0.1"), std::invalid_argument);
  EXPECT_THROW(from_ipv4("1.2.3.x"), std::invalid_argument);
}

TEST(Ipv4, SubnetsShareShortDistance) {
  // Same /24: distance 1. Different first octet: distance 4.
  const auto a = from_ipv4("128.178.73.3");
  const auto b = from_ipv4("128.178.73.17");
  const auto c = from_ipv4("129.178.73.3");
  EXPECT_EQ(a.distance(b), 1u);
  EXPECT_EQ(a.distance(c), 4u);
}

TEST(Ipv4, PortBucketsExtendDepth) {
  const auto a = from_ipv4_port("10.0.0.1", 8080);
  EXPECT_EQ(a.depth(), 5u);
  EXPECT_EQ(a.component(4), 8080 >> 4);
  // Nearby ports share the bucket (same process host granularity).
  const auto b = from_ipv4_port("10.0.0.1", 8081);
  EXPECT_EQ(a, b);
  const auto far = from_ipv4_port("10.0.0.1", 9000);
  EXPECT_NE(a, far);
}

TEST(Ipv4, ToIpv4Preconditions) {
  EXPECT_THROW(to_ipv4(Address::parse("1.2.3")), std::logic_error);
  EXPECT_THROW(to_ipv4(Address::parse("1.2.3.4000")), std::logic_error);
}

TEST(Dns, SameDomainSharesPrefix) {
  const auto space = AddressSpace::regular(32, 3);
  const auto a = from_dns("lpdmail.epfl.ch", space);
  const auto b = from_dns("dslabsrv.epfl.ch", space);
  const auto c = from_dns("www.mit.edu", space);
  // Reversed labels: ch.epfl.* share the first two components.
  EXPECT_GE(a.common_prefix_length(b), 2u);
  EXPECT_EQ(a.common_prefix_length(c), 0u);
}

TEST(Dns, Deterministic) {
  const auto space = AddressSpace::regular(16, 4);
  EXPECT_EQ(from_dns("host.example.org", space),
            from_dns("host.example.org", space));
}

TEST(Dns, ComponentsWithinArity) {
  const AddressSpace space({7, 13, 31});
  const auto a = from_dns("very.deep.sub.domain.example.net", space);
  EXPECT_TRUE(space.valid(a));
}

TEST(Dns, ShortNamesPadded) {
  const auto space = AddressSpace::regular(16, 4);
  const auto a = from_dns("localhost", space);
  EXPECT_EQ(a.depth(), 4u);
  EXPECT_TRUE(space.valid(a));
}

TEST(Dns, ExtraLabelsStillDistinguish) {
  // Deeper-than-tree names must not collide just because their first
  // `depth` labels agree.
  const auto space = AddressSpace::regular(64, 2);
  const auto a = from_dns("a.x.example.com", space);
  const auto b = from_dns("b.x.example.com", space);
  EXPECT_NE(a, b);
}

TEST(Dns, EmptyNameRejected) {
  const auto space = AddressSpace::regular(4, 2);
  EXPECT_THROW(from_dns("", space), std::invalid_argument);
  EXPECT_THROW(from_dns("...", space), std::invalid_argument);
}

TEST(Dns, SpreadsAcrossSpace) {
  // 200 distinct hosts under distinct TLDs should not funnel into a
  // handful of addresses.
  const auto space = AddressSpace::regular(32, 3);
  std::set<Address> seen;
  for (int i = 0; i < 200; ++i)
    seen.insert(from_dns("host" + std::to_string(i) + ".dom" +
                             std::to_string(i) + ".tld" + std::to_string(i),
                         space));
  EXPECT_GT(seen.size(), 150u);
}

}  // namespace
}  // namespace pmc

#include "membership/election.hpp"

#include <gtest/gtest.h>

namespace pmc {
namespace {

std::vector<Address> addrs(std::initializer_list<const char*> texts) {
  std::vector<Address> out;
  for (const auto* t : texts) out.push_back(Address::parse(t));
  return out;
}

TEST(Election, SmallestAddressesChosen) {
  const auto members = addrs({"1.5", "1.2", "1.9", "1.1", "1.7"});
  const auto delegates = elect_delegates(members, 2);
  ASSERT_EQ(delegates.size(), 2u);
  EXPECT_EQ(delegates[0].to_string(), "1.1");
  EXPECT_EQ(delegates[1].to_string(), "1.2");
}

TEST(Election, FewerMembersThanRKeepsAll) {
  const auto members = addrs({"1.5", "1.2"});
  const auto delegates = elect_delegates(members, 4);
  ASSERT_EQ(delegates.size(), 2u);
  EXPECT_EQ(delegates[0].to_string(), "1.2");
}

TEST(Election, ExactlyR) {
  const auto members = addrs({"3.1", "2.1", "1.1"});
  const auto delegates = elect_delegates(members, 3);
  ASSERT_EQ(delegates.size(), 3u);
  EXPECT_EQ(delegates[0].to_string(), "1.1");
  EXPECT_EQ(delegates[2].to_string(), "3.1");
}

TEST(Election, DeterministicAcrossInputOrder) {
  // All subgroup members must elect identical delegates from any ordering —
  // the paper's "without explicit agreement" requirement.
  auto m1 = addrs({"1.5", "1.2", "1.9", "1.1"});
  auto m2 = addrs({"1.9", "1.1", "1.5", "1.2"});
  EXPECT_EQ(elect_delegates(m1, 2), elect_delegates(m2, 2));
}

TEST(Election, CustomRankCriterion) {
  // Sec. 2.3: alternative criteria are pluggable — e.g. prefer the largest
  // last component (a stand-in for "most resources").
  const auto members = addrs({"1.5", "1.2", "1.9"});
  const auto rank = [](const Address& a, const Address& b) {
    return a.component(1) > b.component(1);
  };
  const auto delegates = elect_delegates(members, 1, rank);
  ASSERT_EQ(delegates.size(), 1u);
  EXPECT_EQ(delegates[0].to_string(), "1.9");
}

TEST(Election, EmptyMembership) {
  EXPECT_TRUE(elect_delegates(std::vector<Address>{}, 3).empty());
}

TEST(Election, ZeroRRejected) {
  EXPECT_THROW(elect_delegates(addrs({"1.1"}), 0), std::logic_error);
}

TEST(Election, ResultSortedByRank) {
  const auto members = addrs({"9.9", "1.1", "5.5", "3.3", "7.7"});
  const auto delegates = elect_delegates(members, 4);
  for (std::size_t i = 1; i < delegates.size(); ++i)
    EXPECT_LT(delegates[i - 1], delegates[i]);
}

}  // namespace
}  // namespace pmc

#include "common/rng.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

namespace pmc {
namespace {

TEST(SplitMix64, KnownSequenceFromZeroSeed) {
  // Reference values for splitmix64 seeded with 0 (public test vectors).
  SplitMix64 sm(0);
  EXPECT_EQ(sm.next(), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(sm.next(), 0x6e789e6aa1b965f4ULL);
  EXPECT_EQ(sm.next(), 0x06c45d188009454fULL);
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (a.next_u64() == b.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ReseedRestartsSequence) {
  Rng a(7);
  const auto first = a.next_u64();
  a.next_u64();
  a.reseed(7);
  EXPECT_EQ(a.next_u64(), first);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng r(99);
  for (int i = 0; i < 10000; ++i) {
    const double x = r.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, DoubleMeanNearHalf) {
  Rng r(5);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += r.next_double();
  EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, NextBelowRespectsBound) {
  Rng r(4);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) EXPECT_LT(r.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowOneAlwaysZero) {
  Rng r(4);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(r.next_below(1), 0u);
}

TEST(Rng, NextBelowUniformity) {
  Rng r(11);
  constexpr std::uint64_t kBuckets = 8;
  std::vector<int> counts(kBuckets, 0);
  const int n = 80000;
  for (int i = 0; i < n; ++i) ++counts[r.next_below(kBuckets)];
  for (const int c : counts)
    EXPECT_NEAR(static_cast<double>(c), n / 8.0, n / 8.0 * 0.1);
}

TEST(Rng, NextInInclusiveRange) {
  Rng r(21);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 5000; ++i) {
    const auto v = r.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= v == -3;
    saw_hi |= v == 3;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(Rng, BernoulliExtremes) {
  Rng r(31);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(r.bernoulli(0.0));
    EXPECT_TRUE(r.bernoulli(1.0));
  }
}

TEST(Rng, BernoulliFrequency) {
  Rng r(32);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) hits += r.bernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(hits / static_cast<double>(n), 0.3, 0.01);
}

TEST(Rng, SampleWithoutReplacementDistinct) {
  Rng r(41);
  const auto s = r.sample_without_replacement(100, 30);
  EXPECT_EQ(s.size(), 30u);
  const std::set<std::size_t> uniq(s.begin(), s.end());
  EXPECT_EQ(uniq.size(), 30u);
  for (const auto v : s) EXPECT_LT(v, 100u);
}

TEST(Rng, SampleAllIsPermutation) {
  Rng r(42);
  auto s = r.sample_without_replacement(10, 10);
  std::sort(s.begin(), s.end());
  for (std::size_t i = 0; i < 10; ++i) EXPECT_EQ(s[i], i);
}

TEST(Rng, SampleZeroEmpty) {
  Rng r(43);
  EXPECT_TRUE(r.sample_without_replacement(5, 0).empty());
}

TEST(Rng, SampleTooManyThrows) {
  Rng r(44);
  EXPECT_THROW(r.sample_without_replacement(3, 4), std::logic_error);
}

TEST(Rng, SplitStreamsAreIndependent) {
  Rng parent(50);
  Rng child1 = parent.split();
  Rng child2 = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i)
    if (child1.next_u64() == child2.next_u64()) ++same;
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsPermutation) {
  Rng r(60);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  auto sorted = v;
  r.shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, sorted);
}

}  // namespace
}  // namespace pmc

// WorkerPool: batch completion, serial inline path, exception propagation,
// lane resolution, and reuse across batches.
#include <gtest/gtest.h>

#include <atomic>
#include <numeric>
#include <stdexcept>
#include <thread>
#include <vector>

#include "sim/worker_pool.hpp"

namespace pmc {
namespace {

TEST(WorkerPool, RunsEveryJobExactlyOnce) {
  for (const std::size_t threads : {1u, 2u, 4u, 8u}) {
    WorkerPool pool(threads);
    constexpr std::size_t kJobs = 1000;
    std::vector<std::atomic<int>> hits(kJobs);
    pool.run(kJobs, [&](std::size_t i) {
      hits[i].fetch_add(1, std::memory_order_relaxed);
    });
    for (std::size_t i = 0; i < kJobs; ++i)
      ASSERT_EQ(hits[i].load(), 1) << "threads=" << threads << " job " << i;
  }
}

TEST(WorkerPool, RunIsABarrier) {
  // Every write a job made must be visible after run() returns — plain
  // non-atomic writes, summed by the caller.
  WorkerPool pool(4);
  constexpr std::size_t kJobs = 512;
  std::vector<std::uint64_t> out(kJobs, 0);
  pool.run(kJobs, [&](std::size_t i) { out[i] = i + 1; });
  const auto sum = std::accumulate(out.begin(), out.end(), std::uint64_t{0});
  EXPECT_EQ(sum, kJobs * (kJobs + 1) / 2);
}

TEST(WorkerPool, SerialPoolRunsInlineInIndexOrder) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.thread_count(), 1u);
  const auto caller = std::this_thread::get_id();
  std::vector<std::size_t> order;
  pool.run(16, [&](std::size_t i) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    order.push_back(i);
  });
  for (std::size_t i = 0; i < order.size(); ++i) EXPECT_EQ(order[i], i);
}

TEST(WorkerPool, ReusableAcrossBatches) {
  WorkerPool pool(3);
  std::atomic<int> total{0};
  for (int batch = 0; batch < 50; ++batch) {
    pool.run(20, [&](std::size_t) {
      total.fetch_add(1, std::memory_order_relaxed);
    });
  }
  EXPECT_EQ(total.load(), 50 * 20);
}

TEST(WorkerPool, JobExceptionRethrownAfterBatchDrains) {
  for (const std::size_t threads : {1u, 4u}) {
    WorkerPool pool(threads);
    std::atomic<int> ran{0};
    EXPECT_THROW(
        pool.run(64,
                 [&](std::size_t i) {
                   ran.fetch_add(1, std::memory_order_relaxed);
                   if (i == 7) throw std::runtime_error("job 7");
                 }),
        std::runtime_error);
    // The batch drains (shards stay in lockstep even when one fails)...
    EXPECT_EQ(ran.load(), 64);
    // ...and the pool survives for the next batch.
    pool.run(8, [](std::size_t) {});
  }
}

TEST(WorkerPool, ResolveThreadsCapsAndDefaults) {
  EXPECT_EQ(WorkerPool::resolve_threads(1, 100), 1u);
  EXPECT_EQ(WorkerPool::resolve_threads(8, 100), 8u);
  EXPECT_EQ(WorkerPool::resolve_threads(8, 3), 3u);   // never exceed jobs
  EXPECT_EQ(WorkerPool::resolve_threads(5, 0), 1u);   // degenerate batch
  EXPECT_GE(WorkerPool::resolve_threads(0, 100), 1u);  // 0 = hardware
}

}  // namespace
}  // namespace pmc

// Parameterized property suites: invariants that must hold across the whole
// (a, d, R, F, pd, seed) parameter grid, run via TEST_P sweeps.
#include <gtest/gtest.h>

#include "analysis/tree_analysis.hpp"
#include "cluster_helpers.hpp"

namespace pmc {
namespace {

using testing::make_cluster;

struct GridParams {
  std::size_t a;
  std::size_t d;
  std::size_t r;
  std::size_t fanout;
  double pd;
  std::uint64_t seed;

  friend std::ostream& operator<<(std::ostream& os, const GridParams& p) {
    return os << "a" << p.a << "_d" << p.d << "_R" << p.r << "_F" << p.fanout
              << "_pd" << static_cast<int>(p.pd * 100) << "_s" << p.seed;
  }
};

class PmcastGrid : public ::testing::TestWithParam<GridParams> {
 protected:
  testing::Cluster run_one(const Event& e, ProcessId publisher) {
    const auto& p = GetParam();
    PmcastConfig config;
    config.fanout = p.fanout;
    config.period = sim_ms(100);
    auto c = make_cluster(p.a, p.d, p.r, p.pd, config, 0.0, p.seed);
    c.nodes[publisher]->pmcast(e);
    c.runtime->run_until_idle();
    return c;
  }
};

TEST_P(PmcastGrid, RunQuiescesAndBoundsMessages) {
  const Event e = make_event_at(0, 0, 0.42);
  auto c = run_one(e, 0);
  EXPECT_TRUE(c.runtime->scheduler().empty());
  for (const auto& node : c.nodes) {
    const auto& s = node->stats();
    EXPECT_LE(s.gossips_sent, s.rounds_run * GetParam().fanout);
    EXPECT_LE(s.delivered, 1u);
  }
}

TEST_P(PmcastGrid, UninterestedNonDelegatesUntouched) {
  // The pmcast guarantee: with exact interest regrouping, a process that is
  // neither interested nor anyone's delegate never hears about the event.
  const Event e = make_event_at(0, 0, 0.77);
  auto c = run_one(e, 0);
  for (const auto& node : c.nodes) {
    if (node->id() == 0 || node->interested_in(e)) continue;
    bool delegate = false;
    for (std::size_t depth = 1; depth < GetParam().d; ++depth)
      delegate = delegate || c.tree->is_delegate_at(node->address(), depth);
    if (!delegate) {
      EXPECT_FALSE(node->has_received(e.id()));
    }
  }
}

TEST_P(PmcastGrid, DeliveredImpliesInterested) {
  const Event e = make_event_at(0, 0, 0.31);
  auto c = run_one(e, 0);
  for (const auto& node : c.nodes) {
    if (node->has_delivered(e.id())) {
      EXPECT_TRUE(node->interested_in(e));
    }
  }
}

TEST_P(PmcastGrid, DeterministicReplay) {
  const Event e = make_event_at(0, 0, 0.6);
  auto c1 = run_one(e, 0);
  auto c2 = run_one(e, 0);
  EXPECT_EQ(c1.runtime->network().counters().sent,
            c2.runtime->network().counters().sent);
  for (std::size_t i = 0; i < c1.nodes.size(); ++i)
    EXPECT_EQ(c1.nodes[i]->has_delivered(e.id()),
              c2.nodes[i]->has_delivered(e.id()));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, PmcastGrid,
    ::testing::Values(
        GridParams{3, 2, 1, 2, 0.3, 1}, GridParams{3, 2, 2, 3, 1.0, 2},
        GridParams{4, 2, 3, 2, 0.5, 3}, GridParams{3, 3, 2, 3, 0.7, 4},
        GridParams{4, 3, 2, 2, 0.2, 5}, GridParams{5, 2, 2, 4, 0.9, 6},
        GridParams{2, 4, 2, 2, 0.8, 7}, GridParams{6, 2, 3, 3, 0.1, 8},
        GridParams{5, 3, 3, 3, 0.4, 9}, GridParams{8, 1, 2, 3, 0.5, 10}),
    [](const ::testing::TestParamInfo<GridParams>& param_info) {
      std::ostringstream os;
      os << param_info.param;
      return os.str();
    });

// --- Interest regrouping properties over random subscription workloads ----

class RegroupGrid : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RegroupGrid, SummaryNeverFalseNegative) {
  Rng rng(GetParam());
  std::vector<Subscription> subs;
  const std::size_t count = 5 + rng.next_below(30);
  for (std::size_t i = 0; i < count; ++i) {
    switch (rng.next_below(4)) {
      case 0:
        subs.push_back(interval_subscription(rng.next_double(),
                                             rng.next_double() * 0.5));
        break;
      case 1:
        subs.push_back(Subscription::parse(
            "b > " + std::to_string(static_cast<int>(rng.next_below(10)))));
        break;
      case 2:
        subs.push_back(Subscription::parse(
            "b == " + std::to_string(static_cast<int>(rng.next_below(5))) +
            " && u < " + std::to_string(rng.next_double())));
        break;
      default:
        subs.push_back(Subscription::parse(
            "e == \"name" + std::to_string(rng.next_below(4)) + "\""));
        break;
    }
  }
  InterestSummary summary;
  for (const auto& s : subs) summary.merge(InterestSummary::from(s));

  for (int trial = 0; trial < 500; ++trial) {
    Event e;
    e.with(kUniformAttr, rng.next_double())
        .with("b", static_cast<std::int64_t>(rng.next_below(12)))
        .with("e", "name" + std::to_string(rng.next_below(6)));
    bool any = false;
    for (const auto& s : subs) any = any || s.match(e);
    if (any) {
      ASSERT_TRUE(summary.match(e));
    }
  }
}

TEST_P(RegroupGrid, CoarsenedSummaryStillSound) {
  Rng rng(GetParam() ^ 0xfeed);
  InterestSummary summary;
  std::vector<Subscription> subs;
  for (int i = 0; i < 12; ++i) {
    subs.push_back(Subscription::parse(
        "b == " + std::to_string(i) + " && u >= " +
        std::to_string(i * 0.05) + " && u < " + std::to_string(i * 0.05 + 0.1)));
    summary.merge(InterestSummary::from(subs.back()));
  }
  auto coarse = summary;
  coarse.coarsen();
  for (int trial = 0; trial < 500; ++trial) {
    Event e;
    e.with("b", static_cast<std::int64_t>(rng.next_below(14)))
        .with(kUniformAttr, rng.next_double());
    bool any = false;
    for (const auto& s : subs) any = any || s.match(e);
    if (any) {
      ASSERT_TRUE(coarse.match(e));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RegroupGrid,
                         ::testing::Values(11u, 22u, 33u, 44u, 55u, 66u, 77u,
                                           88u));

// --- Analysis invariants across the parameter grid ------------------------

struct AnalysisParamsCase {
  std::size_t a, d, r;
  double fanout, pd, loss;
};

class AnalysisGrid : public ::testing::TestWithParam<AnalysisParamsCase> {};

TEST_P(AnalysisGrid, ResultWellFormed) {
  const auto& c = GetParam();
  TreeAnalysisParams p;
  p.a = c.a;
  p.d = c.d;
  p.r = c.r;
  p.fanout = c.fanout;
  p.pd = c.pd;
  p.env.loss = c.loss;
  const auto result = analyze_tree(p);
  ASSERT_EQ(result.depths.size(), c.d);
  EXPECT_GE(result.reliability, 0.0);
  EXPECT_LE(result.reliability, 1.0);
  EXPECT_GE(result.total_rounds, 0.0);
  for (const auto& depth : result.depths) {
    EXPECT_GE(depth.pi, c.pd - 1e-12);  // union over represented processes
    EXPECT_LE(depth.pi, 1.0 + 1e-12);
    EXPECT_GE(depth.ri, 0.0);
    EXPECT_LE(depth.ri, 1.0 + 1e-12);
    EXPECT_LE(depth.expected_infected, depth.interested + 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, AnalysisGrid,
    ::testing::Values(AnalysisParamsCase{22, 3, 3, 2, 0.5, 0.05},
                      AnalysisParamsCase{22, 3, 3, 2, 0.05, 0.05},
                      AnalysisParamsCase{10, 3, 4, 3, 0.2, 0.0},
                      AnalysisParamsCase{40, 3, 4, 3, 0.5, 0.1},
                      AnalysisParamsCase{5, 4, 2, 2, 0.8, 0.02},
                      AnalysisParamsCase{100, 2, 3, 4, 0.3, 0.05},
                      AnalysisParamsCase{7, 1, 1, 2, 0.6, 0.0},
                      AnalysisParamsCase{22, 3, 1, 1, 0.4, 0.2}));

}  // namespace
}  // namespace pmc

// Adversarial fault-injection layer: the network's duplication/reorder
// injectors and WAN latency models, the protocols' exactly-once guarantee
// under them, graceful degradation (capped stores shed deterministically),
// and the scenario engine's asymmetric/flapping partitions. Everything
// here is a fixed-seed deterministic run: the injectors draw from their
// own labeled sub-streams, so two identical runs must agree bit for bit.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "baselines/flooding.hpp"
#include "baselines/treecast.hpp"
#include "cluster_helpers.hpp"
#include "harness/scenario.hpp"
#include "harness/workload.hpp"

namespace pmc {
namespace {

using testing::Cluster;
using testing::default_config;
using testing::make_cluster;

// Per-(process, event) delivery tally — the exactly-once witness. The
// protocols' own `delivered_` sets would mask a double delivery (set
// insert is idempotent), so the handler counts every callback invocation.
struct DeliveryLog {
  std::map<std::pair<ProcessId, EventId>, int> counts;
  void record(ProcessId pid, const Event& e) {
    ++counts[{pid, e.id()}];
  }
  int max_per_target() const {
    int worst = 0;
    for (const auto& [key, n] : counts) worst = std::max(worst, n);
    return worst;
  }
};

// ---------------------------------------------------------------------------
// Exactly-once under duplication + reordering, per protocol
// ---------------------------------------------------------------------------

TEST(Adversarial, PmcastExactlyOnceUnderDuplicationAndReorder) {
  auto c = make_cluster(4, 2, 2, 0.6, default_config(), /*loss=*/0.0,
                        /*seed=*/5);
  c.runtime->network().set_duplication(0.6);
  c.runtime->network().set_reorder(0.5, sim_ms(30));

  DeliveryLog log;
  for (auto& node : c.nodes)
    node->set_deliver_handler([&log, pid = node->id()](const Event& e) {
      log.record(pid, e);
    });

  Rng rng(9);
  for (int k = 0; k < 5; ++k)
    c.nodes[static_cast<std::size_t>(k * 3) % c.nodes.size()]->pmcast(
        make_event_at(0, k, rng.next_double()));
  c.runtime->run_until_idle();

  ASSERT_FALSE(log.counts.empty());
  EXPECT_EQ(log.max_per_target(), 1)
      << "a process delivered the same event twice";
  // The injectors must actually have fired, and the duplicates must have
  // been absorbed by the seen-set (the audit counters say which).
  EXPECT_GT(c.runtime->network().counters().duplicated, 0u);
  EXPECT_GT(c.runtime->network().counters().reordered, 0u);
  std::uint64_t suppressed = 0;
  for (const auto& node : c.nodes) suppressed += node->stats().dup_suppressed;
  EXPECT_GT(suppressed, 0u);
}

TEST(Adversarial, FloodingExactlyOnceUnderDuplicationAndReorder) {
  Rng member_rng(7);
  const auto members = uniform_interest_members(
      AddressSpace::regular(30, 1), 0.5, member_rng);
  auto rt = std::make_unique<Runtime>(NetworkConfig{}, 3);
  rt->network().set_duplication(0.7);
  rt->network().set_reorder(0.5, sim_ms(20));
  auto peers = std::make_shared<std::vector<ProcessId>>();
  for (std::size_t i = 0; i < members.size(); ++i)
    peers->push_back(static_cast<ProcessId>(i));
  FloodingConfig config;
  config.fanout = 3;
  std::vector<std::unique_ptr<FloodingNode>> nodes;
  DeliveryLog log;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<FloodingNode>(
        *rt, static_cast<ProcessId>(i), config, members[i].subscription,
        peers));
    nodes.back()->set_deliver_handler(
        [&log, pid = static_cast<ProcessId>(i)](const Event& e) {
          log.record(pid, e);
        });
  }

  nodes[0]->broadcast(make_event_at(0, 0, 0.4));
  nodes[5]->broadcast(make_event_at(5, 1, 0.8));
  rt->run_until_idle();

  ASSERT_FALSE(log.counts.empty());
  EXPECT_EQ(log.max_per_target(), 1);
  EXPECT_GT(rt->network().counters().duplicated, 0u);
  std::uint64_t suppressed = 0;
  for (const auto& n : nodes) suppressed += n->stats().dup_suppressed;
  EXPECT_GT(suppressed, 0u);
}

TEST(Adversarial, TreecastExactlyOnceUnderDuplicationAndReorder) {
  // Treecast sends each event down disjoint delegate chains, so without
  // the injector no process ever sees a duplicate; with it, every clone
  // must die in the seen-set.
  Rng member_rng(11);
  const auto members = uniform_interest_members(
      AddressSpace::regular(3, 2), 0.7, member_rng);
  std::unique_ptr<Interns> interns = std::make_unique<Interns>();
  TreeConfig tree_config;
  tree_config.depth = 2;
  tree_config.redundancy = 2;
  auto tree = std::make_unique<GroupTree>(tree_config, members, *interns);
  auto views = std::make_unique<TreeViewProvider>(*tree);
  auto rt = std::make_unique<Runtime>(NetworkConfig{}, 13);
  rt->network().set_duplication(0.8);
  rt->network().set_reorder(0.5, sim_ms(10));
  std::vector<ProcessId> directory;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns->addrs.intern(members[i].address);
    if (directory.size() <= id) directory.resize(id + 1, kNoProcess);
    directory[id] = static_cast<ProcessId>(i);
  }
  TreecastConfig config;
  config.tree = tree_config;
  std::vector<std::unique_ptr<TreecastNode>> nodes;
  DeliveryLog log;
  for (std::size_t i = 0; i < members.size(); ++i) {
    nodes.push_back(std::make_unique<TreecastNode>(
        *rt, static_cast<ProcessId>(i), config, members[i].address,
        members[i].subscription, *views,
        [&directory](AddrId id) {
          return id < directory.size() ? directory[id] : kNoProcess;
        }));
    nodes.back()->set_deliver_handler(
        [&log, pid = static_cast<ProcessId>(i)](const Event& e) {
          log.record(pid, e);
        });
  }

  nodes[0]->multicast(make_event_at(0, 0, 0.5));
  nodes[3]->multicast(make_event_at(3, 1, 0.2));
  rt->run_until_idle();

  ASSERT_FALSE(log.counts.empty());
  EXPECT_EQ(log.max_per_target(), 1);
  EXPECT_GT(rt->network().counters().duplicated, 0u);
  std::uint64_t suppressed = 0;
  for (const auto& n : nodes) suppressed += n->stats().dup_suppressed;
  EXPECT_GT(suppressed, 0u);
}

// ---------------------------------------------------------------------------
// Injector determinism and latency models
// ---------------------------------------------------------------------------

TEST(Adversarial, InjectorsReplayBitForBit) {
  // The duplication/reorder/latency draws come from labeled sub-streams of
  // the per-message seed, so two identical runs agree on every counter.
  const auto run = [] {
    auto c = make_cluster(4, 2, 2, 0.5, default_config(), 0.02, 21);
    c.runtime->network().set_duplication(0.4);
    c.runtime->network().set_reorder(0.3, sim_ms(25));
    c.runtime->network().set_latency_model(make_lognormal_latency(
        LogNormalParams{sim_ms(2), 0.8}, sim_us(100), sim_ms(40)));
    Rng rng(33);
    for (int k = 0; k < 4; ++k)
      c.nodes[static_cast<std::size_t>(k)]->pmcast(
          make_event_at(0, k, rng.next_double()));
    c.runtime->run_until_idle();
    return c.runtime->network().counters();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first.sent, second.sent);
  EXPECT_EQ(first.delivered, second.delivered);
  EXPECT_EQ(first.lost, second.lost);
  EXPECT_EQ(first.duplicated, second.duplicated);
  EXPECT_EQ(first.reordered, second.reordered);
  EXPECT_GT(first.duplicated, 0u);
  EXPECT_GT(first.reordered, 0u);
}

struct LatencyProbe {
  Scheduler sched;
  NetworkConfig config;
  LatencyProbe() {
    config.latency_min = sim_us(100);
    config.latency_max = sim_us(500);
  }
  /// Mean one-hop latency over `n` sends from `from` to `to`.
  SimTime mean_latency(Network& net, ProcessId from, ProcessId to, int n) {
    SimTime total = 0;
    SimTime arrival = 0;
    net.attach(to, [&](ProcessId, const MessagePtr&) {
      arrival = sched.now();
    });
    for (int i = 0; i < n; ++i) {
      const SimTime sent_at = sched.now();
      net.send(from, to, std::make_shared<MessageBase>());
      sched.run();
      total += arrival - sent_at;
    }
    net.detach(to);
    return total / n;
  }
};

TEST(Adversarial, LognormalModelRespectsFloorAndCap) {
  LatencyProbe probe;
  Network net(probe.sched, probe.config, Rng(55));
  const SimTime floor = sim_ms(1), cap = sim_ms(4);
  net.set_latency_model(
      make_lognormal_latency(LogNormalParams{sim_ms(2), 1.5}, floor, cap));
  SimTime arrival = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) {
    arrival = probe.sched.now();
  });
  for (int i = 0; i < 200; ++i) {
    const SimTime sent_at = probe.sched.now();
    net.send(0, 1, std::make_shared<MessageBase>());
    probe.sched.run();
    const SimTime latency = arrival - sent_at;
    ASSERT_GE(latency, floor);
    ASSERT_LE(latency, cap);
  }
}

TEST(Adversarial, ZonedModelSeparatesLocalFromWan) {
  LatencyProbe probe;
  Network net(probe.sched, probe.config, Rng(56));
  // Zone = pid / 2: pids {0,1} are co-located, pid 2 is across the WAN.
  net.set_latency_model(make_zoned_latency(
      [](ProcessId pid) { return static_cast<std::uint32_t>(pid / 2); },
      LogNormalParams{sim_us(300), 0.3}, LogNormalParams{sim_ms(20), 0.3},
      sim_us(50), sim_ms(200)));
  const SimTime local = probe.mean_latency(net, 0, 1, 50);
  const SimTime wan = probe.mean_latency(net, 0, 2, 50);
  EXPECT_LT(local, sim_ms(2));
  EXPECT_GT(wan, sim_ms(5));
  EXPECT_GT(wan, 4 * local);
}

TEST(Adversarial, ClearingTheModelRestoresUniformLatency) {
  LatencyProbe probe;
  Network net(probe.sched, probe.config, Rng(57));
  net.set_latency_model(
      make_lognormal_latency(LogNormalParams{sim_ms(50), 0.1}, 0,
                             sim_ms(100)));
  EXPECT_TRUE(net.has_latency_model());
  net.set_latency_model(nullptr);
  EXPECT_FALSE(net.has_latency_model());
  SimTime arrival = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) {
    arrival = probe.sched.now();
  });
  const SimTime sent_at = probe.sched.now();
  net.send(0, 1, std::make_shared<MessageBase>());
  probe.sched.run();
  EXPECT_LE(arrival - sent_at, probe.config.latency_max);
}

// ---------------------------------------------------------------------------
// Graceful degradation: capped stores shed deterministically
// ---------------------------------------------------------------------------

TEST(Adversarial, RetainedStoreShedsOldestWhenCapped) {
  PmcastConfig config = default_config();
  config.recovery_rounds = 6;  // retention is off (and the cap moot) at 0
  config.max_retained = 3;
  auto c = make_cluster(4, 2, 2, 1.0, config, 0.0, 6);
  Rng rng(17);
  for (int k = 0; k < 10; ++k)
    c.nodes[0]->pmcast(make_event_at(0, k, rng.next_double()));
  c.runtime->run_until_idle();

  std::uint64_t shed = 0;
  for (const auto& node : c.nodes) shed += node->stats().shed_events;
  EXPECT_GT(shed, 0u) << "the retained-event cap never bit";
  // Degradation is graceful: recent events are still delivered even
  // though old retained copies were evicted.
  const Event last = make_event_at(0, 10, 0.5);
  c.nodes[0]->pmcast(last);
  c.runtime->run_until_idle();
  std::size_t delivered = 0;
  for (const auto& node : c.nodes)
    if (node->has_delivered(last.id())) ++delivered;
  EXPECT_GE(delivered, c.nodes.size() / 2);
}

TEST(Adversarial, SheddingIsDeterministic) {
  const auto run = [] {
    PmcastConfig config = default_config();
    config.max_retained = 2;
    config.max_buffered = 8;
    auto c = make_cluster(4, 2, 2, 1.0, config, 0.05, 23);
    Rng rng(29);
    for (int k = 0; k < 12; ++k)
      c.nodes[static_cast<std::size_t>(k) % c.nodes.size()]->pmcast(
          make_event_at(0, k, rng.next_double()));
    c.runtime->run_until_idle();
    std::uint64_t shed = 0, delivered = 0;
    for (const auto& node : c.nodes) {
      shed += node->stats().shed_events;
      delivered += node->stats().delivered;
    }
    return std::pair{shed, delivered};
  };
  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.first, 0u);
  EXPECT_EQ(first, second);
}

// ---------------------------------------------------------------------------
// Scenario engine: asymmetric and flapping partitions
// ---------------------------------------------------------------------------

ChurnConfig adversarial_config(std::uint64_t seed = 19) {
  ChurnConfig c;
  c.a = 4;
  c.d = 2;
  c.r = 2;
  c.pd = 0.7;
  c.initial_fill = 1.0;
  c.period = sim_ms(50);
  c.suspicion_timeout = sim_ms(10000);  // keep membership out of the way
  c.seed = seed;
  return c;
}

TEST(Adversarial, AsymPartitionIsOneWay) {
  // Same seed, same publish schedule, partitions that never heal inside
  // the horizon. Run A blocks only {0,2,3} -> {1}: side 1 hears nothing,
  // but its own publishes still flow OUT. Run B cuts side 1 off in both
  // directions (symmetric Partition). If the asym filter were secretly
  // two-way, both runs would strand side 1's events and deliver the same;
  // one-way-ness shows up as run A delivering strictly more.
  const auto run = [](bool symmetric) {
    ChurnSim sim(adversarial_config());
    ScenarioScript s;
    if (symmetric) {
      s.add(sim_ms(100), Partition{{1}, sim_ms(3900)});
    } else {
      AsymPartition p;
      p.from_side = {0, 2, 3};
      p.to_side = {1};
      p.heal_at = sim_ms(3900);
      s.add(sim_ms(100), p);
    }
    s.add(sim_ms(200), PublishBurst{8, sim_ms(20)});
    sim.play(s);
    sim.run_until(sim_ms(3500));  // stops before either heal fires
    return sim.summary();
  };
  const auto one_way = run(false);
  const auto two_way = run(true);
  EXPECT_EQ(one_way.counters.asym_partitions, 1u);
  EXPECT_EQ(two_way.counters.partitions, 1u);
  ASSERT_GT(one_way.counters.expected_deliveries, 0u);
  EXPECT_LE(one_way.counters.delivered,
            one_way.counters.expected_deliveries);
  // Both runs strand the events side 1 was owed...
  EXPECT_LT(one_way.counters.delivered,
            one_way.counters.expected_deliveries);
  // ...but only the symmetric cut also strands side 1's own publishes.
  EXPECT_GT(one_way.counters.delivered, two_way.counters.delivered);
}

TEST(Adversarial, FlapDropsOnlyInsideDownWindows) {
  ChurnSim sim(adversarial_config(31));
  ScenarioScript s;
  Flap f;
  f.side = {0};
  f.period = sim_ms(200);
  f.duty = 0.4;
  f.until = sim_ms(2000);
  s.add(sim_ms(100), f);
  s.add(sim_ms(300), PublishBurst{10, sim_ms(50)});
  sim.play(s);
  sim.run_until(sim_ms(5000));
  const auto summary = sim.summary();
  EXPECT_EQ(summary.counters.flaps, 1u);
  ASSERT_GT(summary.counters.expected_deliveries, 0u);
  // The link is up 60% of each period and the flap ends at 2s, so the
  // burst still gets through (recovery gossip fills the down windows).
  EXPECT_LE(summary.counters.delivered,
            summary.counters.expected_deliveries);
  EXPECT_GE(static_cast<double>(summary.counters.delivered),
            0.8 * static_cast<double>(summary.counters.expected_deliveries));
}

TEST(Adversarial, ScenarioRunsReplayBitForBit) {
  const auto run = [] {
    ChurnSim sim(adversarial_config(37));
    sim.play(ScenarioScript::parse(
        "at 100ms latency lognormal 2ms 0.8\n"
        "at 200ms flap 0 period 200ms duty 0.3 until 1500ms\n"
        "at 300ms duplicate 0.4 for 1s\n"
        "at 2s publish 6 every 50ms\n"));
    sim.run_until(sim_ms(4000));
    return sim.summary();
  };
  const auto first = run();
  const auto second = run();
  EXPECT_EQ(first, second);
  EXPECT_EQ(first.fingerprint, second.fingerprint);
  EXPECT_GT(first.network.duplicated, 0u);
  EXPECT_GT(first.dup_suppressed, 0u);
}

}  // namespace
}  // namespace pmc

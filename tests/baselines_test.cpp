#include <gtest/gtest.h>

#include <memory>

#include "baselines/flooding.hpp"
#include "baselines/genuine.hpp"
#include "harness/workload.hpp"

namespace pmc {
namespace {

std::vector<Member> make_members(std::size_t n, double pd,
                                 std::uint64_t seed) {
  Rng rng(seed);
  return uniform_interest_members(
      AddressSpace::regular(static_cast<AddrComponent>(n), 1), pd, rng);
}

struct FloodCluster {
  std::unique_ptr<Runtime> rt;
  std::vector<std::unique_ptr<FloodingNode>> nodes;
};

FloodCluster make_flooding(const std::vector<Member>& members,
                           std::uint64_t seed = 2) {
  FloodCluster c;
  c.rt = std::make_unique<Runtime>(NetworkConfig{}, seed);
  auto peers = std::make_shared<std::vector<ProcessId>>();
  for (std::size_t i = 0; i < members.size(); ++i)
    peers->push_back(static_cast<ProcessId>(i));
  FloodingConfig config;
  config.fanout = 3;
  for (std::size_t i = 0; i < members.size(); ++i)
    c.nodes.push_back(std::make_unique<FloodingNode>(
        *c.rt, static_cast<ProcessId>(i), config, members[i].subscription,
        peers));
  return c;
}

TEST(Flooding, DeliversToAllInterested) {
  // Flooding with a finite fanout is a branching process: full coverage is
  // overwhelmingly likely but not guaranteed, so the seed is part of the
  // test vector (seed 2 happens to strand one interested node).
  const auto members = make_members(30, 0.5, 7);
  auto c = make_flooding(members, /*seed=*/3);
  const Event e = make_event_at(0, 0, 0.4);
  c.nodes[0]->broadcast(e);
  c.rt->run_until_idle();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (members[i].subscription.match(e)) {
      EXPECT_TRUE(c.nodes[i]->has_delivered(e.id())) << i;
    }
  }
}

TEST(Flooding, UninterestedReceiveAnyway) {
  // The defining weakness: reception probability ~1 regardless of interest.
  const auto members = make_members(30, 0.2, 8);
  auto c = make_flooding(members);
  const Event e = make_event_at(0, 0, 0.9);
  c.nodes[0]->broadcast(e);
  c.rt->run_until_idle();
  std::size_t uninterested = 0, received = 0;
  for (std::size_t i = 1; i < members.size(); ++i) {
    if (members[i].subscription.match(e)) continue;
    ++uninterested;
    if (c.nodes[i]->has_received(e.id())) ++received;
  }
  ASSERT_GT(uninterested, 0u);
  EXPECT_GE(static_cast<double>(received),
            0.95 * static_cast<double>(uninterested));
}

TEST(Flooding, NeverDeliversToUninterested) {
  const auto members = make_members(20, 0.3, 9);
  auto c = make_flooding(members);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->broadcast(e);
  c.rt->run_until_idle();
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!members[i].subscription.match(e)) {
      EXPECT_FALSE(c.nodes[i]->has_delivered(e.id())) << i;
    }
  }
}

TEST(Flooding, Quiesces) {
  const auto members = make_members(25, 1.0, 10);
  auto c = make_flooding(members);
  c.nodes[0]->broadcast(make_event_at(0, 0, 0.5));
  c.rt->run_until_idle();
  EXPECT_TRUE(c.rt->scheduler().empty());
}

struct GenuineCluster {
  std::unique_ptr<Runtime> rt;
  std::vector<std::unique_ptr<GenuineNode>> nodes;
};

GenuineCluster make_genuine(const std::vector<Member>& members,
                            std::size_t view_size, std::uint64_t seed = 3) {
  GenuineCluster c;
  c.rt = std::make_unique<Runtime>(NetworkConfig{}, seed);
  GenuineConfig config;
  config.fanout = 3;
  config.group_size_hint = members.size();
  Rng rng(seed ^ 0xbeef);
  for (std::size_t i = 0; i < members.size(); ++i) {
    std::vector<GenuineNode::Peer> view;
    for (const auto p : rng.sample_without_replacement(
             members.size(), std::min(view_size, members.size()))) {
      if (p == i) continue;
      view.push_back(GenuineNode::Peer{static_cast<ProcessId>(p),
                                       members[p].subscription});
    }
    c.nodes.push_back(std::make_unique<GenuineNode>(
        *c.rt, static_cast<ProcessId>(i), config, members[i].subscription,
        std::move(view)));
  }
  return c;
}

TEST(Genuine, UninterestedNeverContacted) {
  // The strict invariant of a genuine multicast.
  const auto members = make_members(40, 0.3, 11);
  auto c = make_genuine(members, 15);
  const Event e = make_event_at(0, 0, 0.25);
  c.nodes[0]->multicast(e);
  c.rt->run_until_idle();
  for (std::size_t i = 1; i < members.size(); ++i) {
    if (!members[i].subscription.match(e)) {
      EXPECT_FALSE(c.nodes[i]->has_received(e.id())) << i;
    }
  }
}

TEST(Genuine, FullViewsAndHighInterestDeliverWell) {
  const auto members = make_members(30, 0.9, 12);
  auto c = make_genuine(members, 30);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->multicast(e);
  c.rt->run_until_idle();
  std::size_t interested = 0, delivered = 0;
  for (std::size_t i = 0; i < members.size(); ++i) {
    if (!members[i].subscription.match(e)) continue;
    ++interested;
    if (c.nodes[i]->has_delivered(e.id())) ++delivered;
  }
  EXPECT_GE(delivered, interested - 1);
}

TEST(Genuine, SmallMatchingRateCausesIsolation) {
  // With small partial views and few interested processes, interested
  // processes get isolated — the reliability failure the paper predicts.
  // Aggregate across seeds so the expectation is statistically robust.
  std::size_t total_interested = 0, total_delivered = 0;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto members = make_members(60, 0.08, 100 + seed);
    auto c = make_genuine(members, 6, seed);
    const Event e = make_event_at(0, 0, 0.5);
    c.nodes[0]->multicast(e);
    c.rt->run_until_idle();
    for (std::size_t i = 1; i < members.size(); ++i) {
      if (!members[i].subscription.match(e)) continue;
      ++total_interested;
      if (c.nodes[i]->has_delivered(e.id())) ++total_delivered;
    }
  }
  ASSERT_GT(total_interested, 0u);
  EXPECT_LT(total_delivered, total_interested);  // some isolation occurred
}

TEST(Genuine, Quiesces) {
  const auto members = make_members(30, 0.5, 13);
  auto c = make_genuine(members, 10);
  c.nodes[0]->multicast(make_event_at(0, 0, 0.5));
  c.rt->run_until_idle();
  EXPECT_TRUE(c.rt->scheduler().empty());
}

TEST(Genuine, EmptyViewPublisherOnlyDeliversLocally) {
  const auto members = make_members(5, 1.0, 14);
  auto c = make_genuine(members, 0);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->multicast(e);
  c.rt->run_until_idle();
  EXPECT_TRUE(c.nodes[0]->has_delivered(e.id()));
  for (std::size_t i = 1; i < members.size(); ++i)
    EXPECT_FALSE(c.nodes[i]->has_received(e.id()));
}

}  // namespace
}  // namespace pmc

// End-to-end integration tests: full pmcast clusters under loss and crash,
// combined membership + dissemination stacks, and analysis-vs-simulation
// cross-checks on mid-sized trees.
#include <gtest/gtest.h>

#include "analysis/tree_analysis.hpp"
#include "cluster_helpers.hpp"
#include "harness/experiment.hpp"
#include "membership/sync.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

TEST(Integration, MidSizeTreeUnderLossStillReliable) {
  // 216 processes, 10% loss: delivery should stay high for pd = 0.5.
  PmcastConfig config = default_config();
  config.env.prior.loss = 0.10;
  auto c = make_cluster(6, 3, 3, 0.5, config, /*loss=*/0.10, /*seed=*/1);
  const Event e = make_event_at(0, 0, 0.37);
  c.nodes[100]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t interested = 0, delivered = 0;
  for (const auto& n : c.nodes) {
    if (!n->interested_in(e)) continue;
    ++interested;
    if (n->has_delivered(e.id())) ++delivered;
  }
  ASSERT_GT(interested, 50u);
  EXPECT_GE(static_cast<double>(delivered) / static_cast<double>(interested),
            0.85);
}

TEST(Integration, CrashesDuringDisseminationTolerated) {
  PmcastConfig config = default_config();
  auto c = make_cluster(6, 3, 3, 0.6, config, 0.05, /*seed=*/2);
  // Crash 5% of processes over the first 2 seconds.
  std::vector<Process*> victims;
  Rng rng(3);
  for (const auto v : rng.sample_without_replacement(c.nodes.size(), 10))
    victims.push_back(c.nodes[v].get());
  c.runtime->schedule_crashes(victims, sim_ms(2000));
  const Event e = make_event_at(0, 0, 0.8);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::size_t interested = 0, delivered = 0;
  for (const auto& n : c.nodes) {
    if (!n->alive() || !n->interested_in(e)) continue;
    ++interested;
    if (n->has_delivered(e.id())) ++delivered;
  }
  EXPECT_GE(static_cast<double>(delivered) / static_cast<double>(interested),
            0.8);
}

TEST(Integration, SimulationTracksAnalysisForModeratePd) {
  // The Sec. 4 analysis and the simulator must agree on the shape: high
  // reliability at pd = 0.6 on a 125-process tree.
  ExperimentConfig c;
  c.a = 5;
  c.d = 3;
  c.r = 3;
  c.fanout = 3;
  c.pd = 0.6;
  c.loss = 0.05;
  c.runs = 15;
  c.seed = 5;
  const auto sim = run_pmcast_experiment(c);
  const auto ana = analyze_tree(c.analysis_params());
  EXPECT_GT(sim.delivery.mean(), 0.75);
  EXPECT_GT(ana.reliability, 0.75);
  EXPECT_NEAR(sim.delivery.mean(), ana.reliability, 0.25);
}

TEST(Integration, SmallPdLosesReliabilityInBothWorlds) {
  // The paper's Fig. 4 left edge: both analysis and simulation degrade.
  ExperimentConfig mid;
  mid.a = 6;
  mid.d = 3;
  mid.r = 3;
  mid.fanout = 2;
  mid.loss = 0.05;
  mid.runs = 15;
  mid.seed = 6;
  auto low = mid;
  mid.pd = 0.6;
  low.pd = 0.02;
  const auto sim_mid = run_pmcast_experiment(mid);
  const auto sim_low = run_pmcast_experiment(low);
  EXPECT_GT(sim_mid.delivery.mean(), sim_low.delivery.mean());
  const auto ana_mid = analyze_tree(mid.analysis_params());
  const auto ana_low = analyze_tree(low.analysis_params());
  EXPECT_GT(ana_mid.reliability, ana_low.reliability);
}

TEST(Integration, TuningRecoversSmallPdReliability) {
  // Fig. 7: the h-tuned variant dominates at small matching rates.
  ExperimentConfig base;
  base.a = 8;
  base.d = 2;
  base.r = 3;
  base.fanout = 3;
  base.pd = 0.06;
  base.loss = 0.0;
  base.runs = 30;
  base.seed = 7;
  auto tuned = base;
  tuned.tuning_threshold = 8;
  const auto untuned_result = run_pmcast_experiment(base);
  const auto tuned_result = run_pmcast_experiment(tuned);
  EXPECT_GE(tuned_result.delivery.mean(),
            untuned_result.delivery.mean() - 0.02);
  // And the cost: more uninterested receptions.
  EXPECT_GE(tuned_result.false_reception.mean(),
            untuned_result.false_reception.mean());
}

TEST(Integration, MembershipAndDisseminationComposed) {
  // SyncNodes converge membership; pmcast nodes then disseminate over the
  // materialized views — the full deployment stack in one simulation.
  const auto space = AddressSpace::regular(3, 2);
  Rng rng(8);
  const auto members = uniform_interest_members(space, 1.0, rng);
  TreeConfig tc;
  tc.depth = 2;
  tc.redundancy = 2;
  Interns interns;
  const GroupTree tree(tc, members, interns);

  Runtime rt(NetworkConfig{}, 9);
  // Interleave ids: sync node i <-> pmcast node i + 100.
  std::vector<ProcessId> dir;
  for (std::size_t i = 0; i < members.size(); ++i) {
    const AddrId id = interns.addrs.intern(members[i].address);
    if (dir.size() <= id) dir.resize(id + 1, kNoProcess);
    dir[id] = static_cast<ProcessId>(i);
  }

  SyncConfig sc;
  sc.tree = tc;
  sc.gossip_period = sim_ms(50);
  std::vector<std::unique_ptr<SyncNode>> sync_nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    sync_nodes.push_back(std::make_unique<SyncNode>(
        rt, static_cast<ProcessId>(i), sc,
        tree.materialize_view(members[i].address),
        members[i].subscription));
    sync_nodes.back()->set_directory([&dir](AddrId id) {
      return id < dir.size() ? dir[id] : kNoProcess;
    });
  }
  rt.run_for(sim_ms(300));  // let membership settle

  std::vector<ProcessId> pm_dir(dir.size(), kNoProcess);
  for (std::size_t i = 0; i < members.size(); ++i)
    pm_dir[interns.addrs.find(members[i].address)] =
        static_cast<ProcessId>(i + 100);
  PmcastConfig pc = default_config();
  pc.tree = tc;
  std::vector<std::unique_ptr<LocalViewProvider>> providers;
  std::vector<std::unique_ptr<PmcastNode>> pm_nodes;
  for (std::size_t i = 0; i < members.size(); ++i) {
    providers.push_back(
        std::make_unique<LocalViewProvider>(sync_nodes[i]->view()));
    pm_nodes.push_back(std::make_unique<PmcastNode>(
        rt, static_cast<ProcessId>(i + 100), pc, members[i].address,
        members[i].subscription, *providers[i], [&pm_dir](AddrId id) {
          return id < pm_dir.size() ? pm_dir[id] : kNoProcess;
        }));
  }
  const Event e = make_event_at(0, 0, 0.5);
  pm_nodes[0]->pmcast(e);
  rt.run_for(sim_ms(5000));
  std::size_t delivered = 0;
  for (const auto& n : pm_nodes)
    if (n->has_delivered(e.id())) ++delivered;
  EXPECT_GE(delivered, 8u);
}

TEST(Integration, SequentialEventStream) {
  // A publisher streams 20 events; every one must keep high delivery.
  auto c = make_cluster(4, 2, 2, 1.0, default_config(), 0.0, 10);
  for (std::uint64_t s = 0; s < 20; ++s) {
    Rng rng(100 + s);
    c.nodes[s % c.nodes.size()]->pmcast(
        make_uniform_event(s % c.nodes.size(), s, rng));
    c.runtime->run_until_idle();
  }
  for (std::uint64_t s = 0; s < 20; ++s) {
    std::size_t delivered = 0;
    for (const auto& n : c.nodes)
      if (n->has_delivered(EventId{s % c.nodes.size(), s})) ++delivered;
    EXPECT_GE(delivered, 14u) << "event " << s;
  }
}

TEST(Integration, ClusteredInterestsLocalizeTraffic) {
  // With per-leaf clustered interests, an event matching one leaf's region
  // keeps most traffic inside that subtree (locality claim).
  ExperimentConfig scattered;
  scattered.a = 6;
  scattered.d = 2;
  scattered.r = 2;
  scattered.fanout = 3;
  scattered.pd = 0.15;
  scattered.loss = 0.0;
  scattered.runs = 10;
  scattered.seed = 12;
  auto clustered = scattered;
  clustered.clustered = true;
  clustered.cluster_jitter = 0.0;
  const auto r_scattered = run_pmcast_experiment(scattered);
  const auto r_clustered = run_pmcast_experiment(clustered);
  // Clustered interests mean fewer subgroups infected -> fewer messages.
  EXPECT_LE(r_clustered.messages_per_process.mean(),
            r_scattered.messages_per_process.mean() * 1.5);
}

}  // namespace
}  // namespace pmc

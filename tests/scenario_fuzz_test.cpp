// Scenario-script fuzz: random scripts over every ScenarioOp alternative
// must either validate or be rejected with the contract's std::logic_error
// (never crash, never throw anything else), and every script that
// validates must round-trip through the text format byte-identically:
// parse(to_string()) re-prints to the same bytes. Rng use is fine here —
// tests/ is outside detlint's draw-discipline scope, and the fuzz seeds
// are fixed so failures replay.
#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <variant>

#include "common/rng.hpp"
#include "harness/scenario.hpp"

namespace pmc {
namespace {

std::vector<AddrComponent> random_components(Rng& rng, std::size_t min_len) {
  std::vector<AddrComponent> out;
  const std::size_t len = min_len + rng.next_below(3);
  for (std::size_t i = 0; i < len; ++i)
    out.push_back(static_cast<AddrComponent>(rng.next_below(6)));
  return out;
}

/// A time strictly after `at` (valid for heal_at / until deadlines).
SimTime after(Rng& rng, SimTime at) {
  return at + 1 + static_cast<SimTime>(rng.next_below(sim_ms(800)));
}

/// One random action at time `at`. With `wild`, parameters may stray
/// outside the contract (empty sides, duty > 1, sigma > 4, overlapping
/// duplicate bursts...) so the validate-or-reject path gets exercised;
/// without it, every parameter respects the documented contract.
/// `dup_busy_until` threads the DuplicateBurst non-overlap rule through
/// sane generation. Exercises all 14 ScenarioOp alternatives.
ScenarioOp random_op(Rng& rng, SimTime at, bool wild,
                     SimTime& dup_busy_until, std::size_t& crash_credit) {
  static_assert(std::variant_size_v<ScenarioOp> == 14,
                "new ScenarioOp alternatives need a generator arm");
  const auto count = [&](std::size_t lo) {
    return wild ? rng.next_below(4) : lo + rng.next_below(3);
  };
  switch (rng.next_below(14)) {
    case 0:
      crash_credit += 2;
      return CrashNodes{2};
    case 1: {
      if (wild) return RecoverNodes{1 + rng.next_below(4)};
      if (crash_credit == 0) return ScenarioOp{CrashNodes{1}};
      const std::size_t n = 1 + rng.next_below(crash_credit);
      crash_credit -= n;
      return RecoverNodes{n};
    }
    case 2:
      return Join{count(1)};
    case 3:
      return Leave{count(1)};
    case 4: {
      Partition p;
      p.side = random_components(rng, wild ? 0 : 1);
      p.heal_at = wild ? static_cast<SimTime>(rng.next_below(sim_ms(2000)))
                       : after(rng, at);
      return p;
    }
    case 5: {
      LossBurst b;
      b.eps = (wild ? 2.0 : 1.0) * rng.next_double();
      b.duration = 1 + static_cast<SimTime>(rng.next_below(sim_ms(500)));
      return b;
    }
    case 6:
      return PublishBurst{count(1),
                          static_cast<SimTime>(rng.next_below(sim_ms(50)))};
    case 7: {
      LatencyProfile p;
      if (rng.next_below(4) == 0) return p;  // `latency uniform`
      p.median = 1 + static_cast<SimTime>(rng.next_below(sim_ms(20)));
      p.sigma = (wild ? 6.0 : 3.9) * rng.next_double() + 0.01;
      return p;
    }
    case 8: {
      AsymPartition p;
      p.from_side = random_components(rng, wild ? 0 : 1);
      p.to_side = random_components(rng, wild ? 0 : 1);
      p.heal_at = wild ? static_cast<SimTime>(rng.next_below(sim_ms(2000)))
                       : after(rng, at);
      return p;
    }
    case 9: {
      Flap f;
      f.side = random_components(rng, wild ? 0 : 1);
      f.period = 1 + static_cast<SimTime>(rng.next_below(sim_ms(300)));
      f.duty = wild ? 1.5 * rng.next_double()
                    : 0.01 + 0.98 * rng.next_double();
      f.until = wild ? static_cast<SimTime>(rng.next_below(sim_ms(2000)))
                     : after(rng, at);
      return f;
    }
    case 10: {
      RackFailure r;
      r.prefix = random_components(rng, wild ? 0 : 1);
      return r;
    }
    case 11:
      return JoinStorm{count(1),
                       static_cast<SimTime>(rng.next_below(sim_ms(400)))};
    case 12: {
      DuplicateBurst b;
      b.prob = wild ? 1.5 * rng.next_double() : rng.next_double();
      b.duration = 1 + static_cast<SimTime>(rng.next_below(sim_ms(400)));
      if (!wild && at < dup_busy_until) return PublishBurst{1, 0};
      dup_busy_until = at + b.duration;
      return b;
    }
    default: {
      static const char* const kPaths[] = {"trace.scn", "sub/outage.scn",
                                           "a", "has space.scn", ""};
      const std::size_t pick =
          rng.next_below(wild ? 5 : 3);  // last two are contract breaches
      return TraceReplay{kPaths[pick]};
    }
  }
}

ScenarioScript random_script(Rng& rng, bool wild) {
  ScenarioScript s;
  SimTime at = 0;
  SimTime dup_busy_until = 0;
  std::size_t crash_credit = 0;
  const std::size_t n = 1 + rng.next_below(10);
  for (std::size_t i = 0; i < n; ++i) {
    at += static_cast<SimTime>(rng.next_below(sim_ms(600)));
    s.add(at, random_op(rng, at, wild, dup_busy_until, crash_credit));
  }
  return s;
}

/// validate() either passes or throws the contract's std::logic_error;
/// any other escape (segfault, bad_variant_access, bad_alloc...) fails.
bool validates_cleanly(const ScenarioScript& s) {
  try {
    s.validate();
    return true;
  } catch (const std::logic_error&) {
    return false;
  }
}

TEST(ScenarioFuzz, WildScriptsValidateOrRejectCleanly) {
  Rng rng(0xf022ed01);
  std::size_t accepted = 0, rejected = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const ScenarioScript s = random_script(rng, /*wild=*/true);
    (validates_cleanly(s) ? accepted : rejected) += 1;
  }
  // The generator straddles the contract boundary: both outcomes must be
  // well represented or the fuzz is only testing one path.
  EXPECT_GT(accepted, 25u);
  EXPECT_GT(rejected, 25u);
}

TEST(ScenarioFuzz, ValidScriptsRoundTripByteIdentically) {
  Rng rng(0x5eed5afe);
  std::size_t round_tripped = 0;
  for (int iter = 0; iter < 400; ++iter) {
    const ScenarioScript s = random_script(rng, /*wild=*/false);
    if (!validates_cleanly(s)) continue;
    const std::string text = s.to_string();
    ScenarioScript reparsed;
    ASSERT_NO_THROW(reparsed = ScenarioScript::parse(text))
        << "valid script failed to re-parse:\n" << text;
    EXPECT_EQ(reparsed.to_string(), text);
    ++round_tripped;
  }
  EXPECT_GT(round_tripped, 100u);
}

TEST(ScenarioFuzz, WildSurvivorsAlsoRoundTrip) {
  // Scripts that pass validation despite the wild generator must still
  // round-trip — the text format has no "barely legal" corner.
  Rng rng(0xacc1de27);
  for (int iter = 0; iter < 400; ++iter) {
    const ScenarioScript s = random_script(rng, /*wild=*/true);
    if (!validates_cleanly(s)) continue;
    const std::string text = s.to_string();
    EXPECT_EQ(ScenarioScript::parse(text).to_string(), text) << text;
  }
}

}  // namespace
}  // namespace pmc

// Golden wire-format fixtures: one checked-in byte vector per encodable
// MsgKind (1-13). These bytes are the frozen format — if any of these tests
// fails after a code change, the change broke compatibility with deployed
// peers and must either be reverted or ship as a new, explicitly versioned
// format. Also: an encode→decode→re-encode property over randomized
// messages (byte-stability), and the guarantee that the sim-only Treecast
// tag is rejected at encode time.
#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <vector>

#include "baselines/treecast.hpp"
#include "common/rng.hpp"
#include "harness/workload.hpp"
#include "wire/messages.hpp"

namespace pmc {
namespace {

std::vector<std::uint8_t> from_hex(const std::string& hex) {
  std::vector<std::uint8_t> out;
  out.reserve(hex.size() / 2);
  for (std::size_t i = 0; i + 1 < hex.size(); i += 2)
    out.push_back(static_cast<std::uint8_t>(
        std::stoul(hex.substr(i, 2), nullptr, 16)));
  return out;
}

std::string to_hex(const std::vector<std::uint8_t>& bytes) {
  static const char* digits = "0123456789abcdef";
  std::string out;
  out.reserve(bytes.size() * 2);
  for (const auto b : bytes) {
    out.push_back(digits[b >> 4]);
    out.push_back(digits[b & 0xf]);
  }
  return out;
}

/// The canonical ViewRow shared by the membership fixtures.
ViewRow canonical_row() {
  ViewRow row;
  row.infix = 1;
  row.delegates = {Address::parse("1.2")};
  row.interests = InterestSummary::from(interval_subscription(0.25, 0.5));
  row.process_count = 3;
  row.version = 9;
  row.alive = true;
  return row;
}

/// One canonical instance of every encodable message kind, constructed
/// exactly as when the fixtures were generated.
std::vector<std::pair<std::string, std::shared_ptr<MessageBase>>>
canonical_messages() {
  std::vector<std::pair<std::string, std::shared_ptr<MessageBase>>> out;
  {
    auto m = std::make_shared<GossipMsg>();
    m->event = std::make_shared<const Event>(make_event_at(7, 1, 0.25));
    m->rate = 0.5;
    m->round = 2;
    m->depth = 1;
    m->sender = Address::parse("1.1");
    m->piggyback.push_back(DepthRow{2, canonical_row()});
    out.emplace_back("Gossip", std::move(m));
  }
  {
    auto m = std::make_shared<MembershipDigestMsg>();
    m->sender = Address::parse("1.2");
    m->sender_pid = 5;
    m->digests = {{1, 0, 10}, {2, 3, 20}};
    out.emplace_back("MembershipDigest", std::move(m));
  }
  {
    auto m = std::make_shared<MembershipUpdateMsg>();
    m->sender = Address::parse("0.1");
    m->rows.push_back(DepthRow{1, canonical_row()});
    out.emplace_back("MembershipUpdate", std::move(m));
  }
  {
    auto m = std::make_shared<JoinRequestMsg>();
    m->joiner = Address::parse("3.3");
    m->joiner_pid = 15;
    m->subscription = interval_subscription(0.25, 0.5);
    m->hops = 2;
    out.emplace_back("JoinRequest", std::move(m));
  }
  {
    auto m = std::make_shared<ViewTransferMsg>();
    m->sender = Address::parse("3.0");
    m->rows.push_back(DepthRow{2, canonical_row()});
    out.emplace_back("ViewTransfer", std::move(m));
  }
  {
    auto m = std::make_shared<LeaveMsg>();
    m->leaver = Address::parse("2.1");
    out.emplace_back("Leave", std::move(m));
  }
  {
    auto m = std::make_shared<FloodGossipMsg>();
    m->event = std::make_shared<const Event>(make_event_at(0, 1, 0.3));
    m->round = 4;
    out.emplace_back("FloodGossip", std::move(m));
  }
  {
    auto m = std::make_shared<GenuineGossipMsg>();
    m->event = std::make_shared<const Event>(make_event_at(0, 2, 0.6));
    m->round = 1;
    out.emplace_back("GenuineGossip", std::move(m));
  }
  {
    auto m = std::make_shared<SuspectQueryMsg>();
    m->sender = Address::parse("0.0");
    m->suspect = Address::parse("0.1");
    out.emplace_back("SuspectQuery", std::move(m));
  }
  {
    auto m = std::make_shared<SuspectReplyMsg>();
    m->sender = Address::parse("0.1");
    m->suspect = Address::parse("0.2");
    m->heard_recently = true;
    out.emplace_back("SuspectReply", std::move(m));
  }
  {
    auto m = std::make_shared<EventDigestMsg>();
    m->ids = {{1, 2}, {3, 4}};
    out.emplace_back("EventDigest", std::move(m));
  }
  {
    auto m = std::make_shared<EventRequestMsg>();
    m->ids = {{5, 6}};
    out.emplace_back("EventRequest", std::move(m));
  }
  {
    auto m = std::make_shared<EventPayloadMsg>();
    m->events.push_back(
        std::make_shared<const Event>(make_event_at(1, 2, 0.5)));
    out.emplace_back("EventPayload", std::move(m));
  }
  return out;
}

/// The frozen bytes, kind name -> hex. Generated once from the canonical
/// messages above; checked in, never regenerated silently.
///
/// DELIBERATE FORMAT BUMP (adaptive ε/τ PR): Gossip gained the explicit
/// `no_regossip` boolean between `depth` and the piggyback flag, replacing
/// the round = uint32::max "do not re-gossip" sentinel the leaf flood used
/// to smuggle through round arithmetic (decoders now also reject rounds
/// beyond a sanity cap, which would have rejected the old sentinel). Every
/// other message kind's bytes are unchanged.
const std::pair<const char*, const char*> kGoldenVectors[] = {
    {"Gossip",
     "01070101017501000000000000d03f000000000000e03f0201000102010101020101"
     "0201020001017501000000000000d03f000000000000e83f0001000000030901"},
    {"MembershipDigest", "02020102050201000a020314"},
    {"MembershipUpdate",
     "03020001010101010201020001017501000000000000d03f000000000000e83f0001"
     "000000030901"},
    {"JoinRequest",
     "040203030f03020201750501000000000000d03f0201750201000000000000e83f"
     "02"},
    {"ViewTransfer",
     "05020300010201010201020001017501000000000000d03f000000000000e83f0001"
     "000000030901"},
    {"Leave", "06020201"},
    {"FloodGossip", "07000101017501333333333333d33f04"},
    {"GenuineGossip", "08000201017501333333333333e33f01"},
    {"SuspectQuery", "09020000020001"},
    {"SuspectReply", "0a02000102000201"},
    {"EventDigest", "0b0201020304"},
    {"EventRequest", "0c010506"},
    {"EventPayload", "0d01010201017501000000000000e03f"},
};

TEST(WireGolden, CoversEveryEncodableKind) {
  // Kinds 1..13 are encodable; 0 (Other) and 14 (Treecast) are not.
  ASSERT_EQ(std::size(kGoldenVectors), 13u);
  const auto messages = canonical_messages();
  ASSERT_EQ(messages.size(), std::size(kGoldenVectors));
  for (std::size_t i = 0; i < messages.size(); ++i) {
    EXPECT_EQ(messages[i].first, kGoldenVectors[i].first);
    // The wire tag must equal the in-memory kind (and hence i + 1).
    const auto bytes = wire::encode_message(*messages[i].second);
    ASSERT_FALSE(bytes.empty());
    EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(i + 1)) << messages[i].first;
    EXPECT_EQ(bytes[0], static_cast<std::uint8_t>(messages[i].second->kind));
  }
}

TEST(WireGolden, EncodeMatchesFrozenBytes) {
  const auto messages = canonical_messages();
  for (std::size_t i = 0; i < messages.size(); ++i) {
    const auto bytes = wire::encode_message(*messages[i].second);
    EXPECT_EQ(to_hex(bytes), kGoldenVectors[i].second)
        << "wire format changed for " << messages[i].first
        << " — this breaks deployed peers";
  }
}

TEST(WireGolden, FrozenBytesStillDecode) {
  // The decoder must accept bytes produced by any past version, and
  // re-encoding the decoded message must reproduce them exactly.
  for (const auto& [name, hex] : kGoldenVectors) {
    const auto bytes = from_hex(hex);
    MessagePtr decoded;
    ASSERT_NO_THROW(decoded = wire::decode_message(bytes)) << name;
    ASSERT_NE(decoded, nullptr) << name;
    EXPECT_EQ(to_hex(wire::encode_message(*decoded)), hex) << name;
  }
}

// ---------------------------------------------------------------------------
// Randomized round-trip property
// ---------------------------------------------------------------------------

Address random_address(Rng& rng) {
  std::vector<AddrComponent> comps(1 + rng.next_below(3));
  for (auto& c : comps) c = static_cast<AddrComponent>(rng.next_below(100));
  return Address(std::move(comps));
}

Event random_event(Rng& rng) {
  Event e(EventId{rng.next_u64() >> 40, rng.next_u64() >> 40});
  const std::size_t attrs = rng.next_below(4);
  for (std::size_t i = 0; i < attrs; ++i) {
    const std::string name(1, static_cast<char>('a' + i));
    switch (rng.next_below(3)) {
      case 0: e.with(name, static_cast<std::int64_t>(rng.next_below(1000)));
        break;
      case 1: e.with(name, rng.next_double()); break;
      default: e.with(name, rng.bernoulli(0.5) ? "x" : "yy"); break;
    }
  }
  return e;
}

ViewRow random_row(Rng& rng) {
  ViewRow row;
  row.infix = static_cast<AddrComponent>(rng.next_below(50));
  const std::size_t delegates = 1 + rng.next_below(3);
  for (std::size_t i = 0; i < delegates; ++i)
    row.delegates.push_back(random_address(rng));
  row.interests =
      InterestSummary::from(interval_subscription(rng.next_double(), 0.3));
  row.process_count = rng.next_below(1000);
  row.version = rng.next_below(100000);
  row.alive = rng.bernoulli(0.8);
  return row;
}

std::shared_ptr<MessageBase> random_message(Rng& rng) {
  switch (1 + rng.next_below(13)) {
    case 1: {
      auto m = std::make_shared<GossipMsg>();
      m->event = std::make_shared<const Event>(random_event(rng));
      m->rate = rng.next_double();
      m->round = static_cast<std::uint32_t>(rng.next_below(64));
      m->depth = 1 + static_cast<std::uint32_t>(rng.next_below(4));
      m->no_regossip = rng.bernoulli(0.2);
      if (rng.bernoulli(0.5)) {
        m->sender = random_address(rng);
        m->piggyback.push_back(DepthRow{
            1 + static_cast<std::uint32_t>(rng.next_below(4)),
            random_row(rng)});
      }
      return m;
    }
    case 2: {
      auto m = std::make_shared<MembershipDigestMsg>();
      m->sender = random_address(rng);
      m->sender_pid = static_cast<ProcessId>(rng.next_below(1000));
      const std::size_t n = rng.next_below(5);
      for (std::size_t i = 0; i < n; ++i)
        m->digests.push_back(
            RowDigest{1 + static_cast<std::uint32_t>(rng.next_below(4)),
                      static_cast<AddrComponent>(rng.next_below(50)),
                      rng.next_below(100000)});
      return m;
    }
    case 3: {
      auto m = std::make_shared<MembershipUpdateMsg>();
      m->sender = random_address(rng);
      const std::size_t n = rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i)
        m->rows.push_back(DepthRow{
            1 + static_cast<std::uint32_t>(rng.next_below(4)),
            random_row(rng)});
      return m;
    }
    case 4: {
      auto m = std::make_shared<JoinRequestMsg>();
      m->joiner = random_address(rng);
      m->joiner_pid = static_cast<ProcessId>(rng.next_below(1000));
      m->subscription = interval_subscription(rng.next_double(), 0.4);
      m->hops = static_cast<std::uint32_t>(rng.next_below(16));
      return m;
    }
    case 5: {
      auto m = std::make_shared<ViewTransferMsg>();
      m->sender = random_address(rng);
      const std::size_t n = rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i)
        m->rows.push_back(DepthRow{
            1 + static_cast<std::uint32_t>(rng.next_below(4)),
            random_row(rng)});
      return m;
    }
    case 6: {
      auto m = std::make_shared<LeaveMsg>();
      m->leaver = random_address(rng);
      return m;
    }
    case 7: {
      auto m = std::make_shared<FloodGossipMsg>();
      m->event = std::make_shared<const Event>(random_event(rng));
      m->round = static_cast<std::uint32_t>(rng.next_below(64));
      return m;
    }
    case 8: {
      auto m = std::make_shared<GenuineGossipMsg>();
      m->event = std::make_shared<const Event>(random_event(rng));
      m->round = static_cast<std::uint32_t>(rng.next_below(64));
      return m;
    }
    case 9: {
      auto m = std::make_shared<SuspectQueryMsg>();
      m->sender = random_address(rng);
      m->suspect = random_address(rng);
      return m;
    }
    case 10: {
      auto m = std::make_shared<SuspectReplyMsg>();
      m->sender = random_address(rng);
      m->suspect = random_address(rng);
      m->heard_recently = rng.bernoulli(0.5);
      return m;
    }
    case 11: {
      auto m = std::make_shared<EventDigestMsg>();
      const std::size_t n = rng.next_below(6);
      for (std::size_t i = 0; i < n; ++i)
        m->ids.push_back(EventId{rng.next_below(1000), rng.next_below(1000)});
      return m;
    }
    case 12: {
      auto m = std::make_shared<EventRequestMsg>();
      const std::size_t n = rng.next_below(6);
      for (std::size_t i = 0; i < n; ++i)
        m->ids.push_back(EventId{rng.next_below(1000), rng.next_below(1000)});
      return m;
    }
    default: {
      auto m = std::make_shared<EventPayloadMsg>();
      const std::size_t n = rng.next_below(4);
      for (std::size_t i = 0; i < n; ++i)
        m->events.push_back(std::make_shared<const Event>(random_event(rng)));
      return m;
    }
  }
}

TEST(WireGolden, RandomizedRoundTripIsByteStable) {
  // encode → decode → encode must be the identity on bytes: the decoder
  // loses nothing and the encoder is deterministic. (One decode may
  // canonicalize predicate trees, so the property is asserted from the
  // first re-encoding on, and additionally checked to be idempotent.)
  Rng rng(0x601de45ULL);
  for (int trial = 0; trial < 500; ++trial) {
    const auto msg = random_message(rng);
    const auto b1 = wire::encode_message(*msg);
    const auto m2 = wire::decode_message(b1);
    ASSERT_NE(m2, nullptr);
    EXPECT_EQ(m2->kind, msg->kind);
    const auto b2 = wire::encode_message(*m2);
    EXPECT_EQ(to_hex(b2), to_hex(b1)) << "trial " << trial;
    const auto m3 = wire::decode_message(b2);
    const auto b3 = wire::encode_message(*m3);
    EXPECT_EQ(to_hex(b3), to_hex(b2)) << "trial " << trial;
  }
}

TEST(WireGolden, NoRegossipFlagRoundTrips) {
  // The leaf flood's "do not re-gossip" state travels as an explicit flag
  // (it used to be round = uint32::max, which leaked a sentinel into round
  // arithmetic).
  auto m = std::make_shared<GossipMsg>();
  m->event = std::make_shared<const Event>(make_event_at(3, 9, 0.75));
  m->rate = 1.0;
  m->round = 0;
  m->depth = 2;
  m->no_regossip = true;
  const auto bytes = wire::encode_message(*m);
  const auto decoded = wire::decode_message(bytes);
  ASSERT_EQ(decoded->kind, MsgKind::Gossip);
  const auto& gossip = static_cast<const GossipMsg&>(*decoded);
  EXPECT_TRUE(gossip.no_regossip);
  EXPECT_EQ(gossip.round, 0u);
  EXPECT_EQ(to_hex(wire::encode_message(gossip)), to_hex(bytes));
}

TEST(WireGolden, SentinelRoundsRejectedBothWays) {
  // Rounds are O(log n); anything near integer range is a corrupted frame
  // or the retired sentinel. The encoder refuses to emit it and the
  // decoder refuses to accept it, so sentinel-sized values can never reach
  // a live bound comparison.
  auto m = std::make_shared<GossipMsg>();
  m->event = std::make_shared<const Event>(make_event_at(3, 9, 0.75));
  m->rate = 0.5;
  m->round = std::numeric_limits<std::uint32_t>::max();
  m->depth = 1;
  EXPECT_THROW(wire::encode_message(*m), std::logic_error);

  m->round = 1;
  auto bytes = wire::encode_message(*m);
  // Patch the round varint (1 byte, right after the 8-byte rate f64 that
  // follows the 14-byte single-attribute event) to a 5-byte uint32::max
  // varint.
  const std::size_t round_at = 1 + 14 + 8;
  ASSERT_EQ(bytes[round_at], 0x01);
  std::vector<std::uint8_t> patched(bytes.begin(),
                                    bytes.begin() +
                                        static_cast<std::ptrdiff_t>(round_at));
  for (int i = 0; i < 4; ++i) patched.push_back(0xff);
  patched.push_back(0x0f);
  patched.insert(patched.end(),
                 bytes.begin() + static_cast<std::ptrdiff_t>(round_at) + 1,
                 bytes.end());
  EXPECT_THROW(wire::decode_message(patched), DecodeError);
}

TEST(WireGolden, SimOnlyTreecastRejectedAtEncode) {
  // Treecast (kind 14) deliberately has no wire encoding: it exists only as
  // a simulation baseline. encode_message must refuse it rather than emit a
  // tag deployed peers would misparse.
  TreecastMsg msg;
  msg.event = std::make_shared<const Event>(make_event_at(0, 1, 0.5));
  msg.depth = 1;
  EXPECT_THROW(wire::encode_message(msg), std::logic_error);
}

TEST(WireGolden, UntaggedOtherRejectedAtEncode) {
  struct Plain final : MessageBase {};  // kind == MsgKind::Other
  EXPECT_THROW(wire::encode_message(Plain{}), std::logic_error);
}

}  // namespace
}  // namespace pmc

#include "filter/interval.hpp"

#include <gtest/gtest.h>

#include <limits>

namespace pmc {
namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

TEST(Interval, ContainsRespectsBounds) {
  const auto iv = Interval::closed(1.0, 2.0);
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(2.001));
}

TEST(Interval, OpenBoundsExcludeEndpoints) {
  const auto iv = Interval::open(1.0, 2.0);
  EXPECT_FALSE(iv.contains(1.0));
  EXPECT_FALSE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(1.5));
}

TEST(Interval, HalfOpen) {
  const auto iv = Interval::half_open(0.25, 0.75);
  EXPECT_TRUE(iv.contains(0.25));
  EXPECT_FALSE(iv.contains(0.75));
}

TEST(Interval, PointInterval) {
  const auto iv = Interval::point(3.0);
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_FALSE(iv.contains(3.0000001));
  EXPECT_FALSE(iv.empty());
}

TEST(Interval, EmptyIntervals) {
  EXPECT_TRUE((Interval{2.0, 1.0, false, false}).empty());
  EXPECT_TRUE((Interval{1.0, 1.0, true, false}).empty());
  EXPECT_TRUE((Interval{1.0, 1.0, false, true}).empty());
  EXPECT_FALSE(Interval::point(1.0).empty());
}

TEST(Interval, Rays) {
  const auto ge = Interval::at_least(5.0);
  EXPECT_TRUE(ge.contains(5.0));
  EXPECT_TRUE(ge.contains(1e18));
  EXPECT_FALSE(ge.contains(4.999));
  const auto lt = Interval::at_most(5.0, /*open=*/true);
  EXPECT_FALSE(lt.contains(5.0));
  EXPECT_TRUE(lt.contains(-1e18));
}

TEST(Interval, AllContainsEverything) {
  const auto all = Interval::all();
  EXPECT_TRUE(all.contains(0.0));
  EXPECT_TRUE(all.contains(1e308));
  EXPECT_TRUE(all.contains(-1e308));
  EXPECT_TRUE(all.unbounded_above());
  EXPECT_TRUE(all.unbounded_below());
}

TEST(Interval, Intersect) {
  const auto a = Interval::closed(1.0, 5.0);
  const auto b = Interval::closed(3.0, 7.0);
  const auto i = a.intersect(b);
  EXPECT_DOUBLE_EQ(i.lo, 3.0);
  EXPECT_DOUBLE_EQ(i.hi, 5.0);
  EXPECT_FALSE(i.empty());
}

TEST(Interval, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(Interval::closed(1.0, 2.0)
                  .intersect(Interval::closed(3.0, 4.0))
                  .empty());
}

TEST(Interval, IntersectOpenClosedBoundary) {
  const auto a = Interval::half_open(0.0, 1.0);  // [0,1)
  const auto b = Interval::at_least(1.0);        // [1,inf)
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Interval, Covers) {
  EXPECT_TRUE(Interval::closed(0.0, 10.0).covers(Interval::closed(1.0, 2.0)));
  EXPECT_FALSE(Interval::closed(0.0, 10.0).covers(Interval::closed(1.0, 11.0)));
  EXPECT_TRUE(Interval::closed(0.0, 1.0).covers(Interval::open(0.0, 1.0)));
  EXPECT_FALSE(Interval::open(0.0, 1.0).covers(Interval::closed(0.0, 1.0)));
}

TEST(Interval, MergeableTouchingClosed) {
  // [1,2] and [2,3] share the closed point 2.
  EXPECT_TRUE(Interval::closed(1.0, 2.0).mergeable(Interval::closed(2.0, 3.0)));
  // [1,2) and (2,3] leave 2 out.
  EXPECT_FALSE(Interval::half_open(1.0, 2.0)
                   .mergeable(Interval{2.0, 3.0, true, false}));
  // [1,2) and [2,3] together cover [1,3].
  EXPECT_TRUE(Interval::half_open(1.0, 2.0)
                  .mergeable(Interval::closed(2.0, 3.0)));
}

TEST(Interval, MergeProducesHull) {
  const auto m =
      Interval::closed(1.0, 2.0).merge(Interval::closed(1.5, 4.0));
  EXPECT_DOUBLE_EQ(m.lo, 1.0);
  EXPECT_DOUBLE_EQ(m.hi, 4.0);
}

TEST(Interval, LeVersusLtAtEqualEndpoints) {
  // [0,1] ∩ [1,2] is the point {1}; opening either side of the shared
  // endpoint empties it. The predicate index fuses Le/Lt (and Ge/Gt)
  // atoms into one interval per clause, so these boundary cases decide
  // whether e.g. `c >= 1 && c <= 1` keeps a clause alive.
  EXPECT_FALSE(
      Interval::closed(0.0, 1.0).intersect(Interval::closed(1.0, 2.0)).empty());
  EXPECT_TRUE(Interval::half_open(0.0, 1.0)  // [0,1)
                  .intersect(Interval::closed(1.0, 2.0))
                  .empty());
  EXPECT_TRUE(Interval::closed(0.0, 1.0)
                  .intersect(Interval{1.0, 2.0, true, false})  // (1,2]
                  .empty());
  const auto pt =
      Interval::at_least(1.0).intersect(Interval::at_most(1.0));  // {1}
  EXPECT_FALSE(pt.empty());
  EXPECT_TRUE(pt.contains(1.0));
  EXPECT_FALSE(pt.contains(1.0 + 1e-12));
}

TEST(Interval, CoversAndMergeableAtSharedOpenEndpoints) {
  // covers: (0,1) does not cover [0,1) (loses the point 0) but does cover
  // (0,1]∩(0,1) shapes; mergeable: [0,1) ∪ (1,2] leaves 1 out.
  EXPECT_FALSE(Interval::open(0.0, 1.0).covers(Interval::half_open(0.0, 1.0)));
  EXPECT_TRUE(Interval::half_open(0.0, 1.0).covers(Interval::open(0.0, 1.0)));
  EXPECT_FALSE(Interval::half_open(0.0, 1.0)
                   .mergeable(Interval{1.0, 2.0, true, false}));
  EXPECT_TRUE(Interval::half_open(0.0, 1.0).mergeable(Interval::point(1.0)));
}

TEST(Interval, InvertedBoundsStayEmptyThroughOps) {
  const Interval inv{2.0, 1.0, false, false};
  EXPECT_TRUE(inv.empty());
  EXPECT_FALSE(inv.contains(1.5));
  EXPECT_TRUE(inv.intersect(Interval::all()).empty());
  // Every interval covers the empty one; the empty one covers nothing
  // non-empty.
  EXPECT_TRUE(Interval::all().covers(inv));
  EXPECT_TRUE(Interval::point(7.0).covers(inv));
  EXPECT_FALSE(inv.covers(Interval::point(1.5)));
}

TEST(Interval, InfiniteEndpoints) {
  // Rays built from ±inf behave like all(); a closed bound AT +inf still
  // contains +inf (the event value +inf satisfies `c >= inf`).
  EXPECT_TRUE(Interval::at_least(-kInf).contains(-kInf));
  EXPECT_TRUE(Interval::at_least(kInf).contains(kInf));
  EXPECT_FALSE(Interval::at_least(kInf).contains(1e308));
  EXPECT_TRUE(Interval::at_least(kInf, /*open=*/true).empty())
      << "(inf, inf] holds no double";
  EXPECT_FALSE(Interval::at_most(kInf).empty());
  EXPECT_TRUE(Interval::at_most(-kInf, /*open=*/true).empty());
  EXPECT_TRUE(Interval::all().contains(kInf));
  EXPECT_TRUE(Interval::all().contains(-kInf));
}

TEST(Interval, ContainsNaNIsDeliberatelyTrue) {
  // Pinned on purpose, not a bug: contains() is written as two negated
  // bound checks, and every comparison against NaN is false, so NaN falls
  // through both and lands on `return true`. The regrouping layer relies
  // on this as conservative over-coverage — a delegate's merged interval
  // table must never produce a false NEGATIVE for a child's subscription,
  // and NaN-valued events are handled (rejected or matched exactly) by
  // Predicate::match / the index's NaN-aware lanes, both of which skip
  // interval containment for NaN. If this ever flips to false, regroup
  // coverage and the index's eq/interval lane skip logic must be
  // re-audited together.
  EXPECT_TRUE(Interval::closed(0.0, 1.0).contains(kNaN));
  EXPECT_TRUE(Interval::open(0.0, 1.0).contains(kNaN));
  EXPECT_TRUE(Interval::all().contains(kNaN));
}

TEST(IntervalSet, InfiniteAndBoundaryMembers) {
  IntervalSet s;
  s.insert(Interval::at_most(0.0, /*open=*/true));  // (-inf, 0)
  s.insert(Interval::at_least(1.0));                // [1, inf)
  EXPECT_TRUE(s.contains(-kInf));
  EXPECT_TRUE(s.contains(kInf));
  EXPECT_FALSE(s.contains(0.0));
  EXPECT_FALSE(s.contains(0.999999));
  EXPECT_TRUE(s.contains(1.0));
  EXPECT_FALSE(s.is_all());
  s.insert(Interval::closed(0.0, 1.0));  // plugs the gap
  EXPECT_TRUE(s.is_all());
}

TEST(IntervalSet, InsertDisjointKeepsBoth) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(2.0, 3.0));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(0.5));
  EXPECT_FALSE(s.contains(1.5));
  EXPECT_TRUE(s.contains(2.5));
}

TEST(IntervalSet, InsertMergesOverlap) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 2.0));
  s.insert(Interval::closed(1.0, 3.0));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(2.5));
}

TEST(IntervalSet, InsertBridgesGap) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(2.0, 3.0));
  s.insert(Interval::closed(0.5, 2.5));  // bridges both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(1.5));
}

TEST(IntervalSet, EmptyIntervalIgnored) {
  IntervalSet s;
  s.insert(Interval{2.0, 1.0, false, false});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, KeepsSortedOrder) {
  IntervalSet s;
  s.insert(Interval::closed(10.0, 11.0));
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(5.0, 6.0));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(s.intervals()[1].lo, 5.0);
  EXPECT_DOUBLE_EQ(s.intervals()[2].lo, 10.0);
}

TEST(IntervalSet, ContainsBinarySearchEdges) {
  IntervalSet s;
  s.insert(Interval::half_open(0.0, 0.5));
  s.insert(Interval::half_open(0.75, 1.0));
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_FALSE(s.contains(0.5));
  EXPECT_FALSE(s.contains(0.6));
  EXPECT_TRUE(s.contains(0.75));
  EXPECT_FALSE(s.contains(1.0));
  EXPECT_FALSE(s.contains(-0.1));
}

TEST(IntervalSet, InsertAllUnions) {
  IntervalSet a, b;
  a.insert(Interval::closed(0.0, 1.0));
  b.insert(Interval::closed(0.5, 2.0));
  b.insert(Interval::closed(5.0, 6.0));
  a.insert_all(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(1.7));
  EXPECT_TRUE(a.contains(5.5));
}

TEST(IntervalSet, CoversSet) {
  IntervalSet big;
  big.insert(Interval::closed(0.0, 10.0));
  IntervalSet small;
  small.insert(Interval::closed(1.0, 2.0));
  small.insert(Interval::closed(8.0, 9.0));
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
}

TEST(IntervalSet, CoverageAcrossGapIsRejected) {
  IntervalSet gappy;
  gappy.insert(Interval::closed(0.0, 1.0));
  gappy.insert(Interval::closed(2.0, 3.0));
  // [0,3] is not covered: the gap (1,2) leaks.
  EXPECT_FALSE(gappy.covers(Interval::closed(0.0, 3.0)));
  EXPECT_TRUE(gappy.covers(Interval::closed(0.2, 0.8)));
}

TEST(IntervalSet, BoundingHull) {
  IntervalSet s;
  s.insert(Interval::closed(1.0, 2.0));
  s.insert(Interval::half_open(5.0, 7.0));
  const auto b = s.bounding();
  EXPECT_DOUBLE_EQ(b.lo, 1.0);
  EXPECT_DOUBLE_EQ(b.hi, 7.0);
  EXPECT_TRUE(b.hi_open);
}

TEST(IntervalSet, IsAll) {
  IntervalSet s;
  EXPECT_FALSE(s.is_all());
  s.insert(Interval::all());
  EXPECT_TRUE(s.is_all());
}

TEST(IntervalSet, EqualityIsCanonical) {
  IntervalSet a, b;
  a.insert(Interval::closed(0.0, 1.0));
  a.insert(Interval::closed(1.0, 2.0));
  b.insert(Interval::closed(0.0, 2.0));
  EXPECT_EQ(a, b);  // both canonicalize to [0,2]
}

}  // namespace
}  // namespace pmc

#include "filter/interval.hpp"

#include <gtest/gtest.h>

namespace pmc {
namespace {

TEST(Interval, ContainsRespectsBounds) {
  const auto iv = Interval::closed(1.0, 2.0);
  EXPECT_TRUE(iv.contains(1.0));
  EXPECT_TRUE(iv.contains(1.5));
  EXPECT_TRUE(iv.contains(2.0));
  EXPECT_FALSE(iv.contains(0.999));
  EXPECT_FALSE(iv.contains(2.001));
}

TEST(Interval, OpenBoundsExcludeEndpoints) {
  const auto iv = Interval::open(1.0, 2.0);
  EXPECT_FALSE(iv.contains(1.0));
  EXPECT_FALSE(iv.contains(2.0));
  EXPECT_TRUE(iv.contains(1.5));
}

TEST(Interval, HalfOpen) {
  const auto iv = Interval::half_open(0.25, 0.75);
  EXPECT_TRUE(iv.contains(0.25));
  EXPECT_FALSE(iv.contains(0.75));
}

TEST(Interval, PointInterval) {
  const auto iv = Interval::point(3.0);
  EXPECT_TRUE(iv.contains(3.0));
  EXPECT_FALSE(iv.contains(3.0000001));
  EXPECT_FALSE(iv.empty());
}

TEST(Interval, EmptyIntervals) {
  EXPECT_TRUE((Interval{2.0, 1.0, false, false}).empty());
  EXPECT_TRUE((Interval{1.0, 1.0, true, false}).empty());
  EXPECT_TRUE((Interval{1.0, 1.0, false, true}).empty());
  EXPECT_FALSE(Interval::point(1.0).empty());
}

TEST(Interval, Rays) {
  const auto ge = Interval::at_least(5.0);
  EXPECT_TRUE(ge.contains(5.0));
  EXPECT_TRUE(ge.contains(1e18));
  EXPECT_FALSE(ge.contains(4.999));
  const auto lt = Interval::at_most(5.0, /*open=*/true);
  EXPECT_FALSE(lt.contains(5.0));
  EXPECT_TRUE(lt.contains(-1e18));
}

TEST(Interval, AllContainsEverything) {
  const auto all = Interval::all();
  EXPECT_TRUE(all.contains(0.0));
  EXPECT_TRUE(all.contains(1e308));
  EXPECT_TRUE(all.contains(-1e308));
  EXPECT_TRUE(all.unbounded_above());
  EXPECT_TRUE(all.unbounded_below());
}

TEST(Interval, Intersect) {
  const auto a = Interval::closed(1.0, 5.0);
  const auto b = Interval::closed(3.0, 7.0);
  const auto i = a.intersect(b);
  EXPECT_DOUBLE_EQ(i.lo, 3.0);
  EXPECT_DOUBLE_EQ(i.hi, 5.0);
  EXPECT_FALSE(i.empty());
}

TEST(Interval, IntersectDisjointIsEmpty) {
  EXPECT_TRUE(Interval::closed(1.0, 2.0)
                  .intersect(Interval::closed(3.0, 4.0))
                  .empty());
}

TEST(Interval, IntersectOpenClosedBoundary) {
  const auto a = Interval::half_open(0.0, 1.0);  // [0,1)
  const auto b = Interval::at_least(1.0);        // [1,inf)
  EXPECT_TRUE(a.intersect(b).empty());
}

TEST(Interval, Covers) {
  EXPECT_TRUE(Interval::closed(0.0, 10.0).covers(Interval::closed(1.0, 2.0)));
  EXPECT_FALSE(Interval::closed(0.0, 10.0).covers(Interval::closed(1.0, 11.0)));
  EXPECT_TRUE(Interval::closed(0.0, 1.0).covers(Interval::open(0.0, 1.0)));
  EXPECT_FALSE(Interval::open(0.0, 1.0).covers(Interval::closed(0.0, 1.0)));
}

TEST(Interval, MergeableTouchingClosed) {
  // [1,2] and [2,3] share the closed point 2.
  EXPECT_TRUE(Interval::closed(1.0, 2.0).mergeable(Interval::closed(2.0, 3.0)));
  // [1,2) and (2,3] leave 2 out.
  EXPECT_FALSE(Interval::half_open(1.0, 2.0)
                   .mergeable(Interval{2.0, 3.0, true, false}));
  // [1,2) and [2,3] together cover [1,3].
  EXPECT_TRUE(Interval::half_open(1.0, 2.0)
                  .mergeable(Interval::closed(2.0, 3.0)));
}

TEST(Interval, MergeProducesHull) {
  const auto m =
      Interval::closed(1.0, 2.0).merge(Interval::closed(1.5, 4.0));
  EXPECT_DOUBLE_EQ(m.lo, 1.0);
  EXPECT_DOUBLE_EQ(m.hi, 4.0);
}

TEST(IntervalSet, InsertDisjointKeepsBoth) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(2.0, 3.0));
  EXPECT_EQ(s.size(), 2u);
  EXPECT_TRUE(s.contains(0.5));
  EXPECT_FALSE(s.contains(1.5));
  EXPECT_TRUE(s.contains(2.5));
}

TEST(IntervalSet, InsertMergesOverlap) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 2.0));
  s.insert(Interval::closed(1.0, 3.0));
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(2.5));
}

TEST(IntervalSet, InsertBridgesGap) {
  IntervalSet s;
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(2.0, 3.0));
  s.insert(Interval::closed(0.5, 2.5));  // bridges both
  EXPECT_EQ(s.size(), 1u);
  EXPECT_TRUE(s.contains(1.5));
}

TEST(IntervalSet, EmptyIntervalIgnored) {
  IntervalSet s;
  s.insert(Interval{2.0, 1.0, false, false});
  EXPECT_TRUE(s.empty());
}

TEST(IntervalSet, KeepsSortedOrder) {
  IntervalSet s;
  s.insert(Interval::closed(10.0, 11.0));
  s.insert(Interval::closed(0.0, 1.0));
  s.insert(Interval::closed(5.0, 6.0));
  ASSERT_EQ(s.size(), 3u);
  EXPECT_DOUBLE_EQ(s.intervals()[0].lo, 0.0);
  EXPECT_DOUBLE_EQ(s.intervals()[1].lo, 5.0);
  EXPECT_DOUBLE_EQ(s.intervals()[2].lo, 10.0);
}

TEST(IntervalSet, ContainsBinarySearchEdges) {
  IntervalSet s;
  s.insert(Interval::half_open(0.0, 0.5));
  s.insert(Interval::half_open(0.75, 1.0));
  EXPECT_TRUE(s.contains(0.0));
  EXPECT_FALSE(s.contains(0.5));
  EXPECT_FALSE(s.contains(0.6));
  EXPECT_TRUE(s.contains(0.75));
  EXPECT_FALSE(s.contains(1.0));
  EXPECT_FALSE(s.contains(-0.1));
}

TEST(IntervalSet, InsertAllUnions) {
  IntervalSet a, b;
  a.insert(Interval::closed(0.0, 1.0));
  b.insert(Interval::closed(0.5, 2.0));
  b.insert(Interval::closed(5.0, 6.0));
  a.insert_all(b);
  EXPECT_EQ(a.size(), 2u);
  EXPECT_TRUE(a.contains(1.7));
  EXPECT_TRUE(a.contains(5.5));
}

TEST(IntervalSet, CoversSet) {
  IntervalSet big;
  big.insert(Interval::closed(0.0, 10.0));
  IntervalSet small;
  small.insert(Interval::closed(1.0, 2.0));
  small.insert(Interval::closed(8.0, 9.0));
  EXPECT_TRUE(big.covers(small));
  EXPECT_FALSE(small.covers(big));
}

TEST(IntervalSet, CoverageAcrossGapIsRejected) {
  IntervalSet gappy;
  gappy.insert(Interval::closed(0.0, 1.0));
  gappy.insert(Interval::closed(2.0, 3.0));
  // [0,3] is not covered: the gap (1,2) leaks.
  EXPECT_FALSE(gappy.covers(Interval::closed(0.0, 3.0)));
  EXPECT_TRUE(gappy.covers(Interval::closed(0.2, 0.8)));
}

TEST(IntervalSet, BoundingHull) {
  IntervalSet s;
  s.insert(Interval::closed(1.0, 2.0));
  s.insert(Interval::half_open(5.0, 7.0));
  const auto b = s.bounding();
  EXPECT_DOUBLE_EQ(b.lo, 1.0);
  EXPECT_DOUBLE_EQ(b.hi, 7.0);
  EXPECT_TRUE(b.hi_open);
}

TEST(IntervalSet, IsAll) {
  IntervalSet s;
  EXPECT_FALSE(s.is_all());
  s.insert(Interval::all());
  EXPECT_TRUE(s.is_all());
}

TEST(IntervalSet, EqualityIsCanonical) {
  IntervalSet a, b;
  a.insert(Interval::closed(0.0, 1.0));
  a.insert(Interval::closed(1.0, 2.0));
  b.insert(Interval::closed(0.0, 2.0));
  EXPECT_EQ(a, b);  // both canonicalize to [0,2]
}

}  // namespace
}  // namespace pmc

#include "sim/network.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

namespace pmc {
namespace {

struct TestMsg final : MessageBase {
  int payload = 0;
  explicit TestMsg(int p) : payload(p) {}
};

struct Fixture {
  Scheduler sched;
  NetworkConfig config;
  explicit Fixture(double loss = 0.0) {
    config.loss_probability = loss;
    config.latency_min = sim_us(100);
    config.latency_max = sim_us(500);
  }
  Network make() { return Network(sched, config, Rng(77)); }
};

TEST(Network, DeliversToAttachedHandler) {
  Fixture f;
  auto net = f.make();
  int received = -1;
  ProcessId from_seen = kNoProcess;
  net.attach(1, [&](ProcessId from, const MessagePtr& m) {
    from_seen = from;
    received = dynamic_cast<const TestMsg&>(*m).payload;
  });
  net.send(0, 1, std::make_shared<TestMsg>(42));
  f.sched.run();
  EXPECT_EQ(received, 42);
  EXPECT_EQ(from_seen, 0u);
  EXPECT_EQ(net.counters().sent, 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Network, LatencyWithinConfiguredBounds) {
  Fixture f;
  auto net = f.make();
  SimTime delivered_at = -1;
  net.attach(1, [&](ProcessId, const MessagePtr&) {
    delivered_at = f.sched.now();
  });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_GE(delivered_at, sim_us(100));
  EXPECT_LE(delivered_at, sim_us(500));
}

TEST(Network, UnattachedTargetCountsDead) {
  Fixture f;
  auto net = f.make();
  net.send(0, 9, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_EQ(net.counters().dead_target, 1u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(Network, DetachStopsDelivery) {
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  net.detach(1);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.counters().dead_target, 1u);
  EXPECT_FALSE(net.attached(1));
}

TEST(Network, DetachAfterDeliveryInFlight) {
  // Crash between send and delivery: the message must be dropped.
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.schedule_at(sim_us(50), [&] { net.detach(1); });  // before latency
  f.sched.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, FullLossDropsEverything) {
  Fixture f(1.0);
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  for (int i = 0; i < 100; ++i) net.send(0, 1, std::make_shared<TestMsg>(i));
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.counters().lost, 100u);
}

TEST(Network, PartialLossApproximatesEpsilon) {
  Fixture f(0.3);
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) net.send(0, 1, std::make_shared<TestMsg>(i));
  f.sched.run();
  EXPECT_NEAR(received / static_cast<double>(n), 0.7, 0.02);
}

TEST(Network, LinkFilterModelsPartition) {
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.attach(2, [&](ProcessId, const MessagePtr&) { ++received; });
  net.set_link_filter([](ProcessId from, ProcessId to) {
    return !(from == 0 && to == 1);  // 0 -> 1 partitioned
  });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  net.send(0, 2, std::make_shared<TestMsg>(2));
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.counters().filtered, 1u);
  net.set_link_filter(nullptr);
  net.send(0, 1, std::make_shared<TestMsg>(3));
  f.sched.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, ReattachOverridesHandler) {
  Fixture f;
  auto net = f.make();
  int a = 0, b = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++a; });
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++b; });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(Network, ResetCounters) {
  Fixture f;
  auto net = f.make();
  net.attach(1, [](ProcessId, const MessagePtr&) {});
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.run();
  net.reset_counters();
  EXPECT_EQ(net.counters().sent, 0u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(Network, BadConfigRejected) {
  Scheduler sched;
  NetworkConfig bad;
  bad.loss_probability = 1.5;
  EXPECT_THROW(Network(sched, bad, Rng(1)), std::logic_error);
  NetworkConfig bad2;
  bad2.latency_min = sim_us(500);
  bad2.latency_max = sim_us(100);
  EXPECT_THROW(Network(sched, bad2, Rng(1)), std::logic_error);
}

// --- send_multi: one fan-out must be draw-for-draw equivalent to N sends ---

struct DeliveryLog {
  std::vector<std::tuple<ProcessId, SimTime, int>> rows;  // (to, when, payload)
};

void attach_loggers(Network& net, Scheduler& sched, DeliveryLog& log,
                    ProcessId first, ProcessId last) {
  for (ProcessId id = first; id <= last; ++id) {
    net.attach(id, [&log, &sched, id](ProcessId, const MessagePtr& m) {
      log.rows.emplace_back(id, sched.now(),
                            dynamic_cast<const TestMsg&>(*m).payload);
    });
  }
}

TEST(Network, SendMultiMatchesIndividualSends) {
  // Same seed, same sender, same destinations: N send() calls on one
  // network and one send_multi() on the other must lose the same messages
  // and deliver the survivors at the same times.
  Fixture f(0.3);
  auto a = f.make();
  auto b = f.make();
  DeliveryLog log_a, log_b;
  attach_loggers(a, f.sched, log_a, 1, 40);
  attach_loggers(b, f.sched, log_b, 1, 40);

  std::vector<ProcessId> targets;
  for (ProcessId id = 1; id <= 40; ++id) targets.push_back(id);
  for (ProcessId id = 1; id <= 40; ++id)
    a.send(0, id, std::make_shared<TestMsg>(7));
  b.send_multi(0, targets, std::make_shared<TestMsg>(7));
  f.sched.run();

  EXPECT_EQ(log_a.rows, log_b.rows);
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_GT(a.counters().delivered, 0u);  // the comparison is non-vacuous
  EXPECT_GT(a.counters().lost, 0u);
}

TEST(Network, SendMultiAdvancesTheSameSenderSequence) {
  // A send() after the fan-out must see the same labeled stream state on
  // both networks (the fan-out consumed one sequence number per target).
  Fixture f(0.5);
  auto a = f.make();
  auto b = f.make();
  DeliveryLog log_a, log_b;
  attach_loggers(a, f.sched, log_a, 1, 9);
  attach_loggers(b, f.sched, log_b, 1, 9);

  const std::vector<ProcessId> targets{1, 2, 3, 4, 5, 6, 7, 8};
  for (const auto id : targets) a.send(0, id, std::make_shared<TestMsg>(1));
  b.send_multi(0, targets, std::make_shared<TestMsg>(1));
  for (int i = 0; i < 16; ++i) {
    a.send(0, 9, std::make_shared<TestMsg>(i));
    b.send(0, 9, std::make_shared<TestMsg>(i));
  }
  f.sched.run();
  EXPECT_EQ(log_a.rows, log_b.rows);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(Network, SendMultiRespectsPerDestinationFilters) {
  // Filtered destinations are dropped without consuming a draw, exactly as
  // N send() calls would; the surviving destinations' draws line up.
  Fixture f(0.2);
  auto a = f.make();
  auto b = f.make();
  DeliveryLog log_a, log_b;
  attach_loggers(a, f.sched, log_a, 1, 20);
  attach_loggers(b, f.sched, log_b, 1, 20);
  const auto drop_even = [](ProcessId, ProcessId to) { return to % 2 == 1; };
  a.set_link_filter(drop_even);
  b.set_link_filter(drop_even);

  std::vector<ProcessId> targets;
  for (ProcessId id = 1; id <= 20; ++id) targets.push_back(id);
  for (const auto id : targets) a.send(0, id, std::make_shared<TestMsg>(3));
  b.send_multi(0, targets, std::make_shared<TestMsg>(3));
  f.sched.run();
  EXPECT_EQ(log_a.rows, log_b.rows);
  EXPECT_EQ(a.counters(), b.counters());
  EXPECT_EQ(a.counters().filtered, 10u);
}

TEST(Network, SendMultiRunsPureTranscoderOncePerFanout) {
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.attach(2, [&](ProcessId, const MessagePtr&) { ++received; });
  int transcodes = 0;
  net.set_transcoder([&transcodes](const MessagePtr& m) {
    ++transcodes;
    return m;
  });
  const std::vector<ProcessId> targets{1, 2};
  net.send_multi(0, targets, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_EQ(transcodes, 1);
  EXPECT_EQ(received, 2);
}

TEST(Network, SendMultiSharesOnePayload) {
  Fixture f;
  auto net = f.make();
  std::vector<const MessageBase*> seen;
  for (ProcessId id = 1; id <= 3; ++id)
    net.attach(id, [&seen](ProcessId, const MessagePtr& m) {
      seen.push_back(m.get());
    });
  const std::vector<ProcessId> targets{1, 2, 3};
  net.send_multi(0, targets, std::make_shared<TestMsg>(9));
  f.sched.run();
  ASSERT_EQ(seen.size(), 3u);
  EXPECT_EQ(seen[0], seen[1]);  // one payload object, shared, not copied
  EXPECT_EQ(seen[1], seen[2]);
}

TEST(Network, ReserveDoesNotChangeDraws) {
  // reserve() is purely an allocation hint: the labeled draw streams (and
  // so every loss/latency outcome) are unchanged.
  Fixture f(0.4);
  auto a = f.make();
  auto b = f.make();
  b.reserve(64);
  DeliveryLog log_a, log_b;
  attach_loggers(a, f.sched, log_a, 1, 10);
  attach_loggers(b, f.sched, log_b, 1, 10);
  for (int i = 0; i < 50; ++i) {
    a.send(i % 7, 1 + (i % 10), std::make_shared<TestMsg>(i));
    b.send(i % 7, 1 + (i % 10), std::make_shared<TestMsg>(i));
  }
  f.sched.run();
  EXPECT_EQ(log_a.rows, log_b.rows);
  EXPECT_EQ(a.counters(), b.counters());
}

TEST(Network, ZeroLatencySpanIsFixedDelay) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.latency_min = cfg.latency_max = sim_us(250);
  Network net(sched, cfg, Rng(1));
  SimTime at = -1;
  net.attach(1, [&](ProcessId, const MessagePtr&) { at = sched.now(); });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  sched.run();
  EXPECT_EQ(at, sim_us(250));
}

}  // namespace
}  // namespace pmc

#include "sim/network.hpp"

#include <gtest/gtest.h>

namespace pmc {
namespace {

struct TestMsg final : MessageBase {
  int payload = 0;
  explicit TestMsg(int p) : payload(p) {}
};

struct Fixture {
  Scheduler sched;
  NetworkConfig config;
  explicit Fixture(double loss = 0.0) {
    config.loss_probability = loss;
    config.latency_min = sim_us(100);
    config.latency_max = sim_us(500);
  }
  Network make() { return Network(sched, config, Rng(77)); }
};

TEST(Network, DeliversToAttachedHandler) {
  Fixture f;
  auto net = f.make();
  int received = -1;
  ProcessId from_seen = kNoProcess;
  net.attach(1, [&](ProcessId from, const MessagePtr& m) {
    from_seen = from;
    received = dynamic_cast<const TestMsg&>(*m).payload;
  });
  net.send(0, 1, std::make_shared<TestMsg>(42));
  f.sched.run();
  EXPECT_EQ(received, 42);
  EXPECT_EQ(from_seen, 0u);
  EXPECT_EQ(net.counters().sent, 1u);
  EXPECT_EQ(net.counters().delivered, 1u);
}

TEST(Network, LatencyWithinConfiguredBounds) {
  Fixture f;
  auto net = f.make();
  SimTime delivered_at = -1;
  net.attach(1, [&](ProcessId, const MessagePtr&) {
    delivered_at = f.sched.now();
  });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_GE(delivered_at, sim_us(100));
  EXPECT_LE(delivered_at, sim_us(500));
}

TEST(Network, UnattachedTargetCountsDead) {
  Fixture f;
  auto net = f.make();
  net.send(0, 9, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_EQ(net.counters().dead_target, 1u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(Network, DetachStopsDelivery) {
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  net.detach(1);
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.counters().dead_target, 1u);
  EXPECT_FALSE(net.attached(1));
}

TEST(Network, DetachAfterDeliveryInFlight) {
  // Crash between send and delivery: the message must be dropped.
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.schedule_at(sim_us(50), [&] { net.detach(1); });  // before latency
  f.sched.run();
  EXPECT_EQ(received, 0);
}

TEST(Network, FullLossDropsEverything) {
  Fixture f(1.0);
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  for (int i = 0; i < 100; ++i) net.send(0, 1, std::make_shared<TestMsg>(i));
  f.sched.run();
  EXPECT_EQ(received, 0);
  EXPECT_EQ(net.counters().lost, 100u);
}

TEST(Network, PartialLossApproximatesEpsilon) {
  Fixture f(0.3);
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  const int n = 20000;
  for (int i = 0; i < n; ++i) net.send(0, 1, std::make_shared<TestMsg>(i));
  f.sched.run();
  EXPECT_NEAR(received / static_cast<double>(n), 0.7, 0.02);
}

TEST(Network, LinkFilterModelsPartition) {
  Fixture f;
  auto net = f.make();
  int received = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++received; });
  net.attach(2, [&](ProcessId, const MessagePtr&) { ++received; });
  net.set_link_filter([](ProcessId from, ProcessId to) {
    return !(from == 0 && to == 1);  // 0 -> 1 partitioned
  });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  net.send(0, 2, std::make_shared<TestMsg>(2));
  f.sched.run();
  EXPECT_EQ(received, 1);
  EXPECT_EQ(net.counters().filtered, 1u);
  net.set_link_filter(nullptr);
  net.send(0, 1, std::make_shared<TestMsg>(3));
  f.sched.run();
  EXPECT_EQ(received, 2);
}

TEST(Network, ReattachOverridesHandler) {
  Fixture f;
  auto net = f.make();
  int a = 0, b = 0;
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++a; });
  net.attach(1, [&](ProcessId, const MessagePtr&) { ++b; });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.run();
  EXPECT_EQ(a, 0);
  EXPECT_EQ(b, 1);
}

TEST(Network, ResetCounters) {
  Fixture f;
  auto net = f.make();
  net.attach(1, [](ProcessId, const MessagePtr&) {});
  net.send(0, 1, std::make_shared<TestMsg>(1));
  f.sched.run();
  net.reset_counters();
  EXPECT_EQ(net.counters().sent, 0u);
  EXPECT_EQ(net.counters().delivered, 0u);
}

TEST(Network, BadConfigRejected) {
  Scheduler sched;
  NetworkConfig bad;
  bad.loss_probability = 1.5;
  EXPECT_THROW(Network(sched, bad, Rng(1)), std::logic_error);
  NetworkConfig bad2;
  bad2.latency_min = sim_us(500);
  bad2.latency_max = sim_us(100);
  EXPECT_THROW(Network(sched, bad2, Rng(1)), std::logic_error);
}

TEST(Network, ZeroLatencySpanIsFixedDelay) {
  Scheduler sched;
  NetworkConfig cfg;
  cfg.latency_min = cfg.latency_max = sim_us(250);
  Network net(sched, cfg, Rng(1));
  SimTime at = -1;
  net.attach(1, [&](ProcessId, const MessagePtr&) { at = sched.now(); });
  net.send(0, 1, std::make_shared<TestMsg>(1));
  sched.run();
  EXPECT_EQ(at, sim_us(250));
}

}  // namespace
}  // namespace pmc

#include "analysis/markov.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

namespace pmc {
namespace {

TEST(LogBinomial, KnownValues) {
  EXPECT_NEAR(std::exp(log_binomial(5, 2)), 10.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 0)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(10, 10)), 1.0, 1e-9);
  EXPECT_NEAR(std::exp(log_binomial(52, 5)), 2598960.0, 1e-3);
}

TEST(LogBinomial, OutOfRangeRejected) {
  EXPECT_THROW(log_binomial(5, 6), std::logic_error);
  EXPECT_THROW(log_binomial(5, -1), std::logic_error);
}

TEST(InfectionChain, TransitionRowsSumToOne) {
  const InfectionChain chain(20, 0.15);
  for (std::size_t j = 0; j <= 20; ++j) {
    double sum = 0;
    for (std::size_t k = 0; k <= 20; ++k) sum += chain.transition(j, k);
    EXPECT_NEAR(sum, 1.0, 1e-9) << "from state " << j;
  }
}

TEST(InfectionChain, NoShrinking) {
  const InfectionChain chain(10, 0.3);
  for (std::size_t j = 0; j <= 10; ++j)
    for (std::size_t k = 0; k < j; ++k)
      EXPECT_DOUBLE_EQ(chain.transition(j, k), 0.0);
}

TEST(InfectionChain, ZeroStateAbsorbing) {
  const InfectionChain chain(10, 0.3);
  EXPECT_DOUBLE_EQ(chain.transition(0, 0), 1.0);
}

TEST(InfectionChain, FullInfectionAbsorbing) {
  const InfectionChain chain(10, 0.3);
  EXPECT_DOUBLE_EQ(chain.transition(10, 10), 1.0);
}

TEST(InfectionChain, PZeroFreezes) {
  const InfectionChain chain(10, 0.0);
  EXPECT_DOUBLE_EQ(chain.transition(3, 3), 1.0);
  EXPECT_DOUBLE_EQ(chain.expected_infected(5, 3), 3.0);
}

TEST(InfectionChain, POneInfectsAllInOneRound) {
  const InfectionChain chain(10, 1.0);
  EXPECT_DOUBLE_EQ(chain.transition(1, 10), 1.0);
  EXPECT_DOUBLE_EQ(chain.expected_infected(1, 1), 10.0);
}

TEST(InfectionChain, DistributionNormalized) {
  const InfectionChain chain(30, 0.1);
  for (std::size_t rounds : {0u, 1u, 5u, 15u}) {
    const auto dist = chain.distribution_after(rounds, 1);
    const double total = std::accumulate(dist.begin(), dist.end(), 0.0);
    EXPECT_NEAR(total, 1.0, 1e-9) << rounds << " rounds";
  }
}

TEST(InfectionChain, ZeroRoundsIsInitialState) {
  const InfectionChain chain(10, 0.2);
  const auto dist = chain.distribution_after(0, 3);
  EXPECT_DOUBLE_EQ(dist[3], 1.0);
  EXPECT_DOUBLE_EQ(chain.expected_infected(0, 3), 3.0);
}

TEST(InfectionChain, ExpectedInfectedMonotoneInRounds) {
  const InfectionChain chain(50, 0.05);
  double prev = 1.0;
  for (std::size_t t = 1; t <= 12; ++t) {
    const double cur = chain.expected_infected(t, 1);
    EXPECT_GE(cur, prev - 1e-12);
    prev = cur;
  }
}

TEST(InfectionChain, ConvergesToFullInfection) {
  const InfectionChain chain(25, 0.2);
  EXPECT_NEAR(chain.expected_infected(40, 1), 25.0, 0.01);
}

TEST(InfectionChain, MatchesTwoProcessClosedForm) {
  // n=2: from 1 infected, P[2 infected after 1 round] = p.
  const InfectionChain chain(2, 0.35);
  EXPECT_NEAR(chain.transition(1, 2), 0.35, 1e-12);
  EXPECT_NEAR(chain.transition(1, 1), 0.65, 1e-12);
  EXPECT_NEAR(chain.expected_infected(1, 1), 1.35, 1e-12);
}

TEST(InfectionChain, MatchesThreeProcessClosedForm) {
  // n=3, j=1: each of the other 2 infected independently w.p. p.
  const double p = 0.25;
  const InfectionChain chain(3, p);
  EXPECT_NEAR(chain.transition(1, 1), (1 - p) * (1 - p), 1e-12);
  EXPECT_NEAR(chain.transition(1, 2), 2 * p * (1 - p), 1e-12);
  EXPECT_NEAR(chain.transition(1, 3), p * p, 1e-12);
}

TEST(InfectionChain, FlatFactoryMatchesEq8) {
  // p = F/(n-1) * (1-eps)(1-tau).
  EnvParams env;
  env.loss = 0.05;
  env.crash = 0.01;
  const auto chain = InfectionChain::flat(101, 2.0, env);
  EXPECT_NEAR(chain.p_receive(), (2.0 / 100.0) * 0.95 * 0.99, 1e-12);
}

TEST(InfectionChain, FlatFanoutBeyondGroupClamped) {
  const auto chain = InfectionChain::flat(3, 10.0);
  EXPECT_DOUBLE_EQ(chain.p_receive(), 1.0);
}

TEST(InfectionChain, SingletonGroup) {
  const auto chain = InfectionChain::flat(1, 2.0);
  EXPECT_DOUBLE_EQ(chain.expected_infected(5, 1), 1.0);
}

TEST(InfectionChain, InvalidArgumentsRejected) {
  EXPECT_THROW(InfectionChain(0, 0.5), std::logic_error);
  EXPECT_THROW(InfectionChain(5, 1.5), std::logic_error);
  EXPECT_THROW(InfectionChain(5, -0.1), std::logic_error);
  const InfectionChain chain(5, 0.5);
  EXPECT_THROW(chain.distribution_after(1, 6), std::logic_error);
}

TEST(InfectionChain, LargeChainNumericallyStable) {
  const InfectionChain chain(300, 0.01);
  const auto dist = chain.distribution_after(10, 1);
  double total = 0;
  for (const auto p : dist) {
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0 + 1e-12);
    total += p;
  }
  EXPECT_NEAR(total, 1.0, 1e-8);
}

}  // namespace
}  // namespace pmc

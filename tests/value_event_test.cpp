#include <gtest/gtest.h>

#include "event/event.hpp"
#include "event/value.hpp"

namespace pmc {
namespace {

TEST(Value, Kinds) {
  EXPECT_EQ(Value(1).kind(), ValueKind::Int);
  EXPECT_EQ(Value(std::int64_t{5}).kind(), ValueKind::Int);
  EXPECT_EQ(Value(2.5).kind(), ValueKind::Float);
  EXPECT_EQ(Value("hi").kind(), ValueKind::String);
  EXPECT_EQ(Value(std::string("hi")).kind(), ValueKind::String);
}

TEST(Value, DefaultIsIntZero) {
  Value v;
  EXPECT_EQ(v.kind(), ValueKind::Int);
  EXPECT_EQ(v.as_int(), 0);
}

TEST(Value, NumericCrossKindEquality) {
  EXPECT_EQ(Value(2), Value(2.0));
  EXPECT_NE(Value(2), Value(2.5));
  EXPECT_NE(Value(2), Value("2"));
}

TEST(Value, StringEquality) {
  EXPECT_EQ(Value("Bob"), Value(std::string("Bob")));
  EXPECT_NE(Value("Bob"), Value("Tom"));
}

TEST(Value, AsDoubleFromInt) {
  EXPECT_DOUBLE_EQ(Value(7).as_double(), 7.0);
  EXPECT_DOUBLE_EQ(Value(7.25).as_double(), 7.25);
}

TEST(Value, WrongKindAccessThrows) {
  EXPECT_THROW(Value("x").as_double(), std::logic_error);
  EXPECT_THROW(Value(1.5).as_int(), std::logic_error);
  EXPECT_THROW(Value(3).as_string(), std::logic_error);
}

TEST(Value, ToString) {
  EXPECT_EQ(Value(42).to_string(), "42");
  EXPECT_EQ(Value("Bob").to_string(), "\"Bob\"");
}

TEST(Event, SetAndGet) {
  Event e;
  e.with("b", 2).with("c", 41.5).with("e", "Bob");
  EXPECT_TRUE(e.has("b"));
  EXPECT_EQ(e.get("b")->as_int(), 2);
  EXPECT_DOUBLE_EQ(e.get("c")->as_double(), 41.5);
  EXPECT_EQ(e.get("e")->as_string(), "Bob");
  EXPECT_FALSE(e.get("missing").has_value());
}

TEST(Event, WithReplacesExisting) {
  Event e;
  e.with("b", 1).with("b", 2);
  EXPECT_EQ(e.size(), 1u);
  EXPECT_EQ(e.get("b")->as_int(), 2);
}

TEST(Event, AttributesSortedByName) {
  Event e;
  e.with("z", 1).with("a", 2).with("m", 3);
  const auto& attrs = e.attributes();
  ASSERT_EQ(attrs.size(), 3u);
  EXPECT_EQ(attrs[0].name, "a");
  EXPECT_EQ(attrs[1].name, "m");
  EXPECT_EQ(attrs[2].name, "z");
}

TEST(Event, IdRoundTrip) {
  Event e(EventId{7, 9});
  EXPECT_EQ(e.id().publisher, 7u);
  EXPECT_EQ(e.id().sequence, 9u);
  e.set_id(EventId{1, 2});
  EXPECT_EQ(e.id().publisher, 1u);
}

TEST(EventId, OrderingAndEquality) {
  EXPECT_EQ((EventId{1, 2}), (EventId{1, 2}));
  EXPECT_LT((EventId{1, 2}), (EventId{1, 3}));
  EXPECT_LT((EventId{1, 9}), (EventId{2, 0}));
}

TEST(EventIdHash, DistinctIdsRarelyCollide) {
  EventIdHash h;
  std::size_t a = h(EventId{1, 1});
  std::size_t b = h(EventId{1, 2});
  std::size_t c = h(EventId{2, 1});
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
}

TEST(Event, ToStringListsAttributes) {
  Event e;
  e.with("b", 2).with("e", "x");
  EXPECT_EQ(e.to_string(), "{b=2, e=\"x\"}");
}

TEST(Event, EmptyEvent) {
  Event e;
  EXPECT_TRUE(e.empty());
  EXPECT_EQ(e.to_string(), "{}");
}

}  // namespace
}  // namespace pmc

#include "filter/regroup.hpp"

#include <gtest/gtest.h>

#include "common/rng.hpp"
#include "filter/subscription.hpp"

namespace pmc {
namespace {

Event ev(double c) {
  Event e;
  e.with("c", c);
  return e;
}

TEST(Clause, UnconstrainedMatchesEverything) {
  Clause c;
  EXPECT_TRUE(c.unconstrained());
  EXPECT_TRUE(c.match(Event{}));
}

TEST(Clause, NumericConstraint) {
  Clause c;
  c.constrain_numeric("b", Interval::closed(1.0, 5.0));
  Event in;
  in.with("b", 3);
  Event out;
  out.with("b", 6);
  EXPECT_TRUE(c.match(in));
  EXPECT_FALSE(c.match(out));
  EXPECT_FALSE(c.match(Event{}));  // missing attribute
}

TEST(Clause, IntersectingConstraintsNarrow) {
  Clause c;
  c.constrain_numeric("b", Interval::at_least(1.0));
  c.constrain_numeric("b", Interval::at_most(5.0));
  Event in;
  in.with("b", 3);
  EXPECT_TRUE(c.match(in));
  Event out;
  out.with("b", 0);
  EXPECT_FALSE(c.match(out));
}

TEST(Clause, ContradictionDetected) {
  Clause c;
  c.constrain_numeric("b", Interval::at_most(1.0, true));
  c.constrain_numeric("b", Interval::at_least(2.0));
  EXPECT_TRUE(c.contradictory());
  Event e;
  e.with("b", 1.5);
  EXPECT_FALSE(c.match(e));
}

TEST(Clause, StringWhitelist) {
  Clause c;
  c.constrain_string("e", {"Bob", "Tom"});
  Event bob;
  bob.with("e", "Bob");
  Event ann;
  ann.with("e", "Ann");
  EXPECT_TRUE(c.match(bob));
  EXPECT_FALSE(c.match(ann));
}

TEST(Clause, StringIntersection) {
  Clause c;
  c.constrain_string("e", {"Bob", "Tom"});
  c.constrain_string("e", {"Tom", "Ann"});
  Event tom;
  tom.with("e", "Tom");
  Event bob;
  bob.with("e", "Bob");
  EXPECT_TRUE(c.match(tom));
  EXPECT_FALSE(c.match(bob));
}

TEST(Clause, MixedKindSameAttrContradicts) {
  Clause c;
  c.constrain_numeric("x", Interval::point(1.0));
  c.constrain_string("x", {"one"});
  EXPECT_TRUE(c.contradictory());
}

TEST(Clause, Subsumption) {
  Clause weak;
  weak.constrain_numeric("b", Interval::closed(0.0, 10.0));
  Clause strong;
  strong.constrain_numeric("b", Interval::closed(2.0, 3.0));
  strong.constrain_numeric("c", Interval::at_least(1.0));
  EXPECT_TRUE(weak.subsumes(strong));
  EXPECT_FALSE(strong.subsumes(weak));
  EXPECT_TRUE(weak.subsumes(weak));
}

TEST(ToDnf, SimpleComparison) {
  const auto clauses =
      to_dnf(Subscription::parse("b > 3").predicate(), 64);
  ASSERT_TRUE(clauses.has_value());
  ASSERT_EQ(clauses->size(), 1u);
}

TEST(ToDnf, NumericNeSplitsIntoTwoClauses) {
  const auto clauses =
      to_dnf(Subscription::parse("b != 3").predicate(), 64);
  ASSERT_TRUE(clauses.has_value());
  EXPECT_EQ(clauses->size(), 2u);
}

TEST(ToDnf, AndDistributesOverOr) {
  const auto clauses = to_dnf(
      Subscription::parse("(a == 1 || a == 2) && (b == 3 || b == 4)")
          .predicate(),
      64);
  ASSERT_TRUE(clauses.has_value());
  EXPECT_EQ(clauses->size(), 4u);
}

TEST(ToDnf, ContradictionsDropped) {
  const auto clauses =
      to_dnf(Subscription::parse("b > 5 && b < 3").predicate(), 64);
  ASSERT_TRUE(clauses.has_value());
  EXPECT_TRUE(clauses->empty());
}

TEST(ToDnf, BudgetExhaustionReturnsNullopt) {
  // 2^7 = 128 clauses > 64 budget.
  std::string text = "(a0 == 0 || a0 == 1)";
  for (int i = 1; i < 7; ++i) {
    text += " && (a" + std::to_string(i) + " == 0 || a" + std::to_string(i) +
            " == 1)";
  }
  EXPECT_FALSE(to_dnf(Subscription::parse(text).predicate(), 64).has_value());
}

TEST(ToDnf, StringInequalityNotRepresentable) {
  EXPECT_FALSE(
      to_dnf(Subscription::parse("e != \"Bob\"").predicate(), 64).has_value());
}

TEST(InterestSummary, WildcardSubscription) {
  const auto s = InterestSummary::from(Subscription());
  EXPECT_TRUE(s.is_wildcard());
  EXPECT_TRUE(s.match(Event{}));
  EXPECT_EQ(s.complexity(), 0u);
}

TEST(InterestSummary, SingleRangeMatches) {
  const auto s =
      InterestSummary::from(Subscription::parse("c > 155.6"));
  EXPECT_TRUE(s.match(ev(156.0)));
  EXPECT_FALSE(s.match(ev(155.6)));
}

TEST(InterestSummary, UnionOfRangesMergesIntervals) {
  auto s = InterestSummary::from(Subscription::parse("c > 10.0 && c < 20.0"));
  s.merge(InterestSummary::from(Subscription::parse("c >= 15.0 && c < 30.0")));
  // One attribute, intervals merged into a single (10, 30).
  ASSERT_EQ(s.numeric_unions().size(), 1u);
  EXPECT_EQ(s.numeric_unions().at("c").size(), 1u);
  EXPECT_TRUE(s.match(ev(25.0)));
  EXPECT_TRUE(s.match(ev(12.0)));
  EXPECT_FALSE(s.match(ev(30.0)));
}

TEST(InterestSummary, NoFalseNegativesOverMergedSubscriptions) {
  // Core soundness property (paper Sec. 2.3): the regrouped interest of a
  // subgroup must match every event any member's subscription matches.
  Rng rng(7);
  std::vector<Subscription> subs;
  for (int i = 0; i < 40; ++i) {
    const double lo = rng.next_double();
    const double w = rng.next_double() * 0.3;
    subs.push_back(Subscription::parse(
        "c >= " + std::to_string(lo) + " && c < " + std::to_string(lo + w)));
  }
  InterestSummary summary;
  for (const auto& s : subs) summary.merge(InterestSummary::from(s));
  for (int i = 0; i < 2000; ++i) {
    const Event e = ev(rng.next_double() * 1.4);
    bool any = false;
    for (const auto& s : subs) any = any || s.match(e);
    if (any) {
      EXPECT_TRUE(summary.match(e)) << "false negative at " << i;
    }
  }
}

TEST(InterestSummary, ExactForIntervalUnions) {
  // For pure single-attribute range subscriptions the summary is *exact*:
  // no false positives either.
  Rng rng(11);
  std::vector<Subscription> subs;
  for (int i = 0; i < 25; ++i) {
    const double lo = rng.next_double() * 0.8;
    subs.push_back(Subscription::parse(
        "c >= " + std::to_string(lo) + " && c < " + std::to_string(lo + 0.1)));
  }
  InterestSummary summary;
  for (const auto& s : subs) summary.merge(InterestSummary::from(s));
  for (int i = 0; i < 2000; ++i) {
    const Event e = ev(rng.next_double());
    bool any = false;
    for (const auto& s : subs) any = any || s.match(e);
    EXPECT_EQ(summary.match(e), any);
  }
}

TEST(InterestSummary, MultiAttributeClausesKept) {
  const auto s = InterestSummary::from(
      Subscription::parse("b > 3 && 10.0 < c && c < 220.0"));
  Event in;
  in.with("b", 4).with("c", 100.0);
  Event wrong_b;
  wrong_b.with("b", 2).with("c", 100.0);
  EXPECT_TRUE(s.match(in));
  EXPECT_FALSE(s.match(wrong_b));
  EXPECT_EQ(s.clauses().size(), 1u);
}

TEST(InterestSummary, MergeWithWildcardBecomesWildcard) {
  auto s = InterestSummary::from(Subscription::parse("b > 3"));
  s.merge(InterestSummary::from(Subscription()));
  EXPECT_TRUE(s.is_wildcard());
  EXPECT_TRUE(s.match(Event{}));
}

TEST(InterestSummary, SubsumedClauseDropped) {
  auto s = InterestSummary::from(
      Subscription::parse("b > 3 && c > 10.0"));
  // (b > 3 && c > 5) is weaker; merging it should leave a single clause.
  s.merge(InterestSummary::from(Subscription::parse("b > 3 && c > 5.0")));
  EXPECT_EQ(s.clauses().size(), 1u);
  Event e;
  e.with("b", 4).with("c", 7.0);
  EXPECT_TRUE(s.match(e));
}

TEST(InterestSummary, ClauseCoveredBySingleAttrUnionDropped) {
  auto s = InterestSummary::from(Subscription::parse("b > 0"));
  s.merge(InterestSummary::from(Subscription::parse("b > 3 && c > 10.0")));
  // b > 0 already covers every event the two-attribute clause matches.
  EXPECT_TRUE(s.clauses().empty());
  Event e;
  e.with("b", 4).with("c", 20.0);
  EXPECT_TRUE(s.match(e));
}

TEST(InterestSummary, OpaquePredicatesStillMatch) {
  const auto s = InterestSummary::from(
      Subscription::parse("e != \"Bob\""));  // not DNF-representable
  Event tom;
  tom.with("e", "Tom");
  Event bob;
  bob.with("e", "Bob");
  EXPECT_TRUE(s.match(tom));
  EXPECT_FALSE(s.match(bob));
}

TEST(InterestSummary, CoarsenIsMonotone) {
  // Coarsening may only add matches, never lose them.
  Rng rng(13);
  auto s = InterestSummary::from(
      Subscription::parse("b > 3 && c > 10.0 && c < 20.0"));
  s.merge(InterestSummary::from(Subscription::parse("c >= 100.0 && c < 101.0")));
  s.merge(InterestSummary::from(Subscription::parse("c >= 0.0 && c < 0.5")));
  auto coarse = s;
  coarse.coarsen();
  for (int i = 0; i < 1000; ++i) {
    Event e;
    e.with("b", static_cast<std::int64_t>(rng.next_below(10)))
        .with("c", rng.next_double() * 120.0);
    if (s.match(e)) {
      EXPECT_TRUE(coarse.match(e));
    }
  }
  EXPECT_LE(coarse.complexity(), s.complexity());
}

TEST(InterestSummary, StringUnions) {
  auto s = InterestSummary::from(Subscription::parse("e == \"Bob\""));
  s.merge(InterestSummary::from(Subscription::parse("e == \"Tom\"")));
  Event bob;
  bob.with("e", "Bob");
  Event tom;
  tom.with("e", "Tom");
  Event ann;
  ann.with("e", "Ann");
  EXPECT_TRUE(s.match(bob));
  EXPECT_TRUE(s.match(tom));
  EXPECT_FALSE(s.match(ann));
}

TEST(InterestSummary, ComplexityReflectsCompaction) {
  // 20 overlapping ranges collapse into one interval: complexity 1, far
  // below the naive disjunction of 20 subscriptions.
  InterestSummary s;
  for (int i = 0; i < 20; ++i) {
    const double lo = 0.1 * i;
    s.merge(InterestSummary::from(Subscription::parse(
        "c >= " + std::to_string(lo) + " && c <= " + std::to_string(lo + 0.2))));
  }
  EXPECT_EQ(s.complexity(), 1u);
}

}  // namespace
}  // namespace pmc

// Online ε/τ estimation: EWMA convergence and tracking at the unit level,
// the bound-collapse guard at the node level, and determinism of adaptive
// scenario runs (same seed + script ⇒ byte-identical summaries, estimator
// state included).
#include "analysis/env_estimator.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "cluster_helpers.hpp"
#include "harness/scenario.hpp"

namespace pmc {
namespace {

using testing::default_config;
using testing::make_cluster;

AdaptiveEnv policy(double prior_loss = 0.0, double alpha = 0.5) {
  AdaptiveEnv p;
  p.prior.loss = prior_loss;
  p.adaptive = true;
  p.ewma_alpha = alpha;
  return p;
}

/// Acks surviving a round trip at loss ε: probes * (1-ε)².
std::uint64_t acks_at(std::uint64_t probes, double eps) {
  return static_cast<std::uint64_t>(
      std::llround(static_cast<double>(probes) * (1.0 - eps) * (1.0 - eps)));
}

TEST(EnvEstimator, ConvergesUnderConstantLoss) {
  EnvEstimator est(policy(/*prior_loss=*/0.0));
  for (int w = 0; w < 40; ++w) est.observe_feedback(200, acks_at(200, 0.3));
  EXPECT_NEAR(est.estimate().loss, 0.3, 0.02);
  EXPECT_EQ(est.feedback_windows(), 40u);
}

TEST(EnvEstimator, TracksAcrossLossBurstEdge) {
  // Calm -> burst -> calm: the estimate must climb within a few windows of
  // the edge and decay back after it.
  EnvEstimator est(policy(0.02));
  for (int w = 0; w < 20; ++w) est.observe_feedback(100, acks_at(100, 0.02));
  const double calm = est.estimate().loss;
  EXPECT_NEAR(calm, 0.02, 0.02);

  for (int w = 0; w < 6; ++w) est.observe_feedback(100, acks_at(100, 0.45));
  const double burst = est.estimate().loss;
  EXPECT_GT(burst, 0.35);  // 1 - 0.5^6 of the way to 0.45

  for (int w = 0; w < 20; ++w) est.observe_feedback(100, acks_at(100, 0.02));
  EXPECT_LT(est.estimate().loss, 0.05);
}

TEST(EnvEstimator, IgnoresWindowsBelowMinProbes) {
  EnvEstimator est(policy(0.1));
  est.observe_feedback(2, 0);  // min_probes is 4: pure noise, discarded
  EXPECT_DOUBLE_EQ(est.estimate().loss, 0.1);
  EXPECT_EQ(est.feedback_windows(), 0u);
}

TEST(EnvEstimator, AckSurplusClampsToZeroLossObservation) {
  // Acks answering the previous window's probes can exceed this window's
  // sends; the ratio clamps to 1 (an observed loss of 0), never negative.
  EnvEstimator est(policy(0.5));
  for (int w = 0; w < 50; ++w) est.observe_feedback(10, 14);
  EXPECT_NEAR(est.estimate().loss, 0.0, 1e-9);
}

TEST(EnvEstimator, SaturatedLossStaysAValidFaultyInput) {
  // Total blackout: the estimate saturates at the ceiling (< 1), so the
  // round bound collapses to 0 without tripping faulty()'s contract.
  EnvEstimator est(policy(0.05));
  for (int w = 0; w < 100; ++w) est.observe_feedback(50, 0);
  const EnvParams env = est.estimate();
  EXPECT_LE(env.loss, est.policy().loss_ceiling);
  const RoundEstimator rounds;
  EXPECT_NO_THROW(rounds.faulty(100, 3, env));
}

TEST(EnvEstimator, ChurnWindowsDriveCrashEstimate) {
  EnvEstimator est(policy());
  for (int w = 0; w < 30; ++w) est.observe_churn(2, 20);  // 10% per window
  EXPECT_NEAR(est.estimate().crash, 0.1, 0.01);
  est.observe_churn(5, 0);  // empty population: ignored
  EXPECT_EQ(est.churn_windows(), 30u);
}

TEST(EnvEstimator, RejectsNonsensePolicies) {
  AdaptiveEnv bad = policy();
  bad.ewma_alpha = 0.0;
  EXPECT_THROW(EnvEstimator{bad}, std::logic_error);
  bad = policy();
  bad.loss_ceiling = 1.0;  // must stay < 1 to keep (1-ε) > 0
  EXPECT_THROW(EnvEstimator{bad}, std::logic_error);
  bad = policy();
  bad.prior.loss = 1.0;
  EXPECT_THROW(EnvEstimator{bad}, std::logic_error);
}

// --- Bound collapse at the node level --------------------------------------

TEST(BoundCollapse, CountedWhenDiscountedPopulationVanishes) {
  // A harsh (but legal) environment estimate: keep = 0.01 discounts every
  // audience below 1, so the Eq. 11 bound is 0 at every depth and events
  // retire after zero rounds. Pre-fix this was silent delivery loss; now
  // each skipped depth is counted.
  PmcastConfig config = default_config();
  config.env.prior.loss = 0.9;
  config.env.prior.crash = 0.9;
  auto c = make_cluster(4, 2, 2, /*pd=*/1.0, config, 0.0, 11);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  EXPECT_GT(c.nodes[0]->stats().bound_collapsed, 0u);
  EXPECT_EQ(c.nodes[0]->stats().rounds_run, 0u);
  // Nobody else could have been reached: the event died at the publisher.
  for (const auto& n : c.nodes) {
    if (n->id() == 0) continue;
    EXPECT_FALSE(n->has_received(e.id()));
  }
}

TEST(BoundCollapse, NotCountedInHealthyEnvironments) {
  auto c = make_cluster(4, 2, 2, /*pd=*/1.0, default_config(), 0.0, 12);
  c.nodes[0]->pmcast(make_event_at(0, 0, 0.5));
  c.runtime->run_until_idle();
  std::uint64_t collapsed = 0;
  for (const auto& n : c.nodes) collapsed += n->stats().bound_collapsed;
  EXPECT_EQ(collapsed, 0u);
}

// --- no_regossip semantics ---------------------------------------------------

TEST(NoRegossip, FloodReceiversDeliverWithoutGossiping) {
  // Depth-1 tree: the whole group is one leaf subgroup, so a dense publish
  // floods once. Receivers must deliver yet never re-gossip (the explicit
  // GossipMsg::no_regossip flag) — exactly one message per interested
  // neighbor in the entire run, and zero probabilistic rounds anywhere.
  PmcastConfig config = default_config();
  config.leaf_flood_density = 0.9;
  auto c = make_cluster(6, 1, 1, /*pd=*/1.0, config, 0.0, 13);
  const Event e = make_event_at(0, 0, 0.5);
  c.nodes[0]->pmcast(e);
  c.runtime->run_until_idle();
  std::uint64_t gossips = 0, rounds = 0;
  std::size_t delivered = 0;
  for (const auto& n : c.nodes) {
    gossips += n->stats().gossips_sent;
    rounds += n->stats().rounds_run;
    if (n->has_delivered(e.id())) ++delivered;
  }
  EXPECT_EQ(delivered, c.nodes.size());
  EXPECT_EQ(gossips, c.nodes.size() - 1);  // one flood send per neighbor
  EXPECT_EQ(rounds, 0u);
}

// --- Adaptive scenario runs ---------------------------------------------------

ChurnConfig adaptive_config() {
  ChurnConfig config;
  config.a = 4;
  config.d = 2;
  config.r = 2;
  config.loss = 0.02;
  config.seed = 99;
  config.adaptive = true;
  return config;
}

ScenarioScript bursty_script() {
  ScenarioScript s;
  s.add(sim_ms(300), LossBurst{0.45, sim_ms(1500)});
  s.add(sim_ms(1200), PublishBurst{6, sim_ms(30)});
  return s;
}

TEST(AdaptiveChurn, SameSeedByteIdenticalSummaries) {
  const auto run = [] {
    ChurnSim sim(adaptive_config());
    sim.play(bursty_script());
    sim.run_until(sim_ms(2500));
    return sim.summary();
  };
  const ChurnSummary first = run();
  const ChurnSummary second = run();
  EXPECT_EQ(first, second);
  EXPECT_GT(first.env_windows, 0u);
}

TEST(AdaptiveChurn, EstimateTracksTheLossBurst) {
  // Mid-burst the live mean ε̂ must sit far above the 0.02 base rate; a
  // calm twin stays near it. (ppm fields: 1e6 = certainty.)
  ChurnSim burst(adaptive_config());
  burst.play(bursty_script());
  burst.run_until(sim_ms(1700));  // still inside the burst
  const auto hot = burst.group_summary();
  EXPECT_GT(hot.env_loss_ppm, 200000u);  // ε̂ > 0.2 under ε = 0.45

  ChurnSim calm(adaptive_config());
  calm.run_until(sim_ms(1700));
  const auto cool = calm.group_summary();
  EXPECT_LT(cool.env_loss_ppm, 100000u);  // ε̂ < 0.1 at ε = 0.02
}

TEST(AdaptiveChurn, StaticRunsCarryNoEstimatorState) {
  ChurnConfig config = adaptive_config();
  config.adaptive = false;
  ChurnSim sim(config);
  sim.play(bursty_script());
  sim.run_until(sim_ms(2000));
  const auto summary = sim.group_summary();
  EXPECT_EQ(summary.env_windows, 0u);
  EXPECT_EQ(summary.env_loss_ppm, 0u);
  EXPECT_EQ(summary.env_crash_ppm, 0u);
}

}  // namespace
}  // namespace pmc

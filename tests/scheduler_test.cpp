#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <vector>

namespace pmc {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(sim_ms(30), [&] { order.push_back(3); });
  s.schedule_at(sim_ms(10), [&] { order.push_back(1); });
  s.schedule_at(sim_ms(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), sim_ms(30));
}

TEST(Scheduler, SameTimeFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    s.schedule_at(sim_ms(10), [&order, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesNow) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(sim_ms(5), [&] {
    s.schedule_after(sim_ms(10), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, sim_ms(15));
}

TEST(Scheduler, SchedulingInPastThrows) {
  Scheduler s;
  s.schedule_at(sim_ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(sim_ms(5), [] {}), std::logic_error);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto token = s.schedule_at(sim_ms(10), [&] { ran = true; });
  s.cancel(token);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, CancelOneOfMany) {
  Scheduler s;
  int count = 0;
  s.schedule_at(sim_ms(1), [&] { ++count; });
  const auto token = s.schedule_at(sim_ms(2), [&] { ++count; });
  s.schedule_at(sim_ms(3), [&] { ++count; });
  s.cancel(token);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, PendingCountsLiveEvents) {
  Scheduler s;
  const auto t1 = s.schedule_at(sim_ms(1), [] {});
  s.schedule_at(sim_ms(2), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(t1);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(sim_ms(10), [&] { order.push_back(1); });
  s.schedule_at(sim_ms(20), [&] { order.push_back(2); });
  s.run_until(sim_ms(15));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), sim_ms(15));  // time advances to the deadline
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_after(sim_ms(1), recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), sim_ms(9));
}

TEST(Scheduler, MaxEventsGuard) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run(/*max_events=*/100), std::runtime_error);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, StepRunsExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(1, [&] { ++count; });
  s.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, NullFunctionRejected) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(1, nullptr), std::logic_error);
}

}  // namespace
}  // namespace pmc

#include "sim/scheduler.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <vector>

namespace pmc {
namespace {

TEST(Scheduler, RunsEventsInTimeOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(sim_ms(30), [&] { order.push_back(3); });
  s.schedule_at(sim_ms(10), [&] { order.push_back(1); });
  s.schedule_at(sim_ms(20), [&] { order.push_back(2); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(s.now(), sim_ms(30));
}

TEST(Scheduler, SameTimeFifo) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i)
    s.schedule_at(sim_ms(10), [&order, i] { order.push_back(i); });
  s.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Scheduler, ScheduleAfterUsesNow) {
  Scheduler s;
  SimTime seen = -1;
  s.schedule_at(sim_ms(5), [&] {
    s.schedule_after(sim_ms(10), [&] { seen = s.now(); });
  });
  s.run();
  EXPECT_EQ(seen, sim_ms(15));
}

TEST(Scheduler, SchedulingInPastThrows) {
  Scheduler s;
  s.schedule_at(sim_ms(10), [] {});
  s.run();
  EXPECT_THROW(s.schedule_at(sim_ms(5), [] {}), std::logic_error);
}

TEST(Scheduler, CancelPreventsExecution) {
  Scheduler s;
  bool ran = false;
  const auto token = s.schedule_at(sim_ms(10), [&] { ran = true; });
  s.cancel(token);
  s.run();
  EXPECT_FALSE(ran);
  EXPECT_EQ(s.executed(), 0u);
}

TEST(Scheduler, CancelOneOfMany) {
  Scheduler s;
  int count = 0;
  s.schedule_at(sim_ms(1), [&] { ++count; });
  const auto token = s.schedule_at(sim_ms(2), [&] { ++count; });
  s.schedule_at(sim_ms(3), [&] { ++count; });
  s.cancel(token);
  s.run();
  EXPECT_EQ(count, 2);
}

TEST(Scheduler, PendingCountsLiveEvents) {
  Scheduler s;
  const auto t1 = s.schedule_at(sim_ms(1), [] {});
  s.schedule_at(sim_ms(2), [] {});
  EXPECT_EQ(s.pending(), 2u);
  s.cancel(t1);
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_EQ(s.pending(), 0u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, RunUntilStopsAtDeadline) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(sim_ms(10), [&] { order.push_back(1); });
  s.schedule_at(sim_ms(20), [&] { order.push_back(2); });
  s.run_until(sim_ms(15));
  EXPECT_EQ(order, (std::vector<int>{1}));
  EXPECT_EQ(s.now(), sim_ms(15));  // time advances to the deadline
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(Scheduler, EventsCanScheduleEvents) {
  Scheduler s;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 10) s.schedule_after(sim_ms(1), recurse);
  };
  s.schedule_at(0, recurse);
  s.run();
  EXPECT_EQ(depth, 10);
  EXPECT_EQ(s.now(), sim_ms(9));
}

TEST(Scheduler, MaxEventsGuard) {
  Scheduler s;
  std::function<void()> forever = [&] { s.schedule_after(1, forever); };
  s.schedule_at(0, forever);
  EXPECT_THROW(s.run(/*max_events=*/100), std::runtime_error);
}

TEST(Scheduler, ExecutedCounter) {
  Scheduler s;
  for (int i = 0; i < 7; ++i) s.schedule_at(i, [] {});
  s.run();
  EXPECT_EQ(s.executed(), 7u);
}

TEST(Scheduler, StepRunsExactlyOne) {
  Scheduler s;
  int count = 0;
  s.schedule_at(1, [&] { ++count; });
  s.schedule_at(2, [&] { ++count; });
  EXPECT_TRUE(s.step());
  EXPECT_EQ(count, 1);
  EXPECT_TRUE(s.step());
  EXPECT_FALSE(s.step());
}

TEST(Scheduler, NullFunctionRejected) {
  Scheduler s;
  EXPECT_THROW(s.schedule_at(1, nullptr), std::logic_error);
  // An *empty* std::function (an unset handler member, say) must be caught
  // at schedule time too, not as bad_function_call when the event fires.
  std::function<void()> empty;
  EXPECT_THROW(s.schedule_at(1, std::move(empty)), std::logic_error);
  void (*null_fn)() = nullptr;
  EXPECT_THROW(s.schedule_at(1, null_fn), std::logic_error);
}

// Regression for the const_cast the old priority_queue implementation needed:
// a non-copyable callback (owning a unique_ptr) must move through the
// scheduler without any copy.
TEST(Scheduler, MoveOnlyCallback) {
  Scheduler s;
  int value = 0;
  auto payload = std::make_unique<int>(42);
  s.schedule_at(sim_ms(1), [&value, p = std::move(payload)] { value = *p; });
  s.run();
  EXPECT_EQ(value, 42);
}

TEST(Scheduler, CancelThenRescheduleKeepsOrder) {
  Scheduler s;
  std::vector<int> order;
  s.schedule_at(sim_ms(10), [&] { order.push_back(1); });
  const auto token = s.schedule_at(sim_ms(20), [&] { order.push_back(99); });
  s.schedule_at(sim_ms(30), [&] { order.push_back(3); });
  s.cancel(token);
  s.schedule_at(sim_ms(20), [&] { order.push_back(2); });  // replacement
  s.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Scheduler, CancelInterleavedKeepsHeapOrder) {
  // Cancelling from the middle of the heap must not disturb the ordering of
  // the surviving events (in-place removal re-sifts the displaced entry).
  Scheduler s;
  std::vector<int> order;
  std::vector<EventToken> tokens;
  for (int i = 0; i < 64; ++i) {
    // Insert in a scrambled but deterministic time order.
    const int t = (i * 37) % 64;
    tokens.push_back(s.schedule_at(sim_ms(t), [&order, t] {
      order.push_back(t);
    }));
  }
  for (std::size_t i = 0; i < tokens.size(); i += 3) s.cancel(tokens[i]);
  s.run();
  std::vector<int> expected;
  for (int i = 0; i < 64; ++i) {
    if ((i % 3) != 0) expected.push_back((i * 37) % 64);
  }
  std::sort(expected.begin(), expected.end());
  EXPECT_EQ(order, expected);
}

TEST(Scheduler, CancelOwnTokenWhileRunningIsNoOp) {
  Scheduler s;
  EventToken token = 0;
  token = s.schedule_at(sim_ms(1), [&] { s.cancel(token); });
  s.run();
  EXPECT_EQ(s.executed(), 1u);
  EXPECT_TRUE(s.empty());
}

TEST(Scheduler, StaleTokenAfterSlotReuseIsNoOp) {
  Scheduler s;
  bool second_ran = false;
  const auto stale = s.schedule_at(sim_ms(1), [] {});
  s.run();  // the event runs; its slot is recycled
  s.schedule_at(sim_ms(2), [&] { second_ran = true; });
  s.cancel(stale);  // must not hit the event now occupying the slot
  EXPECT_EQ(s.pending(), 1u);
  s.run();
  EXPECT_TRUE(second_ran);
}

TEST(Scheduler, DoubleCancelIsNoOp) {
  Scheduler s;
  int count = 0;
  const auto token = s.schedule_at(sim_ms(1), [&] { ++count; });
  s.schedule_at(sim_ms(2), [&] { ++count; });
  s.cancel(token);
  s.cancel(token);
  s.run();
  EXPECT_EQ(count, 1);
}

TEST(Scheduler, CancelPendingFromInsideEvent) {
  Scheduler s;
  bool cancelled_ran = false;
  const auto victim =
      s.schedule_at(sim_ms(20), [&] { cancelled_ran = true; });
  s.schedule_at(sim_ms(10), [&] { s.cancel(victim); });
  s.run();
  EXPECT_FALSE(cancelled_ran);
  EXPECT_EQ(s.executed(), 1u);
}

}  // namespace
}  // namespace pmc

// detlint fixture: MUST pass with zero findings.
// The compliant shapes of the patterns the bad_* fixtures get flagged for:
// sorted containers for anything iterated, lookups (not loops) against
// unordered containers, constants instead of mutable statics.
#include <algorithm>
#include <cstdint>
#include <map>
#include <unordered_map>
#include <vector>

namespace fixture {

// Lookup-only use of an unordered container is fine: no iteration, so no
// bucket order can leak.
std::uint64_t lookup(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts,
    std::uint64_t key) {
  const auto it = counts.find(key);
  return it == counts.end() ? 0 : it->second;
}

// Iteration over an ordered map is deterministic by construction.
std::vector<std::uint64_t> drain(
    const std::map<std::uint64_t, std::uint64_t>& counts) {
  std::vector<std::uint64_t> out;
  for (const auto& [key, value] : counts) out.push_back(key * value);
  return out;
}

// Immutable statics are shared-safe and replay-safe.
std::uint64_t scale(std::uint64_t v) {
  static constexpr std::uint64_t kFactor = 33;
  return v * kFactor;
}

}  // namespace fixture

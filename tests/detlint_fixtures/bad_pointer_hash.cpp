// detlint fixture: MUST be flagged exactly once, rule = pointer-hash.
// Hashing a pointer value bakes the allocator's (ASLR-shifted) address into
// the result — two replays of the same scenario disagree.
#include <cstddef>
#include <functional>

namespace fixture {

std::size_t bucket_of(int* item, std::size_t buckets) {
  std::hash<int*> hasher;
  return hasher(item) % buckets;
}

}  // namespace fixture

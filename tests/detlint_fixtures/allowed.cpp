// detlint fixture: contains real violations, each carrying an inline
// `detlint:allow` annotation with a justification. MUST pass when
// annotations are honored and MUST be flagged when they are ignored
// (--no-allowlist) — that asymmetry is what proves the escape hatch, and
// only the escape hatch, is doing the suppressing.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

std::uint64_t tally(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::uint64_t sum = 0;
  // detlint:allow(iteration-order) commutative fold — addition erases order
  for (const auto& [key, value] : counts) sum += value;
  return sum;
}

std::size_t probe_count() {
  // detlint:allow(thread-confinement) fixture tally, single-threaded test harness only
  static std::size_t probes = 0;
  return ++probes;
}

}  // namespace fixture

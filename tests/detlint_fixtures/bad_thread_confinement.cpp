// detlint fixture: MUST be flagged exactly once, rule = thread-confinement.
// A mutable function-local static is process-global state: worker-pool
// lanes race on it (TSan only notices when a schedule happens to collide),
// and its value survives across scenarios within one process, breaking
// replay-from-fresh-state.
#include <cstddef>

namespace fixture {

std::size_t next_ticket() {
  static std::size_t counter = 0;
  return ++counter;
}

}  // namespace fixture

// detlint fixture: MUST be flagged exactly once, rule = iteration-order.
// Iterating an unordered container leaks hash-bucket order into the result
// vector — the order differs across standard libraries and across rehash
// histories, so it must never reach a summary, a wire message, or a
// fan-out decision.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace fixture {

std::vector<std::uint64_t> drain(
    const std::unordered_map<std::uint64_t, std::uint64_t>& counts) {
  std::vector<std::uint64_t> out;
  for (const auto& [key, value] : counts) out.push_back(key * value);
  return out;
}

}  // namespace fixture

// detlint fixture: MUST be flagged exactly once, rule = banned-source.
// An environment read in simulation code — a replay on another host (or the
// same host with a different environment) would observe different state.
#include <cstdlib>
#include <string>

namespace fixture {

std::string lookup_home() {
  const char* home = std::getenv("HOME");
  return home ? std::string(home) : std::string();
}

}  // namespace fixture

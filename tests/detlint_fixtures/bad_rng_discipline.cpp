// detlint fixture: MUST be flagged exactly once, rule = rng-discipline.
// A <random> engine constructed ad hoc: its distributions are
// implementation-defined, and the draw stream is not labeled, so inserting
// any consumer upstream perturbs every draw after it.
#include <random>

namespace fixture {

int roll_die() {
  std::mt19937 gen(42);
  return static_cast<int>(gen() % 6u) + 1;
}

}  // namespace fixture
